package spider_test

import (
	"testing"
	"time"

	"spider"
)

// TestPublicAPIQuickstart runs the README's quickstart flow through the
// public API only.
func TestPublicAPIQuickstart(t *testing.T) {
	sites := []spider.APSite{{
		Pos: spider.Point{X: 200, Y: 20}, Channel: spider.Channel1,
		SSID: "cafe", Open: true, BackhaulBps: 2e6,
	}}
	res := spider.Run(spider.ScenarioConfig{
		Seed:     42,
		Duration: 90 * time.Second,
		Preset:   spider.SingleChannelMultiAP,
		Mobility: spider.Route([]spider.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}, 10, false),
		Sites:    sites,
	})
	if res.BytesReceived == 0 || res.LinkUps == 0 {
		t.Fatalf("quickstart produced nothing: %+v", res)
	}
}

func TestPublicAPIDeploy(t *testing.T) {
	route := []spider.Point{{X: 0, Y: 0}, {X: 5000, Y: 0}}
	sites := spider.Deploy(1, route, spider.DefaultDeploy())
	if len(sites) < 50 {
		t.Fatalf("deployed %d APs on 5 km at default density", len(sites))
	}
	again := spider.Deploy(1, route, spider.DefaultDeploy())
	for i := range sites {
		if sites[i] != again[i] {
			t.Fatal("Deploy not deterministic in its seed")
		}
	}
}

func TestPublicAPIModel(t *testing.T) {
	m := spider.PaperJoinModel(5 * time.Second)
	p := m.JoinProbability(0.3, 4*time.Second)
	if p < 0.7 || p > 0.8 {
		t.Fatalf("p(0.3, 4s) = %v, want the paper's ≈0.75", p)
	}
	sol := spider.OptimalSchedule(spider.ScheduleProblem{
		Model: spider.PaperJoinModel(10 * time.Second),
		Bw:    11e6, T: 10 * time.Second,
		Channels: []spider.ChannelInput{{Joined: 0.75 * 11e6}, {Available: 0.25 * 11e6}},
	}, 0.05)
	if sol.TotalBps <= 0 {
		t.Fatal("optimizer returned nothing")
	}
	div := spider.DividingSpeed(spider.PaperJoinModel(10*time.Second), 11e6,
		[]spider.ChannelInput{{Joined: 0.75 * 11e6}, {Available: 0.25 * 11e6}},
		100, 2.5, 25, 2.5, 0.05)
	if div < 2.5 || div > 15 {
		t.Fatalf("dividing speed = %v, want near the paper's ≈10 m/s", div)
	}
}

func TestPublicAPITimers(t *testing.T) {
	r := spider.ReducedTimers()
	d := spider.DefaultTimers()
	if r.LLTimeout >= d.LLTimeout {
		t.Fatal("reduced link-layer timeout not shorter than default")
	}
	if !r.UseLeaseCache || d.UseLeaseCache {
		t.Fatal("lease cache settings inverted")
	}
	if r.FailureBackoff >= d.FailureBackoff {
		t.Fatal("reduced backoff not shorter")
	}
}

// TestPublicAPIPopulation drives the N-client entry point: two clients on
// one corridor, with aggregates consistent with the per-client results.
func TestPublicAPIPopulation(t *testing.T) {
	sites := []spider.APSite{{
		Pos: spider.Point{X: 200, Y: 20}, Channel: spider.Channel1,
		SSID: "cafe", Open: true, BackhaulBps: 2e6,
	}}
	route := spider.Route([]spider.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}, 10, false)
	pop := spider.RunPopulation(
		spider.WorldConfig{Seed: 42, Duration: 90 * time.Second, Sites: sites},
		[]spider.ClientConfig{
			{ID: 0, Preset: spider.SingleChannelMultiAP, Mobility: route},
			{ID: 1, Preset: spider.SingleChannelMultiAP, Mobility: route, StartOffset: 3 * time.Second},
		})
	if len(pop.Clients) != 2 {
		t.Fatalf("clients = %d", len(pop.Clients))
	}
	sum := pop.Clients[0].ThroughputKBps + pop.Clients[1].ThroughputKBps
	if pop.AggregateKBps != sum {
		t.Fatalf("aggregate %g != sum of per-client %g", pop.AggregateKBps, sum)
	}
	if pop.AggregateKBps <= 0 {
		t.Fatal("population moved no data")
	}
	if pop.JainFairness <= 0 || pop.JainFairness > 1 {
		t.Fatalf("fairness %g outside (0,1]", pop.JainFairness)
	}
}

func TestPublicAPIStatic(t *testing.T) {
	m := spider.StaticClient(spider.Point{X: 5, Y: 5})
	if m.PositionAt(0) != m.PositionAt(time.Hour) || m.Speed() != 0 {
		t.Fatal("StaticClient moved")
	}
}
