package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/sim"
)

// fakeTarget records every fault call with its injection time.
type fakeTarget struct {
	eng *sim.Engine
	id  int
	log []string
}

func (f *fakeTarget) note(format string, args ...any) {
	f.log = append(f.log, fmt.Sprintf("%v ap%d %s", f.eng.Now(), f.id, fmt.Sprintf(format, args...)))
}

func (f *fakeTarget) Crash()                           { f.note("crash") }
func (f *fakeTarget) Reboot()                          { f.note("reboot") }
func (f *fakeTarget) SetBeaconing(on bool)             { f.note("beacon=%v", on) }
func (f *fakeTarget) SetDHCPFault(mode dhcp.FaultMode) { f.note("dhcp=%v", mode) }
func (f *fakeTarget) SetBackhaulBlackhole(on bool)     { f.note("blackhole=%v", on) }
func (f *fakeTarget) SetBackhaulExtraDelay(d sim.Time) { f.note("delay=%v", d) }

// fakeNoise records SetChannelNoise calls.
type fakeNoise struct {
	eng *sim.Engine
	log []string
}

func (f *fakeNoise) SetChannelNoise(ch dot11.Channel, loss float64) {
	f.log = append(f.log, fmt.Sprintf("%v noise ch%d=%g", f.eng.Now(), ch, loss))
}

func rig(n int) (*sim.Engine, []*fakeTarget, []Target) {
	eng := sim.NewEngine()
	fakes := make([]*fakeTarget, n)
	targets := make([]Target, n)
	for i := range fakes {
		fakes[i] = &fakeTarget{eng: eng, id: i}
		targets[i] = fakes[i]
	}
	return eng, fakes, targets
}

func TestEventsFireAtScheduledTimes(t *testing.T) {
	eng, fakes, targets := rig(2)
	plan := Plan{Events: []Event{
		{At: 1 * sim.Time(time.Second), Kind: APCrash, AP: 0, Duration: 2 * sim.Time(time.Second)},
		{At: 2 * sim.Time(time.Second), Kind: DHCPNakStorm, AP: 1},
		{At: 4 * sim.Time(time.Second), Kind: BackhaulLatency, AP: AllAPs, Delay: sim.Time(50 * time.Millisecond)},
	}}
	inj := New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	eng.Run(10 * sim.Time(time.Second))

	want0 := []string{
		"1s ap0 crash",
		"3s ap0 reboot", // Duration-scheduled revert
		"4s ap0 delay=50ms",
	}
	if !reflect.DeepEqual(fakes[0].log, want0) {
		t.Errorf("ap0 log = %v, want %v", fakes[0].log, want0)
	}
	want1 := []string{
		"2s ap1 dhcp=nak",
		"4s ap1 delay=50ms",
	}
	if !reflect.DeepEqual(fakes[1].log, want1) {
		t.Errorf("ap1 log = %v, want %v", fakes[1].log, want1)
	}
	st := inj.Stats()
	if st.Injected != 3 || st.Crashes != 1 || st.Reboots != 1 || st.DHCPFaults != 1 ||
		st.BackhaulFaults != 1 || st.Reverted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransientFaultsRevert(t *testing.T) {
	eng, fakes, targets := rig(1)
	sec := sim.Time(time.Second)
	plan := Plan{Events: []Event{
		{At: 1 * sec, Kind: DHCPSilence, AP: 0, Duration: 2 * sec},
		{At: 5 * sec, Kind: BeaconSuppress, AP: 0, Duration: 1 * sec},
		{At: 8 * sec, Kind: BackhaulBlackhole, AP: 0, Duration: 3 * sec},
	}}
	inj := New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	eng.Run(20 * sec)

	want := []string{
		"1s ap0 dhcp=silent",
		"3s ap0 dhcp=none",
		"5s ap0 beacon=false",
		"6s ap0 beacon=true",
		"8s ap0 blackhole=true",
		"11s ap0 blackhole=false",
	}
	if !reflect.DeepEqual(fakes[0].log, want) {
		t.Errorf("log = %v, want %v", fakes[0].log, want)
	}
	if st := inj.Stats(); st.Reverted != 3 {
		t.Errorf("Reverted = %d, want 3", st.Reverted)
	}
}

func TestNoiseBurst(t *testing.T) {
	eng, _, targets := rig(1)
	noise := &fakeNoise{eng: eng}
	sec := sim.Time(time.Second)
	plan := Plan{Events: []Event{
		{At: 2 * sec, Kind: NoiseBurst, Channel: dot11.Channel6, Loss: 0.4, Duration: 3 * sec},
	}}
	inj := New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, noise)
	eng.Run(10 * sec)

	want := []string{"2s noise ch6=0.4", "5s noise ch6=0"}
	if !reflect.DeepEqual(noise.log, want) {
		t.Errorf("noise log = %v, want %v", noise.log, want)
	}
	if st := inj.Stats(); st.NoiseBursts != 1 || st.Injected != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoiseBurstWithoutFieldIsSkipped(t *testing.T) {
	eng, _, targets := rig(1)
	plan := Plan{Events: []Event{{At: 1, Kind: NoiseBurst, Channel: dot11.Channel1, Loss: 0.5}}}
	inj := New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	eng.Run(sim.Time(time.Second))
	if st := inj.Stats(); st.Injected != 0 || st.NoiseBursts != 0 {
		t.Errorf("stats = %+v, want all zero", st)
	}
}

func TestProcessDeterminism(t *testing.T) {
	sec := sim.Time(time.Second)
	plan := Plan{Procs: []Process{
		{Kind: APCrash, Mean: 5 * sec, Duration: 2 * sec, AP: RandomAP},
		{Kind: DHCPSilence, Mean: 7 * sec, Duration: 3 * sec, AP: RandomAP},
		{Kind: NoiseBurst, Mean: 9 * sec, Duration: 1 * sec, Channel: dot11.Channel1, Loss: 0.3},
	}}
	run := func() ([]string, Stats) {
		eng, fakes, targets := rig(3)
		noise := &fakeNoise{eng: eng}
		inj := New(eng, sim.NewRNG(42).Stream("chaos"), plan, targets, noise)
		eng.Run(120 * sec)
		var log []string
		for _, f := range fakes {
			log = append(log, f.log...)
		}
		log = append(log, noise.log...)
		return log, inj.Stats()
	}
	log1, st1 := run()
	log2, st2 := run()
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same (seed, plan) produced different firing sequences:\n%v\nvs\n%v", log1, log2)
	}
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Injected == 0 {
		t.Fatal("process plan injected nothing in 120s")
	}
	// A different seed must change the schedule (vanishingly unlikely to
	// collide over a 120s horizon with three processes).
	eng, fakes, targets := rig(3)
	noise := &fakeNoise{eng: eng}
	New(eng, sim.NewRNG(43).Stream("chaos"), plan, targets, noise)
	eng.Run(120 * sec)
	var log3 []string
	for _, f := range fakes {
		log3 = append(log3, f.log...)
	}
	log3 = append(log3, noise.log...)
	if reflect.DeepEqual(log1, log3) {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestProcessWindow(t *testing.T) {
	sec := sim.Time(time.Second)
	eng, fakes, targets := rig(1)
	plan := Plan{Procs: []Process{
		{Kind: BeaconSuppress, Mean: 1 * sec, Start: 10 * sec, End: 20 * sec, AP: 0},
	}}
	New(eng, sim.NewRNG(7).Stream("chaos"), plan, targets, nil)
	eng.Run(60 * sec)
	if len(fakes[0].log) == 0 {
		t.Fatal("windowed process never fired")
	}
	for _, line := range fakes[0].log {
		var stamp string
		if _, err := fmt.Sscanf(line, "%s", &stamp); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		at, err := time.ParseDuration(stamp)
		if err != nil {
			t.Fatalf("unparseable timestamp in %q: %v", line, err)
		}
		if sim.Time(at) < 10*sec || sim.Time(at) > 20*sec {
			t.Errorf("firing %q outside [10s, 20s] window", line)
		}
	}
}

func TestDisabledProcessNeverFires(t *testing.T) {
	eng, fakes, targets := rig(1)
	plan := Plan{Procs: []Process{{Kind: APCrash, Mean: 0, AP: 0}}}
	New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	eng.Run(60 * sim.Time(time.Second))
	if len(fakes[0].log) != 0 {
		t.Errorf("disabled process fired: %v", fakes[0].log)
	}
}

func TestAllAPsSelector(t *testing.T) {
	eng, fakes, targets := rig(3)
	plan := Plan{Events: []Event{{At: 1, Kind: APCrash, AP: AllAPs}}}
	New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	eng.Run(sim.Time(time.Second))
	for i, f := range fakes {
		if len(f.log) != 1 {
			t.Errorf("ap%d log = %v, want exactly one crash", i, f.log)
		}
	}
}

func TestOutOfRangeSelectorIsIgnored(t *testing.T) {
	eng, fakes, targets := rig(1)
	plan := Plan{Events: []Event{{At: 1, Kind: APCrash, AP: 5}}}
	inj := New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	eng.Run(sim.Time(time.Second))
	if len(fakes[0].log) != 0 || inj.Stats().Injected != 0 {
		t.Errorf("out-of-range selector applied: log=%v stats=%+v", fakes[0].log, inj.Stats())
	}
}

func TestPlanHash(t *testing.T) {
	sec := sim.Time(time.Second)
	base := Plan{
		Events: []Event{{At: 1 * sec, Kind: APCrash, AP: 0, Duration: 2 * sec}},
		Procs:  []Process{{Kind: DHCPSilence, Mean: 5 * sec, AP: RandomAP}},
	}
	if got, want := base.Hash(), base.Hash(); got != want {
		t.Fatalf("hash not stable: %s vs %s", got, want)
	}
	mutations := []Plan{
		{},
		{Events: base.Events},
		{Procs: base.Procs},
		{Events: []Event{{At: 2 * sec, Kind: APCrash, AP: 0, Duration: 2 * sec}}, Procs: base.Procs},
		{Events: []Event{{At: 1 * sec, Kind: APReboot, AP: 0, Duration: 2 * sec}}, Procs: base.Procs},
		{Events: []Event{{At: 1 * sec, Kind: APCrash, AP: 1, Duration: 2 * sec}}, Procs: base.Procs},
		{Events: base.Events, Procs: []Process{{Kind: DHCPSilence, Mean: 6 * sec, AP: RandomAP}}},
		{Events: base.Events, Procs: []Process{{Kind: DHCPSilence, Mean: 5 * sec, AP: RandomAP, Loss: 0.1}}},
	}
	seen := map[string]int{base.Hash(): -1}
	for i, m := range mutations {
		h := m.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %d collides with %d (hash %s)", i, prev, h)
		}
		seen[h] = i
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{APCrash, APReboot, DHCPSilence, DHCPNakStorm, DHCPExhaust,
		BeaconSuppress, BackhaulBlackhole, BackhaulLatency, NoiseBurst}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
	if (Plan{Events: []Event{{}}}).Empty() {
		t.Error("plan with event reported Empty")
	}
	if (Plan{Procs: []Process{{}}}).Empty() {
		t.Error("plan with process reported Empty")
	}
}

func TestFaultCauseMetadata(t *testing.T) {
	eng, _, targets := rig(1)
	sec := sim.Time(time.Second)
	plan := Plan{
		Name: "nightly",
		Events: []Event{
			{At: 1 * sec, Kind: DHCPSilence, AP: 0, Duration: 1 * sec},
			{At: 3 * sec, Kind: APCrash, AP: 0, Cause: "custom-cause"},
		},
		Procs: []Process{{Kind: BeaconSuppress, Mean: 4 * sec, AP: 0, Duration: sec / 2}},
	}
	inj := New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	var got []string
	inj.OnFault = func(e Event, _ []int, begin bool) {
		got = append(got, fmt.Sprintf("%s begin=%v", e.Cause, begin))
	}
	eng.Run(20 * sec)

	causes := map[string]int{}
	for _, g := range got {
		causes[g]++
	}
	if causes["nightly/event[0] begin=true"] != 1 || causes["nightly/event[0] begin=false"] != 1 {
		t.Errorf("event[0] cause missing or duplicated: %v", got)
	}
	if causes["custom-cause begin=true"] != 1 {
		t.Errorf("explicit Cause not passed through: %v", got)
	}
	procFired := false
	for c := range causes {
		if len(c) > 0 && c[0] == 'n' && causes[c] > 0 && c != "nightly/event[0] begin=true" &&
			c != "nightly/event[0] begin=false" {
			procFired = true
		}
	}
	if !procFired {
		t.Errorf("process firings carry no cause: %v", got)
	}
}

func TestDefaultPlanNameInCause(t *testing.T) {
	eng, _, targets := rig(1)
	plan := Plan{Events: []Event{{At: 1, Kind: APCrash, AP: 0}}}
	inj := New(eng, sim.NewRNG(1).Stream("chaos"), plan, targets, nil)
	var cause string
	inj.OnFault = func(e Event, _ []int, _ bool) { cause = e.Cause }
	eng.Run(sim.Time(time.Second))
	if cause != "plan/event[0]" {
		t.Errorf("unnamed plan cause = %q, want plan/event[0]", cause)
	}
}
