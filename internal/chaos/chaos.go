// Package chaos is the deterministic fault-injection subsystem. A Plan
// declares typed faults — AP crashes with state loss, DHCP server
// misbehaviour, backhaul blackholes and latency spikes, beacon
// suppression, channel-wide noise bursts — either at fixed times (Event)
// or as seeded stochastic processes with exponential inter-arrivals
// (Process). An Injector executes the plan on the simulation engine, so
// for a given (seed, plan) every fault lands at exactly the same virtual
// time in every run, at any fleet worker count.
//
// The package reaches the network layers through two narrow interfaces
// (Target for an AP's fault surface, NoiseField for the PHY), which
// internal/ap and internal/phy satisfy structurally — chaos stays a leaf
// package with no dependency on the layers it breaks.
package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/sim"
)

// Kind enumerates the injectable fault types.
type Kind uint8

const (
	// APCrash takes an AP off the air with full state loss: stations,
	// ARP-style IP bindings, and DHCP leases all vanish, as on a power
	// cycle. With Event.Duration > 0 the AP reboots that much later.
	APCrash Kind = iota + 1
	// APReboot brings a crashed AP back up (empty state, beaconing).
	APReboot
	// DHCPSilence makes the AP's DHCP server drop every message.
	DHCPSilence
	// DHCPNakStorm makes the server answer everything with NAK.
	DHCPNakStorm
	// DHCPExhaust makes the pool behave exhausted for unbound clients.
	DHCPExhaust
	// BeaconSuppress stops beacon transmission; the AP otherwise works,
	// so cached scan entries still tempt the client into joining.
	BeaconSuppress
	// BackhaulBlackhole drops every packet on the AP's wired link.
	BackhaulBlackhole
	// BackhaulLatency adds Event.Delay to the wired one-way delay.
	BackhaulLatency
	// NoiseBurst raises per-frame loss on Event.Channel by Event.Loss.
	NoiseBurst
)

func (k Kind) String() string {
	switch k {
	case APCrash:
		return "ap-crash"
	case APReboot:
		return "ap-reboot"
	case DHCPSilence:
		return "dhcp-silence"
	case DHCPNakStorm:
		return "dhcp-nak-storm"
	case DHCPExhaust:
		return "dhcp-exhaust"
	case BeaconSuppress:
		return "beacon-suppress"
	case BackhaulBlackhole:
		return "backhaul-blackhole"
	case BackhaulLatency:
		return "backhaul-latency"
	case NoiseBurst:
		return "noise-burst"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Special AP selectors for Event.AP / Process.AP.
const (
	// AllAPs applies the fault to every target at once.
	AllAPs = -1
	// RandomAP draws a uniform target per firing (processes only; an
	// Event with RandomAP draws once, at its scheduled time).
	RandomAP = -2
)

// Event is one scheduled fault.
type Event struct {
	// At is the injection time.
	At sim.Time
	// Kind selects the fault.
	Kind Kind
	// AP indexes the injector's target list (AllAPs / RandomAP allowed).
	AP int
	// Duration bounds transient faults: a crash reboots, and a DHCP /
	// beacon / backhaul / noise fault reverts, Duration after injection.
	// Zero means the fault persists (a crash stays down).
	Duration sim.Time
	// Channel is the affected channel for NoiseBurst.
	Channel dot11.Channel
	// Loss is the extra per-frame loss probability for NoiseBurst.
	Loss float64
	// Delay is the added one-way delay for BackhaulLatency.
	Delay sim.Time
	// Cause names the fault's provenance ("<plan>/event[i]" or
	// "<plan>/proc[i]"); New fills it when empty, so OnFault observers can
	// attribute an outage to the exact plan entry that caused it.
	Cause string
}

// Process is a seeded stochastic fault source: firings arrive with
// exponential inter-arrival times of the given mean, each injecting one
// Event derived from the template fields below.
type Process struct {
	// Kind selects the fault injected per firing.
	Kind Kind
	// Mean is the average inter-arrival time; non-positive disables the
	// process.
	Mean sim.Time
	// Start delays the first arrival window.
	Start sim.Time
	// End stops the process; zero means it runs for the whole scenario.
	End sim.Time
	// Duration, AP, Channel, Loss, Delay fill the injected Event.
	Duration sim.Time
	AP       int
	Channel  dot11.Channel
	Loss     float64
	Delay    sim.Time
	// Cause labels every Event this process injects (see Event.Cause).
	Cause string
}

// Plan is a declarative fault schedule: fixed events plus stochastic
// processes. The zero value injects nothing.
type Plan struct {
	// Name labels the plan in fault-cause metadata; empty plans inject as
	// "plan".
	Name   string
	Events []Event
	Procs  []Process
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 && len(p.Procs) == 0 }

// Hash returns a stable 64-bit FNV-1a digest of the plan's canonical
// encoding. Result caches key on it so a cached run can never mask a
// plan change.
func (p Plan) Hash() string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(p.Name))
	w(uint64(len(p.Events)))
	for _, e := range p.Events {
		h.Write([]byte(e.Cause))
		w(uint64(e.At))
		w(uint64(e.Kind))
		w(uint64(int64(e.AP)))
		w(uint64(e.Duration))
		w(uint64(e.Channel))
		w(math.Float64bits(e.Loss))
		w(uint64(e.Delay))
	}
	w(uint64(len(p.Procs)))
	for _, pr := range p.Procs {
		h.Write([]byte(pr.Cause))
		w(uint64(pr.Kind))
		w(uint64(pr.Mean))
		w(uint64(pr.Start))
		w(uint64(pr.End))
		w(uint64(pr.Duration))
		w(uint64(int64(pr.AP)))
		w(uint64(pr.Channel))
		w(math.Float64bits(pr.Loss))
		w(uint64(pr.Delay))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Target is the fault surface one AP exposes. *ap.AP satisfies it.
type Target interface {
	Crash()
	Reboot()
	SetBeaconing(on bool)
	SetDHCPFault(mode dhcp.FaultMode)
	SetBackhaulBlackhole(on bool)
	SetBackhaulExtraDelay(extra sim.Time)
}

// NoiseField is the channel-noise surface of the PHY. *phy.Medium
// satisfies it.
type NoiseField interface {
	SetChannelNoise(ch dot11.Channel, extraLoss float64)
}

// Stats counts injections by family, for experiment reporting.
type Stats struct {
	Injected       int // total fault injections (reverts not counted)
	Crashes        int
	Reboots        int // includes scheduled post-crash reboots
	DHCPFaults     int
	BeaconFaults   int
	BackhaulFaults int
	NoiseBursts    int
	Reverted       int // transient faults that expired
}

// Add folds another injector's counters into s. A serve-mode world can
// arm several plans (the up-front WorldConfig plan plus mid-run
// injections) and reports their combined totals per client Result.
func (s *Stats) Add(o Stats) {
	s.Injected += o.Injected
	s.Crashes += o.Crashes
	s.Reboots += o.Reboots
	s.DHCPFaults += o.DHCPFaults
	s.BeaconFaults += o.BeaconFaults
	s.BackhaulFaults += o.BackhaulFaults
	s.NoiseBursts += o.NoiseBursts
	s.Reverted += o.Reverted
}

// Injector executes a Plan against a set of targets. All scheduling and
// random draws happen on the supplied engine and RNG stream, so two
// injectors built from the same (seed, plan) replay identically.
type Injector struct {
	eng   *sim.Engine
	rng   *sim.RNG
	aps   []Target
	noise NoiseField
	stats Stats

	// OnFault, when non-nil, observes every applied fault: begin=true at
	// injection, begin=false when a transient fault reverts. aps holds
	// the resolved target indices (RandomAP is resolved by then). Set it
	// before the engine runs; the callback must not mutate the plan.
	OnFault func(e Event, aps []int, begin bool)
}

// New builds the injector and schedules the whole plan. rng must be a
// dedicated stream; noise may be nil when the plan has no NoiseBurst.
// Every scheduled fault carries cause metadata: explicit Cause fields pass
// through, empty ones default to "<plan>/event[i]" / "<plan>/proc[i]".
func New(eng *sim.Engine, rng *sim.RNG, plan Plan, aps []Target, noise NoiseField) *Injector {
	inj := &Injector{eng: eng, rng: rng, aps: aps, noise: noise}
	name := plan.Name
	if name == "" {
		name = "plan"
	}
	for i, e := range plan.Events {
		e := e
		if e.Cause == "" {
			e.Cause = fmt.Sprintf("%s/event[%d]", name, i)
		}
		eng.ScheduleAt(e.At, func() { inj.apply(e) })
	}
	for i, pr := range plan.Procs {
		if pr.Cause == "" {
			pr.Cause = fmt.Sprintf("%s/proc[%d]", name, i)
		}
		inj.startProcess(pr)
	}
	return inj
}

// Stats returns a snapshot of the injection counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// startProcess arms the first arrival; each firing re-arms the next, so
// inter-arrival draws interleave with other processes strictly in
// event-time order — deterministic for a fixed seed.
func (inj *Injector) startProcess(pr Process) {
	if pr.Mean <= 0 {
		return
	}
	var arm func(at sim.Time)
	arm = func(at sim.Time) {
		if pr.End > 0 && at > pr.End {
			return
		}
		inj.eng.ScheduleAt(at, func() {
			inj.apply(Event{
				At: at, Kind: pr.Kind, AP: pr.AP,
				Duration: pr.Duration, Channel: pr.Channel,
				Loss: pr.Loss, Delay: pr.Delay, Cause: pr.Cause,
			})
			arm(inj.eng.Now() + inj.rng.ExpDuration(pr.Mean))
		})
	}
	arm(pr.Start + inj.rng.ExpDuration(pr.Mean))
}

// targets resolves an Event.AP selector to concrete targets and their
// indices in the target list. RandomAP draws here, at injection time.
func (inj *Injector) targets(sel int) ([]Target, []int) {
	switch {
	case len(inj.aps) == 0:
		return nil, nil
	case sel == AllAPs:
		idxs := make([]int, len(inj.aps))
		for i := range idxs {
			idxs[i] = i
		}
		return inj.aps, idxs
	case sel == RandomAP:
		i := inj.rng.Intn(len(inj.aps))
		return inj.aps[i:][:1], []int{i}
	case sel >= 0 && sel < len(inj.aps):
		return inj.aps[sel:][:1], []int{sel}
	}
	return nil, nil
}

// apply injects one fault and, for transient kinds with a Duration,
// schedules the revert. Overlapping windows on the same knob are
// last-writer-wins; plans wanting precise overlap semantics should use
// disjoint windows.
func (inj *Injector) apply(e Event) {
	ts, idxs := inj.targets(e.AP)
	// Validate before counting or observing, so Stats.Injected and the
	// fault timeline only ever report faults that actually landed.
	switch e.Kind {
	case APCrash, APReboot, DHCPSilence, DHCPNakStorm, DHCPExhaust,
		BeaconSuppress, BackhaulBlackhole, BackhaulLatency:
		if len(ts) == 0 {
			return
		}
	case NoiseBurst:
		if inj.noise == nil {
			return
		}
	default:
		return
	}
	inj.stats.Injected++
	if inj.OnFault != nil {
		inj.OnFault(e, idxs, true)
	}
	revert := func(fn func()) {
		if e.Duration <= 0 {
			return
		}
		inj.eng.Schedule(e.Duration, func() {
			inj.stats.Reverted++
			fn()
			if inj.OnFault != nil {
				inj.OnFault(e, idxs, false)
			}
		})
	}
	switch e.Kind {
	case APCrash:
		inj.stats.Crashes++
		for _, t := range ts {
			t.Crash()
		}
		revert(func() {
			inj.stats.Reboots++
			for _, t := range ts {
				t.Reboot()
			}
		})
	case APReboot:
		inj.stats.Reboots++
		for _, t := range ts {
			t.Reboot()
		}
	case DHCPSilence, DHCPNakStorm, DHCPExhaust:
		inj.stats.DHCPFaults++
		mode := dhcp.FaultSilent
		switch e.Kind {
		case DHCPNakStorm:
			mode = dhcp.FaultNak
		case DHCPExhaust:
			mode = dhcp.FaultExhausted
		}
		for _, t := range ts {
			t.SetDHCPFault(mode)
		}
		revert(func() {
			for _, t := range ts {
				t.SetDHCPFault(dhcp.FaultNone)
			}
		})
	case BeaconSuppress:
		inj.stats.BeaconFaults++
		for _, t := range ts {
			t.SetBeaconing(false)
		}
		revert(func() {
			for _, t := range ts {
				t.SetBeaconing(true)
			}
		})
	case BackhaulBlackhole:
		inj.stats.BackhaulFaults++
		for _, t := range ts {
			t.SetBackhaulBlackhole(true)
		}
		revert(func() {
			for _, t := range ts {
				t.SetBackhaulBlackhole(false)
			}
		})
	case BackhaulLatency:
		inj.stats.BackhaulFaults++
		for _, t := range ts {
			t.SetBackhaulExtraDelay(e.Delay)
		}
		revert(func() {
			for _, t := range ts {
				t.SetBackhaulExtraDelay(0)
			}
		})
	case NoiseBurst:
		inj.stats.NoiseBursts++
		ch := e.Channel
		inj.noise.SetChannelNoise(ch, e.Loss)
		revert(func() { inj.noise.SetChannelNoise(ch, 0) })
	}
}
