// Package geo provides the 2-D geometry primitives shared by the PHY and
// mobility models: points in metres, distances, and simple interpolation.
package geo

import "math"

// Point is a position on the plane, in metres.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between p and q in metres.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Add returns p translated by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Vector is a displacement on the plane, in metres.
type Vector struct {
	X, Y float64
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector { return Vector{v.X * k, v.Y * k} }

// Length returns the magnitude of v in metres.
func (v Vector) Length() float64 { return math.Hypot(v.X, v.Y) }

// Unit returns the unit vector in the direction of v. The zero vector maps
// to the zero vector.
func (v Vector) Unit() Vector {
	l := v.Length()
	if l == 0 {
		return Vector{}
	}
	return Vector{v.X / l, v.Y / l}
}

// Lerp linearly interpolates from a to b; t=0 yields a and t=1 yields b.
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// ChordLength returns the length of the chord that a straight path passing
// at perpendicular offset from a disc centre of radius r cuts through the
// disc, or 0 if the path misses the disc. This is the in-range path length
// for a vehicle passing an AP.
func ChordLength(r, offset float64) float64 {
	if offset >= r {
		return 0
	}
	return 2 * math.Sqrt(r*r-offset*offset)
}
