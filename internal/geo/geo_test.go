package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistance(t *testing.T) {
	if d := (Point{0, 0}).Distance(Point{3, 4}); !almostEqual(d, 5) {
		t.Fatalf("distance = %v, want 5", d)
	}
	if d := (Point{1, 1}).Distance(Point{1, 1}); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestVectorOps(t *testing.T) {
	v := Point{5, 7}.Sub(Point{2, 3})
	if v != (Vector{3, 4}) {
		t.Fatalf("Sub = %v", v)
	}
	if !almostEqual(v.Length(), 5) {
		t.Fatalf("Length = %v", v.Length())
	}
	u := v.Unit()
	if !almostEqual(u.Length(), 1) {
		t.Fatalf("Unit length = %v", u.Length())
	}
	if (Vector{}).Unit() != (Vector{}) {
		t.Fatal("zero vector Unit should be zero")
	}
	p := Point{1, 1}.Add(v.Scale(2))
	if p != (Point{7, 9}) {
		t.Fatalf("Add/Scale = %v", p)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("Lerp endpoints wrong")
	}
	mid := Lerp(a, b, 0.5)
	if !almostEqual(mid.X, 5) || !almostEqual(mid.Y, 10) {
		t.Fatalf("Lerp midpoint = %v", mid)
	}
}

func TestChordLength(t *testing.T) {
	if c := ChordLength(100, 0); !almostEqual(c, 200) {
		t.Fatalf("through-centre chord = %v, want 200", c)
	}
	if c := ChordLength(100, 100); c != 0 {
		t.Fatalf("tangent chord = %v, want 0", c)
	}
	if c := ChordLength(100, 120); c != 0 {
		t.Fatalf("miss chord = %v, want 0", c)
	}
	// 60-80-100 triangle: offset 60 gives half-chord 80.
	if c := ChordLength(100, 60); !almostEqual(c, 160) {
		t.Fatalf("chord = %v, want 160", c)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestPropertyMetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		if !almostEqual(a.Distance(b), b.Distance(a)) {
			return false
		}
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: chord length is monotonically non-increasing in offset and
// bounded by the diameter.
func TestPropertyChordMonotone(t *testing.T) {
	f := func(r8, o8 uint8) bool {
		r := float64(r8) + 1
		o := float64(o8)
		c1 := ChordLength(r, o)
		c2 := ChordLength(r, o+1)
		return c1 <= 2*r+1e-9 && c2 <= c1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
