// Package stripe schedules a single logical download across several
// concurrent Wi-Fi links. The paper's related-work section observes that
// data-striping systems (Horde, MAR, PERM) are complementary to Spider and
// "can be built into Spider to enhance mobile user performance"; this
// package is that integration: a block scheduler that assigns byte ranges
// to whichever links are currently up, rebalances when links die, and
// duplicates the tail blocks onto idle links so one dying AP cannot stall
// the transfer.
//
// The controller is transport-agnostic: it hands out (path, size) fetch
// orders through a callback and learns completion asynchronously, so it
// can be driven by the simulator's TCP flows or by unit tests directly.
package stripe

import (
	"fmt"
	"sort"

	"spider/internal/sim"
)

// Config tunes the scheduler.
type Config struct {
	// BlockSize is the fetch granularity in bytes (default 256 KiB).
	BlockSize int64
	// DuplicateTail lets idle paths re-fetch blocks still in flight
	// elsewhere once no pending blocks remain (straggler mitigation).
	DuplicateTail bool
}

// DefaultConfig returns the deployed settings.
func DefaultConfig() Config {
	return Config{BlockSize: 256 << 10, DuplicateTail: true}
}

// FetchFunc starts fetching size bytes over the identified path. The
// transport must call done exactly once: true when the bytes fully
// arrived, false when the path failed. Calls after the path was removed
// are still accepted.
type FetchFunc func(pathID int, size int64, done func(ok bool))

type blockState uint8

const (
	blockPending blockState = iota
	blockActive
	blockDone
)

type block struct {
	idx     int
	size    int64
	state   blockState
	holders int // active fetch attempts
}

type path struct {
	id      int
	busy    bool
	block   int // index of the block being fetched, -1 if idle
	fetched int64
	failed  int
}

// Controller is the striping scheduler.
type Controller struct {
	eng   *sim.Engine
	cfg   Config
	fetch FetchFunc

	blocks  []*block
	paths   map[int]*path
	doneCnt int

	// OnComplete fires once every block has arrived.
	OnComplete func()

	// Stats.
	FetchesIssued  int
	FetchesFailed  int
	DuplicateFetch int
}

// New creates a controller for an object of total bytes. fetch is invoked
// re-entrantly from AddPath and from completion callbacks.
func New(eng *sim.Engine, total int64, cfg Config, fetch FetchFunc) *Controller {
	if total <= 0 {
		panic("stripe: New needs a positive object size")
	}
	if fetch == nil {
		panic("stripe: New needs a fetch func")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultConfig().BlockSize
	}
	c := &Controller{eng: eng, cfg: cfg, fetch: fetch, paths: make(map[int]*path)}
	for off := int64(0); off < total; off += cfg.BlockSize {
		size := cfg.BlockSize
		if off+size > total {
			size = total - off
		}
		c.blocks = append(c.blocks, &block{idx: len(c.blocks), size: size, state: blockPending})
	}
	return c
}

// Blocks returns the number of blocks in the object.
func (c *Controller) Blocks() int { return len(c.blocks) }

// Done reports whether the whole object has arrived.
func (c *Controller) Done() bool { return c.doneCnt == len(c.blocks) }

// Progress returns completed and total block counts.
func (c *Controller) Progress() (done, total int) { return c.doneCnt, len(c.blocks) }

// ActivePaths returns the ids of currently attached paths.
func (c *Controller) ActivePaths() []int {
	var out []int
	for id := range c.paths {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// AddPath attaches a link and immediately puts it to work. Adding an
// existing id panics.
func (c *Controller) AddPath(id int) {
	if _, ok := c.paths[id]; ok {
		panic(fmt.Sprintf("stripe: duplicate path %d", id))
	}
	p := &path{id: id, block: -1}
	c.paths[id] = p
	c.assign(p)
}

// RemovePath detaches a dead link; its in-flight block returns to the
// pending pool (unless another path also holds it).
func (c *Controller) RemovePath(id int) {
	p, ok := c.paths[id]
	if !ok {
		return
	}
	delete(c.paths, id)
	if p.busy && p.block >= 0 {
		b := c.blocks[p.block]
		b.holders--
		if b.state == blockActive && b.holders == 0 {
			b.state = blockPending
			c.kick()
		}
	}
}

// nextBlock picks the block a path should fetch: the first pending block,
// or — with DuplicateTail — the smallest in-flight block not already held
// by this path.
func (c *Controller) nextBlock() *block {
	for _, b := range c.blocks {
		if b.state == blockPending {
			return b
		}
	}
	if !c.cfg.DuplicateTail {
		return nil
	}
	var best *block
	for _, b := range c.blocks {
		if b.state != blockActive {
			continue
		}
		if best == nil || b.holders < best.holders {
			best = b
		}
	}
	return best
}

// assign puts an idle path to work if any block needs fetching.
func (c *Controller) assign(p *path) {
	if p.busy || c.Done() {
		return
	}
	b := c.nextBlock()
	if b == nil {
		return
	}
	if b.state == blockActive {
		c.DuplicateFetch++
	}
	b.state = blockActive
	b.holders++
	p.busy = true
	p.block = b.idx
	c.FetchesIssued++
	id, size, idx := p.id, b.size, b.idx
	c.fetch(id, size, func(ok bool) { c.fetchDone(id, idx, ok) })
}

// kick gives every idle path a chance to pick up freed work. Paths with
// fewer failures go first (id breaks ties): a path that keeps failing must
// not starve a healthy one by re-claiming the block it just dropped. The
// order is a total one, so assignment never depends on map iteration.
func (c *Controller) kick() {
	var idle []*path
	for _, p := range c.paths {
		if !p.busy {
			idle = append(idle, p)
		}
	}
	sort.Slice(idle, func(i, j int) bool {
		if idle[i].failed != idle[j].failed {
			return idle[i].failed < idle[j].failed
		}
		return idle[i].id < idle[j].id
	})
	for _, p := range idle {
		c.assign(p)
	}
}

func (c *Controller) fetchDone(pathID, blockIdx int, ok bool) {
	b := c.blocks[blockIdx]
	p := c.paths[pathID]
	if p != nil && p.block == blockIdx {
		p.busy = false
		p.block = -1
		if ok {
			p.fetched += b.size
		} else {
			p.failed++
		}
	}
	if b.state != blockDone {
		b.holders--
		if b.holders < 0 {
			b.holders = 0
		}
	}
	switch {
	case ok && b.state != blockDone:
		b.state = blockDone
		c.doneCnt++
		if c.Done() {
			if c.OnComplete != nil {
				c.OnComplete()
			}
			return
		}
	case !ok:
		c.FetchesFailed++
		if b.state == blockActive && b.holders == 0 {
			b.state = blockPending
		}
	}
	c.kick()
}

// PathStats reports per-path bytes fetched and failures, for experiments.
func (c *Controller) PathStats(id int) (fetched int64, failed int, ok bool) {
	p, exists := c.paths[id]
	if !exists {
		return 0, 0, false
	}
	return p.fetched, p.failed, true
}
