package stripe

import (
	"testing"
	"testing/quick"
	"time"

	"spider/internal/sim"
)

// fakeNet simulates paths with fixed per-byte latency and optional failure.
type fakeNet struct {
	eng   *sim.Engine
	rate  map[int]float64 // bytes per second per path
	fail  map[int]bool    // path fails every fetch
	calls int
}

func (f *fakeNet) fetch(pathID int, size int64, done func(bool)) {
	f.calls++
	if f.fail[pathID] {
		f.eng.Schedule(10*time.Millisecond, func() { done(false) })
		return
	}
	rate := f.rate[pathID]
	if rate <= 0 {
		rate = 100000
	}
	d := time.Duration(float64(size) / rate * float64(time.Second))
	f.eng.Schedule(d, func() { done(true) })
}

func newRig(total int64, cfg Config) (*sim.Engine, *fakeNet, *Controller) {
	eng := sim.NewEngine()
	net := &fakeNet{eng: eng, rate: map[int]float64{}, fail: map[int]bool{}}
	c := New(eng, total, cfg, net.fetch)
	return eng, net, c
}

func TestBlockPartition(t *testing.T) {
	_, _, c := newRig(1_000_000, Config{BlockSize: 300_000})
	if c.Blocks() != 4 {
		t.Fatalf("blocks = %d, want 4 (3×300k + 100k)", c.Blocks())
	}
	_, _, c2 := newRig(300_000, Config{BlockSize: 300_000})
	if c2.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", c2.Blocks())
	}
}

func TestSinglePathCompletes(t *testing.T) {
	eng, _, c := newRig(1_000_000, Config{BlockSize: 100_000})
	completed := false
	c.OnComplete = func() { completed = true }
	c.AddPath(1)
	eng.Run(time.Minute)
	if !completed || !c.Done() {
		t.Fatalf("done=%v completed=%v", c.Done(), completed)
	}
	fetched, failed, ok := c.PathStats(1)
	if !ok || fetched != 1_000_000 || failed != 0 {
		t.Fatalf("path stats = %d/%d/%v", fetched, failed, ok)
	}
}

func TestTwoPathsShareWork(t *testing.T) {
	eng, net, c := newRig(2_000_000, Config{BlockSize: 100_000})
	net.rate[1] = 1_000_000
	net.rate[2] = 1_000_000
	c.AddPath(1)
	c.AddPath(2)
	eng.Run(time.Minute)
	if !c.Done() {
		t.Fatal("not done")
	}
	f1, _, _ := c.PathStats(1)
	f2, _, _ := c.PathStats(2)
	if f1 == 0 || f2 == 0 {
		t.Fatalf("one path idle: %d/%d", f1, f2)
	}
	// Equal rates: roughly equal shares.
	if f1 < 600_000 || f2 < 600_000 {
		t.Fatalf("imbalanced shares: %d/%d", f1, f2)
	}
}

func TestFasterPathFetchesMore(t *testing.T) {
	eng, net, c := newRig(4_000_000, Config{BlockSize: 100_000, DuplicateTail: false})
	net.rate[1] = 2_000_000
	net.rate[2] = 500_000
	c.AddPath(1)
	c.AddPath(2)
	eng.Run(time.Minute)
	f1, _, _ := c.PathStats(1)
	f2, _, _ := c.PathStats(2)
	if f1 <= f2*2 {
		t.Fatalf("4×-faster path fetched %d vs %d", f1, f2)
	}
}

func TestStripingBeatsBestSinglePath(t *testing.T) {
	run := func(paths map[int]float64) sim.Time {
		eng := sim.NewEngine()
		net := &fakeNet{eng: eng, rate: paths, fail: map[int]bool{}}
		c := New(eng, 8_000_000, Config{BlockSize: 200_000}, net.fetch)
		var doneAt sim.Time = -1
		c.OnComplete = func() { doneAt = eng.Now() }
		for id := range paths {
			c.AddPath(id)
		}
		eng.Run(10 * time.Minute)
		return doneAt
	}
	single := run(map[int]float64{1: 1_000_000})
	striped := run(map[int]float64{1: 1_000_000, 2: 800_000, 3: 500_000})
	if striped <= 0 || single <= 0 {
		t.Fatal("runs incomplete")
	}
	if float64(striped) > 0.6*float64(single) {
		t.Fatalf("striping %v not much faster than single %v", striped, single)
	}
}

func TestPathDeathReassignsBlock(t *testing.T) {
	eng, net, c := newRig(500_000, Config{BlockSize: 500_000})
	net.rate[1] = 100_000 // 5 s fetch
	net.rate[2] = 1_000_000
	c.AddPath(1)
	eng.Run(time.Second)
	if c.Done() {
		t.Fatal("done too early")
	}
	// Path 1 dies mid-block; path 2 arrives and must take it over.
	c.RemovePath(1)
	c.AddPath(2)
	eng.Run(eng.Now() + 2*time.Second)
	if !c.Done() {
		t.Fatal("block not reassigned after path death")
	}
}

// TestPathChurnCompletes: paths come and go repeatedly mid-transfer (the
// pattern chaos-driven AP crashes produce); the object must still finish
// without stalling as long as some path is eventually alive.
func TestPathChurnCompletes(t *testing.T) {
	eng, net, c := newRig(2_000_000, Config{BlockSize: 100_000})
	net.rate[1] = 400_000
	net.rate[2] = 400_000
	completed := false
	c.OnComplete = func() { completed = true }
	c.AddPath(1)
	// Every 300 ms one path dies and the other (re)joins, alternating.
	alive := 1
	stop := eng.Ticker(300*time.Millisecond, func() {
		if c.Done() {
			return
		}
		next := 3 - alive
		c.AddPath(next)
		c.RemovePath(alive)
		alive = next
	})
	eng.Run(time.Minute)
	stop()
	if !completed || !c.Done() {
		t.Fatalf("transfer did not survive path churn: done=%v", c.Done())
	}
	done, total := c.Progress()
	if done != total {
		t.Fatalf("progress %d/%d after completion", done, total)
	}
	// Churn abandons in-flight blocks, so more fetches are issued than
	// blocks exist — but each block is still delivered exactly once.
	if c.FetchesIssued < c.Blocks() {
		t.Fatalf("issued %d fetches for %d blocks", c.FetchesIssued, c.Blocks())
	}
}

func TestFailingPathDoesNotStall(t *testing.T) {
	eng, net, c := newRig(1_000_000, Config{BlockSize: 250_000})
	net.fail[1] = true
	net.rate[2] = 1_000_000
	c.AddPath(1)
	c.AddPath(2)
	eng.Run(time.Minute)
	if !c.Done() {
		t.Fatal("transfer stalled behind a failing path")
	}
	if c.FetchesFailed == 0 {
		t.Fatal("failures not counted")
	}
	_, failed, _ := c.PathStats(1)
	if failed == 0 {
		t.Fatal("failing path shows no failures")
	}
}

func TestDuplicateTailMitigatesStraggler(t *testing.T) {
	finish := func(dup bool) sim.Time {
		eng := sim.NewEngine()
		net := &fakeNet{eng: eng, rate: map[int]float64{1: 2_000_000, 2: 50_000}, fail: map[int]bool{}}
		c := New(eng, 2_000_000, Config{BlockSize: 500_000, DuplicateTail: dup}, net.fetch)
		var doneAt sim.Time = -1
		c.OnComplete = func() { doneAt = eng.Now() }
		// The slow path grabs a block early and crawls.
		c.AddPath(2)
		eng.Run(10 * time.Millisecond)
		c.AddPath(1)
		eng.Run(5 * time.Minute)
		return doneAt
	}
	with := finish(true)
	without := finish(false)
	if with <= 0 || without <= 0 {
		t.Fatal("incomplete runs")
	}
	if with >= without {
		t.Fatalf("tail duplication did not help: %v >= %v", with, without)
	}
}

func TestDuplicateCompletionCountedOnce(t *testing.T) {
	eng, net, c := newRig(500_000, Config{BlockSize: 500_000, DuplicateTail: true})
	net.rate[1] = 500_000
	net.rate[2] = 450_000
	c.AddPath(1)
	c.AddPath(2) // duplicates the only block
	completions := 0
	c.OnComplete = func() { completions++ }
	eng.Run(time.Minute)
	if done, total := c.Progress(); done != total {
		t.Fatalf("progress %d/%d", done, total)
	}
	if completions != 1 {
		t.Fatalf("OnComplete fired %d times", completions)
	}
	if c.DuplicateFetch == 0 {
		t.Fatal("duplicate fetch not recorded")
	}
}

func TestRemoveUnknownPathIsNoop(t *testing.T) {
	_, _, c := newRig(100, Config{})
	c.RemovePath(99) // must not panic
}

func TestAddDuplicatePathPanics(t *testing.T) {
	_, _, c := newRig(100, Config{})
	c.AddPath(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddPath did not panic")
		}
	}()
	c.AddPath(1)
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	for _, fn := range []func(){
		func() { New(eng, 0, Config{}, func(int, int64, func(bool)) {}) },
		func() { New(eng, 100, Config{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid New did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: for any object size, block sizes partition the object exactly
// and completion delivers every block once.
func TestPropertyPartitionAndCompletion(t *testing.T) {
	f := func(totalRaw uint32, blockRaw uint16, nPaths uint8) bool {
		total := int64(totalRaw%5_000_000) + 1
		blockSize := int64(blockRaw)%50_000 + 1000
		paths := int(nPaths%4) + 1
		eng := sim.NewEngine()
		net := &fakeNet{eng: eng, rate: map[int]float64{}, fail: map[int]bool{}}
		c := New(eng, total, Config{BlockSize: blockSize}, net.fetch)
		var sum int64
		for _, b := range c.blocks {
			sum += b.size
		}
		if sum != total {
			return false
		}
		for i := 0; i < paths; i++ {
			net.rate[i] = 1_000_000
			c.AddPath(i)
		}
		eng.Run(time.Hour)
		return c.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
