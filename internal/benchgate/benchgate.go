// Package benchgate implements the population benchmark regression gate:
// it compares a fresh BENCH_population-style measurement against a
// committed baseline and flags rungs whose cost grew (wall time,
// allocations) or whose delivered goodput shrank beyond a threshold.
// The comparison logic is pure so the gate's pass/fail decision is unit-
// testable without running benchmarks; cmd/spider-bench -benchgate wires
// it to a live measurement and turns failures into a non-zero exit.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Record is one population rung's performance sample — the JSON layout of
// BENCH_population.json entries.
type Record struct {
	Clients int `json:"clients"`
	// Telemetry marks rungs measured with the streaming telemetry plane
	// attached (rollups, flight recorder, SLO evaluation). Rungs are
	// still matched by client count alone — a telemetry rung uses a
	// client count no bare rung shares.
	Telemetry     bool    `json:"telemetry,omitempty"`
	AggregateKBps float64 `json:"aggregate_kbps"`
	JainFairness  float64 `json:"jain_fairness"`
	// WallNS is the rung's single-run wall time (the experiment's ns/op).
	WallNS      int64  `json:"wall_ns"`
	NSPerClient int64  `json:"ns_per_client"`
	Allocs      uint64 `json:"allocs"`
	AllocBytes  uint64 `json:"alloc_bytes"`
	// AllocsPerClient is Allocs/Clients — the per-rung allocation delta
	// normalized for ladder position, the number the pooling work in the
	// hot paths is judged by.
	AllocsPerClient uint64 `json:"allocs_per_client,omitempty"`
}

// File is the BENCH_population.json layout: the repo's population perf
// trajectory, one record per benchmarked rung.
type File struct {
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// GOMAXPROCS records the scheduler parallelism the measurement
	// actually ran under (runtime.GOMAXPROCS at measure time), which is
	// what wall-time comparability depends on; NumCPU is kept for older
	// baselines that recorded the static core count instead.
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Records    []Record `json:"records"`
}

// Parallelism returns the recorded scheduler parallelism, falling back to
// the legacy static core count for baselines that predate GOMAXPROCS
// provenance.
func (f File) Parallelism() int {
	if f.GOMAXPROCS > 0 {
		return f.GOMAXPROCS
	}
	return f.NumCPU
}

// Find returns the record for a rung by client count.
func (f File) Find(clients int) (Record, bool) {
	for _, r := range f.Records {
		if r.Clients == clients {
			return r, true
		}
	}
	return Record{}, false
}

// Load reads a baseline file.
func Load(path string) (File, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(body, &f); err != nil {
		return File{}, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(f.Records) == 0 {
		return File{}, fmt.Errorf("benchgate: %s: no records", path)
	}
	return f, nil
}

// Regression is one metric on one rung that moved past the threshold in
// the bad direction.
type Regression struct {
	Clients  int
	Metric   string
	Baseline float64
	Current  float64
	// Ratio is current/baseline: >1 for cost metrics that grew, <1 for
	// goodput that shrank.
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("clients=%d %s: baseline %.4g -> current %.4g (%.2fx)",
		r.Clients, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// DefaultAllocThreshold is the stricter gate applied to allocation
// counts: they are deterministic (no scheduler noise), so 5% growth is
// already a real regression worth failing on.
const DefaultAllocThreshold = 0.05

// JainGateMinClients is the rung size from which the gate also holds the
// Jain fairness index. Fairness is a population property: on small rungs
// the index hovers near 1 and a drop means little, while the dense
// 256/1024 rungs are exactly where the historical collapse lived — a
// change that quietly re-concentrates goodput onto a few clients must
// fail the gate even when the aggregate stays flat.
const JainGateMinClients = 256

// Compare flags regressions of current against baseline. Aggregate
// goodput regresses when it drops by more than threshold — a perf gate
// should also catch "faster because it silently does less". Wall time is
// inherently noisy even as a min-of-trials on a shared machine, so it
// gets twice the threshold: a real 2x slowdown still trips it, scheduler
// jitter does not. Allocation count and bytes are deterministic, so they
// gate on the separate, stricter allocThreshold (<=0 selects
// DefaultAllocThreshold). Rungs present in only one file are ignored:
// the ladder may grow over time. An error means the files are not
// comparable at all (different seed or scale measure different work).
func Compare(baseline, current File, threshold, allocThreshold float64) ([]Regression, error) {
	if allocThreshold <= 0 {
		allocThreshold = DefaultAllocThreshold
	}
	if baseline.Seed != current.Seed || baseline.Scale != current.Scale {
		return nil, fmt.Errorf(
			"benchgate: baseline (seed=%d scale=%g) and current (seed=%d scale=%g) measure different workloads",
			baseline.Seed, baseline.Scale, current.Seed, current.Scale)
	}
	var regs []Regression
	for _, base := range baseline.Records {
		cur, ok := current.Find(base.Clients)
		if !ok {
			continue
		}
		check := func(metric string, b, c float64, thr float64, costly bool) {
			if b <= 0 {
				return
			}
			ratio := c / b
			bad := costly && ratio > 1+thr || !costly && ratio < 1-thr
			if bad {
				regs = append(regs, Regression{
					Clients: base.Clients, Metric: metric,
					Baseline: b, Current: c, Ratio: ratio,
				})
			}
		}
		check("wall_ns", float64(base.WallNS), float64(cur.WallNS), 2*threshold, true)
		check("allocs", float64(base.Allocs), float64(cur.Allocs), allocThreshold, true)
		check("alloc_bytes", float64(base.AllocBytes), float64(cur.AllocBytes), allocThreshold, true)
		check("aggregate_kbps", base.AggregateKBps, cur.AggregateKBps, threshold, false)
		if base.Clients >= JainGateMinClients {
			check("jain_fairness", base.JainFairness, cur.JainFairness, threshold, false)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Clients != regs[j].Clients {
			return regs[i].Clients < regs[j].Clients
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

// Report renders the gate outcome as text: every compared rung's verdict
// plus one line per regression.
func Report(baseline, current File, regs []Regression, threshold, allocThreshold float64) string {
	if allocThreshold <= 0 {
		allocThreshold = DefaultAllocThreshold
	}
	var b strings.Builder
	fmt.Fprintf(&b, "benchgate: threshold %.0f%% (allocs %.0f%%), baseline procs=%d current procs=%d\n",
		threshold*100, allocThreshold*100, baseline.Parallelism(), current.Parallelism())
	for _, base := range baseline.Records {
		cur, ok := current.Find(base.Clients)
		if !ok {
			fmt.Fprintf(&b, "clients=%-4d SKIP (no current measurement)\n", base.Clients)
			continue
		}
		fmt.Fprintf(&b, "clients=%-4d wall %.1fms -> %.1fms (%.2fx)  allocs %d -> %d (%d/client)  goodput %.1f -> %.1f KB/s  jain %.3f -> %.3f\n",
			base.Clients,
			float64(base.WallNS)/1e6, float64(cur.WallNS)/1e6,
			float64(cur.WallNS)/float64(base.WallNS),
			base.Allocs, cur.Allocs, cur.Allocs/uint64(max(base.Clients, 1)),
			base.AggregateKBps, cur.AggregateKBps,
			base.JainFairness, cur.JainFairness)
	}
	if len(regs) == 0 {
		b.WriteString("PASS: no metric regressed past the threshold\n")
		return b.String()
	}
	fmt.Fprintf(&b, "FAIL: %d regression(s)\n", len(regs))
	for _, r := range regs {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}
