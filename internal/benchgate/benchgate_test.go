package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() File {
	return File{
		Seed: 1, Scale: 0.05, NumCPU: 8,
		Records: []Record{
			{Clients: 1, AggregateKBps: 100, WallNS: 100e6, NSPerClient: 100e6, Allocs: 1000, AllocBytes: 1 << 20},
			{Clients: 8, AggregateKBps: 400, WallNS: 140e6, NSPerClient: 17e6, Allocs: 8000, AllocBytes: 8 << 20},
			{Clients: 64, AggregateKBps: 900, WallNS: 200e6, NSPerClient: 3e6, Allocs: 64000, AllocBytes: 64 << 20, JainFairness: 0.60},
			{Clients: 256, AggregateKBps: 700, WallNS: 300e6, NSPerClient: 1.2e6, Allocs: 128000, AllocBytes: 128 << 20, JainFairness: 0.50},
			{Clients: 1024, AggregateKBps: 500, WallNS: 500e6, NSPerClient: 0.5e6, Allocs: 256000, AllocBytes: 256 << 20, JainFairness: 0.40},
		},
	}
}

// TestFairnessRegressionTripsDenseRungs pins the fairness gate: a change
// that re-concentrates goodput onto a few clients — Jain drops while the
// aggregate stays flat — must fail at the dense 256/1024 rungs, where the
// historical collapse lived. Below JainGateMinClients the index is a
// small-sample number and must not gate.
func TestFairnessRegressionTripsDenseRungs(t *testing.T) {
	base := sample()
	cur := sample()
	// Synthetic fairness collapse: same aggregate, half the Jain index,
	// at one dense rung and one sparse rung.
	cur.Records[3].JainFairness = base.Records[3].JainFairness * 0.5 // clients=256
	cur.Records[2].JainFairness = base.Records[2].JainFairness * 0.5 // clients=64: under the gate floor
	regs, err := Compare(base, cur, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Clients != 256 || regs[0].Metric != "jain_fairness" {
		t.Fatalf("want exactly the dense-rung jain_fairness regression, got %v", regs)
	}
	if regs[0].Ratio >= 1 {
		t.Errorf("fairness regression ratio %.2f should be < 1", regs[0].Ratio)
	}
	// Within-threshold drift at a dense rung must pass.
	cur = sample()
	cur.Records[4].JainFairness = base.Records[4].JainFairness * 0.90
	regs, err = Compare(base, cur, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("within-threshold jain drift flagged: %v", regs)
	}
}

func TestCompareCleanPass(t *testing.T) {
	base := sample()
	cur := sample()
	// Within-threshold jitter must not trip the gate; wall time gets
	// double the margin (scheduler noise), so 1.25x at a 15% gate is ok.
	cur.Records[0].WallNS = int64(float64(base.Records[0].WallNS) * 1.25)
	cur.Records[1].AggregateKBps = base.Records[1].AggregateKBps * 0.90
	regs, err := Compare(base, cur, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("clean comparison flagged regressions: %v", regs)
	}
}

func TestCompareFlagsCostGrowth(t *testing.T) {
	base := sample()
	cur := sample()
	cur.Records[2].WallNS = int64(float64(base.Records[2].WallNS) * 1.50)
	cur.Records[0].Allocs = uint64(float64(base.Records[0].Allocs) * 2)
	regs, err := Compare(base, cur, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if regs[0].Clients != 1 || regs[0].Metric != "allocs" {
		t.Errorf("unexpected first regression: %+v", regs[0])
	}
	if regs[1].Clients != 64 || regs[1].Metric != "wall_ns" {
		t.Errorf("unexpected second regression: %+v", regs[1])
	}
}

// TestPureAllocRegressionTripsStricterGate pins the split-threshold
// contract: an allocation-count regression too small for the 15% general
// gate must still fail through the stricter default alloc gate, because
// allocation counts are deterministic and every percent is a real
// hot-path regression.
func TestPureAllocRegressionTripsStricterGate(t *testing.T) {
	base := sample()
	cur := sample()
	// +8% allocations, everything else identical: inside the general 15%
	// margin, outside the 5% alloc margin.
	cur.Records[2].Allocs = uint64(float64(base.Records[2].Allocs) * 1.08)
	cur.Records[2].AllocBytes = uint64(float64(base.Records[2].AllocBytes) * 1.08)
	regs, err := Compare(base, cur, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want allocs+alloc_bytes regressions at the default %.0f%% alloc gate, got %v",
			DefaultAllocThreshold*100, regs)
	}
	for _, r := range regs {
		if r.Clients != 64 || (r.Metric != "allocs" && r.Metric != "alloc_bytes") {
			t.Errorf("unexpected regression %+v", r)
		}
	}
	// The same drift passes when the caller relaxes the alloc gate to the
	// general threshold — the strictness really comes from the separate
	// knob, not from a hardcoded limit.
	regs, err = Compare(base, cur, 0.15, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("relaxed alloc gate still flagged: %v", regs)
	}
}

func TestCompareFlagsGoodputLoss(t *testing.T) {
	base := sample()
	cur := sample()
	// Faster but delivering far less goodput is a regression too.
	cur.Records[1].WallNS = base.Records[1].WallNS / 2
	cur.Records[1].AggregateKBps = base.Records[1].AggregateKBps * 0.5
	regs, err := Compare(base, cur, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "aggregate_kbps" {
		t.Fatalf("want one aggregate_kbps regression, got %v", regs)
	}
	if regs[0].Ratio >= 1 {
		t.Errorf("goodput regression ratio %.2f should be < 1", regs[0].Ratio)
	}
}

func TestCompareRejectsDifferentWorkload(t *testing.T) {
	base := sample()
	cur := sample()
	cur.Scale = 0.5
	if _, err := Compare(base, cur, 0.15, 0); err == nil {
		t.Fatal("Compare accepted baselines of different workloads")
	}
}

func TestCompareIgnoresMissingRungs(t *testing.T) {
	base := sample()
	cur := sample()
	cur.Records = cur.Records[:2] // ladder shrank; 64 has no counterpart
	regs, err := Compare(base, cur, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("missing rung flagged as regression: %v", regs)
	}
}

func TestLoadAndReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"seed":1,"scale":0.05,"num_cpu":8,"records":[{"clients":1,"wall_ns":100000000,"allocs":1000,"alloc_bytes":1048576,"aggregate_kbps":100}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := f.Find(1); !ok || r.WallNS != 100e6 {
		t.Fatalf("Find(1) = %+v, %v", r, ok)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load accepted a missing file")
	}

	regs, err := Compare(f, f, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Report(f, f, regs, 0.15, 0); !strings.Contains(got, "PASS") {
		t.Errorf("self-comparison report not PASS:\n%s", got)
	}
	bad := f
	bad.Records = []Record{{Clients: 1, WallNS: 300e6, Allocs: 1000, AllocBytes: 1 << 20, AggregateKBps: 100}}
	regs, err = Compare(f, bad, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Report(f, bad, regs, 0.15, 0); !strings.Contains(got, "FAIL") || !strings.Contains(got, "wall_ns") {
		t.Errorf("regression report missing FAIL/wall_ns:\n%s", got)
	}
}
