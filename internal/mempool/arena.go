// Package mempool provides small allocation amortizers for simulation hot
// paths. The contract throughout: pooled memory is owned by one
// single-goroutine scenario, never shared across fleet workers, and never
// reused while an alias may live — arenas only amortize allocation count,
// they do not recycle bytes.
package mempool

// arenaChunk is the bump-allocation block size. Wire images average ~100
// bytes, so one chunk absorbs several hundred allocations.
const arenaChunk = 1 << 16

// ByteArena hands out byte slices carved from large chunks, turning N
// small allocations into N/hundreds of chunk allocations. Slices are never
// reclaimed or reused: a chunk is garbage-collected only after every slice
// carved from it dies, so aliasing a returned slice indefinitely is safe
// (frame bodies decoded by receivers alias the wire image, for example).
// The zero value is ready to use. Not safe for concurrent use.
type ByteArena struct {
	buf []byte
}

// Take returns an empty slice with capacity exactly n, carved from the
// current chunk. Appending up to n bytes fills the reserved region;
// appending beyond n reallocates (full-slice-expression cap), so a
// misbehaving caller can never stomp a neighbouring allocation.
func (a *ByteArena) Take(n int) []byte {
	if n > cap(a.buf)-len(a.buf) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]byte, 0, size)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	return a.buf[off : off : off+n]
}
