package alloc

import (
	"testing"

	"spider/internal/dot11"
	"spider/internal/phy"
	"spider/internal/sim"
)

func sec(s int) sim.Time { return sim.Time(s) * 1_000_000_000 }

// fakeSense builds airtime/contender closures over mutable per-channel
// state, standing in for the driver's carrier-sense view.
type fakeSense struct {
	airtime [numChannels]sim.Time
	cont    [numChannels]int
}

func (f *fakeSense) airtimeFn(ch dot11.Channel) sim.Time { return f.airtime[ch] }
func (f *fakeSense) contFn(ch dot11.Channel) int         { return f.cont[ch] }

func newTestPolicy(id int) (*Policy, *fakeSense) {
	p := NewPolicy(Config{Variant: Decentralized}, id, phy.Defaults())
	return p, &fakeSense{}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Variant: Oracle}.WithDefaults()
	if c.Epoch != sec(1) || c.MaxLinks != 1 || c.HerdEpsilon <= 0 || c.SwitchMargin <= 0 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// Pacing targets must sit below the modeled share: the share model
	// prices data airtime only, and saturating the channel hands the
	// surplus to the collision lottery.
	if c.Headroom <= 0 || c.Headroom >= 1 {
		t.Fatalf("default headroom %v not in (0,1)", c.Headroom)
	}
	// Explicit values survive defaulting.
	c = Config{Variant: Oracle, Epoch: sec(2), MaxLinks: 3, HerdEpsilon: -1}.WithDefaults()
	if c.Epoch != sec(2) || c.MaxLinks != 3 || c.HerdEpsilon != 0 {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
}

func TestObserveInfersBusyChannel(t *testing.T) {
	p, s := newTestPolicy(0)
	chans := []dot11.Channel{dot11.Channel1, dot11.Channel6}
	// Channel 1 is 80% busy with 6 committed transmitters; channel 6
	// lightly contended (3 transmitters, near idle occupancy).
	now := sim.Time(0)
	p.Observe(now, s.airtimeFn, s.contFn, chans)
	for i := 0; i < 10; i++ {
		now += sec(1)
		s.airtime[dot11.Channel1] += sim.Time(float64(sec(1)) * 0.8)
		s.cont[dot11.Channel1] = 6
		s.airtime[dot11.Channel6] += sim.Time(float64(sec(1)) * 0.05)
		s.cont[dot11.Channel6] = 3
		p.Observe(now, s.airtimeFn, s.contFn, chans)
	}
	if l1, l6 := p.Load(dot11.Channel1), p.Load(dot11.Channel6); l1 <= l6 || l1 < 1 {
		t.Fatalf("busy channel load %v not above idle %v", l1, l6)
	}
	// The inferred load must steer both Score and PaceBps toward the
	// idle channel.
	bssid := dot11.MAC(0x100000)
	if s1, s6 := p.Score(bssid, dot11.Channel1, -60), p.Score(bssid, dot11.Channel6, -60); s1 >= s6 {
		t.Fatalf("score on busy channel %v >= idle %v", s1, s6)
	}
	if p1, p6 := p.PaceBps(dot11.Channel1, -60), p.PaceBps(dot11.Channel6, -60); p1 <= 0 || p6 <= 0 || p1 >= p6 {
		t.Fatalf("pace on busy channel %v must be positive and below lightly-loaded %v", p1, p6)
	}
}

func TestScorePrefersStrongerSignal(t *testing.T) {
	p, _ := newTestPolicy(0)
	bssid := dot11.MAC(0x100000)
	near := p.Score(bssid, dot11.Channel1, -50)
	far := p.Score(bssid, dot11.Channel1, -85)
	if near <= far {
		t.Fatalf("near score %v not above far %v", near, far)
	}
	if p.Score(bssid, dot11.Channel1, -200) != 0 {
		t.Fatal("out-of-range candidate must score 0")
	}
}

func TestPreferenceSpreadFansClientsOut(t *testing.T) {
	// Two equal-rate APs: across many clients, the hash spread must make
	// a substantial fraction prefer each AP — that is the anti-herding
	// property. And each client's preference must be stable.
	apA, apB := dot11.MAC(0x100000), dot11.MAC(0x100001)
	prefersA := 0
	const n = 64
	for id := 0; id < n; id++ {
		p := NewPolicy(Config{Variant: Decentralized}, id, phy.Defaults())
		a, b := p.Score(apA, dot11.Channel1, -60), p.Score(apB, dot11.Channel1, -60)
		if a == b {
			t.Fatalf("client %d scores tied: spread inactive", id)
		}
		if a > b {
			prefersA++
		}
		p2 := NewPolicy(Config{Variant: Decentralized}, id, phy.Defaults())
		if p2.Score(apA, dot11.Channel1, -60) != a {
			t.Fatalf("client %d preference not deterministic", id)
		}
	}
	if prefersA < n/4 || prefersA > 3*n/4 {
		t.Fatalf("herd did not fan out: %d/%d prefer one AP", prefersA, n)
	}
}

func TestPaceTracksContention(t *testing.T) {
	p, s := newTestPolicy(0)
	chans := []dot11.Channel{dot11.Channel1}
	// A never-sensed or uncontended channel runs unpaced: the raw
	// contender count includes the client's own radio and its AP, and
	// with no rival beyond those, self-throttling buys no fairness.
	if got := p.PaceBps(dot11.Channel1, -55); got != 0 {
		t.Fatalf("uncontended channel must be unpaced, got %v", got)
	}
	now := sim.Time(0)
	p.Observe(now, s.airtimeFn, s.contFn, chans)
	for i := 0; i < 20; i++ {
		now += sec(1)
		s.airtime[dot11.Channel1] += sim.Time(float64(sec(1)) * 0.3)
		s.cont[dot11.Channel1] = 3 // self + own AP + one rival
		p.Observe(now, s.airtimeFn, s.contFn, chans)
	}
	light := p.PaceBps(dot11.Channel1, -55)
	if light <= 0 {
		t.Fatal("contended channel must pace")
	}
	for i := 0; i < 20; i++ {
		now += sec(1)
		s.airtime[dot11.Channel1] += sec(1) // fully busy
		s.cont[dot11.Channel1] = 8
		p.Observe(now, s.airtimeFn, s.contFn, chans)
	}
	loaded := p.PaceBps(dot11.Channel1, -55)
	if loaded <= 0 || loaded >= light/2 {
		t.Fatalf("pace under saturation %v did not back off from light load %v", loaded, light)
	}
}
