package alloc

import (
	"spider/internal/dot11"
	"spider/internal/phy"
	"spider/internal/sim"
)

// numChannels mirrors the phy layer's flat per-channel arrays (802.11
// channels 1..14).
const numChannels = 15

// Policy is one client's decentralized allocator state: the contention it
// has inferred per channel from carrier-sense signals, and the scoring
// rules its LMM ranks candidate APs by. One Policy per client; it never
// reads another client's state — everything it knows comes through the
// signals a real station's firmware reports.
type Policy struct {
	cfg      Config
	clientID int
	phy      phy.Params

	// Per-channel occupancy inference: the last cumulative airtime sample
	// and its timestamp, folded into EWMAs of the busy fraction and the
	// instantaneous contender count.
	lastAt      sim.Time
	lastAirtime [numChannels]sim.Time
	busy        [numChannels]float64 // EWMA busy fraction (can exceed 1 transiently)
	cont        [numChannels]float64 // EWMA contender count
	sampled     bool
}

// NewPolicy creates one client's decentralized policy. params is the
// medium's effective PHY parameter set (for the rate-vs-distance model).
func NewPolicy(cfg Config, clientID int, params phy.Params) *Policy {
	return &Policy{cfg: cfg.WithDefaults(), clientID: clientID, phy: params}
}

// Config returns the effective (defaulted) configuration.
func (p *Policy) Config() Config { return p.cfg }

// MaxLinks returns the concurrent-link cap the policy imposes.
func (p *Policy) MaxLinks() int { return p.cfg.MaxLinks }

// Observe folds fresh carrier-sense readings into the per-channel load
// estimate. airtime returns the cumulative occupancy on a channel and
// contenders its instantaneous transmitter count (the driver exposes
// both); chans lists the channels the client's schedule visits. Called
// from the LMM's reselect pass, so estimates refresh at the reselect
// cadence with no extra timers.
func (p *Policy) Observe(now sim.Time, airtime func(dot11.Channel) sim.Time, contenders func(dot11.Channel) int, chans []dot11.Channel) {
	dt := now - p.lastAt
	if p.sampled && dt <= 0 {
		return
	}
	a := p.cfg.EWMAAlpha
	for _, ch := range chans {
		if ch <= 0 || int(ch) >= numChannels {
			continue
		}
		cum := airtime(ch)
		if p.sampled && dt > 0 {
			frac := float64(cum-p.lastAirtime[ch]) / float64(dt)
			p.busy[ch] = (1-a)*p.busy[ch] + a*frac
			p.cont[ch] = (1-a)*p.cont[ch] + a*float64(contenders(ch))
		}
		p.lastAirtime[ch] = cum
	}
	p.lastAt = now
	p.sampled = true
}

// Load returns the inferred rival count on a channel: the smoothed
// instantaneous transmitter count plus the busy fraction weighted into
// equivalent contenders. Zero on a channel the client has never sensed.
func (p *Policy) Load(ch dot11.Channel) float64 {
	if ch <= 0 || int(ch) >= numChannels {
		return 0
	}
	return p.cont[ch] + p.cfg.BusyWeight*p.busy[ch]
}

// EstRateBps models the PHY goodput toward an AP heard at the given RSSI,
// by inverting the log-distance model and applying the shared
// rate-vs-distance curve.
func (p *Policy) EstRateBps(rssi float64) float64 {
	return p.phy.ExpectedThroughput(phy.DistanceForRSSI(rssi))
}

// Score ranks a candidate AP for association: estimated rate over inferred
// channel load, scaled by the deterministic per-(client, AP) preference
// spread. Higher is better. Load is per channel, so a client whose
// schedule spans several channels backs off the busy ones; within one
// channel the spread factor fans equal-rate clients across equal APs
// instead of herding them onto the lexicographically first.
func (p *Policy) Score(bssid dot11.MACAddr, ch dot11.Channel, rssi float64) float64 {
	rate := p.EstRateBps(rssi)
	if rate <= 0 {
		return 0
	}
	return rate / (1 + p.Load(ch)) * prefSpread(p.clientID, bssid, p.cfg.HerdEpsilon)
}

// PaceBps returns the client's self-inferred fair-share pacing target on
// the channel it is associated on: its estimated PHY rate divided by the
// inferred rival count (plus itself), scaled by the configured headroom.
// Zero means unpaced.
//
// The raw contender count includes the client's own radio and its AP —
// the two transmitters its own traffic keeps busy — so those are
// discounted first: a station knows its own traffic and must not infer
// contention from it. With no rival left after the discount the client
// runs unpaced; self-throttling an uncontended link buys no fairness.
// The busy fraction is only charged when rivals remain, because an
// active lone client's own flow saturates the occupancy signal too.
func (p *Policy) PaceBps(ch dot11.Channel, rssi float64) float64 {
	rate := p.EstRateBps(rssi)
	if rate <= 0 {
		return 0
	}
	if ch <= 0 || int(ch) >= numChannels {
		return 0
	}
	rivals := p.cont[ch] - 2
	if rivals <= 0 {
		return 0
	}
	return p.cfg.Headroom * rate / (1 + rivals + p.cfg.BusyWeight*p.busy[ch])
}
