// Package alloc implements the proportional-fair association + airtime
// allocator that fixes the population fairness collapse: at 64 clients the
// paper's selfish utility heuristic piles every client onto the same APs
// and channels, collisions explode, and Jain fairness collapses while
// aggregate goodput drops below the 8-client figure.
//
// The allocator comes in two variants sharing one Config:
//
//   - Oracle: a centralized controller (wired into core) that re-solves the
//     proportional-fair association each epoch with full knowledge of every
//     client's position and every AP's channel and backhaul, using the
//     opt.SolvePF best-response solver and the phy throughput model. It
//     pins each client to its assigned AP and paces the client's flows to
//     its equal-airtime share, replacing TCP's equal-throughput outcome
//     with the PF equal-airtime one.
//
//   - Decentralized: each client's LMM runs its own Decentralized policy,
//     inferring contention purely from the carrier-sense signals the phy
//     layer exposes (cumulative channel occupancy, instantaneous
//     transmitter counts) and ranking candidate APs by estimated rate over
//     inferred load, with a deterministic per-(client, AP) preference
//     spread that keeps identical clients from herding onto one AP. No
//     client reads another client's state.
//
// Both variants are deterministic: the decentralized preference spread is
// a hash, not a random draw, so enabling allocation adds no RNG
// consumption and recorded runs stay byte-reproducible at any worker
// count.
package alloc

import (
	"spider/internal/dot11"
	"spider/internal/sim"
)

// Variant selects the allocator flavour.
type Variant uint8

const (
	// Oracle is the centralized PF allocator with full knowledge.
	Oracle Variant = iota + 1
	// Decentralized is the client-local contention-inference policy.
	Decentralized
)

func (v Variant) String() string {
	switch v {
	case Oracle:
		return "oracle"
	case Decentralized:
		return "decentralized"
	}
	return "none"
}

// Config tunes either allocator variant. Zero fields take defaults.
type Config struct {
	// Variant selects oracle or decentralized operation (required).
	Variant Variant
	// Epoch is the allocation period: the oracle re-solves, and both
	// variants re-pace flows, every Epoch (default 1 s).
	Epoch sim.Time
	// Headroom scales pacing targets relative to the modeled fair share
	// (default 0.6). The share model prices data airtime only; the real
	// channel also carries TCP acks, liveness pings, probes, and beacons,
	// and collision losses compound with the number of stations holding
	// committed frames — pacing at the raw share keeps the channel
	// saturated and hands the surplus to the collision lottery. Targeting
	// ~60% of the modeled share keeps utilization below the knee, where
	// every client actually delivers its cap.
	Headroom float64
	// MaxLinks caps concurrent links per allocated client (default 1):
	// under PF association a client holds its assigned AP, not every AP
	// in range — multi-AP herding is the collapse being fixed.
	MaxLinks int
	// HerdEpsilon is the decentralized variant's deterministic preference
	// spread: each (client, AP) pair's score is scaled by a hash-derived
	// factor in [1-ε, 1+ε], so equal-rate clients fan out across equal
	// APs instead of all ranking them identically (default 0.35).
	HerdEpsilon float64
	// BusyWeight converts the sensed channel busy fraction into
	// equivalent contenders in the decentralized load estimate
	// (default 4: a fully busy channel reads as four unseen rivals).
	BusyWeight float64
	// EWMAAlpha is the smoothing weight of fresh decentralized samples
	// (default 0.3).
	EWMAAlpha float64
	// SwitchMargin is the relative gain an alternative AP must offer
	// before the oracle moves a client off the AP it holds (default 0.5).
	// The PF model prices airtime but not churn; every steer costs the
	// client a reassociation, a DHCP exchange, and a TCP restart, so
	// marginal wins must not trigger moves.
	SwitchMargin float64
}

// WithDefaults returns the config with zero fields defaulted.
func (c Config) WithDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = sim.Time(1_000_000_000)
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.6
	}
	if c.MaxLinks <= 0 {
		c.MaxLinks = 1
	}
	if c.HerdEpsilon < 0 {
		c.HerdEpsilon = 0
	} else if c.HerdEpsilon == 0 {
		c.HerdEpsilon = 0.35
	}
	if c.BusyWeight <= 0 {
		c.BusyWeight = 4
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	if c.SwitchMargin < 0 {
		c.SwitchMargin = 0
	} else if c.SwitchMargin == 0 {
		c.SwitchMargin = 0.5
	}
	return c
}

// prefSpread returns the deterministic preference factor for a
// (client, BSSID) pair: an FNV-1a hash mapped into [1-ε, 1+ε]. A hash —
// not an RNG draw — so the policy consumes no randomness and two runs of
// the same population rank identically.
func prefSpread(clientID int, bssid dot11.MACAddr, eps float64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(uint32(clientID))) * prime64
	for _, b := range bssid {
		h = (h ^ uint64(b)) * prime64
	}
	// Top 53 bits -> uniform [0,1).
	u := float64(h>>11) / (1 << 53)
	return 1 + eps*(2*u-1)
}
