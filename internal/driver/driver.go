// Package driver implements Spider's virtualized Wi-Fi driver: a single
// physical radio time-sliced across 802.11 *channels* (design choice 1 of
// the paper), exposing multiple virtual interfaces (design choice 3), with
// per-channel transmit queues, PSM-announced switches, and opportunistic
// background scanning.
//
// The driver knows nothing about AP selection policy; the link management
// module (package lmm) drives it. A single-slot schedule degenerates to a
// stock single-channel driver, which is how the baselines are built.
package driver

import (
	"fmt"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/mempool"
	"spider/internal/obs"
	"spider/internal/phy"
	"spider/internal/sim"
)

// Config tunes the driver.
type Config struct {
	// NumVIFs is the number of virtual interfaces (the paper uses 7).
	NumVIFs int
	// LLTimeout is the link-layer retransmission timeout for join
	// handshake messages (default 1 s; Spider reduces it to 100 ms).
	LLTimeout sim.Time
	// JoinWindow bounds one link-layer join attempt.
	JoinWindow sim.Time
	// TxQueueLimit caps buffered outgoing frames per channel.
	TxQueueLimit int
	// ProbeInterval, when positive, broadcasts probe requests on the
	// active channel at this period (active scanning). Passive beacon
	// collection is always on.
	ProbeInterval sim.Time
	// ScanEntryTTL ages out scan-table entries not heard from.
	ScanEntryTTL sim.Time
	// Events, when non-nil, receives the driver's structured timeline
	// (channel switches, probes, auth/assoc transmissions, PSM drains).
	// Nil disables recording at zero cost.
	Events *obs.ClientLog
	// Obs, when non-nil, resolves the driver's counters. Nil disables.
	Obs *obs.Registry
}

// DefaultConfig returns Spider's deployed settings.
func DefaultConfig() Config {
	return Config{
		NumVIFs:       7,
		LLTimeout:     100 * 1000 * 1000,  // 100 ms
		JoinWindow:    3000 * 1000 * 1000, // 3 s
		TxQueueLimit:  100,
		ProbeInterval: 500 * 1000 * 1000,      // 500 ms
		ScanEntryTTL:  5 * 1000 * 1000 * 1000, // 5 s
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NumVIFs <= 0 {
		c.NumVIFs = d.NumVIFs
	}
	if c.LLTimeout <= 0 {
		c.LLTimeout = d.LLTimeout
	}
	if c.JoinWindow <= 0 {
		c.JoinWindow = d.JoinWindow
	}
	if c.TxQueueLimit <= 0 {
		c.TxQueueLimit = d.TxQueueLimit
	}
	if c.ScanEntryTTL <= 0 {
		c.ScanEntryTTL = d.ScanEntryTTL
	}
	return c
}

// numChannels sizes flat channel-indexed tables; index 0 is unused
// (channels are 1..14).
const numChannels = 15

// Slot is one entry in the channel schedule.
type Slot struct {
	Channel  dot11.Channel
	Duration sim.Time
}

// ScanEntry is one AP heard during opportunistic scanning.
type ScanEntry struct {
	BSSID    dot11.MACAddr
	SSID     string
	Channel  dot11.Channel
	RSSI     float64
	Open     bool
	LastSeen sim.Time
}

// Stats aggregates driver counters.
type Stats struct {
	Switches     uint64
	PSMSent      uint64
	PollsSent    uint64
	TxQueued     uint64
	TxQueueDrops uint64
	ProbesSent   uint64
}

// Driver is the virtual Wi-Fi driver.
type Driver struct {
	eng *sim.Engine
	rng *sim.RNG
	cfg Config

	radio *phy.Radio
	vifs  []*VIF

	schedule  []Slot
	slotIdx   int
	slotTimer *sim.Event
	switching bool

	// txq is indexed by channel number (1..14, numChannels entries);
	// per-channel backing arrays are retained across drains so steady-state
	// queueing does not allocate.
	txq     [numChannels][]dot11.Frame
	scan    map[dot11.MACAddr]ScanEntry
	scanOut []ScanEntry // scratch for ScanTable, reused across calls

	// bodies backs data-frame payloads built by the VIFs; the PHY copies
	// frames onto its own wire arena at Send, so these bytes only need to
	// live until the frame leaves the transmit queue.
	bodies mempool.ByteArena

	stopProbe func()
	stats     Stats

	// Resolved observability handles (nil-receiver no-ops when disabled).
	events      *obs.ClientLog
	obsSwitches *obs.Counter
	obsProbes   *obs.Counter
	obsDrops    *obs.Counter
	// pubProbes remembers how many probes were already pushed to
	// obsProbes; probe() fires every dwell for every client, so the count
	// is published as deltas rather than one atomic add per probe.
	pubProbes uint64
	// evChatty caches the log's per-client sampling decision (immutable
	// after the log exists) so the per-probe guard reads driver-local
	// state instead of chasing the ClientLog pointer every emission.
	// suppressed counts emissions the cached flag swallowed; PublishObs
	// settles them into the recorder so sampling loss stays loud.
	evChatty      bool
	suppressed    int64
	pubSuppressed int64
	// occSpan is the open schedule-occupancy span for the channel the
	// radio currently dwells on; switches close it and arrivals open the
	// next, so the span timeline tiles the run per channel.
	occSpan *obs.ActiveSpan

	// OnChannelActive, if set, fires each time the radio settles on a
	// channel (after the PS-Poll flush).
	OnChannelActive func(ch dot11.Channel)
}

// New creates a driver with its radio attached to medium at the mobile
// position pos. The radio starts on channel 1 with an empty (single-slot)
// schedule.
func New(eng *sim.Engine, rng *sim.RNG, medium *phy.Medium, mac dot11.MACAddr, pos func() geo.Point, cfg Config) *Driver {
	cfg = cfg.withDefaults()
	d := &Driver{
		eng:  eng,
		rng:  rng,
		cfg:  cfg,
		scan: make(map[dot11.MACAddr]ScanEntry),

		events:      cfg.Events,
		evChatty:    cfg.Events.ChattyFlag(),
		obsSwitches: cfg.Obs.Counter("driver.channel_switches"),
		obsProbes:   cfg.Obs.Counter("driver.probes_sent"),
		obsDrops:    cfg.Obs.Counter("driver.tx_queue_drops"),
	}
	d.radio = medium.NewRadio(mac, pos)
	d.radio.SetReceiver(d.onFrame)
	for i := 0; i < cfg.NumVIFs; i++ {
		d.vifs = append(d.vifs, &VIF{id: i, drv: d})
	}
	d.schedule = []Slot{{Channel: d.radio.Channel(), Duration: 0}}
	d.occSpan = d.events.StartSpan(eng.Now(), "occupancy")
	d.occSpan.SetChannel(int(d.radio.Channel()))
	if cfg.ProbeInterval > 0 {
		d.stopProbe = eng.Ticker(cfg.ProbeInterval, d.probe)
	}
	return d
}

// Close shuts the driver down.
func (d *Driver) Close() {
	if d.stopProbe != nil {
		d.stopProbe()
	}
	if d.slotTimer != nil {
		d.eng.Cancel(d.slotTimer)
	}
	d.radio.Close()
}

// MAC returns the radio's MAC address.
func (d *Driver) MAC() dot11.MACAddr { return d.radio.MAC() }

// Config returns the effective configuration.
func (d *Driver) Config() Config { return d.cfg }

// Stats returns a snapshot of the driver counters.
func (d *Driver) Stats() Stats { return d.stats }

// PublishObs pushes counts accumulated since the last call into the
// registry counters. The probe path counts only in plain stats; callers
// publish on a coarse cadence (and at finalize) so exported values are
// exact without a per-probe atomic add.
func (d *Driver) PublishObs() {
	d.obsProbes.Add(int64(d.stats.ProbesSent - d.pubProbes))
	d.pubProbes = d.stats.ProbesSent
	d.events.AddSuppressed(d.suppressed - d.pubSuppressed)
	d.pubSuppressed = d.suppressed
}

// TxAirtime returns the radio's cumulative transmit airtime.
func (d *Driver) TxAirtime() sim.Time { return d.radio.TxAirtime() }

// ChannelAirtime returns the cumulative occupancy the radio senses on ch
// (see phy.Medium.ChannelAirtime); decentralized allocation policies
// sample it to estimate per-channel busy fractions.
func (d *Driver) ChannelAirtime(ch dot11.Channel) sim.Time { return d.radio.ChannelAirtime(ch) }

// ChannelContenders returns the instantaneous count of radios with frames
// committed on ch (see phy.Medium.ChannelContenders).
func (d *Driver) ChannelContenders(ch dot11.Channel) int { return d.radio.ChannelContenders(ch) }

// SwitchTime returns the total time spent in hardware resets.
func (d *Driver) SwitchTime() sim.Time {
	return sim.Time(d.stats.Switches) * d.radio.SwitchLatency()
}

// VIFs returns the virtual interfaces.
func (d *Driver) VIFs() []*VIF { return d.vifs }

// CurrentChannel returns the channel the radio is tuned to (the target
// channel while a switch is in flight).
func (d *Driver) CurrentChannel() dot11.Channel { return d.radio.Channel() }

// Switching reports whether a hardware reset is in progress.
func (d *Driver) Switching() bool { return d.switching }

// Channels returns the distinct channels in the active schedule.
func (d *Driver) Channels() []dot11.Channel {
	var seen [numChannels]bool
	out := make([]dot11.Channel, 0, len(d.schedule))
	for _, s := range d.schedule {
		if !seen[s.Channel] {
			seen[s.Channel] = true
			out = append(out, s.Channel)
		}
	}
	return out
}

// Schedule returns a copy of the active schedule.
func (d *Driver) Schedule() []Slot { return append([]Slot(nil), d.schedule...) }

// SetSchedule installs a channel schedule. A single slot (any duration)
// parks the radio on that channel with no switching. Multi-slot schedules
// cycle round-robin; each duration is the dwell time on that channel,
// excluding the hardware switch cost. Durations must be positive for
// multi-slot schedules.
func (d *Driver) SetSchedule(slots []Slot) {
	if len(slots) == 0 {
		panic("driver: SetSchedule with empty schedule")
	}
	for _, s := range slots {
		if !s.Channel.Valid() {
			panic(fmt.Sprintf("driver: invalid channel %d in schedule", s.Channel))
		}
		if len(slots) > 1 && s.Duration <= 0 {
			panic("driver: multi-slot schedule needs positive durations")
		}
	}
	d.schedule = append([]Slot(nil), slots...)
	d.slotIdx = 0
	if d.slotTimer != nil {
		d.eng.Cancel(d.slotTimer)
		d.slotTimer = nil
	}
	if d.radio.Channel() == slots[0].Channel && !d.radio.Switching() {
		d.enterSlot()
		return
	}
	d.switchTo(slots[0].Channel)
}

// ScanTable returns live scan entries in BSSID order (a stable order, so
// downstream selection never depends on map iteration); callers rank by
// their own criteria as needed. Entries older than ScanEntryTTL are
// dropped. The returned slice is a scratch buffer reused by the next
// ScanTable call — consume it before calling again; copy it to retain.
func (d *Driver) ScanTable() []ScanEntry {
	cutoff := d.eng.Now() - d.cfg.ScanEntryTTL
	out := d.scanOut[:0]
	for b, e := range d.scan {
		if e.LastSeen < cutoff {
			delete(d.scan, b)
			continue
		}
		out = append(out, e)
	}
	// Insertion sort on BSSID bytes: tables hold a handful of APs, and
	// unlike sort.Slice this allocates neither a closure nor a swapper.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].BSSID.Less(out[j-1].BSSID); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	d.scanOut = out
	return out
}

// probe broadcasts an active probe request on the current channel.
func (d *Driver) probe() {
	if d.switching {
		return
	}
	d.stats.ProbesSent++
	// Probes are the single largest event class on a dense run (tens per
	// client-minute); the cached chatty flag lets a sampling policy drop
	// them per client before the event is even built.
	if d.evChatty {
		d.events.Emit(obs.Event{
			At:      d.eng.Now(),
			Kind:    obs.KindProbe,
			Channel: int(d.radio.Channel()),
		})
	} else if d.events.Enabled() {
		d.suppressed++
	}
	d.radio.Send(dot11.Frame{
		Type:  dot11.TypeProbeReq,
		Addr1: dot11.Broadcast,
		Seq:   d.radio.NextSeq(),
	}, nil)
}

// enterSlot arms the dwell timer for the current slot (multi-slot only).
func (d *Driver) enterSlot() {
	if len(d.schedule) <= 1 {
		return
	}
	dur := d.schedule[d.slotIdx].Duration
	d.slotTimer = d.eng.Schedule(dur, d.nextSlot)
}

func (d *Driver) nextSlot() {
	d.slotTimer = nil
	d.slotIdx = (d.slotIdx + 1) % len(d.schedule)
	next := d.schedule[d.slotIdx].Channel
	if next == d.radio.Channel() && !d.radio.Switching() {
		// Adjacent slots on the same channel: no switch needed.
		d.enterSlot()
		return
	}
	d.switchTo(next)
}

// switchTo performs the full Spider switch sequence: PSM announcements to
// associated APs on the old channel, hardware reset, then PS-Polls on the
// new channel and a flush of its queued frames.
func (d *Driver) switchTo(ch dot11.Channel) {
	old := d.radio.Channel()
	if !d.switching {
		for _, v := range d.vifs {
			if v.state == vifAssociated && v.channel == old {
				d.stats.PSMSent++
				d.radio.Send(dot11.Frame{
					Type:      dot11.TypeNullData,
					Addr1:     v.bssid,
					Addr3:     v.bssid,
					Seq:       d.radio.NextSeq(),
					PowerMgmt: true,
				}, nil)
			}
		}
	}
	d.switching = true
	d.stats.Switches++
	d.obsSwitches.Inc()
	d.occSpan.End(d.eng.Now())
	d.occSpan = nil
	d.events.Emit(obs.Event{
		At:      d.eng.Now(),
		Kind:    obs.KindChannelSwitch,
		Channel: int(ch),
		Value:   int64(old),
	})
	d.radio.SetChannel(ch, func() {
		d.switching = false
		d.arriveOn(ch)
	})
}

// arriveOn completes a switch: wake associated APs and drain the queue.
func (d *Driver) arriveOn(ch dot11.Channel) {
	d.occSpan = d.events.StartSpan(d.eng.Now(), "occupancy")
	d.occSpan.SetChannel(int(ch))
	for _, v := range d.vifs {
		if v.Joining() && v.channel == ch {
			v.onChannelArrive()
		}
	}
	for _, v := range d.vifs {
		if v.state == vifAssociated && v.channel == ch {
			d.stats.PollsSent++
			d.radio.Send(dot11.Frame{
				Type:  dot11.TypePSPoll,
				Addr1: v.bssid,
				Addr3: v.bssid,
				Seq:   d.radio.NextSeq(),
			}, nil)
		}
	}
	// Reset length but keep the backing array: the drain below sends
	// directly (the radio is tuned here, nothing re-queues to ch), so the
	// snapshot is safe to iterate and the array is reused next dwell.
	q := d.txq[ch]
	d.txq[ch] = q[:0]
	if len(q) > 0 {
		d.events.Emit(obs.Event{
			At:      d.eng.Now(),
			Kind:    obs.KindPSMDrain,
			Channel: int(ch),
			Value:   int64(len(q)),
		})
	}
	for _, f := range q {
		d.radio.Send(f, nil)
	}
	if d.OnChannelActive != nil {
		d.OnChannelActive(ch)
	}
	d.enterSlot()
}

// sendOrQueue transmits on the frame's channel immediately when tuned
// there, otherwise buffers it in that channel's queue.
func (d *Driver) sendOrQueue(ch dot11.Channel, f dot11.Frame) {
	if d.radio.Channel() == ch && !d.switching {
		d.radio.Send(f, nil)
		return
	}
	if len(d.txq[ch]) >= d.cfg.TxQueueLimit {
		d.stats.TxQueueDrops++
		d.obsDrops.Inc()
		return
	}
	d.stats.TxQueued++
	d.txq[ch] = append(d.txq[ch], f)
}

// onFrame dispatches received frames to the scan table and the VIFs.
func (d *Driver) onFrame(f dot11.Frame, info phy.RxInfo) {
	switch f.Type {
	case dot11.TypeBeacon, dot11.TypeProbeResp:
		// Reusing the previous entry's SSID string keeps the steady
		// beacon stream from allocating a copy per frame.
		prev := d.scan[f.Addr3]
		if body, err := dot11.DecodeBeaconBodyReuse(f.Body, prev.SSID); err == nil {
			d.scan[f.Addr3] = ScanEntry{
				BSSID:    f.Addr3,
				SSID:     body.SSID,
				Channel:  info.Channel,
				RSSI:     info.RSSI,
				Open:     body.Capabilities&0x0010 == 0,
				LastSeen: info.At,
			}
		}
	case dot11.TypeAuthResp, dot11.TypeAssocResp:
		for _, v := range d.vifs {
			if v.bssid == f.Addr3 && v.state != vifIdle {
				v.onMgmt(f)
			}
		}
	case dot11.TypeData:
		if f.Addr1 != d.MAC() {
			return
		}
		for _, v := range d.vifs {
			if v.bssid == f.Addr3 && v.state == vifAssociated {
				v.onData(f)
				return
			}
		}
	}
}
