package driver

import (
	"testing"
	"time"

	"spider/internal/dot11"
)

// The scan table's iteration order feeds the LMM's candidate ranking and
// the alloc controller's RSSI lookups, so it must be a pure function of
// the set of live APs — never of beacon arrival order or of the order APs
// were brought up. ScanTable documents BSSID order; these tests pin it.

func scanCfg() Config {
	return Config{
		NumVIFs:       2,
		LLTimeout:     100 * time.Millisecond,
		JoinWindow:    2 * time.Second,
		ProbeInterval: 500 * time.Millisecond,
	}
}

func tableBSSIDs(d *Driver) []dot11.MACAddr {
	entries := d.ScanTable()
	out := make([]dot11.MACAddr, len(entries))
	for i, e := range entries {
		out[i] = e.BSSID
	}
	return out
}

func TestScanTableSortedByBSSID(t *testing.T) {
	r := newRig(t, scanCfg())
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	// Bring APs up in descending-BSSID order: the table must come back
	// ascending regardless.
	for id := uint32(9); id >= 5; id-- {
		r.addAP(dot11.Channel1, id)
	}
	r.run(3 * 1e9)
	got := tableBSSIDs(r.drv)
	if len(got) != 5 {
		t.Fatalf("scan table has %d entries, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("scan table not in strictly ascending BSSID order at %d: %v", i, got)
		}
	}
}

func TestScanTableOrderIgnoresBringUpOrder(t *testing.T) {
	// Two rigs, same APs, opposite bring-up order: identical tables.
	up := newRig(t, scanCfg())
	up.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	for id := uint32(5); id <= 9; id++ {
		up.addAP(dot11.Channel1, id)
	}
	down := newRig(t, scanCfg())
	down.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	for id := uint32(9); id >= 5; id-- {
		down.addAP(dot11.Channel1, id)
	}
	up.run(3 * 1e9)
	down.run(3 * 1e9)
	a, b := tableBSSIDs(up.drv), tableBSSIDs(down.drv)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("table sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan order depends on AP bring-up order at %d: %v vs %v", i, a, b)
		}
	}
}
