package driver

import (
	"testing"
	"time"

	"spider/internal/ap"
	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipnet"
	"spider/internal/phy"
	"spider/internal/sim"
)

type rig struct {
	eng    *sim.Engine
	medium *phy.Medium
	drv    *Driver
	aps    []*ap.AP
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0 }
	r := &rig{eng: eng, medium: phy.NewMedium(eng, sim.NewRNG(11).Stream("phy"), params)}
	r.drv = New(eng, sim.NewRNG(12), r.medium, dot11.MAC(1), func() geo.Point { return geo.Point{} }, cfg)
	return r
}

// addAP places an open AP at the origin on ch with fast management and
// DHCP responses.
func (r *rig) addAP(ch dot11.Channel, id uint32) *ap.AP {
	gw := ipnet.AddrFrom4(10, byte(id), 0, 1)
	cfg := ap.DefaultConfig("net", ch, gw)
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = time.Millisecond, 2*time.Millisecond
	cfg.DHCP.RespDelayMin, cfg.DHCP.RespDelayMax = 5*time.Millisecond, 10*time.Millisecond
	a := ap.New(r.eng, sim.NewRNG(int64(100+id)), r.medium, geo.Point{X: 20}, dot11.MAC(1000+id), cfg, nil)
	r.aps = append(r.aps, a)
	return a
}

func (r *rig) run(d sim.Time) { r.eng.Run(r.eng.Now() + d) }

func TestPassiveScan(t *testing.T) {
	r := newRig(t, Config{ProbeInterval: -1}) // passive only (negative disables ticker)
	r.addAP(dot11.Channel1, 1)
	r.addAP(dot11.Channel6, 2) // other channel: must not appear
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	r.run(time.Second)
	entries := r.drv.ScanTable()
	if len(entries) != 1 {
		t.Fatalf("scan entries = %d, want 1 (only current channel audible)", len(entries))
	}
	e := entries[0]
	if e.Channel != dot11.Channel1 || e.SSID != "net" || !e.Open {
		t.Fatalf("entry = %+v", e)
	}
	if e.RSSI >= 0 {
		t.Fatalf("rssi = %v", e.RSSI)
	}
}

func TestActiveProbing(t *testing.T) {
	r := newRig(t, Config{ProbeInterval: 200 * time.Millisecond})
	r.addAP(dot11.Channel1, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	r.run(time.Second)
	if r.drv.Stats().ProbesSent < 3 {
		t.Fatalf("probes sent = %d", r.drv.Stats().ProbesSent)
	}
}

func TestScanEntryExpiry(t *testing.T) {
	r := newRig(t, Config{ScanEntryTTL: time.Second})
	a := r.addAP(dot11.Channel1, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	r.run(500 * time.Millisecond)
	if len(r.drv.ScanTable()) != 1 {
		t.Fatal("AP not discovered")
	}
	a.Close()
	r.run(2 * time.Second)
	if len(r.drv.ScanTable()) != 0 {
		t.Fatal("stale scan entry survived TTL")
	}
}

func joinVIF(t *testing.T, r *rig, v *VIF, bssid dot11.MACAddr, ch dot11.Channel, within sim.Time) bool {
	t.Helper()
	var result *bool
	v.OnJoinResult = func(ok bool) { result = &ok }
	v.Associate(bssid, ch)
	deadline := r.eng.Now() + within
	for result == nil && r.eng.Now() < deadline {
		r.run(50 * time.Millisecond)
	}
	return result != nil && *result
}

func TestSingleChannelJoin(t *testing.T) {
	r := newRig(t, Config{})
	a := r.addAP(dot11.Channel6, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel6}})
	r.run(100 * time.Millisecond)
	v := r.drv.VIFs()[0]
	if !joinVIF(t, r, v, a.BSSID(), dot11.Channel6, 5*time.Second) {
		t.Fatal("join failed on dedicated channel")
	}
	if !v.Associated() || v.BSSID() != a.BSSID() {
		t.Fatalf("vif state: assoc=%v bssid=%v", v.Associated(), v.BSSID())
	}
	if a.Stats().Associations != 1 {
		t.Fatalf("AP associations = %d", a.Stats().Associations)
	}
}

func TestJoinToClosedAPFails(t *testing.T) {
	r := newRig(t, Config{})
	eng := r.eng
	gw := ipnet.AddrFrom4(10, 9, 0, 1)
	cfg := ap.DefaultConfig("locked", dot11.Channel6, gw)
	cfg.Open = false
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = time.Millisecond, 2*time.Millisecond
	closed := ap.New(eng, sim.NewRNG(55), r.medium, geo.Point{X: 20}, dot11.MAC(999), cfg, nil)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel6}})
	r.run(100 * time.Millisecond)
	if joinVIF(t, r, r.drv.VIFs()[0], closed.BSSID(), dot11.Channel6, 5*time.Second) {
		t.Fatal("join to closed AP succeeded")
	}
	if r.drv.VIFs()[0].Associated() {
		t.Fatal("vif associated after rejection")
	}
}

func TestJoinWindowExpiry(t *testing.T) {
	r := newRig(t, Config{JoinWindow: time.Second, LLTimeout: 100 * time.Millisecond})
	// No AP at all: join must fail after the window.
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel6}})
	r.run(100 * time.Millisecond)
	v := r.drv.VIFs()[0]
	start := r.eng.Now()
	if joinVIF(t, r, v, dot11.MAC(404), dot11.Channel6, 5*time.Second) {
		t.Fatal("join to absent AP succeeded")
	}
	if gone := r.eng.Now() - start; gone < time.Second || gone > 2*time.Second {
		t.Fatalf("join failed after %v, want ≈1s window", gone)
	}
	if v.AuthAttempts < 5 {
		t.Fatalf("auth attempts = %d, want several at 100ms spacing", v.AuthAttempts)
	}
}

func TestAssociateBusyVIFPanics(t *testing.T) {
	r := newRig(t, Config{})
	v := r.drv.VIFs()[0]
	v.Associate(dot11.MAC(5), dot11.Channel1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Associate did not panic")
		}
	}()
	v.Associate(dot11.MAC(6), dot11.Channel1)
}

func TestScheduleCycling(t *testing.T) {
	r := newRig(t, Config{})
	r.drv.SetSchedule([]Slot{
		{Channel: dot11.Channel1, Duration: 100 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 100 * time.Millisecond},
		{Channel: dot11.Channel11, Duration: 100 * time.Millisecond},
	})
	visits := map[dot11.Channel]int{}
	r.drv.OnChannelActive = func(ch dot11.Channel) { visits[ch]++ }
	r.run(2 * time.Second)
	// Each full cycle is ~315 ms (3 dwells + 3 switches); expect ≈6 cycles.
	for _, ch := range dot11.OrthogonalChannels {
		if visits[ch] < 4 {
			t.Fatalf("channel %v visited %d times, want ≥4 (visits=%v)", ch, visits[ch], visits)
		}
	}
	if r.drv.Stats().Switches < 12 {
		t.Fatalf("switches = %d", r.drv.Stats().Switches)
	}
}

func TestSameChannelAdjacentSlotsNoSwitch(t *testing.T) {
	r := newRig(t, Config{})
	r.drv.SetSchedule([]Slot{
		{Channel: dot11.Channel1, Duration: 100 * time.Millisecond},
		{Channel: dot11.Channel1, Duration: 100 * time.Millisecond},
	})
	r.run(time.Second)
	if got := r.drv.Stats().Switches; got > 1 {
		t.Fatalf("switches = %d for same-channel schedule, want ≤1", got)
	}
}

func TestScheduleValidation(t *testing.T) {
	r := newRig(t, Config{})
	for _, slots := range [][]Slot{
		nil,
		{{Channel: 0}},
		{{Channel: dot11.Channel1, Duration: 0}, {Channel: dot11.Channel6, Duration: time.Millisecond}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetSchedule(%v) did not panic", slots)
				}
			}()
			r.drv.SetSchedule(slots)
		}()
	}
}

// dhcpOverVIF runs a DHCP acquisition over the virtual interface.
func dhcpOverVIF(t *testing.T, r *rig, v *VIF) dhcp.Lease {
	t.Helper()
	cli := dhcp.NewClient(r.eng, sim.NewRNG(31), dhcp.ReducedClientConfig(100*time.Millisecond), r.drv.MAC(),
		func(m dhcp.Message) {
			u := ipnet.UDP{SrcPort: ipnet.PortDHCPClient, DstPort: ipnet.PortDHCPServer, Payload: m.Bytes()}
			v.SendPacket(ipnet.Packet{Proto: ipnet.ProtoUDP, TTL: 64, Src: ipnet.Unspecified, Dst: ipnet.BroadcastAddr, Payload: u.AppendTo(nil)})
		}, func(l dhcp.Lease, ok bool) {
			if !ok {
				t.Fatal("dhcp over vif failed")
			}
		})
	var lease dhcp.Lease
	v.OnPacket = func(p ipnet.Packet) {
		if p.Proto != ipnet.ProtoUDP {
			return
		}
		u, err := ipnet.DecodeUDP(p.Payload)
		if err != nil || u.DstPort != ipnet.PortDHCPClient {
			return
		}
		if m, err := dhcp.DecodeMessage(u.Payload); err == nil {
			cli.Deliver(m)
			if m.Type == dhcp.Ack {
				lease = dhcp.Lease{IP: m.YourIP, Server: m.ServerIP}
			}
		}
	}
	cli.Start(nil)
	deadline := r.eng.Now() + 10*time.Second
	for lease.IP.IsUnspecified() && r.eng.Now() < deadline {
		r.run(100 * time.Millisecond)
	}
	if lease.IP.IsUnspecified() {
		t.Fatal("no lease over vif")
	}
	return lease
}

func TestPSMBufferingAcrossSwitch(t *testing.T) {
	r := newRig(t, Config{})
	a := r.addAP(dot11.Channel1, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	r.run(100 * time.Millisecond)
	v := r.drv.VIFs()[0]
	if !joinVIF(t, r, v, a.BSSID(), dot11.Channel1, 5*time.Second) {
		t.Fatal("join failed")
	}
	lease := dhcpOverVIF(t, r, v)

	var got []ipnet.Packet
	v.OnPacket = func(p ipnet.Packet) { got = append(got, p) }

	// Put the driver on a two-channel schedule so it leaves channel 1.
	r.drv.SetSchedule([]Slot{
		{Channel: dot11.Channel1, Duration: 200 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 200 * time.Millisecond},
	})
	// Wait until the driver is dwelling on channel 6, then push packets.
	for r.drv.CurrentChannel() != dot11.Channel6 || r.drv.Switching() {
		r.run(10 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		a.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: 64, Src: ipnet.AddrFrom4(1, 1, 1, 1), Dst: lease.IP, Payload: []byte("x")})
	}
	r.run(150 * time.Millisecond) // packets cross the backhaul while client away
	if len(got) != 0 {
		t.Fatalf("%d packets leaked while off channel", len(got))
	}
	if _, psm, _, buffered := a.StationState(r.drv.MAC()); !psm || buffered == 0 {
		t.Fatalf("AP state psm=%v buffered=%d, want buffering", psm, buffered)
	}
	// After the driver returns and polls, the buffer must flush.
	r.run(500 * time.Millisecond)
	if len(got) != 5 {
		t.Fatalf("delivered %d packets after return, want 5", len(got))
	}
}

func TestPerChannelTxQueueFlushesOnReturn(t *testing.T) {
	r := newRig(t, Config{})
	a := r.addAP(dot11.Channel1, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	r.run(100 * time.Millisecond)
	v := r.drv.VIFs()[0]
	if !joinVIF(t, r, v, a.BSSID(), dot11.Channel1, 5*time.Second) {
		t.Fatal("join failed")
	}
	lease := dhcpOverVIF(t, r, v)
	r.drv.SetSchedule([]Slot{
		{Channel: dot11.Channel1, Duration: 200 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 200 * time.Millisecond},
	})
	for r.drv.CurrentChannel() != dot11.Channel6 || r.drv.Switching() {
		r.run(10 * time.Millisecond)
	}
	// Transmit while away: must be queued, not lost.
	before := a.Stats().UplinkPackets
	v.SendPacket(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: 64, Src: lease.IP, Dst: ipnet.AddrFrom4(8, 8, 8, 8)})
	if r.drv.Stats().TxQueued != 1 {
		t.Fatalf("TxQueued = %d, want 1", r.drv.Stats().TxQueued)
	}
	r.run(500 * time.Millisecond)
	if a.Stats().UplinkPackets != before+1 {
		t.Fatalf("uplink packets = %d, want %d", a.Stats().UplinkPackets, before+1)
	}
}

func TestTxQueueCap(t *testing.T) {
	r := newRig(t, Config{TxQueueLimit: 3})
	a := r.addAP(dot11.Channel1, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	r.run(100 * time.Millisecond)
	v := r.drv.VIFs()[0]
	if !joinVIF(t, r, v, a.BSSID(), dot11.Channel1, 5*time.Second) {
		t.Fatal("join failed")
	}
	r.drv.SetSchedule([]Slot{
		{Channel: dot11.Channel1, Duration: 100 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 100 * time.Millisecond},
	})
	for r.drv.CurrentChannel() != dot11.Channel6 || r.drv.Switching() {
		r.run(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		v.SendPacket(ipnet.Packet{Proto: ipnet.ProtoTCP})
	}
	st := r.drv.Stats()
	if st.TxQueued != 3 || st.TxQueueDrops != 7 {
		t.Fatalf("queued=%d drops=%d, want 3/7", st.TxQueued, st.TxQueueDrops)
	}
}

func TestDisassociateInformsAP(t *testing.T) {
	r := newRig(t, Config{})
	a := r.addAP(dot11.Channel1, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	r.run(100 * time.Millisecond)
	v := r.drv.VIFs()[0]
	if !joinVIF(t, r, v, a.BSSID(), dot11.Channel1, 5*time.Second) {
		t.Fatal("join failed")
	}
	v.Disassociate()
	r.run(100 * time.Millisecond)
	if assoc, _, _, _ := a.StationState(r.drv.MAC()); assoc {
		t.Fatal("AP still associated after deauth")
	}
	if v.Associated() || v.BSSID() != (dot11.MACAddr{}) {
		t.Fatal("vif not reset")
	}
}

func TestFractionalScheduleDegradesJoin(t *testing.T) {
	// With 25% of a 400 ms period on the AP's channel and a lossy medium,
	// joins take longer than with 100%: run several trials and compare
	// mean completion times.
	mean := func(frac float64, seed int64) sim.Time {
		eng := sim.NewEngine()
		params := phy.Defaults()
		params.Loss = func(float64) float64 { return 0.1 }
		medium := phy.NewMedium(eng, sim.NewRNG(seed).Stream("phy"), params)
		drv := New(eng, sim.NewRNG(seed+1), medium, dot11.MAC(1), func() geo.Point { return geo.Point{} }, Config{JoinWindow: 4 * time.Second})
		gw := ipnet.AddrFrom4(10, 1, 0, 1)
		apCfg := ap.DefaultConfig("net", dot11.Channel6, gw)
		apCfg.MgmtDelayMin, apCfg.MgmtDelayMax = 5*time.Millisecond, 50*time.Millisecond
		access := ap.New(eng, sim.NewRNG(seed+2), medium, geo.Point{X: 20}, dot11.MAC(1000), apCfg, nil)
		period := 400 * time.Millisecond
		on := sim.Time(float64(period) * frac)
		if frac >= 1 {
			drv.SetSchedule([]Slot{{Channel: dot11.Channel6}})
		} else {
			drv.SetSchedule([]Slot{
				{Channel: dot11.Channel6, Duration: on},
				{Channel: dot11.Channel1, Duration: period - on},
			})
		}
		eng.Run(100 * time.Millisecond)
		var total sim.Time
		n := 0
		for trial := 0; trial < 20; trial++ {
			v := drv.VIFs()[0]
			start := eng.Now()
			var result *bool
			v.OnJoinResult = func(ok bool) { result = &ok }
			v.Associate(access.BSSID(), dot11.Channel6)
			for result == nil {
				eng.Run(eng.Now() + 10*time.Millisecond)
			}
			if *result {
				total += eng.Now() - start
				n++
			}
			eng.Run(eng.Now() + 50*time.Millisecond)
			v.Disassociate()
			eng.Run(eng.Now() + 50*time.Millisecond)
		}
		if n == 0 {
			return sim.Infinity
		}
		return total / sim.Time(n)
	}
	full := mean(1.0, 1)
	quarter := mean(0.25, 1)
	if quarter <= full {
		t.Fatalf("fractional schedule join mean %v <= dedicated %v", quarter, full)
	}
}

func TestOpportunisticScanAcrossRotation(t *testing.T) {
	// Rotating across three channels must discover APs on all of them
	// without any dedicated scan phase.
	r := newRig(t, Config{})
	r.addAP(dot11.Channel1, 1)
	r.addAP(dot11.Channel6, 2)
	r.addAP(dot11.Channel11, 3)
	r.drv.SetSchedule([]Slot{
		{Channel: dot11.Channel1, Duration: 150 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 150 * time.Millisecond},
		{Channel: dot11.Channel11, Duration: 150 * time.Millisecond},
	})
	r.run(3 * time.Second)
	seen := map[dot11.Channel]bool{}
	for _, e := range r.drv.ScanTable() {
		seen[e.Channel] = true
	}
	for _, ch := range dot11.OrthogonalChannels {
		if !seen[ch] {
			t.Fatalf("channel %v never discovered during rotation (seen=%v)", ch, seen)
		}
	}
}

func TestSendPacketOnIdleVIFDropped(t *testing.T) {
	r := newRig(t, Config{})
	v := r.drv.VIFs()[0]
	v.SendPacket(ipnet.Packet{Proto: ipnet.ProtoTCP}) // must not panic or queue
	if r.drv.Stats().TxQueued != 0 {
		t.Fatal("idle vif queued a packet")
	}
}

func TestAccessors(t *testing.T) {
	r := newRig(t, Config{})
	sched := []Slot{
		{Channel: dot11.Channel1, Duration: 100 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 100 * time.Millisecond},
		{Channel: dot11.Channel1, Duration: 50 * time.Millisecond},
	}
	r.drv.SetSchedule(sched)
	chans := r.drv.Channels()
	if len(chans) != 2 || chans[0] != dot11.Channel1 || chans[1] != dot11.Channel6 {
		t.Fatalf("Channels() = %v", chans)
	}
	got := r.drv.Schedule()
	if len(got) != 3 || got[2].Duration != 50*time.Millisecond {
		t.Fatalf("Schedule() = %v", got)
	}
	// The returned slice is a copy.
	got[0].Channel = dot11.Channel11
	if r.drv.Schedule()[0].Channel != dot11.Channel1 {
		t.Fatal("Schedule() leaked internal state")
	}
	if r.drv.MAC() != dot11.MAC(1) {
		t.Fatalf("MAC() = %v", r.drv.MAC())
	}
}

func TestSwitchTimeAccounting(t *testing.T) {
	r := newRig(t, Config{})
	r.drv.SetSchedule([]Slot{
		{Channel: dot11.Channel1, Duration: 100 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 100 * time.Millisecond},
	})
	r.run(2 * time.Second)
	st := r.drv.Stats()
	if st.Switches == 0 {
		t.Fatal("no switches")
	}
	want := sim.Time(st.Switches) * 5 * time.Millisecond
	if got := r.drv.SwitchTime(); got != want {
		t.Fatalf("SwitchTime = %v, want %v", got, want)
	}
}

func TestTxAirtimeGrowsWithTraffic(t *testing.T) {
	r := newRig(t, Config{ProbeInterval: 100 * time.Millisecond})
	r.addAP(dot11.Channel1, 1)
	r.drv.SetSchedule([]Slot{{Channel: dot11.Channel1}})
	before := r.drv.TxAirtime()
	r.run(2 * time.Second)
	if got := r.drv.TxAirtime(); got <= before {
		t.Fatalf("TxAirtime did not grow: %v", got)
	}
}
