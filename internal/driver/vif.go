package driver

import (
	"fmt"

	"spider/internal/dot11"
	"spider/internal/ipnet"
	"spider/internal/obs"
	"spider/internal/sim"
)

type vifState uint8

const (
	vifIdle vifState = iota
	vifAuthWait
	vifAssocWait
	vifAssociated
)

// VIF is one virtual interface — the driver-level analogue of the per-AP
// Linux network device Spider exposes. Each VIF binds to at most one AP and
// carries an independent link-layer join state machine.
type VIF struct {
	id  int
	drv *Driver

	state   vifState
	bssid   dot11.MACAddr
	channel dot11.Channel

	deadline sim.Time
	timer    *sim.Event

	// OnJoinResult reports the outcome of Associate: true once the
	// four-way handshake completes, false on window expiry or rejection.
	OnJoinResult func(ok bool)
	// OnPacket receives decoded IP packets addressed to this interface.
	OnPacket func(ipnet.Packet)
	// Span, when non-nil, is the Join root span this attempt's link-layer
	// phases nest under (set by the LMM before Associate). The VIF opens
	// contiguous children — scan (waiting for the radio), probe (dwell to
	// first frame), auth, assoc — so phase durations sum to the handshake
	// exactly.
	Span *obs.ActiveSpan

	phase     *obs.ActiveSpan
	phaseName string

	// Stats.
	AuthAttempts  int
	AssocAttempts int
}

// ID returns the interface index.
func (v *VIF) ID() int { return v.id }

// Associated reports whether the four-way handshake has completed.
func (v *VIF) Associated() bool { return v.state == vifAssociated }

// Joining reports whether a link-layer join is in progress.
func (v *VIF) Joining() bool { return v.state == vifAuthWait || v.state == vifAssocWait }

// BSSID returns the bound AP, or the zero address when idle.
func (v *VIF) BSSID() dot11.MACAddr {
	if v.state == vifIdle {
		return dot11.MACAddr{}
	}
	return v.bssid
}

// Channel returns the channel of the bound AP.
func (v *VIF) Channel() dot11.Channel { return v.channel }

// Associate starts the link-layer join (auth + assoc) to an AP on the given
// channel. The channel need not be the radio's current one: handshake
// frames transmit only while the radio dwells there, exactly the
// fractional-time dynamic the paper models. Panics if the VIF is busy.
func (v *VIF) Associate(bssid dot11.MACAddr, ch dot11.Channel) {
	if v.state != vifIdle {
		panic(fmt.Sprintf("driver: Associate on busy vif %d", v.id))
	}
	if !ch.Valid() {
		panic("driver: Associate with invalid channel")
	}
	v.state = vifAuthWait
	v.bssid = bssid
	v.channel = ch
	v.deadline = v.drv.eng.Now() + v.drv.cfg.JoinWindow
	v.startPhase("scan")
	v.sendAuth()
}

// startPhase closes the open join phase and opens the next at the same
// instant, keeping the phase children contiguous under the root span.
func (v *VIF) startPhase(name string) {
	now := v.drv.eng.Now()
	v.phase.EndStatus(now, "ok")
	v.phase = v.Span.StartChild(now, name)
	if v.phase != nil {
		v.phase.SetBSSID(v.bssid.String())
		v.phase.SetChannel(int(v.channel))
	}
	v.phaseName = name
}

// onChannelArrive notes the radio settling on this joining VIF's channel:
// the scan wait is over and the probe-to-first-frame dwell begins.
func (v *VIF) onChannelArrive() {
	if v.phaseName == "scan" {
		v.startPhase("probe")
	}
}

// Disassociate releases the binding, notifying the AP when reachable.
func (v *VIF) Disassociate() {
	if v.state == vifIdle {
		return
	}
	if v.state == vifAssociated && v.drv.radio.Channel() == v.channel && !v.drv.switching {
		v.drv.radio.Send(dot11.Frame{
			Type:  dot11.TypeDeauth,
			Addr1: v.bssid,
			Addr3: v.bssid,
			Seq:   v.drv.radio.NextSeq(),
		}, nil)
	}
	v.reset()
}

func (v *VIF) reset() {
	v.cancelTimer()
	// An abandoned handshake closes its open phase here; completed joins
	// already closed theirs, so this End is the idempotent no-op.
	v.phase.EndStatus(v.drv.eng.Now(), "aborted")
	v.phase, v.phaseName = nil, ""
	v.Span = nil
	v.state = vifIdle
	v.bssid = dot11.MACAddr{}
	v.channel = 0
}

func (v *VIF) cancelTimer() {
	if v.timer != nil {
		v.drv.eng.Cancel(v.timer)
		v.timer = nil
	}
}

func (v *VIF) armTimer() {
	v.cancelTimer()
	v.timer = v.drv.eng.Schedule(v.drv.cfg.LLTimeout, v.onTimeout)
}

func (v *VIF) onTimeout() {
	v.timer = nil
	switch v.state {
	case vifAuthWait:
		if v.drv.eng.Now() >= v.deadline {
			v.fail()
			return
		}
		v.sendAuth()
	case vifAssocWait:
		if v.drv.eng.Now() >= v.deadline {
			v.fail()
			return
		}
		v.sendAssoc()
	}
}

func (v *VIF) fail() {
	v.phase.EndStatus(v.drv.eng.Now(), "fail")
	cb := v.OnJoinResult
	v.reset()
	if cb != nil {
		cb(false)
	}
}

// sendAuth transmits an authentication request if the radio is on the AP's
// channel; either way the retransmission timer is armed, so attempts recur
// every LLTimeout while the join window lasts.
func (v *VIF) sendAuth() {
	if v.drv.radio.Channel() == v.channel && !v.drv.switching {
		v.AuthAttempts++
		if v.phaseName == "scan" || v.phaseName == "probe" {
			// First frame on air ends the pre-handshake wait.
			v.startPhase("auth")
		}
		// Record only real transmissions, not timer re-arms while the
		// radio dwells elsewhere — the timeline shows frames on air. The
		// chatty guard keeps the disabled path (and sampled-out clients)
		// from rendering the BSSID.
		if v.drv.evChatty {
			v.drv.events.Emit(obs.Event{
				At:      v.drv.eng.Now(),
				Kind:    obs.KindAuth,
				BSSID:   v.bssid.String(),
				Channel: int(v.channel),
				Value:   int64(v.AuthAttempts),
			})
		} else if v.drv.events.Enabled() {
			v.drv.suppressed++
		}
		body := dot11.AuthBody{SeqNum: 1}
		v.drv.radio.Send(dot11.Frame{
			Type:  dot11.TypeAuth,
			Addr1: v.bssid,
			Addr3: v.bssid,
			Seq:   v.drv.radio.NextSeq(),
			Body:  body.AppendTo(nil),
		}, nil)
	}
	v.armTimer()
}

func (v *VIF) sendAssoc() {
	if v.drv.radio.Channel() == v.channel && !v.drv.switching {
		v.AssocAttempts++
		if v.drv.evChatty {
			v.drv.events.Emit(obs.Event{
				At:      v.drv.eng.Now(),
				Kind:    obs.KindAssoc,
				BSSID:   v.bssid.String(),
				Channel: int(v.channel),
				Value:   int64(v.AssocAttempts),
			})
		} else if v.drv.events.Enabled() {
			v.drv.suppressed++
		}
		v.drv.radio.Send(dot11.Frame{
			Type:  dot11.TypeAssocReq,
			Addr1: v.bssid,
			Addr3: v.bssid,
			Seq:   v.drv.radio.NextSeq(),
		}, nil)
	}
	v.armTimer()
}

// onMgmt handles auth/assoc responses from the bound AP.
func (v *VIF) onMgmt(f dot11.Frame) {
	switch {
	case f.Type == dot11.TypeAuthResp && v.state == vifAuthWait:
		body, err := dot11.DecodeAuthBody(f.Body)
		if err != nil {
			return
		}
		if body.Status != 0 {
			v.fail()
			return
		}
		v.state = vifAssocWait
		v.startPhase("assoc")
		v.sendAssoc()
	case f.Type == dot11.TypeAssocResp && v.state == vifAssocWait:
		body, err := dot11.DecodeAssocRespBody(f.Body)
		if err != nil {
			return
		}
		if body.Status != 0 {
			v.fail()
			return
		}
		v.cancelTimer()
		v.state = vifAssociated
		v.phase.EndStatus(v.drv.eng.Now(), "ok")
		v.phase, v.phaseName = nil, ""
		v.Span = nil // link-layer phases done; DHCP children follow
		if v.OnJoinResult != nil {
			v.OnJoinResult(true)
		}
	}
}

// onData decodes and delivers a data frame's IP payload.
func (v *VIF) onData(f dot11.Frame) {
	pkt, err := ipnet.Decode(f.Body)
	if err != nil {
		return
	}
	if v.OnPacket != nil {
		v.OnPacket(pkt)
	}
}

// SendPacket transmits an IP packet to the bound AP, buffering it in the
// per-channel queue while the radio is elsewhere. Packets on idle VIFs are
// dropped.
func (v *VIF) SendPacket(p ipnet.Packet) {
	if v.state != vifAssociated {
		return
	}
	v.drv.sendOrQueue(v.channel, dot11.Frame{
		Type:  dot11.TypeData,
		Addr1: v.bssid,
		Addr3: v.bssid,
		Seq:   v.drv.radio.NextSeq(),
		Body:  p.AppendTo(v.drv.bodies.Take(p.WireLen())),
	})
}
