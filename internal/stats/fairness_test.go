package stats

import (
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
		want float64
	}{
		// Degenerate samples: every client received the same (zero)
		// share, which is perfect fairness, not a 0/0.
		{"empty", nil, 1},
		{"all zero", []float64{0, 0, 0}, 1},
		{"one zero client", []float64{0}, 1},
		{"perfectly fair", []float64{5, 5, 5, 5}, 1},
		{"single client", []float64{7}, 1},
		{"one hog of four", []float64{12, 0, 0, 0}, 0.25},
		{"two of four", []float64{6, 6, 0, 0}, 0.5},
		{"near-zero but nonzero", []float64{1e-300, 1e-300}, 1},
	} {
		if got := Jain(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Jain = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestJainBounds(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	j := Jain(xs)
	if j <= 1.0/float64(len(xs)) || j > 1 {
		t.Fatalf("Jain = %v outside (1/n, 1]", j)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 2.5", got)
	}
	if xs[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty percentile = %v, want NaN", got)
	}
	// Agrees with the CDF quantile on the same data.
	c := NewCDF(xs)
	if a, b := Percentile(xs, 0.95), c.Quantile(0.95); math.Abs(a-b) > 1e-12 {
		t.Fatalf("Percentile %v != CDF.Quantile %v", a, b)
	}
}
