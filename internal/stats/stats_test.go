package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 || one.Median != 7 {
		t.Fatalf("singleton = %+v", one)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if NewCDF(nil).P(1) != 0 {
		t.Fatal("empty P should be 0")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 || pts[10].Y != 1 {
		t.Fatalf("endpoints = %+v, %+v", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points not monotone")
		}
	}
	if NewCDF(nil).Points(5) != nil {
		t.Fatal("empty Points should be nil")
	}
	single := NewCDF([]float64{3, 3}).Points(4)
	if len(single) != 1 || single[0].Y != 1 {
		t.Fatalf("degenerate points = %+v", single)
	}
}

// Property: P is monotone and bounded; Quantile inverts P approximately.
func TestPropertyCDF(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := c.P(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.P(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesConnectivity(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	// Data in seconds 0,1 and 5; total 10 s → 30% connectivity.
	ts.Add(100*time.Millisecond, 10)
	ts.Add(900*time.Millisecond, 10)
	ts.Add(1500*time.Millisecond, 5)
	ts.Add(5200*time.Millisecond, 1)
	got := ts.ConnectivityFraction(10 * time.Second)
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("connectivity = %v, want 0.3", got)
	}
	if ts.Total() != 26 {
		t.Fatalf("total = %v", ts.Total())
	}
}

func TestTimeSeriesRuns(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	for _, sec := range []int{0, 1, 2, 5, 8, 9} {
		ts.Add(time.Duration(sec)*time.Second+time.Millisecond, 1)
	}
	conns := ts.ConnectionDurations(10 * time.Second)
	wantConns := []float64{3, 1, 2}
	if len(conns) != len(wantConns) {
		t.Fatalf("connections = %v", conns)
	}
	for i := range conns {
		if conns[i] != wantConns[i] {
			t.Fatalf("connections = %v, want %v", conns, wantConns)
		}
	}
	gaps := ts.DisruptionDurations(10 * time.Second)
	wantGaps := []float64{2, 2}
	if len(gaps) != len(wantGaps) || gaps[0] != 2 || gaps[1] != 2 {
		t.Fatalf("disruptions = %v, want %v", gaps, wantGaps)
	}
}

func TestTimeSeriesRates(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(0, 1000)
	ts.Add(500*time.Millisecond, 500)
	ts.Add(3*time.Second, 200)
	rates := ts.NonzeroRates(5 * time.Second)
	if len(rates) != 2 || rates[0] != 1500 || rates[1] != 200 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestTimeSeriesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bucket did not panic")
		}
	}()
	NewTimeSeries(0)
}

// Property: connectivity equals 1 - (sum of disruptions)/total (in whole
// buckets).
func TestPropertyRunsPartition(t *testing.T) {
	f := func(marks []uint8) bool {
		ts := NewTimeSeries(time.Second)
		total := 30 * time.Second
		for _, m := range marks {
			ts.Add(time.Duration(m%30)*time.Second, 1)
		}
		connSecs := 0.0
		for _, c := range ts.ConnectionDurations(total) {
			connSecs += c
		}
		gapSecs := 0.0
		for _, g := range ts.DisruptionDurations(total) {
			gapSecs += g
		}
		if connSecs+gapSecs != 30 {
			return false
		}
		return math.Abs(ts.ConnectivityFraction(total)-connSecs/30) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	uppers := []float64{10, 20, 40, 80}
	cases := []struct {
		name   string
		uppers []float64
		counts []int64
		q      float64
		want   float64
		nan    bool
	}{
		{name: "empty-slices", nan: true},
		{name: "zero-counts", uppers: uppers, counts: []int64{0, 0, 0, 0}, nan: true},
		{name: "mismatched-lengths", uppers: uppers, counts: []int64{1, 2}, nan: true},
		// Single non-empty bucket: interpolate across [20, 40].
		{name: "single-bucket-min", uppers: uppers, counts: []int64{0, 0, 4, 0}, q: 0, want: 20},
		{name: "single-bucket-median", uppers: uppers, counts: []int64{0, 0, 4, 0}, q: 0.5, want: 30},
		{name: "single-bucket-max", uppers: uppers, counts: []int64{0, 0, 4, 0}, q: 1, want: 40},
		// First bucket's lower bound is 0.
		{name: "first-bucket", uppers: uppers, counts: []int64{2, 0, 0, 0}, q: 0.5, want: 5},
		// Uniform counts: the median sits exactly on a bucket boundary.
		{name: "boundary", uppers: uppers, counts: []int64{1, 1, 1, 1}, q: 0.5, want: 20},
		// Interpolation inside the third bucket: rank 2.5 of 4 is at the
		// midpoint of [20, 40].
		{name: "interior", uppers: uppers, counts: []int64{1, 1, 1, 1}, q: 0.625, want: 30},
		// Skewed mass: 9 of 10 observations in the first bucket.
		{name: "skewed-p50", uppers: uppers, counts: []int64{9, 0, 0, 1}, q: 0.5, want: 10.0 * 5 / 9},
		{name: "skewed-p95", uppers: uppers, counts: []int64{9, 0, 0, 1}, q: 0.95, want: 40 + 0.5*40},
		// q clamps.
		{name: "clamp-low", uppers: uppers, counts: []int64{1, 1, 1, 1}, q: -3, want: 0},
		{name: "clamp-high", uppers: uppers, counts: []int64{1, 1, 1, 1}, q: 7, want: 80},
	}
	for _, tc := range cases {
		got := QuantileFromBuckets(tc.uppers, tc.counts, tc.q)
		if tc.nan {
			if !math.IsNaN(got) {
				t.Errorf("%s: got %v, want NaN", tc.name, got)
			}
			continue
		}
		if !approx(got, tc.want) {
			t.Errorf("%s: QuantileFromBuckets(q=%g) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// Property: bucket quantiles are monotone in q and bounded by the
// histogram's support.
func TestPropertyQuantileFromBucketsMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int64, 6)
		uppers := []float64{1, 2, 4, 8, 16, 32}
		any := false
		for i, r := range raw {
			counts[i%6] += int64(r % 7)
			if r%7 > 0 {
				any = true
			}
		}
		if !any {
			return math.IsNaN(QuantileFromBuckets(uppers, counts, 0.5))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := QuantileFromBuckets(uppers, counts, q)
			if v < prev-1e-9 || v < 0 || v > 32 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
