// Package stats provides the summary statistics, empirical CDFs, and
// connectivity time-series used to report every figure and table in the
// evaluation.
package stats

import (
	"fmt"
	"math"
	"sort"

	"spider/internal/sim"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varsum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) CDF {
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	return CDF{xs: xs}
}

// N returns the sample count.
func (c CDF) N() int { return len(c.xs) }

// P returns the fraction of samples ≤ x.
func (c CDF) P(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	return float64(sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))) / float64(len(c.xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func (c CDF) Quantile(q float64) float64 {
	return quantileSorted(c.xs, q)
}

func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// Percentile returns the q-quantile (q in [0,1], linearly interpolated) of
// an unsorted sample, without mutating it. NaN for an empty sample.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileFromBuckets returns the q-quantile of a distribution summarized
// by a fixed-bucket histogram: uppers[i] is bucket i's upper bound
// (ascending), counts[i] its observation count, and observations are
// assumed uniform within a bucket, so the answer interpolates linearly
// between the bucket's lower bound (the previous upper, or 0 for the
// first bucket) and its upper bound. This is the shared quantile path for
// every streaming sketch in the tree (internal/telemetry's rollup
// windows, tracereport's rollup reports): deterministic, no sampling, and
// exact to within one bucket's width.
//
// q clamps to [0,1]. An empty histogram (no counts, or mismatched slice
// lengths) yields NaN, mirroring Percentile on an empty sample.
func QuantileFromBuckets(uppers []float64, counts []int64, q float64) float64 {
	if len(uppers) != len(counts) || len(uppers) == 0 {
		return math.NaN()
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = uppers[i-1]
		}
		if rank <= float64(cum+c) {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(uppers[i]-lower)
		}
		cum += c
	}
	// rank == total landed past the loop's last bucket due to float
	// rounding: the answer is the last non-empty bucket's upper bound.
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			return uppers[i]
		}
	}
	return math.NaN()
}

// Jain returns Jain's fairness index (Σx)²/(n·Σx²) of a per-client
// allocation: 1 when every client gets the same share, 1/n when one client
// gets everything. An empty or all-zero sample is perfectly fair — every
// client got the same (zero) share — so it yields 1 rather than a 0/0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Point is one (x, cumulative fraction) pair of a rendered CDF.
type Point struct {
	X float64
	Y float64
}

// Points renders the CDF at n evenly spaced x positions across the sample
// range, suitable for printing a figure's series.
func (c CDF) Points(n int) []Point {
	if len(c.xs) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.xs[0], c.xs[len(c.xs)-1]
	if n == 1 || hi == lo {
		return []Point{{X: hi, Y: 1}}
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = Point{X: x, Y: c.P(x)}
	}
	return out
}

// TimeSeries accumulates a value (typically bytes delivered) into fixed
// time buckets; connectivity, disruption and instantaneous-bandwidth
// metrics all derive from it.
type TimeSeries struct {
	bucket  sim.Time
	buckets map[int64]float64
	maxIdx  int64
	any     bool
}

// NewTimeSeries creates a series with the given bucket width (the paper's
// metrics use 1 s).
func NewTimeSeries(bucket sim.Time) *TimeSeries {
	if bucket <= 0 {
		panic("stats: NewTimeSeries needs positive bucket")
	}
	return &TimeSeries{bucket: bucket, buckets: make(map[int64]float64)}
}

// Add accumulates v at time at.
func (ts *TimeSeries) Add(at sim.Time, v float64) {
	idx := int64(at / ts.bucket)
	ts.buckets[idx] += v
	if idx > ts.maxIdx {
		ts.maxIdx = idx
	}
	ts.any = true
}

// Total returns the sum over all buckets.
func (ts *TimeSeries) Total() float64 {
	t := 0.0
	for _, v := range ts.buckets {
		t += v
	}
	return t
}

// ConnectivityFraction returns the fraction of buckets in [0, total) with a
// positive value — the paper's "average connectivity".
func (ts *TimeSeries) ConnectivityFraction(total sim.Time) float64 {
	n := int64(total / ts.bucket)
	if n <= 0 {
		return 0
	}
	conn := int64(0)
	for i := int64(0); i < n; i++ {
		if ts.buckets[i] > 0 {
			conn++
		}
	}
	return float64(conn) / float64(n)
}

// runs returns the lengths (in seconds) of maximal runs of buckets matching
// nonzero within [0, total).
func (ts *TimeSeries) runs(total sim.Time, nonzero bool) []float64 {
	n := int64(total / ts.bucket)
	var out []float64
	runLen := int64(0)
	for i := int64(0); i < n; i++ {
		match := (ts.buckets[i] > 0) == nonzero
		if match {
			runLen++
			continue
		}
		if runLen > 0 {
			out = append(out, float64(runLen)*ts.bucket.Seconds())
			runLen = 0
		}
	}
	if runLen > 0 {
		out = append(out, float64(runLen)*ts.bucket.Seconds())
	}
	return out
}

// ConnectionDurations returns contiguous connected periods in seconds
// (Figure 11).
func (ts *TimeSeries) ConnectionDurations(total sim.Time) []float64 {
	return ts.runs(total, true)
}

// DisruptionDurations returns contiguous zero periods in seconds
// (Figure 12).
func (ts *TimeSeries) DisruptionDurations(total sim.Time) []float64 {
	return ts.runs(total, false)
}

// Rates returns the per-bucket rate (value per second) for every bucket
// in [0, total), zero buckets included, indexable by bucket number —
// used to compare goodput windows before and after an injected fault.
func (ts *TimeSeries) Rates(total sim.Time) []float64 {
	n := int64(total / ts.bucket)
	out := make([]float64, 0, n)
	perSec := ts.bucket.Seconds()
	for i := int64(0); i < n; i++ {
		out = append(out, ts.buckets[i]/perSec)
	}
	return out
}

// NonzeroRates returns the per-bucket rate (value per second) for every
// bucket with data — the paper's "instantaneous bandwidth" (Figure 13).
func (ts *TimeSeries) NonzeroRates(total sim.Time) []float64 {
	n := int64(total / ts.bucket)
	var out []float64
	perSec := ts.bucket.Seconds()
	for i := int64(0); i < n; i++ {
		if v := ts.buckets[i]; v > 0 {
			out = append(out, v/perSec)
		}
	}
	return out
}
