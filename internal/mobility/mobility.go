// Package mobility provides the client motion models and roadside AP
// deployments for the outdoor experiments: straight roads, looping town
// routes, and Poisson AP placement with the channel mix the paper measured
// (28% on channel 1, 33% on 6, 34% on 11, the rest elsewhere).
package mobility

import (
	"fmt"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/sim"
)

// Model yields a position for any virtual time.
type Model interface {
	// PositionAt returns the position at time t.
	PositionAt(t sim.Time) geo.Point
	// Speed returns the nominal speed in m/s (0 for stationary).
	Speed() float64
}

// static is a stationary model.
type static struct{ p geo.Point }

func (s static) PositionAt(sim.Time) geo.Point { return s.p }
func (s static) Speed() float64                { return 0 }

// Static returns a stationary model at p, used for the indoor experiments.
func Static(p geo.Point) Model { return static{p} }

// Waypoints moves at constant speed along a piecewise-linear route,
// optionally looping back to the start.
type Waypoints struct {
	pts   []geo.Point
	cum   []float64 // cumulative length up to each point
	total float64
	speed float64
	loop  bool
}

// NewWaypoints builds a route through pts at the given speed in m/s. With
// loop set, the route closes back to pts[0] and repeats forever; otherwise
// the model parks at the final point.
func NewWaypoints(pts []geo.Point, speed float64, loop bool) *Waypoints {
	if len(pts) < 2 {
		panic("mobility: NewWaypoints needs at least two points")
	}
	if speed <= 0 {
		panic("mobility: NewWaypoints needs positive speed")
	}
	w := &Waypoints{pts: append([]geo.Point(nil), pts...), speed: speed, loop: loop}
	if loop && pts[len(pts)-1] != pts[0] {
		w.pts = append(w.pts, pts[0])
	}
	w.cum = make([]float64, len(w.pts))
	for i := 1; i < len(w.pts); i++ {
		w.cum[i] = w.cum[i-1] + w.pts[i].Distance(w.pts[i-1])
	}
	w.total = w.cum[len(w.cum)-1]
	if w.total == 0 {
		panic("mobility: route has zero length")
	}
	return w
}

// Speed returns the route speed in m/s.
func (w *Waypoints) Speed() float64 { return w.speed }

// Length returns the route length in metres (one lap when looping).
func (w *Waypoints) Length() float64 { return w.total }

// PositionAt returns the position after travelling speed×t along the route.
func (w *Waypoints) PositionAt(t sim.Time) geo.Point {
	d := w.speed * t.Seconds()
	if w.loop {
		laps := int(d / w.total)
		d -= float64(laps) * w.total
	} else if d >= w.total {
		return w.pts[len(w.pts)-1]
	}
	// Find the segment containing distance d.
	lo, hi := 0, len(w.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	segLen := w.cum[hi] - w.cum[lo]
	if segLen == 0 {
		return w.pts[lo]
	}
	frac := (d - w.cum[lo]) / segLen
	return geo.Lerp(w.pts[lo], w.pts[hi], frac)
}

// Route returns a copy of the route points (closed when looping).
func (w *Waypoints) Route() []geo.Point { return append([]geo.Point(nil), w.pts...) }

// APSite describes one deployed access point.
type APSite struct {
	Pos         geo.Point
	Channel     dot11.Channel
	SSID        string
	Open        bool    // closed (encrypted) APs beacon but reject joins
	BackhaulBps float64 // offered end-to-end bandwidth through this AP
	// DHCPDead marks an open AP whose DHCP server never answers within a
	// usable time — a common failure among the open APs the paper's
	// utility mechanism learns to avoid.
	DHCPDead bool
	// Captive marks an AP that associates and leases addresses but blocks
	// WAN traffic (captive portal); only an end-to-end connectivity test
	// catches it.
	Captive bool
	// Segment names the wired backhaul segment this AP hangs off. Sites
	// sharing a segment share an IPAM pool group when the scenario declares
	// an explicit address plan (core.WorldConfig.IPAM); empty means the
	// plan's default group.
	Segment string
}

// DeployConfig controls roadside AP placement.
type DeployConfig struct {
	// APsPerKm is the mean linear AP density along the route.
	APsPerKm float64
	// MaxOffset is the maximum perpendicular distance from the road in
	// metres. With a 100 m radio range, larger offsets shorten encounters.
	MaxOffset float64
	// ChannelWeights gives the relative frequency of each channel.
	// Defaults to the paper's measured town mix.
	ChannelWeights map[dot11.Channel]float64
	// OpenFraction is the fraction of APs that are open (joinable).
	OpenFraction float64
	// DHCPDeadFraction is the fraction of open APs whose DHCP never
	// completes.
	DHCPDeadFraction float64
	// CaptiveFraction is the fraction of open APs behind captive portals.
	CaptiveFraction float64
	// BackhaulMinBps and BackhaulMaxBps bound the uniform offered
	// bandwidth per AP.
	BackhaulMinBps float64
	BackhaulMaxBps float64
}

// DefaultDeployConfig matches the paper's town measurements.
func DefaultDeployConfig() DeployConfig {
	return DeployConfig{
		APsPerKm:  25,
		MaxOffset: 70,
		ChannelWeights: map[dot11.Channel]float64{
			dot11.Channel1:   0.28,
			dot11.Channel6:   0.33,
			dot11.Channel11:  0.34,
			dot11.Channel(3): 0.05,
		},
		OpenFraction:     0.45,
		DHCPDeadFraction: 0.10,
		CaptiveFraction:  0.10,
		BackhaulMinBps:   2e6,
		BackhaulMaxBps:   10e6,
	}
}

// DeployAlongRoute places APs with Poisson spacing along the open route
// described by pts, at uniform perpendicular offsets up to MaxOffset on
// either side.
func DeployAlongRoute(rng *sim.RNG, pts []geo.Point, cfg DeployConfig) []APSite {
	if cfg.APsPerKm <= 0 {
		panic("mobility: DeployAlongRoute needs positive density")
	}
	if len(pts) < 2 {
		panic("mobility: DeployAlongRoute needs a route")
	}
	weights, channels := normalizeWeights(cfg.ChannelWeights)
	meanGap := 1000 / cfg.APsPerKm
	var sites []APSite
	// d is the distance from the start of the current segment to the next
	// AP; Poisson spacing means exponential gaps.
	d := rng.ExpFloat64() * meanGap
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		segLen := a.Distance(b)
		dir := b.Sub(a).Unit()
		perp := geo.Vector{X: -dir.Y, Y: dir.X}
		for d <= segLen {
			offset := rng.Uniform(-cfg.MaxOffset, cfg.MaxOffset)
			base := a.Add(dir.Scale(d))
			site := APSite{
				Pos:         base.Add(perp.Scale(offset)),
				Channel:     pickChannel(rng, weights, channels),
				SSID:        fmt.Sprintf("ap-%03d", len(sites)),
				Open:        rng.Bool(cfg.OpenFraction),
				BackhaulBps: rng.Uniform(cfg.BackhaulMinBps, cfg.BackhaulMaxBps),
			}
			if site.Open {
				site.DHCPDead = rng.Bool(cfg.DHCPDeadFraction)
				if !site.DHCPDead {
					site.Captive = rng.Bool(cfg.CaptiveFraction)
				}
			}
			sites = append(sites, site)
			d += rng.ExpFloat64() * meanGap
		}
		d -= segLen
	}
	return sites
}

func normalizeWeights(w map[dot11.Channel]float64) ([]float64, []dot11.Channel) {
	if len(w) == 0 {
		w = DefaultDeployConfig().ChannelWeights
	}
	var channels []dot11.Channel
	for ch := dot11.Channel(1); ch <= 14; ch++ {
		if w[ch] > 0 {
			channels = append(channels, ch)
		}
	}
	total := 0.0
	for _, ch := range channels {
		total += w[ch]
	}
	weights := make([]float64, len(channels))
	for i, ch := range channels {
		weights[i] = w[ch] / total
	}
	return weights, channels
}

func pickChannel(rng *sim.RNG, weights []float64, channels []dot11.Channel) dot11.Channel {
	x := rng.Float64()
	for i, w := range weights {
		if x < w {
			return channels[i]
		}
		x -= w
	}
	return channels[len(channels)-1]
}

// CoverageFraction estimates the fraction of travel time within radio range
// of at least one site matching keep (nil keeps all), by sampling the route
// at the given time step over one full pass.
func CoverageFraction(m Model, duration sim.Time, step sim.Time, sites []APSite, radioRange float64, keep func(APSite) bool) float64 {
	if step <= 0 || duration <= 0 {
		return 0
	}
	covered, samples := 0, 0
	for t := sim.Time(0); t < duration; t += step {
		p := m.PositionAt(t)
		samples++
		for _, s := range sites {
			if keep != nil && !keep(s) {
				continue
			}
			if p.Distance(s.Pos) <= radioRange {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(samples)
}
