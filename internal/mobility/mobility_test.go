package mobility

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/sim"
)

func TestStatic(t *testing.T) {
	m := Static(geo.Point{X: 3, Y: 4})
	if m.PositionAt(0) != m.PositionAt(time.Hour) {
		t.Fatal("static model moved")
	}
	if m.Speed() != 0 {
		t.Fatal("static model has nonzero speed")
	}
}

func TestWaypointsStraightLine(t *testing.T) {
	w := NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}, 10, false)
	if w.Speed() != 10 || w.Length() != 1000 {
		t.Fatalf("speed=%v length=%v", w.Speed(), w.Length())
	}
	p := w.PositionAt(50 * time.Second)
	if math.Abs(p.X-500) > 1e-9 || p.Y != 0 {
		t.Fatalf("position at 50s = %v, want (500,0)", p)
	}
	// Parks at the end.
	end := w.PositionAt(time.Hour)
	if end != (geo.Point{X: 1000, Y: 0}) {
		t.Fatalf("end position = %v", end)
	}
}

func TestWaypointsMultiSegment(t *testing.T) {
	w := NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}}, 10, false)
	p := w.PositionAt(15 * time.Second) // 150 m: 50 m into second segment
	if math.Abs(p.X-100) > 1e-9 || math.Abs(p.Y-50) > 1e-9 {
		t.Fatalf("position = %v, want (100,50)", p)
	}
}

func TestWaypointsLoop(t *testing.T) {
	// 400 m square loop at 10 m/s: one lap every 40 s.
	w := NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}, {X: 0, Y: 100}}, 10, true)
	if w.Length() != 400 {
		t.Fatalf("loop length = %v, want 400 (closed)", w.Length())
	}
	p0 := w.PositionAt(5 * time.Second)
	p1 := w.PositionAt(45 * time.Second) // one lap later
	if p0.Distance(p1) > 1e-6 {
		t.Fatalf("loop positions differ: %v vs %v", p0, p1)
	}
}

func TestWaypointsValidation(t *testing.T) {
	for _, tc := range []func(){
		func() { NewWaypoints([]geo.Point{{X: 0, Y: 0}}, 10, false) },
		func() { NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}, 0, false) },
		func() { NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}, 5, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid waypoints did not panic")
				}
			}()
			tc()
		}()
	}
}

// Property: motion is continuous — over small dt, displacement ≈ speed·dt.
func TestPropertyWaypointsContinuity(t *testing.T) {
	w := NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 500, Y: 0}, {X: 500, Y: 500}, {X: 0, Y: 500}}, 15, true)
	f := func(ms uint16) bool {
		t0 := sim.Time(ms) * time.Millisecond * 10
		dt := 20 * time.Millisecond
		d := w.PositionAt(t0).Distance(w.PositionAt(t0 + dt))
		// Displacement can be shorter at corners but never longer than
		// speed*dt (plus epsilon).
		return d <= 15*dt.Seconds()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeployAlongRouteDensity(t *testing.T) {
	rng := sim.NewRNG(42)
	route := []geo.Point{{X: 0, Y: 0}, {X: 10000, Y: 0}} // 10 km
	cfg := DefaultDeployConfig()
	cfg.APsPerKm = 10
	sites := DeployAlongRoute(rng, route, cfg)
	// Expect ≈100 APs; Poisson sd is 10, allow ±40%.
	if len(sites) < 60 || len(sites) > 140 {
		t.Fatalf("deployed %d APs on 10 km at 10/km", len(sites))
	}
	for _, s := range sites {
		if s.Pos.X < 0 || s.Pos.X > 10000 {
			t.Fatalf("AP beyond route: %v", s.Pos)
		}
		if math.Abs(s.Pos.Y) > cfg.MaxOffset {
			t.Fatalf("AP offset %v beyond max %v", s.Pos.Y, cfg.MaxOffset)
		}
		if !s.Channel.Valid() {
			t.Fatalf("invalid channel %v", s.Channel)
		}
		if s.BackhaulBps < cfg.BackhaulMinBps || s.BackhaulBps > cfg.BackhaulMaxBps {
			t.Fatalf("backhaul %v out of range", s.BackhaulBps)
		}
	}
}

func TestDeployChannelMix(t *testing.T) {
	rng := sim.NewRNG(7)
	route := []geo.Point{{X: 0, Y: 0}, {X: 200000, Y: 0}} // long route for statistics
	cfg := DefaultDeployConfig()
	cfg.APsPerKm = 10
	sites := DeployAlongRoute(rng, route, cfg)
	counts := map[dot11.Channel]int{}
	for _, s := range sites {
		counts[s.Channel]++
	}
	n := float64(len(sites))
	for ch, want := range map[dot11.Channel]float64{dot11.Channel1: 0.28, dot11.Channel6: 0.33, dot11.Channel11: 0.34} {
		got := float64(counts[ch]) / n
		if math.Abs(got-want) > 0.04 {
			t.Fatalf("channel %v fraction = %.3f, want ≈%.2f", ch, got, want)
		}
	}
}

func TestDeployOpenFraction(t *testing.T) {
	rng := sim.NewRNG(3)
	cfg := DefaultDeployConfig()
	cfg.OpenFraction = 0.4
	sites := DeployAlongRoute(rng, []geo.Point{{X: 0, Y: 0}, {X: 100000, Y: 0}}, cfg)
	open := 0
	for _, s := range sites {
		if s.Open {
			open++
		}
	}
	frac := float64(open) / float64(len(sites))
	if math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("open fraction = %.3f, want ≈0.40", frac)
	}
}

func TestDeploySSIDsUnique(t *testing.T) {
	rng := sim.NewRNG(5)
	sites := DeployAlongRoute(rng, []geo.Point{{X: 0, Y: 0}, {X: 5000, Y: 0}}, DefaultDeployConfig())
	seen := map[string]bool{}
	for _, s := range sites {
		if seen[s.SSID] {
			t.Fatalf("duplicate SSID %q", s.SSID)
		}
		seen[s.SSID] = true
	}
}

func TestDeployValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero density did not panic")
		}
	}()
	DeployAlongRoute(sim.NewRNG(1), []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}, DeployConfig{})
}

func TestCoverageFraction(t *testing.T) {
	m := NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}}, 10, false)
	// One AP covering x∈[400,600] (range 100 at x=500).
	sites := []APSite{{Pos: geo.Point{X: 500, Y: 0}, Channel: dot11.Channel1, Open: true}}
	frac := CoverageFraction(m, 100*time.Second, time.Second, sites, 100, nil)
	if math.Abs(frac-0.2) > 0.05 {
		t.Fatalf("coverage = %.3f, want ≈0.2", frac)
	}
	// A filter that rejects everything yields zero coverage.
	if f := CoverageFraction(m, 100*time.Second, time.Second, sites, 100, func(APSite) bool { return false }); f != 0 {
		t.Fatalf("filtered coverage = %v, want 0", f)
	}
	if CoverageFraction(m, 0, time.Second, sites, 100, nil) != 0 {
		t.Fatal("zero duration should report 0")
	}
}

// Property: encounter duration at a given offset matches the chord length
// divided by speed.
func TestPropertyEncounterDuration(t *testing.T) {
	f := func(off uint8, spd uint8) bool {
		offset := float64(off % 99)
		speed := float64(spd%20) + 1
		m := NewWaypoints([]geo.Point{{X: -1000, Y: 0}, {X: 1000, Y: 0}}, speed, false)
		sites := []APSite{{Pos: geo.Point{X: 0, Y: offset}}}
		total := sim.Time(float64(2000/speed) * float64(time.Second))
		frac := CoverageFraction(m, total, 10*time.Millisecond, sites, 100, nil)
		wantFrac := geo.ChordLength(100, offset) / 2000
		return math.Abs(frac-wantFrac) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
