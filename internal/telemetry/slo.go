package telemetry

import "fmt"

// SLORule is one declarative health objective evaluated against every
// closed window. A rule reads a single derived signal from the window
// and violates when it crosses Limit in the direction Op names. Rules
// are pure functions of window contents, so health transitions inherit
// the rollup determinism contract: same run, same violations, any
// worker count, before and after a crash/restore replay.
type SLORule struct {
	// Name identifies the rule in health events and window annotations.
	Name string `json:"name"`
	// Signal selects the window-derived value: "join_p95_ms",
	// "outage_rate" (outage-seconds per client-second), "jain",
	// "pool_exhausted" (DHCP exhaustion increments this window).
	Signal string `json:"signal"`
	// Op is "max" (violate when signal > Limit) or "min" (violate when
	// signal < Limit).
	Op string `json:"op"`
	// Limit is the threshold in the signal's native unit.
	Limit float64 `json:"limit"`
	// MinCount gates evaluation on sample support: join quantiles need
	// MinCount completions in the window, Jain needs MinCount clients.
	// A window without support neither violates nor recovers the rule.
	MinCount int64 `json:"min_count,omitempty"`
}

// DefaultSLOs is the stock rule set serve and the experiments run with:
// the operational signals the paper's evaluation (join tails, outage
// windows, fairness) says matter at population scale.
func DefaultSLOs() []SLORule {
	return []SLORule{
		{Name: "join-p95", Signal: "join_p95_ms", Op: "max", Limit: 1500, MinCount: 3},
		{Name: "outage-rate", Signal: "outage_rate", Op: "max", Limit: 0.25},
		{Name: "jain-floor", Signal: "jain", Op: "min", Limit: 0.4, MinCount: 4},
		{Name: "pool-exhausted", Signal: "pool_exhausted", Op: "max", Limit: 0},
	}
}

// signal extracts the rule's signal from a closed window. ok=false when
// the window lacks the sample support to evaluate it.
func (r SLORule) signal(w *Window) (float64, bool) {
	switch r.Signal {
	case "join_p95_ms":
		if w.JoinOKs < max64(r.MinCount, 1) {
			return 0, false
		}
		return w.JoinP95MS, true
	case "outage_rate":
		dur := w.EndNS - w.StartNS
		clients := w.Clients
		if clients <= 0 {
			clients = w.ActiveClients
		}
		if dur <= 0 || clients <= 0 {
			return 0, false
		}
		return float64(w.OutageNS) / (float64(dur) * float64(clients)), true
	case "jain":
		if int64(w.Clients) < r.MinCount {
			return 0, false
		}
		return w.Jain, true
	case "pool_exhausted":
		return float64(w.PoolExhausted), true
	}
	return 0, false
}

// violated evaluates the rule. defined=false when the signal is unknown
// or the window lacks support.
func (r SLORule) violated(w *Window) (value float64, bad, defined bool) {
	v, ok := r.signal(w)
	if !ok {
		return 0, false, false
	}
	switch r.Op {
	case "max":
		return v, v > r.Limit, true
	case "min":
		return v, v < r.Limit, true
	}
	return v, false, false
}

// note renders the health event annotation: which rule, the observed
// signal, the limit it crossed, and the window it happened in.
func (r SLORule) note(value float64, windowIdx int64) string {
	return fmt.Sprintf("%s %s=%.3f %s=%.3f w=%d", r.Name, r.Signal, value, r.Op, r.Limit, windowIdx)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
