package telemetry

import (
	"io"
	"sort"
	"sync"
)

// Collector accumulates the rollup exports of a multi-run sweep and
// writes them in canonical run-label order, so the merged artifact is
// byte-identical however runs were scheduled across fleet workers —
// the same contract as obs.Collector for raw streams. Add is safe from
// fleet job goroutines.
type Collector struct {
	mu   sync.Mutex
	runs map[string]*runRollups
}

type runRollups struct {
	windows []Window
	flight  FlightCounters
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{runs: make(map[string]*runRollups)}
}

// Add stores one finished aggregator's windows and flight accounting
// under a run label. Nil-safe on both sides.
func (c *Collector) Add(run string, a *Aggregator) {
	if c == nil || a == nil {
		return
	}
	c.mu.Lock()
	c.runs[run] = &runRollups{windows: a.Windows(), flight: a.FlightCounters()}
	c.mu.Unlock()
}

// Runs returns the stored run labels in sorted (export) order.
func (c *Collector) Runs() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.runs))
	for l := range c.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// WindowCount returns the total closed windows across all runs.
func (c *Collector) WindowCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.runs {
		n += len(r.windows)
	}
	return n
}

// WriteJSONL exports every run's rollups, runs in sorted label order.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	for _, run := range c.Runs() {
		c.mu.Lock()
		r := c.runs[run]
		c.mu.Unlock()
		fc := r.flight
		if err := WriteRollupsJSONL(w, run, r.windows, &fc); err != nil {
			return err
		}
	}
	return nil
}
