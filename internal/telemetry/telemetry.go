// Package telemetry is the streaming aggregation plane: bounded-memory
// rollups, a flight recorder, and declarative SLO health evaluated
// online, beside (not instead of) the raw obs recorder.
//
// The raw recorder keeps every event and span, which is exactly right up
// to a few hundred clients and unaffordable at the 1024/4096-client
// dense rungs. The telemetry plane subscribes to the same deterministic
// streams and keeps only:
//
//   - fixed sim-time windows of per-client / per-AP / per-channel
//     aggregates (goodput, airtime, collisions, join outcomes, outage
//     time, Jain across clients) plus log-linear quantile sketches for
//     join latency and RTT — O(windows) memory however many clients;
//   - a bounded ring of raw events/spans with deterministic admission
//     (see flight.go) — O(ring capacity);
//   - per-rule SLO state emitting health.violation / health.recovered
//     events on the world timeline — O(rules).
//
// Determinism contract: every input is already deterministic (obs events
// in engine order, sim-time-driven ticks, derived-RNG client sampling),
// the aggregator adds no randomness and no wall-clock reads, and every
// export sorts map-shaped state before rendering. A rollup or flight
// export is therefore byte-identical at any fleet worker count and
// across a serve crash/restore replay.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"spider/internal/obs"
	"spider/internal/sim"
)

// Config sizes the aggregation plane.
type Config struct {
	// Window is the rollup window width in sim time (default 1s).
	Window sim.Time
	// MaxWindows bounds retained closed windows; 0 keeps all (the
	// rollup series is O(run length / Window), which is the plane's
	// stated budget). When bounded, oldest windows drop and
	// DroppedWindows counts them.
	MaxWindows int
	// FlightEvents / FlightSpans size the flight recorder rings
	// (defaults 4096 / 2048; negative disables a ring).
	FlightEvents int
	FlightSpans  int
	// KeepClients is the fraction of clients whose droppable events are
	// admitted to the flight recorder (default 0.05; ≥1 keeps all).
	KeepClients float64
	// Seed feeds the derived-RNG client sampling; use the run's seed so
	// the sampled set is a pure function of the scenario.
	Seed int64
	// SLOs are the health rules evaluated at every window close; nil
	// means no health evaluation (use DefaultSLOs() for the stock set).
	SLOs []SLORule
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = sim.Time(1e9)
	}
	if c.FlightEvents == 0 {
		c.FlightEvents = 4096
	}
	if c.FlightEvents < 0 {
		c.FlightEvents = 0
	}
	if c.FlightSpans == 0 {
		c.FlightSpans = 2048
	}
	if c.FlightSpans < 0 {
		c.FlightSpans = 0
	}
	if c.KeepClients <= 0 {
		c.KeepClients = 0.05
	}
	return c
}

// ChannelProbe is one channel's cumulative medium counters at probe time.
type ChannelProbe struct {
	Channel      int
	CumAirtimeNS int64
	Contenders   int
}

// Probe is a snapshot of cumulative world counters, sampled by the
// aggregator once per window close; window values are deltas between
// consecutive probes. The probe callback reads live simulation state, so
// it runs on the sim goroutine at a deterministic sim time.
type Probe struct {
	Clients          int
	Channels         []ChannelProbe
	CumCollisions    int64
	CumPoolExhausted int64
}

// ClientRoll is one client's share of a window.
type ClientRoll struct {
	Client       int   `json:"client"`
	GoodputBytes int64 `json:"goodput_bytes,omitempty"`
	OutageNS     int64 `json:"outage_ns,omitempty"`
}

// APRoll is one AP's share of a window.
type APRoll struct {
	BSSID      string `json:"bssid"`
	JoinOKs    int64  `json:"join_oks,omitempty"`
	JoinFails  int64  `json:"join_fails,omitempty"`
	IPAMAllocs int64  `json:"ipam_allocs,omitempty"`
}

// ChannelRoll is one channel's share of a window (airtime is the delta
// of cumulative busy time across the window; contenders is the
// population at window close).
type ChannelRoll struct {
	Channel    int   `json:"channel"`
	AirtimeNS  int64 `json:"airtime_ns,omitempty"`
	Contenders int   `json:"contenders,omitempty"`
}

// Window is one closed rollup window — the export unit of the plane.
type Window struct {
	Index   int64 `json:"w"`
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Clients is the population at close (from the probe; falls back to
	// the number of clients seen on the stream).
	Clients       int   `json:"clients,omitempty"`
	ActiveClients int   `json:"active_clients,omitempty"`
	GoodputBytes  int64 `json:"goodput_bytes,omitempty"`
	// Jain is Jain's fairness index of per-client goodput within the
	// window over the full population (idle clients count as zero).
	Jain       float64 `json:"jain"`
	JoinStarts int64   `json:"join_starts,omitempty"`
	JoinOKs    int64   `json:"join_oks,omitempty"`
	JoinFails  int64   `json:"join_fails,omitempty"`
	JoinP50MS  float64 `json:"join_p50_ms,omitempty"`
	JoinP95MS  float64 `json:"join_p95_ms,omitempty"`
	JoinP99MS  float64 `json:"join_p99_ms,omitempty"`
	RTTP50MS   float64 `json:"rtt_p50_ms,omitempty"`
	RTTP95MS   float64 `json:"rtt_p95_ms,omitempty"`
	// OutageNS is client-seconds of outage overlapping this window (an
	// outage spanning windows is split across them).
	OutageBegins  int64 `json:"outage_begins,omitempty"`
	OutageNS      int64 `json:"outage_ns,omitempty"`
	LinkUps       int64 `json:"link_ups,omitempty"`
	LinkDowns     int64 `json:"link_downs,omitempty"`
	Handoffs      int64 `json:"handoffs,omitempty"`
	FaultBegins   int64 `json:"fault_begins,omitempty"`
	IPAMAllocs    int64 `json:"ipam_allocs,omitempty"`
	IPAMFailovers int64 `json:"ipam_failovers,omitempty"`
	// Collisions / PoolExhausted are probe deltas across the window.
	Collisions    int64 `json:"collisions,omitempty"`
	PoolExhausted int64 `json:"pool_exhausted,omitempty"`
	// JoinHist / RTTHist are the window's quantile sketches in sparse
	// (bucket, count) form; BucketUppers() recovers the bucket bounds.
	JoinHist [][2]int64 `json:"join_hist,omitempty"`
	RTTHist  [][2]int64 `json:"rtt_hist,omitempty"`

	Channels  []ChannelRoll `json:"channels,omitempty"`
	PerClient []ClientRoll  `json:"per_client,omitempty"`
	PerAP     []APRoll      `json:"per_ap,omitempty"`
	// Violations names the SLO rules in violation after this window's
	// evaluation, in rule order.
	Violations []string `json:"violations,omitempty"`
}

// winAcc is the open accumulator behind one not-yet-closed window.
type winAcc struct {
	goodput map[int]int64
	outage  map[int]int64
	perAP   map[string]*apAcc
	join    Sketch
	rtt     Sketch

	joinStarts, joinOKs, joinFails         int64
	outageBegins                           int64
	linkUps, linkDowns, handoffs           int64
	faultBegins, ipamAllocs, ipamFailovers int64
}

type apAcc struct {
	joinOKs, joinFails, ipamAllocs int64
}

func newWinAcc() *winAcc {
	return &winAcc{
		goodput: make(map[int]int64),
		outage:  make(map[int]int64),
		perAP:   make(map[string]*apAcc),
	}
}

func (w *winAcc) ap(bssid string) *apAcc {
	a, ok := w.perAP[bssid]
	if !ok {
		a = &apAcc{}
		w.perAP[bssid] = a
	}
	return a
}

// Aggregator is the streaming plane for one run. It is driven entirely
// from the simulation goroutine (event subscriptions, window ticks), so
// it needs no locking; reads of closed windows are safe once the run is
// quiescent, matching the obs.Recorder access contract. The nil
// aggregator is fully disabled: every method is a branch and no work.
type Aggregator struct {
	cfg   Config
	rec   *obs.Recorder
	probe func() Probe

	accs   map[int64]*winAcc
	curIdx int64
	cur    *winAcc
	// known tracks which client IDs have appeared on the stream, indexed
	// by ID (IDs are dense small ints); knownCount is its population. A
	// map here would pay a hashed assign on every event and every goodput
	// delivery — the two hottest paths in the plane.
	known      []bool
	knownCount int
	outOpen    map[int]sim.Time

	lastClosed     int64
	windows        []Window
	droppedWindows int64

	lastProbe Probe
	haveProbe bool

	fl       flight
	sloBad   map[string]bool
	finished bool

	mWindows    *obs.Counter
	mViolations *obs.Counter
}

// New builds an aggregator; zero-value fields of cfg take the package
// defaults.
func New(cfg Config) *Aggregator {
	cfg = cfg.withDefaults()
	return &Aggregator{
		cfg:        cfg,
		accs:       make(map[int64]*winAcc),
		curIdx:     -1,
		outOpen:    make(map[int]sim.Time),
		lastClosed: -1,
		fl:         newFlight(cfg.FlightEvents, cfg.FlightSpans, cfg.Seed, cfg.KeepClients),
		sloBad:     make(map[string]bool),
	}
}

// Window returns the configured window width (0 on nil).
func (a *Aggregator) Window() sim.Time {
	if a == nil {
		return 0
	}
	return a.cfg.Window
}

// Bind subscribes the aggregator to a recorder's event and span streams
// and adopts its world log for health emission and its registry for the
// live counters. Call once, before the run starts.
func (a *Aggregator) Bind(rec *obs.Recorder) {
	if a == nil || rec == nil {
		return
	}
	a.rec = rec
	rec.Subscribe(a.handleEvent)
	rec.SubscribeSpans(a.handleSpan)
	// On a streaming recorder nothing retains the raw timeline, so the
	// flight recorder is the only consumer of chatty per-client events —
	// push its sampling decision down to the emission sites, where an
	// unsampled client skips event construction entirely (the dominant
	// cost of running telemetry at city scale). A retaining recorder
	// keeps its full timeline: no policy, no behavior change.
	if rec.Streaming() {
		rec.SetChattyPolicy(a.fl.sampled)
	}
	a.mWindows = rec.Metrics().Counter("telemetry.windows_closed")
	a.mViolations = rec.Metrics().Counter("telemetry.slo_violations")
}

// SetProbe registers the cumulative-counter snapshot callback sampled at
// window closes (core wires the medium and DHCP pools through this).
func (a *Aggregator) SetProbe(fn func() Probe) {
	if a == nil {
		return
	}
	a.probe = fn
}

// acc returns the open accumulator for the window containing at.
func (a *Aggregator) acc(at sim.Time) *winAcc {
	idx := int64(at / a.cfg.Window)
	if idx <= a.lastClosed {
		// An event at exactly a closed boundary (engine ordering put it
		// before the tick): attribute to the first open window rather
		// than silently dropping it.
		idx = a.lastClosed + 1
	}
	if idx == a.curIdx {
		return a.cur
	}
	w, ok := a.accs[idx]
	if !ok {
		w = newWinAcc()
		a.accs[idx] = w
	}
	a.curIdx, a.cur = idx, w
	return w
}

func (a *Aggregator) noteClient(id int) {
	if id < 0 {
		return
	}
	if id >= len(a.known) {
		grown := make([]bool, id+64)
		copy(grown, a.known)
		a.known = grown
	}
	if !a.known[id] {
		a.known[id] = true
		a.knownCount++
	}
}

// foldedKinds marks the event kinds the window accumulator folds; the
// rest (probes above all — the bulk of a dense run's stream) skip the
// accumulator lookup entirely.
var foldedKinds = func() (m [obs.NumKinds]bool) {
	for _, k := range []obs.Kind{
		obs.KindJoinStart, obs.KindJoinComplete, obs.KindJoinFail,
		obs.KindOutageBegin, obs.KindOutageEnd,
		obs.KindLinkUp, obs.KindLinkDown, obs.KindHandoff,
		obs.KindFaultBegin, obs.KindIPAMAlloc, obs.KindIPAMFailover,
	} {
		m[k] = true
	}
	return
}()

// handleEvent folds one obs event into the open window and offers it to
// the flight recorder. Runs synchronously on the sim goroutine.
func (a *Aggregator) handleEvent(e obs.Event) {
	if a.finished {
		return
	}
	a.fl.admitEvent(e)
	a.noteClient(e.Client)
	if int(e.Kind) >= obs.NumKinds || !foldedKinds[e.Kind] {
		return
	}
	w := a.acc(e.At)
	switch e.Kind {
	case obs.KindJoinStart:
		w.joinStarts++
	case obs.KindJoinComplete:
		w.joinOKs++
		w.join.Observe(e.Value)
		if e.BSSID != "" {
			w.ap(e.BSSID).joinOKs++
		}
	case obs.KindJoinFail:
		w.joinFails++
		if e.BSSID != "" {
			w.ap(e.BSSID).joinFails++
		}
	case obs.KindOutageBegin:
		w.outageBegins++
		a.outOpen[e.Client] = e.At
	case obs.KindOutageEnd:
		if st, ok := a.outOpen[e.Client]; ok {
			if ov := e.At - st; ov > 0 {
				w.outage[e.Client] += int64(ov)
			}
			delete(a.outOpen, e.Client)
		}
	case obs.KindLinkUp:
		w.linkUps++
	case obs.KindLinkDown:
		w.linkDowns++
	case obs.KindHandoff:
		w.handoffs++
	case obs.KindFaultBegin:
		w.faultBegins++
	case obs.KindIPAMAlloc:
		w.ipamAllocs++
		if e.BSSID != "" {
			w.ap(e.BSSID).ipamAllocs++
		}
	case obs.KindIPAMFailover:
		w.ipamFailovers++
	}
}

// handleSpan offers a closed span to the flight recorder.
func (a *Aggregator) handleSpan(s obs.Span) {
	if a.finished {
		return
	}
	a.fl.admitSpan(s)
}

// AddGoodput folds n delivered bytes for a client at sim time at — the
// per-flow receiver hook, called outside the event stream because
// deliveries are far too hot to emit as events.
func (a *Aggregator) AddGoodput(client int, at sim.Time, n int) {
	if a == nil || a.finished {
		return
	}
	a.noteClient(client)
	a.acc(at).goodput[client] += int64(n)
}

// AddRTT folds one TCP RTT sample (ns) at sim time at.
func (a *Aggregator) AddRTT(client int, at sim.Time, rtt sim.Time) {
	if a == nil || a.finished {
		return
	}
	a.noteClient(client)
	a.acc(at).rtt.Observe(int64(rtt))
}

// Tick closes every window whose end has passed. Core drives it from an
// engine Ticker at the window period, so normally exactly one window
// closes per call.
func (a *Aggregator) Tick(now sim.Time) {
	if a == nil || a.finished {
		return
	}
	for (a.lastClosed+2)*int64(a.cfg.Window) <= int64(now) {
		idx := a.lastClosed + 1
		last := (a.lastClosed+3)*int64(a.cfg.Window) > int64(now)
		a.closeWindow(idx, sim.Time((idx+1)*int64(a.cfg.Window)), last)
	}
}

// Finish closes the remaining (possibly partial) window at end of run.
// Further inputs are ignored; Windows()/exports are stable afterwards.
func (a *Aggregator) Finish(now sim.Time) {
	if a == nil || a.finished {
		return
	}
	for (a.lastClosed+1)*int64(a.cfg.Window) < int64(now) {
		idx := a.lastClosed + 1
		end := (idx + 1) * int64(a.cfg.Window)
		if end > int64(now) {
			end = int64(now)
		}
		a.closeWindow(idx, sim.Time(end), end == int64(now) || (idx+2)*int64(a.cfg.Window) >= int64(now))
		// closeWindow may emit health events at the boundary; drop any
		// accumulator they opened past the horizon.
	}
	a.finished = true
	a.accs = nil
	a.cur = nil
}

// closeWindow finalizes the window [idx*W, end): splits open outages,
// samples the probe when this is the batch's last close, computes the
// derived series, evaluates SLOs, and appends the Window.
func (a *Aggregator) closeWindow(idx int64, end sim.Time, withProbe bool) {
	W := int64(a.cfg.Window)
	start := sim.Time(idx * W)
	acc, ok := a.accs[idx]
	if !ok {
		acc = newWinAcc()
	} else {
		delete(a.accs, idx)
	}
	if a.curIdx == idx {
		a.curIdx, a.cur = -1, nil
	}
	a.lastClosed = idx

	// Split outages still open across the closing boundary.
	for c, st := range a.outOpen {
		if st < end {
			from := st
			if from < start {
				from = start
			}
			acc.outage[c] += int64(end - from)
			a.outOpen[c] = end
		}
	}

	w := Window{
		Index:         idx,
		StartNS:       int64(start),
		EndNS:         int64(end),
		JoinStarts:    acc.joinStarts,
		JoinOKs:       acc.joinOKs,
		JoinFails:     acc.joinFails,
		OutageBegins:  acc.outageBegins,
		LinkUps:       acc.linkUps,
		LinkDowns:     acc.linkDowns,
		Handoffs:      acc.handoffs,
		FaultBegins:   acc.faultBegins,
		IPAMAllocs:    acc.ipamAllocs,
		IPAMFailovers: acc.ipamFailovers,
		JoinP50MS:     acc.join.Quantile(0.50) / 1e6,
		JoinP95MS:     acc.join.Quantile(0.95) / 1e6,
		JoinP99MS:     acc.join.Quantile(0.99) / 1e6,
		RTTP50MS:      acc.rtt.Quantile(0.50) / 1e6,
		RTTP95MS:      acc.rtt.Quantile(0.95) / 1e6,
		JoinHist:      acc.join.Sparse(),
		RTTHist:       acc.rtt.Sparse(),
	}

	// Probe deltas: cumulative world counters sampled once per close
	// batch; the whole delta lands on the batch's last window.
	if withProbe && a.probe != nil {
		p := a.probe()
		var prev Probe
		if a.haveProbe {
			prev = a.lastProbe
		}
		w.Clients = p.Clients
		w.Collisions = p.CumCollisions - prev.CumCollisions
		w.PoolExhausted = p.CumPoolExhausted - prev.CumPoolExhausted
		prevCh := make(map[int]ChannelProbe, len(prev.Channels))
		for _, c := range prev.Channels {
			prevCh[c.Channel] = c
		}
		for _, c := range p.Channels {
			w.Channels = append(w.Channels, ChannelRoll{
				Channel:    c.Channel,
				AirtimeNS:  c.CumAirtimeNS - prevCh[c.Channel].CumAirtimeNS,
				Contenders: c.Contenders,
			})
		}
		sort.Slice(w.Channels, func(i, j int) bool { return w.Channels[i].Channel < w.Channels[j].Channel })
		a.lastProbe, a.haveProbe = p, true
	}
	if w.Clients == 0 {
		w.Clients = a.knownCount
	}

	// Per-client series and the window's fairness index over the full
	// population (absent clients contribute zero goodput).
	var sum, sumSq float64
	ids := make([]int, 0, len(acc.goodput)+len(acc.outage))
	seen := make(map[int]struct{}, len(acc.goodput))
	for c := range acc.goodput {
		ids = append(ids, c)
		seen[c] = struct{}{}
	}
	for c := range acc.outage {
		if _, ok := seen[c]; !ok {
			ids = append(ids, c)
		}
	}
	sort.Ints(ids)
	for _, c := range ids {
		g := acc.goodput[c]
		w.PerClient = append(w.PerClient, ClientRoll{Client: c, GoodputBytes: g, OutageNS: acc.outage[c]})
		w.GoodputBytes += g
		w.OutageNS += acc.outage[c]
		sum += float64(g)
		sumSq += float64(g) * float64(g)
		if g > 0 {
			w.ActiveClients++
		}
	}
	n := w.Clients
	if n < len(ids) {
		n = len(ids)
	}
	if sumSq == 0 || n == 0 {
		w.Jain = 1
	} else {
		w.Jain = sum * sum / (float64(n) * sumSq)
	}

	// Per-AP series in BSSID order.
	bssids := make([]string, 0, len(acc.perAP))
	for b := range acc.perAP {
		bssids = append(bssids, b)
	}
	sort.Strings(bssids)
	for _, b := range bssids {
		ap := acc.perAP[b]
		w.PerAP = append(w.PerAP, APRoll{BSSID: b, JoinOKs: ap.joinOKs, JoinFails: ap.joinFails, IPAMAllocs: ap.ipamAllocs})
	}

	// SLO evaluation and health transitions. Events carry At = the
	// window boundary, so they land in the next window — evaluation
	// never feeds back into the window being closed.
	for _, r := range a.cfg.SLOs {
		v, bad, defined := r.violated(&w)
		if !defined {
			continue
		}
		was := a.sloBad[r.Name]
		if bad {
			w.Violations = append(w.Violations, r.Name)
		}
		if bad == was {
			continue
		}
		a.sloBad[r.Name] = bad
		kind := obs.KindHealthRecovered
		if bad {
			kind = obs.KindHealthViolation
			a.mViolations.Inc()
		}
		a.rec.Client(obs.WorldClient).Emit(obs.Event{
			At:    end,
			Kind:  kind,
			Value: int64(v * 1000),
			Note:  r.note(v, idx),
		})
	}

	a.windows = append(a.windows, w)
	a.mWindows.Inc()
	if a.cfg.MaxWindows > 0 && len(a.windows) > a.cfg.MaxWindows {
		drop := len(a.windows) - a.cfg.MaxWindows
		a.droppedWindows += int64(drop)
		a.windows = append(a.windows[:0], a.windows[drop:]...)
	}
}

// Windows returns the closed windows in index order. The slice is the
// aggregator's own storage — callers must not mutate it.
func (a *Aggregator) Windows() []Window {
	if a == nil {
		return nil
	}
	return a.windows
}

// DroppedWindows returns how many closed windows were discarded to honor
// MaxWindows.
func (a *Aggregator) DroppedWindows() int64 {
	if a == nil {
		return 0
	}
	return a.droppedWindows
}

// RollupLine is one line of the rollup JSONL export: either a window or
// the final flight-recorder accounting.
type RollupLine struct {
	Run    string          `json:"run,omitempty"`
	Window *Window         `json:"window,omitempty"`
	Flight *FlightCounters `json:"flight,omitempty"`
}

// WriteRollupsJSONL writes windows (in order) then the flight counters,
// one JSON object per line, with an optional run label.
func WriteRollupsJSONL(w io.Writer, run string, windows []Window, fc *FlightCounters) error {
	enc := json.NewEncoder(w)
	for i := range windows {
		if err := enc.Encode(RollupLine{Run: run, Window: &windows[i]}); err != nil {
			return err
		}
	}
	if fc != nil {
		return enc.Encode(RollupLine{Run: run, Flight: fc})
	}
	return nil
}

// WriteJSONL exports this aggregator's windows and flight accounting.
func (a *Aggregator) WriteJSONL(w io.Writer, run string) error {
	if a == nil {
		return nil
	}
	fc := a.FlightCounters()
	return WriteRollupsJSONL(w, run, a.windows, &fc)
}

// RollupCSVHeader is the column order of the CSV rollup export (scalar
// window fields only; histograms and breakdowns live in the JSONL form).
const RollupCSVHeader = "w,start_ns,end_ns,clients,active_clients,goodput_bytes,jain," +
	"join_starts,join_oks,join_fails,join_p50_ms,join_p95_ms,join_p99_ms," +
	"rtt_p50_ms,rtt_p95_ms,outage_begins,outage_ns,link_ups,link_downs,handoffs," +
	"fault_begins,ipam_allocs,ipam_failovers,collisions,pool_exhausted,violations"

// WriteRollupsCSV writes the scalar window series as CSV with header.
func WriteRollupsCSV(w io.Writer, windows []Window) error {
	var b strings.Builder
	b.WriteString(RollupCSVHeader)
	b.WriteByte('\n')
	for i := range windows {
		win := &windows[i]
		ints := []int64{
			win.Index, win.StartNS, win.EndNS, int64(win.Clients), int64(win.ActiveClients),
			win.GoodputBytes,
		}
		for _, v := range ints {
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%.4f,", win.Jain)
		b.WriteString(strconv.FormatInt(win.JoinStarts, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(win.JoinOKs, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(win.JoinFails, 10))
		b.WriteByte(',')
		fmt.Fprintf(&b, "%.3f,%.3f,%.3f,%.3f,%.3f,", win.JoinP50MS, win.JoinP95MS, win.JoinP99MS, win.RTTP50MS, win.RTTP95MS)
		for _, v := range []int64{
			win.OutageBegins, win.OutageNS, win.LinkUps, win.LinkDowns, win.Handoffs,
			win.FaultBegins, win.IPAMAllocs, win.IPAMFailovers, win.Collisions, win.PoolExhausted,
		} {
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteByte(',')
		}
		b.WriteString(strings.Join(win.Violations, ";"))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
