package telemetry

import (
	"math"
	"math/bits"

	"spider/internal/stats"
)

// Sketch is a deterministic streaming quantile sketch over non-negative
// int64 observations (latencies in ns): a fixed log-linear histogram —
// each power-of-two octave split into four linear sub-buckets — giving
// ≤12.5% relative error at any quantile with zero allocation and zero
// randomness. Two sketches built from the same observations in any order
// are identical, and merging is element-wise addition, so every rollup
// export it feeds is byte-identical at any fleet worker count. This is
// deliberately not a randomized sketch (t-digest, KLL): those trade
// determinism for tighter error, and determinism is the contract here.
type Sketch struct {
	counts [sketchBuckets]int64
	count  int64
	sum    int64
}

// sketchBuckets: values 0..7 get exact unit buckets; every octave
// [2^(o-1), 2^o) for o in 4..63 is split into 4 linear sub-buckets.
const sketchBuckets = 8 + 60*4

// sketchUppers[i] is bucket i's upper bound, the shape handed to
// stats.QuantileFromBuckets.
var sketchUppers = func() [sketchBuckets]float64 {
	var u [sketchBuckets]float64
	for b := 0; b < 8; b++ {
		u[b] = float64(b)
	}
	for b := 8; b < sketchBuckets; b++ {
		k := b - 8
		o := 4 + k/4
		lo := int64(1) << uint(o-1)
		u[b] = float64(lo + int64(k%4+1)*(lo>>2))
	}
	return u
}()

// BucketUppers returns the sketch's bucket upper bounds (a copy) —
// consumers reconstructing quantiles from an exported sparse histogram
// (tracereport) pair it with stats.QuantileFromBuckets.
func BucketUppers() []float64 {
	out := make([]float64, sketchBuckets)
	copy(out, sketchUppers[:])
	return out
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 8 {
		return int(v)
	}
	o := bits.Len64(uint64(v)) // 4..63 for v >= 8
	lo := int64(1) << uint(o-1)
	return 8 + (o-4)*4 + int((v-lo)>>uint(o-3))
}

// Observe folds one value in.
func (s *Sketch) Observe(v int64) {
	s.counts[bucketOf(v)]++
	s.count++
	s.sum += v
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 { return s.count }

// Sum returns the observation total.
func (s *Sketch) Sum() int64 { return s.sum }

// Quantile returns the q-quantile through the shared histogram-quantile
// path, or 0 on an empty sketch (never NaN: the value is exported as
// JSON, which has no NaN).
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	v := stats.QuantileFromBuckets(sketchUppers[:], s.counts[:], q)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// Merge adds another sketch's observations into s.
func (s *Sketch) Merge(o *Sketch) {
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
	s.count += o.count
	s.sum += o.sum
}

// Sparse returns the non-empty buckets as (bucket index, count) pairs in
// ascending index order — the export form of the sketch.
func (s *Sketch) Sparse() [][2]int64 {
	if s.count == 0 {
		return nil
	}
	var out [][2]int64
	for i, c := range s.counts {
		if c > 0 {
			out = append(out, [2]int64{int64(i), c})
		}
	}
	return out
}

// QuantileFromSparse computes a quantile from an exported sparse
// histogram, the inverse of Sparse — how tracereport re-derives tails
// from a rollup file without the live sketch. Returns 0 when empty or
// any bucket index is out of range.
func QuantileFromSparse(sparse [][2]int64, q float64) float64 {
	if len(sparse) == 0 {
		return 0
	}
	counts := make([]int64, sketchBuckets)
	for _, p := range sparse {
		if p[0] < 0 || p[0] >= sketchBuckets {
			return 0
		}
		counts[p[0]] += p[1]
	}
	v := stats.QuantileFromBuckets(sketchUppers[:], counts, q)
	if math.IsNaN(v) {
		return 0
	}
	return v
}
