package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spider/internal/obs"
	"spider/internal/sim"
)

const W = sim.Time(1e9)

func newBound(t *testing.T, cfg Config) (*Aggregator, *obs.Recorder) {
	t.Helper()
	a := New(cfg)
	rec := obs.NewStreamingRecorder()
	a.Bind(rec)
	return a, rec
}

// TestSketchAccuracy: quantiles land within one log-linear bucket
// (≤12.5% relative error) and are insensitive to observation order.
func TestSketchAccuracy(t *testing.T) {
	var s, rev Sketch
	n := 10000
	for i := 1; i <= n; i++ {
		s.Observe(int64(i) * 1000)
	}
	for i := n; i >= 1; i-- {
		rev.Observe(int64(i) * 1000)
	}
	if s != rev {
		t.Fatalf("sketch depends on observation order")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		want := q * float64(n) * 1000
		if math.Abs(got-want)/want > 0.13 {
			t.Fatalf("q=%g: got %g want %g (err %.1f%%)", q, got, want, 100*math.Abs(got-want)/want)
		}
	}
	if s.Count() != int64(n) {
		t.Fatalf("count %d", s.Count())
	}
	// Sparse export round-trips through the shared quantile path.
	if got, direct := QuantileFromSparse(s.Sparse(), 0.95), s.Quantile(0.95); got != direct {
		t.Fatalf("sparse quantile %g != live %g", got, direct)
	}
	var empty Sketch
	if empty.Quantile(0.5) != 0 || empty.Sparse() != nil {
		t.Fatalf("empty sketch not zero")
	}
	if QuantileFromSparse(nil, 0.5) != 0 {
		t.Fatalf("empty sparse quantile")
	}
}

// TestSketchSmallValues: values below 8 land in unit-wide buckets, so a
// quantile is within 1 of the truth (sub-nanosecond precision is noise).
func TestSketchSmallValues(t *testing.T) {
	var s Sketch
	for i := 0; i < 10; i++ {
		s.Observe(5)
	}
	if got := s.Quantile(0.5); got < 4 || got > 5 {
		t.Fatalf("q50 of constant 5: %g", got)
	}
}

// TestWindowRollup: events and goodput land in their sim-time windows,
// outages split across boundaries, and Jain reflects the skew.
func TestWindowRollup(t *testing.T) {
	a, rec := newBound(t, Config{Window: W, Seed: 1, KeepClients: 1})
	l0, l1 := rec.Client(0), rec.Client(1)

	l0.Emit(obs.Event{At: W / 10, Kind: obs.KindJoinStart})
	l0.Emit(obs.Event{At: W / 2, Kind: obs.KindJoinComplete, BSSID: "ap-0", Value: int64(400 * 1e6)})
	a.AddGoodput(0, W/2, 3000)
	a.AddGoodput(1, W/2, 1000)
	a.AddRTT(0, W/2, sim.Time(20*1e6))

	// Outage spanning windows 0..2: 0.5s in w0, 1s in w1, 0.25s in w2.
	l1.Emit(obs.Event{At: W / 2, Kind: obs.KindOutageBegin})
	a.Tick(W)
	a.Tick(2 * W)
	l1.Emit(obs.Event{At: 2*W + W/4, Kind: obs.KindOutageEnd, Value: int64(W + 3*W/4)})
	a.AddGoodput(0, 2*W+W/2, 500)
	a.Finish(3 * W)

	ws := a.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows: %d", len(ws))
	}
	w0 := ws[0]
	if w0.JoinStarts != 1 || w0.JoinOKs != 1 || w0.GoodputBytes != 4000 {
		t.Fatalf("w0: %+v", w0)
	}
	if w0.JoinP95MS < 350 || w0.JoinP95MS > 450 {
		t.Fatalf("w0 join p95 = %g ms", w0.JoinP95MS)
	}
	if w0.RTTP50MS < 17 || w0.RTTP50MS > 23 {
		t.Fatalf("w0 rtt p50 = %g ms", w0.RTTP50MS)
	}
	if w0.OutageBegins != 1 || w0.OutageNS != int64(W/2) {
		t.Fatalf("w0 outage: begins=%d ns=%d", w0.OutageBegins, w0.OutageNS)
	}
	if len(w0.PerAP) != 1 || w0.PerAP[0].BSSID != "ap-0" || w0.PerAP[0].JoinOKs != 1 {
		t.Fatalf("w0 per-AP: %+v", w0.PerAP)
	}
	// clients={0,1}, goodput {3000,1000}: jain = 16/(2*10) = 0.8
	if math.Abs(w0.Jain-0.8) > 1e-9 {
		t.Fatalf("w0 jain = %g", w0.Jain)
	}
	if len(w0.PerClient) != 2 || w0.PerClient[0].Client != 0 || w0.PerClient[1].OutageNS != int64(W/2) {
		t.Fatalf("w0 per-client: %+v", w0.PerClient)
	}

	if ws[1].OutageNS != int64(W) || ws[1].GoodputBytes != 0 {
		t.Fatalf("w1: outage=%d goodput=%d", ws[1].OutageNS, ws[1].GoodputBytes)
	}
	// w1 saw no goodput at all: all-zero allocation is perfectly fair.
	if ws[1].Jain != 1 {
		t.Fatalf("w1 jain = %g", ws[1].Jain)
	}
	if ws[2].OutageNS != int64(W/4) || ws[2].GoodputBytes != 500 {
		t.Fatalf("w2: outage=%d goodput=%d", ws[2].OutageNS, ws[2].GoodputBytes)
	}

	// Finish is terminal: later inputs are ignored.
	a.AddGoodput(0, 10*W, 99)
	a.Tick(20 * W)
	if len(a.Windows()) != 3 {
		t.Fatalf("post-Finish input changed windows")
	}
}

// TestProbeDeltas: cumulative probe counters become per-window deltas
// and per-channel airtime series.
func TestProbeDeltas(t *testing.T) {
	a, _ := newBound(t, Config{Window: W, Seed: 1})
	cum := Probe{Clients: 4, CumCollisions: 10, CumPoolExhausted: 1,
		Channels: []ChannelProbe{{Channel: 1, CumAirtimeNS: 100, Contenders: 2}}}
	a.SetProbe(func() Probe { return cum })
	a.Tick(W)
	cum = Probe{Clients: 4, CumCollisions: 25, CumPoolExhausted: 1,
		Channels: []ChannelProbe{{Channel: 1, CumAirtimeNS: 350, Contenders: 3}, {Channel: 6, CumAirtimeNS: 40, Contenders: 1}}}
	a.Tick(2 * W)
	a.Finish(2 * W)

	ws := a.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows: %d", len(ws))
	}
	if ws[0].Collisions != 10 || ws[0].PoolExhausted != 1 || ws[0].Clients != 4 {
		t.Fatalf("w0 probe: %+v", ws[0])
	}
	if ws[1].Collisions != 15 || ws[1].PoolExhausted != 0 {
		t.Fatalf("w1 probe: %+v", ws[1])
	}
	if len(ws[1].Channels) != 2 || ws[1].Channels[0].AirtimeNS != 250 || ws[1].Channels[1].Channel != 6 || ws[1].Channels[1].AirtimeNS != 40 {
		t.Fatalf("w1 channels: %+v", ws[1].Channels)
	}
}

// TestFlightAdmission: always-keep classes always land, droppable
// traffic from unsampled clients is counted out, and the ring stays at
// its cap with loud eviction counters.
func TestFlightAdmission(t *testing.T) {
	a, rec := newBound(t, Config{Window: W, Seed: 42, FlightEvents: 8, FlightSpans: 4, KeepClients: 0.5})
	world := rec.World()
	// Faults and outages always admitted, from any client.
	for c := 0; c < 20; c++ {
		rec.Client(c).Emit(obs.Event{At: sim.Time(c), Kind: obs.KindOutageBegin})
		rec.Client(c).Emit(obs.Event{At: sim.Time(c), Kind: obs.KindProbe}) // droppable
	}
	world.Emit(obs.Event{At: 100, Kind: obs.KindFaultBegin, Note: "ap-crash"})

	fc := a.FlightCounters()
	if fc.EventsKept != 8 || fc.EventCap != 8 {
		t.Fatalf("ring: %+v", fc)
	}
	if fc.EventsEvicted == 0 {
		t.Fatalf("eviction silent: %+v", fc)
	}
	if fc.EventsSampledOut == 0 {
		t.Fatalf("sampling silent: %+v", fc)
	}
	// Admission = total - sampledOut, and every admitted droppable event
	// came from a sampled client.
	if fc.EventsAdmitted+fc.EventsSampledOut != 41 {
		t.Fatalf("accounting: %+v", fc)
	}
	evs := a.FlightEvents()
	if len(evs) != 8 {
		t.Fatalf("export length %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if b.At < a.At || (b.At == a.At && b.Client < a.Client) {
			t.Fatalf("export unsorted at %d", i)
		}
	}

	// Spans: "outage" always kept, others sampled.
	for c := 0; c < 20; c++ {
		sp := rec.Client(c).StartSpan(sim.Time(c), "join")
		sp.End(sim.Time(c + 1))
	}
	o := rec.Client(0).StartSpan(50, "outage")
	o.End(60)
	sc := a.FlightCounters()
	if sc.SpansKept != 4 {
		t.Fatalf("span ring: %+v", sc)
	}
	if sc.SpansSampledOut == 0 {
		t.Fatalf("span sampling silent")
	}
	// The outage span was admitted last and must be in the ring.
	found := false
	for _, s := range a.FlightSpans() {
		if s.Name == "outage" {
			found = true
		}
	}
	if !found {
		t.Fatalf("always-keep span evicted semantics: outage span missing")
	}
}

// TestFlightSamplingWorkerInvariant: the per-client keep decision is a
// pure function of (seed, client), not of arrival order.
func TestFlightSamplingWorkerInvariant(t *testing.T) {
	f1 := newFlight(16, 16, 7, 0.3)
	f2 := newFlight(16, 16, 7, 0.3)
	for c := 0; c < 64; c++ {
		f1.sampled(c)
	}
	for c := 63; c >= 0; c-- {
		f2.sampled(c)
	}
	for c := 0; c < 64; c++ {
		if f1.keep[c] != f2.keep[c] {
			t.Fatalf("client %d decision depends on order", c)
		}
	}
	f3 := newFlight(16, 16, 8, 0.3)
	diff := false
	for c := 0; c < 64; c++ {
		if f3.sampled(c) != (f1.keep[c] == 1) {
			diff = true
		}
	}
	if !diff {
		t.Fatalf("seed does not influence sampling")
	}
}

// TestSLOTransitions: a violating window emits health.violation with the
// window's values, recovery emits health.recovered, and steady states
// emit nothing.
func TestSLOTransitions(t *testing.T) {
	rules := []SLORule{{Name: "outage-rate", Signal: "outage_rate", Op: "max", Limit: 0.25}}
	a, rec := newBound(t, Config{Window: W, Seed: 1, SLOs: rules, KeepClients: 1})
	var health []obs.Event
	rec.Subscribe(func(e obs.Event) {
		if e.Kind == obs.KindHealthViolation || e.Kind == obs.KindHealthRecovered {
			health = append(health, e)
		}
	})
	l := rec.Client(0)
	// w0: client 0 out the whole window → rate 1.0 → violate.
	l.Emit(obs.Event{At: 0, Kind: obs.KindOutageBegin})
	a.Tick(W)
	// w1: still out → still violating, no new event.
	a.Tick(2 * W)
	// w2: recovery early in the window → rate 0.1 → recover.
	l.Emit(obs.Event{At: 2*W + W/10, Kind: obs.KindOutageEnd, Value: int64(2*W + W/10)})
	a.Tick(3 * W)
	a.Finish(3 * W)

	if len(health) != 2 {
		t.Fatalf("health events: %+v", health)
	}
	v, r := health[0], health[1]
	if v.Kind != obs.KindHealthViolation || v.At != W || v.Client != obs.WorldClient {
		t.Fatalf("violation: %+v", v)
	}
	if v.Value != 1000 { // rate 1.0 in milli-units
		t.Fatalf("violation value: %d", v.Value)
	}
	if !strings.Contains(v.Note, "outage-rate outage_rate=1.000 max=0.250 w=0") {
		t.Fatalf("violation note: %q", v.Note)
	}
	if r.Kind != obs.KindHealthRecovered || r.At != 3*W {
		t.Fatalf("recovered: %+v", r)
	}
	if !strings.Contains(r.Note, "w=2") {
		t.Fatalf("recovered note: %q", r.Note)
	}
	ws := a.Windows()
	if len(ws[0].Violations) != 1 || ws[0].Violations[0] != "outage-rate" {
		t.Fatalf("w0 violations: %v", ws[0].Violations)
	}
	if len(ws[1].Violations) != 1 || len(ws[2].Violations) != 0 {
		t.Fatalf("violation annotations: %v %v", ws[1].Violations, ws[2].Violations)
	}
	// The health events themselves ride the flight recorder.
	foundV := false
	for _, e := range a.FlightEvents() {
		if e.Kind == obs.KindHealthViolation {
			foundV = true
		}
	}
	if !foundV {
		t.Fatalf("health events not in flight ring")
	}
}

// TestMaxWindows: the rollup series honors its bound and counts drops.
func TestMaxWindows(t *testing.T) {
	a, _ := newBound(t, Config{Window: W, Seed: 1, MaxWindows: 4})
	for i := 1; i <= 10; i++ {
		a.Tick(sim.Time(i) * W)
	}
	a.Finish(10 * W)
	if len(a.Windows()) != 4 {
		t.Fatalf("windows: %d", len(a.Windows()))
	}
	if a.Windows()[0].Index != 6 {
		t.Fatalf("oldest retained: %d", a.Windows()[0].Index)
	}
	if a.DroppedWindows() != 6 {
		t.Fatalf("dropped: %d", a.DroppedWindows())
	}
}

// TestExportDeterminism: two identical runs produce byte-identical JSONL
// and CSV exports.
func TestExportDeterminism(t *testing.T) {
	runOnce := func() ([]byte, []byte) {
		a, rec := newBound(t, Config{Window: W, Seed: 3, SLOs: DefaultSLOs(), KeepClients: 0.5})
		a.SetProbe(func() Probe { return Probe{Clients: 8} })
		for c := 0; c < 8; c++ {
			l := rec.Client(c)
			l.Emit(obs.Event{At: sim.Time(c) * W / 8, Kind: obs.KindJoinStart})
			l.Emit(obs.Event{At: sim.Time(c)*W/8 + W/16, Kind: obs.KindJoinComplete, BSSID: "ap-1", Value: int64(W / 16)})
			a.AddGoodput(c, W/2, 100*(c+1))
			a.AddRTT(c, W/2, sim.Time(1e6*(c+1)))
		}
		a.Tick(W)
		a.Finish(2 * W)
		var j, c bytes.Buffer
		if err := a.WriteJSONL(&j, "run-a"); err != nil {
			t.Fatal(err)
		}
		if err := WriteRollupsCSV(&c, a.Windows()); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := runOnce()
	j2, c2 := runOnce()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSONL differs:\n%s\nvs\n%s", j1, j2)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("CSV differs")
	}
	if !strings.HasPrefix(string(c1), RollupCSVHeader+"\n") {
		t.Fatalf("CSV header missing")
	}
	// The JSONL must parse back and carry the flight accounting line.
	lines := strings.Split(strings.TrimSpace(string(j1)), "\n")
	if len(lines) != 3 { // 2 windows + flight
		t.Fatalf("lines: %d", len(lines))
	}
	if !strings.Contains(lines[2], `"flight"`) {
		t.Fatalf("flight line missing: %s", lines[2])
	}
}

// TestNilAggregator: the disabled plane is safe everywhere.
func TestNilAggregator(t *testing.T) {
	var a *Aggregator
	a.Bind(obs.NewRecorder())
	a.SetProbe(func() Probe { return Probe{} })
	a.AddGoodput(0, 0, 1)
	a.AddRTT(0, 0, 1)
	a.Tick(W)
	a.Finish(W)
	if a.Windows() != nil || a.Window() != 0 || a.FlightEvents() != nil || a.FlightSpans() != nil {
		t.Fatalf("nil aggregator returned data")
	}
	if err := a.WriteJSONL(&bytes.Buffer{}, "x"); err != nil {
		t.Fatal(err)
	}
	var c *Collector
	c.Add("r", a)
	if c.Runs() != nil || c.WriteJSONL(&bytes.Buffer{}) != nil {
		t.Fatalf("nil collector misbehaved")
	}
}

// TestCollectorOrder: export order is label-sorted regardless of Add
// order.
func TestCollectorOrder(t *testing.T) {
	mk := func() *Aggregator {
		a, _ := newBound(t, Config{Window: W, Seed: 1})
		a.Tick(W)
		a.Finish(W)
		return a
	}
	c1, c2 := NewCollector(), NewCollector()
	x, y := mk(), mk()
	c1.Add("b", y)
	c1.Add("a", x)
	c2.Add("a", x)
	c2.Add("b", y)
	var b1, b2 bytes.Buffer
	if err := c1.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("collector export depends on Add order")
	}
	if c1.WindowCount() != 2 {
		t.Fatalf("window count: %d", c1.WindowCount())
	}
}
