package telemetry

import (
	"fmt"
	"sort"

	"spider/internal/obs"
	"spider/internal/sim"
)

// The flight recorder keeps a bounded window of raw events and closed
// spans next to the rollups, so a city-scale run is not a choice between
// "aggregates only" and "unaffordable full recording". Admission is
// deterministic and worker-invariant:
//
//   - always-keep classes are admitted unconditionally: the outage and
//     fault lifecycles, allocator assignments, IPAM failovers, health
//     transitions, and everything on the world log — the events an
//     incident investigation starts from;
//   - every other event is admitted iff its client is sampled, decided
//     once per client by a derived RNG that is a pure function of
//     (seed, client ID) — no admission state depends on arrival order,
//     worker count, or how full the ring is.
//
// The rings evict oldest-first, and every path that loses data (sampled
// out, evicted) increments a counter that exports with the rollups, so
// truncation is loud rather than silent.

// FlightCounters is the flight recorder's accounting, exported with the
// rollup stream so a reader knows exactly how lossy the window is.
type FlightCounters struct {
	EventCap         int   `json:"event_cap"`
	SpanCap          int   `json:"span_cap"`
	EventsKept       int   `json:"events_kept"`
	SpansKept        int   `json:"spans_kept"`
	EventsAdmitted   int64 `json:"events_admitted"`
	SpansAdmitted    int64 `json:"spans_admitted"`
	EventsSampledOut int64 `json:"events_sampled_out,omitempty"`
	SpansSampledOut  int64 `json:"spans_sampled_out,omitempty"`
	EventsEvicted    int64 `json:"events_evicted,omitempty"`
	SpansEvicted     int64 `json:"spans_evicted,omitempty"`
	ClientsSampled   int   `json:"clients_sampled,omitempty"`
}

// ring is a fixed-capacity FIFO that overwrites oldest entries.
type ring[T any] struct {
	buf     []T
	head    int // index of the oldest entry
	n       int
	evicted int64
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) push(v T) {
	if len(r.buf) == 0 {
		r.evicted++
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	r.evicted++
}

// slice returns the retained entries oldest-first.
func (r *ring[T]) slice() []T {
	out := make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// flight is the recorder state embedded in the Aggregator.
type flight struct {
	events ring[obs.Event]
	spans  ring[obs.Span]

	// root carries the sampling seed; Derive consumes no parent state,
	// so one root serves every per-client derivation. Constructed once —
	// seeding a math/rand source is the expensive part of an RNG, and a
	// city-scale run touches a thousand clients.
	root     *sim.RNG
	keepFrac float64
	// keep caches the per-client sampling decision, indexed by client ID
	// (0 undecided, 1 keep, 2 drop). Client IDs are dense small ints and
	// this sits on the path of every emitted event — a map lookup here
	// cost ~15ms/run at the 1024-client dense rung.
	keep []uint8

	eventsAdmitted   int64
	spansAdmitted    int64
	eventsSampledOut int64
	spansSampledOut  int64
}

func newFlight(eventCap, spanCap int, seed int64, keepFrac float64) flight {
	return flight{
		events:   newRing[obs.Event](eventCap),
		spans:    newRing[obs.Span](spanCap),
		root:     sim.NewRNG(seed),
		keepFrac: keepFrac,
	}
}

// sampled decides (once, deterministically) whether a client's droppable
// events are admitted. World-scoped records never reach here.
func (f *flight) sampled(client int) bool {
	if f.keepFrac >= 1 || client < 0 {
		return true
	}
	if client < len(f.keep) {
		if c := f.keep[client]; c != 0 {
			return c == 1
		}
	} else {
		grown := make([]uint8, client+64)
		copy(grown, f.keep)
		f.keep = grown
	}
	k := f.root.Coin(fmt.Sprintf("flight-client-%05d", client)) < f.keepFrac
	if k {
		f.keep[client] = 1
	} else {
		f.keep[client] = 2
	}
	return k
}

// alwaysKeepEvent lists the event classes admitted regardless of client
// sampling: rare, high-signal lifecycle markers.
func alwaysKeepEvent(k obs.Kind) bool {
	switch k {
	case obs.KindOutageBegin, obs.KindOutageEnd,
		obs.KindFaultBegin, obs.KindFaultEnd,
		obs.KindAllocAssign, obs.KindIPAMFailover,
		obs.KindHealthViolation, obs.KindHealthRecovered:
		return true
	}
	return false
}

// alwaysKeepSpan lists the span names admitted regardless of sampling.
func alwaysKeepSpan(name string) bool {
	return name == "outage" || name == "fault"
}

func (f *flight) admitEvent(e obs.Event) {
	if !alwaysKeepEvent(e.Kind) && e.Client != obs.WorldClient && !f.sampled(e.Client) {
		f.eventsSampledOut++
		return
	}
	f.eventsAdmitted++
	f.events.push(e)
}

func (f *flight) admitSpan(s obs.Span) {
	if !alwaysKeepSpan(s.Name) && s.Client != obs.WorldClient && !f.sampled(s.Client) {
		f.spansSampledOut++
		return
	}
	f.spansAdmitted++
	f.spans.push(s)
}

func (f *flight) counters() FlightCounters {
	sampled := 0
	for _, c := range f.keep {
		if c == 1 {
			sampled++
		}
	}
	return FlightCounters{
		EventCap:         len(f.events.buf),
		SpanCap:          len(f.spans.buf),
		EventsKept:       f.events.n,
		SpansKept:        f.spans.n,
		EventsAdmitted:   f.eventsAdmitted,
		SpansAdmitted:    f.spansAdmitted,
		EventsSampledOut: f.eventsSampledOut,
		SpansSampledOut:  f.spansSampledOut,
		EventsEvicted:    f.events.evicted,
		SpansEvicted:     f.spans.evicted,
		ClientsSampled:   sampled,
	}
}

// FlightEvents returns the retained raw events in canonical artifact
// order (At, Client, Seq) — ready for obs.WriteJSONL.
func (a *Aggregator) FlightEvents() []obs.Event {
	if a == nil {
		return nil
	}
	out := a.fl.events.slice()
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// FlightSpans returns the retained closed spans in canonical artifact
// order (Start, Client, ID) — ready for obs.WriteSpansJSONL.
func (a *Aggregator) FlightSpans() []obs.Span {
	if a == nil {
		return nil
	}
	out := a.fl.spans.slice()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FlightCounters returns the recorder's current accounting. Emissions a
// chatty policy suppressed at their call sites count as sampled out —
// they are the same per-client sampling decision, applied earlier.
func (a *Aggregator) FlightCounters() FlightCounters {
	if a == nil {
		return FlightCounters{}
	}
	fc := a.fl.counters()
	fc.EventsSampledOut += a.rec.ChattySuppressed()
	return fc
}
