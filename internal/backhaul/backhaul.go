// Package backhaul models the wired side of an access point: a rate-limited
// FIFO link with propagation delay and a bounded drop-tail queue. The
// paper's APs bottleneck on exactly this link — backhaul bandwidth is
// typically far below the 11 Mbit/s wireless rate — which is why
// aggregating several APs pays off.
package backhaul

import (
	"spider/internal/ipnet"
	"spider/internal/sim"
)

// Config describes one direction of a backhaul link.
type Config struct {
	// RateBps is the link bandwidth in bits/s. Zero means unlimited.
	RateBps float64
	// Delay is the one-way propagation/processing delay.
	Delay sim.Time
	// QueueLimit caps queued-but-not-transmitting packets; beyond it the
	// link drops (drop-tail). Zero means DefaultQueueLimit.
	QueueLimit int
	// Segment labels the wired segment this link belongs to. Purely
	// descriptive on the link itself; scenario construction uses the same
	// label to group APs onto shared IPAM pool hierarchies.
	Segment string
}

// DefaultQueueLimit is a typical residential-gateway buffer.
const DefaultQueueLimit = 50

// Link is one direction of a wired path. Packets serialize at RateBps,
// then arrive Delay later at the deliver callback.
type Link struct {
	eng     *sim.Engine
	cfg     Config
	deliver func(ipnet.Packet)

	busyUntil sim.Time
	queued    int
	blackhole bool
	extra     sim.Time

	free *deliverJob // recycled per-packet delivery jobs

	// Counters.
	Sent       uint64
	Dropped    uint64
	Blackholed uint64
}

// dequeueJob decrements the queue when a packet finishes serializing. It
// is stateless per packet, so one instance per link serves every
// in-flight packet (the scheduler holds one pooled node per firing).
type dequeueJob Link

func (j *dequeueJob) RunEvent() { j.queued-- }

// deliverJob hands one packet to the receive callback after propagation.
// Jobs are pooled on the link, so the per-packet path allocates neither
// closures nor handles.
type deliverJob struct {
	l    *Link
	p    ipnet.Packet
	next *deliverJob
}

func (j *deliverJob) RunEvent() {
	l := j.l
	p := j.p
	j.p = ipnet.Packet{}
	j.next = l.free
	l.free = j
	l.deliver(p)
}

// NewLink creates a link that hands received packets to deliver.
func NewLink(eng *sim.Engine, cfg Config, deliver func(ipnet.Packet)) *Link {
	if deliver == nil {
		panic("backhaul: NewLink with nil deliver")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	return &Link{eng: eng, cfg: cfg, deliver: deliver}
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// QueueDepth returns the packets currently queued ahead of new arrivals.
func (l *Link) QueueDepth() int { return l.queued }

// SetBlackhole drops every subsequent Send until cleared (fault
// injection). Packets already in flight still arrive.
func (l *Link) SetBlackhole(on bool) { l.blackhole = on }

// Blackhole reports whether the link is currently blackholed.
func (l *Link) Blackhole() bool { return l.blackhole }

// SetExtraDelay adds d to the propagation delay of subsequent packets (a
// latency spike); non-positive restores the configured delay.
func (l *Link) SetExtraDelay(d sim.Time) {
	if d < 0 {
		d = 0
	}
	l.extra = d
}

// ExtraDelay returns the currently injected extra delay.
func (l *Link) ExtraDelay() sim.Time { return l.extra }

// Send enqueues a packet. It is dropped if the queue is full.
func (l *Link) Send(p ipnet.Packet) {
	if l.blackhole {
		l.Blackholed++
		return
	}
	now := l.eng.Now()
	if l.busyUntil < now {
		l.busyUntil = now
	}
	if l.queued >= l.cfg.QueueLimit {
		l.Dropped++
		return
	}
	var txTime sim.Time
	if l.cfg.RateBps > 0 {
		txTime = sim.Time(float64(p.WireLen()*8) / l.cfg.RateBps * 1e9)
	}
	l.queued++
	l.busyUntil += txTime
	l.Sent++
	txDone := l.busyUntil - now
	l.eng.ScheduleCall(txDone, (*dequeueJob)(l))
	dj := l.free
	if dj == nil {
		dj = &deliverJob{l: l}
	} else {
		l.free = dj.next
		dj.next = nil
	}
	dj.p = p
	l.eng.ScheduleCall(txDone+l.cfg.Delay+l.extra, dj)
}
