// Package backhaul models the wired side of an access point: a rate-limited
// FIFO link with propagation delay and a bounded drop-tail queue. The
// paper's APs bottleneck on exactly this link — backhaul bandwidth is
// typically far below the 11 Mbit/s wireless rate — which is why
// aggregating several APs pays off.
package backhaul

import (
	"spider/internal/ipnet"
	"spider/internal/sim"
)

// Config describes one direction of a backhaul link.
type Config struct {
	// RateBps is the link bandwidth in bits/s. Zero means unlimited.
	RateBps float64
	// Delay is the one-way propagation/processing delay.
	Delay sim.Time
	// QueueLimit caps queued-but-not-transmitting packets; beyond it the
	// link drops (drop-tail). Zero means DefaultQueueLimit.
	QueueLimit int
}

// DefaultQueueLimit is a typical residential-gateway buffer.
const DefaultQueueLimit = 50

// Link is one direction of a wired path. Packets serialize at RateBps,
// then arrive Delay later at the deliver callback.
type Link struct {
	eng     *sim.Engine
	cfg     Config
	deliver func(ipnet.Packet)

	busyUntil sim.Time
	queued    int

	// Counters.
	Sent    uint64
	Dropped uint64
}

// NewLink creates a link that hands received packets to deliver.
func NewLink(eng *sim.Engine, cfg Config, deliver func(ipnet.Packet)) *Link {
	if deliver == nil {
		panic("backhaul: NewLink with nil deliver")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	return &Link{eng: eng, cfg: cfg, deliver: deliver}
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// QueueDepth returns the packets currently queued ahead of new arrivals.
func (l *Link) QueueDepth() int { return l.queued }

// Send enqueues a packet. It is dropped if the queue is full.
func (l *Link) Send(p ipnet.Packet) {
	now := l.eng.Now()
	if l.busyUntil < now {
		l.busyUntil = now
	}
	if l.queued >= l.cfg.QueueLimit {
		l.Dropped++
		return
	}
	var txTime sim.Time
	if l.cfg.RateBps > 0 {
		txTime = sim.Time(float64(p.WireLen()*8) / l.cfg.RateBps * 1e9)
	}
	l.queued++
	l.busyUntil += txTime
	l.Sent++
	txDone := l.busyUntil - now
	l.eng.Schedule(txDone, func() { l.queued-- })
	l.eng.Schedule(txDone+l.cfg.Delay, func() { l.deliver(p) })
}
