package backhaul

import (
	"testing"
	"time"

	"spider/internal/ipnet"
	"spider/internal/sim"
)

func pkt(n int) ipnet.Packet {
	return ipnet.Packet{Proto: ipnet.ProtoTCP, Payload: make([]byte, n)}
}

func TestDeliveryWithDelay(t *testing.T) {
	eng := sim.NewEngine()
	var at sim.Time = -1
	l := NewLink(eng, Config{Delay: 20 * time.Millisecond}, func(ipnet.Packet) { at = eng.Now() })
	l.Send(pkt(100))
	eng.RunAll()
	if at != 20*time.Millisecond {
		t.Fatalf("delivered at %v, want 20ms (rate unlimited)", at)
	}
}

func TestRateLimiting(t *testing.T) {
	eng := sim.NewEngine()
	var times []sim.Time
	// 1 Mbit/s; a 1250-byte packet costs 10 ms on the wire.
	l := NewLink(eng, Config{RateBps: 1e6}, func(ipnet.Packet) { times = append(times, eng.Now()) })
	p := pkt(1250 - 12) // ipnet header is 12 bytes
	l.Send(p)
	l.Send(p)
	l.Send(p)
	eng.RunAll()
	if len(times) != 3 {
		t.Fatalf("delivered %d, want 3", len(times))
	}
	for i, want := range []sim.Time{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		if times[i] != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, times[i], want)
		}
	}
}

func TestDropTail(t *testing.T) {
	eng := sim.NewEngine()
	delivered := 0
	l := NewLink(eng, Config{RateBps: 1e6, QueueLimit: 5}, func(ipnet.Packet) { delivered++ })
	for i := 0; i < 20; i++ {
		l.Send(pkt(1000))
	}
	eng.RunAll()
	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5 (queue limit)", delivered)
	}
	if l.Dropped != 15 {
		t.Fatalf("Dropped = %d, want 15", l.Dropped)
	}
	if l.Sent != 5 {
		t.Fatalf("Sent = %d, want 5", l.Sent)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	eng := sim.NewEngine()
	delivered := 0
	l := NewLink(eng, Config{RateBps: 1e6, QueueLimit: 2}, func(ipnet.Packet) { delivered++ })
	// Send two now, two after the queue drains.
	l.Send(pkt(1000))
	l.Send(pkt(1000))
	eng.ScheduleAt(time.Second, func() {
		l.Send(pkt(1000))
		l.Send(pkt(1000))
	})
	eng.RunAll()
	if delivered != 4 {
		t.Fatalf("delivered = %d, want 4", delivered)
	}
	if l.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", l.Dropped)
	}
}

func TestThroughputMatchesRate(t *testing.T) {
	eng := sim.NewEngine()
	bytes := 0
	l := NewLink(eng, Config{RateBps: 2e6, QueueLimit: 10}, func(p ipnet.Packet) { bytes += p.WireLen() })
	// Keep the queue fed for one simulated second.
	stop := eng.Ticker(time.Millisecond, func() {
		for l.QueueDepth() < 10 {
			l.Send(pkt(1488))
		}
	})
	eng.Run(time.Second)
	stop()
	eng.Run(2 * time.Second)
	got := float64(bytes*8) / 2 // bits over ~2s of draining+1s feed... measure loosely
	_ = got
	// With a saturated 2 Mbit/s link over the first second, at least
	// ~240 kB must have arrived in total.
	if bytes < 240000 {
		t.Fatalf("delivered %d bytes, want >= 240000", bytes)
	}
}

func TestNilDeliverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink(nil deliver) did not panic")
		}
	}()
	NewLink(sim.NewEngine(), Config{}, nil)
}

func TestBlackholeDropsAndRecovers(t *testing.T) {
	eng := sim.NewEngine()
	delivered := 0
	l := NewLink(eng, Config{Delay: time.Millisecond}, func(ipnet.Packet) { delivered++ })
	l.Send(pkt(100))
	l.SetBlackhole(true)
	if !l.Blackhole() {
		t.Fatal("Blackhole() = false after SetBlackhole(true)")
	}
	l.Send(pkt(100))
	l.Send(pkt(100))
	l.SetBlackhole(false)
	l.Send(pkt(100))
	eng.RunAll()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (blackholed sends dropped)", delivered)
	}
	if l.Blackholed != 2 {
		t.Fatalf("Blackholed = %d, want 2", l.Blackholed)
	}
	if l.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 (blackhole is not queue drop)", l.Dropped)
	}
}

func TestBlackholeLeavesInFlightPackets(t *testing.T) {
	eng := sim.NewEngine()
	delivered := 0
	l := NewLink(eng, Config{Delay: 10 * time.Millisecond}, func(ipnet.Packet) { delivered++ })
	l.Send(pkt(100))
	// Blackhole lands while the packet is propagating: it still arrives.
	eng.ScheduleAt(5*time.Millisecond, func() { l.SetBlackhole(true) })
	eng.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (in-flight packet survives)", delivered)
	}
}

func TestExtraDelayShiftsArrival(t *testing.T) {
	eng := sim.NewEngine()
	var times []sim.Time
	l := NewLink(eng, Config{Delay: 10 * time.Millisecond}, func(ipnet.Packet) { times = append(times, eng.Now()) })
	l.Send(pkt(100))
	l.SetExtraDelay(40 * time.Millisecond)
	if l.ExtraDelay() != 40*time.Millisecond {
		t.Fatalf("ExtraDelay = %v", l.ExtraDelay())
	}
	l.Send(pkt(100))
	l.SetExtraDelay(-time.Second) // clamps to zero, restoring base delay
	if l.ExtraDelay() != 0 {
		t.Fatalf("ExtraDelay after negative set = %v, want 0", l.ExtraDelay())
	}
	l.Send(pkt(100))
	eng.RunAll()
	// Arrival order: the two base-delay packets land at 10ms, the delayed
	// middle send at 50ms.
	want := []sim.Time{10 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("delivered %d, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("packet %d delivered at %v, want %v", i, times[i], want[i])
		}
	}
}
