package predict

import (
	"testing"
	"testing/quick"

	"spider/internal/dot11"
	"spider/internal/geo"
)

func obs(x, y float64, ch dot11.Channel, score float64) Observation {
	return Observation{Pos: geo.Point{X: x, Y: y}, Channel: ch, BSSID: dot11.MAC(1), Score: score}
}

func TestRecordAndBestChannel(t *testing.T) {
	h := New(Config{CellSize: 100})
	if _, ok := h.BestChannel(geo.Point{X: 50, Y: 50}); ok {
		t.Fatal("empty history recommended a channel")
	}
	h.Record(obs(50, 50, dot11.Channel6, 1.0))
	h.Record(obs(60, 40, dot11.Channel6, 1.0))
	h.Record(obs(55, 45, dot11.Channel1, 0.1))
	ch, ok := h.BestChannel(geo.Point{X: 50, Y: 50})
	if !ok || ch != dot11.Channel6 {
		t.Fatalf("best = %v/%v, want ch6", ch, ok)
	}
	if h.Observations != 3 || h.Cells() != 1 {
		t.Fatalf("obs=%d cells=%d", h.Observations, h.Cells())
	}
}

func TestNeighbourCellsCount(t *testing.T) {
	h := New(Config{CellSize: 100})
	// Observation in the adjacent cell still informs the query point.
	h.Record(obs(150, 50, dot11.Channel11, 1.0))
	ch, ok := h.BestChannel(geo.Point{X: 95, Y: 50})
	if !ok || ch != dot11.Channel11 {
		t.Fatalf("neighbour aggregation failed: %v/%v", ch, ok)
	}
	// Two cells away is out of the neighbourhood.
	if _, ok := h.BestChannel(geo.Point{X: 950, Y: 50}); ok {
		t.Fatal("far cell should not be informed")
	}
}

func TestMinScoreGate(t *testing.T) {
	h := New(Config{CellSize: 100, MinScore: 0.5})
	h.Record(obs(10, 10, dot11.Channel1, 0.2))
	if _, ok := h.BestChannel(geo.Point{X: 10, Y: 10}); ok {
		t.Fatal("weak evidence cleared the MinScore gate")
	}
	h.Record(obs(10, 10, dot11.Channel1, 0.9))
	if _, ok := h.BestChannel(geo.Point{X: 10, Y: 10}); !ok {
		t.Fatal("strong evidence did not clear the gate")
	}
}

func TestNegativeScoresSteerAway(t *testing.T) {
	h := New(Config{CellSize: 100})
	// ch1 looks good until repeated failures poison it; ch6 stays solid.
	h.Record(obs(10, 10, dot11.Channel1, 1.0))
	h.Record(obs(10, 10, dot11.Channel6, 0.8))
	for i := 0; i < 5; i++ {
		h.Record(obs(10, 10, dot11.Channel1, -0.5))
	}
	ch, ok := h.BestChannel(geo.Point{X: 10, Y: 10})
	if !ok || ch != dot11.Channel6 {
		t.Fatalf("best = %v/%v, want ch6 after ch1 poisoning", ch, ok)
	}
}

func TestDecayFavoursRecency(t *testing.T) {
	h := New(Config{CellSize: 100, Decay: 0.5})
	// Old glory on ch1, recent success on ch11.
	for i := 0; i < 10; i++ {
		h.Record(obs(10, 10, dot11.Channel1, 1.0))
	}
	old := h.ExpectedScore(geo.Point{X: 10, Y: 10}, dot11.Channel1)
	if old >= 2.5 {
		t.Fatalf("decayed accumulation = %v, want bounded by 1/(1-decay)=2", old)
	}
	// A string of failures rapidly displaces the old signal.
	for i := 0; i < 4; i++ {
		h.Record(obs(10, 10, dot11.Channel1, -1.0))
	}
	if s := h.ExpectedScore(geo.Point{X: 10, Y: 10}, dot11.Channel1); s > 0 {
		t.Fatalf("score after failures = %v, want negative", s)
	}
}

func TestExplored(t *testing.T) {
	h := New(Config{CellSize: 100})
	p := geo.Point{X: 10, Y: 10}
	if h.Explored(p) {
		t.Fatal("unexplored cell reported explored")
	}
	h.Record(obs(10, 10, dot11.Channel1, 0))
	if !h.Explored(p) {
		t.Fatal("explored cell not reported")
	}
}

func TestInvalidChannelIgnored(t *testing.T) {
	h := New(Config{})
	h.Record(Observation{Pos: geo.Point{}, Channel: 0, Score: 1})
	if h.Observations != 0 {
		t.Fatal("invalid channel recorded")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	h := New(Config{CellSize: 100})
	h.Record(obs(-150, -250, dot11.Channel6, 1.0))
	ch, ok := h.BestChannel(geo.Point{X: -160, Y: -260})
	if !ok || ch != dot11.Channel6 {
		t.Fatalf("negative-coordinate lookup failed: %v/%v", ch, ok)
	}
}

// Property: BestChannel only ever returns channels that were recorded, and
// determinism holds for tied scores.
func TestPropertyBestChannelSane(t *testing.T) {
	f := func(points []uint16, chans []uint8) bool {
		h := New(Config{CellSize: 50, MinScore: 0.1})
		n := len(points)
		if len(chans) < n {
			n = len(chans)
		}
		recorded := map[dot11.Channel]bool{}
		for i := 0; i < n; i++ {
			ch := dot11.Channel(chans[i]%11) + 1
			recorded[ch] = true
			h.Record(obs(float64(points[i]%1000), 0, ch, 1.0))
		}
		for x := 0.0; x < 1000; x += 100 {
			if ch, ok := h.BestChannel(geo.Point{X: x}); ok && !recorded[ch] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
