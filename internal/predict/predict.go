// Package predict implements encounter-history prediction, the
// related-work thread (BreadCrumbs, Deshpande et al.) the paper points at
// for improving AP selection: a position-indexed database of past join
// outcomes that lets a commuting client choose, for each stretch of road,
// the channel that historically carried its best APs — before it even
// hears their beacons.
//
// The history is a sparse grid of square cells. Each observation deposits
// a score (the LMM's join-outcome value) for the AP's channel into the
// client's current cell; queries aggregate a cell and its neighbours with
// exponential decay, so stale knowledge fades as the radio environment
// changes.
package predict

import (
	"math"
	"sort"

	"spider/internal/dot11"
	"spider/internal/geo"
)

// Config tunes the history grid.
type Config struct {
	// CellSize is the grid granularity in metres (default 100, matching
	// the radio range).
	CellSize float64
	// Decay is the multiplicative factor applied to a cell-channel score
	// when a new observation for the same pair arrives (recency bias).
	Decay float64
	// MinScore is the aggregate score a channel needs before BestChannel
	// will recommend it.
	MinScore float64
}

// DefaultConfig returns the deployed settings.
func DefaultConfig() Config {
	return Config{CellSize: 100, Decay: 0.7, MinScore: 0.5}
}

// Observation is one join outcome at a position.
type Observation struct {
	Pos     geo.Point
	Channel dot11.Channel
	BSSID   dot11.MACAddr
	// Score is the join outcome value (0 for failed association up to 1
	// for full end-to-end connectivity), negative to penalize.
	Score float64
}

type cellKey struct{ x, y int32 }

type cellStats struct {
	byChannel map[dot11.Channel]float64
	visits    int
}

// History is the position-indexed join-outcome database.
type History struct {
	cfg   Config
	cells map[cellKey]*cellStats

	// Observations counts records ever made.
	Observations int
}

// New creates an empty history.
func New(cfg Config) *History {
	d := DefaultConfig()
	if cfg.CellSize <= 0 {
		cfg.CellSize = d.CellSize
	}
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		cfg.Decay = d.Decay
	}
	if cfg.MinScore <= 0 {
		cfg.MinScore = d.MinScore
	}
	return &History{cfg: cfg, cells: make(map[cellKey]*cellStats)}
}

func (h *History) key(p geo.Point) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / h.cfg.CellSize)),
		y: int32(math.Floor(p.Y / h.cfg.CellSize)),
	}
}

// Record deposits an observation into the cell containing its position.
func (h *History) Record(obs Observation) {
	if !obs.Channel.Valid() {
		return
	}
	h.Observations++
	k := h.key(obs.Pos)
	c := h.cells[k]
	if c == nil {
		c = &cellStats{byChannel: make(map[dot11.Channel]float64)}
		h.cells[k] = c
	}
	c.visits++
	prev := c.byChannel[obs.Channel]
	c.byChannel[obs.Channel] = prev*h.cfg.Decay + obs.Score
}

// Cells returns the number of populated grid cells.
func (h *History) Cells() int { return len(h.cells) }

// scoreAround aggregates a channel's score over the cell containing p and
// its 8 neighbours (APs straddle cell boundaries).
func (h *History) scoreAround(p geo.Point, ch dot11.Channel) float64 {
	k := h.key(p)
	total := 0.0
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			if c := h.cells[cellKey{k.x + dx, k.y + dy}]; c != nil {
				total += c.byChannel[ch]
			}
		}
	}
	return total
}

// ExpectedScore reports the aggregate historical score for a channel near
// a position.
func (h *History) ExpectedScore(p geo.Point, ch dot11.Channel) float64 {
	return h.scoreAround(p, ch)
}

// BestChannel recommends the historically best channel near p, or false if
// no channel clears MinScore (unexplored territory).
func (h *History) BestChannel(p geo.Point) (dot11.Channel, bool) {
	scores := make(map[dot11.Channel]float64)
	k := h.key(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			if c := h.cells[cellKey{k.x + dx, k.y + dy}]; c != nil {
				for ch, s := range c.byChannel {
					scores[ch] += s
				}
			}
		}
	}
	var channels []dot11.Channel
	for ch := range scores {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool {
		if scores[channels[i]] != scores[channels[j]] {
			return scores[channels[i]] > scores[channels[j]]
		}
		return channels[i] < channels[j]
	})
	if len(channels) == 0 || scores[channels[0]] < h.cfg.MinScore {
		return 0, false
	}
	return channels[0], true
}

// Explored reports whether the cell containing p has any recorded visits.
func (h *History) Explored(p geo.Point) bool {
	c := h.cells[h.key(p)]
	return c != nil && c.visits > 0
}
