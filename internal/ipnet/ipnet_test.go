package ipnet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom4(192, 168, 1, 42)
	if a.String() != "192.168.1.42" {
		t.Fatalf("String = %q", a.String())
	}
	if !Unspecified.IsUnspecified() {
		t.Fatal("Unspecified not unspecified")
	}
	if a.IsUnspecified() {
		t.Fatal("real address reported unspecified")
	}
	if BroadcastAddr.String() != "255.255.255.255" {
		t.Fatalf("broadcast = %q", BroadcastAddr.String())
	}
}

func TestProtocolString(t *testing.T) {
	cases := map[Protocol]string{ProtoICMP: "icmp", ProtoTCP: "tcp", ProtoUDP: "udp", Protocol(99): "proto-99"}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Proto: ProtoTCP, TTL: 64, Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 0, 2), Payload: []byte("segment")}
	got, err := Decode(p.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != p.Proto || got.TTL != p.TTL || got.Src != p.Src || got.Dst != p.Dst || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip %+v != %+v", got, p)
	}
	if p.WireLen() != len(p.Bytes()) {
		t.Fatalf("WireLen %d != %d", p.WireLen(), len(p.Bytes()))
	}
}

func TestPacketDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrShortPacket {
		t.Fatalf("short header: %v", err)
	}
	p := Packet{Proto: ProtoUDP, Payload: []byte("abcdef")}
	wire := p.Bytes()
	if _, err := Decode(wire[:len(wire)-1]); err != ErrShortPacket {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	req := EchoRequestPacket(AddrFrom4(10, 0, 0, 9), AddrFrom4(10, 0, 0, 1), 7, 42)
	if req.Proto != ProtoICMP {
		t.Fatalf("proto = %v", req.Proto)
	}
	e, err := DecodeEcho(req.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != ICMPEchoRequest || e.ID != 7 || e.Seq != 42 {
		t.Fatalf("echo = %+v", e)
	}
	rep := EchoReplyPacket(req, e)
	if rep.Src != req.Dst || rep.Dst != req.Src {
		t.Fatal("reply addressing wrong")
	}
	re, err := DecodeEcho(rep.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if re.Type != ICMPEchoReply || re.ID != 7 || re.Seq != 42 {
		t.Fatalf("reply echo = %+v", re)
	}
	if _, err := DecodeEcho([]byte{1}); err != ErrShortICMP {
		t.Fatalf("short echo: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: PortDHCPClient, DstPort: PortDHCPServer, Payload: []byte("dhcp")}
	got, err := DecodeUDP(u.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != u.SrcPort || got.DstPort != u.DstPort || !bytes.Equal(got.Payload, u.Payload) {
		t.Fatalf("round trip %+v != %+v", got, u)
	}
	if _, err := DecodeUDP([]byte{0, 1}); err != ErrShortUDP {
		t.Fatalf("short: %v", err)
	}
	wire := u.AppendTo(nil)
	if _, err := DecodeUDP(wire[:len(wire)-1]); err != ErrShortUDP {
		t.Fatalf("truncated: %v", err)
	}
}

// Property: packets of any payload round-trip.
func TestPropertyPacketRoundTrip(t *testing.T) {
	f := func(proto, ttl uint8, src, dst uint32, payload []byte) bool {
		p := Packet{Proto: Protocol(proto), TTL: ttl, Src: Addr(src), Dst: Addr(dst), Payload: payload}
		got, err := Decode(p.Bytes())
		if err != nil {
			return false
		}
		return got.Proto == p.Proto && got.TTL == p.TTL && got.Src == p.Src &&
			got.Dst == p.Dst && bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: addresses round-trip through dotted-quad formatting digits.
func TestPropertyAddrOctets(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		addr := AddrFrom4(a, b, c, d)
		back := AddrFrom4(byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr))
		return back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
