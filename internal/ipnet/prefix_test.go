package ipnet

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestPrefixParseAndFormat(t *testing.T) {
	cases := []struct {
		in      string
		network string
		bits    int
	}{
		{"10.0.0.0/24", "10.0.0.0", 24},
		{"10.0.0.7/24", "10.0.0.0", 24},     // canonicalized to the base
		{"172.16.5.9/12", "172.16.0.0", 12}, // host bits masked off
		{"192.168.1.1/32", "192.168.1.1", 32},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", c.in, err)
		}
		if got := p.Network().String(); got != c.network {
			t.Errorf("ParsePrefix(%q).Network() = %s, want %s", c.in, got, c.network)
		}
		if p.Bits() != c.bits {
			t.Errorf("ParsePrefix(%q).Bits() = %d, want %d", c.in, p.Bits(), c.bits)
		}
		want := fmt.Sprintf("%s/%d", c.network, c.bits)
		if p.String() != want {
			t.Errorf("String() = %s, want %s", p.String(), want)
		}
	}
	for _, bad := range []string{"", "10.0.0.0", "10.0.0/24", "10.0.0.0/33",
		"10.0.0.0/-1", "10.0.0.256/8", "10.0.0.x/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted malformed input", bad)
		}
	}
}

func TestPrefixContainment(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/24")
	for _, a := range []Addr{
		AddrFrom4(10, 1, 2, 0), AddrFrom4(10, 1, 2, 1), AddrFrom4(10, 1, 2, 255),
	} {
		if !p.Contains(a) {
			t.Errorf("%s should contain %s", p, a)
		}
	}
	for _, a := range []Addr{
		AddrFrom4(10, 1, 1, 255), AddrFrom4(10, 1, 3, 0), AddrFrom4(11, 1, 2, 1),
	} {
		if p.Contains(a) {
			t.Errorf("%s should not contain %s", p, a)
		}
	}
	// A parent contains its children; siblings never overlap.
	parent := MustParsePrefix("10.1.0.0/16")
	if !parent.Overlaps(p) || !p.Overlaps(parent) {
		t.Error("parent and child must overlap (both directions)")
	}
	sib := MustParsePrefix("10.2.0.0/16")
	if parent.Overlaps(sib) {
		t.Error("sibling /16s must not overlap")
	}
}

func TestPrefixHostRange(t *testing.T) {
	p := MustParsePrefix("192.168.1.0/24")
	if got := p.NumAddrs(); got != 256 {
		t.Fatalf("NumAddrs = %d, want 256", got)
	}
	if got := p.NumHosts(); got != 254 {
		t.Fatalf("NumHosts = %d, want 254", got)
	}
	if got := p.FirstHost().String(); got != "192.168.1.1" {
		t.Fatalf("FirstHost = %s", got)
	}
	if got := p.LastHost().String(); got != "192.168.1.254" {
		t.Fatalf("LastHost = %s", got)
	}
	if got := p.Broadcast().String(); got != "192.168.1.255" {
		t.Fatalf("Broadcast = %s", got)
	}

	hosts := p.Hosts()
	if len(hosts) != 254 {
		t.Fatalf("Hosts() returned %d addresses, want 254", len(hosts))
	}
	// Ascending, and never the network or broadcast address.
	for i, a := range hosts {
		if i > 0 && hosts[i-1] >= a {
			t.Fatalf("Hosts() not ascending at %d: %s >= %s", i, hosts[i-1], a)
		}
		if a == p.Network() || a == p.Broadcast() {
			t.Fatalf("Hosts() handed out %s (network/broadcast)", a)
		}
	}

	// Exclusions (the gateway) drop out without disturbing order.
	gw := AddrFrom4(192, 168, 1, 1)
	rest := p.Hosts(gw)
	if len(rest) != 253 {
		t.Fatalf("Hosts(gw) returned %d addresses, want 253", len(rest))
	}
	for _, a := range rest {
		if a == gw {
			t.Fatal("Hosts(gw) still contains the excluded gateway")
		}
	}
}

func TestPrefixSmallBlocks(t *testing.T) {
	// RFC 3021: /31 and /32 blocks have no network/broadcast reservation.
	p31 := MustParsePrefix("10.0.0.0/31")
	if got := p31.NumHosts(); got != 2 {
		t.Fatalf("/31 NumHosts = %d, want 2", got)
	}
	if h := p31.Hosts(); len(h) != 2 || h[0] != AddrFrom4(10, 0, 0, 0) || h[1] != AddrFrom4(10, 0, 0, 1) {
		t.Fatalf("/31 Hosts = %v", h)
	}
	p32 := MustParsePrefix("10.0.0.9/32")
	if got := p32.NumHosts(); got != 1 {
		t.Fatalf("/32 NumHosts = %d, want 1", got)
	}
	if h := p32.Hosts(); len(h) != 1 || h[0] != AddrFrom4(10, 0, 0, 9) {
		t.Fatalf("/32 Hosts = %v", h)
	}
}

func TestPrefixSubnets(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/22")
	quarters := p.Subnets(24)
	want := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}
	if len(quarters) != len(want) {
		t.Fatalf("Subnets(24) returned %d blocks, want %d", len(quarters), len(want))
	}
	for i, q := range quarters {
		if q.String() != want[i] {
			t.Errorf("Subnets(24)[%d] = %s, want %s", i, q, want[i])
		}
		if !p.Contains(q.Network()) || !p.Contains(q.Broadcast()) {
			t.Errorf("child %s escapes parent %s", q, p)
		}
	}
	// Splitting to the same length returns the block itself.
	if same := p.Subnets(22); len(same) != 1 || same[0] != p {
		t.Fatalf("Subnets(equal) = %v, want [%v]", same, p)
	}
	// Children tile the parent exactly: address counts conserve.
	var total uint64
	for _, q := range quarters {
		total += q.NumAddrs()
	}
	if total != p.NumAddrs() {
		t.Fatalf("children cover %d addresses, parent has %d", total, p.NumAddrs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Subnets(shorter) did not panic")
		}
	}()
	p.Subnets(20)
}

func TestPrefixFromPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PrefixFrom(_, 33) did not panic")
		}
	}()
	PrefixFrom(0, 33)
}

func TestPrefixJSONRoundTrip(t *testing.T) {
	type wrapper struct {
		CIDR Prefix `json:"cidr"`
	}
	in := wrapper{CIDR: MustParsePrefix("10.40.0.0/16")}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"cidr":"10.40.0.0/16"}` {
		t.Fatalf("marshal = %s", b)
	}
	var out wrapper
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.CIDR != in.CIDR {
		t.Fatalf("round trip = %v, want %v", out.CIDR, in.CIDR)
	}
	var zero wrapper
	if err := json.Unmarshal([]byte(`{"cidr":""}`), &zero); err != nil {
		t.Fatal(err)
	}
	if zero.CIDR.IsValid() {
		t.Fatal("empty string should decode to the invalid zero Prefix")
	}
	if err := json.Unmarshal([]byte(`{"cidr":"10.0.0.0/40"}`), &out); err == nil {
		t.Fatal("bad mask length should fail to decode")
	}
}
