// Package ipnet models the minimal IPv4 layer the simulation needs: 32-bit
// addresses, a compact packet header, ICMP echo for Spider's liveness
// probes, and a UDP header for DHCP.
package ipnet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4 address.
type Addr uint32

// Unspecified is the zero address 0.0.0.0, used by DHCP clients before they
// hold a lease.
const Unspecified Addr = 0

// BroadcastAddr is the limited broadcast address 255.255.255.255.
const BroadcastAddr Addr = 0xffffffff

// AddrFrom4 assembles an address from dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == Unspecified }

// Protocol is the IPv4 protocol number of a packet's payload.
type Protocol uint8

// Protocols used by the simulation.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	}
	return fmt.Sprintf("proto-%d", uint8(p))
}

// headerLen is the serialized IPv4-lite header length.
const headerLen = 1 + 1 + 4 + 4 + 2

// Packet is an IPv4-lite packet.
type Packet struct {
	Proto   Protocol
	TTL     uint8
	Src     Addr
	Dst     Addr
	Payload []byte
}

// DefaultTTL is the initial time-to-live for locally originated packets.
const DefaultTTL = 64

// ErrShortPacket reports a truncated serialized packet.
var ErrShortPacket = errors.New("ipnet: packet too short")

// AppendTo serializes the packet onto b.
func (p *Packet) AppendTo(b []byte) []byte {
	b = append(b, byte(p.Proto), p.TTL)
	b = binary.BigEndian.AppendUint32(b, uint32(p.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(p.Dst))
	if len(p.Payload) > 0xffff {
		panic("ipnet: payload exceeds 64KiB")
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Payload)))
	return append(b, p.Payload...)
}

// Bytes serializes the packet into a fresh buffer.
func (p *Packet) Bytes() []byte {
	return p.AppendTo(make([]byte, 0, headerLen+len(p.Payload)))
}

// WireLen returns the serialized length in bytes.
func (p *Packet) WireLen() int { return headerLen + len(p.Payload) }

// Decode parses a serialized packet. The Payload aliases data.
func Decode(data []byte) (Packet, error) {
	var p Packet
	if len(data) < headerLen {
		return p, ErrShortPacket
	}
	p.Proto = Protocol(data[0])
	p.TTL = data[1]
	p.Src = Addr(binary.BigEndian.Uint32(data[2:6]))
	p.Dst = Addr(binary.BigEndian.Uint32(data[6:10]))
	n := int(binary.BigEndian.Uint16(data[10:12]))
	if len(data) < headerLen+n {
		return p, ErrShortPacket
	}
	p.Payload = data[headerLen : headerLen+n]
	return p, nil
}

// ICMP echo message types.
const (
	ICMPEchoRequest uint8 = 8
	ICMPEchoReply   uint8 = 0
)

// Echo is an ICMP echo request or reply.
type Echo struct {
	Type uint8 // ICMPEchoRequest or ICMPEchoReply
	ID   uint16
	Seq  uint16
}

// ErrShortICMP reports a truncated echo message.
var ErrShortICMP = errors.New("ipnet: icmp message too short")

// AppendTo serializes the echo message onto b.
func (e *Echo) AppendTo(b []byte) []byte {
	b = append(b, e.Type)
	b = binary.BigEndian.AppendUint16(b, e.ID)
	return binary.BigEndian.AppendUint16(b, e.Seq)
}

// DecodeEcho parses an ICMP echo message.
func DecodeEcho(data []byte) (Echo, error) {
	if len(data) < 5 {
		return Echo{}, ErrShortICMP
	}
	return Echo{
		Type: data[0],
		ID:   binary.BigEndian.Uint16(data[1:3]),
		Seq:  binary.BigEndian.Uint16(data[3:5]),
	}, nil
}

// EchoRequestPacket builds a ready-to-send ping packet.
func EchoRequestPacket(src, dst Addr, id, seq uint16) Packet {
	e := Echo{Type: ICMPEchoRequest, ID: id, Seq: seq}
	return Packet{Proto: ProtoICMP, TTL: DefaultTTL, Src: src, Dst: dst, Payload: e.AppendTo(nil)}
}

// EchoReplyPacket builds the reply to a ping.
func EchoReplyPacket(req Packet, e Echo) Packet {
	r := Echo{Type: ICMPEchoReply, ID: e.ID, Seq: e.Seq}
	return Packet{Proto: ProtoICMP, TTL: DefaultTTL, Src: req.Dst, Dst: req.Src, Payload: r.AppendTo(nil)}
}

// UDP is a minimal UDP header plus payload.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Well-known ports used by the simulation.
const (
	PortDHCPServer uint16 = 67
	PortDHCPClient uint16 = 68
)

// ErrShortUDP reports a truncated UDP datagram.
var ErrShortUDP = errors.New("ipnet: udp datagram too short")

// AppendTo serializes the datagram onto b.
func (u *UDP) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(len(u.Payload)))
	return append(b, u.Payload...)
}

// DecodeUDP parses a UDP datagram. The Payload aliases data.
func DecodeUDP(data []byte) (UDP, error) {
	var u UDP
	if len(data) < 6 {
		return u, ErrShortUDP
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	n := int(binary.BigEndian.Uint16(data[4:6]))
	if len(data) < 6+n {
		return u, ErrShortUDP
	}
	u.Payload = data[6 : 6+n]
	return u, nil
}
