package ipnet

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR block: a network address and a mask length. The
// zero Prefix is invalid (IsValid reports false); construction goes
// through PrefixFrom or ParsePrefix, both of which canonicalize the
// address to the network base so two prefixes covering the same block
// compare equal.
type Prefix struct {
	addr Addr
	bits int
}

// PrefixFrom returns the prefix of the given mask length containing addr.
// The address is masked down to the network base. Bits outside [0, 32]
// panic: a malformed literal is a programming error, not input.
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("ipnet: prefix length %d out of range [0,32]", bits))
	}
	return Prefix{addr: addr & maskOf(bits), bits: bits}
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipnet: prefix %q missing /len", s)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipnet: prefix %q has invalid length", s)
	}
	var quad [4]int
	parts := strings.Split(s[:slash], ".")
	if len(parts) != 4 {
		return Prefix{}, fmt.Errorf("ipnet: prefix %q has invalid address", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return Prefix{}, fmt.Errorf("ipnet: prefix %q has invalid octet %q", s, p)
		}
		quad[i] = v
	}
	a := AddrFrom4(byte(quad[0]), byte(quad[1]), byte(quad[2]), byte(quad[3]))
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is ParsePrefix for literals; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// maskOf returns the netmask for a prefix length.
func maskOf(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// IsValid reports whether the prefix was constructed (the zero Prefix is
// 0.0.0.0/0's sibling but distinguishable: PrefixFrom(0, 0) is valid and
// equal to the zero value, so callers that need "unset" should use the
// pointer or check Bits against an impossible sentinel). For the
// simulation's purposes a /0 is never a pool, so IsValid excludes it.
func (p Prefix) IsValid() bool { return p.bits > 0 && p.bits <= 32 }

// Bits returns the mask length.
func (p Prefix) Bits() int { return p.bits }

// Mask returns the netmask.
func (p Prefix) Mask() Addr { return maskOf(p.bits) }

// Network returns the network base address (host bits zero).
func (p Prefix) Network() Addr { return p.addr }

// Broadcast returns the directed broadcast address (host bits one).
func (p Prefix) Broadcast() Addr { return p.addr | ^maskOf(p.bits) }

// NumAddrs returns the total address count, network and broadcast
// included.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.bits) }

// Contains reports whether a falls inside the block.
func (p Prefix) Contains(a Addr) bool { return a&maskOf(p.bits) == p.addr }

// Overlaps reports whether the two blocks share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.addr) || q.Contains(p.addr)
}

// FirstHost returns the lowest assignable host address: the address after
// the network base, except in /31 and /32 blocks where every address is a
// host (RFC 3021 semantics).
func (p Prefix) FirstHost() Addr {
	if p.bits >= 31 {
		return p.addr
	}
	return p.addr + 1
}

// LastHost returns the highest assignable host address (the address
// before broadcast, except in /31 and /32 blocks).
func (p Prefix) LastHost() Addr {
	if p.bits >= 31 {
		return p.Broadcast()
	}
	return p.Broadcast() - 1
}

// NumHosts returns the assignable host count: NumAddrs minus the network
// and broadcast addresses (which are never handed out), except in /31 and
// /32 blocks where all addresses assign.
func (p Prefix) NumHosts() uint64 {
	if p.bits >= 31 {
		return p.NumAddrs()
	}
	return p.NumAddrs() - 2
}

// Hosts returns every assignable host address in ascending order,
// excluding the listed addresses (gateways live there). The slice is
// freshly allocated; pool carving owns it outright.
func (p Prefix) Hosts(exclude ...Addr) []Addr {
	skip := make(map[Addr]bool, len(exclude))
	for _, a := range exclude {
		skip[a] = true
	}
	out := make([]Addr, 0, p.NumHosts())
	for a := p.FirstHost(); ; a++ {
		if !skip[a] {
			out = append(out, a)
		}
		if a == p.LastHost() {
			break
		}
	}
	return out
}

// Subnets splits the block into equal children of the given longer mask
// length, in address order. newBits must not be shorter than Bits; equal
// returns the block itself.
func (p Prefix) Subnets(newBits int) []Prefix {
	if newBits < p.bits || newBits > 32 {
		panic(fmt.Sprintf("ipnet: cannot split /%d into /%d", p.bits, newBits))
	}
	n := 1 << (newBits - p.bits)
	step := Addr(1) << (32 - newBits)
	out := make([]Prefix, n)
	for i := range out {
		out[i] = Prefix{addr: p.addr + Addr(i)*step, bits: newBits}
	}
	return out
}

// String formats the block in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr, p.bits)
}

// MarshalJSON encodes the block as its CIDR string, so prefixes embedded
// in configuration (ipam pool specs inside a serve world spec) round-trip
// through JSON without exposing the internal representation.
func (p Prefix) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(p.String())), nil
}

// UnmarshalJSON decodes CIDR notation; the empty string decodes to the
// zero (invalid) Prefix so optional fields stay optional.
func (p *Prefix) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("ipnet: prefix not a JSON string: %s", b)
	}
	if s == "" {
		*p = Prefix{}
		return nil
	}
	parsed, err := ParsePrefix(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
