package obs

import (
	"encoding/json"
	"io"
	"sort"

	"spider/internal/sim"
)

// This file adds causal spans to the flat event timeline: intervals of
// simulation time with parent/child links, so consumers (cmd/spider-trace)
// can answer *where did the time go* and *why did this happen* instead of
// re-deriving causality from interleaved events. The span layer follows
// the same three contracts as events: sim-time only, nil-safe everywhere,
// and no randomness — a span ID is a pure function of (client ID, per-
// client sequence), so the exported JSONL is byte-identical across fleet
// worker counts and repeat runs.

// SpanID identifies one span. The high 32 bits hold the owning client's
// ID + 1 (so the world log, client -1, maps to 0) and the low 32 bits the
// client-local allocation sequence starting at 1. Zero means "no span"
// and is what Parent carries on roots.
type SpanID uint64

// MakeSpanID derives the deterministic span ID for a (client, seq) pair.
func MakeSpanID(client int, seq uint32) SpanID {
	return SpanID(uint64(uint32(client+1))<<32 | uint64(seq))
}

// Client recovers the owning client ID encoded in the span ID.
func (id SpanID) Client() int { return int(uint32(id>>32)) - 1 }

// Seq recovers the client-local allocation sequence.
func (id SpanID) Seq() uint32 { return uint32(id) }

// openEnd marks a span still in progress. Recorder.CloseOpenSpans
// finalizes every open span at end of run, so exported spans always have
// End >= Start.
const openEnd = sim.Time(-1)

// Span is one closed (or still-open) interval of the causal timeline.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	// Client is the owning client's ID (WorldClient for world-scoped
	// spans such as chaos faults).
	Client int `json:"client"`
	// Name is the span type: "join" and its phase children ("scan",
	// "probe", "auth", "assoc", "dhcp-discover", "dhcp-request",
	// "conn-test"), "occupancy" (channel dwell), "link", "outage",
	// "fault".
	Name  string   `json:"name"`
	Start sim.Time `json:"start_ns"`
	// End is the close time in sim nanoseconds (-1 while open; exported
	// artifacts never contain -1 once CloseOpenSpans ran).
	End sim.Time `json:"end_ns"`
	// BSSID names the AP involved, when any.
	BSSID string `json:"bssid,omitempty"`
	// Channel is the 802.11 channel involved, when any.
	Channel int `json:"channel,omitempty"`
	// Status carries the outcome or cause: a join stage, an outage
	// cause ("chaos-fault:…", "out-of-range", "contention",
	// "lease-expiry"), a fault's plan provenance.
	Status string `json:"status,omitempty"`
}

// Duration returns End-Start (zero while the span is open).
func (s Span) Duration() sim.Time {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Open reports whether the span has not ended yet.
func (s Span) Open() bool { return s.End == openEnd }

// ActiveSpan is a live handle on a recorded span. The nil handle is the
// disabled span: every method is a single branch and no work, so
// instrumentation sites never test for recording themselves. Handles are
// owned by the single simulation goroutine, like the rest of a Recorder.
type ActiveSpan struct {
	l   *ClientLog
	idx int
	// gen is the slot generation the handle was issued against. In
	// streaming mode, closed slots are recycled; a reused slot bumps its
	// generation, so a stale handle (kept past its span's close) fails
	// the check and degrades to the nil-handle no-op path.
	gen uint32
}

// span returns the underlying record (nil handle → nil; stale handle on
// a recycled slot → nil).
func (s *ActiveSpan) span() *Span {
	if s == nil {
		return nil
	}
	if s.l.spanGen != nil && s.l.spanGen[s.idx] != s.gen {
		return nil
	}
	return &s.l.spans[s.idx]
}

// SpanID returns the span's deterministic ID (zero on the nil handle).
func (s *ActiveSpan) SpanID() SpanID {
	if sp := s.span(); sp != nil {
		return sp.ID
	}
	return 0
}

// SetBSSID annotates the span with the AP involved.
func (s *ActiveSpan) SetBSSID(bssid string) {
	if sp := s.span(); sp != nil {
		sp.BSSID = bssid
	}
}

// SetChannel annotates the span with the channel involved.
func (s *ActiveSpan) SetChannel(ch int) {
	if sp := s.span(); sp != nil {
		sp.Channel = ch
	}
}

// SetStatus sets the span's outcome/cause label.
func (s *ActiveSpan) SetStatus(status string) {
	if sp := s.span(); sp != nil {
		sp.Status = status
	}
}

// Ended reports whether End was already called (false on nil handles, so
// disabled instrumentation stays on the no-op path).
func (s *ActiveSpan) Ended() bool {
	sp := s.span()
	return sp != nil && sp.End != openEnd
}

// End closes the span at the given sim time. Idempotent: the first close
// wins, so teardown paths may end defensively.
func (s *ActiveSpan) End(at sim.Time) {
	if sp := s.span(); sp != nil && sp.End == openEnd {
		sp.End = at
		s.l.spanClosed(s.idx)
	}
}

// EndStatus closes the span and records its outcome in one call. Like
// End, the first close wins (status included).
func (s *ActiveSpan) EndStatus(at sim.Time, status string) {
	if sp := s.span(); sp != nil && sp.End == openEnd {
		sp.End = at
		sp.Status = status
		s.l.spanClosed(s.idx)
	}
}

// spanClosed delivers the just-closed span at idx to span subscribers
// and, in streaming mode, returns its slot to the free list for reuse.
func (l *ClientLog) spanClosed(idx int) {
	for _, fn := range l.r.spanSubs {
		fn(l.spans[idx])
	}
	if !l.r.retain {
		l.spanFree = append(l.spanFree, idx)
	}
}

// StartChild opens a child span under s. On the nil handle it returns
// nil, so whole span trees disappear when recording is off. A stale
// handle (streaming mode, slot recycled) also yields nil: the parent is
// gone, so the child would dangle.
func (s *ActiveSpan) StartChild(at sim.Time, name string) *ActiveSpan {
	sp := s.span()
	if sp == nil {
		return nil
	}
	// Capture the ID before StartSpan: in streaming mode the allocation
	// may recycle storage and invalidate sp.
	pid := sp.ID
	child := s.l.StartSpan(at, name)
	if c := child.span(); c != nil {
		c.Parent = pid
	}
	return child
}

// StartSpan opens a root span on this client's log. Returns the nil
// handle (all methods no-ops) on a nil log.
func (l *ClientLog) StartSpan(at sim.Time, name string) *ActiveSpan {
	if l == nil {
		return nil
	}
	l.spanSeq++
	sp := Span{
		ID:     MakeSpanID(l.id, l.spanSeq),
		Client: l.id,
		Name:   name,
		Start:  at,
		End:    openEnd,
	}
	if !l.r.retain {
		// Streaming mode: reuse a closed slot when one is free, bumping
		// its generation so handles on the previous occupant go stale.
		if n := len(l.spanFree); n > 0 {
			idx := l.spanFree[n-1]
			l.spanFree = l.spanFree[:n-1]
			l.spanGen[idx]++
			l.spans[idx] = sp
			return &ActiveSpan{l: l, idx: idx, gen: l.spanGen[idx]}
		}
		if len(l.spans) == cap(l.spans) {
			l.r.regrownSpan++
		}
		l.spans = append(l.spans, sp)
		l.spanGen = append(l.spanGen, 0)
		return &ActiveSpan{l: l, idx: len(l.spans) - 1}
	}
	if len(l.spans) == cap(l.spans) {
		l.r.regrownSpan++
	}
	l.spans = append(l.spans, sp)
	return &ActiveSpan{l: l, idx: len(l.spans) - 1}
}

// Spans returns the merged span set ordered by (Start, Client, ID) — the
// canonical artifact order. Within a client, IDs allocate in creation
// order, so a parent always sorts at or before its children.
func (r *Recorder) Spans() []Span {
	if r == nil || !r.retain {
		// A streaming recorder's span storage is a recycling arena, not a
		// timeline — the closed-span stream went to SubscribeSpans.
		return nil
	}
	var n int
	for _, l := range r.logs {
		n += len(l.spans)
	}
	out := make([]Span, 0, n)
	for _, l := range r.logs {
		out = append(out, l.spans...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CloseOpenSpans finalizes every still-open span at the given time —
// called once when a scenario's engine stops, so run-spanning intervals
// (channel occupancy, a link still up, a persistent fault) export with a
// definite end and parent/child containment holds throughout the tree.
func (r *Recorder) CloseOpenSpans(at sim.Time) {
	if r == nil {
		return
	}
	// Sweep logs in client-ID order: the closes are delivered to span
	// subscribers (telemetry's flight recorder among them), and map
	// iteration order must never reach an observer.
	ids := make([]int, 0, len(r.logs))
	for id := range r.logs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := r.logs[id]
		for i := range l.spans {
			if l.spans[i].End == openEnd {
				l.spans[i].End = at
				l.spanClosed(i)
			}
		}
	}
}

// WriteSpansJSONL writes spans as one JSON object per line, with an
// optional run label prefix field (mirrors WriteJSONL for events).
func WriteSpansJSONL(w io.Writer, run string, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if run == "" {
			if err := enc.Encode(s); err != nil {
				return err
			}
			continue
		}
		if err := enc.Encode(struct {
			Run string `json:"run"`
			Span
		}{Run: run, Span: s}); err != nil {
			return err
		}
	}
	return nil
}

// AddSpans stores one run's (already ordered) span set under its label.
// Safe from fleet job goroutines, like Add.
func (c *Collector) AddSpans(run string, spans []Span) {
	if c == nil || len(spans) == 0 {
		return
	}
	c.mu.Lock()
	c.spans[run] = append(c.spans[run], spans...)
	c.mu.Unlock()
}

// SpanRuns returns the stored span run labels in sorted (export) order.
func (c *Collector) SpanRuns() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.spans))
	for l := range c.spans {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// SpanCount returns the number of stored spans across all runs.
func (c *Collector) SpanCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.spans {
		n += len(s)
	}
	return n
}

// WriteSpansJSONL exports every run's spans, runs in sorted label order
// and spans in recorded order within each run — byte-identical at any
// fleet worker count, like the event export.
func (c *Collector) WriteSpansJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	for _, run := range c.SpanRuns() {
		c.mu.Lock()
		spans := c.spans[run]
		c.mu.Unlock()
		if err := WriteSpansJSONL(w, run, spans); err != nil {
			return err
		}
	}
	return nil
}
