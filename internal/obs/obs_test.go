package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilSafety: every disabled entry point must be a no-op, because the
// whole stack calls through these unconditionally.
func TestNilSafety(t *testing.T) {
	var rec *Recorder
	log := rec.Client(3)
	if log != nil {
		t.Fatalf("nil recorder must hand out nil logs")
	}
	log.Emit(Event{Kind: KindProbe}) // must not panic
	if log.Enabled() {
		t.Fatalf("nil log reports enabled")
	}
	if evs := rec.Events(); evs != nil {
		t.Fatalf("nil recorder has events: %v", evs)
	}
	if !rec.Summary().Empty() {
		t.Fatalf("nil recorder summary not empty")
	}

	var reg *Registry
	c := reg.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter has value")
	}
	reg.Gauge("g").Set(7)
	reg.Histogram("h").Observe(9)
	if reg.Snapshot() != nil {
		t.Fatalf("nil registry snapshot non-nil")
	}

	var col *Collector
	col.Add("r", []Event{{}})
	if err := col.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil collector write: %v", err)
	}
}

// TestEventOrdering: Events must come back ordered by (sim-time, client,
// seq) regardless of emission interleaving across client logs.
func TestEventOrdering(t *testing.T) {
	rec := NewRecorder()
	rec.Client(2).Emit(Event{At: 30, Kind: KindProbe})
	rec.Client(0).Emit(Event{At: 10, Kind: KindProbe})
	rec.Client(1).Emit(Event{At: 10, Kind: KindAuth})
	rec.Client(0).Emit(Event{At: 10, Kind: KindAssoc})
	rec.World().Emit(Event{At: 20, Kind: KindFaultBegin})

	evs := rec.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.At > b.At || (a.At == b.At && a.Client > b.Client) ||
			(a.At == b.At && a.Client == b.Client && a.Seq >= b.Seq) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}
	// Same (time, client): emission order must be preserved via Seq.
	if evs[0].Kind != KindProbe || evs[1].Kind != KindAssoc {
		t.Fatalf("client-0 emission order not preserved: %+v %+v", evs[0], evs[1])
	}
	if evs[3].Client != WorldClient {
		t.Fatalf("world event not at expected slot: %+v", evs[3])
	}
}

// TestJSONLSchemaRoundTrip: every exported line must decode back into an
// Event with a known kind — the schema validity check the acceptance
// criteria call for.
func TestJSONLSchemaRoundTrip(t *testing.T) {
	rec := NewRecorder()
	rec.Client(0).Emit(Event{At: 5, Kind: KindChannelSwitch, Channel: 6})
	rec.Client(0).Emit(Event{At: 9, Kind: KindDHCPAck, BSSID: "02:00:00:10:00:01", Value: 42})

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "run#0", rec.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var got struct {
			Run string `json:"run"`
			Event
		}
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if got.Run != "run#0" {
			t.Fatalf("line %q: missing run label", line)
		}
	}
	// Unknown kinds must fail decoding (schema is closed).
	var k Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Fatalf("unknown kind decoded silently")
	}
}

// TestCSVExport checks the CSV header/row shape.
func TestCSVExport(t *testing.T) {
	rec := NewRecorder()
	rec.Client(1).Emit(Event{At: 1500, Kind: KindPSMDrain, Value: 3})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	want := CSVHeader + "\n1500,1,0,psm-drain,,,3,\n"
	if buf.String() != want {
		t.Fatalf("csv mismatch:\n got %q\nwant %q", buf.String(), want)
	}
}

// TestCollectorOrderInvariance: export order must depend only on run
// labels, not Add order — the property that makes fleet export
// worker-count invariant.
func TestCollectorOrderInvariance(t *testing.T) {
	mk := func(order []string) string {
		col := NewCollector()
		streams := map[string][]Event{
			"a#0": {{At: 1, Kind: KindProbe}},
			"a#1": {{At: 2, Kind: KindAuth}},
			"a#2": {{At: 3, Kind: KindAssoc}},
		}
		for _, label := range order {
			col.Add(label, streams[label])
		}
		var buf bytes.Buffer
		if err := col.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fwd := mk([]string{"a#0", "a#1", "a#2"})
	rev := mk([]string{"a#2", "a#0", "a#1"})
	if fwd != rev {
		t.Fatalf("collector export depends on Add order:\n%s\nvs\n%s", fwd, rev)
	}
}

// TestSummaryMerge: summary addition must commute.
func TestSummaryMerge(t *testing.T) {
	var a, b Summary
	a.Counts[KindProbe] = 3
	a.Counts[KindLinkUp] = 1
	b.Counts[KindProbe] = 2
	b.Counts[KindFaultBegin] = 5

	ab, ba := a, b
	ab.Add(b)
	ba.Add(a)
	if ab != ba {
		t.Fatalf("summary merge not commutative: %v vs %v", ab, ba)
	}
	if ab.Total() != 11 {
		t.Fatalf("total = %d, want 11", ab.Total())
	}
	if !strings.Contains(ab.String(), "probe=5") {
		t.Fatalf("summary string %q missing probe=5", ab.String())
	}
}

// TestRegistrySnapshotDeterministic: snapshots sort by (type, name).
func TestRegistrySnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z").Add(2)
	reg.Counter("a").Inc()
	reg.Gauge("m").Set(-4)
	h := reg.Histogram("lat")
	h.Observe(100)
	h.Observe(3000)

	snap := reg.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d metrics, want 4", len(snap))
	}
	wantOrder := []string{"a", "z", "m", "lat"}
	for i, m := range snap {
		if m.Name != wantOrder[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, m.Name, wantOrder[i])
		}
	}
	if snap[3].Value != 2 || snap[3].Sum != 3100 {
		t.Fatalf("histogram sample wrong: %+v", snap[3])
	}
	// Same counter name resolves to the same instrument.
	if reg.Counter("a").Value() != 1 {
		t.Fatalf("counter identity lost")
	}
	idx, counts := h.Buckets()
	if len(idx) != 2 || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("histogram buckets: idx=%v counts=%v", idx, counts)
	}
}

// TestManualClockDeterministic: two identically used manual clocks read
// identical sequences — the property the wall-clock byte-identity tests
// lean on.
func TestManualClockDeterministic(t *testing.T) {
	run := func() []time.Duration {
		c := NewManual(time.Millisecond)
		var out []time.Duration
		for i := 0; i < 3; i++ {
			start := c.Now()
			out = append(out, c.Since(start))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("manual clock diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != time.Millisecond {
			t.Fatalf("step = %v, want 1ms", a[i])
		}
	}
}

func TestSubscribeStreamsEveryEmit(t *testing.T) {
	r := NewRecorder()
	var got []Event
	r.Subscribe(func(e Event) { got = append(got, e) })
	r.Client(0).Emit(Event{At: 1, Kind: KindLinkUp})
	r.World().Emit(Event{At: 2, Kind: KindServeIntent, Note: "add-client"})
	if len(got) != 2 {
		t.Fatalf("subscriber saw %d events, want 2", len(got))
	}
	if got[0].Client != 0 || got[0].Seq != 0 {
		t.Fatalf("first streamed event missing log-filled fields: %+v", got[0])
	}
	if got[1].Client != WorldClient || got[1].Kind != KindServeIntent {
		t.Fatalf("second streamed event = %+v", got[1])
	}
	// The log keeps recording identically with subscribers attached.
	if total := r.Summary().Total(); total != 2 {
		t.Fatalf("recorded %d events, want 2", total)
	}
	var nilRec *Recorder
	nilRec.Subscribe(func(Event) {}) // must not panic
}

func TestServeKindNamesRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindServeIntent, KindServeCheckpoint, KindServeRestore,
		KindServeStall, KindServeWALTruncated} {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("kind %v did not round-trip: %v", k, err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
	}
}
