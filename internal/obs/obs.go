// Package obs is the structured observability subsystem: a per-client
// typed event log recorded in simulation time, a lightweight counter/
// gauge/histogram registry, and the wall-clock seam every telemetry
// consumer reads through.
//
// Three properties make it safe to leave wired into the hot paths:
//
//  1. Determinism. Events carry only simulation time — never wall clock —
//     and export ordered by (sim-time, client ID, sequence), so a given
//     (seed, scenario) emits a byte-identical stream at any fleet worker
//     count. Recording appends to slices and draws no randomness, so an
//     instrumented run computes exactly what an uninstrumented one does.
//  2. Near-zero disabled cost. Every entry point is nil-safe: a nil
//     *ClientLog, *Counter, or *Registry turns the call into a single
//     pointer test. Components resolve their instruments once at
//     construction, so hot paths pay one atomic add when recording is
//     enabled and one nil check when it is not.
//  3. No dependencies. The package imports only the sim kernel and the
//     standard library, so every layer — phy, driver, dhcp, lmm, chaos,
//     core, fleet — can thread it without import cycles.
//
// The event taxonomy follows the join-phase timeline the paper's model
// (Eq. 5-7) is built from: channel dwell (w), per-phase handshake progress
// (probe/auth/assoc), DHCP acquisition (c, β), and the link/outage
// lifecycle the evaluation's disruption figures aggregate.
package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"spider/internal/sim"
)

// Kind is the typed event taxonomy. The numeric values index Summary
// counts and must stay append-only for artifact compatibility.
type Kind uint8

const (
	// KindChannelSwitch marks the driver committing a hardware retune
	// (Channel = target channel).
	KindChannelSwitch Kind = iota
	// KindProbe marks an active probe request on the current channel.
	KindProbe
	// KindAuth marks one transmitted link-layer authentication attempt.
	KindAuth
	// KindAssoc marks one transmitted association attempt.
	KindAssoc
	// KindDHCPOffer / Ack / Nak mark server messages reaching the client.
	KindDHCPOffer
	KindDHCPAck
	KindDHCPNak
	// KindDHCPRenew marks a mid-lease renewal outcome (Note: ok/failed).
	KindDHCPRenew
	// KindPSMDrain marks the post-switch flush of a channel's queued
	// frames (Value = frames drained).
	KindPSMDrain
	// KindHandoff marks a link established to a different AP than the
	// client's previous one.
	KindHandoff
	// KindLinkUp / KindLinkDown mark the link lifecycle.
	KindLinkUp
	KindLinkDown
	// KindOutageBegin / KindOutageEnd bracket windows with zero live
	// links (OutageEnd.Value = outage length in ns).
	KindOutageBegin
	KindOutageEnd
	// KindFaultBegin / KindFaultEnd bracket injected chaos faults
	// (Note = fault kind, Value = resolved AP index or -1).
	KindFaultBegin
	KindFaultEnd
	// KindJoinStart / Complete / Fail bracket one join-pipeline attempt
	// (Value = total duration in ns for the terminal events).
	KindJoinStart
	KindJoinComplete
	KindJoinFail
	// KindIPAMAlloc / Failover / GC are the address-plane lifecycle
	// (internal/ipam): a fresh lease granted, an allocation served by a
	// non-primary pool, and an expiry sweep reclaiming vanished clients'
	// leases. BSSID carries the binding (AP), Note the pool involved,
	// Value the address (alloc/failover) or the reclaim count (gc).
	KindIPAMAlloc
	KindIPAMFailover
	KindIPAMGC
	// The serve.* kinds are the spider-serve daemon lifecycle, recorded on
	// the daemon's own telemetry recorder — never on a scenario's — so the
	// scenario stream's bit-identical replay contract is untouched. Unlike
	// every other kind, serve.stall's Value carries a wall-clock duration:
	// the telemetry recorder is explicitly outside the determinism
	// contract (see DESIGN §12).
	//
	// KindServeIntent marks one accepted external intent (Value = assigned
	// sequence, Note = intent kind; Note = "rejected:<reason>" when the
	// intent failed to apply).
	KindServeIntent
	// KindServeCheckpoint marks a durable snapshot (Value = intent seq
	// horizon included in the checkpoint).
	KindServeCheckpoint
	// KindServeRestore marks a startup restore (Value = intents replayed).
	KindServeRestore
	// KindServeStall marks a sim step that overran its wall-clock deadline
	// (Value = wall ns the step took).
	KindServeStall
	// KindServeWALTruncated marks recovery discarding a torn WAL tail
	// (Value = bytes truncated).
	KindServeWALTruncated
	// KindAllocAssign marks a fairness-allocator decision for one client:
	// the AP it was assigned and the pacing target applied (BSSID = the
	// assignment, zero MAC = unassigned; Value = pace in bit/s, 0 =
	// unpaced; Note = allocator variant).
	KindAllocAssign
	// KindHealthViolation / KindHealthRecovered bracket an SLO rule's
	// violating windows, emitted on the world log by the telemetry
	// evaluator at window close (Note = "rule signal=… limit=… w=window",
	// Value = the violating signal in milli-units). They derive purely
	// from rollup windows over the deterministic event stream, so they
	// inherit the replay/worker-invariance contract.
	KindHealthViolation
	KindHealthRecovered

	numKinds // sentinel: keep last
)

// NumKinds is the number of defined event kinds (Summary array width).
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	"channel-switch", "probe", "auth", "assoc",
	"dhcp-offer", "dhcp-ack", "dhcp-nak", "dhcp-renew",
	"psm-drain", "handoff", "link-up", "link-down",
	"outage-begin", "outage-end", "fault-begin", "fault-end",
	"join-start", "join-complete", "join-fail",
	"ipam.alloc", "ipam.failover", "ipam.gc",
	"serve.intent", "serve.checkpoint", "serve.restore", "serve.stall",
	"serve.wal-truncated",
	"alloc.assign",
	"health.violation", "health.recovered",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its stable string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name; unknown names are an error, which is
// what makes the exported JSONL schema-checkable.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one timeline entry. At is simulation time; no wall-clock value
// ever enters an Event, so exported artifacts are reproducible.
type Event struct {
	// At is the simulation time of the event in nanoseconds.
	At sim.Time `json:"t_ns"`
	// Client is the emitting client's ID; WorldClient for world-scoped
	// events (chaos faults).
	Client int `json:"client"`
	// Seq is the recorder-global sequence number, making (At, Client,
	// Seq) a total order.
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`
	// BSSID names the AP involved, when any.
	BSSID string `json:"bssid,omitempty"`
	// Channel is the 802.11 channel involved, when any.
	Channel int `json:"channel,omitempty"`
	// Value carries the kind-specific payload (durations in ns, drained
	// frame counts, resolved AP indices).
	Value int64 `json:"value,omitempty"`
	// Note carries a short kind-specific label (join stage, fault kind).
	Note string `json:"note,omitempty"`
}

// WorldClient is the pseudo client ID world-scoped events record under.
const WorldClient = -1

// csvEscape quotes a field per RFC 4180 when it contains a comma, quote,
// or line break; embedded quotes double. Plain fields pass through
// unchanged, so the common all-clean row costs one scan and no copies.
func csvEscape(b *strings.Builder, field string) {
	if !strings.ContainsAny(field, ",\"\r\n") {
		b.WriteString(field)
		return
	}
	b.WriteByte('"')
	for i := 0; i < len(field); i++ {
		if field[i] == '"' {
			b.WriteByte('"')
		}
		b.WriteByte(field[i])
	}
	b.WriteByte('"')
}

// appendCSV appends the event as one CSV row matching CSVHeader. The
// free-form fields (BSSID, Note) are RFC-4180-escaped: a fault cause or
// outage attribution note may legally contain commas.
func (e Event) appendCSV(b *strings.Builder) {
	b.WriteString(strconv.FormatInt(int64(e.At), 10))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(e.Client))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(e.Seq, 10))
	b.WriteByte(',')
	b.WriteString(e.Kind.String())
	b.WriteByte(',')
	csvEscape(b, e.BSSID)
	b.WriteByte(',')
	if e.Channel != 0 {
		b.WriteString(strconv.Itoa(e.Channel))
	}
	b.WriteByte(',')
	if e.Value != 0 {
		b.WriteString(strconv.FormatInt(e.Value, 10))
	}
	b.WriteByte(',')
	csvEscape(b, e.Note)
	b.WriteByte('\n')
}

// CSVHeader is the column order of the CSV timeline export.
const CSVHeader = "t_ns,client,seq,kind,bssid,channel,value,note"

// Summary counts recorded events by kind. Merging summaries is plain
// addition — commutative and associative — so fold order (and therefore
// fleet worker count and completion order) can never change a total.
type Summary struct {
	Counts [NumKinds]int64
}

// Add folds another summary into s.
func (s *Summary) Add(o Summary) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
}

// Total returns the number of events across all kinds.
func (s Summary) Total() int64 {
	var t int64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Empty reports whether no events were counted.
func (s Summary) Empty() bool { return s == Summary{} }

// String renders the non-zero counts in kind order.
func (s Summary) String() string {
	var b strings.Builder
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", Kind(i), c)
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}
