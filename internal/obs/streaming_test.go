package obs

import (
	"strings"
	"testing"
)

// TestStreamingRecorderRetainsNothing: a streaming recorder delivers
// every event and closed span to its subscribers but keeps no timeline —
// that is what bounds memory at city-scale populations.
func TestStreamingRecorderRetainsNothing(t *testing.T) {
	rec := NewStreamingRecorder()
	if !rec.Streaming() {
		t.Fatalf("NewStreamingRecorder not streaming")
	}
	var gotEv []Event
	var gotSp []Span
	rec.Subscribe(func(e Event) { gotEv = append(gotEv, e) })
	rec.SubscribeSpans(func(s Span) { gotSp = append(gotSp, s) })

	l := rec.Client(7)
	l.Emit(Event{At: 10, Kind: KindProbe})
	l.Emit(Event{At: 20, Kind: KindLinkUp})
	sp := l.StartSpan(5, "join")
	sp.SetBSSID("aa:bb")
	sp.EndStatus(25, "ok")
	open := l.StartSpan(30, "link")
	rec.CloseOpenSpans(40)

	if len(gotEv) != 2 || gotEv[0].Kind != KindProbe || gotEv[1].Kind != KindLinkUp {
		t.Fatalf("subscriber saw %v", gotEv)
	}
	if gotEv[0].Client != 7 || gotEv[0].Seq != 0 || gotEv[1].Seq != 1 {
		t.Fatalf("streaming events missing client/seq: %v", gotEv)
	}
	if len(gotSp) != 2 || gotSp[0].Name != "join" || gotSp[0].End != 25 ||
		gotSp[0].Status != "ok" || gotSp[1].Name != "link" || gotSp[1].End != 40 {
		t.Fatalf("span subscriber saw %v", gotSp)
	}
	if evs := rec.Events(); len(evs) != 0 {
		t.Fatalf("streaming recorder retained %d events", len(evs))
	}
	if sps := rec.Spans(); len(sps) != 0 {
		t.Fatalf("streaming recorder exported %d spans", len(sps))
	}
	if !rec.Summary().Empty() {
		t.Fatalf("streaming recorder has a summary")
	}
	open.End(50) // already closed by the sweep: must be a no-op
	if len(gotSp) != 2 {
		t.Fatalf("double close delivered twice")
	}
}

// TestStreamingSpanRecycling: closed span slots are reused, stale handles
// go inert, and IDs stay unique across reuse.
func TestStreamingSpanRecycling(t *testing.T) {
	rec := NewStreamingRecorder()
	l := rec.Client(1)

	a := l.StartSpan(0, "a")
	aid := a.SpanID()
	a.End(10)

	// The next span must reuse a's slot.
	b := l.StartSpan(20, "b")
	if len(l.spans) != 1 {
		t.Fatalf("slot not recycled: %d slots", len(l.spans))
	}
	if b.SpanID() == aid {
		t.Fatalf("span ID reused across recycling")
	}
	// The stale handle must not touch b's record.
	a.SetStatus("stale-write")
	a.SetBSSID("stale")
	a.End(99)
	if c := a.StartChild(30, "child-of-stale"); c != nil {
		t.Fatalf("stale handle spawned a child")
	}
	if sp := b.span(); sp.Status != "" || sp.BSSID != "" || sp.End != openEnd {
		t.Fatalf("stale handle corrupted recycled slot: %+v", *sp)
	}

	// Children of a live parent still link correctly after recycling.
	ch := b.StartChild(25, "child")
	if ch.span().Parent != b.SpanID() {
		t.Fatalf("child parent = %v, want %v", ch.span().Parent, b.SpanID())
	}
	ch.End(26)
	b.End(30)

	// Retained-mode recorders never recycle.
	rr := NewRecorder()
	rl := rr.Client(1)
	x := rl.StartSpan(0, "x")
	x.End(1)
	rl.StartSpan(2, "y")
	if len(rl.spans) != 2 {
		t.Fatalf("retained recorder recycled a slot")
	}
}

// TestReserveRegrowCounter: appends within a reservation are free;
// outgrowing it is counted so undersized reservations are loud.
func TestReserveRegrowCounter(t *testing.T) {
	rec := NewRecorder()
	rec.Reserve(4, 2)
	l := rec.Client(0)
	for i := 0; i < 4; i++ {
		l.Emit(Event{At: 1, Kind: KindProbe})
	}
	l.StartSpan(0, "a")
	l.StartSpan(0, "b")
	if ev, sp := rec.Regrown(); ev != 0 || sp != 0 {
		t.Fatalf("regrow within reservation: ev=%d sp=%d", ev, sp)
	}
	l.Emit(Event{At: 2, Kind: KindProbe})
	l.StartSpan(0, "c")
	if ev, sp := rec.Regrown(); ev != 1 || sp != 1 {
		t.Fatalf("overflow not counted: ev=%d sp=%d", ev, sp)
	}
}

// TestRenderPrometheusDeterministic pins /v1/metrics' exposition: names
// sanitized into the spider_ namespace, families sorted, two renders of
// the same state byte-identical.
func TestRenderPrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("join.attempts").Add(3)
	reg.Counter("dhcp-nak").Inc()
	reg.Gauge("links.live").Set(2)
	reg.Histogram("join.latency_ns").Observe(1500)
	reg.Histogram("join.latency_ns").Observe(300)

	want := strings.Join([]string{
		"# TYPE spider_dhcp_nak counter",
		"spider_dhcp_nak 1",
		"# TYPE spider_join_attempts counter",
		"spider_join_attempts 3",
		"# TYPE spider_links_live gauge",
		"spider_links_live 2",
		"# TYPE spider_join_latency_ns_count counter",
		"spider_join_latency_ns_count 2",
		"# TYPE spider_join_latency_ns_sum counter",
		"spider_join_latency_ns_sum 1800",
		"",
	}, "\n")
	got := reg.RenderPrometheus()
	if got != want {
		t.Fatalf("render:\n%s\nwant:\n%s", got, want)
	}
	if again := reg.RenderPrometheus(); again != got {
		t.Fatalf("two renders differ")
	}
}
