package obs

import (
	"sync"
	"time"
)

// Clock is the single seam wall-clock reads pass through. Simulation
// results must never touch it — it exists for telemetry (ETA, progress,
// timing tables) and so tests can substitute a deterministic clock and
// assert that result artifacts are byte-identical across runs.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

type wallClock struct{}

func (wallClock) Now() time.Time                  { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration { return time.Since(t) }

// Wall returns the real wall clock.
func Wall() Clock { return wallClock{} }

// Manual is a deterministic Clock for tests: it starts at the Unix epoch
// and advances by a fixed step on every Now (and Since) call, so two runs
// making the same sequence of reads observe identical times.
type Manual struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewManual returns a deterministic clock advancing by step per read.
func NewManual(step time.Duration) *Manual {
	return &Manual{now: time.Unix(0, 0).UTC(), step: step}
}

// Now returns the current reading and advances the clock by one step.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now
	m.now = m.now.Add(m.step)
	return t
}

// Since returns the elapsed time from t to the next reading.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }
