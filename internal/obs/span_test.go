package obs

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// countCSVRecords parses out with the standard library's strict RFC-4180
// reader and returns the record count (header included).
func countCSVRecords(t *testing.T, out string) int {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v\n%s", err, out)
	}
	return len(recs)
}

// TestSpanNilSafety: the disabled span path must be a no-op end to end —
// every instrumentation site calls through unconditionally.
func TestSpanNilSafety(t *testing.T) {
	var rec *Recorder
	log := rec.Client(1)
	s := log.StartSpan(10, "join")
	if s != nil {
		t.Fatalf("nil log must hand out nil spans")
	}
	// None of these may panic, and the child of nil is nil.
	s.SetBSSID("x")
	s.SetChannel(6)
	s.SetStatus("ok")
	s.End(20)
	s.EndStatus(30, "late")
	if s.Ended() {
		t.Fatalf("nil span reports ended")
	}
	if c := s.StartChild(15, "auth"); c != nil {
		t.Fatalf("child of nil span must be nil")
	}
	if s.SpanID() != 0 {
		t.Fatalf("nil span has an ID")
	}
	rec.CloseOpenSpans(99)
	if sp := rec.Spans(); sp != nil {
		t.Fatalf("nil recorder has spans: %v", sp)
	}
}

// TestSpanIDDerivation: IDs must be a pure function of (client, seq) —
// never of allocation interleaving across clients — and must round-trip.
func TestSpanIDDerivation(t *testing.T) {
	rec := NewRecorder()
	a := rec.Client(0).StartSpan(1, "join")
	b := rec.Client(7).StartSpan(1, "join")
	a2 := rec.Client(0).StartSpan(2, "join")
	w := rec.World().StartSpan(3, "fault")

	if got, want := a.SpanID(), MakeSpanID(0, 1); got != want {
		t.Errorf("client 0 first span ID = %#x, want %#x", got, want)
	}
	if got, want := a2.SpanID(), MakeSpanID(0, 2); got != want {
		t.Errorf("client 0 second span ID = %#x, want %#x", got, want)
	}
	if got, want := b.SpanID(), MakeSpanID(7, 1); got != want {
		t.Errorf("client 7 first span ID = %#x, want %#x", got, want)
	}
	if got, want := w.SpanID(), MakeSpanID(WorldClient, 1); got != want {
		t.Errorf("world span ID = %#x, want %#x", got, want)
	}
	for _, id := range []SpanID{a.SpanID(), b.SpanID(), w.SpanID()} {
		if MakeSpanID(id.Client(), id.Seq()) != id {
			t.Errorf("SpanID %#x does not round-trip (client=%d seq=%d)", id, id.Client(), id.Seq())
		}
	}
}

// TestSpanTreeAndOrdering: children carry their parent's ID, Spans()
// orders by (Start, Client, ID) with parents at-or-before children, and
// CloseOpenSpans finalizes whatever is still running.
func TestSpanTreeAndOrdering(t *testing.T) {
	rec := NewRecorder()
	join := rec.Client(0).StartSpan(100, "join")
	join.SetBSSID("00:00:00:00:00:01")
	join.SetChannel(1)
	auth := join.StartChild(100, "auth")
	auth.EndStatus(150, "ok")
	dhcp := join.StartChild(150, "dhcp-request")
	dhcp.EndStatus(220, "ok")
	join.EndStatus(220, "complete")
	occ := rec.Client(0).StartSpan(0, "occupancy") // never ended
	occ.SetChannel(1)

	rec.CloseOpenSpans(500)
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Name != "occupancy" || spans[0].End != 500 {
		t.Errorf("open span not closed at run end: %+v", spans[0])
	}
	if spans[1].Name != "join" || spans[2].Name != "auth" || spans[3].Name != "dhcp-request" {
		t.Errorf("unexpected order: %v %v %v", spans[1].Name, spans[2].Name, spans[3].Name)
	}
	for _, s := range spans[2:] {
		if s.Parent != spans[1].ID {
			t.Errorf("span %s parent = %#x, want %#x", s.Name, s.Parent, spans[1].ID)
		}
		if s.Start < spans[1].Start || s.End > spans[1].End {
			t.Errorf("child %s [%d,%d] escapes parent [%d,%d]",
				s.Name, s.Start, s.End, spans[1].Start, spans[1].End)
		}
	}
	if spans[1].Status != "complete" || spans[1].Duration() != 120 {
		t.Errorf("root span wrong: %+v", spans[1])
	}
}

// TestSpanEndIdempotent: the first close wins — defensive teardown paths
// re-End spans that their success path already closed.
func TestSpanEndIdempotent(t *testing.T) {
	rec := NewRecorder()
	s := rec.Client(0).StartSpan(10, "join")
	s.EndStatus(20, "complete")
	s.EndStatus(99, "aborted")
	s.End(120)
	sp := rec.Spans()[0]
	if sp.End != 20 || sp.Status != "complete" {
		t.Errorf("later End overwrote the first close: %+v", sp)
	}
}

// TestSpanJSONLStable: the exported JSONL is a deterministic function of
// the recorded spans (and the run label wraps each line when given).
func TestSpanJSONLStable(t *testing.T) {
	build := func() *Recorder {
		rec := NewRecorder()
		j := rec.Client(3).StartSpan(5, "join")
		j.StartChild(5, "auth").EndStatus(9, "ok")
		j.EndStatus(9, "complete")
		return rec
	}
	var a, b bytes.Buffer
	if err := WriteSpansJSONL(&a, "run1", build().Spans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpansJSONL(&b, "run1", build().Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("span JSONL not reproducible:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"run":"run1"`) {
		t.Errorf("run label missing: %s", a.String())
	}
	if strings.Contains(a.String(), "-1") {
		t.Errorf("exported spans leak the open-end sentinel: %s", a.String())
	}
}

// TestCollectorSpans: span streams file under run labels and export in
// sorted label order, independent of Add order.
func TestCollectorSpans(t *testing.T) {
	spansOf := func(name string) []Span {
		rec := NewRecorder()
		rec.Client(0).StartSpan(1, name).End(2)
		return rec.Spans()
	}
	forward, reverse := NewCollector(), NewCollector()
	forward.AddSpans("a", spansOf("join"))
	forward.AddSpans("b", spansOf("outage"))
	reverse.AddSpans("b", spansOf("outage"))
	reverse.AddSpans("a", spansOf("join"))

	var fw, rv bytes.Buffer
	if err := forward.WriteSpansJSONL(&fw); err != nil {
		t.Fatal(err)
	}
	if err := reverse.WriteSpansJSONL(&rv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fw.Bytes(), rv.Bytes()) {
		t.Errorf("collector span export depends on Add order:\n%s\nvs\n%s", fw.String(), rv.String())
	}
	if forward.SpanCount() != 2 {
		t.Errorf("SpanCount = %d, want 2", forward.SpanCount())
	}
}

// TestCSVEscaping is the RFC-4180 regression test: detail fields holding
// commas, quotes, or newlines must export as one well-formed CSV row.
func TestCSVEscaping(t *testing.T) {
	rec := NewRecorder()
	rec.Client(0).Emit(Event{At: 1, Kind: KindOutageBegin, Note: `cause, with "quotes"` + "\nand newline"})
	rec.Client(0).Emit(Event{At: 2, Kind: KindLinkUp, BSSID: "aa:bb", Note: "plain"})

	var buf bytes.Buffer
	if err := WriteCSV(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `"cause, with ""quotes""` + "\nand newline\""
	if !strings.Contains(out, want) {
		t.Errorf("detail field not RFC-4180 escaped:\n%s", out)
	}
	// A standards-compliant reader must see exactly header + 2 records;
	// the naive pre-fix writer split the first record at its comma.
	if n := countCSVRecords(t, out); n != 3 {
		t.Errorf("CSV parses into %d records, want 3 (header + 2 events):\n%s", n, out)
	}
	if !strings.Contains(out, "plain\n") {
		t.Errorf("clean fields must stay unquoted:\n%s", out)
	}
}
