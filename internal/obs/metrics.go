package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. A nil counter (resolved
// from a nil registry) makes every method a no-op, so disabled
// instrumentation costs one nil check on the hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-writer-wins level.
type Gauge struct {
	v atomic.Int64
}

// Set records the current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the last set level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations v
// with bit-length i, i.e. exponentially widening ranges. 64 covers every
// non-negative int64.
const histBuckets = 65

// Histogram accumulates a value distribution in power-of-two buckets —
// coarse, allocation-free, and mergeable by addition. Observations are
// one atomic add per call.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value; negatives clamp to bucket zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation total (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the non-zero buckets as (bit-length, count) pairs in
// ascending bucket order.
func (h *Histogram) Buckets() (idx []int, counts []int64) {
	if h == nil {
		return nil, nil
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			idx = append(idx, i)
			counts = append(counts, c)
		}
	}
	return idx, counts
}

// Registry resolves named instruments. Resolution (construction-time)
// takes a lock; the returned instruments are lock-free. A nil registry
// resolves nil instruments, disabling recording with no branches beyond
// the instruments' own nil checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first resolution.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first resolution.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first resolution.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Metric is one snapshot sample.
type Metric struct {
	Name string
	Type string // "counter", "gauge", or "histogram"
	// Value is the counter/gauge value, or the histogram count.
	Value int64
	// Sum is the histogram observation total (histograms only).
	Sum int64
}

// Snapshot returns every instrument sorted by (type, name) — a
// deterministic order suitable for artifact export.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		out = append(out, Metric{Name: n, Type: "counter", Value: c.Value()})
	}
	for n, g := range r.gauges {
		out = append(out, Metric{Name: n, Type: "gauge", Value: g.Value()})
	}
	for n, h := range r.hists {
		out = append(out, Metric{Name: n, Type: "histogram", Value: h.Count(), Sum: h.Sum()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Render prints the snapshot as stable "type name value [sum]" lines.
func (r *Registry) Render() string {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		if m.Type == "histogram" {
			fmt.Fprintf(&b, "%s %s count=%d sum=%d\n", m.Type, m.Name, m.Value, m.Sum)
			continue
		}
		fmt.Fprintf(&b, "%s %s %d\n", m.Type, m.Name, m.Value)
	}
	return b.String()
}

// promName sanitizes a registry instrument name into the Prometheus
// metric-name alphabet ([a-zA-Z0-9_:]) under the spider_ namespace:
// dots and dashes — the registry's native separators — become
// underscores, anything else outside the alphabet does too.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("spider_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// RenderPrometheus prints the snapshot in the Prometheus text exposition
// format: one `# TYPE` line plus one sample per instrument, counters and
// gauges verbatim, histograms as the conventional _count/_sum pair.
// Families render in Snapshot order — sorted by (type, name) — so two
// renders of the same registry state are byte-identical; /v1/metrics and
// its order-pinning test depend on that.
func (r *Registry) RenderPrometheus() string {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		name := promName(m.Name)
		switch m.Type {
		case "histogram":
			fmt.Fprintf(&b, "# TYPE %s_count counter\n%s_count %d\n", name, name, m.Value)
			fmt.Fprintf(&b, "# TYPE %s_sum counter\n%s_sum %d\n", name, name, m.Sum)
		case "gauge":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, m.Value)
		default:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, m.Value)
		}
	}
	return b.String()
}
