package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
)

// Recorder collects one run's event timeline and hosts its metrics
// registry. A Recorder belongs to a single scenario run and is written
// from that run's (single) simulation goroutine; reading happens after
// the run completes. A nil *Recorder disables recording everywhere: the
// ClientLogs and Registry it hands out are nil, and every method on those
// is a no-op.
type Recorder struct {
	seq  uint64
	logs map[int]*ClientLog
	reg  *Registry
	subs []func(Event)

	// evCap/spanCap pre-size the buffers of logs created after Reserve,
	// so population runs don't grow every client's timeline through the
	// append doubling ladder.
	evCap   int
	spanCap int
}

// NewRecorder returns an empty recorder with a live metrics registry.
func NewRecorder() *Recorder {
	return &Recorder{logs: make(map[int]*ClientLog), reg: NewRegistry()}
}

// Client returns the log for one client ID, creating it on first use.
// Returns nil (the disabled log) on a nil recorder.
func (r *Recorder) Client(id int) *ClientLog {
	if r == nil {
		return nil
	}
	l, ok := r.logs[id]
	if !ok {
		l = &ClientLog{r: r, id: id}
		if r.evCap > 0 {
			l.evs = make([]Event, 0, r.evCap)
		}
		if r.spanCap > 0 {
			l.spans = make([]Span, 0, r.spanCap)
		}
		r.logs[id] = l
	}
	return l
}

// Reserve sets the initial per-client event and span buffer capacities
// for logs created afterwards. Scenario startup calls it with estimates
// derived from the run length, before any client emits. Existing logs are
// untouched; no-op on a nil recorder.
func (r *Recorder) Reserve(events, spans int) {
	if r == nil {
		return
	}
	r.evCap = events
	r.spanCap = spans
}

// World returns the log world-scoped events (chaos faults) record under.
func (r *Recorder) World() *ClientLog { return r.Client(WorldClient) }

// Subscribe registers a streaming observer invoked synchronously, on the
// recording (simulation) goroutine, for every event after it is appended
// to the timeline. Observers must be fast and non-blocking — spider-serve
// fans events out to live JSONL subscribers through a single registered
// function that drops to bounded per-subscriber buffers. Subscribe is not
// safe to call concurrently with recording: register before the run (or
// from the goroutine that drives it). No-op on a nil recorder.
func (r *Recorder) Subscribe(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.subs = append(r.subs, fn)
}

// Metrics returns the recorder's registry (nil when the recorder is nil,
// which disables every instrument resolved from it).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Events returns the merged timeline ordered by (sim-time, client ID,
// sequence) — the canonical artifact order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var n int
	for _, l := range r.logs {
		n += len(l.evs)
	}
	out := make([]Event, 0, n)
	for _, l := range r.logs {
		out = append(out, l.evs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Summary counts the recorded events by kind.
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	for _, l := range r.logs {
		for _, e := range l.evs {
			if int(e.Kind) < NumKinds {
				s.Counts[e.Kind]++
			}
		}
	}
	return s
}

// ClientLog is one client's slice of the timeline. The zero of usefulness
// is nil: Emit on a nil log is a single branch and no work.
type ClientLog struct {
	r   *Recorder
	id  int
	evs []Event

	// spans is this client's slice of the causal span tree (span.go);
	// spanSeq is the client-local allocation counter span IDs derive
	// from — no global state, so IDs are reproducible per client.
	spans   []Span
	spanSeq uint32
}

// Emit records one event. The log fills Client and Seq; callers set At,
// Kind, and any payload fields. Safe (and free) on a nil log.
func (l *ClientLog) Emit(ev Event) {
	if l == nil {
		return
	}
	ev.Client = l.id
	ev.Seq = l.r.seq
	l.r.seq++
	l.evs = append(l.evs, ev)
	for _, fn := range l.r.subs {
		fn(ev)
	}
}

// Enabled reports whether events emitted here are recorded, for callers
// that want to skip payload construction entirely.
func (l *ClientLog) Enabled() bool { return l != nil }

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, run string, evs []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range evs {
		if run == "" {
			if err := enc.Encode(e); err != nil {
				return err
			}
			continue
		}
		if err := enc.Encode(struct {
			Run string `json:"run"`
			Event
		}{Run: run, Event: e}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes events as a CSV timeline with header.
func WriteCSV(w io.Writer, evs []Event) error {
	var b strings.Builder
	b.WriteString(CSVHeader)
	b.WriteByte('\n')
	for _, e := range evs {
		e.appendCSV(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Collector accumulates the per-run event streams of a multi-run sweep
// and exports them in canonical run-label order, so the merged artifact
// is byte-identical however runs were scheduled across workers. Add is
// safe to call from fleet job goroutines.
type Collector struct {
	mu    sync.Mutex
	runs  map[string][]Event
	spans map[string][]Span
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{runs: make(map[string][]Event), spans: make(map[string][]Span)}
}

// Add stores one run's (already ordered) event stream under its label.
// Adding the same label twice appends, preserving call order per label.
func (c *Collector) Add(run string, evs []Event) {
	if c == nil || len(evs) == 0 {
		return
	}
	c.mu.Lock()
	c.runs[run] = append(c.runs[run], evs...)
	c.mu.Unlock()
}

// Runs returns the stored run labels in sorted (export) order.
func (c *Collector) Runs() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.runs))
	for l := range c.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// WriteJSONL exports every run's stream, runs in sorted label order and
// events in recorded order within each run.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	for _, run := range c.Runs() {
		c.mu.Lock()
		evs := c.runs[run]
		c.mu.Unlock()
		if err := WriteJSONL(w, run, evs); err != nil {
			return err
		}
	}
	return nil
}

// Summary folds every stored run's events into one summary.
func (c *Collector) Summary() Summary {
	var s Summary
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, evs := range c.runs {
		for _, e := range evs {
			if int(e.Kind) < NumKinds {
				s.Counts[e.Kind]++
			}
		}
	}
	return s
}
