package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
)

// Recorder collects one run's event timeline and hosts its metrics
// registry. A Recorder belongs to a single scenario run and is written
// from that run's (single) simulation goroutine; reading happens after
// the run completes. A nil *Recorder disables recording everywhere: the
// ClientLogs and Registry it hands out are nil, and every method on those
// is a no-op.
type Recorder struct {
	seq      uint64
	logs     map[int]*ClientLog
	reg      *Registry
	subs     []func(Event)
	spanSubs []func(Span)

	// retain selects whether the timeline is kept in memory. A standard
	// recorder retains everything (Events/Spans export after the run); a
	// streaming recorder (NewStreamingRecorder) constructs each event and
	// closed span, hands it to subscribers, and keeps nothing — the mode
	// the bounded-memory telemetry plane runs city-scale populations in.
	retain bool

	// chattyPolicy, when set, decides once per client (at log creation)
	// whether the client's chatty diagnostic events — the per-probe and
	// per-handshake-attempt kinds that dominate a dense run's stream —
	// are recorded at all. chattySuppressed counts emissions the policy
	// suppressed, so configured loss stays loud in exported accounting.
	chattyPolicy     func(client int) bool
	chattySuppressed int64

	// Streaming-mode slabs: ClientLog structs and their span backing are
	// carved from block allocations so a thousand-client run pays tens of
	// mallocs instead of thousands, and the logs the per-event hot path
	// reads sit densely in memory rather than scattered across the heap.
	logSlab  []ClientLog
	spanSlab []Span

	// evCap/spanCap pre-size the buffers of logs created after Reserve,
	// so population runs don't grow every client's timeline through the
	// append doubling ladder. regrownEv/regrownSpan count appends that
	// outgrew a reserved buffer — nonzero means Reserve undershot and the
	// run paid the doubling ladder after all.
	evCap       int
	spanCap     int
	regrownEv   int64
	regrownSpan int64
}

// NewRecorder returns an empty recorder with a live metrics registry.
func NewRecorder() *Recorder {
	return &Recorder{logs: make(map[int]*ClientLog), reg: NewRegistry(), retain: true}
}

// NewStreamingRecorder returns a recorder that retains nothing: events
// and closed spans are delivered to Subscribe/SubscribeSpans observers
// and then dropped, and span slots are recycled through a free list, so
// memory stays O(open spans + clients) at any population and run length.
// Events, Spans, and Summary return nothing in this mode — the stream is
// the product.
func NewStreamingRecorder() *Recorder {
	return &Recorder{logs: make(map[int]*ClientLog), reg: NewRegistry()}
}

// Streaming reports whether the recorder retains nothing (false on nil:
// a nil recorder records nothing at all, which callers test separately).
func (r *Recorder) Streaming() bool { return r != nil && !r.retain }

// Client returns the log for one client ID, creating it on first use.
// Returns nil (the disabled log) on a nil recorder.
func (r *Recorder) Client(id int) *ClientLog {
	if r == nil {
		return nil
	}
	l, ok := r.logs[id]
	if !ok {
		if r.retain {
			l = &ClientLog{r: r, id: id, chatty: true}
		} else {
			// Streaming logs are tiny and uniform; carve them (and
			// their fixed-cap span backing) from slabs.
			if len(r.logSlab) == 0 {
				r.logSlab = make([]ClientLog, logSlabSize)
				r.spanSlab = make([]Span, logSlabSize*streamSpanCap)
			}
			l = &r.logSlab[0]
			r.logSlab = r.logSlab[1:]
			*l = ClientLog{r: r, id: id, chatty: true}
			l.spans = r.spanSlab[0:0:streamSpanCap]
			r.spanSlab = r.spanSlab[streamSpanCap:]
		}
		if r.chattyPolicy != nil && id != WorldClient {
			l.chatty = r.chattyPolicy(id)
		}
		// A streaming recorder never appends events (Emit only
		// dispatches to subscribers) and recycles span slots through the
		// free list, so its live span count is the concurrently-open
		// depth, not the run total — reserving retention-sized buffers
		// there is pure dead weight at population scale.
		if r.retain {
			if r.evCap > 0 {
				l.evs = make([]Event, 0, r.evCap)
			}
			if r.spanCap > 0 {
				l.spans = make([]Span, 0, r.spanCap)
			}
		}
		r.logs[id] = l
	}
	return l
}

// logSlabSize is the streaming-mode ClientLog block size (see logSlab).
const logSlabSize = 256

// streamSpanCap bounds the per-client span-slot reservation in streaming
// mode: the free list recycles closed slots, so the slice only needs the
// maximum concurrently-open span depth, which the join pipeline keeps in
// single digits.
const streamSpanCap = 8

// Reserve sets the initial per-client event and span buffer capacities
// for logs created afterwards. Scenario startup calls it with estimates
// derived from the run length, before any client emits. Existing logs are
// untouched; no-op on a nil recorder.
func (r *Recorder) Reserve(events, spans int) {
	if r == nil {
		return
	}
	r.evCap = events
	r.spanCap = spans
}

// SetChattyPolicy installs the per-client chatty-event admission policy:
// fn is consulted once per client, when its log is created, and a false
// verdict makes Chatty() report false for that log forever after. The
// world log is never suppressed. Install before the run creates any
// client log (the telemetry plane does so at Bind, which core calls
// before the world is built); logs that already exist keep their
// decision. No-op on a nil recorder.
func (r *Recorder) SetChattyPolicy(fn func(client int) bool) {
	if r == nil {
		return
	}
	r.chattyPolicy = fn
}

// ChattySuppressed returns how many chatty emissions were skipped at
// their call sites because the policy suppressed the client — the count
// that keeps configured sampling loss visible in exported accounting.
func (r *Recorder) ChattySuppressed() int64 {
	if r == nil {
		return 0
	}
	return r.chattySuppressed
}

// Regrown returns how many event and span appends outgrew a reserved
// buffer and paid a reallocation — the regression signal the Reserve
// sizing test asserts stays zero on a properly pre-sized run.
func (r *Recorder) Regrown() (events, spans int64) {
	if r == nil {
		return 0, 0
	}
	return r.regrownEv, r.regrownSpan
}

// World returns the log world-scoped events (chaos faults) record under.
func (r *Recorder) World() *ClientLog { return r.Client(WorldClient) }

// Subscribe registers a streaming observer invoked synchronously, on the
// recording (simulation) goroutine, for every event after it is appended
// to the timeline. Observers must be fast and non-blocking — spider-serve
// fans events out to live JSONL subscribers through a single registered
// function that drops to bounded per-subscriber buffers. Subscribe is not
// safe to call concurrently with recording: register before the run (or
// from the goroutine that drives it). No-op on a nil recorder.
func (r *Recorder) Subscribe(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.subs = append(r.subs, fn)
}

// SubscribeSpans registers a streaming observer invoked synchronously,
// on the recording goroutine, for every span as it closes (End,
// EndStatus, or the final CloseOpenSpans sweep). The delivered Span is a
// copy — observers may keep it. Same registration contract as Subscribe:
// before the run, not concurrently with it. No-op on a nil recorder.
func (r *Recorder) SubscribeSpans(fn func(Span)) {
	if r == nil || fn == nil {
		return
	}
	r.spanSubs = append(r.spanSubs, fn)
}

// Metrics returns the recorder's registry (nil when the recorder is nil,
// which disables every instrument resolved from it).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Events returns the merged timeline ordered by (sim-time, client ID,
// sequence) — the canonical artifact order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var n int
	for _, l := range r.logs {
		n += len(l.evs)
	}
	out := make([]Event, 0, n)
	for _, l := range r.logs {
		out = append(out, l.evs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Summary counts the recorded events by kind.
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	for _, l := range r.logs {
		for _, e := range l.evs {
			if int(e.Kind) < NumKinds {
				s.Counts[e.Kind]++
			}
		}
	}
	return s
}

// ClientLog is one client's slice of the timeline. The zero of usefulness
// is nil: Emit on a nil log is a single branch and no work.
type ClientLog struct {
	r   *Recorder
	id  int
	evs []Event

	// chatty is the client's cached chatty-policy verdict (true when no
	// policy is installed); see Chatty.
	chatty bool

	// spans is this client's slice of the causal span tree (span.go);
	// spanSeq is the client-local allocation counter span IDs derive
	// from — no global state, so IDs are reproducible per client.
	// spanGen and spanFree exist only in streaming mode: closed span
	// slots go on the free list, and reuse bumps the slot's generation so
	// stale ActiveSpan handles turn into no-ops instead of scribbling on
	// the recycled slot.
	spans    []Span
	spanSeq  uint32
	spanGen  []uint32
	spanFree []int
}

// Emit records one event. The log fills Client and Seq; callers set At,
// Kind, and any payload fields. Safe (and free) on a nil log.
func (l *ClientLog) Emit(ev Event) {
	if l == nil {
		return
	}
	ev.Client = l.id
	ev.Seq = l.r.seq
	l.r.seq++
	if l.r.retain {
		if len(l.evs) == cap(l.evs) {
			l.r.regrownEv++
		}
		l.evs = append(l.evs, ev)
	}
	for _, fn := range l.r.subs {
		fn(ev)
	}
}

// Enabled reports whether events emitted here are recorded, for callers
// that want to skip payload construction entirely.
func (l *ClientLog) Enabled() bool { return l != nil }

// Chatty reports whether this client's chatty diagnostic events (probes,
// per-attempt handshake counters — the kinds that dominate a dense run's
// stream) should be rendered and emitted. When a chatty policy suppressed
// the client, each call counts one suppressed emission, so call it once
// per would-be emission: the suppressed total keeps sampling loss loud
// even though suppressed events are never constructed. False on a nil
// log, where — as with Enabled — nothing is recorded or counted.
func (l *ClientLog) Chatty() bool {
	if l == nil {
		return false
	}
	if l.chatty {
		return true
	}
	l.r.chattySuppressed++
	return false
}

// ChattyFlag reads the sampling decision without counting a suppressed
// emission. Hot emitters (the driver's probe path) cache this immutable
// flag next to their own state — re-reading the log per emission is a
// cache miss per event at population scale — count suppressions locally,
// and settle the total through AddSuppressed on their publish cadence.
func (l *ClientLog) ChattyFlag() bool { return l != nil && l.chatty }

// AddSuppressed folds locally-counted suppressed emissions into the
// recorder's total (see ChattyFlag). No-op on a nil log.
func (l *ClientLog) AddSuppressed(n int64) {
	if l == nil || n == 0 {
		return
	}
	l.r.chattySuppressed += n
}

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, run string, evs []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range evs {
		if run == "" {
			if err := enc.Encode(e); err != nil {
				return err
			}
			continue
		}
		if err := enc.Encode(struct {
			Run string `json:"run"`
			Event
		}{Run: run, Event: e}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes events as a CSV timeline with header.
func WriteCSV(w io.Writer, evs []Event) error {
	var b strings.Builder
	b.WriteString(CSVHeader)
	b.WriteByte('\n')
	for _, e := range evs {
		e.appendCSV(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Collector accumulates the per-run event streams of a multi-run sweep
// and exports them in canonical run-label order, so the merged artifact
// is byte-identical however runs were scheduled across workers. Add is
// safe to call from fleet job goroutines.
type Collector struct {
	mu    sync.Mutex
	runs  map[string][]Event
	spans map[string][]Span
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{runs: make(map[string][]Event), spans: make(map[string][]Span)}
}

// Add stores one run's (already ordered) event stream under its label.
// Adding the same label twice appends, preserving call order per label.
func (c *Collector) Add(run string, evs []Event) {
	if c == nil || len(evs) == 0 {
		return
	}
	c.mu.Lock()
	c.runs[run] = append(c.runs[run], evs...)
	c.mu.Unlock()
}

// Runs returns the stored run labels in sorted (export) order.
func (c *Collector) Runs() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.runs))
	for l := range c.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// WriteJSONL exports every run's stream, runs in sorted label order and
// events in recorded order within each run.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	for _, run := range c.Runs() {
		c.mu.Lock()
		evs := c.runs[run]
		c.mu.Unlock()
		if err := WriteJSONL(w, run, evs); err != nil {
			return err
		}
	}
	return nil
}

// Summary folds every stored run's events into one summary.
func (c *Collector) Summary() Summary {
	var s Summary
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, evs := range c.runs {
		for _, e := range evs {
			if int(e.Kind) < NumKinds {
				s.Counts[e.Kind]++
			}
		}
	}
	return s
}
