package opt

import (
	"math"
	"sort"

	"spider/internal/sim"
)

// APOption is one candidate AP in the Appendix A selection problem.
type APOption struct {
	// Value is the connectivity/throughput payoff of joining (V_i = T_i·W_i).
	Value float64
	// Cost is the time spent on the AP including switching and queue
	// overheads (C_i).
	Cost float64
	// Utility is Spider's join-history signal: a noisy, cheaply available
	// proxy for Value/Cost used by the deployed heuristic.
	Utility float64
}

// SelectionResult is the outcome of one selection algorithm.
type SelectionResult struct {
	Picked []int
	Value  float64
	Cost   float64
}

// SolveExact maximizes total value within the time budget with the classic
// 0-1 knapsack dynamic program, discretizing costs into resolution buckets.
// Appendix A reduces multi-AP selection to exactly this problem; the DP is
// pseudo-polynomial, which is why Spider cannot run it online.
func SolveExact(items []APOption, budget float64, resolution int) SelectionResult {
	if resolution <= 0 {
		panic("opt: SolveExact needs positive resolution")
	}
	if budget <= 0 || len(items) == 0 {
		return SelectionResult{}
	}
	scale := float64(resolution) / budget
	cap := resolution
	// best[c] = max value using cost ≤ c; choice tracking for backtrace.
	best := make([]float64, cap+1)
	take := make([][]bool, len(items))
	for i := range take {
		take[i] = make([]bool, cap+1)
	}
	for i, it := range items {
		w := int(math.Ceil(it.Cost * scale))
		if w > cap || it.Value <= 0 {
			continue
		}
		for c := cap; c >= w; c-- {
			if v := best[c-w] + it.Value; v > best[c] {
				best[c] = v
				take[i][c] = true
			}
		}
	}
	res := SelectionResult{Value: best[cap]}
	c := cap
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][c] {
			res.Picked = append(res.Picked, i)
			res.Cost += items[i].Cost
			c -= int(math.Ceil(items[i].Cost * scale))
		}
	}
	sort.Ints(res.Picked)
	return res
}

// SolveGreedy picks items by value density (value/cost) until the budget is
// exhausted — the standard knapsack approximation.
func SolveGreedy(items []APOption, budget float64) SelectionResult {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := density(items[idx[a]])
		db := density(items[idx[b]])
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	return takeInOrder(items, idx, budget)
}

// SolveByUtility is Spider's deployed heuristic: rank APs by join-history
// utility and take them while they fit. It never inspects Value, which is
// unobservable before joining — that is the whole point of the design.
func SolveByUtility(items []APOption, budget float64) SelectionResult {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if items[idx[a]].Utility != items[idx[b]].Utility {
			return items[idx[a]].Utility > items[idx[b]].Utility
		}
		return idx[a] < idx[b]
	})
	return takeInOrder(items, idx, budget)
}

func density(it APOption) float64 {
	if it.Cost <= 0 {
		return math.Inf(1)
	}
	return it.Value / it.Cost
}

func takeInOrder(items []APOption, order []int, budget float64) SelectionResult {
	var res SelectionResult
	for _, i := range order {
		it := items[i]
		if it.Cost > budget-res.Cost || it.Value <= 0 {
			continue
		}
		res.Picked = append(res.Picked, i)
		res.Value += it.Value
		res.Cost += it.Cost
	}
	sort.Ints(res.Picked)
	return res
}

// SolveBruteForce enumerates all 2^n subsets — the exponential baseline the
// Appendix's NP-hardness argument rules out for online use. Only sensible
// for small n.
func SolveBruteForce(items []APOption, budget float64) SelectionResult {
	n := len(items)
	if n > 24 {
		panic("opt: SolveBruteForce limited to 24 items")
	}
	var best SelectionResult
	for mask := 0; mask < 1<<n; mask++ {
		cost, value := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cost += items[i].Cost
				value += items[i].Value
			}
		}
		if cost <= budget && value > best.Value {
			best.Value = value
			best.Cost = cost
			best.Picked = best.Picked[:0]
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					best.Picked = append(best.Picked, i)
				}
			}
		}
	}
	return best
}

// RandomInstance generates a selection problem resembling a road segment:
// encounter times T_i uniform in [2 s, 30 s], offered bandwidths in
// [0.25, 3] Mbit/s, costs including a per-AP join overhead, and utilities
// that track true value with multiplicative noise (join history is
// informative but imperfect).
func RandomInstance(rng *sim.RNG, n int, utilityNoise float64) []APOption {
	items := make([]APOption, n)
	for i := range items {
		encounter := rng.Uniform(2, 30)     // seconds
		bw := rng.Uniform(0.25e6, 3e6)      // bits/s
		joinOverhead := rng.Uniform(0.5, 4) // seconds
		value := encounter * bw             // bits
		noise := 1 + utilityNoise*(rng.Float64()*2-1)
		items[i] = APOption{
			Value:   value,
			Cost:    encounter + joinOverhead,
			Utility: density(APOption{Value: value, Cost: encounter + joinOverhead}) * noise,
		}
	}
	return items
}
