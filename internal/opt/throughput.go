// Package opt implements the paper's throughput-maximization framework
// (Section 2.1.3, Equations 8-10) and the Appendix A multi-AP selection
// problem with its exact and heuristic solvers.
package opt

import (
	"spider/internal/model"
	"spider/internal/sim"
)

// ChannelInput describes one channel's bandwidth situation, in bits/s.
type ChannelInput struct {
	// Joined is B_j: end-to-end bandwidth from APs already joined.
	Joined float64
	// Available is B_a: bandwidth from APs still being joined, usable
	// only for the expected fraction of residence time after the join.
	Available float64
}

// JoinDiscount selects how the expected unjoined fraction E[X_i] is
// computed.
type JoinDiscount int

const (
	// CorrelatedBeta treats an AP's response time β as fixed per visit,
	// stretched by the schedule fraction (the default; see
	// model.CorrelatedJoinFraction). This reproduces the paper's
	// dividing-speed result.
	CorrelatedBeta JoinDiscount = iota
	// LiteralEq7 uses Equations 5-7 exactly as written, which redraw β
	// per retransmission and are optimistic about fractional schedules.
	LiteralEq7
)

// Problem is one instance of the optimization.
type Problem struct {
	// Model supplies p(f_i, t) and E[X_i].
	Model model.Params
	// Bw is the wireless channel bandwidth in bits/s (paper: 11 Mbit/s).
	Bw float64
	// T is the AP residence time (range crossing at the node's speed).
	T sim.Time
	// Channels are the competing channels.
	Channels []ChannelInput
	// Discount selects the E[X_i] computation (default CorrelatedBeta).
	Discount JoinDiscount
}

// joinFraction dispatches on Discount.
func (p Problem) joinFraction(fi float64) float64 {
	if p.Discount == LiteralEq7 {
		return p.Model.ExpectedJoinFraction(fi, p.T)
	}
	return p.Model.CorrelatedJoinFraction(fi, p.T)
}

// Solution is an optimal schedule.
type Solution struct {
	// F is the optimal fraction of each period per channel.
	F []float64
	// PerChannelBps is the extracted bandwidth per channel, f_i·Bw
	// clipped by the constraint.
	PerChannelBps []float64
	// TotalBps is the aggregate.
	TotalBps float64
}

// Solve grid-searches the feasible schedule space at the given fraction
// step (e.g. 0.01). It honours both constraints: per-channel bandwidth
// availability (Eq. 9, with the join-time discount on unjoined bandwidth)
// and the schedule budget Σ(f_i·D + ⌈f_i⌉·w) ≤ D (Eq. 10).
func (p Problem) Solve(step float64) Solution {
	if step <= 0 || step > 1 {
		panic("opt: Solve needs 0 < step <= 1")
	}
	if p.Bw <= 0 || len(p.Channels) == 0 {
		panic("opt: Solve needs Bw and channels")
	}
	n := len(p.Channels)

	// Per-channel upper bound on f from Eq. 9, precomputed per grid value
	// because E[X_i] depends on f_i.
	steps := int(1/step) + 1
	fmaxAt := make([][]float64, n) // fmaxAt[i][k]: utility of f=k·step on channel i
	for i, ch := range p.Channels {
		fmaxAt[i] = make([]float64, steps)
		for k := 0; k < steps; k++ {
			f := float64(k) * step
			ex := p.joinFraction(f)
			// Attained bandwidth: schedule share, clipped by what the
			// channel can deliver (joined APs plus the join-discounted
			// unjoined ones). Unlike a hard feasibility cut, clipping
			// lets the solver leave surplus airtime idle on a channel
			// that cannot use it.
			attained := f * p.Bw
			if rhs := ch.Joined + (1-ex)*ch.Available; attained > rhs {
				attained = rhs
			}
			if attained < 0 {
				attained = 0
			}
			fmaxAt[i][k] = attained
		}
	}

	d := float64(p.Model.D)
	w := float64(p.Model.W)
	best := Solution{F: make([]float64, n), PerChannelBps: make([]float64, n)}
	cur := make([]int, n)
	var rec func(i int, budget float64, total float64)
	rec = func(i int, budget float64, total float64) {
		if i == n {
			if total > best.TotalBps {
				best.TotalBps = total
				for j, k := range cur {
					best.F[j] = float64(k) * step
					best.PerChannelBps[j] = fmaxAt[j][k]
					if best.PerChannelBps[j] < 0 {
						best.PerChannelBps[j] = 0
					}
				}
			}
			return
		}
		for k := 0; k < steps; k++ {
			gain := fmaxAt[i][k]
			f := float64(k) * step
			cost := f * d
			if k > 0 {
				cost += w
			}
			if cost > budget {
				break
			}
			cur[i] = k
			rec(i+1, budget-cost, total+gain)
		}
		cur[i] = 0
	}
	rec(0, d, 0)
	return best
}

// DividingSpeed returns the lowest speed (m/s) in [minSpeed, maxSpeed], at
// the given granularity, above which the optimal schedule extracts nothing
// from any channel beyond the best one — the paper's "dividing speed"
// (~10 m/s). The residence time is 2·radioRange/speed.
func DividingSpeed(m model.Params, bw float64, channels []ChannelInput, radioRange float64, minSpeed, maxSpeed, speedStep, fracStep float64) float64 {
	for v := minSpeed; v <= maxSpeed; v += speedStep {
		T := sim.Time(2 * radioRange / v * 1e9)
		sol := Problem{Model: m, Bw: bw, T: T, Channels: channels}.Solve(fracStep)
		if singleChannelOptimal(sol, bw) {
			return v
		}
	}
	return maxSpeed
}

// singleChannelOptimal reports whether at most one channel extracts a
// meaningful share (≥5% of the wireless bandwidth).
func singleChannelOptimal(s Solution, bw float64) bool {
	meaningful := 0
	for _, b := range s.PerChannelBps {
		if b >= 0.05*bw {
			meaningful++
		}
	}
	return meaningful <= 1
}
