package opt

import "math"

// This file implements the proportional-fair association problem the
// fairness allocator (internal/alloc) solves each epoch: N clients, A APs,
// per-pair modeled rates, pick one AP per client so the product of
// delivered throughputs is maximized under equal-airtime sharing.
//
// The throughput model has two shared resources. Each 802.11 channel is a
// single collision domain whose transmissions serialize (see internal/phy),
// so a client assigned to an AP on channel j receives an equal airtime
// share 1/n_j of that channel and delivers r·(1/n_j) where r is its own
// PHY rate — equal airtime, not equal throughput, which is exactly the PF
// allocation for log utilities at one rate per client (Liew & Zhang). An
// AP's backhaul caps its aggregate at CapacityBps, split evenly across its
// n_a stations. A client on AP a (channel j) therefore delivers
//
//	v(c,a) = min( RateBps[c][a] / n_j , CapacityBps[a] / n_a ).
//
// The solver runs deterministic best-response sweeps: clients in index
// order repeatedly move to the AP maximizing their own v given everyone
// else's assignment. Load appears in every rival's denominator, so best
// responses spread clients across APs and channels; the sweep is the
// classic distributed approximation of the PF optimum and converges (or is
// cut off by MaxPasses) in a handful of passes. Everything iterates in
// index order with strict tie-breaks, so the solution is a pure function
// of the problem.

// PFAP describes one AP of a proportional-fair association problem.
type PFAP struct {
	// Channel is the AP's 802.11 channel; APs sharing a channel share one
	// collision domain.
	Channel int
	// CapacityBps caps the AP's aggregate delivered rate (its backhaul);
	// <= 0 means unlimited.
	CapacityBps float64
}

// PFProblem is one association instance.
type PFProblem struct {
	APs []PFAP
	// RateBps[c][a] is client c's modeled PHY goodput toward AP a in
	// bits/s; <= 0 marks the AP unreachable for that client.
	RateBps [][]float64
	// Initial, when non-empty, seeds the assignment with a previous
	// solution (-1 = unassigned) — the hysteresis that keeps an epoch
	// re-solve from flapping equal-value clients between APs.
	Initial []int
	// MaxPasses bounds the best-response sweeps (default 8).
	MaxPasses int
	// SwitchMargin, when positive, is the relative gain an alternative AP
	// must offer before a client abandons one it currently holds (0.5 =
	// "only move for 50% more"). The model prices airtime but not churn:
	// in the real system every reassignment costs a reassociation, a DHCP
	// exchange, and a TCP restart, so epoch re-solves without a margin
	// flap clients between near-equal APs and burn the gain. Zero keeps
	// pure best-response.
	SwitchMargin float64
}

// PFSolution is the solved association.
type PFSolution struct {
	// Assign[c] is client c's AP index, -1 when no AP is reachable.
	Assign []int
	// ThroughputBps[c] is the modeled delivered rate under the equal-
	// airtime / equal-backhaul-split sharing model.
	ThroughputBps []float64
	// Objective is Σ ln(ThroughputBps) over served clients — the PF
	// objective the best-response sweep approximately maximizes.
	Objective float64
}

// pfState carries the mutable load counts of a solve.
type pfState struct {
	p      PFProblem
	assign []int
	nAP    []int         // stations per AP
	nCh    [16]int       // stations per channel 0..15 (802.11 channels)
	chOf   func(int) int // AP index -> bounded channel index
}

// value returns client c's delivered rate on AP a given the counts in s,
// counting c as present on a (callers remove c from its old AP first).
func (s *pfState) value(c, a int) float64 {
	r := s.p.RateBps[c][a]
	if r <= 0 {
		return 0
	}
	v := r / float64(s.nCh[s.chOf(a)]+1)
	if cap := s.p.APs[a].CapacityBps; cap > 0 {
		if b := cap / float64(s.nAP[a]+1); b < v {
			v = b
		}
	}
	return v
}

func (s *pfState) add(c, a int) {
	s.assign[c] = a
	s.nAP[a]++
	s.nCh[s.chOf(a)]++
}

func (s *pfState) remove(c int) {
	a := s.assign[c]
	if a < 0 {
		return
	}
	s.assign[c] = -1
	s.nAP[a]--
	s.nCh[s.chOf(a)]--
}

// SolvePF solves the association by deterministic best-response sweeps.
func SolvePF(p PFProblem) PFSolution {
	n := len(p.RateBps)
	sol := PFSolution{Assign: make([]int, n), ThroughputBps: make([]float64, n)}
	if n == 0 || len(p.APs) == 0 {
		return sol
	}
	maxPasses := p.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 8
	}
	// Channels outside [0,15] (not 802.11, but the types allow it) fold
	// onto one bucket; they still share fairly, just with each other.
	chOf := func(a int) int {
		ch := p.APs[a].Channel
		if ch < 0 || ch > 15 {
			return 0
		}
		return ch
	}
	s := &pfState{p: p, assign: sol.Assign, nAP: make([]int, len(p.APs)), chOf: chOf}
	for c := range s.assign {
		s.assign[c] = -1
	}
	// Seed: the previous epoch's assignment where given and still
	// reachable, so an unchanged world re-solves to an unchanged answer.
	for c := 0; c < n && c < len(p.Initial); c++ {
		if a := p.Initial[c]; a >= 0 && a < len(p.APs) && p.RateBps[c][a] > 0 {
			s.add(c, a)
		}
	}

	// Best-response sweeps in client index order. A client moves only for
	// a strict relative improvement — and, when it already holds a
	// reachable AP, only past the switch margin — so equal-value options
	// never oscillate and a fixpoint is a pure function of the inputs.
	const improve = 1 + 1e-9
	stick := improve
	if p.SwitchMargin > 0 {
		stick = 1 + p.SwitchMargin
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for c := 0; c < n; c++ {
			cur := s.assign[c]
			s.remove(c)
			curV := 0.0
			if cur >= 0 {
				curV = s.value(c, cur)
			}
			best, bestV := -1, 0.0
			for a := range p.APs {
				if a == cur {
					continue
				}
				if v := s.value(c, a); v > bestV*improve {
					best, bestV = a, v
				}
			}
			switch {
			case curV > 0 && (best < 0 || bestV <= curV*stick):
				// Keep the held AP: no alternative clears the margin.
				s.add(c, cur)
			case best >= 0 && bestV > 0:
				s.add(c, best)
				changed = true
			case cur >= 0:
				// Previously assigned AP became unreachable and nothing
				// else is in range.
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Final exact evaluation under the settled loads.
	for c := 0; c < n; c++ {
		a := s.assign[c]
		if a < 0 {
			continue
		}
		v := s.p.RateBps[c][a] / float64(s.nCh[chOf(a)])
		if cap := p.APs[a].CapacityBps; cap > 0 {
			if b := cap / float64(s.nAP[a]); b < v {
				v = b
			}
		}
		sol.ThroughputBps[c] = v
		if v > 0 {
			sol.Objective += math.Log(v)
		}
	}
	return sol
}
