package opt

import (
	"math"
	"reflect"
	"testing"
)

// rates builds a uniform RateBps matrix.
func uniformRates(clients, aps int, r float64) [][]float64 {
	m := make([][]float64, clients)
	for c := range m {
		m[c] = make([]float64, aps)
		for a := range m[c] {
			m[c][a] = r
		}
	}
	return m
}

func TestSolvePFBalancesEqualAPs(t *testing.T) {
	// Four identical clients, two identical APs on different channels:
	// the PF assignment is 2/2 and every client delivers r/2.
	p := PFProblem{
		APs:     []PFAP{{Channel: 1}, {Channel: 6}},
		RateBps: uniformRates(4, 2, 10e6),
	}
	sol := SolvePF(p)
	count := [2]int{}
	for c, a := range sol.Assign {
		if a < 0 {
			t.Fatalf("client %d unassigned", c)
		}
		count[a]++
		if math.Abs(sol.ThroughputBps[c]-5e6) > 1 {
			t.Fatalf("client %d throughput %v, want 5e6", c, sol.ThroughputBps[c])
		}
	}
	if count[0] != 2 || count[1] != 2 {
		t.Fatalf("assignment not balanced: %v", count)
	}
}

func TestSolvePFSharedChannelSplitsByBackhaul(t *testing.T) {
	// Two APs on ONE channel: the channel share is global (4 clients ->
	// 1/4 each regardless of AP), so the only reason to spread is the
	// per-AP backhaul cap. With caps tight enough to bind, the solver
	// must still split 2/2.
	p := PFProblem{
		APs:     []PFAP{{Channel: 1, CapacityBps: 4e6}, {Channel: 1, CapacityBps: 4e6}},
		RateBps: uniformRates(4, 2, 10e6),
	}
	sol := SolvePF(p)
	count := [2]int{}
	for _, a := range sol.Assign {
		count[a]++
	}
	if count[0] != 2 || count[1] != 2 {
		t.Fatalf("assignment not balanced across backhauls: %v", count)
	}
	// Each client: channel share 10e6/4 = 2.5e6, backhaul 4e6/2 = 2e6.
	for c, v := range sol.ThroughputBps {
		if math.Abs(v-2e6) > 1 {
			t.Fatalf("client %d throughput %v, want 2e6", c, v)
		}
	}
}

func TestSolvePFPrefersRateThenAvoidsCap(t *testing.T) {
	// A lone client prefers the reachable AP with the better delivered
	// rate, accounting for the backhaul cap: AP0 has a fast radio but a
	// 1 Mbit backhaul, AP1 a slower radio with open backhaul.
	p := PFProblem{
		APs:     []PFAP{{Channel: 1, CapacityBps: 1e6}, {Channel: 6}},
		RateBps: [][]float64{{10e6, 2e6}},
	}
	sol := SolvePF(p)
	if sol.Assign[0] != 1 {
		t.Fatalf("assigned AP %d, want 1 (capacity-aware)", sol.Assign[0])
	}
	if math.Abs(sol.ThroughputBps[0]-2e6) > 1 {
		t.Fatalf("throughput %v, want 2e6", sol.ThroughputBps[0])
	}
}

func TestSolvePFUnreachableClient(t *testing.T) {
	p := PFProblem{
		APs:     []PFAP{{Channel: 1}},
		RateBps: [][]float64{{0}, {5e6}},
	}
	sol := SolvePF(p)
	if sol.Assign[0] != -1 || sol.ThroughputBps[0] != 0 {
		t.Fatalf("unreachable client got %d / %v", sol.Assign[0], sol.ThroughputBps[0])
	}
	if sol.Assign[1] != 0 {
		t.Fatalf("reachable client got %d", sol.Assign[1])
	}
}

func TestSolvePFHysteresis(t *testing.T) {
	// Two equal APs, one client: without a seed the tie breaks to AP 0;
	// with Initial=1 the equal-value client must stay put.
	p := PFProblem{
		APs:     []PFAP{{Channel: 1}, {Channel: 6}},
		RateBps: uniformRates(1, 2, 10e6),
	}
	if sol := SolvePF(p); sol.Assign[0] != 0 {
		t.Fatalf("unseeded tie broke to %d, want 0", sol.Assign[0])
	}
	p.Initial = []int{1}
	if sol := SolvePF(p); sol.Assign[0] != 1 {
		t.Fatalf("seeded client moved to %d, want to stay on 1", sol.Assign[0])
	}
}

func TestSolvePFDeterministic(t *testing.T) {
	// A loaded asymmetric instance solved twice must match exactly.
	rates := [][]float64{
		{9e6, 3e6, 0},
		{8e6, 4e6, 1e6},
		{2e6, 7e6, 6e6},
		{1e6, 1e6, 11e6},
		{5e6, 5e6, 5e6},
	}
	p := PFProblem{
		APs:     []PFAP{{Channel: 1, CapacityBps: 4e6}, {Channel: 1, CapacityBps: 4e6}, {Channel: 6}},
		RateBps: rates,
	}
	a, b := SolvePF(p), SolvePF(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("solver not deterministic:\n%v\n%v", a, b)
	}
}

func TestSolvePFBeatsSelfishRateChasing(t *testing.T) {
	// Eight identical clients, two same-channel APs with tight backhauls.
	// The selfish max-rate rule piles everyone onto AP 0; PF spreads
	// them. Compare PF objectives under the same sharing model.
	nClients := 8
	p := PFProblem{
		APs:     []PFAP{{Channel: 1, CapacityBps: 2e6}, {Channel: 1, CapacityBps: 2e6}},
		RateBps: make([][]float64, nClients),
	}
	for c := range p.RateBps {
		p.RateBps[c] = []float64{10e6, 9.9e6} // AP 0 is everyone's best rate
	}
	sol := SolvePF(p)

	// Selfish: everyone on AP 0. Channel share 10e6/8, backhaul 2e6/8.
	selfish := 0.0
	for range p.RateBps {
		selfish += math.Log(math.Min(10e6/8, 2e6/8))
	}
	if sol.Objective <= selfish {
		t.Fatalf("PF objective %v not better than selfish %v", sol.Objective, selfish)
	}
	count := [2]int{}
	for _, a := range sol.Assign {
		count[a]++
	}
	if count[0] != 4 || count[1] != 4 {
		t.Fatalf("PF did not spread the herd: %v", count)
	}
}
