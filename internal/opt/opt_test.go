package opt

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spider/internal/model"
	"spider/internal/sim"
)

func fig4Model() model.Params {
	p := model.PaperParams(10 * time.Second)
	return p
}

func residence(speed float64) sim.Time {
	return sim.Time(2 * 100 / speed * 1e9) // 100 m range
}

func TestSolveSingleChannelSaturates(t *testing.T) {
	// One channel already joined at 75% of Bw: optimum is f=0.75 (minus
	// the grid step), no switching.
	pr := Problem{
		Model:    fig4Model(),
		Bw:       11e6,
		T:        residence(10),
		Channels: []ChannelInput{{Joined: 0.75 * 11e6}},
	}
	sol := pr.Solve(0.01)
	if math.Abs(sol.F[0]-0.75) > 0.011 {
		t.Fatalf("f = %v, want ≈0.75", sol.F[0])
	}
	if sol.TotalBps < 0.73*11e6 {
		t.Fatalf("total = %v", sol.TotalBps)
	}
}

func TestSolveFastSpeedPrefersSingleChannel(t *testing.T) {
	// Paper's main result: at 20 m/s (T = 10 s) with bandwidth split
	// between a joined channel and an unjoined one, the optimizer leaves
	// the second channel alone.
	pr := Problem{
		Model: fig4Model(),
		Bw:    11e6,
		T:     residence(20),
		Channels: []ChannelInput{
			{Joined: 0.75 * 11e6},
			{Available: 0.25 * 11e6},
		},
	}
	sol := pr.Solve(0.01)
	if sol.PerChannelBps[1] > 0.02*11e6 {
		t.Fatalf("at 20 m/s the second channel got %v bps, want ≈0", sol.PerChannelBps[1])
	}
}

func TestSolveSlowSpeedUsesBothChannels(t *testing.T) {
	// At 2.5 m/s (T = 80 s) joining the second channel pays off when it
	// holds most of the bandwidth.
	pr := Problem{
		Model: fig4Model(),
		Bw:    11e6,
		T:     residence(2.5),
		Channels: []ChannelInput{
			{Joined: 0.25 * 11e6},
			{Available: 0.75 * 11e6},
		},
	}
	sol := pr.Solve(0.01)
	if sol.PerChannelBps[1] <= 0 {
		t.Fatal("slow node never switched to the bandwidth-rich channel")
	}
	if sol.TotalBps <= 0.25*11e6 {
		t.Fatalf("total %v no better than staying put", sol.TotalBps)
	}
}

func TestDividingSpeedNearPaperValue(t *testing.T) {
	// The paper reports the dividing speed is below ≈10 m/s for most
	// scenarios; check it lands in a sane band for the 25/75 split.
	m := fig4Model()
	div := DividingSpeed(m, 11e6,
		[]ChannelInput{{Joined: 0.25 * 11e6}, {Available: 0.75 * 11e6}},
		100, 2.5, 25, 2.5, 0.02)
	if div < 2.5 || div > 25 {
		t.Fatalf("dividing speed = %v", div)
	}
	// And for the 75/25 split the divide must be at an equal or slower
	// speed (less incentive to switch).
	div2 := DividingSpeed(m, 11e6,
		[]ChannelInput{{Joined: 0.75 * 11e6}, {Available: 0.25 * 11e6}},
		100, 2.5, 25, 2.5, 0.02)
	if div2 > div+1e-9 {
		t.Fatalf("75/25 divide %v > 25/75 divide %v", div2, div)
	}
}

func TestScheduleBudgetRespected(t *testing.T) {
	pr := Problem{
		Model: fig4Model(),
		Bw:    11e6,
		T:     residence(5),
		Channels: []ChannelInput{
			{Joined: 11e6}, {Joined: 11e6}, {Joined: 11e6},
		},
	}
	sol := pr.Solve(0.05)
	sum := 0.0
	for _, f := range sol.F {
		sum += f*float64(pr.Model.D) + math.Ceil(f)*float64(pr.Model.W)
	}
	if sum > float64(pr.Model.D)+1e-6 {
		t.Fatalf("schedule cost %v exceeds period %v", sum, float64(pr.Model.D))
	}
}

func TestSolveValidation(t *testing.T) {
	pr := Problem{Model: fig4Model(), Bw: 11e6, T: residence(10), Channels: []ChannelInput{{}}}
	for _, step := range []float64{0, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("step %v did not panic", step)
				}
			}()
			pr.Solve(step)
		}()
	}
}

func TestKnapsackExactBeatsOrMatchesHeuristics(t *testing.T) {
	rng := sim.NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		items := RandomInstance(rng, 12, 0.3)
		budget := 60.0
		exact := SolveExact(items, budget, 600)
		greedy := SolveGreedy(items, budget)
		utility := SolveByUtility(items, budget)
		if greedy.Value > exact.Value*1.001 {
			t.Fatalf("greedy %v beat exact %v", greedy.Value, exact.Value)
		}
		if utility.Value > exact.Value*1.001 {
			t.Fatalf("utility %v beat exact %v", utility.Value, exact.Value)
		}
		if exact.Cost > budget*1.01 {
			t.Fatalf("exact overspent: %v > %v", exact.Cost, budget)
		}
	}
}

func TestKnapsackKnownInstance(t *testing.T) {
	items := []APOption{
		{Value: 60, Cost: 10},
		{Value: 100, Cost: 20},
		{Value: 120, Cost: 30},
	}
	res := SolveExact(items, 50, 500)
	// Classic: best is items 1+2 → 220.
	if math.Abs(res.Value-220) > 1e-9 {
		t.Fatalf("exact value = %v, want 220", res.Value)
	}
	if len(res.Picked) != 2 || res.Picked[0] != 1 || res.Picked[1] != 2 {
		t.Fatalf("picked = %v", res.Picked)
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	rng := sim.NewRNG(5)
	items := RandomInstance(rng, 20, 0.5)
	res := SolveGreedy(items, 45)
	if res.Cost > 45 {
		t.Fatalf("greedy overspent: %v", res.Cost)
	}
	for _, i := range res.Picked {
		if i < 0 || i >= len(items) {
			t.Fatalf("bad index %d", i)
		}
	}
}

func TestUtilityHeuristicDegradesWithNoise(t *testing.T) {
	// With a perfect utility signal the heuristic matches greedy; with a
	// very noisy one it does worse on average.
	rng := sim.NewRNG(7)
	ratio := func(noise float64) float64 {
		total, exactTotal := 0.0, 0.0
		for trial := 0; trial < 40; trial++ {
			items := RandomInstance(rng, 15, noise)
			budget := 50.0
			u := SolveByUtility(items, budget)
			e := SolveExact(items, budget, 500)
			total += u.Value
			exactTotal += e.Value
		}
		return total / exactTotal
	}
	clean := ratio(0)
	noisy := ratio(2.0)
	if clean < 0.85 {
		t.Fatalf("noise-free utility heuristic only reaches %.3f of exact", clean)
	}
	if noisy >= clean {
		t.Fatalf("heavy noise did not hurt the heuristic: %.3f >= %.3f", noisy, clean)
	}
}

func TestSolveExactValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("resolution 0 did not panic")
		}
	}()
	SolveExact(nil, 10, 0)
}

// Property: every solver's result fits the budget and picks valid,
// distinct indices.
func TestPropertySolversWellFormed(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%15) + 1
		rng := sim.NewRNG(seed)
		items := RandomInstance(rng, n, 0.4)
		budget := rng.Uniform(5, 80)
		for _, res := range []SelectionResult{
			SolveExact(items, budget, 300),
			SolveGreedy(items, budget),
			SolveByUtility(items, budget),
		} {
			if res.Cost > budget*1.02 {
				return false
			}
			seen := map[int]bool{}
			for _, i := range res.Picked {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
