// Package tracereport analyzes span JSONL exported by the obs layer (see
// internal/obs/span.go) and renders the reports behind cmd/spider-trace:
// the join-latency phase breakdown checked against the paper's Eq. 5-7
// prediction, per-channel and per-AP occupancy, outage attribution, and a
// Chrome trace-event export. Everything here is a pure function of the
// input spans, so reports are byte-stable and golden-testable.
package tracereport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"spider/internal/model"
	"spider/internal/obs"
	"spider/internal/sim"
)

// TraceSpan is one span line of a (possibly multi-run) JSONL export. Run
// is empty for single-run exports written without a label.
type TraceSpan struct {
	Run string `json:"run,omitempty"`
	obs.Span
}

// ReadSpans parses span JSONL. Lines are validated strictly — a malformed
// line is an error, not a skip — so artifact corruption cannot silently
// thin a report.
func ReadSpans(r io.Reader) ([]TraceSpan, error) {
	var out []TraceSpan
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s TraceSpan
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, fmt.Errorf("tracereport: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// joinTree is one Join root with its phase children, resolved within a
// single run's ID namespace.
type joinTree struct {
	root     TraceSpan
	children []TraceSpan
}

// Analysis is the indexed span set every report section reads from.
type Analysis struct {
	Spans []TraceSpan
	Runs  []string

	joins []joinTree
}

// Analyze indexes spans for reporting. Joins are resolved per run: span
// IDs are only unique within one run's recorder.
func Analyze(spans []TraceSpan) *Analysis {
	a := &Analysis{Spans: spans}
	runSet := map[string]bool{}
	type key struct {
		run string
		id  obs.SpanID
	}
	roots := map[key]int{}
	for _, s := range spans {
		if !runSet[s.Run] {
			runSet[s.Run] = true
			a.Runs = append(a.Runs, s.Run)
		}
		if s.Name == "join" {
			roots[key{s.Run, s.ID}] = len(a.joins)
			a.joins = append(a.joins, joinTree{root: s})
		}
	}
	sort.Strings(a.Runs)
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		if i, ok := roots[key{s.Run, s.Parent}]; ok {
			a.joins[i].children = append(a.joins[i].children, s)
		}
	}
	return a
}

// PhaseOrder is the canonical join-pipeline phase order for reporting.
var PhaseOrder = []string{"scan", "probe", "auth", "assoc", "dhcp-discover", "dhcp-request", "conn-test"}

// PhaseStat aggregates one pipeline phase across join attempts.
type PhaseStat struct {
	Name  string
	Count int
	Total sim.Time
	Max   sim.Time
}

// JoinStats is the roll-up of every Join root in the trace.
type JoinStats struct {
	Attempts  int
	Completes int
	// SumMismatches counts joins whose child-phase durations do not sum
	// exactly to the root duration — always 0 for well-formed traces.
	SumMismatches int
	// TotalLatency / CompleteLatency sum root durations over all /
	// completed attempts.
	TotalLatency    sim.Time
	CompleteLatency sim.Time
}

// Probability returns the measured join probability.
func (j JoinStats) Probability() float64 {
	if j.Attempts == 0 {
		return 0
	}
	return float64(j.Completes) / float64(j.Attempts)
}

// JoinBreakdown aggregates the phase stats and join roll-up.
func (a *Analysis) JoinBreakdown() (JoinStats, []PhaseStat) {
	var js JoinStats
	byName := map[string]*PhaseStat{}
	for _, jt := range a.joins {
		js.Attempts++
		js.TotalLatency += jt.root.Duration()
		if jt.root.Status == "complete" {
			js.Completes++
			js.CompleteLatency += jt.root.Duration()
		}
		var sum sim.Time
		for _, c := range jt.children {
			sum += c.Duration()
			ps := byName[c.Name]
			if ps == nil {
				ps = &PhaseStat{Name: c.Name}
				byName[c.Name] = ps
			}
			ps.Count++
			ps.Total += c.Duration()
			if c.Duration() > ps.Max {
				ps.Max = c.Duration()
			}
		}
		if sum != jt.root.Duration() {
			js.SumMismatches++
		}
	}
	var out []PhaseStat
	for _, name := range PhaseOrder {
		if ps := byName[name]; ps != nil {
			out = append(out, *ps)
			delete(byName, name)
		}
	}
	// Unknown phase names (future additions) report after the canon, in
	// name order.
	var rest []string
	for name := range byName {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	for _, name := range rest {
		out = append(out, *byName[name])
	}
	return js, out
}

// ChannelStat aggregates one channel: schedule occupancy plus the join
// outcomes of attempts targeting APs on it.
type ChannelStat struct {
	Channel   int
	Dwell     sim.Time
	Spans     int
	Fraction  float64 // share of total recorded occupancy
	Attempts  int
	Completes int
	// CompleteLatency sums completed join durations on this channel.
	CompleteLatency sim.Time
}

// Occupancy aggregates the per-channel schedule-occupancy spans and ties
// join outcomes to their channels.
func (a *Analysis) Occupancy() []ChannelStat {
	byCh := map[int]*ChannelStat{}
	get := func(ch int) *ChannelStat {
		cs := byCh[ch]
		if cs == nil {
			cs = &ChannelStat{Channel: ch}
			byCh[ch] = cs
		}
		return cs
	}
	var total sim.Time
	for _, s := range a.Spans {
		if s.Name != "occupancy" {
			continue
		}
		cs := get(s.Channel)
		cs.Dwell += s.Duration()
		cs.Spans++
		total += s.Duration()
	}
	for _, jt := range a.joins {
		cs := get(jt.root.Channel)
		cs.Attempts++
		if jt.root.Status == "complete" {
			cs.Completes++
			cs.CompleteLatency += jt.root.Duration()
		}
	}
	var out []ChannelStat
	for _, cs := range byCh {
		if total > 0 {
			cs.Fraction = float64(cs.Dwell) / float64(total)
		}
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}

// APStat aggregates link time per AP from the "link" spans.
type APStat struct {
	BSSID string
	Links int
	Total sim.Time
}

// APOccupancy aggregates established-link time per AP.
func (a *Analysis) APOccupancy() []APStat {
	byAP := map[string]*APStat{}
	for _, s := range a.Spans {
		if s.Name != "link" {
			continue
		}
		st := byAP[s.BSSID]
		if st == nil {
			st = &APStat{BSSID: s.BSSID}
			byAP[s.BSSID] = st
		}
		st.Links++
		st.Total += s.Duration()
	}
	var out []APStat
	for _, st := range byAP {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BSSID < out[j].BSSID })
	return out
}

// OutageStat aggregates outage spans per attributed cause.
type OutageStat struct {
	Cause string
	Count int
	Total sim.Time
	Max   sim.Time
}

// OutageAttribution aggregates the cause-attributed outage spans.
func (a *Analysis) OutageAttribution() []OutageStat {
	byCause := map[string]*OutageStat{}
	for _, s := range a.Spans {
		if s.Name != "outage" {
			continue
		}
		cause := s.Status
		if cause == "" {
			cause = "unattributed"
		}
		st := byCause[cause]
		if st == nil {
			st = &OutageStat{Cause: cause}
			byCause[cause] = st
		}
		st.Count++
		st.Total += s.Duration()
		if s.Duration() > st.Max {
			st.Max = s.Duration()
		}
	}
	var out []OutageStat
	for _, st := range byCause {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// ModelRow compares one channel's measured join behaviour with the Eq. 5-7
// prediction at the channel's measured schedule fraction.
type ModelRow struct {
	Channel       int
	Fraction      float64
	Attempts      int
	MeasuredProb  float64
	PredictedProb float64
	// MeasuredLatency is the mean completed-join latency; PredictedUnjoined
	// is E[X_i] = expected time unjoined within the residence window — the
	// model's latency-shaped quantity (Eq. 9 uses its complement).
	MeasuredLatency   sim.Time
	PredictedUnjoined sim.Time
}

// ModelComparison evaluates the paper's join model per channel at the
// measured channel fractions, with t the modeled time in AP range.
func (a *Analysis) ModelComparison(p model.Params, t sim.Time) []ModelRow {
	var out []ModelRow
	for _, cs := range a.Occupancy() {
		row := ModelRow{
			Channel:       cs.Channel,
			Fraction:      cs.Fraction,
			Attempts:      cs.Attempts,
			PredictedProb: p.JoinProbability(cs.Fraction, t),
			PredictedUnjoined: sim.Time(
				p.ExpectedJoinFraction(cs.Fraction, t) * float64(t)),
		}
		if cs.Attempts > 0 {
			row.MeasuredProb = float64(cs.Completes) / float64(cs.Attempts)
		}
		if cs.Completes > 0 {
			row.MeasuredLatency = cs.CompleteLatency / sim.Time(cs.Completes)
		}
		out = append(out, row)
	}
	return out
}

// ms renders a sim duration as fixed-point milliseconds.
func ms(t sim.Time) string { return fmt.Sprintf("%.3f", float64(t)/1e6) }

// table renders aligned text columns, the same shape experiments artifacts
// use, so reports diff cleanly in golden tests.
func table(b *strings.Builder, title string, cols []string, rows [][]string) {
	fmt.Fprintf(b, "== %s ==\n", title)
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range cols {
		fmt.Fprintf(b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
}

// Report renders the full text report: join breakdown, model comparison,
// occupancy, and outage attribution.
func (a *Analysis) Report(p model.Params, t sim.Time) string {
	var b strings.Builder

	js, phases := a.JoinBreakdown()
	fmt.Fprintf(&b, "spans: %d  runs: %d\n", len(a.Spans), len(a.Runs))
	fmt.Fprintf(&b, "join attempts: %d  completed: %d  measured join probability: %.3f\n",
		js.Attempts, js.Completes, js.Probability())
	if js.Completes > 0 {
		fmt.Fprintf(&b, "mean completed join latency: %s ms\n", ms(js.CompleteLatency/sim.Time(js.Completes)))
	}
	fmt.Fprintf(&b, "phase-sum mismatches: %d/%d\n\n", js.SumMismatches, js.Attempts)

	var rows [][]string
	for _, ps := range phases {
		mean := sim.Time(0)
		if ps.Count > 0 {
			mean = ps.Total / sim.Time(ps.Count)
		}
		share := 0.0
		if js.TotalLatency > 0 {
			share = float64(ps.Total) / float64(js.TotalLatency)
		}
		rows = append(rows, []string{
			ps.Name, fmt.Sprintf("%d", ps.Count), ms(ps.Total), ms(mean), ms(ps.Max),
			fmt.Sprintf("%.1f%%", 100*share),
		})
	}
	table(&b, "join-latency phase breakdown",
		[]string{"phase", "spans", "total ms", "mean ms", "max ms", "share"}, rows)

	rows = rows[:0]
	for _, r := range a.ModelComparison(p, t) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Channel),
			fmt.Sprintf("%.3f", r.Fraction),
			fmt.Sprintf("%d", r.Attempts),
			fmt.Sprintf("%.3f", r.MeasuredProb),
			fmt.Sprintf("%.3f", r.PredictedProb),
			ms(r.MeasuredLatency),
			ms(r.PredictedUnjoined),
		})
	}
	table(&b, fmt.Sprintf("measured vs Eq. 5-7 prediction (t=%s ms)", ms(t)),
		[]string{"channel", "f_i", "attempts", "p measured", "p predicted",
			"mean join ms", "E[unjoined] ms"}, rows)

	rows = rows[:0]
	for _, cs := range a.Occupancy() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", cs.Channel), fmt.Sprintf("%d", cs.Spans),
			ms(cs.Dwell), fmt.Sprintf("%.3f", cs.Fraction),
			fmt.Sprintf("%d", cs.Attempts), fmt.Sprintf("%d", cs.Completes),
		})
	}
	table(&b, "per-channel schedule occupancy",
		[]string{"channel", "dwells", "dwell ms", "fraction", "joins", "completed"}, rows)

	rows = rows[:0]
	for _, st := range a.APOccupancy() {
		rows = append(rows, []string{st.BSSID, fmt.Sprintf("%d", st.Links), ms(st.Total)})
	}
	table(&b, "per-AP link occupancy",
		[]string{"bssid", "links", "link ms"}, rows)

	rows = rows[:0]
	for _, st := range a.OutageAttribution() {
		rows = append(rows, []string{
			st.Cause, fmt.Sprintf("%d", st.Count), ms(st.Total), ms(st.Max),
		})
	}
	table(&b, "outage attribution",
		[]string{"cause", "outages", "total ms", "max ms"}, rows)

	return b.String()
}
