package tracereport

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spider/internal/core"
	"spider/internal/experiments"
	"spider/internal/model"
	"spider/internal/obs"
	"spider/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chaosSpans runs the fixed-seed chaos scenario — the span-densest
// workload: joins, occupancy, links, chaos-attributed outages, fault
// spans — and round-trips the recorder's spans through the JSONL
// writer/reader pair, so the reader is exercised on real output.
func chaosSpans(t *testing.T) []TraceSpan {
	t.Helper()
	cfg := experiments.ChaosScenario(experiments.Options{Seed: 1, Scale: 0.05})
	rec := obs.NewRecorder()
	cfg.Obs = rec
	core.Run(cfg)

	var buf bytes.Buffer
	if err := obs.WriteSpansJSONL(&buf, "chaos#0", rec.Spans()); err != nil {
		t.Fatalf("WriteSpansJSONL: %v", err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	return spans
}

// TestReportGolden pins the full rendered report for a fixed-seed run.
// Refresh with: go test ./internal/tracereport -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	spans := chaosSpans(t)
	report := Analyze(spans).Report(model.PaperParams(sim.Time(time.Second)), sim.Time(10*time.Second))

	golden := filepath.Join("testdata", "chaos_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if report != string(want) {
		t.Errorf("report drifted from golden (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", report, want)
	}
}

// TestPhaseSumExactness asserts the tentpole accounting invariant on real
// traces: each join root's child-phase durations sum exactly — in integer
// nanoseconds, no tolerance — to the root's duration.
func TestPhaseSumExactness(t *testing.T) {
	spans := chaosSpans(t)
	js, phases := Analyze(spans).JoinBreakdown()
	if js.Attempts == 0 {
		t.Fatal("no join attempts in trace")
	}
	if js.SumMismatches != 0 {
		t.Errorf("phase durations do not sum to join root duration in %d/%d joins", js.SumMismatches, js.Attempts)
	}
	var phaseTotal, rootTotal sim.Time
	for _, ps := range phases {
		phaseTotal += ps.Total
	}
	rootTotal = js.TotalLatency
	if phaseTotal != rootTotal {
		t.Errorf("aggregate phase time %d != aggregate join time %d", phaseTotal, rootTotal)
	}
}

// TestReadSpansRejectsGarbage pins strict parsing: a corrupt line is an
// error, not a silent skip.
func TestReadSpansRejectsGarbage(t *testing.T) {
	in := bytes.NewBufferString(`{"id":1,"client":0,"name":"join","start_ns":0,"end_ns":5}` + "\nnot json\n")
	if _, err := ReadSpans(in); err == nil {
		t.Fatal("ReadSpans accepted a malformed line")
	}
}

// TestAnalyzeResolvesParentsPerRun checks that identical span IDs in
// different runs do not cross-link: each run is its own ID namespace.
func TestAnalyzeResolvesParentsPerRun(t *testing.T) {
	mk := func(run string, id, parent obs.SpanID, name string, start, end sim.Time) TraceSpan {
		return TraceSpan{Run: run, Span: obs.Span{ID: id, Parent: parent, Name: name, Start: start, End: end, Status: "complete"}}
	}
	spans := []TraceSpan{
		mk("a", obs.MakeSpanID(0, 1), 0, "join", 0, 10),
		mk("a", obs.MakeSpanID(0, 2), obs.MakeSpanID(0, 1), "scan", 0, 10),
		mk("b", obs.MakeSpanID(0, 1), 0, "join", 0, 20),
		mk("b", obs.MakeSpanID(0, 2), obs.MakeSpanID(0, 1), "scan", 0, 20),
	}
	js, phases := Analyze(spans).JoinBreakdown()
	if js.Attempts != 2 || js.Completes != 2 {
		t.Fatalf("attempts=%d completes=%d, want 2/2", js.Attempts, js.Completes)
	}
	if js.SumMismatches != 0 {
		t.Errorf("cross-run parent resolution broke phase sums: %d mismatches", js.SumMismatches)
	}
	if len(phases) != 1 || phases[0].Name != "scan" || phases[0].Count != 2 || phases[0].Total != 30 {
		t.Errorf("unexpected phase stats: %+v", phases)
	}
}

// TestChromeExport sanity-checks the trace-event output: every span lands
// as one complete event under its run's pid, and the export is
// byte-stable across calls.
func TestChromeExport(t *testing.T) {
	spans := chaosSpans(t)
	var a, b bytes.Buffer
	if err := WriteChrome(&a, spans); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := WriteChrome(&b, spans); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("chrome export not byte-stable")
	}
	if n := bytes.Count(a.Bytes(), []byte(`"ph":"X"`)); n != len(spans) {
		t.Errorf("chrome export has %d complete events, want %d", n, len(spans))
	}
}
