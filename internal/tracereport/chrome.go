package tracereport

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: complete ("X") events in the JSON object
// format, loadable in Perfetto / chrome://tracing. Each run maps to one
// pid, each client to one tid, so multi-run exports land as separate
// process groups.

type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Args map[string]string `json:"args"`
}

type chromeFile struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// WriteChrome exports spans as a Chrome trace. Deterministic: pids follow
// sorted run-label order and events follow the canonical span order of
// the input.
func WriteChrome(w io.Writer, spans []TraceSpan) error {
	runs := map[string]int{}
	var labels []string
	for _, s := range spans {
		if _, ok := runs[s.Run]; !ok {
			runs[s.Run] = 0
			labels = append(labels, s.Run)
		}
	}
	sort.Strings(labels)
	for i, l := range labels {
		runs[l] = i + 1
	}

	var out chromeFile
	add := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, raw)
		return nil
	}
	for _, l := range labels {
		name := l
		if name == "" {
			name = "spider"
		}
		if err := add(chromeMeta{
			Name: "process_name", Ph: "M", Pid: runs[l],
			Args: map[string]string{"name": name},
		}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		args := map[string]string{}
		if s.BSSID != "" {
			args["bssid"] = s.BSSID
		}
		if s.Channel != 0 {
			args["channel"] = fmt.Sprintf("%d", s.Channel)
		}
		if s.Status != "" {
			args["status"] = s.Status
		}
		if len(args) == 0 {
			args = nil
		}
		if err := add(chromeEvent{
			Name: s.Name,
			Cat:  "spider",
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Duration()) / 1e3,
			Pid:  runs[s.Run],
			// Client -1 is the world log; tid 0 keeps it first in the UI.
			Tid:  s.Span.Client + 1,
			Args: args,
		}); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
