package tracereport

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"spider/internal/sim"
	"spider/internal/telemetry"
)

// rollupFixture runs a small aggregator by hand — two windows of joins,
// RTTs, and goodput — and exports it as JSONL.
func rollupFixture(t *testing.T, run string) []byte {
	t.Helper()
	a := telemetry.New(telemetry.Config{
		Seed:        7,
		KeepClients: 1,
		SLOs:        telemetry.DefaultSLOs(),
	})
	sec := sim.Time(time.Second)
	for c := 0; c < 3; c++ {
		a.AddGoodput(c, sim.Time(c+1)*100e6, 1000*(c+1))
		a.AddRTT(c, sim.Time(c+1)*150e6, sim.Time(20+c)*1e6)
	}
	a.Tick(sec)
	a.AddGoodput(0, sec+200e6, 5000)
	a.AddRTT(1, sec+300e6, 45*1e6)
	a.Tick(2 * sec)
	a.Finish(2 * sec)

	var b bytes.Buffer
	if err := a.WriteJSONL(&b, run); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestReadRollupsRoundTrip(t *testing.T) {
	raw := rollupFixture(t, "fixture")
	rf, err := ReadRollups(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.Runs) != 1 || rf.Runs[0] != "fixture" {
		t.Fatalf("runs = %v", rf.Runs)
	}
	wins := rf.Windows["fixture"]
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	if wins[0].GoodputBytes != 1000+2000+3000 {
		t.Fatalf("window 0 goodput %d", wins[0].GoodputBytes)
	}
	if wins[1].GoodputBytes != 5000 {
		t.Fatalf("window 1 goodput %d", wins[1].GoodputBytes)
	}
	if _, ok := rf.Flight["fixture"]; !ok {
		t.Fatal("flight counters line missing")
	}
}

func TestReadRollupsRejectsCorruption(t *testing.T) {
	if _, err := ReadRollups(strings.NewReader("{\"run\":\"a\",\"window\"")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// A syntactically valid line that is neither window nor flight is
	// corruption too, not a silent no-op.
	if _, err := ReadRollups(strings.NewReader(`{"run":"a"}`)); err == nil {
		t.Fatal("empty rollup line accepted")
	}
}

func TestRollupReportRenders(t *testing.T) {
	raw := rollupFixture(t, "fixture")
	rf, err := ReadRollups(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rep := rf.RollupReport("fixture")
	for _, want := range []string{
		"run: fixture  windows: 2",
		"== per-window rollups ==",
		"== run totals ==",
		"goodput: 11000 B",
		"== SLO violations ==",
		"== flight recorder ==",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// The merged RTT quantile must sit inside the observed range
	// (20..45 ms) after sketch rounding.
	var p50 float64
	for _, line := range strings.Split(rep, "\n") {
		if rest, ok := strings.CutPrefix(line, "rtt p50/p95 ms:"); ok {
			v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			p50 = v
		}
	}
	if p50 < 15 || p50 > 55 {
		t.Fatalf("merged rtt p50 %.1f ms outside plausible range", p50)
	}

	// Determinism: the report is a pure function of the bytes.
	rf2, err := ReadRollups(bytes.NewReader(rollupFixture(t, "fixture")))
	if err != nil {
		t.Fatal(err)
	}
	if rep2 := rf2.RollupReport("fixture"); rep2 != rep {
		t.Fatal("report not byte-stable across identical inputs")
	}
}
