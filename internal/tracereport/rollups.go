package tracereport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"spider/internal/telemetry"
)

// RollupFile is a parsed rollup JSONL export: the window series and the
// flight-recorder accounting, grouped per run label.
type RollupFile struct {
	// Runs holds the run labels in sorted order ("" for unlabeled).
	Runs []string
	// Windows maps run label to its window series in file order.
	Windows map[string][]telemetry.Window
	// Flight maps run label to its flight accounting (zero when the
	// export carried none).
	Flight map[string]telemetry.FlightCounters
}

// ReadRollups parses rollup JSONL (telemetry.WriteRollupsJSONL output).
// Lines are validated strictly — a malformed line is an error, not a
// skip — matching ReadSpans' corruption stance.
func ReadRollups(r io.Reader) (*RollupFile, error) {
	rf := &RollupFile{
		Windows: make(map[string][]telemetry.Window),
		Flight:  make(map[string]telemetry.FlightCounters),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	seen := make(map[string]bool)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rl telemetry.RollupLine
		if err := json.Unmarshal([]byte(text), &rl); err != nil {
			return nil, fmt.Errorf("tracereport: rollups line %d: %w", line, err)
		}
		if rl.Window == nil && rl.Flight == nil {
			return nil, fmt.Errorf("tracereport: rollups line %d: neither window nor flight", line)
		}
		if !seen[rl.Run] {
			seen[rl.Run] = true
			rf.Runs = append(rf.Runs, rl.Run)
		}
		if rl.Window != nil {
			rf.Windows[rl.Run] = append(rf.Windows[rl.Run], *rl.Window)
		}
		if rl.Flight != nil {
			rf.Flight[rl.Run] = *rl.Flight
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(rf.Runs)
	return rf, nil
}

// RollupReport renders the per-window breakdown of one run (empty label
// when the export is unlabeled): a window table, run totals with
// whole-run quantiles re-derived by merging the windows' sparse
// histograms, SLO violation spans, and the flight accounting. Pure
// function of the input — byte-stable and golden-testable.
func (rf *RollupFile) RollupReport(run string) string {
	var b strings.Builder
	wins := rf.Windows[run]
	label := run
	if label == "" {
		label = "(unlabeled)"
	}
	fmt.Fprintf(&b, "run: %s  windows: %d\n\n", label, len(wins))
	if len(wins) == 0 {
		return b.String()
	}

	var rows [][]string
	for i := range wins {
		w := &wins[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", w.Index),
			fmt.Sprintf("%.1f", float64(w.StartNS)/1e9),
			fmt.Sprintf("%.1f", float64(w.EndNS)/1e9),
			fmt.Sprintf("%d", w.Clients),
			fmt.Sprintf("%d", w.ActiveClients),
			fmt.Sprintf("%d", w.GoodputBytes),
			fmt.Sprintf("%.3f", w.Jain),
			fmt.Sprintf("%d/%d", w.JoinOKs, w.JoinFails),
			fmt.Sprintf("%.1f", w.JoinP95MS),
			fmt.Sprintf("%.1f", w.RTTP50MS),
			fmt.Sprintf("%.1f", float64(w.OutageNS)/1e6),
			strings.Join(w.Violations, ";"),
		})
	}
	table(&b, "per-window rollups",
		[]string{"w", "start s", "end s", "clients", "active", "goodput B", "jain",
			"join ok/fail", "p95 ms", "rtt p50", "outage ms", "violations"}, rows)

	// Run totals; tails re-derived by merging every window's sparse
	// histogram — the whole point of exporting mergeable sketches.
	var goodput, joinOKs, joinFails, outageNS int64
	var joinHist, rttHist [][2]int64
	violWindows := make(map[string]int64)
	for i := range wins {
		w := &wins[i]
		goodput += w.GoodputBytes
		joinOKs += w.JoinOKs
		joinFails += w.JoinFails
		outageNS += w.OutageNS
		joinHist = mergeSparse(joinHist, w.JoinHist)
		rttHist = mergeSparse(rttHist, w.RTTHist)
		for _, v := range w.Violations {
			violWindows[v]++
		}
	}
	dur := float64(wins[len(wins)-1].EndNS-wins[0].StartNS) / 1e9
	fmt.Fprintf(&b, "== run totals ==\n")
	fmt.Fprintf(&b, "span: %.1f s  goodput: %d B  joins: %d ok / %d fail  outage: %.1f ms\n",
		dur, goodput, joinOKs, joinFails, float64(outageNS)/1e6)
	fmt.Fprintf(&b, "join latency p50/p95/p99 ms: %.1f / %.1f / %.1f\n",
		telemetry.QuantileFromSparse(joinHist, 0.50)/1e6,
		telemetry.QuantileFromSparse(joinHist, 0.95)/1e6,
		telemetry.QuantileFromSparse(joinHist, 0.99)/1e6)
	fmt.Fprintf(&b, "rtt p50/p95 ms: %.1f / %.1f\n\n",
		telemetry.QuantileFromSparse(rttHist, 0.50)/1e6,
		telemetry.QuantileFromSparse(rttHist, 0.95)/1e6)

	rows = rows[:0]
	rules := make([]string, 0, len(violWindows))
	for r := range violWindows {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		rows = append(rows, []string{r, fmt.Sprintf("%d", violWindows[r])})
	}
	table(&b, "SLO violations", []string{"rule", "windows in violation"}, rows)

	if fc, ok := rf.Flight[run]; ok {
		fmt.Fprintf(&b, "== flight recorder ==\n")
		fmt.Fprintf(&b, "events: %d kept / %d admitted (%d sampled out, %d evicted), cap %d\n",
			fc.EventsKept, fc.EventsAdmitted, fc.EventsSampledOut, fc.EventsEvicted, fc.EventCap)
		fmt.Fprintf(&b, "spans:  %d kept / %d admitted (%d sampled out, %d evicted), cap %d\n",
			fc.SpansKept, fc.SpansAdmitted, fc.SpansSampledOut, fc.SpansEvicted, fc.SpanCap)
		fmt.Fprintf(&b, "clients sampled: %d\n", fc.ClientsSampled)
	}
	return b.String()
}

// mergeSparse adds two sparse histograms (ascending bucket order in,
// ascending out).
func mergeSparse(a, b [][2]int64) [][2]int64 {
	if len(a) == 0 {
		return append([][2]int64(nil), b...)
	}
	m := make(map[int64]int64, len(a)+len(b))
	for _, p := range a {
		m[p[0]] += p[1]
	}
	for _, p := range b {
		m[p[0]] += p[1]
	}
	out := make([][2]int64, 0, len(m))
	for k, v := range m {
		out = append(out, [2]int64{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
