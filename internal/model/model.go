// Package model implements the paper's analytical join model (Section 2.1,
// Equations 5-7): the probability that a mobile node associates and obtains
// a DHCP lease from an AP on channel i as a function of the fraction of
// time f_i scheduled on that channel, the scheduling period D, the switch
// overhead w, the request spacing c, the AP response time β ∈ [βmin, βmax],
// the message loss rate h, and the time t spent in range.
//
// A Monte-Carlo simulator with identical assumptions validates the closed
// form (the paper's Figure 2).
package model

import (
	"math"

	"spider/internal/sim"
)

// Params are the model inputs, named as in the paper.
type Params struct {
	// D is the scheduling period.
	D sim.Time
	// W is the channel-switch overhead w.
	W sim.Time
	// C is the spacing between consecutive join requests.
	C sim.Time
	// BetaMin and BetaMax bound the uniform AP join-response time.
	BetaMin sim.Time
	BetaMax sim.Time
	// Loss is the per-message loss probability h.
	Loss float64
}

// PaperParams returns the parameter set used in the paper's Figure 2:
// D=500 ms, w=7 ms, c=100 ms, βmin=500 ms, h=0.10 (βmax is a figure
// parameter).
func PaperParams(betaMax sim.Time) Params {
	return Params{
		D:       500 * 1000 * 1000,
		W:       7 * 1000 * 1000,
		C:       100 * 1000 * 1000,
		BetaMin: 500 * 1000 * 1000,
		BetaMax: betaMax,
		Loss:    0.10,
	}
}

func (p Params) validate() {
	if p.D <= 0 || p.C <= 0 || p.BetaMax < p.BetaMin || p.Loss < 0 || p.Loss > 1 {
		panic("model: invalid parameters")
	}
}

// segments returns the number of join requests per round, ⌈(D·fi − w)/c⌉.
func (p Params) segments(fi float64) int {
	window := float64(p.D)*fi - float64(p.W)
	if window <= 0 {
		return 0
	}
	return int(math.Ceil(window / float64(p.C)))
}

// qSegment is Equation 5: the probability that the request sent in segment
// k of round m is answered within the on-channel window of round n, on a
// lossless channel.
func (p Params) qSegment(m, n, k int, fi float64) float64 {
	alphaMin := float64(k)*float64(p.C) + float64(p.BetaMin)
	alphaMax := float64(k)*float64(p.C) + float64(p.BetaMax)
	delta := float64(n-m) * float64(p.D)
	deltaMin := delta + float64(p.C) - float64(p.W)
	deltaMax := delta + fi*float64(p.D) + float64(p.C) - float64(p.W)
	if deltaMin > alphaMax || deltaMax < alphaMin {
		return 0
	}
	if alphaMax == alphaMin {
		// Degenerate β distribution: success iff the point falls inside.
		if alphaMin >= deltaMin && alphaMin <= deltaMax {
			return 1
		}
		return 0
	}
	return (math.Min(alphaMax, deltaMax) - math.Max(alphaMin, deltaMin)) / (alphaMax - alphaMin)
}

// qRoundGap is Equation 6 rewritten in terms of Δ = n − m: the probability
// that no request made in a round leads to a successful join Δ rounds
// later, on a channel with loss h.
func (p Params) qRoundGap(delta int, fi float64) float64 {
	k := p.segments(fi)
	surv := (1 - p.Loss) * (1 - p.Loss)
	q := 1.0
	for i := 1; i <= k; i++ {
		q *= 1 - p.qSegment(0, delta, i, fi)*surv
	}
	return q
}

// JoinProbability is Equation 7: the probability of obtaining at least one
// successful join within the first t seconds in range, given the fraction
// f_i of each period spent on the AP's channel.
func (p Params) JoinProbability(fi float64, t sim.Time) float64 {
	p.validate()
	if fi <= 0 {
		return 0
	}
	if fi > 1 {
		fi = 1
	}
	rounds := int(t / p.D)
	if rounds <= 0 {
		return 0
	}
	// Π_{m=1..M} Π_{n=m..M} q(m,n) = Π_{Δ=0..M-1} qΔ^(M−Δ), since q
	// depends only on the round gap.
	logNone := 0.0
	for delta := 0; delta < rounds; delta++ {
		q := p.qRoundGap(delta, fi)
		if q <= 0 {
			return 1
		}
		logNone += float64(rounds-delta) * math.Log(q)
	}
	return 1 - math.Exp(logNone)
}

// ExpectedJoinFraction returns E[X_i]/T: the expected fraction of the
// residence time T spent not yet joined, which the optimization framework's
// constraint (Eq. 9) uses as (1 − E[X_i]). Evaluated per scheduling round.
func (p Params) ExpectedJoinFraction(fi float64, T sim.Time) float64 {
	p.validate()
	rounds := int(T / p.D)
	if rounds <= 0 {
		return 1
	}
	if fi <= 0 {
		return 1
	}
	// Incrementally accumulate log Π over round gaps as t grows.
	qs := make([]float64, rounds)
	for delta := 0; delta < rounds; delta++ {
		qs[delta] = p.qRoundGap(delta, fi)
	}
	notJoined := 0.0
	logNone := 0.0
	joinedAlready := false
	for m := 1; m <= rounds; m++ {
		if !joinedAlready {
			// Adding round m multiplies by Π_{Δ} q(Δ) for Δ = 0..m-1
			// applied to the new pairs (i, m), i ≤ m.
			for delta := 0; delta < m; delta++ {
				if qs[delta] <= 0 {
					joinedAlready = true
					break
				}
				logNone += math.Log(qs[delta])
			}
		}
		pJoin := 1.0
		if !joinedAlready {
			pJoin = 1 - math.Exp(logNone)
		}
		notJoined += 1 - pJoin
	}
	return notJoined / float64(rounds)
}

// CorrelatedJoinFraction is the pessimistic counterpart of
// ExpectedJoinFraction used by the throughput optimizer. Equations 5-7
// redraw β independently for every retransmission, which is optimistic: a
// slow AP answers *every* request slowly. Treating β as a property of the
// visit, the client — on-channel a fraction f_i of the time — completes
// the join after roughly β/f_i. This returns E[min(β/f_i, T)]/T, the
// expected fraction of the residence time spent unjoined. The paper itself
// notes its model "is optimistic: multi-channel switching performs better
// in the model than can be expected in a real scenario"; this variant is
// what lets the optimizer reproduce Figure 4's dividing speed.
func (p Params) CorrelatedJoinFraction(fi float64, T sim.Time) float64 {
	p.validate()
	if T <= 0 {
		return 1
	}
	if fi <= 0 {
		return 1
	}
	if fi > 1 {
		fi = 1
	}
	a := float64(p.BetaMin)
	b := float64(p.BetaMax)
	t := float64(T)
	g := fi * t // β beyond g means the stretched join exceeds T
	if b == a {
		if a >= g {
			return 1
		}
		return (a / fi) / t
	}
	if g <= a {
		return 1
	}
	hi := math.Min(b, g)
	// ∫_a^hi (x/fi) dx = (hi² − a²) / (2 fi)
	e := (hi*hi - a*a) / (2 * fi)
	e += (b - hi) * t // joins that never complete within T cost all of T
	e /= b - a
	return math.Min(1, e/t)
}

// SimulateJoinProbability estimates p(f_i, t) by Monte-Carlo under the
// model's exact assumptions; used to validate the closed form (Figure 2).
func (p Params) SimulateJoinProbability(rng *sim.RNG, fi float64, t sim.Time, trials int) float64 {
	p.validate()
	if trials <= 0 {
		panic("model: SimulateJoinProbability needs trials > 0")
	}
	rounds := int(t / p.D)
	k := p.segments(fi)
	if rounds <= 0 || k <= 0 {
		return 0
	}
	success := 0
trial:
	for i := 0; i < trials; i++ {
		for m := 1; m <= rounds; m++ {
			for seg := 1; seg <= k; seg++ {
				// Request and response must each survive loss h.
				if rng.Bool(p.Loss) || rng.Bool(p.Loss) {
					continue
				}
				beta := rng.UniformDuration(p.BetaMin, p.BetaMax+1)
				// Arrival offset from the start of round m, per Eq. 1-2.
				arrive := float64(p.W) + float64(seg-1)*float64(p.C) + float64(beta)
				for n := m; n <= rounds; n++ {
					lo := float64(n-m) * float64(p.D)
					hi := lo + fi*float64(p.D)
					if arrive >= lo && arrive <= hi {
						success++
						continue trial
					}
				}
			}
		}
	}
	return float64(success) / float64(trials)
}
