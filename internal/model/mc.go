package model

import (
	"context"
	"fmt"

	"spider/internal/fleet"
	"spider/internal/sim"
)

// CurvePoint is one Monte-Carlo validation sample: the closed form and the
// simulated estimate at a channel fraction.
type CurvePoint struct {
	Fi    float64
	Model float64
	Sim   float64
}

// SimulateJoinCurve validates the closed form across a grid of channel
// fractions by Monte-Carlo, sharding one job per point across the fleet
// group when one is provided (inline otherwise). Unlike threading a single
// RNG through the grid, each point derives an independent stream from the
// seed and its own fraction, so an estimate depends only on (seed, fi,
// t, trials) — never on grid size, neighbouring points, or execution
// order. Results are identical for any worker count.
func (p Params) SimulateJoinCurve(g *fleet.Group, seed int64, fis []float64, t sim.Time, trials int) []CurvePoint {
	p.validate()
	pointRNG := func(fi float64) *sim.RNG {
		return sim.NewRNG(seed).Stream(fmt.Sprintf("mc|fi=%.6g|t=%d|trials=%d", fi, int64(t), trials))
	}
	out := make([]CurvePoint, len(fis))
	if g == nil {
		for i, fi := range fis {
			out[i] = CurvePoint{Fi: fi, Model: p.JoinProbability(fi, t), Sim: p.SimulateJoinProbability(pointRNG(fi), fi, t, trials)}
		}
		return out
	}
	jobs := make([]fleet.Job, len(fis))
	for i, fi := range fis {
		fi := fi
		jobs[i] = fleet.Job{
			ID: fmt.Sprintf("mc|fi=%.6g", fi),
			Run: func() (any, error) {
				return CurvePoint{Fi: fi, Model: p.JoinProbability(fi, t), Sim: p.SimulateJoinProbability(pointRNG(fi), fi, t, trials)}, nil
			},
		}
	}
	results, err := g.Map(context.Background(), jobs)
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		out[i] = r.Value.(CurvePoint)
	}
	return out
}
