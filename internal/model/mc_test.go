package model

import (
	"math"
	"reflect"
	"testing"
	"time"

	"spider/internal/fleet"
)

// TestSimulateJoinCurveMatchesModel checks the Monte-Carlo estimate tracks
// the closed form across the grid.
func TestSimulateJoinCurveMatchesModel(t *testing.T) {
	p := params5s()
	fis := []float64{0.1, 0.25, 0.5, 0.75, 1}
	pts := p.SimulateJoinCurve(nil, 7, fis, 4*time.Second, 4000)
	if len(pts) != len(fis) {
		t.Fatalf("got %d points, want %d", len(pts), len(fis))
	}
	for _, pt := range pts {
		if math.Abs(pt.Sim-pt.Model) > 0.03 {
			t.Errorf("fi=%.2f: sim %.4f vs model %.4f", pt.Fi, pt.Sim, pt.Model)
		}
	}
}

// TestSimulateJoinCurveWorkerInvariant: inline, one-worker, and
// eight-worker runs must produce identical curves — each grid point draws
// from its own derived RNG stream, so execution order cannot matter.
func TestSimulateJoinCurveWorkerInvariant(t *testing.T) {
	p := params5s()
	fis := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	inline := p.SimulateJoinCurve(nil, 11, fis, 4*time.Second, 500)
	for _, workers := range []int{1, 8} {
		pool := fleet.New(fleet.Config{Workers: workers})
		got := p.SimulateJoinCurve(pool.Group("mc"), 11, fis, 4*time.Second, 500)
		pool.Close()
		if !reflect.DeepEqual(got, inline) {
			t.Errorf("workers=%d curve differs from inline:\n%v\n%v", workers, got, inline)
		}
	}
}

// TestSimulateJoinCurveGridInvariant: an estimate at a fraction must not
// depend on which other fractions share the grid.
func TestSimulateJoinCurveGridInvariant(t *testing.T) {
	p := params5s()
	full := p.SimulateJoinCurve(nil, 3, []float64{0.2, 0.4, 0.6, 0.8}, 4*time.Second, 300)
	solo := p.SimulateJoinCurve(nil, 3, []float64{0.6}, 4*time.Second, 300)
	if full[2] != solo[0] {
		t.Errorf("fi=0.6 estimate depends on grid: %v vs %v", full[2], solo[0])
	}
}
