package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spider/internal/sim"
)

func params5s() Params { return PaperParams(5 * time.Second) }

func TestJoinProbabilityBounds(t *testing.T) {
	p := params5s()
	for _, fi := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		v := p.JoinProbability(fi, 4*time.Second)
		if v < 0 || v > 1 {
			t.Fatalf("p(%v) = %v out of [0,1]", fi, v)
		}
	}
	if p.JoinProbability(0, 4*time.Second) != 0 {
		t.Fatal("p(0) != 0")
	}
	if p.JoinProbability(0.5, 0) != 0 {
		t.Fatal("p with t=0 != 0")
	}
}

func TestJoinProbabilityMonotoneInFraction(t *testing.T) {
	p := params5s()
	prev := -1.0
	for fi := 0.05; fi <= 1.0; fi += 0.05 {
		v := p.JoinProbability(fi, 4*time.Second)
		if v < prev-1e-9 {
			t.Fatalf("p not monotone at fi=%.2f: %v < %v", fi, v, prev)
		}
		prev = v
	}
}

func TestJoinProbabilityMonotoneInTime(t *testing.T) {
	p := params5s()
	prev := -1.0
	for secs := 1; secs <= 20; secs++ {
		v := p.JoinProbability(0.3, time.Duration(secs)*time.Second)
		if v < prev-1e-9 {
			t.Fatalf("p not monotone in t at %ds", secs)
		}
		prev = v
	}
}

func TestShorterBetaMaxHelps(t *testing.T) {
	// Figure 3: with a fixed fraction, shorter maximum join times give
	// higher success probability.
	for _, fi := range []float64{0.10, 0.25, 0.40, 0.50} {
		p5 := PaperParams(5*time.Second).JoinProbability(fi, 4*time.Second)
		p10 := PaperParams(10*time.Second).JoinProbability(fi, 4*time.Second)
		if p10 > p5+1e-9 {
			t.Fatalf("fi=%.2f: βmax=10s gives %v > βmax=5s gives %v", fi, p10, p5)
		}
	}
}

func TestNearFullTimeNearCertainJoin(t *testing.T) {
	// The paper: the node must spend nearly 100% of its time on the
	// channel for an assured join (with βmax=5s, t=4s keeps some mass out
	// of range, so compare at a longer t).
	p := params5s()
	if v := p.JoinProbability(1.0, 20*time.Second); v < 0.99 {
		t.Fatalf("p(1.0, 20s) = %v, want ≈1", v)
	}
	if v := p.JoinProbability(0.1, 4*time.Second); v > 0.6 {
		t.Fatalf("p(0.1, 4s) = %v, unexpectedly high", v)
	}
}

func TestPaperFigure2Shape(t *testing.T) {
	// In Fig. 2 (βmax=5s, t=4s) the curve rises steeply: p at fi=0.3 is
	// several times p at fi=0.1, and p(1.0) is large.
	p := params5s()
	p10 := p.JoinProbability(0.10, 4*time.Second)
	p30 := p.JoinProbability(0.30, 4*time.Second)
	p100 := p.JoinProbability(1.0, 4*time.Second)
	if p30 < 2*p10 {
		t.Fatalf("p(0.3)=%v not ≫ p(0.1)=%v", p30, p10)
	}
	if p100 < 0.7 {
		t.Fatalf("p(1.0, 4s) = %v, want high", p100)
	}
}

func TestModelMatchesSimulation(t *testing.T) {
	// The paper's Figure 2 validation: closed form vs Monte-Carlo under
	// identical assumptions, for both βmax values.
	rng := sim.NewRNG(1234)
	for _, betaMax := range []time.Duration{5 * time.Second, 10 * time.Second} {
		p := PaperParams(betaMax)
		for _, fi := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
			analytic := p.JoinProbability(fi, 4*time.Second)
			simulated := p.SimulateJoinProbability(rng, fi, 4*time.Second, 4000)
			if math.Abs(analytic-simulated) > 0.06 {
				t.Fatalf("βmax=%v fi=%.1f: model %.3f vs sim %.3f", betaMax, fi, analytic, simulated)
			}
		}
	}
}

func TestExpectedJoinFraction(t *testing.T) {
	p := params5s()
	// fi=0 never joins: fraction 1. High fi for a long residence: near 0.
	if got := p.ExpectedJoinFraction(0, 30*time.Second); got != 1 {
		t.Fatalf("E[X]/T at fi=0 = %v, want 1", got)
	}
	lo := p.ExpectedJoinFraction(1.0, 60*time.Second)
	if lo > 0.25 {
		t.Fatalf("E[X]/T at fi=1, T=60s = %v, want small", lo)
	}
	// Monotone: more channel time joins sooner.
	prev := 2.0
	for _, fi := range []float64{0.1, 0.3, 0.6, 1.0} {
		v := p.ExpectedJoinFraction(fi, 30*time.Second)
		if v > prev+1e-9 {
			t.Fatalf("E[X]/T not decreasing at fi=%v", fi)
		}
		prev = v
	}
	// Shorter residence leaves a larger unjoined fraction.
	short := p.ExpectedJoinFraction(0.5, 5*time.Second)
	long := p.ExpectedJoinFraction(0.5, 60*time.Second)
	if short < long {
		t.Fatalf("E[X]/T: T=5s %v < T=60s %v", short, long)
	}
}

func TestSegments(t *testing.T) {
	p := params5s()
	// D·fi − w = 500·0.5 − 7 = 243 ms → ⌈243/100⌉ = 3 requests.
	if got := p.segments(0.5); got != 3 {
		t.Fatalf("segments(0.5) = %d, want 3", got)
	}
	if got := p.segments(0.01); got != 0 {
		t.Fatalf("segments below switch overhead = %d, want 0", got)
	}
}

func TestValidatePanics(t *testing.T) {
	bad := Params{D: 0, C: 1, BetaMin: 0, BetaMax: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	bad.JoinProbability(0.5, time.Second)
}

// Property: probabilities stay in [0,1] for arbitrary parameters.
func TestPropertyProbabilityBounds(t *testing.T) {
	f := func(fiRaw uint8, tSecs uint8, betaMaxSecs uint8, lossRaw uint8) bool {
		p := Params{
			D:       500 * time.Millisecond,
			W:       7 * time.Millisecond,
			C:       100 * time.Millisecond,
			BetaMin: 200 * time.Millisecond,
			BetaMax: 200*time.Millisecond + time.Duration(betaMaxSecs%10)*time.Second,
			Loss:    float64(lossRaw%100) / 100,
		}
		fi := float64(fiRaw) / 255
		v := p.JoinProbability(fi, time.Duration(tSecs%30)*time.Second)
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
		e := p.ExpectedJoinFraction(fi, time.Duration(tSecs%30)*time.Second)
		return e >= 0 && e <= 1+1e-9 && !math.IsNaN(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJoinProbability(b *testing.B) {
	p := params5s()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.JoinProbability(0.4, 30*time.Second)
	}
}
