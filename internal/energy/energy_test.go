package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spider/internal/sim"
)

func TestComputeBasic(t *testing.T) {
	p := Profile{TxW: 2, ListenW: 1, SwitchW: 3}
	b := Compute(p, 10*time.Second, 5*time.Second, 100*time.Second)
	if b.TxJ != 20 {
		t.Fatalf("TxJ = %v, want 20", b.TxJ)
	}
	if b.SwitchJ != 15 {
		t.Fatalf("SwitchJ = %v, want 15", b.SwitchJ)
	}
	if b.ListenJ != 85 {
		t.Fatalf("ListenJ = %v, want 85", b.ListenJ)
	}
	if b.TotalJ() != 120 {
		t.Fatalf("TotalJ = %v", b.TotalJ())
	}
}

func TestComputeClamps(t *testing.T) {
	p := DefaultProfile()
	// tx+switch exceeding total must clamp without negative listen time.
	b := Compute(p, 90*time.Second, 30*time.Second, 100*time.Second)
	if b.ListenJ < 0 {
		t.Fatalf("negative listen energy: %v", b.ListenJ)
	}
	if b.TotalJ() <= 0 {
		t.Fatal("no energy accounted")
	}
	if z := Compute(p, time.Second, time.Second, 0); z.TotalJ() != 0 {
		t.Fatalf("zero-duration energy = %v", z.TotalJ())
	}
	neg := Compute(p, -time.Second, -time.Second, 10*time.Second)
	if neg.TxJ != 0 || neg.SwitchJ != 0 {
		t.Fatal("negative inputs not clamped")
	}
}

func TestPerBit(t *testing.T) {
	b := Breakdown{TxJ: 1, ListenJ: 1}
	// 2 J over 1 Mbit = 2 µJ/bit.
	if got := b.PerBitMicroJ(125_000); math.Abs(got-2) > 1e-9 {
		t.Fatalf("per-bit = %v, want 2", got)
	}
	if !math.IsInf(b.PerBitMicroJ(0), 1) {
		t.Fatal("zero bytes should be +Inf")
	}
}

func TestDefaultProfileSane(t *testing.T) {
	p := DefaultProfile()
	if p.TxW <= p.ListenW {
		t.Fatal("transmit should cost more than listening")
	}
	if p.ListenW <= 0 || p.SwitchW <= 0 {
		t.Fatal("non-positive draws")
	}
}

// Property: total energy is bounded by max-power × duration and never
// negative.
func TestPropertyEnergyBounds(t *testing.T) {
	f := func(txMs, swMs, totMs uint16) bool {
		p := DefaultProfile()
		total := sim.Time(totMs) * time.Millisecond
		b := Compute(p, sim.Time(txMs)*time.Millisecond, sim.Time(swMs)*time.Millisecond, total)
		maxW := math.Max(p.TxW, math.Max(p.ListenW, p.SwitchW))
		if b.TxJ < 0 || b.SwitchJ < 0 || b.ListenJ < -1e-9 {
			return false
		}
		return b.TotalJ() <= maxW*total.Seconds()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
