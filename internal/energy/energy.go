// Package energy models the client radio's power draw. The paper motivates
// Wi-Fi offload partly by its "higher per-bit energy efficiency"; this
// model attributes a run's wall time to transmit, channel-switch, and
// listen states and prices them with a typical 802.11b card's power
// profile, so configurations can be compared by joules per delivered bit.
package energy

import (
	"fmt"
	"math"

	"spider/internal/sim"
)

// Profile is a radio power profile in watts.
type Profile struct {
	// TxW is the draw while transmitting.
	TxW float64
	// ListenW is the draw while awake on a channel (receive/overhear).
	ListenW float64
	// SwitchW is the draw during a hardware reset.
	SwitchW float64
}

// DefaultProfile matches a typical 200x-era Atheros 802.11b card.
func DefaultProfile() Profile {
	return Profile{TxW: 1.4, ListenW: 0.9, SwitchW: 1.0}
}

// Breakdown is a run's energy attribution in joules.
type Breakdown struct {
	TxJ     float64
	SwitchJ float64
	ListenJ float64
}

// TotalJ returns the summed energy.
func (b Breakdown) TotalJ() float64 { return b.TxJ + b.SwitchJ + b.ListenJ }

// PerBitMicroJ returns the efficiency metric µJ/bit for a given payload; it
// is +Inf when no bits were delivered.
func (b Breakdown) PerBitMicroJ(bytes int64) float64 {
	bits := float64(bytes * 8)
	if bits <= 0 {
		return inf()
	}
	return b.TotalJ() / bits * 1e6
}

func inf() float64 { return math.Inf(1) }

func (b Breakdown) String() string {
	return fmt.Sprintf("energy{tx=%.1fJ switch=%.1fJ listen=%.1fJ total=%.1fJ}",
		b.TxJ, b.SwitchJ, b.ListenJ, b.TotalJ())
}

// Compute attributes a run's duration: txTime on air transmitting,
// switchTime in hardware resets, and the remainder listening. Times beyond
// the total are clamped.
func Compute(p Profile, txTime, switchTime, total sim.Time) Breakdown {
	if total <= 0 {
		return Breakdown{}
	}
	if txTime < 0 {
		txTime = 0
	}
	if switchTime < 0 {
		switchTime = 0
	}
	if txTime+switchTime > total {
		// Clamp proportionally: accounting slack should never create
		// negative listen time.
		scale := float64(total) / float64(txTime+switchTime)
		txTime = sim.Time(float64(txTime) * scale)
		switchTime = total - txTime
	}
	listen := total - txTime - switchTime
	return Breakdown{
		TxJ:     p.TxW * txTime.Seconds(),
		SwitchJ: p.SwitchW * switchTime.Seconds(),
		ListenJ: p.ListenW * listen.Seconds(),
	}
}
