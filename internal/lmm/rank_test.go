package lmm

import (
	"sort"
	"testing"

	"spider/internal/alloc"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/phy"
)

// The candidate ranking must be a strict total order over scan entries:
// reselect insertion-sorts under rankBefore, and any tie the comparator
// leaves unresolved would make the chosen AP depend on scan-table
// insertion order — a scheduler-visible nondeterminism. These tests pin
// the order's properties and its permutation invariance for every ranking
// mode (legacy utility, RSSI-only, and the alloc policy's PF score).

// rankEntries builds candidates engineered for maximum tying: shared RSSI
// values and no utility history, so only the final BSSID tie-break can
// separate several of them.
func rankEntries() []driver.ScanEntry {
	mk := func(id uint32, ch dot11.Channel, rssi float64) driver.ScanEntry {
		return driver.ScanEntry{BSSID: dot11.MAC(id), Channel: ch, RSSI: rssi, Open: true}
	}
	return []driver.ScanEntry{
		mk(0x105, dot11.Channel1, -60),
		mk(0x101, dot11.Channel1, -60), // ties 0x105 on RSSI
		mk(0x103, dot11.Channel6, -60), // ties both, other channel
		mk(0x102, dot11.Channel1, -55),
		mk(0x104, dot11.Channel6, -75),
		mk(0x106, dot11.Channel11, -55), // ties 0x102 on RSSI
	}
}

// checkStrictTotalOrder asserts irreflexivity, antisymmetric totality,
// and transitivity of less over the entries.
func checkStrictTotalOrder(t *testing.T, entries []driver.ScanEntry, less func(a, b driver.ScanEntry) bool) {
	t.Helper()
	for i, a := range entries {
		if less(a, a) {
			t.Errorf("entry %d ranks before itself", i)
		}
		for j, b := range entries {
			if i == j {
				continue
			}
			ab, ba := less(a, b), less(b, a)
			if ab == ba {
				t.Errorf("entries %d,%d not strictly ordered: less(a,b)=%v less(b,a)=%v", i, j, ab, ba)
			}
			for k, c := range entries {
				if k == i || k == j {
					continue
				}
				if ab && less(b, c) && !less(a, c) {
					t.Errorf("order not transitive over %d,%d,%d", i, j, k)
				}
			}
		}
	}
}

// checkPermutationInvariant sorts every rotation of the candidate list
// and asserts one canonical result — the property that kills insertion-
// order dependence.
func checkPermutationInvariant(t *testing.T, entries []driver.ScanEntry, less func(a, b driver.ScanEntry) bool) {
	t.Helper()
	var want []dot11.MACAddr
	for rot := 0; rot < len(entries); rot++ {
		perm := append([]driver.ScanEntry(nil), entries[rot:]...)
		perm = append(perm, entries[:rot]...)
		sort.Slice(perm, func(i, j int) bool { return less(perm[i], perm[j]) })
		got := make([]dot11.MACAddr, len(perm))
		for i, e := range perm {
			got[i] = e.BSSID
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rotation %d sorts differently at %d: %v vs %v", rot, i, got, want)
			}
		}
	}
}

func TestRankBeforeStrictTotalOrderLegacy(t *testing.T) {
	r := newRig(t, DefaultConfig())
	checkStrictTotalOrder(t, rankEntries(), r.m.rankBefore)
	checkPermutationInvariant(t, rankEntries(), r.m.rankBefore)
}

func TestRankBeforeStrictTotalOrderRSSIOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SelectByRSSIOnly = true
	r := newRig(t, cfg)
	checkStrictTotalOrder(t, rankEntries(), r.m.rankBefore)
	checkPermutationInvariant(t, rankEntries(), r.m.rankBefore)
}

func TestRankBeforeStrictTotalOrderAlloc(t *testing.T) {
	cfg := DefaultConfig()
	// HerdEpsilon -1 disables the preference spread, forcing equal-rate
	// equal-load candidates into exact score ties: the order must still
	// resolve them via RSSI and BSSID, never insertion order.
	cfg.Alloc = alloc.NewPolicy(alloc.Config{Variant: alloc.Decentralized, HerdEpsilon: -1}, 7, phy.Defaults())
	r := newRig(t, cfg)
	checkStrictTotalOrder(t, rankEntries(), r.m.rankBefore)
	checkPermutationInvariant(t, rankEntries(), r.m.rankBefore)

	// And with the spread active, scores differ per BSSID but the order
	// properties must hold all the same.
	cfg.Alloc = alloc.NewPolicy(alloc.Config{Variant: alloc.Decentralized}, 7, phy.Defaults())
	r = newRig(t, cfg)
	checkStrictTotalOrder(t, rankEntries(), r.m.rankBefore)
	checkPermutationInvariant(t, rankEntries(), r.m.rankBefore)
}
