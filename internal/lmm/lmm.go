// Package lmm implements Spider's user-space Link Management Module: it
// drives the virtual Wi-Fi driver, selecting APs by join-success utility
// (design choice 2 of the paper), running the three-step join pipeline
// (link-layer association, DHCP with per-BSSID lease caching, end-to-end
// connectivity test), monitoring liveness with 10 pings/s, and recycling
// interfaces when connections die.
package lmm

import (
	"spider/internal/alloc"
	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/ipnet"
	"spider/internal/obs"
	"spider/internal/sim"
)

// Config tunes the module. Zero fields take defaults.
type Config struct {
	// Schedule is the operation mode: the channel schedule handed to the
	// driver. A single slot means single-channel operation.
	Schedule []driver.Slot
	// SingleAP caps the module at one concurrent connection (the paper's
	// single-AP configurations).
	SingleAP bool
	// ParkOnConnect pins the driver to the connected AP's channel while a
	// link is up and restores the configured scan schedule once all links
	// drop. Combined with SingleAP and default timers this reproduces a
	// stock MadWiFi-style driver.
	ParkOnConnect bool
	// DHCP configures the DHCP client timers.
	DHCP dhcp.ClientConfig
	// UseLeaseCache enables per-BSSID cached leases (DHCP fast path).
	UseLeaseCache bool
	// PingInterval is the liveness probe period (paper: 100 ms).
	PingInterval sim.Time
	// PingFailLimit is the consecutive-failure threshold (paper: 30).
	PingFailLimit int
	// PingTimeout is how long a probe may remain unanswered.
	PingTimeout sim.Time
	// ReselectInterval is how often idle interfaces look for APs.
	ReselectInterval sim.Time
	// FailureBackoff blocks re-attempts to an AP after a failed join
	// (stock DHCP clients idle for 60 s; Spider uses a short backoff).
	FailureBackoff sim.Time
	// BackoffFactor multiplies the per-BSSID backoff on each consecutive
	// join failure — the exponential blacklist that keeps a crashed AP
	// from monopolising join attempts. 1 disables growth; default 2.
	BackoffFactor float64
	// BackoffMax caps the grown per-BSSID backoff.
	BackoffMax sim.Time
	// BackoffDecay forgets an AP's failure streak after this long without
	// a new failure (default 2×BackoffMax), so yesterday's outage does
	// not penalise today's encounter.
	BackoffDecay sim.Time
	// DisableLeaseRenewal turns off DHCP renewal; by default the module
	// renews at half the lease lifetime and demotes the link when the
	// renewal fails.
	DisableLeaseRenewal bool
	// GlobalDHCPBackoff makes a DHCP failure suppress ALL join attempts
	// for FailureBackoff, as a stock dhclient does when it goes idle
	// after a failed acquisition. Spider's per-interface clients leave
	// this off.
	GlobalDHCPBackoff bool
	// MinRSSI filters scan entries with insufficient signal.
	MinRSSI float64
	// TestTarget is the address pinged by the end-to-end connectivity
	// test after DHCP binds. Zero means ping the gateway, which cannot
	// detect captive portals; the paper's Spider pings an external host
	// and falls back to the gateway only when ICMP is filtered.
	TestTarget ipnet.Addr
	// SelectByRSSIOnly disables the join-history utility and ranks
	// candidates purely by signal strength, as a stock driver does.
	SelectByRSSIOnly bool
	// Va, Vb, Vc are the join-score values for reaching association,
	// DHCP, and end-to-end connectivity respectively (va < vb < vc).
	Va, Vb, Vc float64
	// RecencyAlpha is the exponential weight given to the newest join
	// attempt when updating utility.
	RecencyAlpha float64
	// Alloc, when non-nil, swaps the selfish utility ranking for the
	// decentralized proportional-fair policy: candidates rank by estimated
	// rate over sensed channel load, concurrent links cap at the policy's
	// MaxLinks, and each reselect pass feeds the driver's carrier-sense
	// readings into the policy. Nil keeps the legacy heuristic
	// byte-identical.
	Alloc *alloc.Policy
	// Events, when non-nil, receives the module's structured timeline
	// (join pipeline stages, DHCP message arrivals, lease renewals).
	Events *obs.ClientLog
	// Obs, when non-nil, resolves counters here and in the DHCP clients
	// the module spawns. Nil disables instrumentation.
	Obs *obs.Registry
}

// DefaultConfig returns Spider's deployed settings: single channel 1,
// reduced timers, lease caching on.
func DefaultConfig() Config {
	return Config{
		Schedule:         []driver.Slot{{Channel: dot11.Channel1}},
		DHCP:             dhcp.ReducedClientConfig(200 * 1000 * 1000),
		UseLeaseCache:    true,
		PingInterval:     100 * 1000 * 1000,
		PingFailLimit:    30,
		PingTimeout:      500 * 1000 * 1000,
		ReselectInterval: 100 * 1000 * 1000,
		FailureBackoff:   5 * 1000 * 1000 * 1000,
		BackoffFactor:    2,
		BackoffMax:       60 * 1000 * 1000 * 1000,
		MinRSSI:          -96,
		Va:               0.3,
		Vb:               0.6,
		Vc:               1.0,
		RecencyAlpha:     0.3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if len(c.Schedule) == 0 {
		c.Schedule = d.Schedule
	}
	if c.DHCP.RetryTimeout <= 0 {
		c.DHCP = d.DHCP
	}
	if c.PingInterval <= 0 {
		c.PingInterval = d.PingInterval
	}
	if c.PingFailLimit <= 0 {
		c.PingFailLimit = d.PingFailLimit
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = d.PingTimeout
	}
	if c.ReselectInterval <= 0 {
		c.ReselectInterval = d.ReselectInterval
	}
	if c.FailureBackoff <= 0 {
		c.FailureBackoff = d.FailureBackoff
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = d.BackoffFactor
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = d.BackoffMax
	}
	if c.BackoffMax < c.FailureBackoff {
		c.BackoffMax = c.FailureBackoff
	}
	if c.BackoffDecay <= 0 {
		c.BackoffDecay = 2 * c.BackoffMax
	}
	if c.MinRSSI == 0 {
		c.MinRSSI = d.MinRSSI
	}
	if c.Vc <= 0 {
		c.Va, c.Vb, c.Vc = d.Va, d.Vb, d.Vc
	}
	if c.RecencyAlpha <= 0 || c.RecencyAlpha > 1 {
		c.RecencyAlpha = d.RecencyAlpha
	}
	return c
}

// JoinStage records how far a join attempt progressed.
type JoinStage uint8

// Stages in order of progress.
const (
	StageAssocFailed JoinStage = iota
	StageDHCPFailed
	StagePingFailed
	StageComplete
)

func (s JoinStage) String() string {
	switch s {
	case StageAssocFailed:
		return "assoc-failed"
	case StageDHCPFailed:
		return "dhcp-failed"
	case StagePingFailed:
		return "ping-failed"
	case StageComplete:
		return "complete"
	}
	return "unknown"
}

// JoinRecord captures the timing of one join attempt; the evaluation's
// Figures 5, 6, 14, 15 and Table 3 are built from these.
type JoinRecord struct {
	BSSID     dot11.MACAddr
	Channel   dot11.Channel
	Start     sim.Time
	Stage     JoinStage
	AssocDur  sim.Time // link-layer association duration (when reached)
	DHCPDur   sim.Time // DHCP acquisition duration (when reached)
	TotalDur  sim.Time // start → final outcome
	UsedCache bool
}

// Link is an established connection through one virtual interface. The
// upper layer (package core) attaches its packet handler and sends through
// it; it corresponds to the per-AP Linux interface Spider exposes.
type Link struct {
	VIF   *driver.VIF
	BSSID dot11.MACAddr
	SSID  string
	Lease dhcp.Lease
	Since sim.Time

	// OnPacket receives non-DHCP, non-liveness packets for this link.
	OnPacket func(ipnet.Packet)

	// DownCause names why the link went down ("ping-timeout",
	// "lease-expiry", "schedule-change", "shutdown"), set before the
	// OnLinkDown callback so outage attribution can read it.
	DownCause string

	conn *conn
}

// Send transmits an IP packet through the link's interface.
func (l *Link) Send(p ipnet.Packet) { l.VIF.SendPacket(p) }

// Up reports whether the link is still established.
func (l *Link) Up() bool { return l.conn != nil && l.conn.state == connUp }

type connState uint8

const (
	connIdle connState = iota
	connAssoc
	connDHCP
	connPing
	connUp
)

// conn is the per-VIF controller.
type conn struct {
	m     *LMM
	vif   *driver.VIF
	state connState

	bssid   dot11.MACAddr
	ssid    string
	channel dot11.Channel

	started  sim.Time // join start
	assocDur sim.Time
	dhcpDur  sim.Time
	cacheHit bool

	dhcpCli *dhcp.Client
	lease   dhcp.Lease
	link    *Link
	renewEv *sim.Event // pending lease-renewal timer

	// joinSpan is the attempt's Join root span; testSpan the open
	// conn-test child. Both nil when recording is off or no join runs.
	joinSpan *obs.ActiveSpan
	testSpan *obs.ActiveSpan

	pingSeq      uint16
	pingPending  map[uint16]*sim.Event
	pingFails    int
	stopPinger   func()
	testAttempts int
}

type utilState struct {
	value float64
	seen  bool
}

// blEntry tracks an AP's consecutive join failures for the exponential
// blacklist.
type blEntry struct {
	streak   int
	lastFail sim.Time
}

// Stats aggregates module counters.
type Stats struct {
	JoinsStarted   int
	JoinsComplete  int
	AssocFailures  int
	DHCPFailures   int
	PingFailures   int
	LinksDropped   int
	CacheHits      int
	CacheFastJoins int
	LeaseRenewals  int // successful in-place DHCP renewals
	RenewalFails   int // failed renewals (each demotes its link)
}

// LMM is the link management module.
type LMM struct {
	eng *sim.Engine
	rng *sim.RNG
	drv *driver.Driver
	cfg Config

	conns        []*conn
	inUse        map[dot11.MACAddr]bool
	utility      map[dot11.MACAddr]*utilState
	backoffUntil map[dot11.MACAddr]sim.Time
	blacklist    map[dot11.MACAddr]*blEntry
	leaseCache   map[dot11.MACAddr]dhcp.Lease
	schedChans   map[dot11.Channel]bool

	joins         []JoinRecord
	stats         Stats
	stopSelect    func()
	globalBackoff sim.Time

	// schedChanList mirrors schedChans in schedule order for the alloc
	// policy's channel-sense pass. allocTarget pins the module to one AP
	// when the centralized allocator steers it; allocPinned marks the pin
	// (a zero target clears it).
	schedChanList []dot11.Channel
	allocTarget   dot11.MACAddr
	allocPinned   bool

	// candScratch and idleScratch back reselect's working sets; the pass
	// runs every ReselectInterval per client, so reusing them keeps the
	// steady-state selection loop allocation-free.
	candScratch []driver.ScanEntry
	idleScratch []*conn

	// OnLinkUp and OnLinkDown notify the upper layer.
	OnLinkUp   func(*Link)
	OnLinkDown func(*Link)
	// OnJoin observes every join attempt's outcome as it is recorded
	// (used by the encounter-history predictor).
	OnJoin func(JoinRecord)
}

// New creates the module and installs the schedule into the driver. It
// begins selecting APs immediately.
func New(eng *sim.Engine, rng *sim.RNG, drv *driver.Driver, cfg Config) *LMM {
	cfg = cfg.withDefaults()
	cfg.DHCP.Obs = cfg.Obs
	m := &LMM{
		eng:          eng,
		rng:          rng,
		drv:          drv,
		cfg:          cfg,
		inUse:        make(map[dot11.MACAddr]bool),
		utility:      make(map[dot11.MACAddr]*utilState),
		backoffUntil: make(map[dot11.MACAddr]sim.Time),
		blacklist:    make(map[dot11.MACAddr]*blEntry),
		leaseCache:   make(map[dot11.MACAddr]dhcp.Lease),
		schedChans:   make(map[dot11.Channel]bool),
	}
	drv.SetSchedule(cfg.Schedule)
	for _, s := range cfg.Schedule {
		if !m.schedChans[s.Channel] {
			m.schedChanList = append(m.schedChanList, s.Channel)
		}
		m.schedChans[s.Channel] = true
	}
	for _, v := range drv.VIFs() {
		m.conns = append(m.conns, &conn{m: m, vif: v})
	}
	m.stopSelect = eng.Ticker(cfg.ReselectInterval, m.reselect)
	return m
}

// Close stops the module.
func (m *LMM) Close() {
	m.stopSelect()
	for _, c := range m.conns {
		if c.state == connUp {
			c.link.DownCause = "shutdown"
			c.down(false)
		}
	}
}

// Config returns the effective configuration.
func (m *LMM) Config() Config { return m.cfg }

// Stats returns a snapshot of the counters.
func (m *LMM) Stats() Stats { return m.stats }

// Joins returns the join attempt records collected so far.
func (m *LMM) Joins() []JoinRecord { return append([]JoinRecord(nil), m.joins...) }

// ActiveLinks returns all currently established links.
func (m *LMM) ActiveLinks() []*Link {
	var out []*Link
	for _, c := range m.conns {
		if c.state == connUp {
			out = append(out, c.link)
		}
	}
	return out
}

// Blacklist reports an AP's consecutive-failure streak and when its
// backoff expires (zero streak when the AP is in good standing).
func (m *LMM) Blacklist(bssid dot11.MACAddr) (streak int, until sim.Time) {
	if e := m.blacklist[bssid]; e != nil {
		streak = e.streak
	}
	return streak, m.backoffUntil[bssid]
}

// noteFailure records a join failure against bssid and arms the
// exponentially grown backoff: FailureBackoff × BackoffFactor^(streak-1),
// capped at BackoffMax. A streak older than BackoffDecay is forgotten
// first, so decayed history restarts from the base backoff.
func (m *LMM) noteFailure(bssid dot11.MACAddr) {
	now := m.eng.Now()
	e := m.blacklist[bssid]
	if e == nil {
		e = &blEntry{}
		m.blacklist[bssid] = e
	}
	if e.streak > 0 && now-e.lastFail > m.cfg.BackoffDecay {
		e.streak = 0
	}
	e.streak++
	e.lastFail = now
	backoff := m.cfg.FailureBackoff
	for i := 1; i < e.streak && backoff < m.cfg.BackoffMax; i++ {
		backoff = sim.Time(float64(backoff) * m.cfg.BackoffFactor)
	}
	if backoff > m.cfg.BackoffMax {
		backoff = m.cfg.BackoffMax
	}
	m.backoffUntil[bssid] = now + backoff
}

// Utility returns the current utility for an AP and whether it has history.
func (m *LMM) Utility(bssid dot11.MACAddr) (float64, bool) {
	u, ok := m.utility[bssid]
	if !ok {
		return m.cfg.Vc, false
	}
	return u.value, true
}

// SetSchedule switches the operation mode at runtime (used by the adaptive
// extension). Connections to APs on channels no longer scheduled are torn
// down.
func (m *LMM) SetSchedule(slots []driver.Slot) {
	m.cfg.Schedule = append([]driver.Slot(nil), slots...)
	m.drv.SetSchedule(slots)
	m.schedChans = make(map[dot11.Channel]bool)
	m.schedChanList = m.schedChanList[:0]
	for _, s := range slots {
		if !m.schedChans[s.Channel] {
			m.schedChanList = append(m.schedChanList, s.Channel)
		}
		m.schedChans[s.Channel] = true
	}
	for _, c := range m.conns {
		if c.state != connIdle && !m.schedChans[c.channel] {
			c.abort()
		}
	}
}

// scoreJoin folds a join outcome into the AP's utility.
func (m *LMM) scoreJoin(bssid dot11.MACAddr, stage JoinStage) {
	var score float64
	switch stage {
	case StageAssocFailed:
		score = 0
	case StageDHCPFailed:
		score = m.cfg.Va
	case StagePingFailed:
		score = m.cfg.Vb
	case StageComplete:
		score = m.cfg.Vc
	}
	u, ok := m.utility[bssid]
	if !ok {
		// First real outcome replaces the optimistic bootstrap entirely.
		m.utility[bssid] = &utilState{value: score, seen: true}
		return
	}
	u.value = (1-m.cfg.RecencyAlpha)*u.value + m.cfg.RecencyAlpha*score
	u.seen = true
}

// rankBefore orders candidate APs: the alloc policy's PF score when one is
// installed, else utility first (unknown APs bootstrap at max); RSSI breaks
// ties, BSSID is the deterministic final tiebreak. Every branch bottoms out
// at the unique BSSID, so the order is strictly total regardless of the
// scan table's arrival order.
func (m *LMM) rankBefore(a, b driver.ScanEntry) bool {
	if m.cfg.Alloc != nil {
		sa := m.cfg.Alloc.Score(a.BSSID, a.Channel, a.RSSI)
		sb := m.cfg.Alloc.Score(b.BSSID, b.Channel, b.RSSI)
		if sa != sb {
			return sa > sb
		}
	} else if !m.cfg.SelectByRSSIOnly {
		ua, _ := m.Utility(a.BSSID)
		ub, _ := m.Utility(b.BSSID)
		if ua != ub {
			return ua > ub
		}
	}
	if a.RSSI != b.RSSI {
		return a.RSSI > b.RSSI
	}
	return a.BSSID.Less(b.BSSID)
}

// maxActive returns the concurrent-link cap the current policy imposes;
// len(conns) means no cap beyond the interface count.
func (m *LMM) maxActive() int {
	if m.cfg.SingleAP {
		return 1
	}
	if m.cfg.Alloc != nil {
		return m.cfg.Alloc.MaxLinks()
	}
	return len(m.conns)
}

// SetAllocTarget pins the module to one AP chosen by the centralized
// allocator: reselect only joins the target, and a live link to any other
// AP is steered down once the target is in range. A zero BSSID clears the
// pin, returning reselect to its configured ranking.
func (m *LMM) SetAllocTarget(bssid dot11.MACAddr) {
	m.allocTarget = bssid
	m.allocPinned = bssid != (dot11.MACAddr{})
}

// AllocTarget reports the current pin, if any.
func (m *LMM) AllocTarget() (dot11.MACAddr, bool) {
	return m.allocTarget, m.allocPinned
}

// steerToTarget tears down connections to APs other than the pinned target
// once the target is actually joinable — tearing down earlier would strand
// the client between the AP it had and the AP it cannot reach yet.
func (m *LMM) steerToTarget(now sim.Time) {
	if m.inUse[m.allocTarget] {
		return // already joining or joined the target
	}
	visible := false
	for _, e := range m.drv.ScanTable() {
		if e.BSSID == m.allocTarget && e.Open && m.schedChans[e.Channel] &&
			e.RSSI >= m.cfg.MinRSSI && m.backoffUntil[e.BSSID] <= now {
			visible = true
			break
		}
	}
	if !visible {
		return
	}
	for _, c := range m.conns {
		if c.state == connIdle || c.bssid == m.allocTarget {
			continue
		}
		if c.state == connUp {
			c.link.DownCause = "alloc-steer"
			c.down(true)
		} else {
			c.abort()
		}
	}
}

// reselect assigns idle interfaces to the best candidate APs.
func (m *LMM) reselect() {
	now := m.eng.Now()
	if m.cfg.Alloc != nil {
		// Refresh the policy's channel-load inference at the reselect
		// cadence — the same carrier-sense pass a real station's firmware
		// performs while scanning.
		m.cfg.Alloc.Observe(now, m.drv.ChannelAirtime, m.drv.ChannelContenders, m.schedChanList)
	}
	if m.allocPinned {
		m.steerToTarget(now)
	}
	active := 0
	idle := m.idleScratch[:0]
	for _, c := range m.conns {
		if c.state == connIdle {
			idle = append(idle, c)
		} else {
			active++
		}
	}
	m.idleScratch = idle
	if len(idle) == 0 || active >= m.maxActive() {
		return
	}
	if now < m.globalBackoff {
		return // stock dhclient idling after a failed acquisition
	}
	cands := m.candScratch[:0]
	for _, e := range m.drv.ScanTable() {
		if !e.Open || !m.schedChans[e.Channel] || e.RSSI < m.cfg.MinRSSI {
			continue
		}
		if m.inUse[e.BSSID] || m.backoffUntil[e.BSSID] > now {
			continue
		}
		if m.allocPinned && e.BSSID != m.allocTarget {
			continue // centrally steered: only the assigned AP is eligible
		}
		if m.cfg.ParkOnConnect && active > 0 && e.Channel != m.drv.CurrentChannel() {
			continue // parked on a live link's channel; don't join elsewhere
		}
		cands = append(cands, e)
	}
	m.candScratch = cands
	// Insertion sort under rankBefore: the comparator is a strict total
	// order (BSSIDs are unique), so the result matches any correct sort,
	// and small candidate sets stay closure- and interface-free.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && m.rankBefore(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, e := range cands {
		if len(idle) == 0 {
			break
		}
		if active >= m.maxActive() {
			break
		}
		c := idle[0]
		idle = idle[1:]
		active++
		c.startJoin(e)
	}
}

// startJoin begins the three-step pipeline for a selected AP.
func (c *conn) startJoin(e driver.ScanEntry) {
	m := c.m
	m.stats.JoinsStarted++
	m.inUse[e.BSSID] = true
	c.state = connAssoc
	c.bssid = e.BSSID
	c.ssid = e.SSID
	c.channel = e.Channel
	c.started = m.eng.Now()
	c.cacheHit = false
	if m.cfg.Events.Enabled() {
		m.cfg.Events.Emit(obs.Event{
			At:      m.eng.Now(),
			Kind:    obs.KindJoinStart,
			BSSID:   e.BSSID.String(),
			Channel: int(e.Channel),
		})
	}
	c.joinSpan = m.cfg.Events.StartSpan(m.eng.Now(), "join")
	if c.joinSpan != nil {
		c.joinSpan.SetBSSID(e.BSSID.String())
		c.joinSpan.SetChannel(int(e.Channel))
	}
	c.vif.Span = c.joinSpan
	if m.cfg.ParkOnConnect {
		// A stock driver stops scanning and camps on the candidate's
		// channel for the whole join, not just once the link is up.
		m.drv.SetSchedule([]driver.Slot{{Channel: e.Channel}})
	}
	c.vif.OnPacket = c.onPacket
	c.vif.OnJoinResult = func(ok bool) {
		if c.state != connAssoc {
			return
		}
		if !ok {
			m.stats.AssocFailures++
			c.finishJoin(StageAssocFailed)
			return
		}
		c.assocDur = m.eng.Now() - c.started
		c.startDHCP()
	}
	c.vif.Associate(e.BSSID, e.Channel)
}

func (c *conn) startDHCP() {
	m := c.m
	c.state = connDHCP
	dhcpStart := m.eng.Now()
	var cached *dhcp.Lease
	if m.cfg.UseLeaseCache {
		if l, ok := m.leaseCache[c.bssid]; ok {
			cached = &l
			c.cacheHit = true
			m.stats.CacheHits++
		}
	}
	c.dhcpCli = dhcp.NewClient(m.eng, m.rng.Stream("dhcp"), m.cfg.DHCP, m.drv.MAC(),
		c.dhcpSend,
		func(lease dhcp.Lease, ok bool) {
			if c.state != connDHCP {
				return
			}
			if !ok {
				m.stats.DHCPFailures++
				c.finishJoin(StageDHCPFailed)
				return
			}
			c.dhcpDur = m.eng.Now() - dhcpStart
			c.lease = lease
			if m.cfg.UseLeaseCache {
				m.leaseCache[c.bssid] = lease
				if c.cacheHit {
					m.stats.CacheFastJoins++
				}
			}
			c.startConnTest()
		})
	c.dhcpCli.Span = c.joinSpan
	c.dhcpCli.Start(cached)
}

// dhcpSend broadcasts a DHCP client message through the interface.
func (c *conn) dhcpSend(msg dhcp.Message) {
	u := ipnet.UDP{SrcPort: ipnet.PortDHCPClient, DstPort: ipnet.PortDHCPServer, Payload: msg.Bytes()}
	c.vif.SendPacket(ipnet.Packet{
		Proto: ipnet.ProtoUDP, TTL: ipnet.DefaultTTL,
		Src: ipnet.Unspecified, Dst: ipnet.BroadcastAddr,
		Payload: u.AppendTo(nil),
	})
}

// armRenewal schedules a DHCP renewal at half the lease lifetime, the
// T1 timer of RFC 2131. Without it the client would keep using an
// address the server may hand to someone else once LeaseSecs elapses.
func (c *conn) armRenewal() {
	m := c.m
	if m.cfg.DisableLeaseRenewal || c.lease.LeaseSecs == 0 {
		return
	}
	life := sim.Time(c.lease.LeaseSecs) * 1000 * 1000 * 1000
	c.renewEv = m.eng.Schedule(life/2, c.renewLease)
}

// renewLease re-requests the bound lease in place. Success refreshes the
// lease (and cache) and re-arms the timer; failure demotes the link so
// the module fails over instead of riding an expiring address.
func (c *conn) renewLease() {
	c.renewEv = nil
	if c.state != connUp {
		return
	}
	m := c.m
	cached := c.lease
	c.dhcpCli = dhcp.NewClient(m.eng, m.rng.Stream("dhcp"), m.cfg.DHCP, m.drv.MAC(),
		c.dhcpSend,
		func(lease dhcp.Lease, ok bool) {
			if c.state != connUp {
				return
			}
			if !ok {
				m.stats.RenewalFails++
				if m.cfg.Events.Enabled() {
					m.cfg.Events.Emit(obs.Event{
						At:    m.eng.Now(),
						Kind:  obs.KindDHCPRenew,
						BSSID: c.bssid.String(),
						Note:  "failed",
					})
				}
				if c.link != nil {
					c.link.DownCause = "lease-expiry"
				}
				c.down(true)
				return
			}
			m.stats.LeaseRenewals++
			if m.cfg.Events.Enabled() {
				m.cfg.Events.Emit(obs.Event{
					At:    m.eng.Now(),
					Kind:  obs.KindDHCPRenew,
					BSSID: c.bssid.String(),
					Note:  "ok",
				})
			}
			c.lease = lease
			if c.link != nil {
				c.link.Lease = lease
			}
			if m.cfg.UseLeaseCache {
				m.leaseCache[c.bssid] = lease
			}
			c.armRenewal()
		})
	c.dhcpCli.Start(&cached)
}

// startConnTest verifies end-to-end connectivity with gateway pings before
// declaring the link up.
func (c *conn) startConnTest() {
	c.state = connPing
	c.testAttempts = 0
	c.pingPending = make(map[uint16]*sim.Event)
	c.testSpan = c.joinSpan.StartChild(c.m.eng.Now(), "conn-test")
	c.sendTestPing()
}

func (c *conn) sendTestPing() {
	m := c.m
	if c.state != connPing {
		return
	}
	if c.testAttempts >= 10 {
		m.stats.PingFailures++
		c.finishJoin(StagePingFailed)
		return
	}
	c.testAttempts++
	target := m.cfg.TestTarget
	if target.IsUnspecified() {
		target = c.lease.Server
	}
	c.sendPingTo(target)
	// Retry every PingTimeout until an answer arrives or attempts cap.
	m.eng.Schedule(m.cfg.PingTimeout, c.sendTestPing)
}

func (c *conn) sendPing() { c.sendPingTo(c.lease.Server) }

func (c *conn) sendPingTo(target ipnet.Addr) {
	c.pingSeq++
	seq := c.pingSeq
	ping := ipnet.EchoRequestPacket(c.lease.IP, target, uint16(c.vif.ID()), seq)
	c.vif.SendPacket(ping)
	// Arm the liveness timeout for this probe (used in the up state).
	if c.state == connUp {
		ev := c.m.eng.Schedule(c.m.cfg.PingTimeout, func() {
			delete(c.pingPending, seq)
			c.pingFails++
			if c.pingFails >= c.m.cfg.PingFailLimit && c.state == connUp {
				c.m.stats.LinksDropped++
				c.link.DownCause = "ping-timeout"
				c.down(true)
			}
		})
		c.pingPending[seq] = ev
	}
}

// finishJoin records a terminal join outcome (success handled in goUp).
func (c *conn) finishJoin(stage JoinStage) {
	m := c.m
	rec := JoinRecord{
		BSSID:     c.bssid,
		Channel:   c.channel,
		Start:     c.started,
		Stage:     stage,
		AssocDur:  c.assocDur,
		DHCPDur:   c.dhcpDur,
		TotalDur:  m.eng.Now() - c.started,
		UsedCache: c.cacheHit,
	}
	m.joins = append(m.joins, rec)
	if m.cfg.Events.Enabled() {
		m.cfg.Events.Emit(obs.Event{
			At:      m.eng.Now(),
			Kind:    obs.KindJoinFail,
			BSSID:   c.bssid.String(),
			Channel: int(c.channel),
			Value:   int64(rec.TotalDur),
			Note:    stage.String(),
		})
	}
	c.testSpan.EndStatus(m.eng.Now(), stage.String())
	c.testSpan = nil
	c.joinSpan.EndStatus(m.eng.Now(), stage.String())
	c.joinSpan = nil
	if m.OnJoin != nil {
		m.OnJoin(rec)
	}
	m.scoreJoin(c.bssid, stage)
	m.noteFailure(c.bssid)
	if m.cfg.GlobalDHCPBackoff && stage == StageDHCPFailed {
		m.globalBackoff = m.eng.Now() + m.cfg.FailureBackoff
	}
	c.reset()
	if m.cfg.ParkOnConnect && len(m.ActiveLinks()) == 0 {
		m.drv.SetSchedule(m.cfg.Schedule)
	}
}

func (c *conn) goUp() {
	m := c.m
	m.stats.JoinsComplete++
	rec := JoinRecord{
		BSSID:     c.bssid,
		Channel:   c.channel,
		Start:     c.started,
		Stage:     StageComplete,
		AssocDur:  c.assocDur,
		DHCPDur:   c.dhcpDur,
		TotalDur:  m.eng.Now() - c.started,
		UsedCache: c.cacheHit,
	}
	m.joins = append(m.joins, rec)
	if m.cfg.Events.Enabled() {
		m.cfg.Events.Emit(obs.Event{
			At:      m.eng.Now(),
			Kind:    obs.KindJoinComplete,
			BSSID:   c.bssid.String(),
			Channel: int(c.channel),
			Value:   int64(rec.TotalDur),
		})
	}
	c.testSpan.EndStatus(m.eng.Now(), "ok")
	c.testSpan = nil
	c.joinSpan.EndStatus(m.eng.Now(), "complete")
	c.joinSpan = nil
	if m.OnJoin != nil {
		m.OnJoin(rec)
	}
	m.scoreJoin(c.bssid, StageComplete)
	delete(m.blacklist, c.bssid) // success forgives the failure streak
	c.state = connUp
	c.pingFails = 0
	c.link = &Link{
		VIF:   c.vif,
		BSSID: c.bssid,
		SSID:  c.ssid,
		Lease: c.lease,
		Since: m.eng.Now(),
		conn:  c,
	}
	c.stopPinger = m.eng.Ticker(m.cfg.PingInterval, c.sendPing)
	c.armRenewal()
	if m.cfg.ParkOnConnect {
		m.drv.SetSchedule([]driver.Slot{{Channel: c.channel}})
	}
	if m.OnLinkUp != nil {
		m.OnLinkUp(c.link)
	}
}

// down tears an established link down. notify controls the OnLinkDown
// callback (suppressed during Close).
func (c *conn) down(notify bool) {
	m := c.m
	link := c.link
	if c.stopPinger != nil {
		c.stopPinger()
		c.stopPinger = nil
	}
	for _, ev := range c.pingPending {
		m.eng.Cancel(ev)
	}
	c.pingPending = nil
	m.backoffUntil[c.bssid] = m.eng.Now() + m.cfg.FailureBackoff
	c.reset()
	if m.cfg.ParkOnConnect && len(m.ActiveLinks()) == 0 {
		// All links gone: resume the configured scan rotation.
		m.drv.SetSchedule(m.cfg.Schedule)
	}
	if notify && m.OnLinkDown != nil && link != nil {
		m.OnLinkDown(link)
	}
}

// abort cancels a connection in any state without recording a join outcome
// (used on schedule changes).
func (c *conn) abort() {
	if c.state == connUp {
		c.link.DownCause = "schedule-change"
		c.down(true)
		return
	}
	if c.dhcpCli != nil {
		c.dhcpCli.Stop()
	}
	c.reset()
}

func (c *conn) reset() {
	m := c.m
	// Aborted attempts (schedule change, Close) still hold an open root
	// span; terminal paths already closed theirs, making this a no-op.
	c.testSpan.EndStatus(m.eng.Now(), "aborted")
	c.testSpan = nil
	c.joinSpan.EndStatus(m.eng.Now(), "aborted")
	c.joinSpan = nil
	if c.dhcpCli != nil {
		c.dhcpCli.Stop()
		c.dhcpCli = nil
	}
	if c.renewEv != nil {
		m.eng.Cancel(c.renewEv)
		c.renewEv = nil
	}
	if c.stopPinger != nil {
		c.stopPinger()
		c.stopPinger = nil
	}
	delete(m.inUse, c.bssid)
	c.vif.OnJoinResult = nil
	c.vif.OnPacket = nil
	c.vif.Disassociate()
	c.state = connIdle
	c.bssid = dot11.MACAddr{}
	c.link = nil
	c.lease = dhcp.Lease{}
	c.assocDur, c.dhcpDur = 0, 0
}

// onPacket dispatches packets arriving on the interface.
func (c *conn) onPacket(p ipnet.Packet) {
	switch p.Proto {
	case ipnet.ProtoUDP:
		u, err := ipnet.DecodeUDP(p.Payload)
		if err != nil || u.DstPort != ipnet.PortDHCPClient {
			return
		}
		if msg, err := dhcp.DecodeMessage(u.Payload); err == nil && c.dhcpCli != nil {
			var kind obs.Kind
			known := true
			switch msg.Type {
			case dhcp.Offer:
				kind = obs.KindDHCPOffer
			case dhcp.Ack:
				kind = obs.KindDHCPAck
			case dhcp.Nak:
				kind = obs.KindDHCPNak
			default:
				known = false
			}
			if known && c.m.cfg.Events.Enabled() {
				c.m.cfg.Events.Emit(obs.Event{
					At:      c.m.eng.Now(),
					Kind:    kind,
					BSSID:   c.bssid.String(),
					Channel: int(c.channel),
				})
			}
			c.dhcpCli.Deliver(msg)
		}
	case ipnet.ProtoICMP:
		echo, err := ipnet.DecodeEcho(p.Payload)
		if err != nil {
			return
		}
		if echo.Type == ipnet.ICMPEchoReply && echo.ID == uint16(c.vif.ID()) {
			c.onPingReply(echo.Seq)
			return
		}
		// Foreign ICMP flows to the application.
		if c.state == connUp && c.link.OnPacket != nil {
			c.link.OnPacket(p)
		}
	default:
		if c.state == connUp && c.link.OnPacket != nil {
			c.link.OnPacket(p)
		}
	}
}

func (c *conn) onPingReply(seq uint16) {
	switch c.state {
	case connPing:
		c.goUp()
	case connUp:
		if ev, ok := c.pingPending[seq]; ok {
			c.m.eng.Cancel(ev)
			delete(c.pingPending, seq)
		}
		c.pingFails = 0
	}
}
