package lmm

import (
	"testing"
	"time"

	"spider/internal/ap"
	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/geo"
	"spider/internal/ipnet"
	"spider/internal/phy"
	"spider/internal/sim"
)

type rig struct {
	eng    *sim.Engine
	medium *phy.Medium
	drv    *driver.Driver
	m      *LMM
	ups    []*Link
	downs  []*Link
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0.05 }
	r := &rig{eng: eng, medium: phy.NewMedium(eng, sim.NewRNG(21).Stream("phy"), params)}
	dcfg := driver.Config{NumVIFs: 4, LLTimeout: 100 * time.Millisecond, JoinWindow: 2 * time.Second}
	r.drv = driver.New(eng, sim.NewRNG(22), r.medium, dot11.MAC(1), func() geo.Point { return geo.Point{} }, dcfg)
	r.m = New(eng, sim.NewRNG(23), r.drv, cfg)
	r.m.OnLinkUp = func(l *Link) { r.ups = append(r.ups, l) }
	r.m.OnLinkDown = func(l *Link) { r.downs = append(r.downs, l) }
	return r
}

func (r *rig) addAP(ch dot11.Channel, id uint32, open bool) *ap.AP {
	gw := ipnet.AddrFrom4(10, byte(id), 0, 1)
	cfg := ap.DefaultConfig("net", ch, gw)
	cfg.Open = open
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = 2*time.Millisecond, 10*time.Millisecond
	cfg.DHCP.RespDelayMin, cfg.DHCP.RespDelayMax = 50*time.Millisecond, 200*time.Millisecond
	return ap.New(r.eng, sim.NewRNG(int64(100+id)), r.medium, geo.Point{X: 20}, dot11.MAC(1000+id), cfg, nil)
}

func (r *rig) run(d sim.Time) { r.eng.Run(r.eng.Now() + d) }

func ch1Sched() []driver.Slot { return []driver.Slot{{Channel: dot11.Channel1}} }

func TestEndToEndJoin(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched()})
	a := r.addAP(dot11.Channel1, 1, true)
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatalf("links up = %d, want 1", len(r.ups))
	}
	l := r.ups[0]
	if l.BSSID != a.BSSID() || l.Lease.IP.IsUnspecified() || !l.Up() {
		t.Fatalf("link = %+v", l)
	}
	st := r.m.Stats()
	if st.JoinsComplete != 1 || st.JoinsStarted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	joins := r.m.Joins()
	if len(joins) != 1 || joins[0].Stage != StageComplete {
		t.Fatalf("joins = %+v", joins)
	}
	if joins[0].AssocDur <= 0 || joins[0].DHCPDur <= 0 || joins[0].TotalDur < joins[0].AssocDur+joins[0].DHCPDur {
		t.Fatalf("durations inconsistent: %+v", joins[0])
	}
	if u, seen := r.m.Utility(a.BSSID()); !seen || u != r.m.Config().Vc {
		t.Fatalf("utility = %v seen=%v", u, seen)
	}
}

func TestMultiAPSameChannel(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched()})
	r.addAP(dot11.Channel1, 1, true)
	r.addAP(dot11.Channel1, 2, true)
	r.run(15 * time.Second)
	if len(r.m.ActiveLinks()) != 2 {
		t.Fatalf("active links = %d, want 2 (concurrent same-channel APs)", len(r.m.ActiveLinks()))
	}
}

func TestSingleAPMode(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), SingleAP: true})
	r.addAP(dot11.Channel1, 1, true)
	r.addAP(dot11.Channel1, 2, true)
	r.run(15 * time.Second)
	if got := len(r.m.ActiveLinks()); got != 1 {
		t.Fatalf("active links = %d, want 1 in SingleAP mode", got)
	}
}

func TestOffScheduleChannelIgnored(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched()})
	r.addAP(dot11.Channel6, 1, true)
	r.run(10 * time.Second)
	if len(r.ups) != 0 {
		t.Fatal("joined an AP on an unscheduled channel")
	}
	if r.m.Stats().JoinsStarted != 0 {
		t.Fatal("join attempted on unscheduled channel")
	}
}

func TestClosedAPNotSelected(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched()})
	r.addAP(dot11.Channel1, 1, false)
	r.run(10 * time.Second)
	if r.m.Stats().JoinsStarted != 0 {
		t.Fatal("LMM tried to join a closed AP")
	}
}

func TestUtilityDemotesFailingAP(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), FailureBackoff: 2 * time.Second})
	// The "zombie" AP beacons as open but its management plane is too slow
	// to complete a join inside the window.
	gw := ipnet.AddrFrom4(10, 7, 0, 1)
	cfg := ap.DefaultConfig("zombie", dot11.Channel1, gw)
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = 10*time.Second, 11*time.Second
	zombie := ap.New(r.eng, sim.NewRNG(300), r.medium, geo.Point{X: 20}, dot11.MAC(2000), cfg, nil)
	r.run(12 * time.Second)
	if r.m.Stats().AssocFailures == 0 {
		t.Fatal("no association failures recorded against the zombie AP")
	}
	if u, seen := r.m.Utility(zombie.BSSID()); !seen || u > 0.3 {
		t.Fatalf("zombie utility = %v (seen=%v), want demoted toward 0", u, seen)
	}
	// A healthy AP appearing later is preferred and joins promptly.
	good := r.addAP(dot11.Channel1, 9, true)
	r.run(10 * time.Second)
	found := false
	for _, l := range r.m.ActiveLinks() {
		if l.BSSID == good.BSSID() {
			found = true
		}
	}
	if !found {
		t.Fatal("healthy AP not joined after zombie demotion")
	}
}

func TestLivenessDropsDeadLink(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), PingFailLimit: 10})
	a := r.addAP(dot11.Channel1, 1, true)
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatalf("links up = %d", len(r.ups))
	}
	a.Close()
	r.run(10 * time.Second)
	if len(r.downs) != 1 {
		t.Fatalf("links down = %d, want 1 after AP death", len(r.downs))
	}
	if r.m.Stats().LinksDropped != 1 {
		t.Fatalf("LinksDropped = %d", r.m.Stats().LinksDropped)
	}
	if len(r.m.ActiveLinks()) != 0 {
		t.Fatal("dead link still active")
	}
}

func TestLeaseCacheFastRejoin(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), PingFailLimit: 10, FailureBackoff: time.Second, UseLeaseCache: true})
	a := r.addAP(dot11.Channel1, 1, true)
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatal("initial join failed")
	}
	firstDHCP := r.m.Joins()[0].DHCPDur
	// Kill and resurrect the AP with identical identity.
	a.Close()
	r.run(5 * time.Second)
	if len(r.downs) != 1 {
		t.Fatal("link did not drop")
	}
	r.addAP(dot11.Channel1, 1, true)
	r.run(15 * time.Second)
	if len(r.ups) < 2 {
		t.Fatalf("rejoin did not complete: ups=%d", len(r.ups))
	}
	if r.m.Stats().CacheHits == 0 {
		t.Fatal("lease cache never used on rejoin")
	}
	joins := r.m.Joins()
	last := joins[len(joins)-1]
	if !last.UsedCache {
		t.Fatalf("last join did not use the cache: %+v", last)
	}
	if last.DHCPDur >= firstDHCP {
		t.Fatalf("cached DHCP %v not faster than full exchange %v", last.DHCPDur, firstDHCP)
	}
}

func TestSetScheduleTearsDownOffChannelLinks(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched()})
	r.addAP(dot11.Channel1, 1, true)
	r.run(10 * time.Second)
	if len(r.m.ActiveLinks()) != 1 {
		t.Fatal("no link to tear down")
	}
	r.m.SetSchedule([]driver.Slot{{Channel: dot11.Channel6}})
	r.run(time.Second)
	if len(r.m.ActiveLinks()) != 0 {
		t.Fatal("link survived schedule change off its channel")
	}
	if len(r.downs) != 1 {
		t.Fatalf("downs = %d", len(r.downs))
	}
}

func TestLinkCarriesApplicationTraffic(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched()})
	var uplinked []ipnet.Packet
	gw := ipnet.AddrFrom4(10, 1, 0, 1)
	cfg := ap.DefaultConfig("net", dot11.Channel1, gw)
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = 2*time.Millisecond, 10*time.Millisecond
	cfg.DHCP.RespDelayMin, cfg.DHCP.RespDelayMax = 50*time.Millisecond, 100*time.Millisecond
	a := ap.New(r.eng, sim.NewRNG(101), r.medium, geo.Point{X: 20}, dot11.MAC(1001), cfg,
		func(p ipnet.Packet) { uplinked = append(uplinked, p) })
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatal("no link")
	}
	l := r.ups[0]
	var got []ipnet.Packet
	l.OnPacket = func(p ipnet.Packet) { got = append(got, p) }
	remote := ipnet.AddrFrom4(93, 184, 216, 34)
	l.Send(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: 64, Src: l.Lease.IP, Dst: remote, Payload: []byte("GET /")})
	r.run(time.Second)
	if len(uplinked) != 1 || uplinked[0].Dst != remote {
		t.Fatalf("uplink saw %v", uplinked)
	}
	// Reply path.
	a.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: 64, Src: remote, Dst: l.Lease.IP, Payload: []byte("200 OK")})
	r.run(time.Second)
	if len(got) != 1 || got[0].Src != remote {
		t.Fatalf("application packets = %v", got)
	}
}

func TestBackoffPreventsThrashing(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), FailureBackoff: 30 * time.Second})
	// Zombie AP that never completes joins.
	gw := ipnet.AddrFrom4(10, 7, 0, 1)
	cfg := ap.DefaultConfig("zombie", dot11.Channel1, gw)
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = 10*time.Second, 11*time.Second
	ap.New(r.eng, sim.NewRNG(300), r.medium, geo.Point{X: 20}, dot11.MAC(2000), cfg, nil)
	r.run(20 * time.Second)
	// One failed join (2s window), then a 30s backoff: no second attempt.
	if got := r.m.Stats().JoinsStarted; got != 1 {
		t.Fatalf("joins started = %d, want 1 (backoff)", got)
	}
}

func TestCloseStopsModule(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched()})
	r.addAP(dot11.Channel1, 1, true)
	r.run(10 * time.Second)
	r.m.Close()
	ups := len(r.ups)
	r.run(10 * time.Second)
	if len(r.ups) != ups {
		t.Fatal("module still joining after Close")
	}
}

func TestCaptivePortalDetectedByE2ETest(t *testing.T) {
	// With TestTarget set to a remote host, a captive AP (gateway answers,
	// WAN blocked) must fail the connectivity test and score vb, not come
	// up as a link.
	eng := sim.NewEngine()
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0.05 }
	medium := phy.NewMedium(eng, sim.NewRNG(21).Stream("phy"), params)
	dcfg := driver.Config{NumVIFs: 2, LLTimeout: 100 * time.Millisecond, JoinWindow: 2 * time.Second}
	drv := driver.New(eng, sim.NewRNG(22), medium, dot11.MAC(1), func() geo.Point { return geo.Point{} }, dcfg)
	remote := ipnet.AddrFrom4(198, 18, 0, 1)
	cfg := Config{Schedule: ch1Sched(), TestTarget: remote}
	m := New(eng, sim.NewRNG(23), drv, cfg)
	ups := 0
	m.OnLinkUp = func(*Link) { ups++ }

	gw := ipnet.AddrFrom4(10, 1, 0, 1)
	apCfg := ap.DefaultConfig("portal", dot11.Channel1, gw)
	apCfg.BlockWAN = true
	apCfg.MgmtDelayMin, apCfg.MgmtDelayMax = 2*time.Millisecond, 10*time.Millisecond
	apCfg.DHCP.RespDelayMin, apCfg.DHCP.RespDelayMax = 50*time.Millisecond, 100*time.Millisecond
	ap.New(eng, sim.NewRNG(101), medium, geo.Point{X: 20}, dot11.MAC(1001), apCfg, nil)
	eng.Run(30 * time.Second)

	if ups != 0 {
		t.Fatal("captive portal passed the end-to-end connectivity test")
	}
	if m.Stats().PingFailures == 0 {
		t.Fatal("no ping-stage failures recorded")
	}
	if u, seen := m.Utility(dot11.MAC(1001)); !seen || u < 0.3 || u > 0.9 {
		t.Fatalf("captive AP utility = %v (seen=%v), want mid-range vb score", u, seen)
	}
}

func TestRSSIOnlySelectionIgnoresUtility(t *testing.T) {
	// Two APs: a nearer one with terrible join history and a farther good
	// one. Utility ranking picks the good one; RSSI-only picks the near one.
	pick := func(rssiOnly bool) dot11.MACAddr {
		eng := sim.NewEngine()
		params := phy.Defaults()
		params.Loss = func(float64) float64 { return 0 }
		medium := phy.NewMedium(eng, sim.NewRNG(5).Stream("phy"), params)
		dcfg := driver.Config{NumVIFs: 1, LLTimeout: 100 * time.Millisecond, JoinWindow: time.Second}
		drv := driver.New(eng, sim.NewRNG(6), medium, dot11.MAC(1), func() geo.Point { return geo.Point{} }, dcfg)
		cfg := Config{Schedule: ch1Sched(), SingleAP: true, SelectByRSSIOnly: rssiOnly}
		m := New(eng, sim.NewRNG(7), drv, cfg)
		// Pre-poison the near AP's history.
		near, far := dot11.MAC(1001), dot11.MAC(1002)
		m.scoreJoin(near, StageAssocFailed)
		var first dot11.MACAddr
		m.OnLinkUp = func(l *Link) {
			if first == (dot11.MACAddr{}) {
				first = l.BSSID
			}
		}
		mk := func(mac dot11.MACAddr, x float64, id uint32) {
			gw := ipnet.AddrFrom4(10, byte(id), 0, 1)
			c := ap.DefaultConfig("n", dot11.Channel1, gw)
			c.MgmtDelayMin, c.MgmtDelayMax = 2*time.Millisecond, 5*time.Millisecond
			c.DHCP.RespDelayMin, c.DHCP.RespDelayMax = 20*time.Millisecond, 50*time.Millisecond
			ap.New(eng, sim.NewRNG(int64(50+id)), medium, geo.Point{X: x}, mac, c, nil)
		}
		mk(near, 10, 1)
		mk(far, 40, 2)
		eng.Run(20 * time.Second)
		return first
	}
	if got := pick(false); got != dot11.MAC(1002) {
		t.Fatalf("utility ranking picked %v, want the good far AP", got)
	}
	if got := pick(true); got != dot11.MAC(1001) {
		t.Fatalf("RSSI-only picked %v, want the near AP regardless of history", got)
	}
}

func TestGlobalDHCPBackoffStallsEverything(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), FailureBackoff: 30 * time.Second, GlobalDHCPBackoff: true,
		DHCP: dhcp.ClientConfig{RetryTimeout: 200 * time.Millisecond, AcquireWindow: time.Second}})
	// An AP whose DHCP never answers, plus a healthy AP.
	gw := ipnet.AddrFrom4(10, 7, 0, 1)
	cfg := ap.DefaultConfig("dead-dhcp", dot11.Channel1, gw)
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = 2*time.Millisecond, 5*time.Millisecond
	cfg.DHCP.RespDelayMin, cfg.DHCP.RespDelayMax = 2*time.Minute, 4*time.Minute
	ap.New(r.eng, sim.NewRNG(300), r.medium, geo.Point{X: 10}, dot11.MAC(2000), cfg, nil)
	r.run(8 * time.Second)
	if r.m.Stats().DHCPFailures == 0 {
		t.Fatal("dead DHCP server never failed a join")
	}
	// Healthy AP appears, but the global backoff must hold all joins.
	r.addAP(dot11.Channel1, 9, true)
	started := r.m.Stats().JoinsStarted
	r.run(10 * time.Second)
	if r.m.Stats().JoinsStarted != started {
		t.Fatal("joins started during the global DHCP backoff")
	}
}

func TestExponentialBackoffGrowsAndCaps(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(),
		FailureBackoff: 2 * time.Second, BackoffFactor: 2, BackoffMax: 10 * time.Second,
		DHCP: dhcp.ClientConfig{RetryTimeout: 300 * time.Millisecond, AcquireWindow: time.Second}})
	// An AP whose DHCP server never answers: association succeeds but
	// every join deterministically fails at the DHCP stage.
	zombie := r.addAP(dot11.Channel1, 1, true)
	zombie.SetDHCPFault(dhcp.FaultSilent)

	var embargoes []sim.Time
	streakSeen := 0
	for i := 0; i < 4; i++ {
		prev := r.m.Stats().DHCPFailures
		for r.m.Stats().DHCPFailures == prev {
			r.run(time.Second)
			if r.eng.Now() > 10*time.Minute {
				t.Fatalf("no join failure %d after 10 minutes", i)
			}
		}
		streak, until := r.m.Blacklist(zombie.BSSID())
		if streak != i+1 {
			t.Fatalf("streak after failure %d = %d, want %d", i, streak, i+1)
		}
		streakSeen = streak
		embargoes = append(embargoes, until-r.eng.Now())
	}
	// Embargoes grow ~2× per failure until the cap: 2s, 4s, 8s, 10s.
	for i, want := range []sim.Time{2 * time.Second, 4 * time.Second, 8 * time.Second, 10 * time.Second} {
		got := embargoes[i]
		// Allow the polling loop's 1s granularity on the lower bound.
		if got > want || got < want-time.Second {
			t.Fatalf("embargo %d = %v, want ≈%v (grew %v)", i, got, want, embargoes)
		}
	}
	if streakSeen != 4 {
		t.Fatalf("final streak = %d", streakSeen)
	}
}

func TestBackoffStreakDecays(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(),
		FailureBackoff: time.Second, BackoffFactor: 2, BackoffMax: 8 * time.Second, BackoffDecay: 5 * time.Second})
	bssid := dot11.MAC(2000)
	r.m.noteFailure(bssid)
	r.m.noteFailure(bssid)
	if streak, _ := r.m.Blacklist(bssid); streak != 2 {
		t.Fatalf("streak = %d, want 2", streak)
	}
	// After BackoffDecay with no failures, the next failure starts fresh.
	r.run(6 * time.Second)
	r.m.noteFailure(bssid)
	streak, until := r.m.Blacklist(bssid)
	if streak != 1 {
		t.Fatalf("post-decay streak = %d, want 1", streak)
	}
	if embargo := until - r.eng.Now(); embargo != time.Second {
		t.Fatalf("post-decay embargo = %v, want the base backoff", embargo)
	}
}

func TestSuccessClearsBlacklist(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), FailureBackoff: time.Second})
	a := r.addAP(dot11.Channel1, 1, true)
	r.m.noteFailure(a.BSSID()) // pretend a past failure
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatal("join did not complete")
	}
	if streak, _ := r.m.Blacklist(a.BSSID()); streak != 0 {
		t.Fatalf("streak = %d after successful join, want 0", streak)
	}
}

// leaseRig builds a rig whose single AP hands out leases of the given
// duration, for renewal tests.
func leaseRig(t *testing.T, leaseSecs uint32, cfg Config) (*rig, *ap.AP) {
	t.Helper()
	r := newRig(t, cfg)
	gw := ipnet.AddrFrom4(10, 1, 0, 1)
	acfg := ap.DefaultConfig("net", dot11.Channel1, gw)
	acfg.MgmtDelayMin, acfg.MgmtDelayMax = 2*time.Millisecond, 10*time.Millisecond
	acfg.DHCP.RespDelayMin, acfg.DHCP.RespDelayMax = 50*time.Millisecond, 200*time.Millisecond
	acfg.DHCP.LeaseSecs = leaseSecs
	a := ap.New(r.eng, sim.NewRNG(101), r.medium, geo.Point{X: 20}, dot11.MAC(1001), acfg, nil)
	return r, a
}

func TestLeaseRenewalKeepsLinkUp(t *testing.T) {
	r, _ := leaseRig(t, 8, Config{Schedule: ch1Sched()})
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatal("join did not complete")
	}
	// An 8s lease renews at ~4s. Run long enough for several cycles.
	r.run(30 * time.Second)
	st := r.m.Stats()
	if st.LeaseRenewals < 3 {
		t.Fatalf("LeaseRenewals = %d, want several over 30s with an 8s lease", st.LeaseRenewals)
	}
	if st.RenewalFails != 0 {
		t.Fatalf("RenewalFails = %d, want 0 against a healthy server", st.RenewalFails)
	}
	if len(r.downs) != 0 || len(r.m.ActiveLinks()) != 1 {
		t.Fatalf("link flapped: downs=%d active=%d", len(r.downs), len(r.m.ActiveLinks()))
	}
}

func TestRenewalFailureDemotesLink(t *testing.T) {
	r, a := leaseRig(t, 8, Config{Schedule: ch1Sched(),
		FailureBackoff: time.Minute, // keep the link from instantly rejoining
		DHCP:           dhcp.ClientConfig{RetryTimeout: 300 * time.Millisecond, AcquireWindow: 1500 * time.Millisecond}})
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatal("join did not complete")
	}
	// The DHCP server goes silent before the ~4s renewal fires.
	a.SetDHCPFault(dhcp.FaultSilent)
	r.run(20 * time.Second)
	st := r.m.Stats()
	if st.RenewalFails == 0 {
		t.Fatal("renewal against a silent server never failed")
	}
	if len(r.downs) == 0 {
		t.Fatal("failed renewal did not demote the link")
	}
}

func TestDisableLeaseRenewal(t *testing.T) {
	r, _ := leaseRig(t, 4, Config{Schedule: ch1Sched(), DisableLeaseRenewal: true})
	r.run(30 * time.Second)
	if len(r.ups) != 1 {
		t.Fatal("join did not complete")
	}
	if st := r.m.Stats(); st.LeaseRenewals != 0 {
		t.Fatalf("LeaseRenewals = %d with renewal disabled", st.LeaseRenewals)
	}
}

func TestRecoveryAfterAPCrashReboot(t *testing.T) {
	r := newRig(t, Config{Schedule: ch1Sched(), PingFailLimit: 5, FailureBackoff: time.Second})
	a := r.addAP(dot11.Channel1, 1, true)
	r.run(10 * time.Second)
	if len(r.ups) != 1 {
		t.Fatal("initial join failed")
	}
	a.Crash()
	r.run(10 * time.Second)
	if len(r.downs) != 1 {
		t.Fatalf("downs = %d, want 1 after crash (liveness teardown)", len(r.downs))
	}
	a.Reboot()
	rebootAt := r.eng.Now()
	for len(r.ups) < 2 && r.eng.Now()-rebootAt < 60*time.Second {
		r.run(time.Second)
	}
	if len(r.ups) < 2 {
		t.Fatal("link did not recover within 60s of the reboot")
	}
	if recovery := r.eng.Now() - rebootAt; recovery > 30*time.Second {
		t.Fatalf("recovery took %v, want bounded well under 30s", recovery)
	}
	if len(r.m.ActiveLinks()) != 1 {
		t.Fatal("recovered link not active")
	}
}
