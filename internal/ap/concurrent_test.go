package ap

import (
	"testing"
	"time"

	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipnet"
	"spider/internal/phy"
	"spider/internal/sim"
)

// newWorldPool is newWorld with a bounded DHCP pool, for the
// multi-station lease-pressure tests.
func newWorldPool(t *testing.T, poolSize int) *world {
	t.Helper()
	eng := sim.NewEngine()
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0 }
	w := &world{eng: eng, medium: phy.NewMedium(eng, sim.NewRNG(1).Stream("phy"), params)}
	cfg := DefaultConfig("testnet", dot11.Channel6, gw)
	cfg.Open = true
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = time.Millisecond, 2*time.Millisecond
	cfg.DHCP.RespDelayMin, cfg.DHCP.RespDelayMax = 10*time.Millisecond, 20*time.Millisecond
	cfg.DHCP.PoolSize = poolSize
	w.ap = New(eng, sim.NewRNG(2), w.medium, geo.Point{}, dot11.MAC(1000), cfg,
		func(p ipnet.Packet) { w.uplink = append(w.uplink, p) })
	return w
}

// TestConcurrentJoinersDistinctState: several stations complete
// association and DHCP against one AP with their exchanges interleaved;
// each must end with its own AID and its own lease.
func TestConcurrentJoinersDistinctState(t *testing.T) {
	w := newWorld(t, true)
	const n = 5
	clients := make([]*client, n)
	bssid := w.ap.BSSID()
	for i := range clients {
		clients[i] = w.newClient(dot11.MAC(uint32(1 + i)))
	}
	// Fire every handshake stage for all stations before letting the
	// engine drain, so the AP serves the joins interleaved rather than
	// one at a time.
	for _, c := range clients {
		c.send(dot11.Frame{Type: dot11.TypeAuth, Addr1: bssid, Addr3: bssid,
			Body: (&dot11.AuthBody{SeqNum: 1}).AppendTo(nil)})
	}
	w.eng.Run(w.eng.Now() + 200*time.Millisecond)
	for _, c := range clients {
		c.send(dot11.Frame{Type: dot11.TypeAssocReq, Addr1: bssid, Addr3: bssid})
	}
	w.eng.Run(w.eng.Now() + 200*time.Millisecond)
	for i, c := range clients {
		c.sendDHCP(w, dhcp.Message{Type: dhcp.Discover, XID: uint32(100 + i), ClientMAC: c.radio.MAC()})
	}
	w.eng.Run(w.eng.Now() + time.Second)
	for i, c := range clients {
		offer := c.findDHCP(t, dhcp.Offer)
		c.sendDHCP(w, dhcp.Message{Type: dhcp.Request, XID: uint32(100 + i),
			ClientMAC: c.radio.MAC(), YourIP: offer.YourIP, ServerIP: offer.ServerIP})
	}
	w.eng.Run(w.eng.Now() + time.Second)

	aids := map[uint16]dot11.MACAddr{}
	ips := map[ipnet.Addr]dot11.MACAddr{}
	for _, c := range clients {
		mac := c.radio.MAC()
		assoc, _, hasLease, _ := w.ap.StationState(mac)
		if !assoc || !hasLease {
			t.Fatalf("station %v: assoc=%v lease=%v", mac, assoc, hasLease)
		}
		ar := c.frames(dot11.TypeAssocResp)
		if len(ar) == 0 {
			t.Fatalf("station %v got no assoc response", mac)
		}
		body, err := dot11.DecodeAssocRespBody(ar[0].Body)
		if err != nil || body.Status != 0 {
			t.Fatalf("station %v assoc body = %+v, err=%v", mac, body, err)
		}
		if prev, dup := aids[body.AID]; dup {
			t.Fatalf("AID %d assigned to both %v and %v", body.AID, prev, mac)
		}
		aids[body.AID] = mac
		ack := c.findDHCP(t, dhcp.Ack)
		if prev, dup := ips[ack.YourIP]; dup {
			t.Fatalf("lease %v assigned to both %v and %v", ack.YourIP, prev, mac)
		}
		ips[ack.YourIP] = mac
	}
	if got := w.ap.DHCPServer().LeasesInUse(); got != n {
		t.Fatalf("leases in use = %d, want %d", got, n)
	}
	if got := w.ap.Stats().Associations; got != n {
		t.Fatalf("associations = %d, want %d", got, n)
	}
}

// TestPoolExhaustionUnderConcurrentJoiners: with a 2-address pool and four
// simultaneous joiners, exactly two stations can hold leases and the
// refusals are counted — the bounded-pool behaviour population runs lean
// on.
func TestPoolExhaustionUnderConcurrentJoiners(t *testing.T) {
	w := newWorldPool(t, 2)
	const n = 4
	clients := make([]*client, n)
	bssid := w.ap.BSSID()
	for i := range clients {
		clients[i] = w.newClient(dot11.MAC(uint32(1 + i)))
	}
	for _, c := range clients {
		c.send(dot11.Frame{Type: dot11.TypeAuth, Addr1: bssid, Addr3: bssid,
			Body: (&dot11.AuthBody{SeqNum: 1}).AppendTo(nil)})
	}
	w.eng.Run(w.eng.Now() + 200*time.Millisecond)
	for _, c := range clients {
		c.send(dot11.Frame{Type: dot11.TypeAssocReq, Addr1: bssid, Addr3: bssid})
	}
	w.eng.Run(w.eng.Now() + 200*time.Millisecond)
	for i, c := range clients {
		c.sendDHCP(w, dhcp.Message{Type: dhcp.Discover, XID: uint32(100 + i), ClientMAC: c.radio.MAC()})
	}
	w.eng.Run(w.eng.Now() + 2*time.Second)

	srv := w.ap.DHCPServer()
	if got := srv.LeasesInUse(); got != 2 {
		t.Fatalf("leases in use = %d, want the full pool of 2", got)
	}
	if srv.PoolExhausted == 0 {
		t.Fatal("pool refusals not counted")
	}
	offered := 0
	for _, c := range clients {
		for _, f := range c.frames(dot11.TypeData) {
			pkt, err := ipnet.Decode(f.Body)
			if err != nil || pkt.Proto != ipnet.ProtoUDP {
				continue
			}
			u, err := ipnet.DecodeUDP(pkt.Payload)
			if err != nil || u.DstPort != ipnet.PortDHCPClient {
				continue
			}
			if m, err := dhcp.DecodeMessage(u.Payload); err == nil && m.Type == dhcp.Offer && m.ClientMAC == c.radio.MAC() {
				offered++
				break
			}
		}
	}
	if offered != 2 {
		t.Fatalf("stations holding offers = %d, want 2", offered)
	}
}
