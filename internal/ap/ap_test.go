package ap

import (
	"testing"
	"time"

	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipnet"
	"spider/internal/phy"
	"spider/internal/sim"
)

var gw = ipnet.AddrFrom4(10, 0, 0, 1)

type world struct {
	eng    *sim.Engine
	medium *phy.Medium
	ap     *AP
	uplink []ipnet.Packet
}

func newWorld(t *testing.T, open bool) *world {
	t.Helper()
	eng := sim.NewEngine()
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0 }
	w := &world{eng: eng, medium: phy.NewMedium(eng, sim.NewRNG(1).Stream("phy"), params)}
	cfg := DefaultConfig("testnet", dot11.Channel6, gw)
	cfg.Open = open
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = time.Millisecond, 2*time.Millisecond
	cfg.DHCP.RespDelayMin, cfg.DHCP.RespDelayMax = 10*time.Millisecond, 20*time.Millisecond
	cfg.PSMBufferLimit = 10
	w.ap = New(eng, sim.NewRNG(2), w.medium, geo.Point{}, dot11.MAC(1000), cfg,
		func(p ipnet.Packet) { w.uplink = append(w.uplink, p) })
	return w
}

// client is a bare station for driving the AP directly.
type client struct {
	radio *phy.Radio
	got   []dot11.Frame
}

func (w *world) newClient(mac dot11.MACAddr) *client {
	c := &client{}
	c.radio = w.medium.NewRadio(mac, func() geo.Point { return geo.Point{X: 10} })
	c.radio.SetChannel(dot11.Channel6, nil)
	c.radio.SetReceiver(func(f dot11.Frame, _ phy.RxInfo) { c.got = append(c.got, f) })
	// Let the channel switch (hardware reset) complete before the test
	// transmits anything.
	w.eng.Run(w.eng.Now() + 10*time.Millisecond)
	return c
}

func (c *client) frames(ft dot11.FrameType) []dot11.Frame {
	var out []dot11.Frame
	for _, f := range c.got {
		if f.Type == ft {
			out = append(out, f)
		}
	}
	return out
}

func (c *client) send(f dot11.Frame) { c.radio.Send(f, nil) }

func (c *client) join(w *world, t *testing.T) {
	t.Helper()
	bssid := w.ap.BSSID()
	c.send(dot11.Frame{Type: dot11.TypeAuth, Addr1: bssid, Addr3: bssid, Body: (&dot11.AuthBody{SeqNum: 1}).AppendTo(nil)})
	w.eng.Run(w.eng.Now() + 100*time.Millisecond)
	c.send(dot11.Frame{Type: dot11.TypeAssocReq, Addr1: bssid, Addr3: bssid})
	w.eng.Run(w.eng.Now() + 100*time.Millisecond)
	if assoc, _, _, _ := w.ap.StationState(c.radio.MAC()); !assoc {
		t.Fatal("association failed")
	}
}

// dhcpJoin completes association plus a full DHCP exchange and returns the
// bound address.
func (c *client) dhcpJoin(w *world, t *testing.T) ipnet.Addr {
	t.Helper()
	c.join(w, t)
	msg := dhcp.Message{Type: dhcp.Discover, XID: 77, ClientMAC: c.radio.MAC()}
	c.sendDHCP(w, msg)
	w.eng.Run(w.eng.Now() + time.Second)
	offer := c.findDHCP(t, dhcp.Offer)
	req := dhcp.Message{Type: dhcp.Request, XID: 77, ClientMAC: c.radio.MAC(), YourIP: offer.YourIP, ServerIP: offer.ServerIP}
	c.sendDHCP(w, req)
	w.eng.Run(w.eng.Now() + time.Second)
	ack := c.findDHCP(t, dhcp.Ack)
	return ack.YourIP
}

func (c *client) sendDHCP(w *world, m dhcp.Message) {
	u := ipnet.UDP{SrcPort: ipnet.PortDHCPClient, DstPort: ipnet.PortDHCPServer, Payload: m.Bytes()}
	pkt := ipnet.Packet{Proto: ipnet.ProtoUDP, TTL: 64, Src: ipnet.Unspecified, Dst: ipnet.BroadcastAddr, Payload: u.AppendTo(nil)}
	c.send(dot11.Frame{Type: dot11.TypeData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), Body: pkt.Bytes()})
}

func (c *client) findDHCP(t *testing.T, want dhcp.MessageType) dhcp.Message {
	t.Helper()
	for _, f := range c.frames(dot11.TypeData) {
		pkt, err := ipnet.Decode(f.Body)
		if err != nil || pkt.Proto != ipnet.ProtoUDP {
			continue
		}
		u, err := ipnet.DecodeUDP(pkt.Payload)
		if err != nil || u.DstPort != ipnet.PortDHCPClient {
			continue
		}
		m, err := dhcp.DecodeMessage(u.Payload)
		if err == nil && m.Type == want {
			return m
		}
	}
	t.Fatalf("no DHCP %v received", want)
	return dhcp.Message{}
}

func TestBeaconing(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	w.eng.Run(time.Second)
	beacons := c.frames(dot11.TypeBeacon)
	if len(beacons) < 8 || len(beacons) > 11 {
		t.Fatalf("got %d beacons in 1s, want ≈10", len(beacons))
	}
	body, err := dot11.DecodeBeaconBody(beacons[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if body.SSID != "testnet" || body.Capabilities != 0 {
		t.Fatalf("beacon body = %+v", body)
	}
}

func TestClosedAPAdvertisesPrivacy(t *testing.T) {
	w := newWorld(t, false)
	c := w.newClient(dot11.MAC(1))
	w.eng.Run(300 * time.Millisecond)
	bs := c.frames(dot11.TypeBeacon)
	if len(bs) == 0 {
		t.Fatal("no beacons")
	}
	body, _ := dot11.DecodeBeaconBody(bs[0].Body)
	if body.Capabilities&CapPrivacy == 0 {
		t.Fatal("closed AP missing privacy bit")
	}
}

func TestProbeResponse(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	c.send(dot11.Frame{Type: dot11.TypeProbeReq, Addr1: dot11.Broadcast})
	w.eng.Run(100 * time.Millisecond)
	prs := c.frames(dot11.TypeProbeResp)
	if len(prs) != 1 {
		t.Fatalf("probe responses = %d, want 1", len(prs))
	}
	if prs[0].Addr1 != dot11.MAC(1) {
		t.Fatal("probe response not unicast to requester")
	}
}

func TestJoinHandshake(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	c.join(w, t)
	ar := c.frames(dot11.TypeAssocResp)
	if len(ar) != 1 {
		t.Fatalf("assoc responses = %d", len(ar))
	}
	body, err := dot11.DecodeAssocRespBody(ar[0].Body)
	if err != nil || body.Status != 0 || body.AID == 0 {
		t.Fatalf("assoc body = %+v, err=%v", body, err)
	}
	if w.ap.Stats().Associations != 1 {
		t.Fatalf("associations = %d", w.ap.Stats().Associations)
	}
}

func TestClosedAPRejectsAuth(t *testing.T) {
	w := newWorld(t, false)
	c := w.newClient(dot11.MAC(1))
	bssid := w.ap.BSSID()
	c.send(dot11.Frame{Type: dot11.TypeAuth, Addr1: bssid, Addr3: bssid, Body: (&dot11.AuthBody{SeqNum: 1}).AppendTo(nil)})
	w.eng.Run(100 * time.Millisecond)
	ars := c.frames(dot11.TypeAuthResp)
	if len(ars) != 1 {
		t.Fatalf("auth responses = %d", len(ars))
	}
	body, _ := dot11.DecodeAuthBody(ars[0].Body)
	if body.Status == 0 {
		t.Fatal("closed AP accepted auth")
	}
	if w.ap.Stats().AuthRejects != 1 {
		t.Fatal("AuthRejects not counted")
	}
}

func TestAssocWithoutAuthRejected(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	bssid := w.ap.BSSID()
	c.send(dot11.Frame{Type: dot11.TypeAssocReq, Addr1: bssid, Addr3: bssid})
	w.eng.Run(100 * time.Millisecond)
	ar := c.frames(dot11.TypeAssocResp)
	if len(ar) != 1 {
		t.Fatalf("assoc responses = %d", len(ar))
	}
	body, _ := dot11.DecodeAssocRespBody(ar[0].Body)
	if body.Status == 0 {
		t.Fatal("assoc before auth accepted")
	}
}

func TestDHCPThroughAP(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	if ip.IsUnspecified() {
		t.Fatal("no address bound")
	}
	if _, _, lease, _ := w.ap.StationState(dot11.MAC(1)); !lease {
		t.Fatal("AP did not record the lease")
	}
}

func TestGatewayPing(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	ping := ipnet.EchoRequestPacket(ip, gw, 1, 1)
	c.send(dot11.Frame{Type: dot11.TypeData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), Body: ping.Bytes()})
	w.eng.Run(w.eng.Now() + 100*time.Millisecond)
	found := false
	for _, f := range c.frames(dot11.TypeData) {
		pkt, err := ipnet.Decode(f.Body)
		if err != nil || pkt.Proto != ipnet.ProtoICMP {
			continue
		}
		e, err := ipnet.DecodeEcho(pkt.Payload)
		if err == nil && e.Type == ipnet.ICMPEchoReply && pkt.Dst == ip {
			found = true
		}
	}
	if !found {
		t.Fatal("no echo reply from gateway")
	}
	if w.ap.Stats().PingsAnswered != 1 {
		t.Fatalf("PingsAnswered = %d", w.ap.Stats().PingsAnswered)
	}
}

func TestUplinkForwarding(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	remote := ipnet.AddrFrom4(203, 0, 113, 1)
	pkt := ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: 64, Src: ip, Dst: remote, Payload: []byte("hi")}
	c.send(dot11.Frame{Type: dot11.TypeData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), Body: pkt.Bytes()})
	w.eng.Run(w.eng.Now() + 2*time.Second)
	if len(w.uplink) != 1 {
		t.Fatalf("uplink packets = %d, want 1", len(w.uplink))
	}
	if w.uplink[0].Dst != remote || w.uplink[0].Src != ip {
		t.Fatalf("uplinked %+v", w.uplink[0])
	}
}

func TestDownlinkToStation(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	before := len(c.frames(dot11.TypeData))
	w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: 64, Src: ipnet.AddrFrom4(1, 1, 1, 1), Dst: ip, Payload: []byte("data")})
	w.eng.Run(w.eng.Now() + 2*time.Second)
	if got := len(c.frames(dot11.TypeData)); got != before+1 {
		t.Fatalf("station data frames = %d, want %d", got, before+1)
	}
}

func TestDownlinkUnknownIPDropped(t *testing.T) {
	w := newWorld(t, true)
	w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ipnet.AddrFrom4(9, 9, 9, 9)})
	w.eng.Run(w.eng.Now() + 2*time.Second) // must not panic, nothing delivered
	if w.ap.Stats().DownPackets != 1 {
		t.Fatal("down packet not counted")
	}
}

func TestPSMBuffersDataAfterLease(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	// Enter PSM.
	c.send(dot11.Frame{Type: dot11.TypeNullData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), PowerMgmt: true})
	w.eng.Run(w.eng.Now() + 50*time.Millisecond)
	before := len(c.frames(dot11.TypeData))
	for i := 0; i < 5; i++ {
		w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ip, Payload: []byte("x")})
	}
	w.eng.Run(w.eng.Now() + 200*time.Millisecond)
	if got := len(c.frames(dot11.TypeData)); got != before {
		t.Fatalf("frames delivered during PSM: %d", got-before)
	}
	if _, psm, _, buffered := w.ap.StationState(dot11.MAC(1)); !psm || buffered != 5 {
		t.Fatalf("psm=%v buffered=%d, want true/5", psm, buffered)
	}
	// Wake with PS-Poll: buffer flushes.
	c.send(dot11.Frame{Type: dot11.TypePSPoll, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID()})
	w.eng.Run(w.eng.Now() + 200*time.Millisecond)
	if got := len(c.frames(dot11.TypeData)); got != before+5 {
		t.Fatalf("frames after wake = %d, want %d", got, before+5)
	}
}

func TestPSMBufferCapDrops(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	c.send(dot11.Frame{Type: dot11.TypeNullData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), PowerMgmt: true})
	w.eng.Run(w.eng.Now() + 50*time.Millisecond)
	// Feed 40 small packets (within the backhaul queue limit); the PSM
	// buffer holds 10 and the rest must be dropped at the buffer.
	for i := 0; i < 40; i++ {
		w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ip})
	}
	w.eng.Run(w.eng.Now() + 2*time.Second)
	if got := w.ap.Stats().PSMDropped; got != 30 {
		t.Fatalf("PSMDropped = %d, want 30", got)
	}
	if _, _, _, buffered := w.ap.StationState(dot11.MAC(1)); buffered != 10 {
		t.Fatalf("buffered = %d, want 10", buffered)
	}
}

func TestDHCPResponseNotPSMBuffered(t *testing.T) {
	// A station that associates, enters PSM, and then asks for DHCP should
	// have the response transmitted immediately (and lost if absent), not
	// buffered: join traffic is never held by PSM.
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	c.join(w, t)
	c.send(dot11.Frame{Type: dot11.TypeNullData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), PowerMgmt: true})
	w.eng.Run(w.eng.Now() + 50*time.Millisecond)
	c.sendDHCP(w, dhcp.Message{Type: dhcp.Discover, XID: 5, ClientMAC: dot11.MAC(1)})
	w.eng.Run(w.eng.Now() + time.Second)
	// The offer must have been transmitted (station still on channel, so
	// it arrives), not buffered.
	if _, _, _, buffered := w.ap.StationState(dot11.MAC(1)); buffered != 0 {
		t.Fatalf("join traffic buffered: %d frames", buffered)
	}
	c.findDHCP(t, dhcp.Offer)
}

func TestDeauthDropsState(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	c.send(dot11.Frame{Type: dot11.TypeDeauth, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID()})
	w.eng.Run(w.eng.Now() + 50*time.Millisecond)
	if assoc, _, _, _ := w.ap.StationState(dot11.MAC(1)); assoc {
		t.Fatal("station still associated after deauth")
	}
	// Downlink to its old IP should now drop.
	before := len(c.frames(dot11.TypeData))
	w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ip})
	w.eng.Run(w.eng.Now() + 2*time.Second)
	if len(c.frames(dot11.TypeData)) != before {
		t.Fatal("packet delivered to deauthed station")
	}
}

func TestBackhaulShapesDownlink(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	start := w.eng.Now()
	// 2 Mbit/s backhaul: 50 × 1472 B ≈ 0.59 Mbit ≈ 0.29 s.
	for i := 0; i < 50; i++ {
		w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ip, Payload: make([]byte, 1460)})
	}
	w.eng.Run(w.eng.Now() + 2*time.Second)
	elapsed := w.eng.Now() - start
	if elapsed < 250*time.Millisecond {
		t.Fatalf("50 MTU packets crossed a 2Mbps backhaul in %v", elapsed)
	}
}

func TestCloseSilences(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	w.ap.Close()
	w.eng.Run(time.Second)
	if len(c.got) != 0 {
		t.Fatalf("closed AP emitted %d frames", len(c.got))
	}
}

func TestCaptivePortalBlocksWAN(t *testing.T) {
	eng := sim.NewEngine()
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0 }
	medium := phy.NewMedium(eng, sim.NewRNG(1).Stream("phy"), params)
	cfg := DefaultConfig("captive", dot11.Channel6, gw)
	cfg.BlockWAN = true
	cfg.MgmtDelayMin, cfg.MgmtDelayMax = time.Millisecond, 2*time.Millisecond
	cfg.DHCP.RespDelayMin, cfg.DHCP.RespDelayMax = 10*time.Millisecond, 20*time.Millisecond
	var uplinked []ipnet.Packet
	w := &world{eng: eng, medium: medium}
	w.ap = New(eng, sim.NewRNG(2), medium, geo.Point{}, dot11.MAC(1000), cfg,
		func(p ipnet.Packet) { uplinked = append(uplinked, p) })
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t) // DHCP still works behind the portal

	// Gateway ping still answered locally.
	ping := ipnet.EchoRequestPacket(ip, gw, 1, 1)
	c.send(dot11.Frame{Type: dot11.TypeData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), Body: ping.Bytes()})
	w.eng.Run(w.eng.Now() + 200*time.Millisecond)
	if w.ap.Stats().PingsAnswered != 1 {
		t.Fatal("gateway ping blocked by captive portal")
	}
	// WAN traffic is dropped.
	pkt := ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: 64, Src: ip, Dst: ipnet.AddrFrom4(8, 8, 8, 8)}
	c.send(dot11.Frame{Type: dot11.TypeData, Addr1: w.ap.BSSID(), Addr3: w.ap.BSSID(), Body: pkt.Bytes()})
	w.eng.Run(w.eng.Now() + 500*time.Millisecond)
	if len(uplinked) != 0 {
		t.Fatalf("captive portal leaked %d packets upstream", len(uplinked))
	}
	if w.ap.Stats().WANBlocked != 1 {
		t.Fatalf("WANBlocked = %d, want 1", w.ap.Stats().WANBlocked)
	}
}

func TestCrashSilencesAndWipesState(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	w.ap.Crash()
	if !w.ap.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if assoc, _, lease, _ := w.ap.StationState(dot11.MAC(1)); assoc || lease {
		t.Fatal("station state survived the crash")
	}
	// No beacons, no probe or auth responses while down.
	before := len(c.got)
	c.send(dot11.Frame{Type: dot11.TypeProbeReq, Addr1: dot11.Broadcast})
	bssid := w.ap.BSSID()
	c.send(dot11.Frame{Type: dot11.TypeAuth, Addr1: bssid, Addr3: bssid, Body: (&dot11.AuthBody{SeqNum: 1}).AppendTo(nil)})
	w.eng.Run(w.eng.Now() + time.Second)
	if len(c.got) != before {
		t.Fatalf("crashed AP emitted %d frames", len(c.got)-before)
	}
	// Downlink to the pre-crash lease drops.
	w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ip})
	w.eng.Run(w.eng.Now() + time.Second)
	if len(c.got) != before {
		t.Fatal("crashed AP forwarded downlink traffic")
	}
	if w.ap.Stats().Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", w.ap.Stats().Crashes)
	}
}

func TestRebootRestoresJoinability(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	first := c.dhcpJoin(w, t)
	w.ap.Crash()
	w.eng.Run(w.eng.Now() + time.Second)
	w.ap.Reboot()
	if w.ap.Crashed() {
		t.Fatal("Crashed() = true after Reboot")
	}
	// The station can join again from scratch; the rebooted server hands
	// out a fresh pool, so the first address comes back.
	c.got = nil
	again := c.dhcpJoin(w, t)
	if again != first {
		t.Fatalf("post-reboot lease = %v, want pool restart to reissue %v", again, first)
	}
	if w.ap.Stats().Reboots != 1 {
		t.Fatalf("Reboots = %d, want 1", w.ap.Stats().Reboots)
	}
	// Beacons resume.
	before := len(c.frames(dot11.TypeBeacon))
	w.eng.Run(w.eng.Now() + time.Second)
	if got := len(c.frames(dot11.TypeBeacon)); got <= before {
		t.Fatal("no beacons after reboot")
	}
}

func TestCrashGatesInFlightDHCPReply(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	c.join(w, t)
	// Fire a Discover, then crash the AP before its delayed reply departs
	// (DHCP RespDelayMin is 10ms in newWorld).
	c.sendDHCP(w, dhcp.Message{Type: dhcp.Discover, XID: 9, ClientMAC: dot11.MAC(1)})
	w.eng.Run(w.eng.Now() + time.Millisecond)
	w.ap.Crash()
	w.eng.Run(w.eng.Now() + time.Second)
	for _, f := range c.frames(dot11.TypeData) {
		pkt, err := ipnet.Decode(f.Body)
		if err != nil || pkt.Proto != ipnet.ProtoUDP {
			continue
		}
		u, err := ipnet.DecodeUDP(pkt.Payload)
		if err == nil && u.DstPort == ipnet.PortDHCPClient {
			t.Fatal("DHCP reply escaped a crashed AP")
		}
	}
}

func TestBeaconSuppression(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	w.ap.SetBeaconing(false)
	w.eng.Run(w.eng.Now() + time.Second)
	if got := len(c.frames(dot11.TypeBeacon)); got != 0 {
		t.Fatalf("suppressed AP sent %d beacons", got)
	}
	// Probe responses still work: the AP is up, just quiet.
	c.send(dot11.Frame{Type: dot11.TypeProbeReq, Addr1: dot11.Broadcast})
	w.eng.Run(w.eng.Now() + 100*time.Millisecond)
	if len(c.frames(dot11.TypeProbeResp)) != 1 {
		t.Fatal("suppressed AP stopped answering probes")
	}
	w.ap.SetBeaconing(true)
	w.eng.Run(w.eng.Now() + time.Second)
	if got := len(c.frames(dot11.TypeBeacon)); got < 8 {
		t.Fatalf("beaconing did not resume: %d beacons in 1s", got)
	}
}

func TestSetDHCPFaultReachesServer(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	c.join(w, t)
	w.ap.SetDHCPFault(dhcp.FaultSilent)
	c.sendDHCP(w, dhcp.Message{Type: dhcp.Discover, XID: 3, ClientMAC: dot11.MAC(1)})
	w.eng.Run(w.eng.Now() + time.Second)
	for _, f := range c.frames(dot11.TypeData) {
		pkt, err := ipnet.Decode(f.Body)
		if err != nil || pkt.Proto != ipnet.ProtoUDP {
			continue
		}
		if u, err := ipnet.DecodeUDP(pkt.Payload); err == nil && u.DstPort == ipnet.PortDHCPClient {
			t.Fatal("silenced DHCP server replied")
		}
	}
	w.ap.SetDHCPFault(dhcp.FaultNone)
	c.sendDHCP(w, dhcp.Message{Type: dhcp.Discover, XID: 4, ClientMAC: dot11.MAC(1)})
	w.eng.Run(w.eng.Now() + time.Second)
	c.findDHCP(t, dhcp.Offer)
}

func TestBackhaulFaultKnobs(t *testing.T) {
	w := newWorld(t, true)
	c := w.newClient(dot11.MAC(1))
	ip := c.dhcpJoin(w, t)
	w.ap.SetBackhaulBlackhole(true)
	before := len(c.frames(dot11.TypeData))
	w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ip, Payload: []byte("x")})
	w.eng.Run(w.eng.Now() + time.Second)
	if got := len(c.frames(dot11.TypeData)); got != before {
		t.Fatal("blackholed downlink delivered")
	}
	w.ap.SetBackhaulBlackhole(false)
	w.ap.SetBackhaulExtraDelay(200 * time.Millisecond)
	w.ap.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, Dst: ip, Payload: []byte("y")})
	w.eng.Run(w.eng.Now() + 150*time.Millisecond)
	if got := len(c.frames(dot11.TypeData)); got != before {
		t.Fatal("downlink arrived before the injected latency elapsed")
	}
	w.eng.Run(w.eng.Now() + time.Second)
	if got := len(c.frames(dot11.TypeData)); got != before+1 {
		t.Fatalf("frames = %d, want %d (delayed packet must still arrive)", got, before+1)
	}
}
