// Package ap implements a simulated 802.11 access point: beaconing, the
// auth/assoc join handshake, power-save-mode buffering of data frames, a
// DHCP server behind the paper's β response-delay distribution, gateway
// ICMP, and a rate-limited wired backhaul in both directions.
//
// One behaviour is central to the paper and modelled exactly: join-phase
// traffic (probe, auth, assoc, and DHCP responses) is never buffered by
// PSM. If the client is away on another channel when a join response is
// transmitted, the response is lost and the client must retransmit — this
// is why fractional channel schedules depress join success.
package ap

import (
	"fmt"

	"spider/internal/backhaul"
	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipam"
	"spider/internal/ipnet"
	"spider/internal/mempool"
	"spider/internal/phy"
	"spider/internal/sim"
)

// CapPrivacy is the beacon capability bit advertising an encrypted network.
const CapPrivacy uint16 = 0x0010

// Config describes one access point.
type Config struct {
	SSID    string
	Channel dot11.Channel
	// Open marks a joinable network; closed APs beacon with the privacy
	// bit and refuse authentication.
	Open bool
	// Gateway is the AP's LAN address (DHCP server and ping target).
	Gateway ipnet.Addr
	// BeaconInterval defaults to 100 ms.
	BeaconInterval sim.Time
	// MgmtDelayMin/Max bound the uniform processing delay before
	// management responses (probe, auth, assoc).
	MgmtDelayMin sim.Time
	MgmtDelayMax sim.Time
	// PSMBufferLimit caps buffered frames per dozing station.
	PSMBufferLimit int
	// WirelessQueueLimit caps frames queued at the radio.
	WirelessQueueLimit int
	// DHCP configures the embedded DHCP server. Gateway/PoolBase are
	// overwritten with Config.Gateway.
	DHCP dhcp.ServerConfig
	// IPAM, when non-nil, is the ipam binding the DHCP server allocates
	// through — how a scenario puts many APs of one backhaul segment on a
	// shared pool hierarchy with backup failover and per-AP reserves.
	// Nil keeps the legacy standalone per-AP pool (PoolBase/PoolSize).
	IPAM *ipam.Binding
	// Backhaul configures each direction of the wired link. RateBps is
	// the AP's offered end-to-end bandwidth.
	Backhaul backhaul.Config
	// BlockWAN drops all uplink traffic except DHCP and gateway ICMP — a
	// captive portal. Clients associate and obtain leases but get no
	// internet connectivity.
	BlockWAN bool
}

// DefaultConfig returns an open AP on the given channel with typical
// residential parameters.
func DefaultConfig(ssid string, ch dot11.Channel, gateway ipnet.Addr) Config {
	return Config{
		SSID:               ssid,
		Channel:            ch,
		Open:               true,
		Gateway:            gateway,
		BeaconInterval:     100 * 1000 * 1000, // 100 ms
		MgmtDelayMin:       2 * 1000 * 1000,
		MgmtDelayMax:       30 * 1000 * 1000,
		PSMBufferLimit:     100,
		WirelessQueueLimit: 50,
		DHCP:               dhcp.DefaultServerConfig(gateway),
		// 100 ms one-way wired delay gives the ≈200 ms RTTs of the
		// paper's testbed ("400 ms ... is less than two RTTs").
		Backhaul: backhaul.Config{RateBps: 2e6, Delay: 100 * 1000 * 1000},
	}
}

type station struct {
	mac      dot11.MACAddr
	authed   bool
	assoc    bool
	psm      bool
	hasLease bool
	aid      uint16
	buffer   []ipnet.Packet
}

// Stats aggregates AP counters for experiments.
type Stats struct {
	Associations  int
	AuthRejects   int
	Crashes       int
	Reboots       int
	PSMBuffered   uint64
	PSMDropped    uint64
	QueueDropped  uint64
	UplinkPackets uint64
	DownPackets   uint64
	PingsAnswered uint64
	WANBlocked    uint64
}

// AP is one simulated access point.
type AP struct {
	eng *sim.Engine
	rng *sim.RNG
	cfg Config

	radio   *phy.Radio
	dhcpSrv *dhcp.Server
	down    *backhaul.Link
	up      *backhaul.Link
	uplink  func(ipnet.Packet)

	stations map[dot11.MACAddr]*station
	ipToMAC  map[ipnet.Addr]dot11.MACAddr

	outstanding int
	nextAID     uint16
	stopBeacons func()
	crashed     bool
	beaconing   bool

	// beaconBody is the serialized beacon/probe-response body. SSID,
	// interval, and capabilities are fixed at New, so it is built once
	// rather than on every 100 ms tick.
	beaconBody []byte
	// decOutstanding is the status callback used when the caller passed
	// none, cached so queue-capped sends don't allocate a closure each.
	decOutstanding func(bool)
	// mgmtFree pools the deferred management-response jobs.
	mgmtFree *mgmtJob
	// bodies backs downlink data-frame payloads; the PHY serializes
	// frames onto its own arena, and arena bytes are never reused, so
	// aliasing is safe.
	bodies mempool.ByteArena

	stats Stats
}

// mgmtJob is a pooled deferred management response (probe, auth, assoc),
// replacing a per-frame closure on the AP's busiest receive path.
type mgmtJob struct {
	a    *AP
	kind dot11.FrameType
	from dot11.MACAddr
	next *mgmtJob
}

func (j *mgmtJob) RunEvent() {
	a, kind, from := j.a, j.kind, j.from
	j.next = a.mgmtFree
	a.mgmtFree = j
	switch kind {
	case dot11.TypeProbeReq:
		a.sendProbeResp(from)
	case dot11.TypeAuth:
		a.handleAuth(from)
	case dot11.TypeAssocReq:
		a.handleAssoc(from)
	}
}

// scheduleMgmt queues a management response after the sampled processing
// delay using a pooled job.
func (a *AP) scheduleMgmt(kind dot11.FrameType, from dot11.MACAddr) {
	j := a.mgmtFree
	if j == nil {
		j = &mgmtJob{a: a}
	} else {
		a.mgmtFree = j.next
		j.next = nil
	}
	j.kind = kind
	j.from = from
	a.eng.ScheduleCall(a.mgmtDelay(), j)
}

// New creates an AP at a fixed position and starts beaconing. uplink
// receives packets leaving through the AP's backhaul toward the internet;
// the scenario wires it to remote endpoints.
func New(eng *sim.Engine, rng *sim.RNG, medium *phy.Medium, pos geo.Point, mac dot11.MACAddr, cfg Config, uplink func(ipnet.Packet)) *AP {
	if cfg.BeaconInterval <= 0 {
		cfg.BeaconInterval = 100 * 1000 * 1000
	}
	if cfg.PSMBufferLimit <= 0 {
		cfg.PSMBufferLimit = 100
	}
	if cfg.WirelessQueueLimit <= 0 {
		cfg.WirelessQueueLimit = 50
	}
	if cfg.MgmtDelayMax < cfg.MgmtDelayMin {
		cfg.MgmtDelayMax = cfg.MgmtDelayMin
	}
	cfg.DHCP.Gateway = cfg.Gateway
	cfg.DHCP.PoolBase = cfg.Gateway
	cfg.DHCP.Binding = cfg.IPAM
	a := &AP{
		eng:       eng,
		rng:       rng,
		cfg:       cfg,
		uplink:    uplink,
		beaconing: true,
		stations:  make(map[dot11.MACAddr]*station),
		ipToMAC:   make(map[ipnet.Addr]dot11.MACAddr),
	}
	a.decOutstanding = func(bool) { a.outstanding-- }
	body := dot11.BeaconBody{
		SSID:           cfg.SSID,
		BeaconInterval: uint16(cfg.BeaconInterval / (1000 * 1000)),
		Capabilities:   a.capabilities(),
	}
	a.beaconBody = body.AppendTo(nil)
	a.radio = medium.NewRadio(mac, func() geo.Point { return pos })
	a.radio.SetChannel(cfg.Channel, nil)
	a.radio.SetReceiver(a.onFrame)
	a.dhcpSrv = dhcp.NewServer(eng, rng.Stream("dhcp"), cfg.DHCP)
	a.down = backhaul.NewLink(eng, cfg.Backhaul, a.fromWire)
	a.up = backhaul.NewLink(eng, cfg.Backhaul, func(p ipnet.Packet) {
		a.stats.UplinkPackets++
		if a.uplink != nil {
			a.uplink(p)
		}
	})
	a.stopBeacons = eng.Ticker(cfg.BeaconInterval, a.beacon)
	return a
}

// Close silences the AP.
func (a *AP) Close() {
	a.stopBeacons()
	a.radio.Close()
}

// BSSID returns the AP's MAC address.
func (a *AP) BSSID() dot11.MACAddr { return a.radio.MAC() }

// Gateway returns the AP's LAN gateway address.
func (a *AP) Gateway() ipnet.Addr { return a.cfg.Gateway }

// Channel returns the AP's operating channel.
func (a *AP) Channel() dot11.Channel { return a.cfg.Channel }

// SSID returns the AP's network name.
func (a *AP) SSID() string { return a.cfg.SSID }

// Config returns the effective configuration.
func (a *AP) Config() Config { return a.cfg }

// Stats returns a snapshot of the AP counters.
func (a *AP) Stats() Stats { return a.stats }

// DHCPServer exposes the embedded server (tests and experiments).
func (a *AP) DHCPServer() *dhcp.Server { return a.dhcpSrv }

// Crash power-cycles the AP off: the radio leaves the air and every bit
// of soft state — stations, IP bindings, DHCP leases, fault modes — is
// lost, exactly as when a residential AP loses power. The AP stays down
// until Reboot.
func (a *AP) Crash() {
	if a.crashed {
		return
	}
	a.crashed = true
	a.stats.Crashes++
	a.radio.SetDown(true)
	a.stations = make(map[dot11.MACAddr]*station)
	a.ipToMAC = make(map[ipnet.Addr]dot11.MACAddr)
	a.nextAID = 0
	a.dhcpSrv.Reset()
}

// Reboot brings a crashed AP back up with empty state: it resumes
// beaconing and clients must re-associate and re-acquire leases.
func (a *AP) Reboot() {
	if !a.crashed {
		return
	}
	a.crashed = false
	a.stats.Reboots++
	a.radio.SetDown(false)
}

// Crashed reports whether the AP is currently down.
func (a *AP) Crashed() bool { return a.crashed }

// SetBeaconing enables or suppresses beacon transmission (fault
// injection); the AP otherwise keeps serving associated clients.
func (a *AP) SetBeaconing(on bool) { a.beaconing = on }

// SetDHCPFault switches the embedded DHCP server's fault mode.
func (a *AP) SetDHCPFault(mode dhcp.FaultMode) { a.dhcpSrv.SetFault(mode) }

// SetBackhaulBlackhole blackholes both directions of the wired link.
func (a *AP) SetBackhaulBlackhole(on bool) {
	a.down.SetBlackhole(on)
	a.up.SetBlackhole(on)
}

// SetBackhaulExtraDelay injects extra one-way delay in both directions.
func (a *AP) SetBackhaulExtraDelay(extra sim.Time) {
	a.down.SetExtraDelay(extra)
	a.up.SetExtraDelay(extra)
}

// FromInternet injects a packet arriving from the wired side; it traverses
// the rate-limited downlink before reaching the wireless side.
func (a *AP) FromInternet(p ipnet.Packet) { a.down.Send(p) }

// Downlink returns the wired downlink for queue inspection.
func (a *AP) Downlink() *backhaul.Link { return a.down }

func (a *AP) capabilities() uint16 {
	if a.cfg.Open {
		return 0
	}
	return CapPrivacy
}

func (a *AP) beacon() {
	if a.crashed || !a.beaconing {
		return
	}
	a.sendFrame(dot11.Frame{
		Type:  dot11.TypeBeacon,
		Addr1: dot11.Broadcast,
		Addr3: a.BSSID(),
		Seq:   a.radio.NextSeq(),
		Body:  a.beaconBody,
	}, nil)
}

// sendFrame transmits with the wireless queue cap applied.
func (a *AP) sendFrame(f dot11.Frame, status func(bool)) {
	if a.outstanding >= a.cfg.WirelessQueueLimit {
		a.stats.QueueDropped++
		if status != nil {
			status(false)
		}
		return
	}
	a.outstanding++
	if status == nil {
		a.radio.Send(f, a.decOutstanding)
		return
	}
	a.radio.Send(f, func(ok bool) {
		a.outstanding--
		status(ok)
	})
}

// mgmtDelay samples the management processing delay.
func (a *AP) mgmtDelay() sim.Time {
	return a.rng.UniformDuration(a.cfg.MgmtDelayMin, a.cfg.MgmtDelayMax+1)
}

func (a *AP) onFrame(f dot11.Frame, info phy.RxInfo) {
	if a.crashed {
		return
	}
	switch f.Type {
	case dot11.TypeProbeReq:
		a.scheduleMgmt(dot11.TypeProbeReq, f.Addr2)
	case dot11.TypeAuth:
		if f.Addr3 != a.BSSID() && !f.Addr1.IsBroadcast() && f.Addr1 != a.BSSID() {
			return
		}
		a.scheduleMgmt(dot11.TypeAuth, f.Addr2)
	case dot11.TypeAssocReq:
		if f.Addr1 != a.BSSID() {
			return
		}
		a.scheduleMgmt(dot11.TypeAssocReq, f.Addr2)
	case dot11.TypeDeauth:
		if f.Addr1 != a.BSSID() {
			return
		}
		a.dropStation(f.Addr2)
	case dot11.TypeNullData:
		if f.Addr1 != a.BSSID() {
			return
		}
		a.setPSM(f.Addr2, f.PowerMgmt)
	case dot11.TypePSPoll:
		if f.Addr1 != a.BSSID() {
			return
		}
		if st := a.stations[f.Addr2]; st != nil {
			st.psm = false
			a.flush(st)
		}
	case dot11.TypeData:
		if f.Addr1 != a.BSSID() {
			return
		}
		// Data frames may also carry the PM bit.
		if st := a.stations[f.Addr2]; st != nil && st.assoc {
			st.psm = f.PowerMgmt
		}
		a.handleData(f)
	}
}

func (a *AP) sendProbeResp(to dot11.MACAddr) {
	if a.crashed {
		return
	}
	a.sendFrame(dot11.Frame{
		Type:  dot11.TypeProbeResp,
		Addr1: to,
		Addr3: a.BSSID(),
		Seq:   a.radio.NextSeq(),
		Body:  a.beaconBody,
	}, nil)
}

func (a *AP) handleAuth(from dot11.MACAddr) {
	if a.crashed {
		return
	}
	status := uint16(0)
	if !a.cfg.Open {
		status = 1
		a.stats.AuthRejects++
	} else {
		st := a.stations[from]
		if st == nil {
			st = &station{mac: from}
			a.stations[from] = st
		}
		st.authed = true
	}
	body := dot11.AuthBody{SeqNum: 2, Status: status}
	a.sendFrame(dot11.Frame{
		Type:  dot11.TypeAuthResp,
		Addr1: from,
		Addr3: a.BSSID(),
		Seq:   a.radio.NextSeq(),
		Body:  body.AppendTo(nil),
	}, nil)
}

func (a *AP) handleAssoc(from dot11.MACAddr) {
	if a.crashed {
		return
	}
	st := a.stations[from]
	status := uint16(0)
	var aid uint16
	if st == nil || !st.authed || !a.cfg.Open {
		status = 1
	} else {
		if !st.assoc {
			a.nextAID++
			st.aid = a.nextAID
			st.assoc = true
			a.stats.Associations++
		}
		aid = st.aid
	}
	body := dot11.AssocRespBody{Status: status, AID: aid}
	a.sendFrame(dot11.Frame{
		Type:  dot11.TypeAssocResp,
		Addr1: from,
		Addr3: a.BSSID(),
		Seq:   a.radio.NextSeq(),
		Body:  body.AppendTo(nil),
	}, nil)
}

func (a *AP) dropStation(mac dot11.MACAddr) {
	if st := a.stations[mac]; st != nil {
		delete(a.stations, mac)
		for ip, m := range a.ipToMAC {
			if m == mac {
				delete(a.ipToMAC, ip)
			}
		}
		_ = st
	}
}

func (a *AP) setPSM(mac dot11.MACAddr, doze bool) {
	st := a.stations[mac]
	if st == nil || !st.assoc {
		return
	}
	st.psm = doze
	if !doze {
		a.flush(st)
	}
}

// flush transmits all PSM-buffered packets for a station.
func (a *AP) flush(st *station) {
	buffered := st.buffer
	st.buffer = nil
	for _, p := range buffered {
		a.transmitDown(st.mac, p)
	}
}

// handleData processes an uplink data frame from an associated station.
func (a *AP) handleData(f dot11.Frame) {
	st := a.stations[f.Addr2]
	if st == nil || !st.assoc {
		return // not associated: a real AP would deauth; the client re-joins
	}
	pkt, err := ipnet.Decode(f.Body)
	if err != nil {
		return
	}
	// DHCP traffic terminates at the AP.
	if pkt.Proto == ipnet.ProtoUDP {
		if udp, err := ipnet.DecodeUDP(pkt.Payload); err == nil && udp.DstPort == ipnet.PortDHCPServer {
			a.handleDHCP(st.mac, udp.Payload)
			return
		}
	}
	// Gateway-addressed ICMP answers locally.
	if pkt.Dst == a.cfg.Gateway && pkt.Proto == ipnet.ProtoICMP {
		if echo, err := ipnet.DecodeEcho(pkt.Payload); err == nil && echo.Type == ipnet.ICMPEchoRequest {
			a.stats.PingsAnswered++
			reply := ipnet.EchoReplyPacket(pkt, echo)
			// Liveness replies are join-class traffic: never PSM-buffered.
			a.transmitDown(st.mac, reply)
		}
		return
	}
	// Everything else leaves through the backhaul — unless a captive
	// portal is in the way.
	if a.cfg.BlockWAN {
		a.stats.WANBlocked++
		return
	}
	a.up.Send(pkt)
}

func (a *AP) handleDHCP(mac dot11.MACAddr, payload []byte) {
	msg, err := dhcp.DecodeMessage(payload)
	if err != nil || msg.ClientMAC != mac {
		return
	}
	a.dhcpSrv.Handle(msg, func(resp Message) {
		if a.crashed {
			return // the response was in flight when the AP lost power
		}
		if resp.Type == dhcp.Ack {
			a.ipToMAC[resp.YourIP] = mac
			if st := a.stations[mac]; st != nil {
				st.hasLease = true
			}
		}
		u := ipnet.UDP{SrcPort: ipnet.PortDHCPServer, DstPort: ipnet.PortDHCPClient, Payload: resp.Bytes()}
		pkt := ipnet.Packet{
			Proto: ipnet.ProtoUDP, TTL: ipnet.DefaultTTL,
			Src: a.cfg.Gateway, Dst: resp.YourIP, Payload: u.AppendTo(nil),
		}
		// DHCP responses are join traffic: transmitted immediately, lost
		// if the client is off-channel (the paper's key constraint).
		a.transmitDown(mac, pkt)
	})
}

// Message aliases dhcp.Message for the handler callback signature.
type Message = dhcp.Message

// fromWire receives packets that crossed the downlink; route to stations.
func (a *AP) fromWire(p ipnet.Packet) {
	if a.crashed {
		return
	}
	a.stats.DownPackets++
	mac, ok := a.ipToMAC[p.Dst]
	if !ok {
		return
	}
	st := a.stations[mac]
	if st == nil || !st.assoc {
		return
	}
	if st.psm && st.hasLease {
		if len(st.buffer) >= a.cfg.PSMBufferLimit {
			a.stats.PSMDropped++
			return
		}
		st.buffer = append(st.buffer, p)
		a.stats.PSMBuffered++
		return
	}
	a.transmitDown(mac, p)
}

// transmitDown wraps an IP packet in a data frame to the station.
func (a *AP) transmitDown(mac dot11.MACAddr, p ipnet.Packet) {
	a.sendFrame(dot11.Frame{
		Type:  dot11.TypeData,
		Addr1: mac,
		Addr3: a.BSSID(),
		Seq:   a.radio.NextSeq(),
		Body:  p.AppendTo(a.bodies.Take(p.WireLen())),
	}, nil)
}

// StationState reports a station's association state for tests.
func (a *AP) StationState(mac dot11.MACAddr) (assoc, psm, lease bool, buffered int) {
	st := a.stations[mac]
	if st == nil {
		return false, false, false, 0
	}
	return st.assoc, st.psm, st.hasLease, len(st.buffer)
}

func (a *AP) String() string {
	return fmt.Sprintf("ap{%s %s %v gw=%s}", a.cfg.SSID, a.BSSID(), a.cfg.Channel, a.cfg.Gateway)
}
