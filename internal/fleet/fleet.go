// Package fleet is the experiment-execution engine: it shards independent
// simulation jobs (per-seed trials, per-config town drives, per-point model
// sweeps) across a bounded worker pool while preserving bit-for-bit
// determinism. Three properties make parallel sweeps safe:
//
//  1. Jobs are pure functions of their inputs — each owns its seeded RNG
//     and sim engine, so execution order cannot perturb results.
//  2. Results are merged in canonical submission order regardless of
//     completion order, so rendered output is byte-identical to a
//     sequential run.
//  3. A panicking job is isolated: the panic is captured with its stack,
//     optionally retried, and reported as a typed per-job error, so one
//     diverging scenario cannot kill a 200-job sweep.
//
// A content-keyed single-flight cache (see cache.go) memoizes expensive
// shared computations such as the town study, and a telemetry layer (see
// telemetry.go) reports queue depth, per-job wall time, and an ETA.
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"spider/internal/obs"
)

// Config parameterizes a Pool.
type Config struct {
	// Workers bounds concurrent job execution; <=0 means runtime.NumCPU().
	Workers int
	// Retries is how many times a panicking job is re-run before it is
	// marked failed. Plain (non-panic) job errors are never retried.
	Retries int
	// OnEvent, when non-nil, receives telemetry for every job lifecycle
	// transition. Callbacks are serialized and must be fast.
	OnEvent func(Event)
	// Clock supplies every wall-clock read the pool makes (job wall
	// times, elapsed, ETA). Nil means the real clock. Wall time feeds
	// telemetry only — never results or cache keys — so substituting
	// obs.NewManual makes the pool's reporting fully deterministic.
	Clock obs.Clock
}

// Job is one independent unit of work.
type Job struct {
	// ID labels the job in telemetry and error reports.
	ID string
	// Key, when non-empty, memoizes the job's result in the pool's
	// content-keyed cache: a second job with the same key reuses the
	// first result instead of recomputing it.
	Key string
	// Run computes the result. It must be a pure function of state
	// captured at job construction; it may panic.
	Run func() (any, error)
}

// JobResult is the outcome of one job, reported in submission order.
type JobResult struct {
	ID       string
	Value    any
	Err      *JobError
	Wall     time.Duration
	Attempts int
	CacheHit bool
}

// JobError is the typed failure report for a single job.
type JobError struct {
	ID       string
	Index    int
	Attempts int
	// Panic holds the recovered panic value when the job panicked.
	Panic any
	// Stack is the goroutine stack at the final panic.
	Stack string
	// Err holds a plain job error or a cancellation error.
	Err error
}

func (e *JobError) Error() string {
	switch {
	case e.Panic != nil:
		return fmt.Sprintf("fleet: job %q (index %d) panicked after %d attempt(s): %v", e.ID, e.Index, e.Attempts, e.Panic)
	case e.Err != nil:
		return fmt.Sprintf("fleet: job %q (index %d): %v", e.ID, e.Index, e.Err)
	default:
		return fmt.Sprintf("fleet: job %q (index %d) failed", e.ID, e.Index)
	}
}

func (e *JobError) Unwrap() error { return e.Err }

// SweepError aggregates every job failure in one Map call. The sweep still
// completes: successful results are present alongside this report.
type SweepError struct {
	Total  int
	Failed []*JobError
}

func (e *SweepError) Error() string {
	if len(e.Failed) == 1 {
		return fmt.Sprintf("fleet: 1 of %d jobs failed: %v", e.Total, e.Failed[0])
	}
	return fmt.Sprintf("fleet: %d of %d jobs failed (first: %v)", len(e.Failed), e.Total, e.Failed[0])
}

// Pool executes jobs on a fixed set of workers.
type Pool struct {
	cfg     Config
	clock   obs.Clock
	workers int
	tasks   chan *task
	done    sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	start   time.Time
	queued  int
	running int
	ndone   int
	nfailed int
	hits    int
	misses  int
	wallSum time.Duration
	health  Health
	events  obs.Summary

	cacheMu sync.Mutex
	cache   map[string]*cacheEntry
}

type task struct {
	job   Job
	idx   int
	ctx   context.Context
	out   *JobResult
	wg    *sync.WaitGroup
	group *Group
}

// New starts a pool. Close it when every sweep has returned.
func New(cfg Config) *Pool {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = obs.Wall()
	}
	p := &Pool{
		cfg:     cfg,
		clock:   clock,
		workers: w,
		tasks:   make(chan *task),
		start:   clock.Now(),
		cache:   make(map[string]*cacheEntry),
	}
	p.done.Add(w)
	for i := 0; i < w; i++ {
		go p.worker()
	}
	return p
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers. It must only be called after all Map and Do
// calls have returned; further use of the pool panics.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
	p.done.Wait()
}

// Map executes jobs on the pool and returns their results in job order,
// regardless of completion order. Failed jobs are reported both in their
// JobResult slot and in the returned *SweepError; successful results are
// always present. A canceled ctx skips jobs that have not started.
func (p *Pool) Map(ctx context.Context, jobs []Job) ([]JobResult, error) {
	return p.Group("").Map(ctx, jobs)
}

// Map is Pool.Map with this group's telemetry attribution.
func (g *Group) Map(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := g.pool
	results := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		t := &task{job: jobs[i], idx: i, ctx: ctx, out: &results[i], wg: &wg, group: g}
		p.noteQueued(t)
		select {
		case p.tasks <- t:
		case <-ctx.Done():
			p.finishTask(t, JobResult{
				ID:  t.job.ID,
				Err: &JobError{ID: t.job.ID, Index: t.idx, Err: ctx.Err()},
			}, time.Time{})
		}
	}
	wg.Wait()
	var failed []*JobError
	for i := range results {
		results[i].ID = jobs[i].ID
		if results[i].Err != nil {
			failed = append(failed, results[i].Err)
		}
	}
	if len(failed) > 0 {
		return results, &SweepError{Total: len(jobs), Failed: failed}
	}
	return results, nil
}

func (p *Pool) worker() {
	defer p.done.Done()
	for t := range p.tasks {
		p.exec(t)
	}
}

func (p *Pool) exec(t *task) {
	if t.ctx.Err() != nil {
		p.finishTask(t, JobResult{
			ID:  t.job.ID,
			Err: &JobError{ID: t.job.ID, Index: t.idx, Err: t.ctx.Err()},
		}, time.Time{})
		return
	}
	p.noteStarted(t)
	start := p.clock.Now()
	var res JobResult
	if t.job.Key != "" {
		value, err, hit := p.cacheDo(t.group, t.job.Key, func() (any, error) {
			v, _, jerr := p.attempt(t)
			if jerr != nil {
				return nil, jerr
			}
			return v, nil
		})
		res = JobResult{ID: t.job.ID, Value: value, Attempts: 1, CacheHit: hit}
		if err != nil {
			if je, ok := err.(*JobError); ok {
				// Re-home the cached failure to this job's slot.
				res.Err = &JobError{ID: t.job.ID, Index: t.idx, Attempts: je.Attempts, Panic: je.Panic, Stack: je.Stack, Err: je.Err}
				res.Attempts = je.Attempts
			} else {
				res.Err = &JobError{ID: t.job.ID, Index: t.idx, Attempts: 1, Err: err}
			}
		}
	} else {
		value, attempts, jerr := p.attempt(t)
		res = JobResult{ID: t.job.ID, Value: value, Attempts: attempts, Err: jerr}
	}
	res.Wall = p.clock.Since(start)
	p.finishTask(t, res, start)
}

// attempt runs the job with panic isolation, retrying panics up to
// cfg.Retries times.
func (p *Pool) attempt(t *task) (value any, attempts int, jerr *JobError) {
	for a := 0; a <= p.cfg.Retries; a++ {
		attempts = a + 1
		var err error
		value, err = safeRun(t.job.Run)
		if err == nil {
			return value, attempts, nil
		}
		pe, panicked := err.(*panicError)
		if !panicked {
			return nil, attempts, &JobError{ID: t.job.ID, Index: t.idx, Attempts: attempts, Err: err}
		}
		if a < p.cfg.Retries {
			p.event(Event{Type: JobRetried, Job: t.job.ID, Group: t.group.name, Err: err})
			continue
		}
		return nil, attempts, &JobError{ID: t.job.ID, Index: t.idx, Attempts: attempts, Panic: pe.value, Stack: pe.stack}
	}
	return nil, attempts, &JobError{ID: t.job.ID, Index: t.idx, Attempts: attempts}
}

// panicError carries a recovered panic across the safeRun boundary.
type panicError struct {
	value any
	stack string
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.value) }

func safeRun(fn func() (any, error)) (value any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{value: r, stack: string(debug.Stack())}
		}
	}()
	return fn()
}
