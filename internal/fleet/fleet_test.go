package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapZeroJobs(t *testing.T) {
	p := New(Config{Workers: 2})
	defer p.Close()
	res, err := p.Map(context.Background(), nil)
	if err != nil {
		t.Fatalf("zero jobs: unexpected error %v", err)
	}
	if res != nil {
		t.Fatalf("zero jobs: expected nil results, got %v", res)
	}
}

// TestMapOrderPreserved forces jobs to complete in reverse submission
// order and checks results still land in submission order.
func TestMapOrderPreserved(t *testing.T) {
	p := New(Config{Workers: 8})
	defer p.Close()
	const n = 8
	// Every job blocks until all are running, then job i waits for job
	// i+1 to finish first, so completion order is exactly reversed.
	running := make(chan struct{}, n)
	finished := make([]chan struct{}, n+1)
	for i := range finished {
		finished[i] = make(chan struct{})
	}
	close(finished[n])
	var started sync.WaitGroup
	started.Add(n)
	go func() {
		started.Wait()
		for i := 0; i < n; i++ {
			running <- struct{}{}
		}
	}()
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func() (any, error) {
			started.Done()
			<-running
			<-finished[i+1]
			close(finished[i])
			return i, nil
		}}
	}
	res, err := p.Map(context.Background(), jobs)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i, r := range res {
		if r.Value != i {
			t.Errorf("slot %d holds %v, want %d", i, r.Value, i)
		}
	}
}

func TestSingleWorkerRunsSequentially(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	var concurrent, peak int32
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func() (any, error) {
			c := atomic.AddInt32(&concurrent, 1)
			if c > atomic.LoadInt32(&peak) {
				atomic.StoreInt32(&peak, c)
			}
			atomic.AddInt32(&concurrent, -1)
			return i, nil
		}}
	}
	res, err := p.Map(context.Background(), jobs)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := atomic.LoadInt32(&peak); got != 1 {
		t.Errorf("peak concurrency %d with one worker", got)
	}
	for i, r := range res {
		if r.Value != i {
			t.Errorf("slot %d holds %v, want %d", i, r.Value, i)
		}
	}
}

// TestPanicRetrySucceeds: a job that panics once and then succeeds is
// transparently retried.
func TestPanicRetrySucceeds(t *testing.T) {
	p := New(Config{Workers: 2, Retries: 1})
	defer p.Close()
	var calls int32
	res, err := p.Map(context.Background(), []Job{{ID: "flaky", Run: func() (any, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			panic("transient divergence")
		}
		return "ok", nil
	}}})
	if err != nil {
		t.Fatalf("retried job reported error: %v", err)
	}
	if res[0].Value != "ok" || res[0].Attempts != 2 {
		t.Errorf("got value=%v attempts=%d, want ok/2", res[0].Value, res[0].Attempts)
	}
}

// TestPanicExhaustsRetries: a persistently panicking job becomes a typed
// JobError carrying the panic value and stack, inside a SweepError, while
// the healthy job's result survives.
func TestPanicExhaustsRetries(t *testing.T) {
	p := New(Config{Workers: 2, Retries: 2})
	defer p.Close()
	res, err := p.Map(context.Background(), []Job{
		{ID: "doomed", Run: func() (any, error) { panic("unstable scenario") }},
		{ID: "fine", Run: func() (any, error) { return 42, nil }},
	})
	var sweep *SweepError
	if !errors.As(err, &sweep) {
		t.Fatalf("want SweepError, got %T: %v", err, err)
	}
	if sweep.Total != 2 || len(sweep.Failed) != 1 {
		t.Errorf("sweep reports %d/%d failed, want 1/2", len(sweep.Failed), sweep.Total)
	}
	je := res[0].Err
	if je == nil || je.Panic != "unstable scenario" || je.Attempts != 3 {
		t.Errorf("job error %+v, want panic after 3 attempts", je)
	}
	if je != nil && !strings.Contains(je.Stack, "fleet") {
		t.Errorf("stack not captured: %q", je.Stack)
	}
	if res[1].Value != 42 || res[1].Err != nil {
		t.Errorf("healthy job lost: %+v", res[1])
	}
}

// TestPlainErrorNotRetried: only panics are retried; a job returning an
// ordinary error fails immediately.
func TestPlainErrorNotRetried(t *testing.T) {
	p := New(Config{Workers: 1, Retries: 5})
	defer p.Close()
	var calls int32
	boom := errors.New("boom")
	res, err := p.Map(context.Background(), []Job{{ID: "e", Run: func() (any, error) {
		atomic.AddInt32(&calls, 1)
		return nil, boom
	}}})
	if err == nil {
		t.Fatal("expected sweep error")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("plain error retried %d times", got)
	}
	if !errors.Is(res[0].Err, boom) {
		t.Errorf("error not preserved: %v", res[0].Err)
	}
}

// TestCacheSingleFlight: two keyed jobs sharing a key compute once; a
// different key computes separately.
func TestCacheSingleFlight(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	var computes int32
	mk := func(id, key string) Job {
		return Job{ID: id, Key: key, Run: func() (any, error) {
			atomic.AddInt32(&computes, 1)
			return key + "-value", nil
		}}
	}
	res, err := p.Map(context.Background(), []Job{
		mk("a", "town|seed=1"), mk("b", "town|seed=1"), mk("c", "town|seed=2"),
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := atomic.LoadInt32(&computes); got != 2 {
		t.Errorf("computed %d times, want 2 (one per distinct key)", got)
	}
	if res[0].CacheHit || !res[1].CacheHit || res[2].CacheHit {
		t.Errorf("cache-hit flags %v/%v/%v, want false/true/false", res[0].CacheHit, res[1].CacheHit, res[2].CacheHit)
	}
	if res[1].Value != "town|seed=1-value" || res[2].Value != "town|seed=2-value" {
		t.Errorf("wrong cached values: %v / %v", res[1].Value, res[2].Value)
	}
	if p.CacheLen() != 2 {
		t.Errorf("cache holds %d keys, want 2", p.CacheLen())
	}
}

// TestCacheDistinguishesKeys guards against key collisions: the same job
// body under different keys must not share results.
func TestCacheDistinguishesKeys(t *testing.T) {
	p := New(Config{Workers: 2})
	defer p.Close()
	g := p.Group("exp")
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		v, hit, err := g.Do(fmt.Sprintf("exp|seed=%d|scale=1", seed), func() (any, error) {
			return seed * 10, nil
		})
		if err != nil || hit {
			t.Fatalf("seed %d: err=%v hit=%v", seed, err, hit)
		}
		if v != seed*10 {
			t.Errorf("seed %d served %v from a colliding key", seed, v)
		}
	}
	// Replays must hit and return the per-key value.
	v, hit, err := g.Do("exp|seed=2|scale=1", func() (any, error) { return int64(-1), nil })
	if err != nil || !hit || v != int64(20) {
		t.Errorf("replay: v=%v hit=%v err=%v, want 20/true/nil", v, hit, err)
	}
}

// TestCachePanicReplaysError: a panicking keyed compute must not wedge
// later requests for the key — they get the stored error immediately.
func TestCachePanicReplaysError(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	var calls int32
	compute := func() (any, error) {
		atomic.AddInt32(&calls, 1)
		panic("compute exploded")
	}
	_, _, err := p.Do("bad", compute)
	if err == nil {
		t.Fatal("want error from panicking compute")
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := p.Do("bad", compute)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("replayed request lost the error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second request for a failed key hung")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("failed compute re-ran %d times", got)
	}
}

// TestCancellationMidSweep: cancelling the context while the sweep's first
// job blocks a single worker abandons the queued remainder with typed
// cancellation errors, while the running job completes.
func TestCancellationMidSweep(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	entered := make(chan struct{})
	jobs := []Job{
		{ID: "blocker", Run: func() (any, error) {
			close(entered)
			<-release
			return "done", nil
		}},
	}
	for i := 0; i < 5; i++ {
		i := i
		jobs = append(jobs, Job{ID: fmt.Sprintf("queued%d", i), Run: func() (any, error) { return i, nil }})
	}
	go func() {
		<-entered
		cancel()
		close(release)
	}()
	res, err := p.Map(ctx, jobs)
	var sweep *SweepError
	if !errors.As(err, &sweep) {
		t.Fatalf("want SweepError, got %v", err)
	}
	if res[0].Err != nil || res[0].Value != "done" {
		t.Errorf("running job should finish: %+v", res[0])
	}
	canceled := 0
	for _, r := range res[1:] {
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled != len(jobs)-1 {
		t.Errorf("%d of %d queued jobs canceled, want all", canceled, len(jobs)-1)
	}
}

// TestTelemetryCounts verifies the event stream and final stats for a
// plain successful sweep.
func TestTelemetryCounts(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventType]int{}
	p := New(Config{Workers: 4, OnEvent: func(ev Event) {
		mu.Lock()
		counts[ev.Type]++
		mu.Unlock()
	}})
	defer p.Close()
	g := p.Group("exp")
	const n = 12
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func() (any, error) { return i, nil }}
	}
	if _, err := g.Map(context.Background(), jobs); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts[JobQueued] != n || counts[JobStarted] != n || counts[JobDone] != n {
		t.Errorf("events queued/started/done = %d/%d/%d, want %d each",
			counts[JobQueued], counts[JobStarted], counts[JobDone], n)
	}
	if counts[JobFailed] != 0 {
		t.Errorf("%d failure events on a clean sweep", counts[JobFailed])
	}
	s := p.Stats()
	if s.Done != n || s.Failed != 0 || s.Queued != 0 || s.Running != 0 {
		t.Errorf("final stats %+v", s)
	}
	gs := g.Stats()
	if gs.Jobs != n || gs.Failed != 0 {
		t.Errorf("group stats %+v", gs)
	}
}

// TestGroupAttribution: two groups sharing one pool keep separate
// counters.
func TestGroupAttribution(t *testing.T) {
	p := New(Config{Workers: 2})
	defer p.Close()
	ga, gb := p.Group("a"), p.Group("b")
	mk := func(n int) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func() (any, error) { return nil, nil }}
		}
		return jobs
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ga.Map(context.Background(), mk(3)) }()
	go func() { defer wg.Done(); gb.Map(context.Background(), mk(5)) }()
	wg.Wait()
	if got := ga.Stats().Jobs; got != 3 {
		t.Errorf("group a ran %d jobs, want 3", got)
	}
	if got := gb.Stats().Jobs; got != 5 {
		t.Errorf("group b ran %d jobs, want 5", got)
	}
}

// TestHealthAggregation: chaos jobs report fault/recovery counters via
// AddHealth; the pool sums across groups while each group keeps its own
// share.
func TestHealthAggregation(t *testing.T) {
	p := New(Config{Workers: 3})
	defer p.Close()
	if !p.Stats().Health.Empty() {
		t.Fatal("fresh pool reports non-empty health")
	}
	ga, gb := p.Group("a"), p.Group("b")
	mk := func(g *Group, n int, h Health) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: fmt.Sprintf("%s%d", g.Name(), i), Run: func() (any, error) {
				g.AddHealth(h)
				return nil, nil
			}}
		}
		return jobs
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ga.Map(context.Background(), mk(ga, 4, Health{Faults: 2, Recoveries: 1, LinkDrops: 3}))
	}()
	go func() {
		defer wg.Done()
		gb.Map(context.Background(), mk(gb, 2, Health{Faults: 5}))
	}()
	wg.Wait()
	if got, want := ga.Stats().Health, (Health{Faults: 8, Recoveries: 4, LinkDrops: 12}); got != want {
		t.Errorf("group a health = %+v, want %+v", got, want)
	}
	if got, want := gb.Stats().Health, (Health{Faults: 10}); got != want {
		t.Errorf("group b health = %+v, want %+v", got, want)
	}
	if got, want := p.Stats().Health, (Health{Faults: 18, Recoveries: 4, LinkDrops: 12}); got != want {
		t.Errorf("pool health = %+v, want %+v", got, want)
	}
	if p.Stats().Health.Empty() {
		t.Error("Empty() = true after counters recorded")
	}
}

func TestWorkersDefault(t *testing.T) {
	p := New(Config{})
	defer p.Close()
	if p.Workers() < 1 {
		t.Errorf("default workers %d", p.Workers())
	}
	if got := New(Config{Workers: 3}); got.Workers() != 3 {
		got.Close()
		t.Errorf("explicit workers not honored")
	} else {
		got.Close()
	}
}
