package fleet

import (
	"sync"
	"time"

	"spider/internal/obs"
)

// EventType enumerates job lifecycle transitions.
type EventType int

const (
	// JobQueued fires when a job enters the queue.
	JobQueued EventType = iota
	// JobStarted fires when a worker picks the job up.
	JobStarted
	// JobDone fires when a job completes successfully.
	JobDone
	// JobFailed fires when a job exhausts its retries or is canceled.
	JobFailed
	// JobRetried fires when a panicking job is about to be re-run.
	JobRetried
	// CacheHit fires when a keyed computation is served from the cache.
	CacheHit
	// CacheMiss fires when a keyed computation must be computed.
	CacheMiss
)

func (t EventType) String() string {
	switch t {
	case JobQueued:
		return "queued"
	case JobStarted:
		return "started"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobRetried:
		return "retried"
	case CacheHit:
		return "cache-hit"
	case CacheMiss:
		return "cache-miss"
	default:
		return "unknown"
	}
}

// Event is one telemetry sample. Stats is a consistent snapshot taken at
// the moment of the transition.
type Event struct {
	Type  EventType
	Job   string
	Group string
	// Wall is the job's wall time (JobDone/JobFailed only).
	Wall time.Duration
	// Err is the failure being reported (JobFailed/JobRetried only).
	Err   error
	Stats Stats
}

// Health aggregates fault-injection outcomes reported by chaos jobs:
// how many faults landed, how many outages the client recovered from,
// and how many links were torn down. Zero for fault-free workloads.
type Health struct {
	Faults     int64
	Recoveries int64
	LinkDrops  int64
}

func (h *Health) add(o Health) {
	h.Faults += o.Faults
	h.Recoveries += o.Recoveries
	h.LinkDrops += o.LinkDrops
}

// Empty reports whether no health counters were recorded.
func (h Health) Empty() bool { return h == Health{} }

// Stats is a point-in-time view of pool progress.
type Stats struct {
	Workers   int
	Queued    int
	Running   int
	Done      int
	Failed    int
	CacheHits int
	// WallSum is the total wall time spent in completed jobs — the
	// sequential-equivalent cost of the work done so far.
	WallSum time.Duration
	// Elapsed is real time since the pool started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the mean job cost
	// and the worker count; zero when nothing is pending or no job has
	// finished yet.
	ETA time.Duration
	// Health sums the fault/recovery counters chaos jobs reported.
	Health Health
	// Events sums the per-kind event counts jobs reported via AddEvents.
	// Addition commutes, so the totals are identical at any worker count.
	Events obs.Summary
}

// Stats returns a consistent snapshot of pool progress.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statsLocked()
}

func (p *Pool) statsLocked() Stats {
	s := Stats{
		Workers:   p.workers,
		Queued:    p.queued,
		Running:   p.running,
		Done:      p.ndone,
		Failed:    p.nfailed,
		CacheHits: p.hits,
		WallSum:   p.wallSum,
		Elapsed:   p.clock.Since(p.start),
		Health:    p.health,
		Events:    p.events,
	}
	finished := s.Done + s.Failed
	pending := s.Queued + s.Running
	if finished > 0 && pending > 0 {
		mean := s.WallSum / time.Duration(finished)
		s.ETA = mean * time.Duration(pending) / time.Duration(p.workers)
	}
	return s
}

func (p *Pool) noteQueued(t *task) {
	p.mu.Lock()
	p.queued++
	ev := Event{Type: JobQueued, Job: t.job.ID, Group: t.group.name, Stats: p.statsLocked()}
	p.mu.Unlock()
	p.event(ev)
}

func (p *Pool) noteStarted(t *task) {
	p.mu.Lock()
	p.queued--
	p.running++
	ev := Event{Type: JobStarted, Job: t.job.ID, Group: t.group.name, Stats: p.statsLocked()}
	p.mu.Unlock()
	p.event(ev)
}

// finishTask records the result, updates counters, emits telemetry, and
// releases the sweep's waitgroup slot. A zero start means the job never
// ran (cancellation before start).
func (p *Pool) finishTask(t *task, res JobResult, started time.Time) {
	*t.out = res
	p.mu.Lock()
	if started.IsZero() {
		p.queued-- // skipped before any worker picked it up
	} else {
		p.running--
	}
	typ := JobDone
	if res.Err != nil {
		typ = JobFailed
		p.nfailed++
	} else {
		p.ndone++
	}
	p.wallSum += res.Wall
	var evErr error
	if res.Err != nil {
		evErr = res.Err
	}
	ev := Event{Type: typ, Job: t.job.ID, Group: t.group.name, Wall: res.Wall, Err: evErr, Stats: p.statsLocked()}
	p.mu.Unlock()

	t.group.record(res)
	p.event(ev)
	t.wg.Done()
}

func (p *Pool) noteCache(g *Group, key string, hit bool) {
	p.mu.Lock()
	typ := CacheMiss
	if hit {
		typ = CacheHit
		p.hits++
	} else {
		p.misses++
	}
	ev := Event{Type: typ, Job: key, Group: g.name, Stats: p.statsLocked()}
	p.mu.Unlock()
	g.recordCache(hit)
	p.event(ev)
}

func (p *Pool) event(ev Event) {
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(ev)
	}
}

// Group attributes a slice of pool activity — typically one experiment —
// so per-experiment job counts, cache hits, and wall time can be reported
// even though every group shares the same bounded worker set.
type Group struct {
	pool *Pool
	name string

	mu     sync.Mutex
	jobs   int
	failed int
	hits   int
	misses int
	wall   time.Duration
	health Health
	events obs.Summary
}

// Group returns a named telemetry scope on the pool.
func (p *Pool) Group(name string) *Group {
	return &Group{pool: p, name: name}
}

// Pool returns the pool this group executes on.
func (g *Group) Pool() *Pool { return g.pool }

// Name returns the group's label.
func (g *Group) Name() string { return g.name }

func (g *Group) record(res JobResult) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.jobs++
	if res.Err != nil {
		g.failed++
	}
	g.wall += res.Wall
}

// AddHealth folds one completed job's fault/recovery counters into the
// group and pool totals, surfacing chaos-run health through Stats and
// the -progress printer. Safe to call from job functions on any worker.
func (g *Group) AddHealth(h Health) {
	g.mu.Lock()
	g.health.add(h)
	g.mu.Unlock()
	g.pool.mu.Lock()
	g.pool.health.add(h)
	g.pool.mu.Unlock()
}

// AddEvents folds one completed job's per-kind event summary into the
// group and pool totals. Summary addition commutes, so the merged counts
// are independent of completion order and worker count. Safe to call
// from job functions on any worker.
func (g *Group) AddEvents(s obs.Summary) {
	g.mu.Lock()
	g.events.Add(s)
	g.mu.Unlock()
	g.pool.mu.Lock()
	g.pool.events.Add(s)
	g.pool.mu.Unlock()
}

func (g *Group) recordCache(hit bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if hit {
		g.hits++
	} else {
		g.misses++
	}
}

// GroupStats summarizes one group's completed activity.
type GroupStats struct {
	Jobs      int
	Failed    int
	CacheHits int
	// JobWall is the sum of this group's job wall times (the cost a
	// sequential run would have paid).
	JobWall time.Duration
	// Health sums the fault/recovery counters this group's jobs reported.
	Health Health
	// Events sums the per-kind event summaries this group's jobs reported.
	Events obs.Summary
}

// Stats snapshots the group's counters.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{Jobs: g.jobs, Failed: g.failed, CacheHits: g.hits, JobWall: g.wall, Health: g.health, Events: g.events}
}
