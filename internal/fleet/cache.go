package fleet

// The result cache is content-keyed and single-flight: the first request
// for a key computes it (on the caller's goroutine for Do, on a worker for
// keyed jobs), concurrent requests for the same key block until that
// computation finishes, and later requests reuse the stored result. Keys
// must uniquely encode everything the computation depends on — the
// experiment id, its Options, and the seed — so a hit is always safe to
// substitute for a recompute.

type cacheEntry struct {
	ready chan struct{}
	value any
	err   error
}

// Do memoizes compute under key with single-flight semantics and no group
// attribution. It reports whether the result came from the cache.
func (p *Pool) Do(key string, compute func() (any, error)) (any, bool, error) {
	v, err, hit := p.cacheDo(p.Group(""), key, compute)
	return v, hit, err
}

// Do is Pool.Do with this group's telemetry attribution.
func (g *Group) Do(key string, compute func() (any, error)) (any, bool, error) {
	v, err, hit := g.pool.cacheDo(g, key, compute)
	return v, hit, err
}

func (p *Pool) cacheDo(g *Group, key string, compute func() (any, error)) (any, error, bool) {
	p.cacheMu.Lock()
	if e, ok := p.cache[key]; ok {
		p.cacheMu.Unlock()
		<-e.ready
		p.noteCache(g, key, true)
		return e.value, e.err, true
	}
	e := &cacheEntry{ready: make(chan struct{})}
	p.cache[key] = e
	p.cacheMu.Unlock()
	p.noteCache(g, key, false)
	// safeRun converts a panicking compute into an error so waiters on
	// e.ready never block forever; the stored error replays to every
	// later request for the key.
	e.value, e.err = safeRun(compute)
	close(e.ready)
	return e.value, e.err, false
}

// CacheLen reports how many keys the cache holds (for tests and telemetry).
func (p *Pool) CacheLen() int {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	return len(p.cache)
}
