package dhcp

import (
	"spider/internal/dot11"
	"spider/internal/ipnet"
	"spider/internal/obs"
	"spider/internal/sim"
)

// Lease is a bound DHCP lease. Spider caches these per BSSID to skip the
// Discover/Offer exchange on re-encounter.
type Lease struct {
	IP        ipnet.Addr
	Server    ipnet.Addr // gateway
	LeaseSecs uint32
}

// ClientConfig tunes the client state machine. The paper studies exactly
// these two knobs: the retransmission timeout and the total acquisition
// window.
type ClientConfig struct {
	// RetryTimeout is the per-message retransmission interval (the model's
	// c; default implementations use ~1 s, Spider reduces it to 100-600 ms).
	RetryTimeout sim.Time
	// AcquireWindow bounds the whole acquisition; the default stack tries
	// for 3 s before going idle.
	AcquireWindow sim.Time
	// Obs, when non-nil, resolves the client's counters (retransmits,
	// acks, naks). Nil disables instrumentation.
	Obs *obs.Registry
}

// DefaultClientConfig mirrors a stock DHCP client.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		RetryTimeout:  1000 * 1000 * 1000, // 1 s
		AcquireWindow: 3000 * 1000 * 1000, // 3 s
	}
}

// ReducedClientConfig is Spider's tuned client: timeout ms retransmits
// within the same 3 s window.
func ReducedClientConfig(timeout sim.Time) ClientConfig {
	return ClientConfig{RetryTimeout: timeout, AcquireWindow: 3000 * 1000 * 1000}
}

type clientState uint8

const (
	stateIdle clientState = iota
	stateDiscovering
	stateRequesting
	stateBound
	stateFailed
)

// Client runs one DHCP acquisition for one virtual interface. The owner
// supplies the datagram transmit path and receives exactly one completion
// callback per Start.
type Client struct {
	eng  *sim.Engine
	rng  *sim.RNG
	cfg  ClientConfig
	mac  dot11.MACAddr
	send func(Message)
	done func(Lease, bool)

	state    clientState
	xid      uint32
	pending  Message
	deadline sim.Time
	timer    *sim.Event
	started  sim.Time

	// Span, when non-nil, is the Join root span this acquisition's phases
	// nest under (set by the owner between NewClient and Start). The
	// client opens contiguous "dhcp-discover" / "dhcp-request" children;
	// renewal clients leave Span nil and trace nothing.
	Span  *obs.ActiveSpan
	phase *obs.ActiveSpan

	// Retransmits counts messages sent beyond the first of each phase.
	Retransmits int

	obsRetransmits *obs.Counter
	obsAcks        *obs.Counter
	obsNaks        *obs.Counter
}

// NewClient creates a client for one interface. send transmits a message
// toward the AP (lossily); done reports the outcome: (lease, true) on bind,
// (zero, false) on failure.
func NewClient(eng *sim.Engine, rng *sim.RNG, cfg ClientConfig, mac dot11.MACAddr, send func(Message), done func(Lease, bool)) *Client {
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = DefaultClientConfig().RetryTimeout
	}
	if cfg.AcquireWindow <= 0 {
		cfg.AcquireWindow = DefaultClientConfig().AcquireWindow
	}
	if send == nil || done == nil {
		panic("dhcp: NewClient requires send and done callbacks")
	}
	return &Client{eng: eng, rng: rng, cfg: cfg, mac: mac, send: send, done: done,
		obsRetransmits: cfg.Obs.Counter("dhcp.retransmits"),
		obsAcks:        cfg.Obs.Counter("dhcp.acks"),
		obsNaks:        cfg.Obs.Counter("dhcp.naks"),
	}
}

// Start begins acquisition. If cached is non-nil the client skips Discover
// and re-requests the cached address (DHCP INIT-REBOOT), falling back to a
// full exchange on NAK.
func (c *Client) Start(cached *Lease) {
	if c.state == stateDiscovering || c.state == stateRequesting {
		return
	}
	c.xid = uint32(c.rng.Int63())
	c.started = c.eng.Now()
	c.deadline = c.eng.Now() + c.cfg.AcquireWindow
	if cached != nil {
		c.state = stateRequesting
		c.pending = Message{Type: Request, XID: c.xid, ClientMAC: c.mac,
			YourIP: cached.IP, ServerIP: cached.Server}
		c.phase = c.Span.StartChild(c.eng.Now(), "dhcp-request")
	} else {
		c.state = stateDiscovering
		c.pending = Message{Type: Discover, XID: c.xid, ClientMAC: c.mac}
		c.phase = c.Span.StartChild(c.eng.Now(), "dhcp-discover")
	}
	c.transmit(true)
}

// Active reports whether an acquisition is in progress.
func (c *Client) Active() bool {
	return c.state == stateDiscovering || c.state == stateRequesting
}

// Elapsed returns how long the current (or final) acquisition has run.
func (c *Client) Elapsed() sim.Time { return c.eng.Now() - c.started }

// Stop abandons the acquisition without invoking the completion callback.
func (c *Client) Stop() {
	c.cancelTimer()
	c.phase.EndStatus(c.eng.Now(), "stopped")
	c.phase = nil
	c.state = stateIdle
}

func (c *Client) cancelTimer() {
	if c.timer != nil {
		c.eng.Cancel(c.timer)
		c.timer = nil
	}
}

func (c *Client) transmit(first bool) {
	if !first {
		c.Retransmits++
		c.obsRetransmits.Inc()
	}
	c.send(c.pending)
	c.cancelTimer()
	c.timer = c.eng.Schedule(c.cfg.RetryTimeout, c.onTimeout)
}

func (c *Client) onTimeout() {
	c.timer = nil
	if !c.Active() {
		return
	}
	if c.eng.Now() >= c.deadline {
		c.fail()
		return
	}
	c.transmit(false)
}

func (c *Client) fail() {
	c.cancelTimer()
	c.phase.EndStatus(c.eng.Now(), "fail")
	c.phase = nil
	c.state = stateFailed
	c.done(Lease{}, false)
}

// Deliver feeds a server response into the state machine. Messages with a
// foreign transaction id or for another MAC are ignored.
func (c *Client) Deliver(msg Message) {
	if !c.Active() || msg.XID != c.xid || msg.ClientMAC != c.mac {
		return
	}
	switch {
	case msg.Type == Offer && c.state == stateDiscovering:
		c.state = stateRequesting
		c.pending = Message{Type: Request, XID: c.xid, ClientMAC: c.mac,
			YourIP: msg.YourIP, ServerIP: msg.ServerIP}
		c.phase.EndStatus(c.eng.Now(), "ok")
		c.phase = c.Span.StartChild(c.eng.Now(), "dhcp-request")
		c.transmit(true)
	case msg.Type == Ack && c.state == stateRequesting:
		c.obsAcks.Inc()
		c.cancelTimer()
		c.phase.EndStatus(c.eng.Now(), "ok")
		c.phase = nil
		c.state = stateBound
		c.done(Lease{IP: msg.YourIP, Server: msg.ServerIP, LeaseSecs: msg.LeaseSecs}, true)
	case msg.Type == Nak && c.state == stateRequesting:
		c.obsNaks.Inc()
		// Cached lease rejected: restart with Discover inside the same
		// window if any time remains.
		if c.eng.Now() >= c.deadline {
			c.fail()
			return
		}
		c.state = stateDiscovering
		c.pending = Message{Type: Discover, XID: c.xid, ClientMAC: c.mac}
		c.phase.EndStatus(c.eng.Now(), "nak")
		c.phase = c.Span.StartChild(c.eng.Now(), "dhcp-discover")
		c.transmit(true)
	}
}
