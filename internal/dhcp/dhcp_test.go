package dhcp

import (
	"testing"
	"testing/quick"
	"time"

	"spider/internal/dot11"
	"spider/internal/ipnet"
	"spider/internal/sim"
)

var gw = ipnet.AddrFrom4(192, 168, 1, 1)

func instantServer(eng *sim.Engine) *Server {
	cfg := DefaultServerConfig(gw)
	cfg.RespDelayMin, cfg.RespDelayMax = 0, 0
	return NewServer(eng, sim.NewRNG(1).Stream("srv"), cfg)
}

func TestMessageRoundTrip(t *testing.T) {
	m := Message{Type: Offer, XID: 0xdeadbeef, ClientMAC: dot11.MAC(9),
		YourIP: ipnet.AddrFrom4(192, 168, 1, 5), ServerIP: gw, LeaseSecs: 3600}
	got, err := DecodeMessage(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip %+v != %+v", got, m)
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	if _, err := DecodeMessage([]byte{1, 2}); err != ErrShortMessage {
		t.Fatalf("short: %v", err)
	}
	m := Message{Type: Ack}
	wire := m.Bytes()
	wire[0] = 99
	if _, err := DecodeMessage(wire); err != ErrBadType {
		t.Fatalf("bad type: %v", err)
	}
}

// Property: all message types and fields round-trip.
func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(typ uint8, xid uint32, mac uint32, yip, sip uint32, lease uint32) bool {
		m := Message{Type: MessageType(typ%5) + 1, XID: xid, ClientMAC: dot11.MAC(mac),
			YourIP: ipnet.Addr(yip), ServerIP: ipnet.Addr(sip), LeaseSecs: lease}
		got, err := DecodeMessage(m.Bytes())
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerStableLeases(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	var got []Message
	reply := func(m Message) { got = append(got, m) }
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, reply)
	s.Handle(Message{Type: Discover, XID: 2, ClientMAC: dot11.MAC(2)}, reply)
	s.Handle(Message{Type: Discover, XID: 3, ClientMAC: dot11.MAC(1)}, reply)
	eng.RunAll()
	if len(got) != 3 {
		t.Fatalf("%d replies, want 3", len(got))
	}
	if got[0].YourIP == got[1].YourIP {
		t.Fatal("distinct clients share a lease")
	}
	if got[0].YourIP != got[2].YourIP {
		t.Fatal("same client got different leases")
	}
	if got[0].ServerIP != gw {
		t.Fatalf("server ip = %v", got[0].ServerIP)
	}
}

func TestServerPoolExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultServerConfig(gw)
	cfg.PoolSize = 2
	cfg.RespDelayMin, cfg.RespDelayMax = 0, 0
	s := NewServer(eng, sim.NewRNG(1), cfg)
	replies := 0
	for i := uint32(1); i <= 5; i++ {
		s.Handle(Message{Type: Discover, XID: i, ClientMAC: dot11.MAC(i)}, func(Message) { replies++ })
	}
	eng.RunAll()
	if replies != 2 {
		t.Fatalf("replies = %d, want 2 (pool exhausted afterwards)", replies)
	}
}

func TestServerNakOnStaleRequest(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	var resp Message
	s.Handle(Message{Type: Request, XID: 7, ClientMAC: dot11.MAC(1),
		YourIP: ipnet.AddrFrom4(10, 9, 9, 9)}, func(m Message) { resp = m })
	eng.RunAll()
	if resp.Type != Nak {
		t.Fatalf("response = %v, want nak", resp.Type)
	}
}

func TestServerResponseDelayWithinBounds(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultServerConfig(gw)
	cfg.RespDelayMin = 500 * time.Millisecond
	cfg.RespDelayMax = 2 * time.Second
	s := NewServer(eng, sim.NewRNG(3), cfg)
	var at sim.Time = -1
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, func(Message) { at = eng.Now() })
	eng.RunAll()
	if at < cfg.RespDelayMin || at > cfg.RespDelayMax {
		t.Fatalf("response at %v, want within [%v,%v]", at, cfg.RespDelayMin, cfg.RespDelayMax)
	}
}

func TestServerIgnoresUnknownTypes(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	called := false
	s.Handle(Message{Type: Offer, XID: 1, ClientMAC: dot11.MAC(1)}, func(Message) { called = true })
	s.Handle(Message{Type: Ack, XID: 2, ClientMAC: dot11.MAC(1)}, func(Message) { called = true })
	eng.RunAll()
	if called {
		t.Fatal("server replied to a server-to-client message")
	}
}

// loopback wires a client directly to a server with a given one-way loss
// probability, returning the client and a result capture.
func loopback(eng *sim.Engine, s *Server, cfg ClientConfig, lossProb float64, seed int64) (*Client, *Lease, *bool, *Client) {
	rng := sim.NewRNG(seed)
	var lease Lease
	var outcome *bool
	result := new(bool)
	var c *Client
	c = NewClient(eng, rng.Stream("cli"), cfg, dot11.MAC(42),
		func(m Message) {
			if rng.Bool(lossProb) {
				return // datagram lost
			}
			s.Handle(m, func(resp Message) {
				if rng.Bool(lossProb) {
					return
				}
				c.Deliver(resp)
			})
		},
		func(l Lease, ok bool) { lease = l; *result = ok; outcome = result })
	_ = outcome
	return c, &lease, result, c
}

func TestClientFullExchange(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	c, lease, ok, _ := loopback(eng, s, DefaultClientConfig(), 0, 1)
	c.Start(nil)
	eng.RunAll()
	if !*ok {
		t.Fatal("acquisition failed on lossless path")
	}
	if lease.IP.IsUnspecified() || lease.Server != gw {
		t.Fatalf("lease = %+v", lease)
	}
	if c.Active() {
		t.Fatal("client still active after bind")
	}
}

func TestClientCachedLeaseFastPath(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	// Prime the server lease table.
	c1, lease, ok, _ := loopback(eng, s, DefaultClientConfig(), 0, 1)
	c1.Start(nil)
	eng.RunAll()
	if !*ok {
		t.Fatal("priming failed")
	}
	// Re-join with the cached lease: a single Request/Ack exchange.
	c2, lease2, ok2, _ := loopback(eng, s, DefaultClientConfig(), 0, 2)
	before := s.Offers
	c2.Start(&Lease{IP: lease.IP, Server: lease.Server})
	eng.RunAll()
	if !*ok2 {
		t.Fatal("cached-lease rejoin failed")
	}
	if lease2.IP != lease.IP {
		t.Fatalf("rejoin got %v, want %v", lease2.IP, lease.IP)
	}
	if s.Offers != before {
		t.Fatal("fast path should not trigger an Offer")
	}
}

func TestClientNakFallsBackToDiscover(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	c, lease, ok, _ := loopback(eng, s, DefaultClientConfig(), 0, 3)
	// A bogus cached lease triggers NAK, then a fresh Discover succeeds.
	c.Start(&Lease{IP: ipnet.AddrFrom4(10, 0, 0, 99), Server: gw})
	eng.RunAll()
	if !*ok {
		t.Fatal("client did not recover from NAK")
	}
	if lease.IP == ipnet.AddrFrom4(10, 0, 0, 99) {
		t.Fatal("client kept the NAKed address")
	}
	if s.Naks != 1 {
		t.Fatalf("naks = %d, want 1", s.Naks)
	}
}

func TestClientFailsWhenServerSilent(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	cfg := ClientConfig{RetryTimeout: 100 * time.Millisecond, AcquireWindow: time.Second}
	c, _, ok, _ := loopback(eng, s, cfg, 1.0, 4) // 100% loss
	c.Start(nil)
	eng.RunAll()
	if *ok {
		t.Fatal("acquisition succeeded with total loss")
	}
	if got := eng.Now(); got < cfg.AcquireWindow || got > cfg.AcquireWindow+2*cfg.RetryTimeout {
		t.Fatalf("gave up at %v, want ≈%v", got, cfg.AcquireWindow)
	}
	if c.Retransmits < 5 {
		t.Fatalf("retransmits = %d, want several within the window", c.Retransmits)
	}
}

func TestClientRecoversFromModerateLoss(t *testing.T) {
	eng := sim.NewEngine()
	succ := 0
	const n = 100
	for i := 0; i < n; i++ {
		s := instantServer(eng)
		cfg := ClientConfig{RetryTimeout: 100 * time.Millisecond, AcquireWindow: 3 * time.Second}
		c, _, ok, _ := loopback(eng, s, cfg, 0.3, int64(i))
		c.Start(nil)
		eng.RunAll()
		if *ok {
			succ++
		}
	}
	if succ < n*8/10 {
		t.Fatalf("success %d/%d with 30%% loss and 100ms retries, want ≥80%%", succ, n)
	}
}

func TestClientStopSuppressesCallback(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	fired := false
	var c *Client
	c = NewClient(eng, sim.NewRNG(1), DefaultClientConfig(), dot11.MAC(1),
		func(m Message) { s.Handle(m, func(r Message) { c.Deliver(r) }) },
		func(Lease, bool) { fired = true })
	c.Start(nil)
	c.Stop()
	eng.RunAll()
	if fired {
		t.Fatal("completion callback fired after Stop")
	}
}

func TestClientIgnoresForeignXID(t *testing.T) {
	eng := sim.NewEngine()
	bound := false
	c := NewClient(eng, sim.NewRNG(1), DefaultClientConfig(), dot11.MAC(1),
		func(Message) {}, func(_ Lease, ok bool) { bound = ok })
	c.Start(nil)
	c.Deliver(Message{Type: Ack, XID: 0xbad, ClientMAC: dot11.MAC(1), YourIP: 5, ServerIP: gw})
	if bound {
		t.Fatal("client accepted a response with a foreign XID")
	}
}

func TestClientDoubleStartIgnored(t *testing.T) {
	eng := sim.NewEngine()
	sent := 0
	c := NewClient(eng, sim.NewRNG(1), DefaultClientConfig(), dot11.MAC(1),
		func(Message) { sent++ }, func(Lease, bool) {})
	c.Start(nil)
	c.Start(nil)
	if sent != 1 {
		t.Fatalf("sent = %d, want 1 (second Start ignored while active)", sent)
	}
}

// Property: with a lossless instant path, acquisition always succeeds and
// the lease is always from the server pool.
func TestPropertyLosslessAlwaysBinds(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		s := instantServer(eng)
		c, lease, ok, _ := loopback(eng, s, DefaultClientConfig(), 0, seed)
		c.Start(nil)
		eng.RunAll()
		return *ok && lease.IP > gw && lease.IP <= gw+64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestServerFaultSilent(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	s.SetFault(FaultSilent)
	called := false
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, func(Message) { called = true })
	s.Handle(Message{Type: Request, XID: 2, ClientMAC: dot11.MAC(1)}, func(Message) { called = true })
	eng.RunAll()
	if called {
		t.Fatal("silent server replied")
	}
	if s.FaultDrops != 2 {
		t.Fatalf("FaultDrops = %d, want 2", s.FaultDrops)
	}
	s.SetFault(FaultNone)
	var resp Message
	s.Handle(Message{Type: Discover, XID: 3, ClientMAC: dot11.MAC(1)}, func(m Message) { resp = m })
	eng.RunAll()
	if resp.Type != Offer {
		t.Fatalf("after clearing fault, response = %v, want offer", resp.Type)
	}
}

func TestServerFaultNak(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	s.SetFault(FaultNak)
	var got []Message
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, func(m Message) { got = append(got, m) })
	s.Handle(Message{Type: Request, XID: 2, ClientMAC: dot11.MAC(1)}, func(m Message) { got = append(got, m) })
	eng.RunAll()
	if len(got) != 2 || got[0].Type != Nak || got[1].Type != Nak {
		t.Fatalf("responses = %v, want two naks", got)
	}
	if s.Naks != 2 {
		t.Fatalf("Naks = %d, want 2", s.Naks)
	}
}

func TestServerFaultExhausted(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	// Bind one client before the fault lands.
	var bound Message
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, func(m Message) { bound = m })
	eng.RunAll()
	if bound.Type != Offer {
		t.Fatalf("pre-fault discover got %v", bound.Type)
	}
	s.SetFault(FaultExhausted)
	// New client sees the exhausted pool; Discover is silent, Request NAKs.
	discovered := false
	var naked Message
	s.Handle(Message{Type: Discover, XID: 2, ClientMAC: dot11.MAC(2)}, func(Message) { discovered = true })
	s.Handle(Message{Type: Request, XID: 3, ClientMAC: dot11.MAC(2), YourIP: bound.YourIP}, func(m Message) { naked = m })
	// The already-bound client keeps working.
	var kept Message
	s.Handle(Message{Type: Request, XID: 4, ClientMAC: dot11.MAC(1), YourIP: bound.YourIP}, func(m Message) { kept = m })
	eng.RunAll()
	if discovered {
		t.Fatal("exhausted pool offered a lease")
	}
	if naked.Type != Nak {
		t.Fatalf("exhausted Request got %v, want nak (typed fail-fast)", naked.Type)
	}
	if kept.Type != Ack {
		t.Fatalf("bound client's renewal got %v, want ack", kept.Type)
	}
	if s.PoolExhausted != 2 {
		t.Fatalf("PoolExhausted = %d, want 2", s.PoolExhausted)
	}
}

func TestServerRequestOnRealExhaustionNaks(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultServerConfig(gw)
	cfg.PoolSize = 1
	cfg.RespDelayMin, cfg.RespDelayMax = 0, 0
	s := NewServer(eng, sim.NewRNG(1), cfg)
	var first Message
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, func(m Message) { first = m })
	eng.RunAll()
	var resp Message
	s.Handle(Message{Type: Request, XID: 2, ClientMAC: dot11.MAC(2), YourIP: first.YourIP}, func(m Message) { resp = m })
	eng.RunAll()
	if resp.Type != Nak {
		t.Fatalf("Request on exhausted pool got %v, want nak", resp.Type)
	}
	// The requested address is held by another client: ipam types this as
	// a conflict, not exhaustion — the caller can tell "someone else has
	// your address" apart from "nothing is free".
	if s.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", s.Conflicts)
	}
	if s.PoolExhausted != 0 {
		t.Fatalf("PoolExhausted = %d, want 0 (typed as conflict)", s.PoolExhausted)
	}
}

func TestServerReleaseReusesAddress(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultServerConfig(gw)
	cfg.PoolSize = 1
	cfg.RespDelayMin, cfg.RespDelayMax = 0, 0
	s := NewServer(eng, sim.NewRNG(1), cfg)
	var first Message
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, func(m Message) { first = m })
	eng.RunAll()
	if first.Type != Offer {
		t.Fatalf("first discover got %v", first.Type)
	}
	if s.LeasesInUse() != 1 {
		t.Fatalf("LeasesInUse = %d, want 1", s.LeasesInUse())
	}
	s.Release(dot11.MAC(1))
	if s.LeasesInUse() != 0 {
		t.Fatalf("LeasesInUse after release = %d, want 0", s.LeasesInUse())
	}
	var second Message
	s.Handle(Message{Type: Discover, XID: 2, ClientMAC: dot11.MAC(2)}, func(m Message) { second = m })
	eng.RunAll()
	if second.Type != Offer || second.YourIP != first.YourIP {
		t.Fatalf("released address not reused: first=%v second=%+v", first.YourIP, second)
	}
	// Releasing an unknown MAC is a no-op.
	s.Release(dot11.MAC(99))
	if s.LeasesInUse() != 1 {
		t.Fatalf("LeasesInUse = %d, want 1", s.LeasesInUse())
	}
}

func TestServerReset(t *testing.T) {
	eng := sim.NewEngine()
	s := instantServer(eng)
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, func(Message) {})
	eng.RunAll()
	s.SetFault(FaultSilent)
	s.Reset()
	if s.LeasesInUse() != 0 {
		t.Fatalf("LeasesInUse after reset = %d, want 0", s.LeasesInUse())
	}
	if s.Fault() != FaultNone {
		t.Fatalf("fault after reset = %v, want none", s.Fault())
	}
	var resp Message
	s.Handle(Message{Type: Discover, XID: 2, ClientMAC: dot11.MAC(2)}, func(m Message) { resp = m })
	eng.RunAll()
	if resp.Type != Offer {
		t.Fatalf("post-reset discover got %v, want offer", resp.Type)
	}
}

func TestFaultModeStrings(t *testing.T) {
	modes := []FaultMode{FaultNone, FaultSilent, FaultNak, FaultExhausted}
	seen := map[string]bool{}
	for _, m := range modes {
		s := m.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("mode %d has bad string %q", m, s)
		}
		seen[s] = true
	}
}

// expiringServer is instantServer with the sim-time lease GC enabled.
func expiringServer(eng *sim.Engine, leaseSecs uint32) *Server {
	cfg := DefaultServerConfig(gw)
	cfg.RespDelayMin, cfg.RespDelayMax = 0, 0
	cfg.LeaseSecs = leaseSecs
	cfg.ExpireLeases = true
	return NewServer(eng, sim.NewRNG(1).Stream("srv"), cfg)
}

// TestServerExpiresUnrenewedLeases: with ExpireLeases on, LeasesInUse
// decays without an explicit Release — exactly at each lease's deadline,
// with renewals pushing their own deadline out. The final RunAll also
// proves the sweep is event-driven: a polling ticker would never let the
// queue drain.
func TestServerExpiresUnrenewedLeases(t *testing.T) {
	eng := sim.NewEngine()
	s := expiringServer(eng, 2)
	var acks []Message
	var reply func(Message)
	reply = func(m Message) {
		switch m.Type {
		case Offer:
			s.Handle(Message{Type: Request, XID: m.XID, ClientMAC: m.ClientMAC, YourIP: m.YourIP}, reply)
		case Ack:
			acks = append(acks, m)
		}
	}
	s.Handle(Message{Type: Discover, XID: 1, ClientMAC: dot11.MAC(1)}, reply)
	s.Handle(Message{Type: Discover, XID: 2, ClientMAC: dot11.MAC(2)}, reply)
	eng.Run(time.Second)
	if len(acks) != 2 || s.LeasesInUse() != 2 {
		t.Fatalf("bound %d acks, %d leases; want 2, 2", len(acks), s.LeasesInUse())
	}
	// Client 1 renews at t=1s; client 2 goes silent and expires at t=2s.
	s.Handle(Message{Type: Request, XID: 3, ClientMAC: dot11.MAC(1), YourIP: acks[0].YourIP}, reply)
	eng.Run(2500 * time.Millisecond)
	if s.LeasesInUse() != 1 {
		t.Fatalf("LeasesInUse = %d at 2.5s, want 1 (client 2 reclaimed)", s.LeasesInUse())
	}
	if !s.HasLease(dot11.MAC(1), acks[0].YourIP) {
		t.Fatal("renewed lease was reclaimed")
	}
	if s.Reclaimed != 1 {
		t.Fatalf("Reclaimed = %d, want 1", s.Reclaimed)
	}
	// The renewed lease runs out at t=3s; the queue then drains entirely.
	eng.RunAll()
	if s.LeasesInUse() != 0 || s.Reclaimed != 2 {
		t.Fatalf("after drain: LeasesInUse = %d, Reclaimed = %d; want 0, 2",
			s.LeasesInUse(), s.Reclaimed)
	}
}

// TestClientCachedLeaseNakAfterReclaim is the INIT-REBOOT regression for
// the live-pool validation path: a cached lease whose address was
// reclaimed and re-issued to another client must get a NAK — never a
// silent double-allocation — and the client must recover with a fresh
// Discover.
func TestClientCachedLeaseNakAfterReclaim(t *testing.T) {
	eng := sim.NewEngine()
	s := expiringServer(eng, 1)
	// Client A (MAC 42 via loopback) binds, then vanishes: its lease is
	// reclaimed one second later and the queue drains.
	cA, leaseA, okA, _ := loopback(eng, s, DefaultClientConfig(), 0, 1)
	cA.Start(nil)
	eng.RunAll()
	if !*okA {
		t.Fatal("priming failed")
	}
	if s.LeasesInUse() != 0 {
		t.Fatalf("LeasesInUse = %d after drain, want 0 (lease reclaimed)", s.LeasesInUse())
	}
	// Client B claims A's old address directly — a legitimate INIT-REBOOT
	// onto a free pool address.
	var bAck *Message
	s.Handle(Message{Type: Request, XID: 7, ClientMAC: dot11.MAC(7), YourIP: leaseA.IP},
		func(m Message) { bAck = &m })
	// Advance just far enough for the instant Ack — a full drain would
	// run past B's own expiry and free the address again.
	eng.Run(eng.Now() + 10*time.Millisecond)
	if bAck == nil || bAck.Type != Ack || bAck.YourIP != leaseA.IP {
		t.Fatalf("B's claim of the reclaimed address got %+v, want ack", bAck)
	}
	// A returns with its stale cached lease: the server must NAK (typed
	// as a conflict), and A falls back to Discover for a fresh address.
	cA2, leaseA2, okA2, _ := loopback(eng, s, DefaultClientConfig(), 0, 2)
	naksBefore, conflictsBefore := s.Naks, s.Conflicts
	cA2.Start(&Lease{IP: leaseA.IP, Server: leaseA.Server})
	eng.Run(eng.Now() + 500*time.Millisecond) // rebind + fresh acquisition, before B expires
	if !*okA2 {
		t.Fatal("A did not recover from the NAK")
	}
	if s.Naks != naksBefore+1 {
		t.Fatalf("Naks = %d, want %d", s.Naks, naksBefore+1)
	}
	if s.Conflicts != conflictsBefore+1 {
		t.Fatalf("Conflicts = %d, want %d (stale rebind is a typed conflict)", s.Conflicts, conflictsBefore+1)
	}
	if leaseA2.IP == leaseA.IP {
		t.Fatal("A kept an address the server had re-issued to B")
	}
	if !s.HasLease(dot11.MAC(7), leaseA.IP) {
		t.Fatal("B lost its lease to A's stale rebind")
	}
}
