package dhcp

import (
	"spider/internal/dot11"
	"spider/internal/ipnet"
	"spider/internal/sim"
)

// ServerConfig controls a simulated AP-side DHCP server.
type ServerConfig struct {
	// Gateway is the server/gateway address handed to clients.
	Gateway ipnet.Addr
	// PoolBase is the first client address; leases are PoolBase+1,
	// PoolBase+2, ... (stable per client MAC).
	PoolBase ipnet.Addr
	// PoolSize caps the number of distinct leases.
	PoolSize int
	// RespDelayMin/Max bound the uniform per-response processing delay.
	// The paper's β is the end-to-end join response time; residential APs
	// show βmin ≈ 0.5 s and βmax of several seconds.
	RespDelayMin sim.Time
	RespDelayMax sim.Time
	// LeaseSecs is the advertised lease duration.
	LeaseSecs uint32
}

// DefaultServerConfig mirrors a typical open residential AP from the
// paper's measurements.
func DefaultServerConfig(gateway ipnet.Addr) ServerConfig {
	return ServerConfig{
		Gateway:      gateway,
		PoolBase:     gateway,
		PoolSize:     64,
		RespDelayMin: 100 * 1000 * 1000,  // 100 ms per response;
		RespDelayMax: 1250 * 1000 * 1000, // two responses span ≈[0.2s, 2.5s]
		LeaseSecs:    3600,
	}
}

// FaultMode selects an injected server misbehaviour (package chaos).
type FaultMode uint8

const (
	// FaultNone is normal operation.
	FaultNone FaultMode = iota
	// FaultSilent drops every client message without a response.
	FaultSilent
	// FaultNak answers every Discover and Request with NAK.
	FaultNak
	// FaultExhausted makes the pool behave exhausted for clients that do
	// not already hold a lease.
	FaultExhausted
)

func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultSilent:
		return "silent"
	case FaultNak:
		return "nak"
	case FaultExhausted:
		return "exhausted"
	}
	return "unknown"
}

// Server is a DHCP server bound to one AP. It answers Discover with Offer
// and Request with Ack (or Nak when the pool is exhausted or the requested
// address is stale), each after a sampled processing delay.
type Server struct {
	eng *sim.Engine
	rng *sim.RNG
	cfg ServerConfig

	leases map[dot11.MACAddr]ipnet.Addr
	next   int
	free   []ipnet.Addr // released addresses, reused LIFO
	fault  FaultMode

	// Counters for experiment reporting.
	Offers        int
	Acks          int
	Naks          int
	PoolExhausted int // requests refused because no address was free
	FaultDrops    int // messages swallowed by FaultSilent
}

// NewServer creates a server. rng must be a dedicated stream.
func NewServer(eng *sim.Engine, rng *sim.RNG, cfg ServerConfig) *Server {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 64
	}
	if cfg.RespDelayMax < cfg.RespDelayMin {
		cfg.RespDelayMax = cfg.RespDelayMin
	}
	return &Server{eng: eng, rng: rng, cfg: cfg, leases: make(map[dot11.MACAddr]ipnet.Addr)}
}

// Gateway returns the server's gateway address.
func (s *Server) Gateway() ipnet.Addr { return s.cfg.Gateway }

// SetFault switches the server's fault mode (fault injection).
func (s *Server) SetFault(m FaultMode) { s.fault = m }

// Fault returns the current fault mode.
func (s *Server) Fault() FaultMode { return s.fault }

// LeasesInUse reports the number of currently bound leases.
func (s *Server) LeasesInUse() int { return len(s.leases) }

// Release returns mac's lease to the pool; a later allocation may hand
// the address to a different client.
func (s *Server) Release(mac dot11.MACAddr) {
	ip, ok := s.leases[mac]
	if !ok {
		return
	}
	delete(s.leases, mac)
	s.free = append(s.free, ip)
}

// Reset drops every lease and clears any fault mode, as a power cycle
// would. Responses already scheduled still fire; the AP layer gates them.
func (s *Server) Reset() {
	s.leases = make(map[dot11.MACAddr]ipnet.Addr)
	s.next = 0
	s.free = nil
	s.fault = FaultNone
}

// leaseFor returns the stable lease for a client, allocating from the
// free list first, then from the untouched pool tail. ok is false when
// the pool is exhausted (or faulted to behave so).
func (s *Server) leaseFor(mac dot11.MACAddr) (ipnet.Addr, bool) {
	if ip, ok := s.leases[mac]; ok {
		return ip, true
	}
	if s.fault == FaultExhausted {
		s.PoolExhausted++
		return ipnet.Unspecified, false
	}
	if n := len(s.free); n > 0 {
		ip := s.free[n-1]
		s.free = s.free[:n-1]
		s.leases[mac] = ip
		return ip, true
	}
	if s.next >= s.cfg.PoolSize {
		s.PoolExhausted++
		return ipnet.Unspecified, false
	}
	s.next++
	ip := s.cfg.PoolBase + ipnet.Addr(s.next)
	s.leases[mac] = ip
	return ip, true
}

// nak builds the typed refusal for msg.
func (s *Server) nak(msg Message) Message {
	s.Naks++
	return Message{Type: Nak, XID: msg.XID, ClientMAC: msg.ClientMAC, ServerIP: s.cfg.Gateway}
}

// Handle processes one client message and, after the sampled processing
// delay, invokes reply with the response. Unknown or out-of-order messages
// are ignored, as a real server would silently drop them.
func (s *Server) Handle(msg Message, reply func(Message)) {
	if s.fault == FaultSilent && (msg.Type == Discover || msg.Type == Request) {
		s.FaultDrops++
		return
	}
	var resp Message
	switch msg.Type {
	case Discover:
		if s.fault == FaultNak {
			resp = s.nak(msg)
			break
		}
		ip, ok := s.leaseFor(msg.ClientMAC)
		if !ok {
			return // pool exhausted: silence, client times out
		}
		s.Offers++
		resp = Message{Type: Offer, XID: msg.XID, ClientMAC: msg.ClientMAC,
			YourIP: ip, ServerIP: s.cfg.Gateway, LeaseSecs: s.cfg.LeaseSecs}
	case Request:
		if s.fault == FaultNak {
			resp = s.nak(msg)
			break
		}
		ip, ok := s.leaseFor(msg.ClientMAC)
		if !ok {
			// Typed exhaustion: refuse the Request outright so the client
			// fails fast instead of timing out.
			resp = s.nak(msg)
			break
		}
		if msg.YourIP != ip {
			// Stale cached lease (e.g. from a different visit): NAK so the
			// client restarts with Discover.
			s.Naks++
			resp = Message{Type: Nak, XID: msg.XID, ClientMAC: msg.ClientMAC, ServerIP: s.cfg.Gateway}
		} else {
			s.Acks++
			resp = Message{Type: Ack, XID: msg.XID, ClientMAC: msg.ClientMAC,
				YourIP: ip, ServerIP: s.cfg.Gateway, LeaseSecs: s.cfg.LeaseSecs}
		}
	default:
		return
	}
	delay := s.rng.UniformDuration(s.cfg.RespDelayMin, s.cfg.RespDelayMax+1)
	s.eng.Schedule(delay, func() { reply(resp) })
}

// HasLease reports whether the server currently holds a lease binding mac
// to ip, as used by the Request fast path.
func (s *Server) HasLease(mac dot11.MACAddr, ip ipnet.Addr) bool {
	got, ok := s.leases[mac]
	return ok && got == ip
}
