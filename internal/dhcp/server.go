package dhcp

import (
	"spider/internal/dot11"
	"spider/internal/ipnet"
	"spider/internal/sim"
)

// ServerConfig controls a simulated AP-side DHCP server.
type ServerConfig struct {
	// Gateway is the server/gateway address handed to clients.
	Gateway ipnet.Addr
	// PoolBase is the first client address; leases are PoolBase+1,
	// PoolBase+2, ... (stable per client MAC).
	PoolBase ipnet.Addr
	// PoolSize caps the number of distinct leases.
	PoolSize int
	// RespDelayMin/Max bound the uniform per-response processing delay.
	// The paper's β is the end-to-end join response time; residential APs
	// show βmin ≈ 0.5 s and βmax of several seconds.
	RespDelayMin sim.Time
	RespDelayMax sim.Time
	// LeaseSecs is the advertised lease duration.
	LeaseSecs uint32
}

// DefaultServerConfig mirrors a typical open residential AP from the
// paper's measurements.
func DefaultServerConfig(gateway ipnet.Addr) ServerConfig {
	return ServerConfig{
		Gateway:      gateway,
		PoolBase:     gateway,
		PoolSize:     64,
		RespDelayMin: 100 * 1000 * 1000,  // 100 ms per response;
		RespDelayMax: 1250 * 1000 * 1000, // two responses span ≈[0.2s, 2.5s]
		LeaseSecs:    3600,
	}
}

// Server is a DHCP server bound to one AP. It answers Discover with Offer
// and Request with Ack (or Nak when the pool is exhausted or the requested
// address is stale), each after a sampled processing delay.
type Server struct {
	eng *sim.Engine
	rng *sim.RNG
	cfg ServerConfig

	leases map[dot11.MACAddr]ipnet.Addr
	next   int

	// Counters for experiment reporting.
	Offers int
	Acks   int
	Naks   int
}

// NewServer creates a server. rng must be a dedicated stream.
func NewServer(eng *sim.Engine, rng *sim.RNG, cfg ServerConfig) *Server {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 64
	}
	if cfg.RespDelayMax < cfg.RespDelayMin {
		cfg.RespDelayMax = cfg.RespDelayMin
	}
	return &Server{eng: eng, rng: rng, cfg: cfg, leases: make(map[dot11.MACAddr]ipnet.Addr)}
}

// Gateway returns the server's gateway address.
func (s *Server) Gateway() ipnet.Addr { return s.cfg.Gateway }

// leaseFor returns the stable lease for a client, allocating if needed.
// The zero address reports pool exhaustion.
func (s *Server) leaseFor(mac dot11.MACAddr) ipnet.Addr {
	if ip, ok := s.leases[mac]; ok {
		return ip
	}
	if s.next >= s.cfg.PoolSize {
		return ipnet.Unspecified
	}
	s.next++
	ip := s.cfg.PoolBase + ipnet.Addr(s.next)
	s.leases[mac] = ip
	return ip
}

// Handle processes one client message and, after the sampled processing
// delay, invokes reply with the response. Unknown or out-of-order messages
// are ignored, as a real server would silently drop them.
func (s *Server) Handle(msg Message, reply func(Message)) {
	var resp Message
	switch msg.Type {
	case Discover:
		ip := s.leaseFor(msg.ClientMAC)
		if ip.IsUnspecified() {
			return // pool exhausted: silence, client times out
		}
		s.Offers++
		resp = Message{Type: Offer, XID: msg.XID, ClientMAC: msg.ClientMAC,
			YourIP: ip, ServerIP: s.cfg.Gateway, LeaseSecs: s.cfg.LeaseSecs}
	case Request:
		ip := s.leaseFor(msg.ClientMAC)
		if ip.IsUnspecified() {
			return
		}
		if msg.YourIP != ip {
			// Stale cached lease (e.g. from a different visit): NAK so the
			// client restarts with Discover.
			s.Naks++
			resp = Message{Type: Nak, XID: msg.XID, ClientMAC: msg.ClientMAC, ServerIP: s.cfg.Gateway}
		} else {
			s.Acks++
			resp = Message{Type: Ack, XID: msg.XID, ClientMAC: msg.ClientMAC,
				YourIP: ip, ServerIP: s.cfg.Gateway, LeaseSecs: s.cfg.LeaseSecs}
		}
	default:
		return
	}
	delay := s.rng.UniformDuration(s.cfg.RespDelayMin, s.cfg.RespDelayMax+1)
	s.eng.Schedule(delay, func() { reply(resp) })
}

// HasLease reports whether the server currently holds a lease binding mac
// to ip, as used by the Request fast path.
func (s *Server) HasLease(mac dot11.MACAddr, ip ipnet.Addr) bool {
	got, ok := s.leases[mac]
	return ok && got == ip
}
