package dhcp

import (
	"errors"
	"time"

	"spider/internal/dot11"
	"spider/internal/ipam"
	"spider/internal/ipnet"
	"spider/internal/sim"
)

// ServerConfig controls a simulated AP-side DHCP server.
type ServerConfig struct {
	// Gateway is the server/gateway address handed to clients.
	Gateway ipnet.Addr
	// PoolBase is the first client address; leases are PoolBase+1,
	// PoolBase+2, ... (stable per client MAC). Only used when Binding is
	// nil: the server then owns a standalone single-pool ipam binding
	// covering exactly that range.
	PoolBase ipnet.Addr
	// PoolSize caps the number of distinct leases (Binding nil only).
	PoolSize int
	// Binding, when non-nil, is the ipam allocation handle the server
	// draws addresses from — how many APs on one backhaul share a pool
	// hierarchy with backup failover and per-AP reserves.
	Binding *ipam.Binding
	// RespDelayMin/Max bound the uniform per-response processing delay.
	// The paper's β is the end-to-end join response time; residential APs
	// show βmin ≈ 0.5 s and βmax of several seconds.
	RespDelayMin sim.Time
	RespDelayMax sim.Time
	// LeaseSecs is the advertised lease duration.
	LeaseSecs uint32
	// ExpireLeases enforces LeaseSecs server-side: a lease that is not
	// renewed is reclaimed by a sim-time sweep exactly when it expires,
	// so LeasesInUse decays without an explicit release. Off by default
	// so that unit harnesses draining the event queue see no background
	// events; core scenarios turn it on.
	ExpireLeases bool
}

// DefaultServerConfig mirrors a typical open residential AP from the
// paper's measurements.
func DefaultServerConfig(gateway ipnet.Addr) ServerConfig {
	return ServerConfig{
		Gateway:      gateway,
		PoolBase:     gateway,
		PoolSize:     64,
		RespDelayMin: 100 * 1000 * 1000,  // 100 ms per response;
		RespDelayMax: 1250 * 1000 * 1000, // two responses span ≈[0.2s, 2.5s]
		LeaseSecs:    3600,
	}
}

// FaultMode selects an injected server misbehaviour (package chaos).
type FaultMode uint8

const (
	// FaultNone is normal operation.
	FaultNone FaultMode = iota
	// FaultSilent drops every client message without a response.
	FaultSilent
	// FaultNak answers every Discover and Request with NAK.
	FaultNak
	// FaultExhausted makes the pool behave exhausted for clients that do
	// not already hold a lease.
	FaultExhausted
)

func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultSilent:
		return "silent"
	case FaultNak:
		return "nak"
	case FaultExhausted:
		return "exhausted"
	}
	return "unknown"
}

// Server is a DHCP server bound to one AP. It answers Discover with Offer
// and Request with Ack (or Nak when the pool is exhausted or the requested
// address conflicts with the live pool), each after a sampled processing
// delay. Address management lives in internal/ipam: the server translates
// protocol messages into allocations against its binding.
type Server struct {
	eng *sim.Engine
	rng *sim.RNG
	cfg ServerConfig

	binding *ipam.Binding
	owned   bool // binding built from PoolBase/PoolSize, reset rebuilds it
	fault   FaultMode

	sweepEv *sim.Event
	sweepAt sim.Time

	// Counters for experiment reporting.
	Offers        int
	Acks          int
	Naks          int
	PoolExhausted int // requests refused because no address was free
	Conflicts     int // requests NAKed because the address was not validly rebindable
	Reclaimed     int // leases reclaimed by the expiry sweep
	FaultDrops    int // messages swallowed by FaultSilent
}

// NewServer creates a server. rng must be a dedicated stream.
func NewServer(eng *sim.Engine, rng *sim.RNG, cfg ServerConfig) *Server {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 64
	}
	if cfg.RespDelayMax < cfg.RespDelayMin {
		cfg.RespDelayMax = cfg.RespDelayMin
	}
	s := &Server{eng: eng, rng: rng, cfg: cfg, binding: cfg.Binding}
	if s.binding == nil {
		s.binding = ipam.Solo(cfg.Gateway.String(), cfg.PoolBase, cfg.PoolSize)
		s.owned = true
	}
	return s
}

// Gateway returns the server's gateway address.
func (s *Server) Gateway() ipnet.Addr { return s.cfg.Gateway }

// Binding exposes the server's ipam allocation handle.
func (s *Server) Binding() *ipam.Binding { return s.binding }

// SetFault switches the server's fault mode (fault injection).
func (s *Server) SetFault(m FaultMode) { s.fault = m }

// Fault returns the current fault mode.
func (s *Server) Fault() FaultMode { return s.fault }

// LeasesInUse reports the number of currently bound leases.
func (s *Server) LeasesInUse() int { return s.binding.LeaseCount() }

// Exhausted reports whether a fresh allocation would fail right now —
// either the binding's whole hierarchy is in use or the server is faulted
// to behave so. Outage attribution reads this to name `ipam-exhausted`.
func (s *Server) Exhausted() bool {
	return s.fault == FaultExhausted || s.binding.Full()
}

// Release returns mac's lease to the pool; a later allocation may hand
// the address to a different client.
func (s *Server) Release(mac dot11.MACAddr) { s.binding.Release(mac) }

// Reset drops every lease and clears any fault mode, as a power cycle
// would. Responses already scheduled still fire; the AP layer gates them.
func (s *Server) Reset() {
	if s.owned {
		// Exclusive pool: rebuild from scratch so allocation restarts at
		// PoolBase+1 (virgin order), exactly as before the power cycle.
		s.binding = ipam.Solo(s.cfg.Gateway.String(), s.cfg.PoolBase, s.cfg.PoolSize)
	} else {
		s.binding.Reset()
	}
	s.fault = FaultNone
	s.disarmSweep()
}

// ttl returns the enforced lease duration (0 when expiry is off).
func (s *Server) ttl() sim.Time {
	if !s.cfg.ExpireLeases {
		return 0
	}
	return sim.Time(s.cfg.LeaseSecs) * sim.Time(time.Second)
}

// armSweep (re)schedules the expiry sweep at the binding's earliest
// pending lease deadline. One event exists at a time, always at the
// earliest deadline, so expiry is exact and the queue drains when no
// lease is pending — no polling ticker.
func (s *Server) armSweep() {
	next := s.binding.NextExpiry()
	if next == 0 {
		s.disarmSweep()
		return
	}
	if s.sweepEv != nil && s.sweepAt <= next {
		return
	}
	s.disarmSweep()
	s.sweepAt = next
	s.sweepEv = s.eng.ScheduleAt(next, s.sweep)
}

func (s *Server) disarmSweep() {
	if s.sweepEv != nil {
		s.eng.Cancel(s.sweepEv)
		s.sweepEv = nil
	}
	s.sweepAt = 0
}

// sweep reclaims every expired lease, then re-arms for the next deadline.
func (s *Server) sweep() {
	s.sweepEv = nil
	s.sweepAt = 0
	s.Reclaimed += len(s.binding.SweepExpired(s.eng.Now()))
	s.armSweep()
}

// nak builds the typed refusal for msg.
func (s *Server) nak(msg Message) Message {
	s.Naks++
	return Message{Type: Nak, XID: msg.XID, ClientMAC: msg.ClientMAC, ServerIP: s.cfg.Gateway}
}

// Handle processes one client message and, after the sampled processing
// delay, invokes reply with the response. Unknown or out-of-order messages
// are ignored, as a real server would silently drop them.
func (s *Server) Handle(msg Message, reply func(Message)) {
	if s.fault == FaultSilent && (msg.Type == Discover || msg.Type == Request) {
		s.FaultDrops++
		return
	}
	now := s.eng.Now()
	var resp Message
	switch msg.Type {
	case Discover:
		if s.fault == FaultNak {
			resp = s.nak(msg)
			break
		}
		if s.fault == FaultExhausted && !s.binding.HasLease(msg.ClientMAC) {
			s.PoolExhausted++
			return // behaves exhausted: silence, client times out
		}
		ip, err := s.binding.Allocate(now, msg.ClientMAC, s.ttl())
		if err != nil {
			s.PoolExhausted++
			return // pool exhausted: silence, client times out
		}
		s.armSweep()
		s.Offers++
		resp = Message{Type: Offer, XID: msg.XID, ClientMAC: msg.ClientMAC,
			YourIP: ip, ServerIP: s.cfg.Gateway, LeaseSecs: s.cfg.LeaseSecs}
	case Request:
		if s.fault == FaultNak {
			resp = s.nak(msg)
			break
		}
		if s.fault == FaultExhausted && !s.binding.HasLease(msg.ClientMAC) {
			// Typed exhaustion: refuse the Request outright so the client
			// fails fast instead of timing out.
			s.PoolExhausted++
			resp = s.nak(msg)
			break
		}
		ip, err := s.binding.AllocateSpecific(now, msg.ClientMAC, msg.YourIP, s.ttl())
		if err != nil {
			// The requested address did not validate against the live
			// pool: reclaimed and re-issued to someone else, stale from a
			// different visit, or outside this AP's hierarchy. NAK so the
			// client restarts with Discover instead of riding a lease the
			// server no longer stands behind.
			if errors.Is(err, ipam.ErrConflict) {
				s.Conflicts++
			} else {
				s.PoolExhausted++
			}
			resp = s.nak(msg)
			break
		}
		s.armSweep()
		s.Acks++
		resp = Message{Type: Ack, XID: msg.XID, ClientMAC: msg.ClientMAC,
			YourIP: ip, ServerIP: s.cfg.Gateway, LeaseSecs: s.cfg.LeaseSecs}
	default:
		return
	}
	delay := s.rng.UniformDuration(s.cfg.RespDelayMin, s.cfg.RespDelayMax+1)
	s.eng.Schedule(delay, func() { reply(resp) })
}

// HasLease reports whether the server currently holds a lease binding mac
// to ip, as used by the Request fast path.
func (s *Server) HasLease(mac dot11.MACAddr, ip ipnet.Addr) bool {
	return s.binding.Holds(mac, ip)
}
