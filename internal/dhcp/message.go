// Package dhcp implements the DHCP join machinery whose timing dominates
// Spider's mobile performance: a wire-format message codec, a server with a
// configurable response-delay distribution (the paper's β ∈ [βmin, βmax]),
// and a client state machine with tunable retransmission timeouts and the
// per-BSSID cached-lease fast path the paper recommends.
package dhcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spider/internal/dot11"
	"spider/internal/ipnet"
)

// MessageType is the DHCP message kind.
type MessageType uint8

// The four-message happy path plus NAK.
const (
	Discover MessageType = iota + 1
	Offer
	Request
	Ack
	Nak
)

func (t MessageType) String() string {
	switch t {
	case Discover:
		return "discover"
	case Offer:
		return "offer"
	case Request:
		return "request"
	case Ack:
		return "ack"
	case Nak:
		return "nak"
	}
	return fmt.Sprintf("dhcp-type-%d", uint8(t))
}

// Message is a DHCP message. YourIP is the address being offered or
// acknowledged; ServerIP doubles as the gateway address in this simulation.
type Message struct {
	Type      MessageType
	XID       uint32
	ClientMAC dot11.MACAddr
	YourIP    ipnet.Addr
	ServerIP  ipnet.Addr
	LeaseSecs uint32
}

const messageLen = 1 + 4 + 6 + 4 + 4 + 4

// ErrShortMessage reports a truncated DHCP message.
var ErrShortMessage = errors.New("dhcp: message too short")

// ErrBadType reports an unknown message type byte.
var ErrBadType = errors.New("dhcp: unknown message type")

// AppendTo serializes the message onto b.
func (m *Message) AppendTo(b []byte) []byte {
	b = append(b, byte(m.Type))
	b = binary.BigEndian.AppendUint32(b, m.XID)
	b = append(b, m.ClientMAC[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(m.YourIP))
	b = binary.BigEndian.AppendUint32(b, uint32(m.ServerIP))
	return binary.BigEndian.AppendUint32(b, m.LeaseSecs)
}

// Bytes serializes the message into a fresh buffer.
func (m *Message) Bytes() []byte { return m.AppendTo(make([]byte, 0, messageLen)) }

// DecodeMessage parses a serialized DHCP message.
func DecodeMessage(data []byte) (Message, error) {
	var m Message
	if len(data) < messageLen {
		return m, ErrShortMessage
	}
	m.Type = MessageType(data[0])
	if m.Type < Discover || m.Type > Nak {
		return m, ErrBadType
	}
	m.XID = binary.BigEndian.Uint32(data[1:5])
	copy(m.ClientMAC[:], data[5:11])
	m.YourIP = ipnet.Addr(binary.BigEndian.Uint32(data[11:15]))
	m.ServerIP = ipnet.Addr(binary.BigEndian.Uint32(data[15:19]))
	m.LeaseSecs = binary.BigEndian.Uint32(data[19:23])
	return m, nil
}
