package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at equal time fired out of order: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	e.RunAll()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for already-cancelled event")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestCancelNil(t *testing.T) {
	e := NewEngine()
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.Run(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	e.Run(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second run, want 3", len(fired))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s (advance to until)", e.Now())
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 5 {
			e.Schedule(time.Millisecond, recur)
		}
	}
	e.Schedule(0, recur)
	e.RunAll()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 4*time.Millisecond {
		t.Fatalf("clock = %v, want 4ms", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt the loop)", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var stop func()
	stop = e.Ticker(100*time.Millisecond, func() {
		ticks++
		if ticks == 5 {
			stop()
		}
	})
	e.Run(10 * time.Second)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ticker(0) did not panic")
		}
	}()
	NewEngine().Ticker(0, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

// Property: for any set of delays, events fire in non-decreasing time order
// and the final clock equals the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var max Time
		for _, d := range delays {
			dd := Time(d) * time.Millisecond
			if dd > max {
				max = dd
			}
			e.Schedule(dd, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RNG streams with distinct labels are decorrelated and
// deterministic for a fixed seed.
func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Stream("phy")
	b := NewRNG(42).Stream("phy")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+label produced different streams")
		}
	}
	c := NewRNG(42).Stream("phy")
	d := NewRNG(42).Stream("dhcp")
	same := 0
	for i := 0; i < 100; i++ {
		if c.Float64() == d.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different labels coincide on %d/100 draws", same)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 50; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGUniformDuration(t *testing.T) {
	g := NewRNG(7)
	lo, hi := 500*time.Millisecond, 5*time.Second
	for i := 0; i < 1000; i++ {
		v := g.UniformDuration(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("UniformDuration out of range: %v", v)
		}
	}
	if g.UniformDuration(hi, lo) != hi {
		t.Fatal("degenerate range should return lo")
	}
}

func TestRunAllDrainsQueue(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 100; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { fired++ })
	}
	e.RunAll()
	if fired != 100 || e.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", fired, e.Pending())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	e.Schedule(0, func() {})
	e.Schedule(0, func() {})
	e.RunAll()
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5*time.Second, func() {})
	if ev.At() != 5*time.Second {
		t.Fatalf("At = %v", ev.At())
	}
	if ev.Cancelled() {
		t.Fatal("fresh event cancelled")
	}
}

func TestCancelDuringTick(t *testing.T) {
	// Cancelling a later event from within an earlier one must work.
	e := NewEngine()
	var late *Event
	lateFired := false
	late = e.Schedule(2*time.Second, func() { lateFired = true })
	e.Schedule(time.Second, func() { e.Cancel(late) })
	e.RunAll()
	if lateFired {
		t.Fatal("cancelled event fired")
	}
}

func TestRNGPermAndIntn(t *testing.T) {
	g := NewRNG(3)
	p := g.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad perm %v", p)
		}
		seen[v] = true
	}
	for i := 0; i < 100; i++ {
		if v := g.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestExpDuration(t *testing.T) {
	g := NewRNG(9)
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += g.ExpDuration(time.Second)
	}
	mean := total / n
	if mean < 900*time.Millisecond || mean > 1100*time.Millisecond {
		t.Fatalf("exp mean = %v, want ≈1s", mean)
	}
}

func TestPeekNextEmpty(t *testing.T) {
	e := NewEngine()
	if at, ok := e.PeekNext(); ok || at != 0 {
		t.Fatalf("PeekNext on empty queue = (%v, %v), want (0, false)", at, ok)
	}
	if e.Len() != 0 {
		t.Fatalf("Len on empty queue = %d, want 0", e.Len())
	}
}

func TestPeekNextReportsHead(t *testing.T) {
	e := NewEngine()
	e.Schedule(3*time.Second, func() {})
	e.Schedule(time.Second, func() {})
	if at, ok := e.PeekNext(); !ok || at != time.Second {
		t.Fatalf("PeekNext = (%v, %v), want (1s, true)", at, ok)
	}
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	e.Run(time.Second)
	if at, ok := e.PeekNext(); !ok || at != 3*time.Second {
		t.Fatalf("PeekNext after running head = (%v, %v), want (3s, true)", at, ok)
	}
}

func TestPeekNextAfterCancelledHead(t *testing.T) {
	e := NewEngine()
	head := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	e.Cancel(head)
	// Cancel removes the event from the queue immediately, so the peek
	// must report the surviving event, never the cancelled head.
	if at, ok := e.PeekNext(); !ok || at != 2*time.Second {
		t.Fatalf("PeekNext after cancelling head = (%v, %v), want (2s, true)", at, ok)
	}
	if e.Len() != 1 {
		t.Fatalf("Len after cancel = %d, want 1", e.Len())
	}
	e.Cancel(head)
	if e.Len() != 1 {
		t.Fatalf("double-cancel changed Len to %d", e.Len())
	}
}
