package sim

import "math/rand"

// RNG wraps a seeded deterministic random source. Components derive their
// own streams so that adding events to one component does not perturb the
// random sequence seen by another.
type RNG struct {
	r    *rand.Rand
	seed int64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

func fnv1a(label string) int64 {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return h
}

// Stream derives an independent child generator. The derivation mixes the
// label so distinct labels yield decorrelated streams. Each Stream call
// consumes parent state, so the derivation depends on how many streams were
// drawn before it; use Derive when the caller cannot guarantee a fixed
// derivation order.
func (g *RNG) Stream(label string) *RNG {
	return NewRNG(fnv1a(label) ^ g.r.Int63())
}

// Derive returns an independent child generator that is a pure function of
// (seed, label): unlike Stream it consumes no parent state, so siblings can
// be derived in any order — or concurrently with Stream calls — without
// perturbing one another. Scenario clients use it so that client
// construction order cannot change a run.
func (g *RNG) Derive(label string) *RNG {
	return NewRNG(fnv1a(label) ^ (g.seed * 0x5851f42d4c957f2d) ^ 0x14057b7ef767814f)
}

// Coin returns one uniform [0,1) variate that is a pure function of
// (seed, label) — the same derivation key as Derive, finished with a
// splitmix64 mix instead of seeding a full generator. Seeding a
// math/rand source costs ~20µs (the lagged-Fibonacci state is 607
// words); samplers that need exactly one decision per label (the
// telemetry flight recorder's per-client keep/drop coin) would pay that
// per label. Like Derive it consumes no generator state, so call order
// cannot perturb anything.
func (g *RNG) Coin(label string) float64 {
	x := uint64(fnv1a(label) ^ (g.seed * 0x5851f42d4c957f2d) ^ 0x14057b7ef767814f)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a pseudo-random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*g.r.Float64()
}

// UniformDuration returns a uniform duration in [lo, hi).
func (g *RNG) UniformDuration(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(g.r.Int63n(int64(hi-lo)))
}

// ExpDuration returns an exponentially distributed duration with the given
// mean.
func (g *RNG) ExpDuration(mean Time) Time {
	return Time(float64(mean) * g.r.ExpFloat64())
}
