// Package sim provides the discrete-event simulation kernel used by every
// other substrate in this repository: a virtual clock, a cancellable event
// scheduler with deterministic ordering, and seeded random-number streams.
//
// All simulated components (radios, APs, DHCP servers, TCP endpoints,
// drivers) schedule callbacks on a shared *Engine. Events at equal virtual
// times fire in scheduling order, so a run is a pure function of its seed
// and parameters.
//
// The scheduler is a hierarchical timer wheel over pooled event nodes: far
// events cost O(1) to insert and sit in coarse slots until the clock nears
// them; due events drain into a small (at, seq)-ordered batch heap that
// reproduces the exact total order of a global binary heap. City-scale runs
// schedule tens of millions of events, so nodes are recycled through a
// free list and fire-and-forget callers can schedule a Runnable without
// allocating a handle or a closure.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is an absolute virtual time measured from the start of the run.
type Time = time.Duration

// Infinity is a time later than any event a run can schedule.
const Infinity Time = math.MaxInt64

// Runnable is a pooled alternative to a func() callback: hot paths embed a
// job struct and implement RunEvent on it, so scheduling captures one
// pointer instead of allocating a closure (and no *Event handle is created).
type Runnable interface {
	RunEvent()
}

// Wheel geometry. Ticks are 2^tickBits ns (~65.5 µs): finer than any MAC
// timing constant in the stack, so same-tick collisions are resolved by the
// batch heap, and coarse enough that a 6-level * 64-slot wheel covers
// 2^(16+36) ns ≈ 52 days before the overflow list is consulted.
const (
	tickBits   = 16
	levelBits  = 6
	wheelSlots = 1 << levelBits // 64
	slotMask   = wheelSlots - 1
	numLevels  = 6
)

// node placement markers (node.level); values >= 0 are wheel levels.
const (
	levelBatch    = -1 // in the due-batch heap; node.index is the heap slot
	levelOverflow = -2 // on the overflow list (beyond the wheel horizon)
	levelFree     = -3 // on the free list
)

// node is a pooled scheduler entry. It lives on exactly one of: a wheel
// slot's doubly-linked list, the overflow list, the batch heap, or the free
// list. Nodes are recycled after firing or cancellation; the public *Event
// handle is detached first, so stale handles can never reach a recycled node.
type node struct {
	at    Time
	seq   uint64
	fn    func()
	r     Runnable
	ev    *Event // back-pointer to the handle, nil for fire-and-forget
	next  *node
	prev  *node
	level int32 // wheel level, or a placement marker above
	slot  int32 // wheel slot index within level
	index int32 // batch heap index while level == levelBatch
}

// Event is a handle to a scheduled callback. It may be cancelled until it
// has fired. The handle is detached from its pooled node when the event
// fires or is cancelled, so holding one past that point is always safe.
type Event struct {
	at     Time
	n      *node
	cancel bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulations are deterministic and single-goroutine by
// design.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	stopped bool
	pending int

	// currentTick is the wheel cursor: every node stored in a wheel level
	// has tick(at) > currentTick, and every node in the batch has
	// tick(at) <= currentTick. The cursor only moves forward, and may run
	// ahead of now (events scheduled behind it simply join the batch,
	// where the heap restores (at, seq) order).
	currentTick uint64
	levels      [numLevels][wheelSlots]*node
	occ         [numLevels]uint64 // per-level slot occupancy bitmask

	batch    []*node // min-heap on (at, seq): the only totally ordered region
	overflow *node   // events beyond the wheel horizon, unordered

	free      *node
	freeChunk []node // bulk allocation backing the free list
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return e.pending }

// Len returns the number of events still scheduled — an alias for Pending
// under the conventional container name, for callers (spider-serve) that
// read queue depth as a quiescence signal.
func (e *Engine) Len() int { return e.pending }

// PeekNext returns the virtual time of the earliest scheduled event
// without firing it, and false when the queue is empty. Cancelled events
// leave the queue immediately, so the reported time is always live. The
// serve loop uses it to find quiescent barrier points: a checkpoint taken
// at a time t with PeekNext() > t can never split a batch of equal-time
// events.
func (e *Engine) PeekNext() (Time, bool) {
	if len(e.batch) == 0 && !e.advance() {
		return 0, false
	}
	return e.batch[0].at, true
}

// Schedule runs fn after delay. A negative delay is treated as zero: the
// event fires at the current time, after events already scheduled for that
// time.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil callback")
	}
	n := e.scheduleNode(at, fn, nil)
	ev := &Event{at: n.at, n: n}
	n.ev = ev
	return ev
}

// ScheduleCall runs r.RunEvent() after delay without allocating a closure
// or an *Event handle. A negative delay is treated as zero. Use for
// fire-and-forget hot-path work (frame delivery, backhaul completions).
func (e *Engine) ScheduleCall(delay Time, r Runnable) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleCallAt(e.now+delay, r)
}

// ScheduleCallAt runs r.RunEvent() at absolute virtual time at (clamped to
// now) without allocating a closure or an *Event handle.
func (e *Engine) ScheduleCallAt(at Time, r Runnable) {
	if r == nil {
		panic("sim: ScheduleCallAt with nil Runnable")
	}
	e.scheduleNode(at, nil, r)
}

func (e *Engine) scheduleNode(at Time, fn func(), r Runnable) *node {
	if at < e.now {
		at = e.now
	}
	n := e.allocNode()
	n.at = at
	n.seq = e.seq
	n.fn = fn
	n.r = r
	e.seq++
	e.pending++
	e.place(n)
	return n
}

// place inserts a node into the region its tick calls for: the batch heap
// when it is not ahead of the cursor, a wheel slot within the horizon, or
// the overflow list beyond it.
func (e *Engine) place(n *node) {
	tick := uint64(n.at) >> tickBits
	if tick <= e.currentTick {
		e.batchPush(n)
		return
	}
	level := (bits.Len64(tick^e.currentTick) - 1) / levelBits
	if level >= numLevels {
		n.level = levelOverflow
		n.slot = 0
		n.prev = nil
		n.next = e.overflow
		if e.overflow != nil {
			e.overflow.prev = n
		}
		e.overflow = n
		return
	}
	slot := int32((tick >> (uint(level) * levelBits)) & slotMask)
	n.level = int32(level)
	n.slot = slot
	n.prev = nil
	n.next = e.levels[level][slot]
	if n.next != nil {
		n.next.prev = n
	}
	e.levels[level][slot] = n
	e.occ[level] |= 1 << uint(slot)
}

// unlink removes a node from whichever region holds it.
func (e *Engine) unlink(n *node) {
	switch n.level {
	case levelBatch:
		e.batchRemove(int(n.index))
	case levelOverflow:
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			e.overflow = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
	default:
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			e.levels[n.level][n.slot] = n.next
			if n.next == nil {
				e.occ[n.level] &^= 1 << uint(n.slot)
			}
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
	}
	n.next, n.prev = nil, nil
}

// advance moves the wheel cursor to the next occupied tick and drains that
// tick's events into the batch heap. It returns false when nothing is
// scheduled anywhere. It never touches the clock (now), so PeekNext can
// call it freely.
func (e *Engine) advance() bool {
	for {
		if len(e.batch) > 0 {
			return true
		}
		// Nearest occupied level-0 slot in the current window. Slots at
		// or below the cursor's own index are empty by construction
		// (due events go to the batch), so masking from the cursor up
		// never resurrects a past tick.
		c0 := e.currentTick & slotMask
		if m := e.occ[0] &^ ((1 << c0) - 1); m != 0 {
			s := uint64(bits.TrailingZeros64(m))
			e.currentTick = (e.currentTick &^ slotMask) | s
			e.drainSlot(0, int32(s))
			return true
		}
		if e.cascade() {
			continue
		}
		if e.overflow != nil {
			e.refillFromOverflow()
			continue
		}
		return false
	}
}

// cascade scans the higher levels finest-first for the nearest occupied
// slot, jumps the cursor to that slot's base tick, and redistributes its
// nodes to finer levels (or the batch, for nodes landing exactly on the
// new cursor tick).
func (e *Engine) cascade() bool {
	for level := 1; level < numLevels; level++ {
		shift := uint(level) * levelBits
		c := (e.currentTick >> shift) & slotMask
		// Strictly above the cursor's index: the cursor's own slot was
		// drained when the cursor entered this window.
		m := e.occ[level] &^ ((1 << (c + 1)) - 1)
		if m == 0 {
			continue
		}
		s := uint64(bits.TrailingZeros64(m))
		windowMask := uint64(1)<<(shift+levelBits) - 1
		e.currentTick = (e.currentTick &^ windowMask) | (s << shift)
		e.drainSlot(level, int32(s))
		return true
	}
	return false
}

// drainSlot reinserts every node of a wheel slot relative to the (just
// moved) cursor. Level-0 drains land entirely in the batch; higher-level
// drains scatter across finer levels. Intra-slot list order is irrelevant:
// the batch heap re-establishes the global (at, seq) order.
func (e *Engine) drainSlot(level int, slot int32) {
	n := e.levels[level][slot]
	e.levels[level][slot] = nil
	e.occ[level] &^= 1 << uint(slot)
	for n != nil {
		next := n.next
		n.next, n.prev = nil, nil
		e.place(n)
		n = next
	}
}

// refillFromOverflow jumps the cursor to the earliest overflow tick and
// reinserts every overflow node; nodes still beyond the horizon go back on
// the list. Overflow is empty in any realistic run (the horizon is ~52
// days), so the O(n) scan is fine.
func (e *Engine) refillFromOverflow() {
	minTick := ^uint64(0)
	for n := e.overflow; n != nil; n = n.next {
		if t := uint64(n.at) >> tickBits; t < minTick {
			minTick = t
		}
	}
	e.currentTick = minTick
	n := e.overflow
	e.overflow = nil
	for n != nil {
		next := n.next
		n.next, n.prev = nil, nil
		e.place(n)
		n = next
	}
}

// Cancel removes a scheduled event. Cancelling a fired or already-cancelled
// event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.n == nil {
		return false
	}
	n := ev.n
	e.unlink(n)
	ev.n = nil
	ev.cancel = true
	n.ev = nil
	e.pending--
	e.freeNode(n)
	return true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// fireNext pops and executes the earliest due event. The caller has
// ensured the batch is non-empty; the batch minimum is the global minimum
// because every wheel node's tick is strictly ahead of the cursor.
func (e *Engine) fireNext(n *node) {
	e.batchRemove(0)
	e.now = n.at
	e.fired++
	e.pending--
	fn, r := n.fn, n.r
	if ev := n.ev; ev != nil {
		ev.n = nil
		n.ev = nil
	}
	e.freeNode(n)
	if r != nil {
		r.RunEvent()
	} else {
		fn()
	}
}

// Run executes events until no events remain or the clock would pass until.
// The clock is left at min(until, time of last event) — or exactly until if
// the queue drains earlier, so that repeated Run calls advance monotonically.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.batch) == 0 && !e.advance() {
			break
		}
		next := e.batch[0]
		if next.at > until {
			break
		}
		e.fireNext(next)
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

// RunAll executes every remaining event. It panics after a very large number
// of events as a runaway-loop backstop.
func (e *Engine) RunAll() {
	const backstop = 1 << 34
	e.stopped = false
	for !e.stopped {
		if len(e.batch) == 0 && !e.advance() {
			break
		}
		e.fireNext(e.batch[0])
		if e.fired > backstop {
			panic(fmt.Sprintf("sim: runaway event loop: %d events fired", e.fired))
		}
	}
}

// Ticker invokes fn every period until cancelled via the returned stop
// function. The first tick fires one period from now. Each tick reuses one
// pooled node and the single tickerJob allocated here — re-arming does not
// allocate, unlike a Schedule chain which would build a handle per tick.
func (e *Engine) Ticker(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	t := &tickerJob{e: e, period: period, fn: fn}
	t.n = e.scheduleNode(e.now+period, nil, t)
	return t.stop
}

type tickerJob struct {
	e       *Engine
	period  Time
	fn      func()
	n       *node
	stopped bool
}

func (t *tickerJob) RunEvent() {
	if t.stopped {
		return
	}
	t.n = nil // the node that fired us is already recycled
	t.fn()
	if !t.stopped {
		t.n = t.e.scheduleNode(t.e.now+t.period, nil, t)
	}
}

func (t *tickerJob) stop() {
	t.stopped = true
	if n := t.n; n != nil {
		t.n = nil
		t.e.unlink(n)
		t.e.pending--
		t.e.freeNode(n)
	}
}

// --- batch heap: min-heap of nodes ordered by (at, seq) ---

func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) batchPush(n *node) {
	n.level = levelBatch
	n.index = int32(len(e.batch))
	e.batch = append(e.batch, n)
	e.batchUp(len(e.batch) - 1)
}

// batchRemove deletes the node at heap index i (0 = minimum) and restores
// the heap property.
func (e *Engine) batchRemove(i int) {
	last := len(e.batch) - 1
	if i != last {
		e.batchSwap(i, last)
	}
	e.batch[last] = nil
	e.batch = e.batch[:last]
	if i != last {
		if !e.batchUp(i) {
			e.batchDown(i)
		}
	}
}

func (e *Engine) batchSwap(i, j int) {
	b := e.batch
	b[i], b[j] = b[j], b[i]
	b[i].index = int32(i)
	b[j].index = int32(j)
}

func (e *Engine) batchUp(i int) (moved bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(e.batch[i], e.batch[parent]) {
			break
		}
		e.batchSwap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (e *Engine) batchDown(i int) {
	n := len(e.batch)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		m := left
		if right := left + 1; right < n && nodeLess(e.batch[right], e.batch[left]) {
			m = right
		}
		if !nodeLess(e.batch[m], e.batch[i]) {
			return
		}
		e.batchSwap(i, m)
		i = m
	}
}

// --- node pool ---

const nodeChunk = 128

func (e *Engine) allocNode() *node {
	n := e.free
	if n == nil {
		if len(e.freeChunk) == 0 {
			e.freeChunk = make([]node, nodeChunk)
		}
		n = &e.freeChunk[0]
		e.freeChunk = e.freeChunk[1:]
		return n
	}
	e.free = n.next
	n.next = nil
	return n
}

func (e *Engine) freeNode(n *node) {
	n.fn = nil
	n.r = nil
	n.ev = nil
	n.prev = nil
	n.level = levelFree
	n.next = e.free
	e.free = n
}
