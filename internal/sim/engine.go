// Package sim provides the discrete-event simulation kernel used by every
// other substrate in this repository: a virtual clock, a cancellable event
// scheduler with deterministic ordering, and seeded random-number streams.
//
// All simulated components (radios, APs, DHCP servers, TCP endpoints,
// drivers) schedule callbacks on a shared *Engine. Events at equal virtual
// times fire in scheduling order, so a run is a pure function of its seed
// and parameters.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is an absolute virtual time measured from the start of the run.
type Time = time.Duration

// Infinity is a time later than any event a run can schedule.
const Infinity Time = math.MaxInt64

// Event is a handle to a scheduled callback. It may be cancelled until it
// has fired.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once fired or cancelled
	cancel bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulations are deterministic and single-goroutine by
// design.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	fired   uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Len returns the number of events still scheduled — an alias for Pending
// under the conventional container name, for callers (spider-serve) that
// read queue depth as a quiescence signal.
func (e *Engine) Len() int { return len(e.queue) }

// PeekNext returns the virtual time of the earliest scheduled event
// without firing it, and false when the queue is empty. Cancelled events
// leave the queue immediately, so the reported time is always live. The
// serve loop uses it to find quiescent barrier points: a checkpoint taken
// at a time t with PeekNext() > t can never split a batch of equal-time
// events.
func (e *Engine) PeekNext() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Schedule runs fn after delay. A negative delay is treated as zero: the
// event fires at the current time, after events already scheduled for that
// time.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a scheduled event. Cancelling a fired or already-cancelled
// event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.cancel = true
	return true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until no events remain or the clock would pass until.
// The clock is left at min(until, time of last event) — or exactly until if
// the queue drains earlier, so that repeated Run calls advance monotonically.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.fired++
		fn := next.fn
		next.fn = nil
		fn()
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

// RunAll executes every remaining event. It panics after a very large number
// of events as a runaway-loop backstop.
func (e *Engine) RunAll() {
	const backstop = 1 << 34
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := heap.Pop(&e.queue).(*Event)
		e.now = next.at
		e.fired++
		fn := next.fn
		next.fn = nil
		fn()
		if e.fired > backstop {
			panic(fmt.Sprintf("sim: runaway event loop: %d events fired", e.fired))
		}
	}
}

// Ticker invokes fn every period until cancelled via the returned stop
// function. The first tick fires one period from now.
func (e *Engine) Ticker(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic("sim: Ticker with non-positive period")
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = e.Schedule(period, tick)
		}
	}
	ev = e.Schedule(period, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}
