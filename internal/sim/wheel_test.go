package sim

import (
	"fmt"
	"testing"
	"time"
)

// differential harness: drive the timer-wheel Engine and the reference
// heapEngine through the same randomized workload and require identical
// (time, id) firing sequences, identical clocks, and identical counters.

type firing struct {
	at Time
	id int
}

type diffRig struct {
	wheel *Engine
	heap  *heapEngine

	wheelLog []firing
	heapLog  []firing

	wheelEvs map[int]*Event
	heapEvs  map[int]*heapEvent
	nextID   int
}

func newDiffRig() *diffRig {
	return &diffRig{
		wheel:    NewEngine(),
		heap:     newHeapEngine(),
		wheelEvs: make(map[int]*Event),
		heapEvs:  make(map[int]*heapEvent),
	}
}

// scheduleAt registers the same callback on both engines and returns its id.
func (r *diffRig) scheduleAt(at Time) int {
	id := r.nextID
	r.nextID++
	r.wheelEvs[id] = r.wheel.ScheduleAt(at, func() {
		r.wheelLog = append(r.wheelLog, firing{r.wheel.Now(), id})
	})
	r.heapEvs[id] = r.heap.ScheduleAt(at, func() {
		r.heapLog = append(r.heapLog, firing{r.heap.Now(), id})
	})
	return id
}

func (r *diffRig) cancel(id int) {
	cw := r.wheel.Cancel(r.wheelEvs[id])
	ch := r.heap.Cancel(r.heapEvs[id])
	if cw != ch {
		panic(fmt.Sprintf("Cancel(%d) diverged: wheel=%v heap=%v", id, cw, ch))
	}
}

func (r *diffRig) check(t *testing.T) {
	t.Helper()
	if len(r.wheelLog) != len(r.heapLog) {
		t.Fatalf("firing counts diverged: wheel=%d heap=%d", len(r.wheelLog), len(r.heapLog))
	}
	for i := range r.wheelLog {
		if r.wheelLog[i] != r.heapLog[i] {
			t.Fatalf("firing %d diverged: wheel=%+v heap=%+v", i, r.wheelLog[i], r.heapLog[i])
		}
	}
	if r.wheel.Now() != r.heap.Now() {
		t.Fatalf("clocks diverged: wheel=%v heap=%v", r.wheel.Now(), r.heap.Now())
	}
	if r.wheel.Pending() != r.heap.Pending() {
		t.Fatalf("pending diverged: wheel=%d heap=%d", r.wheel.Pending(), r.heap.Pending())
	}
	if r.wheel.Fired() != r.heap.Fired() {
		t.Fatalf("fired diverged: wheel=%d heap=%d", r.wheel.Fired(), r.heap.Fired())
	}
	wt, wok := r.wheel.PeekNext()
	ht, hok := r.heap.PeekNext()
	if wok != hok || (wok && wt != ht) {
		t.Fatalf("PeekNext diverged: wheel=(%v,%v) heap=(%v,%v)", wt, wok, ht, hok)
	}
}

// TestDifferentialRandomWorkload exercises randomized schedule/cancel
// mixes across several seeds, with delays spanning sub-tick jitter to
// multi-level wheel distances, and random StepUntil-style Run barriers.
func TestDifferentialRandomWorkload(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rig := newDiffRig()
			rng := NewRNG(seed).Stream("differential")
			live := []int{}

			// Delays chosen to cross every wheel level: same-tick (0),
			// sub-tick (<65.5µs), level-0 (<4.2ms), level-1 (<268ms),
			// level-2+ (seconds…minutes), and past-the-horizon.
			randomDelay := func() Time {
				switch rng.Intn(10) {
				case 0:
					return 0
				case 1, 2:
					return Time(rng.Intn(1 << tickBits))
				case 3, 4:
					return Time(rng.Intn(1 << (tickBits + levelBits)))
				case 5, 6:
					return Time(rng.Intn(1 << (tickBits + 2*levelBits)))
				case 7:
					return Time(rng.Intn(int(10 * time.Second)))
				case 8:
					return Time(rng.Intn(int(10 * time.Minute)))
				default:
					// Beyond the 2^52 ns horizon: overflow list.
					return Time(1)<<53 + Time(rng.Intn(1<<30))
				}
			}

			for round := 0; round < 40; round++ {
				for i := 0; i < 50; i++ {
					switch {
					case rng.Intn(4) == 0 && len(live) > 0:
						k := rng.Intn(len(live))
						rig.cancel(live[k])
						live = append(live[:k], live[k+1:]...)
					default:
						at := rig.wheel.Now() + randomDelay()
						live = append(live, rig.scheduleAt(at))
					}
				}
				// Random barrier: run both engines to the same horizon,
				// like Scenario.StepUntil quanta.
				until := rig.wheel.Now() + Time(rng.Intn(int(2*time.Second)))
				rig.wheel.Run(until)
				rig.heap.Run(until)
				rig.check(t)
				// Drop fired ids from the live set (handles are safe to
				// cancel after firing; both must agree it is a no-op).
				if len(live) > 200 {
					kept := live[:0]
					for _, id := range live {
						if rig.wheelEvs[id].n == nil && rng.Intn(2) == 0 {
							rig.cancel(id) // fired: must be a no-op on both
							continue
						}
						kept = append(kept, id)
					}
					live = kept
				}
			}
			// Drain everything, including overflow-horizon stragglers.
			rig.wheel.RunAll()
			rig.heap.RunAll()
			rig.check(t)
			if rig.wheel.Pending() != 0 {
				t.Fatalf("wheel did not drain: %d pending", rig.wheel.Pending())
			}
		})
	}
}

// TestDifferentialSameTickTies pins the tie-breaking contract: events
// scheduled for the same instant — and for distinct instants within one
// wheel tick — fire in scheduling order on both engines, including events
// scheduled from inside callbacks at the current time.
func TestDifferentialSameTickTies(t *testing.T) {
	rig := newDiffRig()
	base := Time(3 * time.Millisecond)
	// Interleave: same instant, same tick (different ns), reverse order.
	for i := 0; i < 10; i++ {
		rig.scheduleAt(base)
		rig.scheduleAt(base + Time(i%3)) // same tick, jittered ns
		rig.scheduleAt(base - Time(i))   // earlier ns, later schedule
	}
	// Self-rescheduling callback at the current instant.
	var wn, hn int
	rig.wheel.ScheduleAt(base, func() {
		if wn < 3 {
			wn++
			rig.wheel.ScheduleAt(rig.wheel.Now(), func() {
				rig.wheelLog = append(rig.wheelLog, firing{rig.wheel.Now(), 1000 + wn})
			})
		}
	})
	rig.heap.ScheduleAt(base, func() {
		if hn < 3 {
			hn++
			rig.heap.ScheduleAt(rig.heap.Now(), func() {
				rig.heapLog = append(rig.heapLog, firing{rig.heap.Now(), 1000 + hn})
			})
		}
	})
	rig.wheel.RunAll()
	rig.heap.RunAll()
	rig.check(t)
	if len(rig.wheelLog) != 31 {
		t.Fatalf("expected 31 firings, got %d", len(rig.wheelLog))
	}
}

// TestDifferentialStepUntilBarriers verifies Run(until) leaves both
// engines at identical clocks for barriers that land before, exactly on,
// and between event times — the serve StepUntil contract.
func TestDifferentialStepUntilBarriers(t *testing.T) {
	rig := newDiffRig()
	at := []Time{0, 1, 65535, 65536, 65537, 1 << 22, 1<<22 + 1, 3 << 30}
	for _, a := range at {
		rig.scheduleAt(a)
		rig.scheduleAt(a) // a same-time twin on each barrier point
	}
	barriers := []Time{0, 1, 2, 65535, 65536, 70000, 1 << 22, 1<<22 + 1, 1 << 25, 3 << 30, 3<<30 + 5}
	for _, b := range barriers {
		rig.wheel.Run(b)
		rig.heap.Run(b)
		rig.check(t)
	}
	if rig.wheel.Pending() != 0 {
		t.Fatalf("undrained: %d", rig.wheel.Pending())
	}
}

// TestDifferentialCancelDuringRun cancels pending events from inside
// callbacks on both engines and requires identical outcomes.
func TestDifferentialCancelDuringRun(t *testing.T) {
	rig := newDiffRig()
	victims := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		victims = append(victims, rig.scheduleAt(Time(100+i)*time.Millisecond))
	}
	// At 50ms, cancel every even victim on both engines.
	rig.wheel.ScheduleAt(50*time.Millisecond, func() {
		for i := 0; i < len(victims); i += 2 {
			rig.wheel.Cancel(rig.wheelEvs[victims[i]])
		}
	})
	rig.heap.ScheduleAt(50*time.Millisecond, func() {
		for i := 0; i < len(victims); i += 2 {
			rig.heap.Cancel(rig.heapEvs[victims[i]])
		}
	})
	rig.wheel.RunAll()
	rig.heap.RunAll()
	rig.check(t)
	if got := len(rig.wheelLog); got != 4 {
		t.Fatalf("expected 4 survivors, got %d", got)
	}
}

// TestTickerZeroAllocSteadyState pins the pooling contract: once warm, a
// ticker re-arms and fires without allocating.
func TestTickerZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Ticker(time.Millisecond, func() { n++ })
	e.Run(10 * time.Millisecond) // warm up pool + batch
	allocs := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + 50*time.Millisecond)
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state ticker allocates: %.1f allocs/run", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestScheduleCallZeroAlloc pins that fire-and-forget Runnable scheduling
// does not allocate once the node pool is warm.
func TestScheduleCallZeroAlloc(t *testing.T) {
	e := NewEngine()
	j := &countJob{}
	// Warm the pool.
	for i := 0; i < 300; i++ {
		e.ScheduleCall(Time(i)*time.Microsecond, j)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleCall(time.Microsecond, j)
		e.RunAll()
	})
	if allocs > 0.5 {
		t.Fatalf("ScheduleCall allocates in steady state: %.1f allocs/run", allocs)
	}
	if j.n == 0 {
		t.Fatal("job never ran")
	}
}

type countJob struct{ n int }

func (c *countJob) RunEvent() { c.n++ }
