package sim

import (
	"fmt"
	"testing"
	"time"
)

// These tests pin the determinism contract the N-client refactor leans
// on: when several components (clients) schedule events at equal virtual
// times, the engine fires them in scheduling order — and nothing else.
// Construction order therefore fully determines equal-time interleaving,
// which is why Scenario materializes clients in ID order.

// component is a minimal stand-in for a client stack: a ticker that logs
// its firings into a shared trace.
type component struct {
	name string
}

func (c *component) start(eng *Engine, trace *[]string) {
	eng.Ticker(Time(time.Second), func() {
		*trace = append(*trace, fmt.Sprintf("%s@%v", c.name, eng.Now()))
	})
}

// TestEqualTimeMultiComponentInterleaving: two components with identical
// tickers fire at the same virtual instants; at every instant the one
// scheduled first fires first, for the whole run.
func TestEqualTimeMultiComponentInterleaving(t *testing.T) {
	run := func(order []string) []string {
		eng := NewEngine()
		var trace []string
		for _, name := range order {
			(&component{name: name}).start(eng, &trace)
		}
		eng.Run(Time(3 * time.Second))
		return trace
	}
	got := run([]string{"a", "b"})
	want := []string{"a@1s", "b@1s", "a@2s", "b@2s", "a@3s", "b@3s"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	// Reversed construction order reverses every equal-time pair — the
	// engine imposes no ordering beyond scheduling sequence, so callers
	// that need construction-order independence (core.Scenario) must
	// sort before scheduling.
	gotRev := run([]string{"b", "a"})
	wantRev := []string{"b@1s", "a@1s", "b@2s", "a@2s", "b@3s", "a@3s"}
	if fmt.Sprint(gotRev) != fmt.Sprint(wantRev) {
		t.Fatalf("reversed trace = %v, want %v", gotRev, wantRev)
	}
}

// TestEqualTimeInterleavingStableUnderUnrelatedLoad: a third component
// scheduling at other instants must not perturb the equal-time order of
// the first two — scheduling order is a per-instant FIFO, not a global
// heap accident.
func TestEqualTimeInterleavingStableUnderUnrelatedLoad(t *testing.T) {
	base := func(extra bool) []string {
		eng := NewEngine()
		var trace []string
		(&component{name: "a"}).start(eng, &trace)
		(&component{name: "b"}).start(eng, &trace)
		if extra {
			// Off-phase ticker: fires between the instants a and b share.
			eng.Ticker(Time(700*time.Millisecond), func() {})
		}
		eng.Run(Time(3 * time.Second))
		return trace
	}
	if a, b := fmt.Sprint(base(false)), fmt.Sprint(base(true)); a != b {
		t.Fatalf("unrelated load changed equal-time interleaving:\nwithout: %s\nwith:    %s", a, b)
	}
}

// TestEqualTimeCascadeOrdering: events that reschedule at the same future
// instant keep their relative order across generations — the property
// that makes N identical client stacks advance in lockstep ID order.
func TestEqualTimeCascadeOrdering(t *testing.T) {
	eng := NewEngine()
	var trace []string
	var hop func(name string, n int)
	hop = func(name string, n int) {
		if n == 0 {
			return
		}
		trace = append(trace, fmt.Sprintf("%s%d", name, n))
		eng.Schedule(Time(time.Second), func() { hop(name, n-1) })
	}
	eng.Schedule(0, func() { hop("x", 3) })
	eng.Schedule(0, func() { hop("y", 3) })
	eng.RunAll()
	want := "[x3 y3 x2 y2 x1 y1]"
	if got := fmt.Sprint(trace); got != want {
		t.Fatalf("cascade trace = %v, want %v", got, want)
	}
}
