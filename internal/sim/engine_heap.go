package sim

import (
	"container/heap"
	"fmt"
)

// heapEngine is the original container/heap event scheduler, kept (unexported)
// as the reference implementation for the timer-wheel differential tests: both
// engines must fire identical (time, order) sequences on any workload. It is
// not used by production code.
type heapEngine struct {
	now     Time
	seq     uint64
	queue   heapEventQueue
	fired   uint64
	stopped bool
}

// heapEvent is the reference engine's event handle: one heap entry per event.
type heapEvent struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once fired or cancelled
	cancel bool
}

func (e *heapEvent) At() Time        { return e.at }
func (e *heapEvent) Cancelled() bool { return e.cancel }

type heapEventQueue []*heapEvent

func (q heapEventQueue) Len() int { return len(q) }
func (q heapEventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q heapEventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *heapEventQueue) Push(x any) {
	e := x.(*heapEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *heapEventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

func newHeapEngine() *heapEngine { return &heapEngine{} }

func (e *heapEngine) Now() Time     { return e.now }
func (e *heapEngine) Fired() uint64 { return e.fired }
func (e *heapEngine) Pending() int  { return len(e.queue) }
func (e *heapEngine) Len() int      { return len(e.queue) }

func (e *heapEngine) PeekNext() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

func (e *heapEngine) Schedule(delay Time, fn func()) *heapEvent {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

func (e *heapEngine) ScheduleAt(at Time, fn func()) *heapEvent {
	if fn == nil {
		panic("sim: ScheduleAt with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	ev := &heapEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *heapEngine) Cancel(ev *heapEvent) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.cancel = true
	return true
}

func (e *heapEngine) Stop() { e.stopped = true }

func (e *heapEngine) Run(until Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.fired++
		fn := next.fn
		next.fn = nil
		fn()
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

func (e *heapEngine) RunAll() {
	const backstop = 1 << 34
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := heap.Pop(&e.queue).(*heapEvent)
		e.now = next.at
		e.fired++
		fn := next.fn
		next.fn = nil
		fn()
		if e.fired > backstop {
			panic(fmt.Sprintf("sim: runaway event loop: %d events fired", e.fired))
		}
	}
}
