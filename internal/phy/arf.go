package phy

import (
	"spider/internal/dot11"
)

// Dot11bRates are the 802.11b data rates in bits/s, lowest first.
var Dot11bRates = []float64{1e6, 2e6, 5.5e6, 11e6}

// ARF constants: the classic Auto Rate Fallback policy steps a peer's rate
// down after two consecutive transmission failures and back up after ten
// consecutive successes.
const (
	arfUpAfter   = 10
	arfDownAfter = 2
)

// arfState tracks the transmit rate toward one peer.
type arfState struct {
	idx      int // index into the rate table
	okStreak int
	koStreak int
}

// rates returns the effective rate table.
func (p Params) rates() []float64 {
	if len(p.Rates) > 0 {
		return p.Rates
	}
	return Dot11bRates
}

// maxRate returns the top of the rate table.
func (p Params) maxRate() float64 {
	r := p.rates()
	return r[len(r)-1]
}

// broadcastRate returns the rate used for broadcast frames: the basic rate
// (second-lowest entry, per the usual 802.11b basic set) when adaptation is
// on, the full bit rate otherwise.
func (p Params) broadcastRate() float64 {
	if !p.RateAdaptation {
		return p.BitRate
	}
	r := p.rates()
	if len(r) > 1 {
		return r[1]
	}
	return r[0]
}

// arfFor returns the index of dst's ARF state in the radio's flat state
// slice, creating it when create is set. The slice is append-only, so
// steady-state lookups are one map read with no allocation.
func (r *Radio) arfFor(dst dot11.MACAddr, create bool) int32 {
	if idx, ok := r.arfIdx[dst]; ok {
		return idx
	}
	if !create {
		return -1
	}
	// ARF starts optimistic at the top rate.
	idx := int32(len(r.arfStates))
	r.arfStates = append(r.arfStates, arfState{idx: len(r.m.params.rates()) - 1})
	r.arfIdx[dst] = idx
	return idx
}

// rateFor returns the radio's current unicast transmit rate toward dst.
func (r *Radio) rateFor(dst dot11.MACAddr) float64 {
	if !r.m.params.RateAdaptation {
		return r.m.params.BitRate
	}
	rates := r.m.params.rates()
	return rates[r.arfStates[r.arfFor(dst, true)].idx]
}

// arfReport feeds a transmission outcome into the peer's ARF state.
func (r *Radio) arfReport(dst dot11.MACAddr, ok bool) {
	if !r.m.params.RateAdaptation {
		return
	}
	i := r.arfFor(dst, false)
	if i < 0 {
		return
	}
	st := &r.arfStates[i]
	rates := r.m.params.rates()
	if ok {
		st.koStreak = 0
		st.okStreak++
		if st.okStreak >= arfUpAfter && st.idx < len(rates)-1 {
			st.idx++
			st.okStreak = 0
			r.m.stats.RateUps++
		}
		return
	}
	st.okStreak = 0
	st.koStreak++
	if st.koStreak >= arfDownAfter && st.idx > 0 {
		st.idx--
		st.koStreak = 0
		r.m.stats.RateDowns++
	}
}

// CurrentRate reports the radio's transmit rate toward dst (tests and
// diagnostics).
func (r *Radio) CurrentRate(dst dot11.MACAddr) float64 { return r.rateFor(dst) }
