package phy

import (
	"testing"
	"testing/quick"
	"time"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/sim"
)

func lossless() Params {
	p := Defaults()
	p.Loss = func(float64) float64 { return 0 }
	return p
}

func fixedPos(x, y float64) func() geo.Point {
	return func() geo.Point { return geo.Point{X: x, Y: y} }
}

func TestBroadcastDelivery(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	var got []dot11.Frame
	rx := m.NewRadio(dot11.MAC(2), fixedPos(50, 0))
	rx.SetReceiver(func(f dot11.Frame, _ RxInfo) { got = append(got, f) })
	far := m.NewRadio(dot11.MAC(3), fixedPos(500, 0))
	farGot := 0
	far.SetReceiver(func(dot11.Frame, RxInfo) { farGot++ })

	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(1)}, nil)
	eng.RunAll()
	if len(got) != 1 {
		t.Fatalf("in-range radio got %d frames, want 1", len(got))
	}
	if got[0].Type != dot11.TypeBeacon || got[0].Addr2 != dot11.MAC(1) {
		t.Fatalf("frame = %+v", got[0])
	}
	if farGot != 0 {
		t.Fatal("out-of-range radio received a frame")
	}
}

func TestUnicastDeliveryAndStatus(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	delivered := 0
	rx.SetReceiver(func(f dot11.Frame, info RxInfo) {
		delivered++
		if info.Channel != dot11.Channel1 {
			t.Errorf("rx channel = %v", info.Channel)
		}
		if info.RSSI >= 0 {
			t.Errorf("rssi = %v, want negative dBm", info.RSSI)
		}
	})
	var ok *bool
	tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2), Body: []byte("x")}, func(b bool) { ok = &b })
	eng.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if ok == nil || !*ok {
		t.Fatal("status callback did not report success")
	}
}

func TestUnicastToAbsentStationFails(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	var ok *bool
	tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(99)}, func(b bool) { ok = &b })
	eng.RunAll()
	if ok == nil || *ok {
		t.Fatal("send to absent station should fail after retries")
	}
	st := m.Stats()
	if st.UnicastFailed != 1 {
		t.Fatalf("UnicastFailed = %d, want 1", st.UnicastFailed)
	}
	// Initial try + RetryLimit retries.
	if want := uint64(Defaults().RetryLimit + 1); st.FramesSent != want {
		t.Fatalf("FramesSent = %d, want %d", st.FramesSent, want)
	}
}

func TestChannelIsolation(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	rx.SetChannel(dot11.Channel6, nil)
	eng.RunAll()
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	eng.RunAll()
	if got != 0 {
		t.Fatal("frame crossed channels")
	}
}

func TestSetChannelLatencyAndCallback(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	r := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	var doneAt sim.Time = -1
	r.SetChannel(dot11.Channel11, func() { doneAt = eng.Now() })
	if !r.Switching() {
		t.Fatal("radio not switching immediately after SetChannel")
	}
	eng.RunAll()
	if r.Channel() != dot11.Channel11 {
		t.Fatalf("channel = %v", r.Channel())
	}
	if doneAt != Defaults().SwitchLatency {
		t.Fatalf("switch completed at %v, want %v", doneAt, Defaults().SwitchLatency)
	}
	// Switching to the same channel is free.
	called := false
	r.SetChannel(dot11.Channel11, func() { called = true })
	if !called {
		t.Fatal("same-channel switch should complete synchronously")
	}
}

func TestSendWhileSwitchingFails(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	r := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	r.SetChannel(dot11.Channel6, nil)
	var ok *bool
	r.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2)}, func(b bool) { ok = &b })
	eng.RunAll()
	if ok == nil || *ok {
		t.Fatal("send during switch should fail")
	}
}

func TestReceiverMissesFramesWhileSwitching(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })
	// Start a broadcast, then immediately put the receiver into a switch
	// that spans the delivery time.
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	rx.SetChannel(dot11.Channel6, nil)
	eng.RunAll()
	if got != 0 {
		t.Fatal("radio received a frame mid-switch")
	}
}

func TestAirtimeSerialization(t *testing.T) {
	eng := sim.NewEngine()
	p := lossless()
	m := NewMedium(eng, sim.NewRNG(1), p)
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	var times []sim.Time
	rx.SetReceiver(func(dot11.Frame, RxInfo) { times = append(times, eng.Now()) })
	f := dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2), Body: make([]byte, 1460)}
	tx.Send(f, nil)
	tx.Send(f, nil)
	eng.RunAll()
	if len(times) != 2 {
		t.Fatalf("delivered %d, want 2", len(times))
	}
	air := m.Airtime(f.WireLen())
	if gap := times[1] - times[0]; gap < air {
		t.Fatalf("second frame delivered %v after first, want >= one airtime %v", gap, air)
	}
}

func TestAirtimeScalesWithSize(t *testing.T) {
	m := NewMedium(sim.NewEngine(), sim.NewRNG(1), Defaults())
	small := m.Airtime(100)
	big := m.Airtime(1500)
	if big <= small {
		t.Fatalf("airtime(1500)=%v <= airtime(100)=%v", big, small)
	}
	// 1500B at 11Mbps ≈ 1.09ms on top of fixed overhead.
	payload := big - Defaults().PerFrameOverhead
	if payload < time.Millisecond || payload > 2*time.Millisecond {
		t.Fatalf("payload airtime = %v, want ≈1.1ms", payload)
	}
}

func TestLossAtDistanceCurve(t *testing.T) {
	p := Defaults()
	top := p.maxRate()
	if l := p.lossAt(0, top); l != p.BaseLoss {
		t.Fatalf("loss(0) = %v, want BaseLoss", l)
	}
	if l := p.lossAt(p.Range, top); l != 1 {
		t.Fatalf("loss(Range) = %v, want 1", l)
	}
	if l := p.lossAt(p.Range*2, top); l != 1 {
		t.Fatalf("loss beyond range = %v, want 1", l)
	}
	prev := -1.0
	for d := 0.0; d <= p.Range; d += 5 {
		l := p.lossAt(d, top)
		if l < prev {
			t.Fatalf("loss not monotone at d=%v", d)
		}
		prev = l
	}
}

func TestLossLowerAtLowerRates(t *testing.T) {
	p := Defaults()
	d := 0.8 * p.Range
	hi := p.lossAt(d, 11e6)
	lo := p.lossAt(d, 1e6)
	if lo >= hi {
		t.Fatalf("loss at 1 Mbps (%v) not below loss at 11 Mbps (%v)", lo, hi)
	}
	// The hard range cutoff is rate-independent.
	if p.lossAt(p.Range, 1e6) != 1 {
		t.Fatal("low rate extended the hard range")
	}
}

func TestLossyDeliveryRate(t *testing.T) {
	eng := sim.NewEngine()
	p := Defaults()
	p.Loss = func(float64) float64 { return 0.5 }
	p.RetryLimit = 1
	m := NewMedium(eng, sim.NewRNG(42), p)
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	rx.SetReceiver(func(dot11.Frame, RxInfo) {})
	okCount := 0
	const n = 2000
	for i := 0; i < n; i++ {
		tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2)}, func(b bool) {
			if b {
				okCount++
			}
		})
	}
	eng.RunAll()
	// Per try success = 0.25 (frame and ack each 0.5); with one retry,
	// p = 1-(0.75)^2 = 0.4375.
	frac := float64(okCount) / n
	if frac < 0.40 || frac > 0.48 {
		t.Fatalf("delivery fraction = %v, want ≈0.4375", frac)
	}
}

func TestCloseDetaches(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })
	rx.Close()
	var ok *bool
	tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2)}, func(b bool) { ok = &b })
	eng.RunAll()
	if got != 0 {
		t.Fatal("closed radio received a frame")
	}
	if ok == nil || *ok {
		t.Fatal("unicast to closed radio should fail")
	}
}

func TestMobilePositionSampledAtDelivery(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	// Receiver moves out of range as time passes: 1000 m/s along x.
	rx := m.NewRadio(dot11.MAC(2), func() geo.Point {
		return geo.Point{X: 1000 * eng.Now().Seconds(), Y: 0}
	})
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	eng.Run(50 * time.Millisecond)
	first := got
	// After 1 second the receiver is 1 km away; nothing should arrive.
	eng.ScheduleAt(time.Second, func() {
		tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	})
	eng.RunAll()
	if first != 1 {
		t.Fatalf("first frame deliveries = %d, want 1", first)
	}
	if got != 1 {
		t.Fatalf("total deliveries = %d, want 1 (second frame out of range)", got)
	}
}

func TestInvalidChannelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetChannel(0) did not panic")
		}
	}()
	m := NewMedium(sim.NewEngine(), sim.NewRNG(1), Defaults())
	m.NewRadio(dot11.MAC(1), fixedPos(0, 0)).SetChannel(0, nil)
}

// Property: airtime is monotone in frame size and always positive.
func TestPropertyAirtimeMonotone(t *testing.T) {
	m := NewMedium(sim.NewEngine(), sim.NewRNG(1), Defaults())
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.Airtime(x) > 0 && m.Airtime(x) <= m.Airtime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: lossAt is within [0,1] for any distance and any base loss.
func TestPropertyLossBounded(t *testing.T) {
	f := func(d uint16, base uint8, rateIdx uint8) bool {
		p := Defaults()
		p.BaseLoss = float64(base) / 255
		rate := Dot11bRates[int(rateIdx)%len(Dot11bRates)]
		l := p.lossAt(float64(d), rate)
		return l >= 0 && l <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestARFDropsRateAtRangeEdge(t *testing.T) {
	eng := sim.NewEngine()
	p := Defaults() // rate adaptation on, distance loss model
	p.BaseLoss = 0  // isolate the distance term: ARF oscillates under a flat loss floor
	m := NewMedium(eng, sim.NewRNG(9), p)
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	near := m.NewRadio(dot11.MAC(2), fixedPos(5, 0))
	near.SetReceiver(func(dot11.Frame, RxInfo) {})
	edge := m.NewRadio(dot11.MAC(3), fixedPos(88, 0))
	edge.SetReceiver(func(dot11.Frame, RxInfo) {})
	for i := 0; i < 200; i++ {
		tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2), Body: make([]byte, 200)}, nil)
		tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(3), Body: make([]byte, 200)}, nil)
		eng.Run(eng.Now() + 50*time.Millisecond)
	}
	if got := tx.CurrentRate(dot11.MAC(2)); got != 11e6 {
		t.Fatalf("near peer rate = %v, want 11 Mbps", got)
	}
	if got := tx.CurrentRate(dot11.MAC(3)); got >= 11e6 {
		t.Fatalf("edge peer rate = %v, want fallback below 11 Mbps", got)
	}
	if m.Stats().RateDowns == 0 {
		t.Fatal("no ARF downshifts recorded")
	}
}

func TestARFImprovesEdgeDelivery(t *testing.T) {
	// With adaptation on, edge delivery should beat fixed 11 Mbps.
	deliver := func(adapt bool) uint64 {
		eng := sim.NewEngine()
		p := Defaults()
		p.RateAdaptation = adapt
		m := NewMedium(eng, sim.NewRNG(4), p)
		tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
		rx := m.NewRadio(dot11.MAC(2), fixedPos(90, 0))
		rx.SetReceiver(func(dot11.Frame, RxInfo) {})
		for i := 0; i < 500; i++ {
			tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2), Body: make([]byte, 500)}, nil)
			eng.Run(eng.Now() + 20*time.Millisecond)
		}
		return m.Stats().FramesDelivered
	}
	with := deliver(true)
	without := deliver(false)
	if with <= without {
		t.Fatalf("ARF delivered %d <= fixed-rate %d at the range edge", with, without)
	}
}

func TestBroadcastUsesBasicRate(t *testing.T) {
	p := Defaults()
	if r := p.broadcastRate(); r != 2e6 {
		t.Fatalf("broadcast rate = %v, want 2 Mbps basic rate", r)
	}
	p.RateAdaptation = false
	if r := p.broadcastRate(); r != p.BitRate {
		t.Fatalf("broadcast rate without adaptation = %v, want BitRate", r)
	}
}

func TestChannelNoiseRaisesLossAndClears(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(7), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	rx.SetReceiver(func(dot11.Frame, RxInfo) {})
	send := func(n int) int {
		ok := 0
		for i := 0; i < n; i++ {
			tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2)}, func(b bool) {
				if b {
					ok++
				}
			})
		}
		eng.RunAll()
		return ok
	}
	if got := send(50); got != 50 {
		t.Fatalf("lossless baseline delivered %d/50", got)
	}
	m.SetChannelNoise(dot11.Channel1, 0.9)
	if m.ChannelNoise(dot11.Channel1) != 0.9 {
		t.Fatalf("ChannelNoise = %v", m.ChannelNoise(dot11.Channel1))
	}
	noisy := send(200)
	if noisy > 120 {
		t.Fatalf("delivered %d/200 under 0.9 noise, want far fewer", noisy)
	}
	// Other channels are unaffected.
	if m.ChannelNoise(dot11.Channel6) != 0 {
		t.Fatal("noise leaked to channel 6")
	}
	m.SetChannelNoise(dot11.Channel1, 0)
	if m.ChannelNoise(dot11.Channel1) != 0 {
		t.Fatal("noise not cleared")
	}
	if got := send(50); got != 50 {
		t.Fatalf("post-clear delivered %d/50", got)
	}
}

func TestChannelNoiseClamped(t *testing.T) {
	m := NewMedium(sim.NewEngine(), sim.NewRNG(1), Defaults())
	m.SetChannelNoise(dot11.Channel1, 2.5)
	if got := m.ChannelNoise(dot11.Channel1); got != 1 {
		t.Fatalf("noise = %v, want clamped to 1", got)
	}
	m.SetChannelNoise(dot11.Channel1, -3)
	if got := m.ChannelNoise(dot11.Channel1); got != 0 {
		t.Fatalf("noise = %v, want 0 after negative set", got)
	}
}

func TestRadioDownStopsTraffic(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })

	rx.SetDown(true)
	if !rx.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	var uni *bool
	tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2)}, func(b bool) { uni = &b })
	eng.RunAll()
	if got != 0 {
		t.Fatal("down radio received a frame")
	}
	if uni == nil || *uni {
		t.Fatal("unicast to down radio should fail")
	}

	// A down radio cannot transmit either.
	var sent *bool
	rx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(1)}, func(b bool) { sent = &b })
	eng.RunAll()
	if sent == nil || *sent {
		t.Fatal("down radio transmitted")
	}

	// Coming back up restores both directions.
	rx.SetDown(false)
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	eng.RunAll()
	if got != 1 {
		t.Fatalf("revived radio got %d frames, want 1", got)
	}
}

func TestRadioDownDuringChannelSwitch(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), lossless())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	tx.SetChannel(dot11.Channel6, nil)
	eng.RunAll()
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })
	// Go down mid-switch; when the switch completes the radio must not
	// re-index onto the new channel.
	rx.SetChannel(dot11.Channel6, nil)
	rx.SetDown(true)
	eng.RunAll()
	if rx.Channel() != dot11.Channel6 {
		t.Fatalf("channel = %v, want 6 (switch still completes)", rx.Channel())
	}
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	eng.RunAll()
	if got != 0 {
		t.Fatal("down radio received on its post-switch channel")
	}
	rx.SetDown(false)
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast}, nil)
	eng.RunAll()
	if got != 1 {
		t.Fatalf("revived radio got %d frames on channel 6, want 1", got)
	}
}
