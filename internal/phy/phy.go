// Package phy simulates the 802.11 physical layer: radios attached to a
// shared per-channel medium, distance-dependent frame loss, airtime
// accounting at a configurable bit rate, MAC-level retransmission of
// unicast frames, and the hardware-reset latency a channel switch costs.
//
// The model deliberately mirrors the factors the Spider paper isolates —
// loss rate h, switching overhead w, channel airtime — rather than
// symbol-level detail. Each channel is a single collision domain whose
// transmissions serialize, which matches the paper's single-client,
// several-AP roadside scenarios.
//
// The per-channel state lives in flat channel-indexed arrays (there are
// only 14 channels) and per-transmission bookkeeping reuses pooled job
// structs and an arena for wire images, so the commit/deliver path does
// not allocate at city-scale populations.
package phy

import (
	"fmt"
	"math"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/mempool"
	"spider/internal/obs"
	"spider/internal/sim"
)

// numChannels sizes the flat per-channel arrays; index 0 is unused
// (channels are 1..14, dot11.Channel.Valid).
const numChannels = 15

// Params configures the PHY model. ZeroValue fields are replaced by
// Defaults() values in NewMedium.
type Params struct {
	// Range is the usable communication radius in metres (paper: 100 m).
	Range float64
	// BitRate is the channel bit rate in bits/s (paper: 11 Mbit/s).
	BitRate float64
	// BaseLoss is the frame loss probability at zero distance (paper h≈0.10).
	BaseLoss float64
	// PerFrameOverhead is the PHY preamble + IFS + ACK time charged per
	// transmission attempt.
	PerFrameOverhead sim.Time
	// SwitchLatency is the hardware reset time for a channel change
	// (paper Table 1: ≈5 ms).
	SwitchLatency sim.Time
	// RetryLimit is the number of MAC retransmissions for unicast frames.
	RetryLimit int
	// CollisionProb is the per-contender collision probability of the
	// multi-station contention model. When a frame is committed to the air
	// while k other radios have frames in flight or queued on the same
	// channel, the attempt is corrupted with probability 1-(1-p)^k —
	// approximating simultaneous backoff expiry under CSMA/CA. Corrupted
	// unicast attempts go through the normal MAC retry path, so contention
	// costs airtime as well as loss. Zero selects the default; negative
	// disables collisions entirely (capacity is still shared, because all
	// transmissions on a channel serialize).
	CollisionProb float64
	// Loss optionally overrides the distance-loss curve. It receives the
	// transmitter-receiver distance in metres and returns a per-try loss
	// probability in [0,1] (ignoring the transmit rate).
	Loss func(distance float64) float64
	// RateAdaptation enables per-peer ARF rate control over Rates; lower
	// rates are more robust near the range edge but cost airtime.
	RateAdaptation bool
	// Rates is the data-rate table in bits/s, lowest first (default
	// 802.11b: 1, 2, 5.5, 11 Mbit/s).
	Rates []float64
}

// Defaults returns the parameter set used throughout the evaluation, chosen
// to match the paper's testbed numbers.
func Defaults() Params {
	return Params{
		Range:            100,
		BitRate:          11e6,
		BaseLoss:         0.10,
		PerFrameOverhead: 400 * 1000, // 400µs: preamble+DIFS+SIFS+ACK
		SwitchLatency:    5 * 1000 * 1000,
		RetryLimit:       3,
		CollisionProb:    0.03,
		RateAdaptation:   true,
	}
}

func (p Params) withDefaults() Params {
	d := Defaults()
	if p.Range <= 0 {
		p.Range = d.Range
	}
	if p.BitRate <= 0 {
		p.BitRate = d.BitRate
	}
	if p.BaseLoss < 0 {
		p.BaseLoss = 0
	}
	if p.PerFrameOverhead <= 0 {
		p.PerFrameOverhead = d.PerFrameOverhead
	}
	if p.SwitchLatency < 0 {
		p.SwitchLatency = 0
	} else if p.SwitchLatency == 0 {
		p.SwitchLatency = d.SwitchLatency
	}
	if p.RetryLimit <= 0 {
		p.RetryLimit = d.RetryLimit
	}
	if p.CollisionProb < 0 {
		p.CollisionProb = 0
	} else if p.CollisionProb == 0 {
		p.CollisionProb = d.CollisionProb
	}
	return p
}

// lossAt returns the per-try loss probability at distance d for a frame
// sent at the given rate. Lower rates flatten the distance term — the
// robustness that makes ARF fallback worthwhile at the range edge — but
// the hard range cutoff is rate-independent.
func (p Params) lossAt(d, rate float64) float64 {
	if p.Loss != nil {
		return clamp01(p.Loss(d))
	}
	if d >= p.Range {
		return 1
	}
	frac := d / p.Range
	robust := 1.0
	if p.RateAdaptation && rate > 0 {
		robust = math.Sqrt(rate / p.maxRate())
	}
	return clamp01(p.BaseLoss + (1-p.BaseLoss)*math.Pow(frac, 4)*robust)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// RxInfo carries reception metadata alongside a decoded frame.
type RxInfo struct {
	Channel dot11.Channel
	RSSI    float64 // dBm, from a simple log-distance model
	At      sim.Time
}

// Stats aggregates medium-level counters for debugging and benchmarks.
type Stats struct {
	FramesSent       uint64 // transmission attempts, including retries
	FramesDelivered  uint64
	FramesLost       uint64 // unicast tries lost to channel error
	Collisions       uint64 // attempts corrupted by a contending transmitter
	Broadcasts       uint64
	UnicastFailed    uint64 // unicast gave up after all retries
	RateUps          uint64 // ARF rate increases
	RateDowns        uint64 // ARF rate decreases
	AirtimeByChannel map[dot11.Channel]sim.Time
}

// Medium is the shared wireless medium. All radios in a scenario attach to
// one Medium; each 802.11 channel is an independent, serialized collision
// domain.
type Medium struct {
	eng    *sim.Engine
	rng    *sim.RNG
	params Params

	radios map[*Radio]struct{}
	// Flat per-channel state, indexed by channel number (1..14).
	byChannel [numChannels][]*Radio // registration order, so delivery iteration is deterministic
	busyUntil [numChannels]sim.Time
	noise     [numChannels]float64 // injected extra per-try loss
	// transmitters counts distinct radios with frames committed but not
	// yet off the air, per channel — the contention the collision model
	// charges against (each radio keeps its own per-channel counts).
	transmitters [numChannels]int32
	airtime      [numChannels]sim.Time
	stats        Stats
	tap          func(ch dot11.Channel, wire []byte, at sim.Time)

	// Hot-path allocation amortizers: recycled transmission jobs and the
	// arena wire images are carved from. Wire bytes are never reused (frame
	// bodies alias them after delivery); jobs are recycled after delivery.
	txFree *txJob
	wires  mempool.ByteArena

	// Observability counters; nil (no-op) unless SetObs installed a
	// registry. The per-frame paths count only in the plain stats fields;
	// PublishObs pushes accumulated deltas into these handles — a dense
	// minute is ~450k frame-path increments, and paying a lock-prefixed
	// atomic add for each measurably slows city-scale runs. pub remembers
	// what was already pushed.
	obsSent       *obs.Counter
	obsDelivered  *obs.Counter
	obsLost       *obs.Counter
	obsCollisions *obs.Counter
	pub           struct{ sent, delivered, lost, collisions uint64 }
}

// NewMedium creates a medium on the given engine. rng must be a dedicated
// stream; the medium draws from it for loss sampling and backoff jitter.
func NewMedium(eng *sim.Engine, rng *sim.RNG, params Params) *Medium {
	return &Medium{
		eng:    eng,
		rng:    rng,
		params: params.withDefaults(),
		radios: make(map[*Radio]struct{}),
	}
}

// SetObs resolves the medium's counters against reg. A nil reg leaves
// instrumentation disabled (every counter call is a nil-receiver no-op).
func (m *Medium) SetObs(reg *obs.Registry) {
	m.obsSent = reg.Counter("phy.frames_sent")
	m.obsDelivered = reg.Counter("phy.frames_delivered")
	m.obsLost = reg.Counter("phy.frames_lost")
	m.obsCollisions = reg.Counter("phy.collisions")
}

// PublishObs pushes the medium's frame accounting into its registry
// counters as deltas since the previous publish. Call on the sim
// goroutine — core drives it from a coarse ticker for live readers and
// once at finalize so exported values are exact.
func (m *Medium) PublishObs() {
	if m.obsSent == nil {
		return
	}
	m.obsSent.Add(int64(m.stats.FramesSent - m.pub.sent))
	m.obsDelivered.Add(int64(m.stats.FramesDelivered - m.pub.delivered))
	m.obsLost.Add(int64(m.stats.FramesLost - m.pub.lost))
	m.obsCollisions.Add(int64(m.stats.Collisions - m.pub.collisions))
	m.pub.sent = m.stats.FramesSent
	m.pub.delivered = m.stats.FramesDelivered
	m.pub.lost = m.stats.FramesLost
	m.pub.collisions = m.stats.Collisions
}

// SetChannelNoise injects an additional per-try loss probability applied
// to every frame on ch — a chaos noise burst. The burst combines with
// the distance model as an independent loss event; non-positive clears it.
func (m *Medium) SetChannelNoise(ch dot11.Channel, extraLoss float64) {
	if !ch.Valid() {
		return
	}
	if extraLoss <= 0 {
		m.noise[ch] = 0
		return
	}
	m.noise[ch] = clamp01(extraLoss)
}

// ChannelNoise returns the injected extra loss on ch (0 when clear).
func (m *Medium) ChannelNoise(ch dot11.Channel) float64 {
	if !ch.Valid() {
		return 0
	}
	return m.noise[ch]
}

// lossOn is the effective per-try loss on a channel: the distance model
// combined with any injected noise burst as independent loss events.
func (m *Medium) lossOn(ch dot11.Channel, d, rate float64) float64 {
	p := m.params.lossAt(d, rate)
	if n := m.noise[ch]; n > 0 {
		p = 1 - (1-p)*(1-n)
	}
	return p
}

// Params returns the effective (defaulted) parameter set.
func (m *Medium) Params() Params { return m.params }

// Stats returns a snapshot of the medium counters. The per-channel airtime
// map is materialized from the flat internal array on each call.
func (m *Medium) Stats() Stats {
	s := m.stats
	s.AirtimeByChannel = make(map[dot11.Channel]sim.Time)
	for ch, a := range m.airtime {
		if a > 0 {
			s.AirtimeByChannel[dot11.Channel(ch)] = a
		}
	}
	return s
}

// SetTap installs a monitor callback observing every frame as its airtime
// completes — transmissions and retransmissions alike, regardless of
// delivery outcome. Used by the pcap capture facility.
func (m *Medium) SetTap(fn func(ch dot11.Channel, wire []byte, at sim.Time)) { m.tap = fn }

// Airtime returns the on-air duration of a frame of the given wire length
// at the full bit rate, excluding queueing.
func (m *Medium) Airtime(wireLen int) sim.Time {
	return m.airtimeAt(wireLen, m.params.BitRate)
}

// airtimeAt charges a frame's on-air time at a specific rate.
func (m *Medium) airtimeAt(wireLen int, rate float64) sim.Time {
	bits := float64(wireLen * 8)
	return sim.Time(bits/rate*1e9) + m.params.PerFrameOverhead
}

// rssiAt converts distance to a log-distance RSSI in dBm; used only for
// ranking APs, not for loss.
func rssiAt(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return -30 - 35*math.Log10(d)
}

// DistanceForRSSI inverts the log-distance RSSI model: the transmitter
// distance in metres that produces the given RSSI reading. Clamped to the
// model's 1 m near-field floor. Allocation policies use it to turn a scan
// entry's RSSI back into the geometry the throughput model wants.
func DistanceForRSSI(rssi float64) float64 {
	d := math.Pow(10, -(rssi+30)/35)
	if d < 1 {
		return 1
	}
	return d
}

// ChannelAirtime returns the cumulative on-air time committed on ch since
// the start of the run — the occupancy integral a carrier-sensing station
// can measure. Sampling it twice and dividing by the wall interval gives
// the channel's busy fraction over that window. Zero for invalid channels.
func (m *Medium) ChannelAirtime(ch dot11.Channel) sim.Time {
	if !ch.Valid() {
		return 0
	}
	return m.airtime[ch]
}

// ChannelContenders returns the number of distinct radios that currently
// have frames committed but not yet off the air on ch — the instantaneous
// contention the collision model charges against. Zero for invalid
// channels.
func (m *Medium) ChannelContenders(ch dot11.Channel) int {
	if !ch.Valid() {
		return 0
	}
	return int(m.transmitters[ch])
}

// ChannelAirtime exposes the medium's cumulative per-channel occupancy
// through the radio — the carrier-sense view a station's firmware reports.
func (r *Radio) ChannelAirtime(ch dot11.Channel) sim.Time { return r.m.ChannelAirtime(ch) }

// ChannelContenders exposes the medium's instantaneous per-channel
// transmitter count through the radio.
func (r *Radio) ChannelContenders(ch dot11.Channel) int { return r.m.ChannelContenders(ch) }

// ExpectedThroughput models the saturated MAC goodput, in bits/s, of a
// unicast stream to a peer at distance d: for each rate in the table it
// charges a full-size data frame's airtime plus per-frame overhead against
// the expected delivered payload (data and ACK must both survive, hence
// the squared survival term), and returns the best rate's goodput — the
// steady state ARF converges to. Zero at or beyond Range. This is the
// per-client rate model the proportional-fair allocator shares with the
// opt package's throughput framework.
func (p Params) ExpectedThroughput(d float64) float64 {
	if d >= p.Range {
		return 0
	}
	const payloadBytes = 1500.0
	rates := p.rates()
	if !p.RateAdaptation {
		rates = []float64{p.BitRate}
	}
	best := 0.0
	for _, rate := range rates {
		loss := p.lossAt(d, rate)
		succ := (1 - loss) * (1 - loss)
		if succ <= 0 {
			continue
		}
		air := payloadBytes*8/rate + float64(p.PerFrameOverhead)/1e9
		if g := payloadBytes * 8 * succ / air; g > best {
			best = g
		}
	}
	return best
}

// Radio is a single physical 802.11 interface: it is tuned to one channel
// at a time, transmits frames onto the medium, and delivers received frames
// to its receiver callback.
type Radio struct {
	m       *Medium
	mac     dot11.MACAddr
	channel dot11.Channel
	pos     func() geo.Point
	recv    func(dot11.Frame, RxInfo)

	switching bool
	closed    bool
	down      bool // powered off by fault injection
	seq       uint16
	// pending counts this radio's frames committed but not yet off the
	// air, per channel; the medium's per-channel distinct-transmitter
	// count is maintained from the 0↔1 transitions.
	pending [numChannels]int32
	// ARF per-peer rate state: a flat slice of states indexed through a
	// small MAC→index map (one map insert per peer lifetime, no per-frame
	// allocation).
	arfIdx    map[dot11.MACAddr]int32
	arfStates []arfState
	txAirtime sim.Time
}

// NewRadio attaches a radio to the medium. pos is sampled at delivery time,
// so mobile nodes simply pass a closure over their mobility model. The
// radio starts tuned to channel 1 with no receiver.
func (m *Medium) NewRadio(mac dot11.MACAddr, pos func() geo.Point) *Radio {
	if pos == nil {
		panic("phy: NewRadio with nil position func")
	}
	r := &Radio{m: m, mac: mac, channel: dot11.Channel1, pos: pos, arfIdx: make(map[dot11.MACAddr]int32)}
	m.radios[r] = struct{}{}
	m.index(r, dot11.Channel1)
	return r
}

// index moves a radio into a channel's lookup list. The per-channel lists
// preserve registration order: delivery iterates them, and both the RNG
// draws consumed per receiver and the receive callback order must not
// depend on map iteration order for runs to be reproducible.
func (m *Medium) index(r *Radio, ch dot11.Channel) {
	m.byChannel[ch] = append(m.byChannel[ch], r)
}

func (m *Medium) unindex(r *Radio, ch dot11.Channel) {
	list := m.byChannel[ch]
	for i, x := range list {
		if x == r {
			m.byChannel[ch] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// MAC returns the radio's MAC address.
func (r *Radio) MAC() dot11.MACAddr { return r.mac }

// Channel returns the channel the radio is currently tuned to.
func (r *Radio) Channel() dot11.Channel { return r.channel }

// Switching reports whether the radio is mid hardware reset.
func (r *Radio) Switching() bool { return r.switching }

// SetDown powers the radio off or back on (an AP crash/reboot). A downed
// radio neither sends nor receives; frames in flight to it are lost.
func (r *Radio) SetDown(down bool) {
	if r.closed || r.down == down {
		return
	}
	r.down = down
	if down {
		r.m.unindex(r, r.channel)
	} else if !r.switching {
		r.m.index(r, r.channel)
	}
}

// Down reports whether the radio is powered off.
func (r *Radio) Down() bool { return r.down }

// Position returns the radio's current position.
func (r *Radio) Position() geo.Point { return r.pos() }

// SetReceiver installs the frame delivery callback.
func (r *Radio) SetReceiver(fn func(dot11.Frame, RxInfo)) { r.recv = fn }

// Close detaches the radio from the medium. Frames in flight to it are
// dropped.
func (r *Radio) Close() {
	r.closed = true
	delete(r.m.radios, r)
	r.m.unindex(r, r.channel)
}

// SetChannel retunes the radio, costing the hardware-reset latency during
// which the radio neither sends nor receives. done, if non-nil, runs when
// the switch completes. Switching to the current channel is free and done
// runs immediately.
func (r *Radio) SetChannel(ch dot11.Channel, done func()) {
	if !ch.Valid() {
		panic(fmt.Sprintf("phy: invalid channel %d", ch))
	}
	if ch == r.channel && !r.switching {
		if done != nil {
			done()
		}
		return
	}
	r.switching = true
	r.m.eng.Schedule(r.m.params.SwitchLatency, func() {
		if r.closed {
			return
		}
		r.m.unindex(r, r.channel)
		r.channel = ch
		if !r.down {
			r.m.index(r, ch)
		}
		r.switching = false
		if done != nil {
			done()
		}
	})
}

// SwitchLatency returns the hardware reset cost of a channel change.
func (r *Radio) SwitchLatency() sim.Time { return r.m.params.SwitchLatency }

// TxAirtime returns the cumulative on-air transmit time of this radio
// (including retries), for energy accounting.
func (r *Radio) TxAirtime() sim.Time { return r.txAirtime }

// NextSeq returns a fresh MAC sequence number.
func (r *Radio) NextSeq() uint16 {
	r.seq++
	return r.seq
}

// Send transmits a frame on the radio's current channel. Broadcast frames
// (Addr1 == Broadcast) are delivered lossily to every in-range radio on the
// channel and status reports true once the frame has been on air. Unicast
// frames are retried up to the MAC retry limit; status reports whether the
// receiver acknowledged. status may be nil.
//
// The transmission serializes with other traffic on the channel: it starts
// when the channel is free.
func (r *Radio) Send(f dot11.Frame, status func(ok bool)) {
	if r.closed || r.switching || r.down {
		if status != nil {
			r.m.eng.Schedule(0, func() { status(false) })
		}
		return
	}
	f.Addr2 = r.mac
	wire := f.AppendTo(r.m.wires.Take(f.WireLen()))
	r.m.transmit(r, r.channel, f, wire, 0, status)
}

// contenders counts OTHER radios with frames committed but not yet off the
// air on ch — the stations this transmission races against.
func (m *Medium) contenders(ch dot11.Channel, src *Radio) int {
	k := int(m.transmitters[ch])
	if src.pending[ch] > 0 {
		k--
	}
	return k
}

func (m *Medium) addPending(ch dot11.Channel, src *Radio) {
	if src.pending[ch] == 0 {
		m.transmitters[ch]++
	}
	src.pending[ch]++
}

func (m *Medium) removePending(ch dot11.Channel, src *Radio) {
	src.pending[ch]--
	if src.pending[ch] == 0 {
		m.transmitters[ch]--
	}
}

// txJob carries one committed transmission from commit to the end of its
// airtime. Jobs are pooled on the medium and scheduled as sim.Runnables,
// so the per-frame event costs no closure and no handle.
type txJob struct {
	m        *Medium
	src      *Radio
	f        dot11.Frame
	wire     []byte
	rate     float64
	status   func(ok bool)
	attempt  int
	ch       dot11.Channel
	collided bool
	next     *txJob
}

func (m *Medium) newTxJob() *txJob {
	j := m.txFree
	if j == nil {
		return &txJob{m: m}
	}
	m.txFree = j.next
	j.next = nil
	return j
}

func (m *Medium) freeTxJob(j *txJob) {
	*j = txJob{m: m, next: m.txFree}
	m.txFree = j
}

// RunEvent fires at the end of the frame's airtime: release the contention
// slot, recycle the job, and hand off to delivery.
func (j *txJob) RunEvent() {
	m, src, ch, f, wire := j.m, j.src, j.ch, j.f, j.wire
	rate, attempt, collided, status := j.rate, j.attempt, j.collided, j.status
	m.freeTxJob(j)
	m.removePending(ch, src)
	m.deliver(src, ch, f, wire, rate, attempt, collided, status)
}

// transmit performs one on-air attempt (attempt is the retry index). The
// rate is re-evaluated per attempt so ARF fallback applies to retries.
func (m *Medium) transmit(src *Radio, ch dot11.Channel, f dot11.Frame, wire []byte, attempt int, status func(ok bool)) {
	now := m.eng.Now()
	start := now
	if bu := m.busyUntil[ch]; bu > start {
		start = bu
	}
	var rate float64
	if f.Addr1.IsBroadcast() {
		rate = m.params.broadcastRate()
	} else {
		rate = src.rateFor(f.Addr1)
	}
	// Contention: every other station with a frame committed on this
	// channel is racing our backoff. The collision draw happens at commit
	// time so the outcome is a pure function of the event sequence.
	collided := false
	if p := m.params.CollisionProb; p > 0 {
		if k := m.contenders(ch, src); k > 0 {
			collided = m.rng.Bool(1 - math.Pow(1-p, float64(k)))
		}
	}
	// Small random backoff decorrelates contending senders.
	start += m.rng.UniformDuration(0, 100*1000) // 0-100µs
	air := m.airtimeAt(len(wire), rate)
	m.busyUntil[ch] = start + air
	src.txAirtime += air
	m.stats.FramesSent++
	m.airtime[ch] += air
	m.addPending(ch, src)
	j := m.newTxJob()
	j.src, j.ch, j.f, j.wire = src, ch, f, wire
	j.rate, j.attempt, j.collided, j.status = rate, attempt, collided, status
	m.eng.ScheduleCall(start+air-now, j)
}

func (m *Medium) deliver(src *Radio, ch dot11.Channel, f dot11.Frame, wire []byte, rate float64, attempt int, collided bool, status func(ok bool)) {
	if m.tap != nil {
		m.tap(ch, wire, m.eng.Now())
	}
	if src.closed {
		return
	}
	if collided {
		m.stats.Collisions++
	}
	srcPos := src.pos()
	if f.Addr1.IsBroadcast() {
		m.stats.Broadcasts++
		if collided {
			m.stats.FramesLost++
			if status != nil {
				status(true)
			}
			return
		}
		for _, rx := range m.byChannel[ch] {
			if rx == src || rx.closed || rx.switching || rx.down || rx.recv == nil {
				continue
			}
			d := rx.pos().Distance(srcPos)
			if d > m.params.Range {
				continue
			}
			if m.rng.Bool(m.lossOn(ch, d, rate)) {
				m.stats.FramesLost++
				continue
			}
			m.deliverTo(rx, wire, ch, d)
		}
		if status != nil {
			// Broadcasts are unacknowledged: the sender only knows the
			// frame has been on air, collided or not.
			status(true)
		}
		return
	}

	// Unicast: locate the addressed radio on this channel.
	var target *Radio
	for _, rx := range m.byChannel[ch] {
		if rx.mac == f.Addr1 && !rx.closed && !rx.switching && !rx.down {
			target = rx
			break
		}
	}
	ok := false
	if target != nil && !collided {
		d := target.pos().Distance(srcPos)
		if d <= m.params.Range {
			// Success requires the data frame and the returning ACK to
			// both survive, hence the squared survival probability.
			p := 1 - m.lossOn(ch, d, rate)
			ok = m.rng.Bool(p * p)
			if ok && target.recv != nil {
				m.deliverTo(target, wire, ch, d)
			}
		}
	}
	src.arfReport(f.Addr1, ok)
	if ok {
		if status != nil {
			status(true)
		}
		return
	}
	m.stats.FramesLost++
	if attempt < m.params.RetryLimit && !src.closed && !src.switching && !src.down && src.channel == ch {
		retry := f
		retry.Retry = true
		m.transmit(src, ch, retry, m.retryWire(retry, wire), attempt+1, status)
		return
	}
	m.stats.UnicastFailed++
	if status != nil {
		status(false)
	}
}

// retryWire re-serializes only when the retry flag changes the wire image.
func (m *Medium) retryWire(f dot11.Frame, prev []byte) []byte {
	if f.Retry {
		return f.AppendTo(m.wires.Take(f.WireLen()))
	}
	return prev
}

func (m *Medium) deliverTo(rx *Radio, wire []byte, ch dot11.Channel, dist float64) {
	decoded, err := dot11.Decode(wire)
	if err != nil {
		// The codec produced the bytes, so this indicates a bug.
		panic(fmt.Sprintf("phy: frame failed to decode on delivery: %v", err))
	}
	m.stats.FramesDelivered++
	rx.recv(decoded, RxInfo{Channel: ch, RSSI: rssiAt(dist), At: m.eng.Now()})
}
