package phy

import (
	"fmt"
	"testing"

	"spider/internal/dot11"
	"spider/internal/sim"
)

// certainCollisions returns lossless params whose collision model fires on
// every contended attempt, making contention outcomes exact.
func certainCollisions() Params {
	p := lossless()
	p.CollisionProb = 1
	return p
}

func TestNoCollisionsWithoutContention(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), certainCollisions())
	tx := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	rx := m.NewRadio(dot11.MAC(2), fixedPos(10, 0))
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })

	// A burst from one radio queues many frames on the channel at once,
	// but a station never contends with itself.
	for i := 0; i < 20; i++ {
		tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(1)}, nil)
	}
	eng.RunAll()
	if s := m.Stats(); s.Collisions != 0 {
		t.Fatalf("collisions = %d for a single transmitter, want 0", s.Collisions)
	}
	if got != 20 {
		t.Fatalf("delivered %d of 20 frames", got)
	}
}

func TestContendingBroadcastsCollide(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), certainCollisions())
	a := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	b := m.NewRadio(dot11.MAC(2), fixedPos(5, 0))
	rx := m.NewRadio(dot11.MAC(3), fixedPos(10, 0))
	var got []dot11.MACAddr
	rx.SetReceiver(func(f dot11.Frame, _ RxInfo) { got = append(got, f.Addr2) })

	// Both stations commit at t=0: the first sees an idle channel, the
	// second is contended and (at p=1) must be corrupted.
	a.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(1)}, nil)
	b.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(2)}, nil)
	eng.RunAll()

	s := m.Stats()
	if s.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", s.Collisions)
	}
	if len(got) != 1 || got[0] != dot11.MAC(1) {
		t.Fatalf("delivered = %v, want only the uncontended sender's frame", got)
	}
}

func TestCollidedUnicastRetriesAndRecovers(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMedium(eng, sim.NewRNG(1), certainCollisions())
	a := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	b := m.NewRadio(dot11.MAC(2), fixedPos(5, 0))
	rx := m.NewRadio(dot11.MAC(3), fixedPos(10, 0))
	rx.SetReceiver(func(dot11.Frame, RxInfo) {})

	// b's unicast commits while a's frame is on the air: the first
	// attempt is corrupted, and the MAC retry (after a's frame has
	// drained) goes through on an idle channel.
	var ok *bool
	a.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(1)}, nil)
	b.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(3), Addr3: dot11.MAC(2)}, func(v bool) { ok = &v })
	eng.RunAll()

	if ok == nil || !*ok {
		t.Fatalf("unicast status = %v, want delivered after retry", ok)
	}
	s := m.Stats()
	if s.Collisions == 0 {
		t.Fatal("no collision recorded for the contended first attempt")
	}
	// One broadcast plus at least two unicast attempts (the corrupted
	// first try and its successful MAC retry).
	if s.FramesSent < 3 {
		t.Fatalf("frames sent = %d, want >=3 (collided unicast must retry)", s.FramesSent)
	}
}

func TestNegativeCollisionProbDisablesCollisions(t *testing.T) {
	eng := sim.NewEngine()
	p := lossless()
	p.CollisionProb = -1
	m := NewMedium(eng, sim.NewRNG(1), p)
	a := m.NewRadio(dot11.MAC(1), fixedPos(0, 0))
	b := m.NewRadio(dot11.MAC(2), fixedPos(5, 0))
	rx := m.NewRadio(dot11.MAC(3), fixedPos(10, 0))
	got := 0
	rx.SetReceiver(func(dot11.Frame, RxInfo) { got++ })

	a.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(1)}, nil)
	b.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(2)}, nil)
	eng.RunAll()
	if s := m.Stats(); s.Collisions != 0 {
		t.Fatalf("collisions = %d with the model disabled", s.Collisions)
	}
	if got != 2 {
		t.Fatalf("delivered %d of 2 frames", got)
	}
}

// TestContentionDeterminism: the collision draw happens at commit time, so
// identical event sequences must yield identical medium statistics.
func TestContentionDeterminism(t *testing.T) {
	run := func() string {
		eng := sim.NewEngine()
		p := lossless()
		p.CollisionProb = 0.5
		m := NewMedium(eng, sim.NewRNG(7), p)
		radios := make([]*Radio, 4)
		for i := range radios {
			radios[i] = m.NewRadio(dot11.MAC(uint32(1+i)), fixedPos(float64(i)*5, 0))
			radios[i].SetReceiver(func(dot11.Frame, RxInfo) {})
		}
		for round := 0; round < 10; round++ {
			for _, r := range radios {
				r.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: r.MAC()}, nil)
			}
			eng.RunAll()
		}
		return fmt.Sprintf("%+v", m.Stats())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed contention runs differ:\n%s\n%s", a, b)
	}
}
