package capture

import (
	"bytes"
	"encoding/binary"

	"testing"
	"testing/quick"
	"time"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/phy"
	"spider/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]byte{
		[]byte("frame-one"),
		[]byte("frame-two-longer"),
		{},
	}
	for i, f := range frames {
		if err := w.WritePacket(sim.Time(i)*time.Second+1500*time.Microsecond, f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	pkts, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 {
		t.Fatalf("read %d packets", len(pkts))
	}
	for i, p := range pkts {
		if !bytes.Equal(p.Data, frames[i]) {
			t.Fatalf("packet %d data mismatch", i)
		}
		want := sim.Time(i)*time.Second + 1500*time.Microsecond
		if p.At != want {
			t.Fatalf("packet %d at %v, want %v", i, p.At, want)
		}
	}
}

func TestHeaderLayout(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header len = %d", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != 0xa1b2c3d4 {
		t.Fatal("wrong magic")
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != 2 || binary.LittleEndian.Uint16(hdr[6:8]) != 4 {
		t.Fatal("wrong version")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != LinkType {
		t.Fatal("wrong link type")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("garbage header: %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(0, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != ErrTruncated {
		t.Fatalf("truncated record: %v", err)
	}
}

func TestNilWriterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWriter(nil) did not panic")
		}
	}()
	NewWriter(nil)
}

// TestMediumTapCapturesFrames exercises the end-to-end path: a radio
// transmits, the medium tap feeds the Writer, and the capture decodes back
// to valid dot11 frames.
func TestMediumTapCapturesFrames(t *testing.T) {
	eng := sim.NewEngine()
	params := phy.Defaults()
	params.Loss = func(float64) float64 { return 0 }
	medium := phy.NewMedium(eng, sim.NewRNG(1), params)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	medium.SetTap(func(_ dot11.Channel, wire []byte, at sim.Time) {
		if err := w.WritePacket(at, wire); err != nil {
			t.Fatal(err)
		}
	})
	tx := medium.NewRadio(dot11.MAC(1), func() geo.Point { return geo.Point{} })
	rx := medium.NewRadio(dot11.MAC(2), func() geo.Point { return geo.Point{X: 5} })
	rx.SetReceiver(func(dot11.Frame, phy.RxInfo) {})
	tx.Send(dot11.Frame{Type: dot11.TypeBeacon, Addr1: dot11.Broadcast, Addr3: dot11.MAC(1)}, nil)
	tx.Send(dot11.Frame{Type: dot11.TypeData, Addr1: dot11.MAC(2), Body: []byte("payload")}, nil)
	eng.Run(time.Second)

	pkts, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("captured %d frames, want 2", len(pkts))
	}
	types := []dot11.FrameType{dot11.TypeBeacon, dot11.TypeData}
	for i, p := range pkts {
		f, err := dot11.Decode(p.Data)
		if err != nil {
			t.Fatalf("captured frame %d does not decode: %v", i, err)
		}
		if f.Type != types[i] {
			t.Fatalf("frame %d type = %v, want %v", i, f.Type, types[i])
		}
		if p.At <= 0 {
			t.Fatalf("frame %d timestamp %v", i, p.At)
		}
	}
}

// Property: any sequence of frames round-trips with microsecond-truncated
// timestamps.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, usecs []uint32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		n := len(payloads)
		if len(usecs) < n {
			n = len(usecs)
		}
		for i := 0; i < n; i++ {
			at := sim.Time(usecs[i]) * time.Microsecond
			if err := w.WritePacket(at, payloads[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		pkts, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || len(pkts) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(pkts[i].Data, payloads[i]) {
				return false
			}
			if pkts[i].At != sim.Time(usecs[i])*time.Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
