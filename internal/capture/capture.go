// Package capture records simulated 802.11 frames into the classic
// libpcap container format, the equivalent of running tcpdump next to the
// real Spider driver. A Writer streams records to any io.Writer; a Reader
// parses them back for assertions and offline analysis.
//
// Frames use the repository's compact 802.11 wire encoding (package
// dot11), not the full IEEE layout, so captures are written with the
// user-reserved link type LINKTYPE_USER0 (147).
package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spider/internal/sim"
)

// LinkType is the pcap link-layer header type used for captures.
const LinkType uint32 = 147 // LINKTYPE_USER0

const (
	magicMicros  uint32 = 0xa1b2c3d4
	versionMajor uint16 = 2
	versionMinor uint16 = 4
	snapLen      uint32 = 65535
)

// Writer streams a pcap capture.
type Writer struct {
	w       io.Writer
	wroteHd bool
	count   int
}

// NewWriter creates a Writer over w. The file header is emitted lazily on
// the first packet (or explicitly via Flush on an empty capture).
func NewWriter(w io.Writer) *Writer {
	if w == nil {
		panic("capture: NewWriter with nil writer")
	}
	return &Writer{w: w}
}

// Count returns the number of packets written.
func (w *Writer) Count() int { return w.count }

func (w *Writer) header() error {
	if w.wroteHd {
		return nil
	}
	w.wroteHd = true
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkType)
	_, err := w.w.Write(hdr[:])
	return err
}

// Flush ensures the file header exists (useful for empty captures).
func (w *Writer) Flush() error { return w.header() }

// WritePacket appends one frame observed at virtual time at.
func (w *Writer) WritePacket(at sim.Time, data []byte) error {
	if err := w.header(); err != nil {
		return err
	}
	if len(data) > int(snapLen) {
		return fmt.Errorf("capture: frame of %d bytes exceeds snaplen", len(data))
	}
	var rec [16]byte
	usec := at.Microseconds()
	binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	w.count++
	return nil
}

// Packet is one parsed capture record.
type Packet struct {
	At   sim.Time
	Data []byte
}

// Reader parses a pcap capture produced by Writer (or any little-endian
// microsecond pcap).
type Reader struct {
	r        io.Reader
	linkType uint32
}

// Parsing errors.
var (
	ErrBadMagic  = errors.New("capture: bad pcap magic")
	ErrTruncated = errors.New("capture: truncated record")
)

// NewReader validates the file header and prepares to read records.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicros {
		return nil, ErrBadMagic
	}
	return &Reader{r: r, linkType: binary.LittleEndian.Uint32(hdr[20:24])}, nil
}

// LinkTypeField returns the capture's link type.
func (r *Reader) LinkTypeField() uint32 { return r.linkType }

// Next returns the next record, or io.EOF at a clean end of capture.
func (r *Reader) Next() (Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, ErrTruncated
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	n := binary.LittleEndian.Uint32(rec[8:12])
	if n > snapLen {
		return Packet{}, fmt.Errorf("capture: record of %d bytes exceeds snaplen", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, ErrTruncated
	}
	at := sim.Time(sec)*1e9 + sim.Time(usec)*1e3
	return Packet{At: at, Data: data}, nil
}

// ReadAll drains the capture.
func ReadAll(r io.Reader) ([]Packet, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Packet
	for {
		p, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
}
