// Package atomicwrite publishes files atomically: content is staged in a
// temporary file in the destination's directory, fsynced, and renamed
// over the target, so a reader (or a run killed mid-write) can only ever
// observe the old contents or the complete new contents — never a
// truncated artifact. Every result file this repository publishes
// (results/*.txt, benchmark baselines, event/span JSONL, serve
// snapshots) goes through here.
package atomicwrite

import (
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically with the given permissions.
// On error the target is untouched and the temporary file is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := Create(path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// File is an in-progress atomic write: an io.Writer staging into a
// temporary file until Commit renames it over the destination. Abort (or
// Commit failing) removes the staging file and leaves the destination
// untouched.
type File struct {
	tmp  *os.File
	path string
	done bool
}

// Create begins an atomic write to path. The staging file lives in
// path's directory so the final rename cannot cross filesystems.
func Create(path string, perm os.FileMode) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write appends to the staged content.
func (f *File) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Commit fsyncs the staged content, renames it over the destination, and
// fsyncs the directory so the rename itself survives a crash. On any
// error the staging file is removed and the destination left as it was.
func (f *File) Commit() error {
	if f.done {
		return nil
	}
	f.done = true
	name := f.tmp.Name()
	if err := f.tmp.Sync(); err != nil {
		f.tmp.Close()
		os.Remove(name)
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, f.path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(filepath.Dir(f.path))
}

// Abort discards the staged content. Safe after Commit (no-op).
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	name := f.tmp.Name()
	f.tmp.Close()
	os.Remove(name)
}

// syncDir fsyncs a directory so a just-committed rename is durable.
// Filesystems that refuse directory fsync (some CI overlays) degrade to
// best-effort: the rename is still atomic, only its durability window
// widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
