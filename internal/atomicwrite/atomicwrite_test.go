package atomicwrite

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first" {
		t.Fatalf("content = %q, want %q", b, "first")
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("content after replace = %q, want %q", b, "second")
	}
}

func TestAbortLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("stable"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if b, _ := os.ReadFile(path); string(b) != "stable" {
		t.Fatalf("abort clobbered target: %q", b)
	}
	leftOver(t, dir)
}

func TestCommitRemovesStagingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil { // idempotent
		t.Fatal(err)
	}
	leftOver(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", info.Mode().Perm())
	}
}

// leftOver fails the test if any staging temp file survived in dir.
func leftOver(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("staging file left behind: %s", e.Name())
		}
	}
}
