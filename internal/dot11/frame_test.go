package dot11

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	a := MAC(0x01020304)
	if got, want := a.String(), "02:00:01:02:03:04"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast.IsBroadcast() = false")
	}
	if a.IsBroadcast() {
		t.Fatal("unicast address reported as broadcast")
	}
}

func TestMACUnique(t *testing.T) {
	seen := map[MACAddr]bool{}
	for i := uint32(0); i < 1000; i++ {
		m := MAC(i)
		if seen[m] {
			t.Fatalf("MAC(%d) collides", i)
		}
		seen[m] = true
	}
}

func TestChannelValid(t *testing.T) {
	for _, c := range OrthogonalChannels {
		if !c.Valid() {
			t.Fatalf("%v not valid", c)
		}
	}
	if Channel(0).Valid() || Channel(15).Valid() {
		t.Fatal("out-of-range channel reported valid")
	}
	if Channel6.String() != "ch6" {
		t.Fatalf("String = %q", Channel6.String())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Type:      TypeData,
		Addr1:     MAC(1),
		Addr2:     MAC(2),
		Addr3:     MAC(3),
		Seq:       4711,
		PowerMgmt: true,
		MoreData:  true,
		Retry:     true,
		Body:      []byte("hello, 802.11"),
	}
	wire := f.Bytes()
	if len(wire) != f.WireLen() {
		t.Fatalf("wire len %d, WireLen %d", len(wire), f.WireLen())
	}
	g, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != f.Type || g.Addr1 != f.Addr1 || g.Addr2 != f.Addr2 ||
		g.Addr3 != f.Addr3 || g.Seq != f.Seq ||
		g.PowerMgmt != f.PowerMgmt || g.MoreData != f.MoreData || g.Retry != f.Retry {
		t.Fatalf("decoded %+v != original %+v", g, f)
	}
	if !bytes.Equal(g.Body, f.Body) {
		t.Fatalf("body %q != %q", g.Body, f.Body)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrShortFrame {
		t.Fatalf("nil: err = %v, want ErrShortFrame", err)
	}
	if _, err := Decode(make([]byte, headerLen)); err != ErrShortFrame {
		t.Fatalf("short: err = %v, want ErrShortFrame", err)
	}
	f := Frame{Type: TypeBeacon, Addr1: Broadcast, Addr2: MAC(1), Addr3: MAC(1)}
	wire := f.Bytes()
	wire[5] ^= 0xff // corrupt an address byte
	if _, err := Decode(wire); err != ErrBadFCS {
		t.Fatalf("corrupt: err = %v, want ErrBadFCS", err)
	}
	bad := Frame{Type: FrameType(200), Addr1: MAC(1)}
	if _, err := Decode(bad.Bytes()); err != ErrBadType {
		t.Fatalf("bad type: err = %v, want ErrBadType", err)
	}
}

func TestFrameTypeClasses(t *testing.T) {
	mgmt := []FrameType{TypeBeacon, TypeProbeReq, TypeProbeResp, TypeAuth, TypeAuthResp, TypeAssocReq, TypeAssocResp, TypeDeauth}
	for _, ft := range mgmt {
		if !ft.IsManagement() {
			t.Fatalf("%v not management", ft)
		}
	}
	for _, ft := range []FrameType{TypeData, TypeNullData, TypePSPoll, TypeAck} {
		if ft.IsManagement() {
			t.Fatalf("%v reported management", ft)
		}
	}
	if FrameType(99).String() != "frame-type-99" {
		t.Fatalf("unknown type String = %q", FrameType(99).String())
	}
}

func TestBeaconBodyRoundTrip(t *testing.T) {
	bb := BeaconBody{SSID: "townwifi", BeaconInterval: 100, Capabilities: 0x0401}
	got, err := DecodeBeaconBody(bb.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != bb {
		t.Fatalf("round trip %+v != %+v", got, bb)
	}
	if _, err := DecodeBeaconBody([]byte{1, 2}); err != ErrShortBody {
		t.Fatalf("short body: %v", err)
	}
	// Truncated SSID.
	b := bb.AppendTo(nil)
	if _, err := DecodeBeaconBody(b[:len(b)-2]); err != ErrShortBody {
		t.Fatalf("truncated ssid: %v", err)
	}
}

func TestBeaconBodySSIDTooLong(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized SSID did not panic")
		}
	}()
	bb := BeaconBody{SSID: string(make([]byte, 33))}
	bb.AppendTo(nil)
}

func TestAuthBodyRoundTrip(t *testing.T) {
	ab := AuthBody{SeqNum: 2, Status: 0}
	got, err := DecodeAuthBody(ab.AppendTo(nil))
	if err != nil || got != ab {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeAuthBody(nil); err != ErrShortBody {
		t.Fatalf("short: %v", err)
	}
}

func TestAssocRespBodyRoundTrip(t *testing.T) {
	ar := AssocRespBody{Status: 0, AID: 7}
	got, err := DecodeAssocRespBody(ar.AppendTo(nil))
	if err != nil || got != ar {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeAssocRespBody([]byte{0}); err != ErrShortBody {
		t.Fatalf("short: %v", err)
	}
}

// Property: every frame round-trips through the wire format.
func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(typ uint8, a1, a2, a3 uint32, seq uint16, pm, md, rt bool, body []byte) bool {
		ft := FrameType(typ%12) + 1
		orig := Frame{
			Type: ft, Addr1: MAC(a1), Addr2: MAC(a2), Addr3: MAC(a3),
			Seq: seq, PowerMgmt: pm, MoreData: md, Retry: rt, Body: body,
		}
		dec, err := Decode(orig.Bytes())
		if err != nil {
			return false
		}
		return dec.Type == orig.Type && dec.Addr1 == orig.Addr1 &&
			dec.Addr2 == orig.Addr2 && dec.Addr3 == orig.Addr3 &&
			dec.Seq == orig.Seq && dec.PowerMgmt == orig.PowerMgmt &&
			dec.MoreData == orig.MoreData && dec.Retry == orig.Retry &&
			bytes.Equal(dec.Body, orig.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-bit corruption anywhere in the frame is detected by the
// FCS (CRC-32 detects all single-bit errors).
func TestPropertyFCSDetectsBitFlips(t *testing.T) {
	f := func(seed uint16, body []byte, pos uint16, bit uint8) bool {
		orig := Frame{Type: TypeData, Addr1: MAC(1), Addr2: MAC(2), Addr3: MAC(3), Seq: seed, Body: body}
		wire := orig.Bytes()
		p := int(pos) % len(wire)
		wire[p] ^= 1 << (bit % 8)
		_, err := Decode(wire)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	f := Frame{Type: TypeData, Addr1: MAC(1), Addr2: MAC(2), Addr3: MAC(3), Body: make([]byte, 1460)}
	buf := make([]byte, 0, f.WireLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = f.AppendTo(buf[:0])
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	f := Frame{Type: TypeData, Addr1: MAC(1), Addr2: MAC(2), Addr3: MAC(3), Body: make([]byte, 1460)}
	wire := f.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
