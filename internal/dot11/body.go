package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBody reports a management body shorter than its fixed fields.
var ErrShortBody = errors.New("dot11: management body too short")

// BeaconBody is the body of beacon and probe-response frames: the SSID plus
// the fields the simulation needs for AP discovery.
type BeaconBody struct {
	SSID           string
	BeaconInterval uint16 // in ms
	Capabilities   uint16
}

// AppendTo serializes the body onto b.
func (bb *BeaconBody) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, bb.BeaconInterval)
	b = binary.BigEndian.AppendUint16(b, bb.Capabilities)
	if len(bb.SSID) > 32 {
		panic(fmt.Sprintf("dot11: SSID %q longer than 32 bytes", bb.SSID))
	}
	b = append(b, byte(len(bb.SSID)))
	return append(b, bb.SSID...)
}

// DecodeBeaconBody parses a beacon/probe-response body.
func DecodeBeaconBody(data []byte) (BeaconBody, error) {
	return DecodeBeaconBodyReuse(data, "")
}

// DecodeBeaconBodyReuse is DecodeBeaconBody, except that when the encoded
// SSID equals prevSSID the existing string is reused instead of copied.
// Receivers see the same few SSIDs in every beacon of a dwell, so passing
// the previous scan entry's SSID makes the steady beacon stream
// allocation-free.
func DecodeBeaconBodyReuse(data []byte, prevSSID string) (BeaconBody, error) {
	var bb BeaconBody
	if len(data) < 5 {
		return bb, ErrShortBody
	}
	bb.BeaconInterval = binary.BigEndian.Uint16(data[0:2])
	bb.Capabilities = binary.BigEndian.Uint16(data[2:4])
	n := int(data[4])
	if len(data) < 5+n {
		return bb, ErrShortBody
	}
	if ssid := data[5 : 5+n]; string(ssid) == prevSSID {
		bb.SSID = prevSSID
	} else {
		bb.SSID = string(ssid)
	}
	return bb, nil
}

// AuthBody is the body of authentication frames (both directions).
type AuthBody struct {
	SeqNum uint16 // handshake sequence number (1 or 2)
	Status uint16 // 0 = success
}

// AppendTo serializes the body onto b.
func (ab *AuthBody) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, ab.SeqNum)
	return binary.BigEndian.AppendUint16(b, ab.Status)
}

// DecodeAuthBody parses an authentication body.
func DecodeAuthBody(data []byte) (AuthBody, error) {
	if len(data) < 4 {
		return AuthBody{}, ErrShortBody
	}
	return AuthBody{
		SeqNum: binary.BigEndian.Uint16(data[0:2]),
		Status: binary.BigEndian.Uint16(data[2:4]),
	}, nil
}

// AssocRespBody is the body of association-response frames.
type AssocRespBody struct {
	Status uint16 // 0 = success
	AID    uint16 // association id assigned by the AP
}

// AppendTo serializes the body onto b.
func (ar *AssocRespBody) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, ar.Status)
	return binary.BigEndian.AppendUint16(b, ar.AID)
}

// DecodeAssocRespBody parses an association-response body.
func DecodeAssocRespBody(data []byte) (AssocRespBody, error) {
	if len(data) < 4 {
		return AssocRespBody{}, ErrShortBody
	}
	return AssocRespBody{
		Status: binary.BigEndian.Uint16(data[0:2]),
		AID:    binary.BigEndian.Uint16(data[2:4]),
	}, nil
}
