package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// FrameType identifies the management, control, or data frame subtype.
type FrameType uint8

// Frame subtypes used by the simulation. The values are stable wire
// constants, not the raw 802.11 type/subtype bit layout.
const (
	TypeBeacon FrameType = iota + 1
	TypeProbeReq
	TypeProbeResp
	TypeAuth
	TypeAuthResp
	TypeAssocReq
	TypeAssocResp
	TypeDeauth
	TypeData
	TypeNullData // data frame with no body, used to signal the PM bit
	TypePSPoll
	TypeAck
)

var frameTypeNames = map[FrameType]string{
	TypeBeacon:    "beacon",
	TypeProbeReq:  "probe-req",
	TypeProbeResp: "probe-resp",
	TypeAuth:      "auth",
	TypeAuthResp:  "auth-resp",
	TypeAssocReq:  "assoc-req",
	TypeAssocResp: "assoc-resp",
	TypeDeauth:    "deauth",
	TypeData:      "data",
	TypeNullData:  "null",
	TypePSPoll:    "ps-poll",
	TypeAck:       "ack",
}

func (t FrameType) String() string {
	if s, ok := frameTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("frame-type-%d", uint8(t))
}

// IsManagement reports whether the subtype is a management frame, which is
// never buffered by power-save mode at the AP.
func (t FrameType) IsManagement() bool {
	return t >= TypeBeacon && t <= TypeDeauth
}

// Frame control flag bits.
const (
	flagPowerMgmt = 1 << 0
	flagMoreData  = 1 << 1
	flagRetry     = 1 << 2
)

// headerLen is the serialized header length: 1 type + 1 flags + 3×6
// addresses + 2 sequence.
const headerLen = 1 + 1 + 18 + 2

// fcsLen is the length of the trailing CRC-32 frame check sequence.
const fcsLen = 4

// Frame is a single 802.11 MAC frame.
//
// Addr1 is the receiver, Addr2 the transmitter, and Addr3 the BSSID, per
// the usual infrastructure-mode convention.
type Frame struct {
	Type      FrameType
	Addr1     MACAddr // receiver / destination
	Addr2     MACAddr // transmitter / source
	Addr3     MACAddr // BSSID
	Seq       uint16
	PowerMgmt bool // PM bit: transmitter is entering power-save mode
	MoreData  bool // AP has more buffered frames for the station
	Retry     bool // MAC retransmission
	Body      []byte
}

// WireLen returns the full serialized length in bytes, including the FCS.
// The PHY charges airtime for exactly this many bytes plus PHY preamble.
func (f *Frame) WireLen() int { return headerLen + len(f.Body) + fcsLen }

// AppendTo serializes the frame (with FCS) onto b and returns the extended
// slice.
func (f *Frame) AppendTo(b []byte) []byte {
	start := len(b)
	var flags byte
	if f.PowerMgmt {
		flags |= flagPowerMgmt
	}
	if f.MoreData {
		flags |= flagMoreData
	}
	if f.Retry {
		flags |= flagRetry
	}
	b = append(b, byte(f.Type), flags)
	b = append(b, f.Addr1[:]...)
	b = append(b, f.Addr2[:]...)
	b = append(b, f.Addr3[:]...)
	b = binary.BigEndian.AppendUint16(b, f.Seq)
	b = append(b, f.Body...)
	fcs := crc32.ChecksumIEEE(b[start:])
	return binary.BigEndian.AppendUint32(b, fcs)
}

// Bytes serializes the frame into a fresh buffer.
func (f *Frame) Bytes() []byte {
	return f.AppendTo(make([]byte, 0, f.WireLen()))
}

// Decoding errors.
var (
	ErrShortFrame = errors.New("dot11: frame too short")
	ErrBadFCS     = errors.New("dot11: frame check sequence mismatch")
	ErrBadType    = errors.New("dot11: unknown frame type")
)

// Decode parses a serialized frame, verifying the FCS. The returned frame's
// Body aliases data.
func Decode(data []byte) (Frame, error) {
	var f Frame
	if len(data) < headerLen+fcsLen {
		return f, ErrShortFrame
	}
	body := data[:len(data)-fcsLen]
	want := binary.BigEndian.Uint32(data[len(data)-fcsLen:])
	if crc32.ChecksumIEEE(body) != want {
		return f, ErrBadFCS
	}
	f.Type = FrameType(data[0])
	if _, ok := frameTypeNames[f.Type]; !ok {
		return f, ErrBadType
	}
	flags := data[1]
	f.PowerMgmt = flags&flagPowerMgmt != 0
	f.MoreData = flags&flagMoreData != 0
	f.Retry = flags&flagRetry != 0
	copy(f.Addr1[:], data[2:8])
	copy(f.Addr2[:], data[8:14])
	copy(f.Addr3[:], data[14:20])
	f.Seq = binary.BigEndian.Uint16(data[20:22])
	f.Body = body[headerLen:]
	return f, nil
}

func (f *Frame) String() string {
	return fmt.Sprintf("%s %s->%s bssid=%s seq=%d pm=%t len=%d",
		f.Type, f.Addr2, f.Addr1, f.Addr3, f.Seq, f.PowerMgmt, f.WireLen())
}
