// Package dot11 models the subset of IEEE 802.11 framing that Spider's
// driver, the access points, and the PHY exchange: management frames for
// scanning and the join handshake, data and null-data frames with the
// power-management bit, and PS-Poll frames.
//
// Frames follow the gopacket idiom: each frame serializes to a compact
// binary wire format with AppendTo/Decode round-trips, and carries enough
// header bytes that airtime accounting at the PHY is realistic.
package dot11

import "fmt"

// MACAddr is a 48-bit IEEE 802 MAC address.
type MACAddr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the conventional colon-separated form.
func (a MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (a MACAddr) IsBroadcast() bool { return a == Broadcast }

// MAC derives a locally administered unicast address from a small integer
// id, convenient for assigning stable addresses to simulated stations.
func MAC(id uint32) MACAddr {
	return MACAddr{0x02, 0x00, byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// Channel is an 802.11b/g channel number. Spider schedules among the three
// orthogonal channels 1, 6, and 11.
type Channel uint8

// The orthogonal 2.4 GHz channels used throughout the paper.
const (
	Channel1  Channel = 1
	Channel6  Channel = 6
	Channel11 Channel = 11
)

// OrthogonalChannels lists the three non-overlapping channels in ascending
// order.
var OrthogonalChannels = []Channel{Channel1, Channel6, Channel11}

// Valid reports whether c is a legal 2.4 GHz channel (1-14).
func (c Channel) Valid() bool { return c >= 1 && c <= 14 }

func (c Channel) String() string { return fmt.Sprintf("ch%d", uint8(c)) }
