// Package dot11 models the subset of IEEE 802.11 framing that Spider's
// driver, the access points, and the PHY exchange: management frames for
// scanning and the join handshake, data and null-data frames with the
// power-management bit, and PS-Poll frames.
//
// Frames follow the gopacket idiom: each frame serializes to a compact
// binary wire format with AppendTo/Decode round-trips, and carries enough
// header bytes that airtime accounting at the PHY is realistic.
package dot11

import "strconv"

// MACAddr is a 48-bit IEEE 802 MAC address.
type MACAddr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

const hexDigits = "0123456789abcdef"

// String formats the address in the conventional colon-separated form.
// Hand-rolled rather than fmt-based: event emission renders MACs on hot
// paths, and Sprintf costs several allocations per call.
func (a MACAddr) String() string {
	var b [17]byte
	for i, v := range a {
		b[i*3] = hexDigits[v>>4]
		b[i*3+1] = hexDigits[v&0x0f]
		if i < 5 {
			b[i*3+2] = ':'
		}
	}
	return string(b[:])
}

// Less reports whether a orders before b bytewise — the same order as
// comparing String() renderings, without building the strings. Scan-table
// and candidate sorts use it as their deterministic tiebreak.
func (a MACAddr) Less(b MACAddr) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// IsBroadcast reports whether the address is the broadcast address.
func (a MACAddr) IsBroadcast() bool { return a == Broadcast }

// MAC derives a locally administered unicast address from a small integer
// id, convenient for assigning stable addresses to simulated stations.
func MAC(id uint32) MACAddr {
	return MACAddr{0x02, 0x00, byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// Channel is an 802.11b/g channel number. Spider schedules among the three
// orthogonal channels 1, 6, and 11.
type Channel uint8

// The orthogonal 2.4 GHz channels used throughout the paper.
const (
	Channel1  Channel = 1
	Channel6  Channel = 6
	Channel11 Channel = 11
)

// OrthogonalChannels lists the three non-overlapping channels in ascending
// order.
var OrthogonalChannels = []Channel{Channel1, Channel6, Channel11}

// Valid reports whether c is a legal 2.4 GHz channel (1-14).
func (c Channel) Valid() bool { return c >= 1 && c <= 14 }

func (c Channel) String() string { return "ch" + strconv.Itoa(int(c)) }
