package tcpsim

import "spider/internal/sim"

// Receiver is the data-receiving half of a connection (the mobile client).
// It acknowledges cumulatively and buffers out-of-order segments, so
// duplicate deliveries — e.g. retransmissions flushed from an AP's
// power-save buffer — are absorbed correctly.
type Receiver struct {
	eng    *sim.Engine
	out    func(Segment)            // ACK path back to the sender
	onData func(n int, at sim.Time) // fresh in-order payload bytes

	synSeen bool
	rcvNxt  uint32
	ooo     map[uint32]int // seq -> payload length

	// Stats.
	BytesReceived int64 // cumulative in-order payload
	DupSegments   int
	AcksSent      int
}

// NewReceiver creates a receiver. out transmits ACKs toward the sender;
// onData (optional) observes every in-order payload delivery.
func NewReceiver(eng *sim.Engine, out func(Segment), onData func(n int, at sim.Time)) *Receiver {
	if out == nil {
		panic("tcpsim: NewReceiver with nil out")
	}
	return &Receiver{eng: eng, out: out, onData: onData, ooo: make(map[uint32]int)}
}

// RcvNxt returns the next expected sequence number.
func (r *Receiver) RcvNxt() uint32 { return r.rcvNxt }

// Deliver feeds a segment from the sender into the receiver. Every data
// segment triggers an ACK (no delayed ACKs), mirroring the aggressive
// acking of the short-RTT paths in the paper's testbed.
func (r *Receiver) Deliver(seg Segment) {
	if seg.Flags&FlagSYN != 0 {
		if !r.synSeen {
			r.synSeen = true
			r.rcvNxt = seg.Seq + 1
		}
		r.ack()
		return
	}
	if !r.synSeen || seg.Payload == 0 {
		return
	}
	end := seg.Seq + uint32(seg.Payload)
	switch {
	case end <= r.rcvNxt:
		r.DupSegments++
	case seg.Seq > r.rcvNxt:
		r.ooo[seg.Seq] = seg.Payload
	default:
		fresh := int(end - r.rcvNxt)
		r.advance(end, fresh)
		// Drain any now-contiguous buffered segments.
		for {
			n, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.advance(r.rcvNxt+uint32(n), n)
		}
		// Garbage-collect stale buffered segments below rcvNxt.
		for s, n := range r.ooo {
			if s+uint32(n) <= r.rcvNxt {
				delete(r.ooo, s)
			}
		}
	}
	r.ack()
}

func (r *Receiver) advance(to uint32, fresh int) {
	r.rcvNxt = to
	r.BytesReceived += int64(fresh)
	if r.onData != nil {
		r.onData(fresh, r.eng.Now())
	}
}

func (r *Receiver) ack() {
	r.AcksSent++
	r.out(Segment{Flags: FlagACK, Ack: r.rcvNxt})
}
