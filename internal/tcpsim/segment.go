// Package tcpsim implements a compact Reno-style TCP sufficient to
// reproduce the transport dynamics the Spider paper measures: slow start,
// AIMD congestion avoidance, duplicate-ACK fast retransmit, and
// retransmission timeouts with exponential backoff. Channel absences longer
// than the RTO stall a connection and collapse its window — the effect
// behind the paper's Figures 7, 8, and 10.
package tcpsim

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Segment flag bits.
const (
	FlagSYN = 1 << 0
	FlagACK = 1 << 1
	FlagFIN = 1 << 2
)

// Segment is a TCP segment. Payload content is synthetic (zeros) but its
// length is carried on the wire so lower layers charge correct airtime.
type Segment struct {
	Flags   uint8
	Seq     uint32 // first payload byte
	Ack     uint32 // next expected byte (valid when FlagACK set)
	Payload int    // payload length in bytes
}

const segHeaderLen = 1 + 4 + 4 + 2

// ErrShortSegment reports a truncated serialized segment.
var ErrShortSegment = errors.New("tcpsim: segment too short")

// AppendTo serializes the segment (header plus zero payload) onto b.
func (s *Segment) AppendTo(b []byte) []byte {
	b = append(b, s.Flags)
	b = binary.BigEndian.AppendUint32(b, s.Seq)
	b = binary.BigEndian.AppendUint32(b, s.Ack)
	if s.Payload < 0 || s.Payload > 0xffff {
		panic(fmt.Sprintf("tcpsim: payload length %d out of range", s.Payload))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(s.Payload))
	return append(b, make([]byte, s.Payload)...)
}

// Bytes serializes the segment into a fresh buffer.
func (s *Segment) Bytes() []byte {
	return s.AppendTo(make([]byte, 0, segHeaderLen+s.Payload))
}

// WireLen returns the serialized length.
func (s *Segment) WireLen() int { return segHeaderLen + s.Payload }

// DecodeSegment parses a serialized segment.
func DecodeSegment(data []byte) (Segment, error) {
	var s Segment
	if len(data) < segHeaderLen {
		return s, ErrShortSegment
	}
	s.Flags = data[0]
	s.Seq = binary.BigEndian.Uint32(data[1:5])
	s.Ack = binary.BigEndian.Uint32(data[5:9])
	s.Payload = int(binary.BigEndian.Uint16(data[9:11]))
	if len(data) < segHeaderLen+s.Payload {
		return s, ErrShortSegment
	}
	return s, nil
}

func (s Segment) String() string {
	return fmt.Sprintf("seg{flags=%03b seq=%d ack=%d len=%d}", s.Flags, s.Seq, s.Ack, s.Payload)
}
