package tcpsim

import (
	"spider/internal/sim"
)

// Config tunes the TCP endpoints.
type Config struct {
	// MSS is the maximum segment payload in bytes.
	MSS int
	// InitCwnd is the initial congestion window in segments.
	InitCwnd float64
	// InitRTO is the retransmission timeout before any RTT sample.
	InitRTO sim.Time
	// MinRTO and MaxRTO clamp the computed timeout.
	MinRTO sim.Time
	MaxRTO sim.Time
}

// DefaultConfig returns values matching a mid-2000s Linux stack, which the
// paper's testbed ran.
func DefaultConfig() Config {
	return Config{
		MSS:      1460,
		InitCwnd: 2,
		InitRTO:  1000 * 1000 * 1000, // 1 s
		MinRTO:   200 * 1000 * 1000,  // 200 ms
		MaxRTO:   60 * 1000 * 1000 * 1000,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = d.InitCwnd
	}
	if c.InitRTO <= 0 {
		c.InitRTO = d.InitRTO
	}
	if c.MinRTO <= 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	return c
}

type senderState uint8

const (
	senderClosed senderState = iota
	senderSynSent
	senderEstablished
	senderDone
)

// Sender is the data-sending half of a connection (the wired server in the
// paper's experiments). It implements Reno congestion control.
type Sender struct {
	eng  *sim.Engine
	cfg  Config
	out  func(Segment)
	done func()

	state  senderState
	total  int64 // payload bytes to send; <0 means unbounded
	sndUna uint32
	sndNxt uint32

	cwnd     float64 // segments
	ssthresh float64
	dupAcks  int

	srtt, rttvar, rto sim.Time
	hasSample         bool
	sendTimes         map[uint32]sim.Time // end-seq -> transmit time (Karn-safe)
	ackScratch        []uint32            // reused by sampleRTT across ACKs

	rtoTimer *sim.Event
	stopped  bool

	// Pacing: when paceBps > 0, data segments are released no faster than
	// the target rate. paceNext is when the token bucket next permits a
	// segment; paceTimer wakes sendData at that instant when the window
	// would otherwise allow more.
	paceBps   float64
	paceNext  sim.Time
	paceTimer *sim.Event

	// Stats for experiments.
	Timeouts        int
	FastRetransmits int
	SegmentsSent    int
	BytesAcked      int64

	// OnRTT, when non-nil, observes every accepted RTT sample (Karn-safe,
	// in sequence order) at the sim time it was folded — the telemetry
	// plane's per-window RTT sketch hangs off this.
	OnRTT func(at sim.Time, sample sim.Time)
}

// NewSender creates a sender. out transmits a segment toward the receiver;
// done (optional) fires once a finite flow is fully acknowledged.
func NewSender(eng *sim.Engine, cfg Config, out func(Segment), done func()) *Sender {
	if out == nil {
		panic("tcpsim: NewSender with nil out")
	}
	cfg = cfg.withDefaults()
	return &Sender{
		eng:       eng,
		cfg:       cfg,
		out:       out,
		done:      done,
		cwnd:      cfg.InitCwnd,
		ssthresh:  64, // segments
		rto:       cfg.InitRTO,
		sendTimes: make(map[uint32]sim.Time),
	}
}

// Start opens the connection and begins pushing totalBytes of payload
// (negative for an unbounded bulk flow).
func (s *Sender) Start(totalBytes int64) {
	if s.state != senderClosed {
		return
	}
	s.total = totalBytes
	s.state = senderSynSent
	s.out(Segment{Flags: FlagSYN, Seq: 0})
	s.SegmentsSent++
	s.armRTO()
}

// Stop abandons the connection; no further segments are sent.
func (s *Sender) Stop() {
	s.stopped = true
	s.cancelRTO()
	s.cancelPace()
}

// SetPaceBps caps the sender's payload release rate (the allocator's
// airtime-share enforcement); <= 0 removes the cap. Setting the rate only
// records it — no event is scheduled, so an allocator may re-pace any
// number of idle senders without perturbing the event timeline. Only when
// the sender was asleep on its own pace timer is that wakeup replaced by
// an immediate re-drive, since the cancelled timer was its sole way
// forward.
func (s *Sender) SetPaceBps(bps float64) {
	if bps <= 0 {
		bps = 0
		s.paceNext = 0
	}
	s.paceBps = bps
	if s.paceTimer != nil {
		s.cancelPace()
		s.sendData()
	}
}

// PaceBps returns the current pacing cap (0 when unpaced).
func (s *Sender) PaceBps() float64 { return s.paceBps }

func (s *Sender) cancelPace() {
	if s.paceTimer != nil {
		s.eng.Cancel(s.paceTimer)
		s.paceTimer = nil
	}
}

func (s *Sender) onPaceTimer() {
	s.paceTimer = nil
	s.sendData()
}

// Established reports whether the handshake has completed.
func (s *Sender) Established() bool { return s.state == senderEstablished }

// Done reports whether a finite flow has been fully acknowledged.
func (s *Sender) Done() bool { return s.state == senderDone }

// Cwnd returns the congestion window in segments (for tests/metrics).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() sim.Time { return s.rto }

func (s *Sender) cancelRTO() {
	if s.rtoTimer != nil {
		s.eng.Cancel(s.rtoTimer)
		s.rtoTimer = nil
	}
}

func (s *Sender) armRTO() {
	s.cancelRTO()
	s.rtoTimer = s.eng.Schedule(s.rto, s.onRTO)
}

func (s *Sender) flight() uint32 { return s.sndNxt - s.sndUna }

// remaining returns payload bytes not yet assigned a sequence number.
func (s *Sender) remaining() int64 {
	if s.total < 0 {
		return 1 << 40
	}
	// Payload occupies sequence space [1, 1+total).
	sent := int64(s.sndNxt) - 1
	return s.total - sent
}

func (s *Sender) onRTO() {
	s.rtoTimer = nil
	if s.stopped || s.state == senderDone || s.state == senderClosed {
		return
	}
	s.Timeouts++
	flightSeg := float64(s.flight()) / float64(s.cfg.MSS)
	s.ssthresh = maxf(flightSeg/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	clear(s.sendTimes) // Karn: no samples across retransmits
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	switch s.state {
	case senderSynSent:
		s.out(Segment{Flags: FlagSYN, Seq: 0})
		s.SegmentsSent++
	case senderEstablished:
		// Go-back-N: rewind and retransmit one segment.
		s.sndNxt = s.sndUna
		s.sendData()
	}
	s.armRTO()
}

// sendData pushes segments while the window allows.
func (s *Sender) sendData() {
	if s.state != senderEstablished || s.stopped {
		return
	}
	cwndBytes := uint32(s.cwnd * float64(s.cfg.MSS))
	for s.flight() < cwndBytes {
		rem := s.remaining()
		if rem <= 0 {
			break
		}
		if s.paceBps > 0 {
			now := s.eng.Now()
			if s.paceNext > now {
				// Token bucket empty: wake exactly when it refills. One
				// timer, re-armed only while the window wants more data.
				if s.paceTimer == nil {
					s.paceTimer = s.eng.ScheduleAt(s.paceNext, s.onPaceTimer)
				}
				break
			}
		}
		n := s.cfg.MSS
		if int64(n) > rem {
			n = int(rem)
		}
		if s.flight()+uint32(n) > cwndBytes && s.flight() > 0 {
			break
		}
		if s.paceBps > 0 {
			// No burst credit: an idle gap does not entitle a burst, so the
			// clock advances from now, not from the stale paceNext.
			now := s.eng.Now()
			if s.paceNext < now {
				s.paceNext = now
			}
			s.paceNext += sim.Time(float64(n) * 8 / s.paceBps * 1e9)
		}
		seg := Segment{Flags: FlagACK, Seq: s.sndNxt, Payload: n}
		s.sendTimes[s.sndNxt+uint32(n)] = s.eng.Now()
		s.sndNxt += uint32(n)
		s.out(seg)
		s.SegmentsSent++
	}
	if s.flight() > 0 && s.rtoTimer == nil {
		s.armRTO()
	}
}

// sampleRTT folds every newly acknowledged segment's round-trip into the
// estimator, like a timestamp-option stack. Per-segment sampling matters
// for channel-sliced schedules: ACKs for segments buffered across an
// absence carry large samples that keep the RTO above the absence length.
func (s *Sender) sampleRTT(ack uint32) {
	// Fold samples in sequence order: the estimator is an EWMA, so the
	// folding order changes srtt/rttvar — iterating the map directly
	// would make the RTO depend on map iteration order.
	ends := s.ackScratch[:0]
	for end := range s.sendTimes {
		if end <= ack {
			ends = append(ends, end)
		}
	}
	s.ackScratch = ends
	// Insertion sort: an ACK rarely covers more than a handful of
	// segments, and this keeps the per-ACK path closure-free.
	for i := 1; i < len(ends); i++ {
		for j := i; j > 0 && ends[j] < ends[j-1]; j-- {
			ends[j], ends[j-1] = ends[j-1], ends[j]
		}
	}
	for _, end := range ends {
		at := s.sendTimes[end]
		delete(s.sendTimes, end)
		s.addSample(s.eng.Now() - at)
	}
}

func (s *Sender) addSample(sample sim.Time) {
	if s.OnRTT != nil {
		s.OnRTT(s.eng.Now(), sample)
	}
	if !s.hasSample {
		s.hasSample = true
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

// Deliver feeds an ACK from the receiver into the sender.
func (s *Sender) Deliver(seg Segment) {
	if s.stopped || seg.Flags&FlagACK == 0 {
		return
	}
	switch s.state {
	case senderSynSent:
		if seg.Ack >= 1 {
			s.state = senderEstablished
			s.sndUna, s.sndNxt = 1, 1
			s.rto = s.cfg.InitRTO
			s.cancelRTO()
			s.sendData()
		}
	case senderEstablished:
		if seg.Ack > s.sndUna {
			acked := seg.Ack - s.sndUna
			s.BytesAcked += int64(acked)
			s.sndUna = seg.Ack
			if s.sndNxt < s.sndUna {
				// A late cumulative ACK can pass a go-back-N rewind point;
				// never leave sndNxt behind sndUna or flight() underflows.
				s.sndNxt = s.sndUna
			}
			s.dupAcks = 0
			s.sampleRTT(seg.Ack)
			// Window growth: slow start below ssthresh, else AIMD.
			if s.cwnd < s.ssthresh {
				s.cwnd += minf(1, float64(acked)/float64(s.cfg.MSS))
			} else {
				s.cwnd += 1 / s.cwnd
			}
			if s.total >= 0 && int64(s.sndUna) >= s.total+1 {
				s.state = senderDone
				s.cancelRTO()
				s.cancelPace()
				if s.done != nil {
					s.done()
				}
				return
			}
			if s.flight() == 0 {
				s.cancelRTO()
			} else {
				s.armRTO()
			}
			s.sendData()
		} else if seg.Ack == s.sndUna && s.flight() > 0 {
			s.dupAcks++
			if s.dupAcks == 3 {
				// Fast retransmit + simplified fast recovery.
				s.FastRetransmits++
				flightSeg := float64(s.flight()) / float64(s.cfg.MSS)
				s.ssthresh = maxf(flightSeg/2, 2)
				s.cwnd = s.ssthresh
				clear(s.sendTimes)
				n := s.cfg.MSS
				if rem := s.remaining() + int64(s.flight()); int64(n) > rem {
					n = int(rem)
				}
				if n > 0 {
					s.out(Segment{Flags: FlagACK, Seq: s.sndUna, Payload: n})
					s.SegmentsSent++
				}
				s.armRTO()
			}
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
