package tcpsim

import (
	"testing"
	"testing/quick"
	"time"

	"spider/internal/sim"
)

// pipe is a bidirectional test path with one-way delay, random loss, and a
// blockable forward direction (simulating channel absence).
type pipe struct {
	eng     *sim.Engine
	rng     *sim.RNG
	delay   sim.Time
	loss    float64
	blocked bool
}

func (p *pipe) dir(deliver func(Segment)) func(Segment) {
	return func(s Segment) {
		if p.blocked || p.rng.Bool(p.loss) {
			return
		}
		p.eng.Schedule(p.delay, func() { deliver(s) })
	}
}

// connect wires a sender and receiver through the pipe and returns them.
func connect(eng *sim.Engine, p *pipe, cfg Config, total int64, done func()) (*Sender, *Receiver) {
	var snd *Sender
	var rcv *Receiver
	rcv = NewReceiver(eng, p.dir(func(s Segment) { snd.Deliver(s) }), nil)
	snd = NewSender(eng, cfg, p.dir(func(s Segment) { rcv.Deliver(s) }), done)
	snd.Start(total)
	return snd, rcv
}

func TestSegmentRoundTrip(t *testing.T) {
	s := Segment{Flags: FlagACK | FlagSYN, Seq: 1234, Ack: 5678, Payload: 321}
	got, err := DecodeSegment(s.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip %+v != %+v", got, s)
	}
	if s.WireLen() != len(s.Bytes()) {
		t.Fatal("WireLen mismatch")
	}
	if _, err := DecodeSegment([]byte{1, 2}); err != ErrShortSegment {
		t.Fatalf("short: %v", err)
	}
	big := Segment{Payload: 100}
	wire := big.Bytes()
	if _, err := DecodeSegment(wire[:len(wire)-1]); err != ErrShortSegment {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestPropertySegmentRoundTrip(t *testing.T) {
	f := func(flags uint8, seq, ack uint32, pl uint16) bool {
		s := Segment{Flags: flags, Seq: seq, Ack: ack, Payload: int(pl)}
		got, err := DecodeSegment(s.Bytes())
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLosslessTransferCompletes(t *testing.T) {
	eng := sim.NewEngine()
	p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: 10 * time.Millisecond}
	doneAt := sim.Time(-1)
	const total = 1 << 20 // 1 MiB
	snd, rcv := connect(eng, p, Config{}, total, func() { doneAt = eng.Now() })
	eng.Run(time.Minute)
	if !snd.Done() {
		t.Fatalf("flow not done: acked=%d timeouts=%d", snd.BytesAcked, snd.Timeouts)
	}
	if rcv.BytesReceived != total {
		t.Fatalf("received %d, want %d", rcv.BytesReceived, total)
	}
	if doneAt <= 0 {
		t.Fatal("done callback not fired")
	}
	if snd.Timeouts != 0 {
		t.Fatalf("timeouts = %d on lossless path", snd.Timeouts)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	eng := sim.NewEngine()
	p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: 50 * time.Millisecond}
	snd, _ := connect(eng, p, Config{}, -1, nil)
	eng.Run(2 * time.Second)
	if snd.Cwnd() <= DefaultConfig().InitCwnd {
		t.Fatalf("cwnd = %v, did not grow", snd.Cwnd())
	}
	if !snd.Established() {
		t.Fatal("handshake failed")
	}
}

func TestLossyTransferRecovers(t *testing.T) {
	eng := sim.NewEngine()
	p := &pipe{eng: eng, rng: sim.NewRNG(7), delay: 10 * time.Millisecond, loss: 0.05}
	done := false
	snd, rcv := connect(eng, p, Config{}, 1<<19, func() { done = true })
	eng.Run(5 * time.Minute)
	if !done {
		t.Fatalf("transfer did not complete: acked=%d rcv=%d", snd.BytesAcked, rcv.BytesReceived)
	}
	if rcv.BytesReceived != 1<<19 {
		t.Fatalf("received %d, want %d", rcv.BytesReceived, 1<<19)
	}
	if snd.FastRetransmits == 0 && snd.Timeouts == 0 {
		t.Fatal("5% loss produced no retransmissions at all")
	}
}

func TestBlackoutCausesTimeoutAndRecovery(t *testing.T) {
	eng := sim.NewEngine()
	p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: 25 * time.Millisecond}
	snd, rcv := connect(eng, p, Config{}, -1, nil)
	// Let it ramp up, then block the path for 3 s (≫ RTO).
	eng.Run(time.Second)
	preCwnd := snd.Cwnd()
	p.blocked = true
	eng.Run(4 * time.Second)
	if snd.Timeouts == 0 {
		t.Fatal("no RTO during 2s blackout")
	}
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd = %v during blackout, want 1", snd.Cwnd())
	}
	if preCwnd <= 1 {
		t.Fatalf("pre-blackout cwnd = %v, expected ramp-up", preCwnd)
	}
	before := rcv.BytesReceived
	p.blocked = false
	eng.Run(9 * time.Second)
	if rcv.BytesReceived <= before {
		t.Fatal("transfer did not resume after blackout")
	}
}

func TestRTOBackoffGrows(t *testing.T) {
	eng := sim.NewEngine()
	p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: 10 * time.Millisecond}
	snd, _ := connect(eng, p, Config{}, -1, nil)
	eng.Run(time.Second)
	base := snd.RTO()
	p.blocked = true
	eng.Run(20 * time.Second)
	if snd.RTO() < 4*base {
		t.Fatalf("rto = %v after long blackout, want exponential backoff beyond %v", snd.RTO(), 4*base)
	}
	if snd.Timeouts < 3 {
		t.Fatalf("timeouts = %d, want >= 3", snd.Timeouts)
	}
}

func TestThroughputTracksPathDelay(t *testing.T) {
	// Throughput over a clean path should be far higher with a short RTT.
	measure := func(delay sim.Time) int64 {
		eng := sim.NewEngine()
		p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: delay}
		_, rcv := connect(eng, p, Config{}, -1, nil)
		eng.Run(5 * time.Second)
		return rcv.BytesReceived
	}
	fast := measure(5 * time.Millisecond)
	slow := measure(200 * time.Millisecond)
	if fast <= slow {
		t.Fatalf("fast path %d <= slow path %d", fast, slow)
	}
}

func TestReceiverOutOfOrder(t *testing.T) {
	eng := sim.NewEngine()
	var acks []uint32
	r := NewReceiver(eng, func(s Segment) { acks = append(acks, s.Ack) }, nil)
	r.Deliver(Segment{Flags: FlagSYN, Seq: 0})
	r.Deliver(Segment{Flags: FlagACK, Seq: 101, Payload: 100}) // out of order
	r.Deliver(Segment{Flags: FlagACK, Seq: 1, Payload: 100})   // fills the gap
	if r.RcvNxt() != 201 {
		t.Fatalf("rcvNxt = %d, want 201", r.RcvNxt())
	}
	if r.BytesReceived != 200 {
		t.Fatalf("bytes = %d, want 200", r.BytesReceived)
	}
	// The out-of-order segment must have generated a duplicate ACK of 1.
	if acks[1] != 1 {
		t.Fatalf("acks = %v, want dup-ack 1 in position 1", acks)
	}
	if acks[2] != 201 {
		t.Fatalf("acks = %v, want cumulative 201 last", acks)
	}
}

func TestReceiverDuplicates(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReceiver(eng, func(Segment) {}, nil)
	r.Deliver(Segment{Flags: FlagSYN, Seq: 0})
	seg := Segment{Flags: FlagACK, Seq: 1, Payload: 500}
	r.Deliver(seg)
	r.Deliver(seg)
	r.Deliver(seg)
	if r.BytesReceived != 500 {
		t.Fatalf("bytes = %d, want 500 (duplicates ignored)", r.BytesReceived)
	}
	if r.DupSegments != 2 {
		t.Fatalf("dups = %d, want 2", r.DupSegments)
	}
}

func TestReceiverIgnoresDataBeforeSYN(t *testing.T) {
	eng := sim.NewEngine()
	acked := 0
	r := NewReceiver(eng, func(Segment) { acked++ }, nil)
	r.Deliver(Segment{Flags: FlagACK, Seq: 1, Payload: 100})
	if r.BytesReceived != 0 || acked != 0 {
		t.Fatal("receiver consumed data before SYN")
	}
}

func TestSenderStopSilences(t *testing.T) {
	eng := sim.NewEngine()
	sent := 0
	s := NewSender(eng, Config{}, func(Segment) { sent++ }, nil)
	s.Start(-1)
	s.Stop()
	before := sent
	s.Deliver(Segment{Flags: FlagACK, Ack: 1})
	eng.Run(time.Minute)
	if sent != before {
		t.Fatalf("sender transmitted after Stop (%d -> %d)", before, sent)
	}
}

func TestFiniteFlowExactBytes(t *testing.T) {
	// Totals that are not multiples of MSS must still complete exactly.
	for _, total := range []int64{1, 100, 1460, 1461, 14600, 99999} {
		eng := sim.NewEngine()
		p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: time.Millisecond}
		done := false
		_, rcv := connect(eng, p, Config{}, total, func() { done = true })
		eng.Run(time.Minute)
		if !done {
			t.Fatalf("total=%d: not done", total)
		}
		if rcv.BytesReceived != total {
			t.Fatalf("total=%d: received %d", total, rcv.BytesReceived)
		}
	}
}

func TestOnDataCallback(t *testing.T) {
	eng := sim.NewEngine()
	var got int
	r := NewReceiver(eng, func(Segment) {}, func(n int, at sim.Time) { got += n })
	r.Deliver(Segment{Flags: FlagSYN})
	r.Deliver(Segment{Flags: FlagACK, Seq: 1, Payload: 1000})
	if got != 1000 {
		t.Fatalf("onData saw %d bytes, want 1000", got)
	}
}

// Property: under arbitrary loss patterns, the receiver never counts more
// bytes than the sender has sent, and a finite flow that completes delivers
// exactly its size.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		loss := float64(lossPct%50) / 100
		eng := sim.NewEngine()
		p := &pipe{eng: eng, rng: sim.NewRNG(seed), delay: 5 * time.Millisecond, loss: loss}
		const total = 200000
		done := false
		snd, rcv := connect(eng, p, Config{}, total, func() { done = true })
		eng.Run(3 * time.Minute)
		if rcv.BytesReceived > int64(snd.SegmentsSent)*int64(DefaultConfig().MSS) {
			return false
		}
		if done && rcv.BytesReceived != total {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPerSegmentRTTSampling(t *testing.T) {
	// The estimator must absorb per-segment samples: after a burst of
	// segments with staggered ACK delays, RTO reflects the slow tail, not
	// just the fastest segment.
	eng := sim.NewEngine()
	var snd *Sender
	sent := 0
	snd = NewSender(eng, Config{}, func(seg Segment) {
		if seg.Flags&FlagSYN != 0 {
			eng.Schedule(10*time.Millisecond, func() { snd.Deliver(Segment{Flags: FlagACK, Ack: 1}) })
			return
		}
		sent++
		// Later segments in a burst are acknowledged much later, like a
		// PSM-buffered flush.
		delay := time.Duration(sent) * 150 * time.Millisecond
		end := seg.Seq + uint32(seg.Payload)
		eng.Schedule(delay, func() { snd.Deliver(Segment{Flags: FlagACK, Ack: end}) })
	}, nil)
	snd.Start(-1)
	eng.Run(3 * time.Second)
	if snd.RTO() < 400*time.Millisecond {
		t.Fatalf("RTO = %v after staggered ACKs, want inflated by slow samples", snd.RTO())
	}
	if snd.Timeouts != 0 {
		t.Fatalf("spurious timeouts: %d", snd.Timeouts)
	}
}

func TestSenderAccessors(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSender(eng, Config{}, func(Segment) {}, nil)
	if s.Established() || s.Done() {
		t.Fatal("fresh sender claims progress")
	}
	if s.Cwnd() != DefaultConfig().InitCwnd {
		t.Fatalf("initial cwnd = %v", s.Cwnd())
	}
	if s.RTO() != DefaultConfig().InitRTO {
		t.Fatalf("initial rto = %v", s.RTO())
	}
}

func TestPacingCapsThroughput(t *testing.T) {
	// A lossless 1 Mbit/s-paced transfer over a fast pipe must take about
	// payload/rate, not the unpaced few RTTs.
	eng := sim.NewEngine()
	p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: time.Millisecond}
	doneAt := sim.Time(-1)
	const total = 1 << 20 // 1 MiB
	snd, _ := connect(eng, p, Config{}, total, func() { doneAt = eng.Now() })
	snd.SetPaceBps(1e6)
	eng.Run(time.Minute)
	if !snd.Done() {
		t.Fatal("paced transfer did not complete")
	}
	want := sim.Time(float64(total) * 8 / 1e6 * 1e9) // ~8.4 s
	if doneAt < want {
		t.Fatalf("finished at %v, faster than the %v pace allows", doneAt, want)
	}
	if doneAt > want+want/4 {
		t.Fatalf("finished at %v, far slower than the %v pace", doneAt, want)
	}
}

func TestPacingClearedMidFlow(t *testing.T) {
	// Removing the cap mid-flow must let the sender revert to window-limited
	// behaviour and finish quickly.
	eng := sim.NewEngine()
	p := &pipe{eng: eng, rng: sim.NewRNG(1), delay: time.Millisecond}
	doneAt := sim.Time(-1)
	const total = 1 << 20
	snd, _ := connect(eng, p, Config{}, total, func() { doneAt = eng.Now() })
	snd.SetPaceBps(1e5) // would take ~84 s alone
	eng.Schedule(time.Second, func() { snd.SetPaceBps(0) })
	eng.Run(time.Minute)
	if !snd.Done() {
		t.Fatal("transfer did not complete after the cap was lifted")
	}
	if doneAt > sim.Time(5*time.Second) {
		t.Fatalf("finished at %v; cap removal did not take effect", doneAt)
	}
}

func TestPacingSetterSchedulesNothing(t *testing.T) {
	// The allocator re-paces idle senders in bulk; the setter must not
	// perturb the event timeline.
	eng := sim.NewEngine()
	snd := NewSender(eng, Config{}, func(Segment) {}, nil)
	snd.SetPaceBps(5e6)
	snd.SetPaceBps(1e6)
	snd.SetPaceBps(0)
	if n := eng.Pending(); n != 0 {
		t.Fatalf("SetPaceBps scheduled %d events", n)
	}
}
