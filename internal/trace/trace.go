// Package trace synthesizes the mesh-user workload of Section 4.7. The
// paper instrumented a 25-node downtown mesh for a day (161 users, 128,587
// TCP connections) and compared users' flow durations and inter-connection
// gaps against what Spider sustains. The raw trace is not public, so this
// package generates a workload whose distributions match the published
// CDFs: heavy-tailed flow durations mostly under 10 s, and inter-connection
// gaps mostly under a minute.
package trace

import (
	"math"

	"spider/internal/sim"
)

// MeshConfig parameterizes the synthetic mesh-user trace.
type MeshConfig struct {
	// Users is the number of distinct wireless users (paper: 161).
	Users int
	// Flows is the total TCP connection count (paper: 128,587).
	Flows int
	// DurMedian and DurSigma shape the lognormal flow-duration
	// distribution (median ≈ 2 s with a heavy tail in the paper's CDF).
	DurMedian float64 // seconds
	DurSigma  float64
	// GapMedian and GapSigma shape the lognormal inter-connection gaps
	// (median ≈ 10 s, tail to several minutes).
	GapMedian float64 // seconds
	GapSigma  float64
	// MaxDuration and MaxGap truncate the tails, as a one-day capture
	// necessarily does.
	MaxDuration float64
	MaxGap      float64
}

// DefaultMeshConfig matches the published study's scale and CDF shapes.
func DefaultMeshConfig() MeshConfig {
	return MeshConfig{
		Users:       161,
		Flows:       128587,
		DurMedian:   2.0,
		DurSigma:    1.4,
		GapMedian:   10.0,
		GapSigma:    1.3,
		MaxDuration: 600,
		MaxGap:      600,
	}
}

// MeshTrace is the synthesized workload.
type MeshTrace struct {
	// FlowDurations holds every TCP connection's duration in seconds
	// (Figure 16's user series).
	FlowDurations []float64
	// InterConnectionGaps holds the idle time between a user's
	// consecutive connections in seconds (Figure 17's user series).
	InterConnectionGaps []float64
}

// Synthesize generates the trace deterministically from rng.
func Synthesize(rng *sim.RNG, cfg MeshConfig) MeshTrace {
	if cfg.Users <= 0 || cfg.Flows <= 0 {
		panic("trace: Synthesize needs users and flows")
	}
	// One gap per flow beyond each user's first; with fewer flows than
	// users no gaps exist, so the capacity clamps to zero rather than
	// passing a negative value to make (which panics).
	gapCap := cfg.Flows - cfg.Users
	if gapCap < 0 {
		gapCap = 0
	}
	t := MeshTrace{
		FlowDurations:       make([]float64, 0, cfg.Flows),
		InterConnectionGaps: make([]float64, 0, gapCap),
	}
	perUser := cfg.Flows / cfg.Users
	extra := cfg.Flows % cfg.Users
	for u := 0; u < cfg.Users; u++ {
		n := perUser
		if u < extra {
			n++
		}
		for f := 0; f < n; f++ {
			d := lognormal(rng, cfg.DurMedian, cfg.DurSigma)
			if d > cfg.MaxDuration {
				d = cfg.MaxDuration
			}
			t.FlowDurations = append(t.FlowDurations, d)
			if f > 0 {
				g := lognormal(rng, cfg.GapMedian, cfg.GapSigma)
				if g > cfg.MaxGap {
					g = cfg.MaxGap
				}
				t.InterConnectionGaps = append(t.InterConnectionGaps, g)
			}
		}
	}
	return t
}

// lognormal samples exp(N(ln(median), sigma²)).
func lognormal(rng *sim.RNG, median, sigma float64) float64 {
	return math.Exp(math.Log(median) + sigma*rng.NormFloat64())
}

// FlowSize samples a flow size in bytes for web-like traffic: a lognormal
// body (median ≈ 20 KiB) with occasional large downloads, matching the 68%
// HTTP mix the study observed. Used by the example applications.
func FlowSize(rng *sim.RNG) int64 {
	sz := math.Exp(math.Log(20*1024) + 1.8*rng.NormFloat64())
	if sz < 200 {
		sz = 200
	}
	if sz > 64<<20 {
		sz = 64 << 20
	}
	return int64(sz)
}
