package trace

import (
	"testing"

	"spider/internal/sim"
	"spider/internal/stats"
)

func TestSynthesizeCounts(t *testing.T) {
	cfg := DefaultMeshConfig()
	tr := Synthesize(sim.NewRNG(1), cfg)
	if len(tr.FlowDurations) != cfg.Flows {
		t.Fatalf("flows = %d, want %d", len(tr.FlowDurations), cfg.Flows)
	}
	if want := cfg.Flows - cfg.Users; len(tr.InterConnectionGaps) != want {
		t.Fatalf("gaps = %d, want %d", len(tr.InterConnectionGaps), want)
	}
}

func TestSynthesizeDistributionShape(t *testing.T) {
	cfg := DefaultMeshConfig()
	cfg.Flows = 20000
	tr := Synthesize(sim.NewRNG(2), cfg)
	durs := stats.NewCDF(tr.FlowDurations)
	// Median near the configured 2 s; most flows short, some long.
	if m := durs.Quantile(0.5); m < 1 || m > 4 {
		t.Fatalf("flow duration median = %v, want ≈2", m)
	}
	if p10 := durs.P(10); p10 < 0.75 {
		t.Fatalf("P(duration ≤ 10 s) = %v, want most flows short", p10)
	}
	if p90 := durs.Quantile(0.9); p90 < 8 {
		t.Fatalf("q90 = %v, want a tail", p90)
	}
	gaps := stats.NewCDF(tr.InterConnectionGaps)
	if m := gaps.Quantile(0.5); m < 5 || m > 20 {
		t.Fatalf("gap median = %v, want ≈10", m)
	}
	// Truncation holds.
	if durs.Quantile(1) > cfg.MaxDuration || gaps.Quantile(1) > cfg.MaxGap {
		t.Fatal("truncation violated")
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	cfg := DefaultMeshConfig()
	cfg.Flows = 1000
	a := Synthesize(sim.NewRNG(7), cfg)
	b := Synthesize(sim.NewRNG(7), cfg)
	for i := range a.FlowDurations {
		if a.FlowDurations[i] != b.FlowDurations[i] {
			t.Fatal("non-deterministic trace")
		}
	}
}

// TestSynthesizeFewerFlowsThanUsers is the regression test for the
// negative-capacity panic: with 0 < Flows < Users, the gap slice
// capacity used to go negative. Sparse populations are legitimate (each
// user gets 0 or 1 flows, so no inter-connection gaps exist).
func TestSynthesizeFewerFlowsThanUsers(t *testing.T) {
	for _, tc := range []struct{ users, flows int }{
		{161, 1},
		{161, 160},
		{10, 3},
		{2, 1},
		{1, 1},
	} {
		cfg := DefaultMeshConfig()
		cfg.Users = tc.users
		cfg.Flows = tc.flows
		tr := Synthesize(sim.NewRNG(5), cfg)
		if len(tr.FlowDurations) != tc.flows {
			t.Fatalf("users=%d flows=%d: got %d durations", tc.users, tc.flows, len(tr.FlowDurations))
		}
		if len(tr.InterConnectionGaps) != 0 {
			t.Fatalf("users=%d flows=%d: got %d gaps, want 0 (no user has two flows)",
				tc.users, tc.flows, len(tr.InterConnectionGaps))
		}
	}
	// Just past the boundary: one user gets a second flow, one gap.
	cfg := DefaultMeshConfig()
	cfg.Users = 10
	cfg.Flows = 11
	if tr := Synthesize(sim.NewRNG(5), cfg); len(tr.InterConnectionGaps) != 1 {
		t.Fatalf("flows=users+1: got %d gaps, want 1", len(tr.InterConnectionGaps))
	}
}

func TestSynthesizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero users did not panic")
		}
	}()
	Synthesize(sim.NewRNG(1), MeshConfig{})
}

func TestFlowSize(t *testing.T) {
	rng := sim.NewRNG(3)
	var sizes []float64
	for i := 0; i < 5000; i++ {
		s := FlowSize(rng)
		if s < 200 || s > 64<<20 {
			t.Fatalf("size %d out of bounds", s)
		}
		sizes = append(sizes, float64(s))
	}
	c := stats.NewCDF(sizes)
	if m := c.Quantile(0.5); m < 5*1024 || m > 80*1024 {
		t.Fatalf("median flow size = %v, want ≈20KiB", m)
	}
}
