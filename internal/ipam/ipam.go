// Package ipam is the address-management subsystem behind every simulated
// DHCP server: named pools carved from CIDR subnets, pool hierarchies
// shared by many APs on one backhaul segment, ordered backup-pool
// failover when a primary exhausts, per-AP reserved ranges, and
// deterministic sim-time lease expiry ("GC") that reclaims the addresses
// of vanished vehicles.
//
// The paper's join-latency model makes DHCP a first-class failure mode,
// and city-scale scenarios put thousands of short-lived clients through
// small residential pools; this package is what lets those scenarios
// distinguish "the radio lost the race" from "the address plane ran dry"
// (the `ipam-exhausted` outage cause).
//
// Determinism contract: allocation order is a pure function of the call
// sequence — lowest-free-first within a pool, released addresses reused
// LIFO, pools tried in declared failover order, expired leases reclaimed
// in ascending address order. Nothing here draws randomness, reads wall
// clock, or iterates a map in observable order, so a scenario's address
// assignments are byte-identical across repeats and fleet worker counts.
package ipam

import (
	"errors"
	"fmt"

	"spider/internal/ipnet"
	"spider/internal/obs"
	"spider/internal/sim"
)

// Event kinds this package emits (aliased for brevity at the call sites).
const (
	kindAlloc    = obs.KindIPAMAlloc
	kindFailover = obs.KindIPAMFailover
	kindGC       = obs.KindIPAMGC
)

// Typed allocation errors. Exhaustion (nothing free anywhere in the
// binding's hierarchy) and conflict (the requested address exists but is
// not available to this client) are different failures: a client should
// retry a conflict with a fresh Discover but back off from exhaustion.
var (
	ErrExhausted = errors.New("ipam: address space exhausted")
	ErrConflict  = errors.New("ipam: address conflict")
	ErrNoGroup   = errors.New("ipam: unknown pool group")
)

// PoolSpec declares one named pool. Addresses come either from a CIDR
// block (network, broadcast, and any excluded addresses — gateways — are
// never handed out) or from an explicit address list (how a legacy
// PoolBase/PoolSize server carves its range).
type PoolSpec struct {
	Name string
	// CIDR is the block to carve host addresses from (when valid).
	CIDR ipnet.Prefix
	// Exclude lists addresses inside CIDR that must never be allocated.
	Exclude []ipnet.Addr
	// Addrs is the explicit allocatable set (used when CIDR is not set);
	// order is preserved as the allocation order.
	Addrs []ipnet.Addr
}

// GroupSpec names an ordered pool hierarchy: Pools[0] is the primary,
// the rest are backups tried in order when everything before them is
// exhausted. Every AP on one backhaul segment binds to the same group
// and therefore shares its address space.
type GroupSpec struct {
	Name  string
	Pools []string
}

// Config declares a manager's pools and hierarchies.
type Config struct {
	Pools  []PoolSpec
	Groups []GroupSpec
	// DefaultGroup is the group used when Bind is called with an empty
	// group name (defaults to the first declared group).
	DefaultGroup string
	// ReservePerAP carves this many addresses off the top of the primary
	// pool as each binding's exclusive reserve: a guarantee that one AP's
	// burst cannot starve a neighbour completely.
	ReservePerAP int
}

// Stats is a snapshot of the manager's allocation counters.
type Stats struct {
	Allocs    int64 // successful allocations (fresh addresses)
	Failovers int64 // allocations served by a non-primary pool
	Reclaimed int64 // leases reclaimed by the expiry sweep
	Exhausted int64 // allocation attempts refused: nothing free
	Conflicts int64 // requested-address validations refused
}

// PoolStatus reports one pool's occupancy.
type PoolStatus struct {
	Name     string
	Capacity int
	InUse    int
}

// Manager owns the pools and hands out per-AP bindings. All methods are
// called from a single simulation goroutine, like the rest of the stack.
type Manager struct {
	pools     map[string]*pool
	order     []string
	groups    map[string][]string
	groupDef  string
	reserve   int
	numBound  int
	st        Stats
	log       *obs.ClientLog
	cAllocs   *obs.Counter
	cFailover *obs.Counter
	cReclaim  *obs.Counter
	cExhaust  *obs.Counter
	cConflict *obs.Counter
	gReclaim  *obs.Gauge
	util      map[string]*obs.Gauge
}

// New validates the config and builds the manager. Pool CIDRs must not
// overlap, group members must exist, and every pool needs at least one
// allocatable address.
func New(cfg Config) (*Manager, error) {
	if len(cfg.Pools) == 0 {
		return nil, errors.New("ipam: config declares no pools")
	}
	m := &Manager{
		pools:   make(map[string]*pool, len(cfg.Pools)),
		groups:  make(map[string][]string, len(cfg.Groups)),
		reserve: cfg.ReservePerAP,
		util:    make(map[string]*obs.Gauge),
	}
	var cidrs []ipnet.Prefix
	for _, ps := range cfg.Pools {
		if ps.Name == "" {
			return nil, errors.New("ipam: pool with empty name")
		}
		if _, dup := m.pools[ps.Name]; dup {
			return nil, fmt.Errorf("ipam: duplicate pool %q", ps.Name)
		}
		var addrs []ipnet.Addr
		switch {
		case ps.CIDR.IsValid():
			for _, c := range cidrs {
				if c.Overlaps(ps.CIDR) {
					return nil, fmt.Errorf("ipam: pool %q CIDR %s overlaps %s", ps.Name, ps.CIDR, c)
				}
			}
			cidrs = append(cidrs, ps.CIDR)
			addrs = ps.CIDR.Hosts(ps.Exclude...)
		case len(ps.Addrs) > 0:
			addrs = append([]ipnet.Addr(nil), ps.Addrs...)
		default:
			return nil, fmt.Errorf("ipam: pool %q has neither CIDR nor Addrs", ps.Name)
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("ipam: pool %q has no allocatable addresses", ps.Name)
		}
		m.pools[ps.Name] = newPool(ps.Name, addrs)
		m.order = append(m.order, ps.Name)
	}
	for _, gs := range cfg.Groups {
		if gs.Name == "" {
			return nil, errors.New("ipam: group with empty name")
		}
		if _, dup := m.groups[gs.Name]; dup {
			return nil, fmt.Errorf("ipam: duplicate group %q", gs.Name)
		}
		if len(gs.Pools) == 0 {
			return nil, fmt.Errorf("ipam: group %q has no pools", gs.Name)
		}
		for _, pn := range gs.Pools {
			if _, ok := m.pools[pn]; !ok {
				return nil, fmt.Errorf("ipam: group %q references unknown pool %q", gs.Name, pn)
			}
		}
		m.groups[gs.Name] = append([]string(nil), gs.Pools...)
		if m.groupDef == "" {
			m.groupDef = gs.Name
		}
	}
	if len(m.groups) == 0 {
		return nil, errors.New("ipam: config declares no groups")
	}
	if cfg.DefaultGroup != "" {
		if _, ok := m.groups[cfg.DefaultGroup]; !ok {
			return nil, fmt.Errorf("ipam: default group %q not declared", cfg.DefaultGroup)
		}
		m.groupDef = cfg.DefaultGroup
	}
	return m, nil
}

// MustNew is New for literal configs; it panics on error.
func MustNew(cfg Config) *Manager {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// SetObs attaches the world event log and metrics registry. Nil values
// disable the corresponding output (every sink here is nil-safe).
func (m *Manager) SetObs(log *obs.ClientLog, reg *obs.Registry) {
	m.log = log
	m.cAllocs = reg.Counter("ipam.allocs")
	m.cFailover = reg.Counter("ipam.failovers")
	m.cReclaim = reg.Counter("ipam.reclaimed")
	m.cExhaust = reg.Counter("ipam.exhausted")
	m.cConflict = reg.Counter("ipam.conflicts")
	m.gReclaim = reg.Gauge("ipam.leases.reclaimed")
	for _, name := range m.order {
		m.util[name] = reg.Gauge("ipam.pool." + name + ".used")
		m.util[name].Set(int64(m.pools[name].inUse()))
	}
}

// Bind attaches one AP to a pool group and returns its allocation handle.
// The binding's name labels its obs events (core uses the AP's BSSID).
// With ReservePerAP > 0, Bind carves that many addresses off the top of
// the group's primary pool as this binding's exclusive reserve; bindings
// are created in deterministic (site) order, so the carve is too.
func (m *Manager) Bind(name, group string) (*Binding, error) {
	if group == "" {
		group = m.groupDef
	}
	poolNames, ok := m.groups[group]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoGroup, group)
	}
	b := &Binding{m: m, name: name, group: group}
	for _, pn := range poolNames {
		b.pools = append(b.pools, m.pools[pn])
	}
	if m.reserve > 0 {
		carved, err := b.pools[0].carve(m.reserve)
		if err != nil {
			return nil, fmt.Errorf("ipam: binding %q: %w", name, err)
		}
		b.reserve = newPool(b.pools[0].name+"/reserved", carved)
	}
	m.numBound++
	return b, nil
}

// Stats returns a snapshot of the allocation counters.
func (m *Manager) Stats() Stats { return m.st }

// Status reports every pool's occupancy in declaration order. Bindings'
// reserved carves are not listed separately; their addresses simply no
// longer count toward the parent pool's capacity.
func (m *Manager) Status() []PoolStatus {
	out := make([]PoolStatus, 0, len(m.order))
	for _, name := range m.order {
		p := m.pools[name]
		out = append(out, PoolStatus{Name: name, Capacity: p.capacity(), InUse: p.inUse()})
	}
	return out
}

// setUtil refreshes a pool's utilization gauge (nil-safe when no registry
// is attached; reserve carves have no gauge of their own).
func (m *Manager) setUtil(p *pool) {
	if g, ok := m.util[p.name]; ok {
		g.Set(int64(p.inUse()))
	}
}

// emit records one ipam event on the world log (no-op when recording is
// off). The BSSID column carries the binding name so timelines join
// against per-client events; Note carries the pool involved.
func (m *Manager) emit(at sim.Time, kind obs.Kind, binding, pool string, value int64) {
	if m.log == nil {
		return
	}
	m.log.Emit(obs.Event{At: at, Kind: kind, BSSID: binding, Note: pool, Value: value})
}

// Solo builds a standalone single-pool binding covering base+1 ..
// base+size — the address range a legacy PoolBase/PoolSize DHCP server
// hands out. It is how a dhcp.Server constructed without an explicit
// binding gets ipam semantics with byte-identical allocation order.
func Solo(name string, base ipnet.Addr, size int) *Binding {
	addrs := make([]ipnet.Addr, size)
	for i := range addrs {
		addrs[i] = base + ipnet.Addr(i+1)
	}
	m := MustNew(Config{
		Pools:  []PoolSpec{{Name: name, Addrs: addrs}},
		Groups: []GroupSpec{{Name: name, Pools: []string{name}}},
	})
	b, err := m.Bind(name, name)
	if err != nil {
		panic(err)
	}
	return b
}
