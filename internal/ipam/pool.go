package ipam

import (
	"fmt"

	"spider/internal/dot11"
	"spider/internal/ipnet"
)

// pool is one named allocation space. Allocation order is deterministic:
// released addresses reuse LIFO, otherwise the lowest untouched address
// goes next — the exact order the legacy DHCP server used, so swapping
// ipam in changes no existing scenario's assignments.
//
// claim (requested-address validation) can take any member address, which
// is why both the free list and the untouched tail re-check the used map:
// a claimed address may still sit in either structure and is simply
// skipped when allocation reaches it.
type pool struct {
	name   string
	addrs  []ipnet.Addr // allocation order (ascending for CIDR carves)
	member map[ipnet.Addr]bool
	next   int          // low-water index into addrs
	free   []ipnet.Addr // released addresses, reused LIFO
	used   map[ipnet.Addr]dot11.MACAddr
}

func newPool(name string, addrs []ipnet.Addr) *pool {
	p := &pool{
		name:   name,
		addrs:  addrs,
		member: make(map[ipnet.Addr]bool, len(addrs)),
		used:   make(map[ipnet.Addr]dot11.MACAddr),
	}
	for _, a := range addrs {
		p.member[a] = true
	}
	return p
}

func (p *pool) capacity() int { return len(p.addrs) }
func (p *pool) inUse() int    { return len(p.used) }
func (p *pool) full() bool    { return len(p.used) >= len(p.addrs) }

// alloc hands out the next address to mac: the free list first (LIFO),
// then the untouched tail lowest-first. Entries claimed out of order are
// skipped.
func (p *pool) alloc(mac dot11.MACAddr) (ipnet.Addr, bool) {
	for n := len(p.free); n > 0; n = len(p.free) {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		if _, taken := p.used[a]; taken {
			continue
		}
		p.used[a] = mac
		return a, true
	}
	for p.next < len(p.addrs) {
		a := p.addrs[p.next]
		p.next++
		if _, taken := p.used[a]; taken {
			continue
		}
		p.used[a] = mac
		return a, true
	}
	return ipnet.Unspecified, false
}

// claim takes one specific member address for mac (requested-address
// validation). False when the address is outside the pool or held.
func (p *pool) claim(a ipnet.Addr, mac dot11.MACAddr) bool {
	if !p.member[a] {
		return false
	}
	if _, taken := p.used[a]; taken {
		return false
	}
	p.used[a] = mac
	return true
}

// holder reports who currently holds a member address.
func (p *pool) holder(a ipnet.Addr) (dot11.MACAddr, bool) {
	mac, ok := p.used[a]
	return mac, ok
}

// release returns an address to the free list. When the pool empties out
// completely, allocation state rewinds to the virgin order — so an AP
// that power-cycles an exclusive pool hands out base+1 first again,
// exactly like the legacy server's Reset.
func (p *pool) release(a ipnet.Addr) {
	if _, ok := p.used[a]; !ok {
		return
	}
	delete(p.used, a)
	p.free = append(p.free, a)
	if len(p.used) == 0 {
		p.next = 0
		p.free = p.free[:0]
	}
}

// carve removes n addresses from the top of the untouched tail and
// returns them (ascending) — the per-AP reserved-range mechanism. Only
// legal before any allocation has consumed the tail region being carved.
func (p *pool) carve(n int) ([]ipnet.Addr, error) {
	if n <= 0 {
		return nil, nil
	}
	if len(p.addrs)-p.next < n {
		return nil, fmt.Errorf("pool %q: cannot reserve %d addresses (%d uncommitted)",
			p.name, n, len(p.addrs)-p.next)
	}
	cut := len(p.addrs) - n
	carved := append([]ipnet.Addr(nil), p.addrs[cut:]...)
	for _, a := range carved {
		if _, taken := p.used[a]; taken {
			return nil, fmt.Errorf("pool %q: reserve address %s already allocated", p.name, a)
		}
		delete(p.member, a)
	}
	p.addrs = p.addrs[:cut]
	return carved, nil
}
