package ipam

import (
	"bytes"
	"sort"

	"spider/internal/dot11"
	"spider/internal/ipnet"
	"spider/internal/sim"
)

// Lease is one MAC's hold on an address within a binding. Expiry is the
// sim time the lease becomes reclaimable (0 = never); renewals refresh
// it, so only vehicles that vanished mid-lease are ever swept.
type Lease struct {
	Addr   ipnet.Addr
	MAC    dot11.MACAddr
	Pool   string
	Expiry sim.Time

	p *pool
}

// Binding is one AP's view of its pool hierarchy: the group's pools in
// failover order, an optional exclusive reserve, and the AP's own lease
// table. Leases are per-binding — one vehicle legitimately holds a lease
// at several APs at once (Spider's whole point) — while address
// availability is per-pool, shared across every binding of the group.
type Binding struct {
	m       *Manager
	name    string
	group   string
	pools   []*pool
	reserve *pool
	leases  map[dot11.MACAddr]*Lease
}

// Name returns the binding's label (the AP's BSSID in core scenarios).
func (b *Binding) Name() string { return b.name }

// Group returns the pool-group name the binding allocates from.
func (b *Binding) Group() string { return b.group }

// LeaseCount returns the number of live leases held through this binding.
func (b *Binding) LeaseCount() int { return len(b.leases) }

// Holds reports whether mac currently holds exactly addr here.
func (b *Binding) Holds(mac dot11.MACAddr, addr ipnet.Addr) bool {
	l, ok := b.leases[mac]
	return ok && l.Addr == addr
}

// HasLease reports whether mac holds any lease here.
func (b *Binding) HasLease(mac dot11.MACAddr) bool {
	_, ok := b.leases[mac]
	return ok
}

// Full reports whether a fresh allocation would fail right now: every
// pool of the hierarchy and the reserve are completely in use. This is
// the signal outage attribution reads to name `ipam-exhausted`.
func (b *Binding) Full() bool {
	for _, p := range b.pools {
		if !p.full() {
			return false
		}
	}
	return b.reserve == nil || b.reserve.full()
}

// expiry computes a lease deadline (0 when ttl is non-positive: never).
func expiry(now, ttl sim.Time) sim.Time {
	if ttl <= 0 {
		return 0
	}
	return now + ttl
}

// Allocate returns mac's stable address, allocating one on first contact:
// the primary pool first, then each backup in declared order, then the
// binding's exclusive reserve. An existing lease just refreshes its
// expiry — renewal is what keeps a vehicle's address off the GC sweep.
func (b *Binding) Allocate(now sim.Time, mac dot11.MACAddr, ttl sim.Time) (ipnet.Addr, error) {
	if l, ok := b.leases[mac]; ok {
		l.Expiry = expiry(now, ttl)
		return l.Addr, nil
	}
	tries := b.pools
	if b.reserve != nil {
		tries = append(append([]*pool(nil), b.pools...), b.reserve)
	}
	for i, p := range tries {
		a, ok := p.alloc(mac)
		if !ok {
			continue
		}
		b.record(now, mac, a, p, ttl)
		if i > 0 {
			b.m.st.Failovers++
			b.m.cFailover.Inc()
			b.m.emit(now, kindFailover, b.name, p.name, int64(a))
		}
		return a, nil
	}
	b.m.st.Exhausted++
	b.m.cExhaust.Inc()
	return ipnet.Unspecified, ErrExhausted
}

// AllocateSpecific validates a requested address against the live pools —
// the INIT-REBOOT / renewal path. The request succeeds when mac already
// holds exactly that address here, or when the address belongs to one of
// the binding's pools and is free to claim. Anything else is ErrConflict:
// the lease was reclaimed and re-issued, the address belongs to another
// hierarchy, or the client's cache is stale — and the server must NAK
// rather than silently double-allocate.
func (b *Binding) AllocateSpecific(now sim.Time, mac dot11.MACAddr, want ipnet.Addr, ttl sim.Time) (ipnet.Addr, error) {
	if l, ok := b.leases[mac]; ok {
		if l.Addr == want {
			l.Expiry = expiry(now, ttl)
			return l.Addr, nil
		}
		b.m.st.Conflicts++
		b.m.cConflict.Inc()
		return ipnet.Unspecified, ErrConflict
	}
	tries := b.pools
	if b.reserve != nil {
		tries = append(append([]*pool(nil), b.pools...), b.reserve)
	}
	for _, p := range tries {
		if !p.member[want] {
			continue
		}
		if p.claim(want, mac) {
			b.record(now, mac, want, p, ttl)
			return want, nil
		}
		break // in this pool but held by someone else
	}
	b.m.st.Conflicts++
	b.m.cConflict.Inc()
	return ipnet.Unspecified, ErrConflict
}

// record registers a fresh lease and emits the alloc event.
func (b *Binding) record(now sim.Time, mac dot11.MACAddr, a ipnet.Addr, p *pool, ttl sim.Time) {
	if b.leases == nil {
		b.leases = make(map[dot11.MACAddr]*Lease)
	}
	b.leases[mac] = &Lease{Addr: a, MAC: mac, Pool: p.name, Expiry: expiry(now, ttl), p: p}
	b.m.st.Allocs++
	b.m.cAllocs.Inc()
	b.m.setUtil(p)
	b.m.emit(now, kindAlloc, b.name, p.name, int64(a))
}

// Release returns mac's lease (if any) to its pool.
func (b *Binding) Release(mac dot11.MACAddr) {
	l, ok := b.leases[mac]
	if !ok {
		return
	}
	delete(b.leases, mac)
	l.p.release(l.Addr)
	b.m.setUtil(l.p)
}

// Reset drops every lease this binding holds — an AP power cycle. Leases
// release in ascending address order so shared-pool free lists rebuild
// identically on every run; pools that empty out entirely (the exclusive
// per-AP case) rewind to virgin allocation order, matching the legacy
// server's Reset byte for byte.
func (b *Binding) Reset() {
	for _, l := range b.sortedLeases() {
		delete(b.leases, l.MAC)
		l.p.release(l.Addr)
		b.m.setUtil(l.p)
	}
	if b.reserve != nil && b.reserve.inUse() == 0 {
		b.reserve.next = 0
		b.reserve.free = b.reserve.free[:0]
	}
}

// SweepExpired reclaims every lease whose expiry has passed, in ascending
// address order, and returns the reclaimed leases. One ipam.gc event is
// emitted per pool touched (Value = reclaim count), and the reclaim
// counters/gauge advance — this is the vanished-vehicle GC.
func (b *Binding) SweepExpired(now sim.Time) []Lease {
	var out []Lease
	for _, l := range b.sortedLeases() {
		if l.Expiry <= 0 || l.Expiry > now {
			continue
		}
		delete(b.leases, l.MAC)
		l.p.release(l.Addr)
		b.m.setUtil(l.p)
		out = append(out, *l)
	}
	if len(out) == 0 {
		return nil
	}
	b.m.st.Reclaimed += int64(len(out))
	b.m.cReclaim.Add(int64(len(out)))
	b.m.gReclaim.Set(b.m.st.Reclaimed)
	// Per-pool gc events in hierarchy order (reserve last).
	perPool := make(map[string]int64, 2)
	for _, l := range out {
		perPool[l.Pool]++
	}
	for _, p := range b.poolOrder() {
		if n := perPool[p.name]; n > 0 {
			b.m.emit(now, kindGC, b.name, p.name, n)
		}
	}
	return out
}

// NextExpiry returns the earliest pending lease deadline (0 when no lease
// expires) — what lets a DHCP server schedule exactly one sweep event
// instead of polling.
func (b *Binding) NextExpiry() sim.Time {
	var min sim.Time
	for _, l := range b.leases {
		if l.Expiry <= 0 {
			continue
		}
		if min == 0 || l.Expiry < min {
			min = l.Expiry
		}
	}
	return min
}

// poolOrder returns the hierarchy with the reserve appended.
func (b *Binding) poolOrder() []*pool {
	if b.reserve == nil {
		return b.pools
	}
	return append(append([]*pool(nil), b.pools...), b.reserve)
}

// sortedLeases returns the lease set in ascending address order — the
// deterministic iteration order for sweeps and resets.
func (b *Binding) sortedLeases() []*Lease {
	out := make([]*Lease, 0, len(b.leases))
	for _, l := range b.leases {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return bytes.Compare(out[i].MAC[:], out[j].MAC[:]) < 0
	})
	return out
}
