package ipam

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"spider/internal/dot11"
	"spider/internal/ipnet"
	"spider/internal/obs"
	"spider/internal/sim"
)

func addr4(a, b, c, d byte) ipnet.Addr { return ipnet.AddrFrom4(a, b, c, d) }

// TestSoloMatchesLegacyOrder: a standalone binding hands out base+1,
// base+2, ... stable per MAC — byte-identical to the legacy
// PoolBase/PoolSize server carve it replaces.
func TestSoloMatchesLegacyOrder(t *testing.T) {
	base := addr4(10, 0, 0, 1)
	b := Solo("gw", base, 3)
	for i := 1; i <= 3; i++ {
		a, err := b.Allocate(0, dot11.MAC(uint32(i)), 0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if want := base + ipnet.Addr(i); a != want {
			t.Fatalf("alloc %d = %s, want %s", i, a, want)
		}
	}
	// Re-allocating for a known MAC returns its existing address.
	if a, err := b.Allocate(0, dot11.MAC(2), 0); err != nil || a != base+2 {
		t.Fatalf("repeat alloc = %s, %v; want %s", a, err, base+2)
	}
	// A fourth client finds nothing: typed exhaustion.
	if _, err := b.Allocate(0, dot11.MAC(9), 0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("exhausted pool returned %v, want ErrExhausted", err)
	}
}

// TestCIDRCarving: a CIDR pool never hands out the network base, the
// broadcast address, or an excluded gateway, and allocates ascending.
func TestCIDRCarving(t *testing.T) {
	cidr := ipnet.MustParsePrefix("192.168.5.0/29") // hosts .1-.6
	gw := addr4(192, 168, 5, 1)
	m := MustNew(Config{
		Pools:  []PoolSpec{{Name: "lan", CIDR: cidr, Exclude: []ipnet.Addr{gw}}},
		Groups: []GroupSpec{{Name: "g", Pools: []string{"lan"}}},
	})
	b, err := m.Bind("ap", "")
	if err != nil {
		t.Fatal(err)
	}
	var got []ipnet.Addr
	for i := 0; ; i++ {
		a, err := b.Allocate(0, dot11.MAC(uint32(1+i)), 0)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, a)
	}
	want := []ipnet.Addr{
		addr4(192, 168, 5, 2), addr4(192, 168, 5, 3), addr4(192, 168, 5, 4),
		addr4(192, 168, 5, 5), addr4(192, 168, 5, 6),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CIDR allocation order = %v, want %v", got, want)
	}
}

// twoPoolManager builds a primary/backup hierarchy with two addresses in
// each pool.
func twoPoolManager(t *testing.T, reserve int) *Manager {
	t.Helper()
	return MustNew(Config{
		Pools: []PoolSpec{
			{Name: "primary", Addrs: []ipnet.Addr{addr4(172, 16, 0, 1), addr4(172, 16, 0, 2)}},
			{Name: "backup", Addrs: []ipnet.Addr{addr4(172, 17, 0, 1), addr4(172, 17, 0, 2)}},
		},
		Groups:       []GroupSpec{{Name: "seg", Pools: []string{"primary", "backup"}}},
		ReservePerAP: reserve,
	})
}

// TestFailoverOrder: the backup pool serves only once the primary is dry,
// and each backup-served allocation counts as a failover.
func TestFailoverOrder(t *testing.T) {
	m := twoPoolManager(t, 0)
	b, err := m.Bind("ap", "seg")
	if err != nil {
		t.Fatal(err)
	}
	want := []ipnet.Addr{
		addr4(172, 16, 0, 1), addr4(172, 16, 0, 2), // primary first
		addr4(172, 17, 0, 1), addr4(172, 17, 0, 2), // then backup, in order
	}
	for i, w := range want {
		a, err := b.Allocate(0, dot11.MAC(uint32(1+i)), 0)
		if err != nil || a != w {
			t.Fatalf("alloc %d = %s, %v; want %s", i, a, err, w)
		}
	}
	st := m.Stats()
	if st.Failovers != 2 {
		t.Fatalf("Failovers = %d, want 2", st.Failovers)
	}
	if !b.Full() {
		t.Fatal("binding should report Full with both pools dry")
	}
	if _, err := b.Allocate(0, dot11.MAC(99), 0); !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if m.Stats().Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", m.Stats().Exhausted)
	}
}

// TestReservePerAP: each binding's reserved carve comes off the primary's
// untouched tail in bind order, and survives a neighbour's burst.
func TestReservePerAP(t *testing.T) {
	m := twoPoolManager(t, 1)
	a, err := m.Bind("ap-a", "seg")
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Bind("ap-b", "seg")
	if err != nil {
		t.Fatal(err)
	}
	// ap-a carved 172.16.0.2 (the tail), ap-b carved 172.16.0.1: the
	// shared primary is empty, so shared allocations start in the backup.
	burst := []ipnet.Addr{addr4(172, 17, 0, 1), addr4(172, 17, 0, 2)}
	for i, w := range burst {
		got, err := c.Allocate(0, dot11.MAC(uint32(10+i)), 0)
		if err != nil || got != w {
			t.Fatalf("burst alloc %d = %s, %v; want %s", i, got, err, w)
		}
	}
	// ap-b falls back to its own reserve once the shared pools are dry...
	if got, err := c.Allocate(0, dot11.MAC(20), 0); err != nil || got != addr4(172, 16, 0, 1) {
		t.Fatalf("ap-b reserve alloc = %s, %v", got, err)
	}
	if !c.Full() {
		t.Fatal("ap-b should be Full")
	}
	// ...while ap-a, which allocated nothing, still has its guarantee.
	if a.Full() {
		t.Fatal("ap-a must not be Full: its reserve is untouched")
	}
	if got, err := a.Allocate(0, dot11.MAC(30), 0); err != nil || got != addr4(172, 16, 0, 2) {
		t.Fatalf("ap-a reserve alloc = %s, %v", got, err)
	}
}

// TestAllocateSpecificConflicts: the INIT-REBOOT validation path draws the
// exhaustion/conflict distinction the DHCP server's NAKs are built on.
func TestAllocateSpecificConflicts(t *testing.T) {
	m := twoPoolManager(t, 0)
	b, err := m.Bind("ap", "seg")
	if err != nil {
		t.Fatal(err)
	}
	held, err := b.Allocate(0, dot11.MAC(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Someone else's live address: conflict, never a double-allocation.
	if _, err := b.AllocateSpecific(0, dot11.MAC(2), held, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("claiming a held address returned %v, want ErrConflict", err)
	}
	// An address outside every pool of the hierarchy: conflict.
	if _, err := b.AllocateSpecific(0, dot11.MAC(2), addr4(203, 0, 113, 7), 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("claiming a foreign address returned %v, want ErrConflict", err)
	}
	// A free member address is claimable (the cached-lease fast path).
	free := addr4(172, 17, 0, 2)
	if got, err := b.AllocateSpecific(0, dot11.MAC(2), free, 0); err != nil || got != free {
		t.Fatalf("claiming a free address = %s, %v", got, err)
	}
	// The holder itself revalidates without error; a different wanted
	// address while holding one is a conflict.
	if got, err := b.AllocateSpecific(0, dot11.MAC(1), held, 0); err != nil || got != held {
		t.Fatalf("revalidation = %s, %v", got, err)
	}
	if _, err := b.AllocateSpecific(0, dot11.MAC(1), free, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("mismatched revalidation returned %v, want ErrConflict", err)
	}
	if m.Stats().Conflicts != 3 {
		t.Fatalf("Conflicts = %d, want 3", m.Stats().Conflicts)
	}
}

// TestSweepExpired: only unrenewed leases are reclaimed, in ascending
// address order, and the reclaimed addresses become allocatable again.
func TestSweepExpired(t *testing.T) {
	m := twoPoolManager(t, 0)
	b, err := m.Bind("ap", "seg")
	if err != nil {
		t.Fatal(err)
	}
	ttl := sim.Time(10 * time.Second)
	for i := 1; i <= 3; i++ {
		if _, err := b.Allocate(0, dot11.MAC(uint32(i)), ttl); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.NextExpiry(); got != ttl {
		t.Fatalf("NextExpiry = %v, want %v", got, ttl)
	}
	// MAC 2 renews halfway; 1 and 3 vanish.
	half := ttl / 2
	if _, err := b.Allocate(half, dot11.MAC(2), ttl); err != nil {
		t.Fatal(err)
	}
	swept := b.SweepExpired(ttl)
	if len(swept) != 2 {
		t.Fatalf("sweep reclaimed %d leases, want 2", len(swept))
	}
	if swept[0].Addr != addr4(172, 16, 0, 1) || swept[1].Addr != addr4(172, 17, 0, 1) {
		t.Fatalf("sweep order = %v, %v; want ascending addresses", swept[0].Addr, swept[1].Addr)
	}
	if b.LeaseCount() != 1 || !b.HasLease(dot11.MAC(2)) {
		t.Fatal("renewed lease must survive the sweep")
	}
	if got := b.NextExpiry(); got != half+ttl {
		t.Fatalf("NextExpiry after sweep = %v, want %v", got, half+ttl)
	}
	if m.Stats().Reclaimed != 2 {
		t.Fatalf("Reclaimed = %d, want 2", m.Stats().Reclaimed)
	}
	// Reclaimed addresses are allocatable again, primary pool first:
	// failover order outranks free-list recency.
	if got, err := b.Allocate(ttl, dot11.MAC(9), 0); err != nil || got != addr4(172, 16, 0, 1) {
		t.Fatalf("post-sweep alloc = %s, %v", got, err)
	}
}

// TestResetRewindsToVirginOrder: after a full Reset the binding replays
// its original allocation order byte for byte — what keeps AP power
// cycles deterministic.
func TestResetRewindsToVirginOrder(t *testing.T) {
	m := twoPoolManager(t, 1)
	b, err := m.Bind("ap", "seg")
	if err != nil {
		t.Fatal(err)
	}
	sequence := func() []ipnet.Addr {
		var out []ipnet.Addr
		for i := 0; ; i++ {
			a, err := b.Allocate(0, dot11.MAC(uint32(1+i)), 0)
			if err != nil {
				return out
			}
			out = append(out, a)
		}
	}
	first := sequence()
	// Interleave releases to scramble the free lists, then reset.
	b.Release(dot11.MAC(2))
	b.Release(dot11.MAC(1))
	b.Reset()
	if b.LeaseCount() != 0 {
		t.Fatalf("LeaseCount after Reset = %d", b.LeaseCount())
	}
	second := sequence()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("post-reset order %v differs from virgin order %v", second, first)
	}
}

// TestDeterministicReplay: an identical call sequence against two fresh
// managers yields identical addresses at every step — the contract that
// makes scenario address assignment worker-count invariant.
func TestDeterministicReplay(t *testing.T) {
	run := func() []ipnet.Addr {
		m := twoPoolManager(t, 0)
		b, err := m.Bind("ap", "seg")
		if err != nil {
			t.Fatal(err)
		}
		var out []ipnet.Addr
		ttl := sim.Time(time.Second)
		for i := 0; i < 4; i++ {
			a, _ := b.Allocate(sim.Time(i), dot11.MAC(uint32(1+i)), ttl)
			out = append(out, a)
		}
		b.Release(dot11.MAC(3))
		a, _ := b.Allocate(10, dot11.MAC(7), ttl)
		out = append(out, a)
		for _, l := range b.SweepExpired(sim.Time(5 * time.Second)) {
			out = append(out, l.Addr)
		}
		a, _ = b.Allocate(20, dot11.MAC(8), 0)
		out = append(out, a)
		return out
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay diverged: %v vs %v", first, second)
	}
}

// TestObsWiring: counters, per-pool gauges, and the typed event stream
// reflect the allocation lifecycle.
func TestObsWiring(t *testing.T) {
	rec := obs.NewRecorder()
	m := twoPoolManager(t, 0)
	m.SetObs(rec.World(), rec.Metrics())
	b, err := m.Bind("ap", "seg")
	if err != nil {
		t.Fatal(err)
	}
	ttl := sim.Time(time.Second)
	for i := 1; i <= 3; i++ { // third allocation fails over to backup
		if _, err := b.Allocate(0, dot11.MAC(uint32(i)), ttl); err != nil {
			t.Fatal(err)
		}
	}
	b.SweepExpired(2 * ttl)

	reg := rec.Metrics()
	if got := reg.Counter("ipam.allocs").Value(); got != 3 {
		t.Fatalf("ipam.allocs = %d, want 3", got)
	}
	if got := reg.Counter("ipam.failovers").Value(); got != 1 {
		t.Fatalf("ipam.failovers = %d, want 1", got)
	}
	if got := reg.Counter("ipam.reclaimed").Value(); got != 3 {
		t.Fatalf("ipam.reclaimed = %d, want 3", got)
	}
	if got := reg.Gauge("ipam.pool.primary.used").Value(); got != 0 {
		t.Fatalf("primary used gauge = %d after sweep, want 0", got)
	}

	var kinds []obs.Kind
	for _, e := range rec.Events() {
		kinds = append(kinds, e.Kind)
		if e.BSSID != "ap" {
			t.Fatalf("event %v carries binding %q, want ap", e.Kind, e.BSSID)
		}
	}
	want := []obs.Kind{
		obs.KindIPAMAlloc, obs.KindIPAMAlloc, obs.KindIPAMAlloc, obs.KindIPAMFailover,
		obs.KindIPAMGC, obs.KindIPAMGC, // one gc event per touched pool
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
}

// TestConfigValidation: malformed address plans fail construction loudly.
func TestConfigValidation(t *testing.T) {
	pool := PoolSpec{Name: "p", Addrs: []ipnet.Addr{addr4(10, 0, 0, 2)}}
	group := GroupSpec{Name: "g", Pools: []string{"p"}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no pools", Config{Groups: []GroupSpec{group}}},
		{"no groups", Config{Pools: []PoolSpec{pool}}},
		{"empty pool name", Config{Pools: []PoolSpec{{Addrs: pool.Addrs}}, Groups: []GroupSpec{group}}},
		{"duplicate pool", Config{Pools: []PoolSpec{pool, pool}, Groups: []GroupSpec{group}}},
		{"empty pool", Config{Pools: []PoolSpec{{Name: "p"}}, Groups: []GroupSpec{group}}},
		{"overlapping CIDRs", Config{
			Pools: []PoolSpec{
				{Name: "a", CIDR: ipnet.MustParsePrefix("10.0.0.0/24")},
				{Name: "b", CIDR: ipnet.MustParsePrefix("10.0.0.0/25")},
			},
			Groups: []GroupSpec{{Name: "g", Pools: []string{"a", "b"}}},
		}},
		{"unknown group member", Config{Pools: []PoolSpec{pool},
			Groups: []GroupSpec{{Name: "g", Pools: []string{"nope"}}}}},
		{"empty group", Config{Pools: []PoolSpec{pool},
			Groups: []GroupSpec{{Name: "g"}}}},
		{"bad default group", Config{Pools: []PoolSpec{pool},
			Groups: []GroupSpec{group}, DefaultGroup: "nope"}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: New accepted a malformed config", c.name)
		}
	}
	// Binding to an undeclared group is the remaining runtime error.
	m := MustNew(Config{Pools: []PoolSpec{pool}, Groups: []GroupSpec{group}})
	if _, err := m.Bind("ap", "nope"); !errors.Is(err, ErrNoGroup) {
		t.Fatalf("Bind to unknown group returned %v, want ErrNoGroup", err)
	}
	// A reserve bigger than the primary cannot bind.
	m = MustNew(Config{Pools: []PoolSpec{pool}, Groups: []GroupSpec{group}, ReservePerAP: 5})
	if _, err := m.Bind("ap", "g"); err == nil {
		t.Fatal("Bind with oversized reserve carve did not fail")
	}
}
