package core

import (
	"spider/internal/lmm"
	"spider/internal/sim"
	"spider/internal/stripe"
)

// wireStriping installs the striped-download traffic mode: the client
// fetches StripeObjectBytes-sized objects back to back, block-striped
// across every link that is up (the Horde/MAR/PERM integration the paper's
// related-work section anticipates). Completed-object counts and latencies
// land in the Result.
func wireStriping(eng *sim.Engine, objectBytes int64, res *Result, manager *lmm.LMM,
	startFlow func(*lmm.Link, int64, func()) *flow, stopLinkFlows func(*lmm.Link)) {

	links := make(map[int]*lmm.Link) // vif id -> live link
	var ctrl *stripe.Controller
	var objectStart sim.Time

	fetch := func(pathID int, size int64, done func(bool)) {
		l := links[pathID]
		if l == nil || !l.Up() {
			eng.Schedule(0, func() { done(false) })
			return
		}
		// Kill any stale flow left on this link by a superseded fetch.
		stopLinkFlows(l)
		finished := false
		f := startFlow(l, size, func() {
			if !finished {
				finished = true
				done(true)
			}
		})
		if f == nil {
			eng.Schedule(0, func() { done(false) })
		}
	}

	var startObject func()
	startObject = func() {
		objectStart = eng.Now()
		ctrl = stripe.New(eng, objectBytes, stripe.DefaultConfig(), fetch)
		ctrl.OnComplete = func() {
			res.StripeObjects++
			res.StripeObjectSecs = append(res.StripeObjectSecs, (eng.Now() - objectStart).Seconds())
			startObject()
		}
		for id := range links {
			ctrl.AddPath(id)
		}
	}
	startObject()

	manager.OnLinkUp = func(l *lmm.Link) {
		res.LinkUps++
		id := l.VIF.ID()
		links[id] = l
		ctrl.AddPath(id)
	}
	manager.OnLinkDown = func(l *lmm.Link) {
		res.LinkDowns++
		id := l.VIF.ID()
		if links[id] == l {
			delete(links, id)
			ctrl.RemovePath(id)
		}
		// The dying link's flow stops making progress; stop its sender and
		// let the controller reassign the block.
		stopLinkFlows(l)
	}
}
