package core

import (
	"bytes"
	"testing"
	"time"

	"spider/internal/chaos"
	"spider/internal/dot11"
	"spider/internal/obs"
	"spider/internal/sim"
)

// seamWorld builds a two-AP corridor world with a recorder attached —
// small enough to step quickly, busy enough to exercise joins, flows,
// and handoffs.
func seamWorld() (WorldConfig, ClientConfig, time.Duration) {
	sites, model, dur := road(dot11.Channel1, dot11.Channel6)
	wc := WorldConfig{Seed: 77, Duration: dur, Sites: sites, Obs: obs.NewRecorder()}
	cc := ClientConfig{ID: 0, Preset: MultiChannelMultiAP, Mobility: model}
	return wc, cc, dur
}

// exportStreams renders a recorder's canonical artifacts: the event JSONL
// and span JSONL byte streams the bit-identical-resume contract compares.
func exportStreams(t *testing.T, rec *obs.Recorder) ([]byte, []byte) {
	t.Helper()
	var evs, spans bytes.Buffer
	if err := obs.WriteJSONL(&evs, "", rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSpansJSONL(&spans, "", rec.Spans()); err != nil {
		t.Fatal(err)
	}
	return evs.Bytes(), spans.Bytes()
}

// TestSteppedRunMatchesBatchRun is the quantum-subdivision invariant the
// serve loop rests on: driving a scenario in many small StepUntil
// barriers produces event and span streams byte-identical to one
// monolithic Run. Without this, a daemon's checkpoint cadence would leak
// into its artifacts.
func TestSteppedRunMatchesBatchRun(t *testing.T) {
	wc, cc, dur := seamWorld()

	batch := NewScenario(wc)
	batch.AddClient(cc)
	batch.Run()
	batchEvs, batchSpans := exportStreams(t, wc.Obs)

	wc2, cc2, _ := seamWorld()
	stepped := NewScenario(wc2)
	stepped.AddClient(cc2)
	stepped.Start()
	// Uneven quanta on purpose: barriers must be invisible wherever they
	// fall, including ones landing exactly on scheduled event times.
	for now := sim.Time(0); now < dur; {
		q := 700*time.Millisecond + time.Duration(now%3)*350*time.Millisecond
		if now+q > dur {
			q = dur - now
		}
		now = stepped.StepUntil(now + q)
	}
	stepped.Finalize()
	stepEvs, stepSpans := exportStreams(t, wc2.Obs)

	if !bytes.Equal(batchEvs, stepEvs) {
		t.Fatalf("stepped event stream diverged from batch run (batch %d bytes, stepped %d bytes)",
			len(batchEvs), len(stepEvs))
	}
	if !bytes.Equal(batchSpans, stepSpans) {
		t.Fatalf("stepped span stream diverged from batch run (batch %d bytes, stepped %d bytes)",
			len(batchSpans), len(stepSpans))
	}
}

// steppedWithIntents drives one full serve-shaped run: start empty-ish,
// admit a second client mid-run, inject a chaos plan mid-run, toggle
// flows — everything applied at fixed virtual-time barriers, exactly how
// WAL replay re-applies intents.
func steppedWithIntents(t *testing.T) (*obs.Recorder, []Result) {
	t.Helper()
	wc, cc, dur := seamWorld()
	s := NewScenario(wc)
	s.AddClient(cc)
	s.Start()

	_, model, _ := road(dot11.Channel1, dot11.Channel6)
	quantum := 500 * time.Millisecond
	addAt := dur / 4
	injectAt := dur / 2
	stopAt := 3 * dur / 4
	added, injected, stopped := false, false, false
	for now := sim.Time(0); now < dur; {
		now = s.StepUntil(now + quantum)
		if !added && now >= addAt {
			added = true
			if err := s.AddClientNow(ClientConfig{ID: 7, Preset: SingleChannelMultiAP, Mobility: model}); err != nil {
				t.Fatal(err)
			}
		}
		if !injected && now >= injectAt {
			injected = true
			err := s.InjectPlan(chaos.Plan{Name: "mid-run", Events: []chaos.Event{
				{At: now + time.Second, Kind: chaos.APCrash, AP: 0, Duration: 5 * time.Second, Cause: "injected"},
			}})
			if err != nil {
				t.Fatal(err)
			}
		}
		if !stopped && now >= stopAt {
			stopped = true
			if c := s.ClientByID(7); c != nil {
				c.StopFlows()
				c.StartFlows(64 << 10)
			}
		}
	}
	res := s.Finalize()
	return wc.Obs, res
}

// TestMidRunIntentsReplayDeterministically re-runs the same intent script
// at the same virtual times and demands byte-identical event and span
// streams — the property that makes an intent log a sufficient checkpoint.
func TestMidRunIntentsReplayDeterministically(t *testing.T) {
	recA, resA := steppedWithIntents(t)
	recB, resB := steppedWithIntents(t)
	evsA, spansA := exportStreams(t, recA)
	evsB, spansB := exportStreams(t, recB)
	if !bytes.Equal(evsA, evsB) {
		t.Fatalf("replayed intent script diverged: %d vs %d event bytes", len(evsA), len(evsB))
	}
	if !bytes.Equal(spansA, spansB) {
		t.Fatalf("replayed intent script diverged: %d vs %d span bytes", len(spansA), len(spansB))
	}
	if len(resA) != 2 || len(resB) != 2 {
		t.Fatalf("want 2 results (declared + mid-run client), got %d and %d", len(resA), len(resB))
	}
	if resA[1].ClientID != 7 {
		t.Fatalf("mid-run client missing from results: %+v", resA[1].ClientID)
	}
	if resA[0].Chaos.Injected == 0 {
		t.Fatal("mid-run injected plan never fired")
	}
}

// TestAddClientNowValidation covers the error paths the serve API turns
// into rejected intents.
func TestAddClientNowValidation(t *testing.T) {
	wc, cc, _ := seamWorld()
	s := NewScenario(wc)
	s.AddClient(cc)
	if err := s.AddClientNow(cc); err == nil {
		t.Fatal("AddClientNow before Start should fail")
	}
	if err := s.InjectPlan(chaos.Plan{Name: "x"}); err == nil {
		t.Fatal("InjectPlan before Start should fail")
	}
	s.Start()
	if err := s.AddClientNow(cc); err == nil {
		t.Fatal("duplicate client ID should fail")
	}
	if err := s.InjectPlan(chaos.Plan{}); err == nil {
		t.Fatal("empty plan should fail")
	}
	bad := cc
	bad.ID = -1
	if err := s.AddClientNow(bad); err == nil {
		t.Fatal("negative client ID should fail")
	}
}

// TestStartWithZeroClients is the serve boot path: a world that exists
// before any client intent arrives.
func TestStartWithZeroClients(t *testing.T) {
	wc, _, _ := seamWorld()
	s := NewScenario(wc)
	s.Start()
	s.StepUntil(2 * time.Second)
	_, model, _ := road(dot11.Channel1, dot11.Channel6)
	if err := s.AddClientNow(ClientConfig{ID: 3, Preset: SingleChannelMultiAP, Mobility: model}); err != nil {
		t.Fatal(err)
	}
	s.StepUntil(30 * time.Second)
	res := s.Finalize()
	if len(res) != 1 || res[0].ClientID != 3 {
		t.Fatalf("unexpected results: %+v", res)
	}
	if res[0].LinkUps == 0 {
		t.Fatal("intent-admitted client never connected")
	}
}
