package core

import (
	"testing"
	"time"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/mobility"
)

// stripeScenario is a static client inside range of n same-channel APs.
func stripeScenario(n int, objectBytes int64, preset Preset) ScenarioConfig {
	var sites []mobility.APSite
	for i := 0; i < n; i++ {
		sites = append(sites, mobility.APSite{
			Pos:     geo.Point{X: 10 + 3*float64(i), Y: 0},
			Channel: dot11.Channel1, SSID: "str-" + string(rune('a'+i)),
			Open: true, BackhaulBps: 2e6,
		})
	}
	return ScenarioConfig{
		Seed:              7,
		Duration:          2 * time.Minute,
		Preset:            preset,
		Mobility:          mobility.Static(geo.Point{}),
		Sites:             sites,
		StripeObjectBytes: objectBytes,
	}
}

func TestStripedObjectsComplete(t *testing.T) {
	res := Run(stripeScenario(2, 1<<20, SingleChannelMultiAP))
	if res.StripeObjects == 0 {
		t.Fatal("no objects completed")
	}
	if len(res.StripeObjectSecs) != res.StripeObjects {
		t.Fatalf("latency samples %d != objects %d", len(res.StripeObjectSecs), res.StripeObjects)
	}
	for _, s := range res.StripeObjectSecs {
		if s <= 0 {
			t.Fatalf("non-positive object latency %v", s)
		}
	}
	if res.BytesReceived < int64(res.StripeObjects)<<20 {
		t.Fatalf("received %d bytes for %d MiB objects", res.BytesReceived, res.StripeObjects)
	}
}

func TestStripingAggregatesAPs(t *testing.T) {
	multi := Run(stripeScenario(2, 2<<20, SingleChannelMultiAP))
	single := Run(stripeScenario(2, 2<<20, SingleChannelSingleAP))
	if multi.StripeObjects <= single.StripeObjects {
		t.Fatalf("striping over 2 APs completed %d objects vs single-AP %d",
			multi.StripeObjects, single.StripeObjects)
	}
}

func TestStripedMobileRun(t *testing.T) {
	// Striping must survive link churn on a drive-by scenario.
	sites, model, dur := road(dot11.Channel1, dot11.Channel1, dot11.Channel1)
	res := Run(ScenarioConfig{
		Seed: 3, Duration: dur, Preset: SingleChannelMultiAP,
		Mobility: model, Sites: sites, StripeObjectBytes: 512 << 10,
	})
	if res.StripeObjects == 0 {
		t.Fatal("no objects completed while mobile")
	}
	if res.LinkDowns == 0 {
		t.Fatal("expected link churn in a drive-by")
	}
}
