package core

import (
	"bytes"
	"testing"
	"time"

	"spider/internal/dot11"
	"spider/internal/obs"
	"spider/internal/sim"
	"spider/internal/telemetry"
)

// runWithTelemetry executes a 2-client corridor run with the streaming
// plane attached (no explicit recorder: Start must create the streaming
// one) and returns the results and the finished aggregator.
func runWithTelemetry(seed int64) ([]Result, *telemetry.Aggregator) {
	world, model := corridorWorld(seed)
	tel := telemetry.New(telemetry.Config{Seed: seed, KeepClients: 1, SLOs: telemetry.DefaultSLOs()})
	world.Telemetry = tel
	s := NewScenario(world)
	s.AddClient(ClientConfig{ID: 0, Preset: SingleChannelMultiAP, Mobility: model})
	s.AddClient(ClientConfig{ID: 1, Preset: SingleChannelMultiAP, Mobility: model,
		StartOffset: sim.Time(2 * time.Second)})
	return s.Run(), tel
}

// TestScenarioTelemetryRollups checks the end-to-end wiring: windows
// cover the run, goodput rolled up per window reconciles exactly with the
// clients' delivered bytes, RTT samples reach the sketch, and the probe
// populates channel and population fields.
func TestScenarioTelemetryRollups(t *testing.T) {
	results, tel := runWithTelemetry(42)
	wins := tel.Windows()
	if len(wins) == 0 {
		t.Fatal("no rollup windows closed")
	}
	dur := int64(results[0].Duration)
	lastEnd := wins[len(wins)-1].EndNS
	if lastEnd != dur {
		t.Fatalf("last window ends at %d, run ended at %d", lastEnd, dur)
	}
	var rolled, recorded int64
	sawRTT, sawJoin := false, false
	for _, w := range wins {
		rolled += w.GoodputBytes
		if w.RTTP50MS > 0 {
			sawRTT = true
		}
		if w.JoinOKs > 0 {
			sawJoin = true
		}
		if w.Clients != 2 {
			t.Fatalf("window %d reports %d clients, want 2", w.Index, w.Clients)
		}
		if len(w.Channels) == 0 {
			t.Fatalf("window %d has no channel rollups", w.Index)
		}
		for _, ch := range w.Channels {
			if ch.Channel != int(dot11.Channel1) {
				t.Fatalf("unexpected channel %d in rollup", ch.Channel)
			}
		}
	}
	for _, r := range results {
		recorded += r.BytesReceived
	}
	if rolled != recorded {
		t.Fatalf("rollup goodput %d != delivered bytes %d", rolled, recorded)
	}
	if recorded == 0 {
		t.Fatal("corridor run moved no data")
	}
	if !sawRTT {
		t.Fatal("no window carries RTT quantiles: sender OnRTT hook not wired")
	}
	if !sawJoin {
		t.Fatal("no window carries join completions")
	}
	fc := tel.FlightCounters()
	if fc.EventsAdmitted == 0 || fc.SpansAdmitted == 0 {
		t.Fatalf("flight recorder admitted nothing: %+v", fc)
	}
}

// TestTelemetryDoesNotPerturbRun: attaching the streaming plane must not
// change a single bit of the simulation outcome — aggregation observes
// the run, it does not participate in it.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	plain := func() []Result {
		world, model := corridorWorld(7)
		s := NewScenario(world)
		s.AddClient(ClientConfig{ID: 0, Preset: SingleChannelMultiAP, Mobility: model})
		s.AddClient(ClientConfig{ID: 1, Preset: SingleChannelMultiAP, Mobility: model,
			StartOffset: sim.Time(2 * time.Second)})
		return s.Run()
	}()
	with, _ := runWithTelemetry(7)
	if fingerprint(plain) != fingerprint(with) {
		t.Fatal("attaching telemetry changed the run's results")
	}
}

// TestTelemetryExportDeterminism: two identical runs export byte-identical
// rollup JSONL, flight events included.
func TestTelemetryExportDeterminism(t *testing.T) {
	export := func() []byte {
		_, tel := runWithTelemetry(42)
		var b bytes.Buffer
		if err := tel.WriteJSONL(&b, "det"); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(export(), export()) {
		t.Fatal("identical runs exported different rollups")
	}
}

// TestReserveNoRegrow (satellite): the Start-time Reserve sizing must
// cover a populated run end to end — any regrow means per-client
// timelines paid the append doubling ladder after all.
func TestReserveNoRegrow(t *testing.T) {
	world, model := corridorWorld(11)
	rec := obs.NewRecorder()
	world.Obs = rec
	s := NewScenario(world)
	for i := 0; i < 8; i++ {
		s.AddClient(ClientConfig{ID: i, Preset: SingleChannelMultiAP, Mobility: model,
			StartOffset: sim.Time(i) * sim.Time(500*time.Millisecond)})
	}
	s.Run()
	if ev, sp := rec.Regrown(); ev != 0 || sp != 0 {
		t.Fatalf("observability buffers regrew during the run: events=%d spans=%d", ev, sp)
	}
}
