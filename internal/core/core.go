// Package core assembles complete Spider scenarios: one shared world (a
// Scenario: engine, radio medium, deployed access points, fault injector)
// traversed by any number of mobile clients (each a Client: radio position,
// virtual driver, link management module, TCP receivers), with bulk TCP
// downloads flowing through every established link. It is the engine behind
// all of the paper's system experiments (Tables 1-4, Figures 5-17) and the
// N-client population studies layered on top of them.
package core

import (
	"fmt"
	"io"
	"time"

	"spider/internal/alloc"
	"spider/internal/chaos"
	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/energy"
	"spider/internal/ipam"
	"spider/internal/ipnet"
	"spider/internal/lmm"
	"spider/internal/mobility"
	"spider/internal/obs"
	"spider/internal/phy"
	"spider/internal/sim"
	"spider/internal/telemetry"
)

// Named durations for the timer profiles and controllers below; the
// simulation clock is a time.Duration, so time package constants apply
// directly.
const (
	// statsBucket is the metric bucket width every per-second series uses.
	statsBucket = sim.Time(time.Second)
	// defaultDuration is the experiment length when none is given.
	defaultDuration = sim.Time(30 * time.Minute)
	// defaultSlotDuration is the per-channel dwell of multi-channel
	// schedules (Table 4).
	defaultSlotDuration = sim.Time(200 * time.Millisecond)
	// probeInterval is the driver's active-scan period.
	probeInterval = sim.Time(500 * time.Millisecond)
	// adaptiveCheckInterval is how often the Adaptive controller samples
	// the client's speed.
	adaptiveCheckInterval = sim.Time(time.Second)
	// predictiveReplanInterval is how often the Predictive controller
	// re-plans its channel schedule.
	predictiveReplanInterval = sim.Time(2 * time.Second)
	// predictiveLookahead is how far ahead of the client's position the
	// Predictive controller plans.
	predictiveLookahead = sim.Time(5 * time.Second)
	// deadDHCPRespMin/Max park a dead DHCP server's responses far outside
	// any client's acquisition window.
	deadDHCPRespMin = sim.Time(120 * time.Second)
	deadDHCPRespMax = sim.Time(240 * time.Second)
)

// Preset selects one of the paper's evaluated configurations.
type Preset int

// The four Spider configurations of Section 4.1, the stock-driver baseline,
// and the future-work adaptive mode.
const (
	// SingleChannelMultiAP is configuration 1: park on one channel, join
	// every usable AP there (the paper's throughput winner).
	SingleChannelMultiAP Preset = iota
	// SingleChannelSingleAP is configuration 2.
	SingleChannelSingleAP
	// MultiChannelMultiAP is configuration 3: rotate channels, join APs
	// on all of them (the connectivity winner).
	MultiChannelMultiAP
	// MultiChannelSingleAP is configuration 4.
	MultiChannelSingleAP
	// Stock approximates an unmodified MadWiFi driver: one AP at a time,
	// default timers, no lease cache, park-on-connect, scan when idle.
	Stock
	// Adaptive is the paper's future-work extension: single-channel at
	// speed, multi-channel when slow.
	Adaptive
	// Predictive is the encounter-history extension: the client learns
	// which channel carries its best APs on each stretch of road and
	// re-plans its single-channel schedule ahead of its position,
	// rotating channels only in unexplored territory.
	Predictive
)

func (p Preset) String() string {
	switch p {
	case SingleChannelMultiAP:
		return "single-channel/multi-AP"
	case SingleChannelSingleAP:
		return "single-channel/single-AP"
	case MultiChannelMultiAP:
		return "multi-channel/multi-AP"
	case MultiChannelSingleAP:
		return "multi-channel/single-AP"
	case Stock:
		return "stock"
	case Adaptive:
		return "adaptive"
	case Predictive:
		return "predictive"
	}
	return fmt.Sprintf("preset-%d", int(p))
}

// TimerProfile groups the join-related timeouts the paper sweeps.
type TimerProfile struct {
	// LLTimeout is the link-layer handshake retransmission timeout.
	LLTimeout sim.Time
	// DHCPRetry is the DHCP retransmission timeout (the model's c).
	DHCPRetry sim.Time
	// DHCPWindow bounds one DHCP acquisition.
	DHCPWindow sim.Time
	// UseLeaseCache enables the per-BSSID cached-lease fast path.
	UseLeaseCache bool
	// FailureBackoff is the per-AP retry embargo after a failed join.
	FailureBackoff sim.Time
}

// ReducedTimers returns Spider's tuned profile (100 ms link-layer, 200 ms
// DHCP retransmits, lease cache on).
func ReducedTimers() TimerProfile {
	return TimerProfile{
		LLTimeout:      100 * time.Millisecond,
		DHCPRetry:      200 * time.Millisecond,
		DHCPWindow:     3 * time.Second,
		UseLeaseCache:  true,
		FailureBackoff: 5 * time.Second,
	}
}

// DefaultTimers returns the stock stack's profile: 1 s link-layer timeout,
// 1 s DHCP retransmits in a 3 s window, 60 s idle after failure, no cache.
func DefaultTimers() TimerProfile {
	return TimerProfile{
		LLTimeout:      time.Second,
		DHCPRetry:      time.Second,
		DHCPWindow:     3 * time.Second,
		UseLeaseCache:  false,
		FailureBackoff: 60 * time.Second,
	}
}

// APOverrides tune every deployed AP uniformly.
type APOverrides struct {
	// DHCPRespMin/Max override the β response-delay distribution.
	DHCPRespMin sim.Time
	DHCPRespMax sim.Time
	// MgmtDelayMin/Max override management-plane processing delays.
	MgmtDelayMin sim.Time
	MgmtDelayMax sim.Time
	// BackhaulDelay overrides the one-way wired delay.
	BackhaulDelay sim.Time
	// BeaconInterval overrides the beacon period.
	BeaconInterval sim.Time
	// LeaseSecs overrides the advertised DHCP lease duration; short
	// leases force the LMM's mid-encounter renewal path.
	LeaseSecs uint32
	// DHCPPoolSize overrides the per-AP DHCP address pool size. Small
	// pools put population runs under genuine lease pressure.
	DHCPPoolSize int
	// DisableLeaseExpiry turns off the server-side lease expiry sweep, so
	// a vanished client's address is never reclaimed — the pre-ipam
	// behaviour, kept as the rush-hour experiment's no-GC baseline arm.
	DisableLeaseExpiry bool
}

// WorldConfig describes the shared world of a Scenario: everything that
// exists independently of any particular client.
type WorldConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Duration is the simulated experiment length.
	Duration sim.Time
	// Sites are the deployed APs (required).
	Sites []mobility.APSite
	// Phy overrides the PHY parameters (zero fields default).
	Phy phy.Params
	// AP tunes all deployed APs.
	AP APOverrides
	// IPAM, when non-nil, declares the address plane explicitly: named
	// pools and ordered failover groups (see internal/ipam). Each site
	// binds to the group named by its Segment (empty = the default group),
	// so APs on one backhaul segment share a pool hierarchy. Nil keeps the
	// legacy plan — one private pool per AP covering gw+1..gw+PoolSize.
	IPAM *ipam.Config
	// Chaos, when non-nil, injects the fault plan into the scenario (see
	// internal/chaos). The plan's AP indices refer to Sites order.
	Chaos *chaos.Plan
	// Alloc, when non-nil, arms the proportional-fair association +
	// airtime allocator (see internal/alloc): Oracle runs a centralized
	// epoch re-solve that steers every client to its PF assignment and
	// paces its flows to the equal-airtime share; Decentralized installs a
	// client-local policy in each LMM that infers contention from
	// carrier-sense signals. Nil keeps the legacy selfish heuristic
	// byte-identical.
	Alloc *alloc.Config
	// PCAP, when non-nil, receives a pcap capture of every frame on the
	// air (see internal/capture).
	PCAP io.Writer
	// Obs, when non-nil, records the run's structured event timeline and
	// counters (see internal/obs). Events carry sim-time only, so a
	// recorded run stays bit-reproducible. Nil disables recording with no
	// cost beyond a nil check at each instrumentation site.
	Obs *obs.Recorder
	// Telemetry, when non-nil, attaches the streaming aggregation plane
	// (see internal/telemetry): bounded-memory rollup windows, a flight
	// recorder of raw events, and SLO health evaluation. The scenario
	// binds it to the recorder, drives its window ticks from the engine,
	// and wires the medium/DHCP probe. When Obs is nil a streaming
	// (non-retaining) recorder is created automatically, so city-scale
	// runs get telemetry without the O(events) raw timeline.
	Telemetry *telemetry.Aggregator
}

func (w WorldConfig) withDefaults() WorldConfig {
	if w.Duration <= 0 {
		w.Duration = defaultDuration
	}
	return w
}

// ClientConfig describes one mobile client of a Scenario.
type ClientConfig struct {
	// ID is the client's stable identity: its MAC address, RNG streams,
	// flow server-IP namespace, and result slot all derive from it, so a
	// run is a function of the ID set — never of the order AddClient was
	// called in. IDs must be unique within a scenario and in [0, 65535].
	ID int
	// Preset picks the Spider configuration.
	Preset Preset
	// PrimaryChannel is the channel for single-channel presets
	// (default channel 1, as in Table 2).
	PrimaryChannel dot11.Channel
	// Channels are the rotation channels for multi-channel presets
	// (default 1, 6, 11).
	Channels []dot11.Channel
	// SlotDuration is the per-channel dwell for multi-channel presets
	// (default 200 ms, as in Table 4).
	SlotDuration sim.Time
	// CustomSchedule, when non-empty, overrides the preset's channel
	// schedule entirely (used for the fractional-schedule experiments of
	// Figures 5-8).
	CustomSchedule []driver.Slot
	// Timers selects the join timeout profile (default ReducedTimers,
	// except Stock which forces DefaultTimers unless explicitly set).
	Timers *TimerProfile
	// Mobility is the client motion model (required). The model's clock
	// starts at StartOffset: a client entering the world late starts at
	// the beginning of its route.
	Mobility mobility.Model
	// NumVIFs overrides the interface count (default 7).
	NumVIFs int
	// AdaptiveSpeedThreshold is the single-channel cutover speed for the
	// Adaptive preset (default 10 m/s, the paper's dividing speed).
	AdaptiveSpeedThreshold float64
	// FlowBytes bounds each per-link download; <=0 means unbounded bulk
	// (the paper's large-file HTTP downloads).
	FlowBytes int64
	// StripeObjectBytes, when positive, replaces bulk downloads with
	// back-to-back object fetches block-striped across all live links
	// (the data-striping extension).
	StripeObjectBytes int64
	// DisableTraffic turns off TCP flows (join-only experiments).
	DisableTraffic bool
	// StartOffset delays the client's stack (radio, driver, LMM) until
	// this virtual time, staggering population arrivals.
	StartOffset sim.Time
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.PrimaryChannel == 0 {
		c.PrimaryChannel = dot11.Channel1
	}
	if len(c.Channels) == 0 {
		c.Channels = append([]dot11.Channel(nil), dot11.OrthogonalChannels...)
	}
	if c.SlotDuration <= 0 {
		c.SlotDuration = defaultSlotDuration
	}
	if c.Timers == nil {
		var t TimerProfile
		if c.Preset == Stock {
			t = DefaultTimers()
		} else {
			t = ReducedTimers()
		}
		c.Timers = &t
	} else {
		t := *c.Timers // copy: shared profiles must not alias across runs
		c.Timers = &t
	}
	if c.NumVIFs <= 0 {
		if c.Preset == Stock {
			c.NumVIFs = 1
		} else {
			c.NumVIFs = 7
		}
	}
	if c.AdaptiveSpeedThreshold <= 0 {
		c.AdaptiveSpeedThreshold = 10
	}
	if c.StartOffset < 0 {
		c.StartOffset = 0
	}
	if c.Mobility == nil {
		panic("core: ClientConfig.Mobility is required")
	}
	return c
}

// schedule builds the driver schedule for the preset.
func (c ClientConfig) schedule() []driver.Slot {
	if len(c.CustomSchedule) > 0 {
		return c.CustomSchedule
	}
	switch c.Preset {
	case SingleChannelMultiAP, SingleChannelSingleAP, Adaptive:
		return []driver.Slot{{Channel: c.PrimaryChannel}}
	case Predictive:
		// Start exploring: rotate until the history has opinions.
		slots := make([]driver.Slot, 0, len(c.Channels))
		for _, ch := range c.Channels {
			slots = append(slots, driver.Slot{Channel: ch, Duration: c.SlotDuration})
		}
		return slots
	default:
		slots := make([]driver.Slot, 0, len(c.Channels))
		for _, ch := range c.Channels {
			slots = append(slots, driver.Slot{Channel: ch, Duration: c.SlotDuration})
		}
		return slots
	}
}

// lmmConfig builds the link-manager configuration for the preset.
func (c ClientConfig) lmmConfig() lmm.Config {
	cfg := lmm.DefaultConfig()
	cfg.Schedule = c.schedule()
	cfg.DHCP = dhcp.ClientConfig{RetryTimeout: c.Timers.DHCPRetry, AcquireWindow: c.Timers.DHCPWindow}
	cfg.UseLeaseCache = c.Timers.UseLeaseCache
	cfg.FailureBackoff = c.Timers.FailureBackoff
	cfg.TestTarget = TestServerAddr
	switch c.Preset {
	case SingleChannelSingleAP, MultiChannelSingleAP:
		cfg.SingleAP = true
	case Stock:
		cfg.SingleAP = true
		cfg.ParkOnConnect = true
		// A stock stack is slow on both ends of a connection's life:
		// the supplicant takes a couple of seconds to scan and decide,
		// and loss of an AP is noticed only after many seconds without
		// progress (no aggressive 10 Hz liveness probing).
		cfg.ReselectInterval = 4 * time.Second
		cfg.PingInterval = time.Second
		cfg.PingFailLimit = 15
		cfg.GlobalDHCPBackoff = true
		cfg.SelectByRSSIOnly = true
	}
	return cfg
}

// ScenarioConfig describes one single-client run: a WorldConfig and a
// ClientConfig flattened into the structure every pre-population caller
// composes. Run splits it back apart.
type ScenarioConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Duration is the simulated experiment length.
	Duration sim.Time
	// Preset picks the Spider configuration.
	Preset Preset
	// PrimaryChannel is the channel for single-channel presets
	// (default channel 1, as in Table 2).
	PrimaryChannel dot11.Channel
	// Channels are the rotation channels for multi-channel presets
	// (default 1, 6, 11).
	Channels []dot11.Channel
	// SlotDuration is the per-channel dwell for multi-channel presets
	// (default 200 ms, as in Table 4).
	SlotDuration sim.Time
	// CustomSchedule, when non-empty, overrides the preset's channel
	// schedule entirely (used for the fractional-schedule experiments of
	// Figures 5-8).
	CustomSchedule []driver.Slot
	// Timers selects the join timeout profile (default ReducedTimers,
	// except Stock which forces DefaultTimers unless explicitly set).
	Timers *TimerProfile
	// Mobility is the client motion model (required).
	Mobility mobility.Model
	// Sites are the deployed APs (required).
	Sites []mobility.APSite
	// Phy overrides the PHY parameters (zero fields default).
	Phy phy.Params
	// AP tunes all deployed APs.
	AP APOverrides
	// IPAM, when non-nil, declares the address plane explicitly (see
	// WorldConfig.IPAM).
	IPAM *ipam.Config
	// NumVIFs overrides the interface count (default 7).
	NumVIFs int
	// AdaptiveSpeedThreshold is the single-channel cutover speed for the
	// Adaptive preset (default 10 m/s, the paper's dividing speed).
	AdaptiveSpeedThreshold float64
	// FlowBytes bounds each per-link download; <=0 means unbounded bulk
	// (the paper's large-file HTTP downloads).
	FlowBytes int64
	// StripeObjectBytes, when positive, replaces bulk downloads with
	// back-to-back object fetches block-striped across all live links
	// (the data-striping extension).
	StripeObjectBytes int64
	// DisableTraffic turns off TCP flows (join-only experiments).
	DisableTraffic bool
	// Chaos, when non-nil, injects the fault plan into the scenario (see
	// internal/chaos). The plan's AP indices refer to Sites order.
	Chaos *chaos.Plan
	// PCAP, when non-nil, receives a pcap capture of every frame on the
	// air (see internal/capture).
	PCAP io.Writer
	// Obs, when non-nil, records the run's structured event timeline and
	// counters (see internal/obs).
	Obs *obs.Recorder
	// Telemetry, when non-nil, attaches the streaming aggregation plane
	// (see WorldConfig.Telemetry).
	Telemetry *telemetry.Aggregator
}

// split separates the flattened single-client config into its world and
// client halves.
func (c ScenarioConfig) split() (WorldConfig, ClientConfig) {
	world := WorldConfig{
		Seed:      c.Seed,
		Duration:  c.Duration,
		Sites:     c.Sites,
		Phy:       c.Phy,
		AP:        c.AP,
		IPAM:      c.IPAM,
		Chaos:     c.Chaos,
		PCAP:      c.PCAP,
		Obs:       c.Obs,
		Telemetry: c.Telemetry,
	}
	client := ClientConfig{
		ID:                     0,
		Preset:                 c.Preset,
		PrimaryChannel:         c.PrimaryChannel,
		Channels:               c.Channels,
		SlotDuration:           c.SlotDuration,
		CustomSchedule:         c.CustomSchedule,
		Timers:                 c.Timers,
		Mobility:               c.Mobility,
		NumVIFs:                c.NumVIFs,
		AdaptiveSpeedThreshold: c.AdaptiveSpeedThreshold,
		FlowBytes:              c.FlowBytes,
		StripeObjectBytes:      c.StripeObjectBytes,
		DisableTraffic:         c.DisableTraffic,
	}
	return world, client
}

// Result reports everything one client's run measured.
type Result struct {
	// ClientID identifies the client in population runs (0 for the
	// classic single-client scenarios).
	ClientID int
	Preset   Preset
	Seed     int64
	Duration sim.Time

	BytesReceived  int64
	ThroughputKBps float64 // average over the whole run
	Connectivity   float64 // fraction of seconds with data

	ConnectionDurations []float64 // seconds (Figure 11)
	DisruptionDurations []float64 // seconds (Figure 12)
	InstRatesKBps       []float64 // per-connected-second rates (Figure 13)

	Joins     []lmm.JoinRecord
	LinkUps   int
	LinkDowns int

	// Recoveries are outage lengths in seconds: the gap from losing the
	// last live link to the next established one. Chaos experiments
	// report these as fault recovery times. Tracked per client.
	Recoveries []float64
	// PerSecondKBps is delivered goodput per one-second bucket over the
	// whole run, zero seconds included (pre/post-fault goodput windows).
	PerSecondKBps []float64
	// Chaos counts injected faults when a fault plan was active (a
	// world-level total, identical on every client of a population).
	Chaos chaos.Stats
	// Events summarizes the run's recorded event stream by kind when a
	// WorldConfig.Obs recorder was attached (a world-level total covering
	// every client, identical on each client of a population). Zero when
	// recording was disabled.
	Events obs.Summary

	// Striped-traffic results (StripeObjectBytes > 0).
	StripeObjects    int
	StripeObjectSecs []float64

	// LinkSeconds[k] counts seconds spent with exactly k concurrent
	// links (Section 4.4's AP-density analysis).
	LinkSeconds map[int]int

	LMM    lmm.Stats
	Driver driver.Stats
	// Medium snapshots the shared medium's counters (world-level; in a
	// population every client reports the same totals).
	Medium phy.Stats

	// Energy attributes the client radio's draw over the run; see
	// internal/energy. EnergyPerBitMicroJ is joules-per-delivered-bit ×1e6.
	Energy             energy.Breakdown
	EnergyPerBitMicroJ float64
}

// TestServerAddr is the well-known wired host used for end-to-end
// connectivity tests (and answered by every non-captive AP's uplink).
const TestServerAddr ipnet.Addr = 0xC6120001 // 198.18.0.1

// Run executes a single-client scenario to completion and returns its
// measurements: a thin compose-and-execute over Scenario and Client.
func Run(cfg ScenarioConfig) Result {
	world, client := cfg.split()
	s := NewScenario(world)
	s.AddClient(client)
	return s.Run()[0]
}
