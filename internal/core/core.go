// Package core assembles complete Spider scenarios: a mobile client (radio,
// virtual driver, link management module, TCP receivers) moving through a
// deployment of simulated access points, with bulk TCP downloads flowing
// through every established link. It is the engine behind all of the
// paper's system experiments (Tables 1-4, Figures 5-17).
package core

import (
	"fmt"
	"io"
	"sort"

	"spider/internal/ap"
	"spider/internal/capture"
	"spider/internal/chaos"
	"spider/internal/dhcp"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/energy"
	"spider/internal/geo"
	"spider/internal/ipnet"
	"spider/internal/lmm"
	"spider/internal/mobility"
	"spider/internal/phy"
	"spider/internal/predict"
	"spider/internal/sim"
	"spider/internal/stats"
	"spider/internal/tcpsim"
)

// Preset selects one of the paper's evaluated configurations.
type Preset int

// The four Spider configurations of Section 4.1, the stock-driver baseline,
// and the future-work adaptive mode.
const (
	// SingleChannelMultiAP is configuration 1: park on one channel, join
	// every usable AP there (the paper's throughput winner).
	SingleChannelMultiAP Preset = iota
	// SingleChannelSingleAP is configuration 2.
	SingleChannelSingleAP
	// MultiChannelMultiAP is configuration 3: rotate channels, join APs
	// on all of them (the connectivity winner).
	MultiChannelMultiAP
	// MultiChannelSingleAP is configuration 4.
	MultiChannelSingleAP
	// Stock approximates an unmodified MadWiFi driver: one AP at a time,
	// default timers, no lease cache, park-on-connect, scan when idle.
	Stock
	// Adaptive is the paper's future-work extension: single-channel at
	// speed, multi-channel when slow.
	Adaptive
	// Predictive is the encounter-history extension: the client learns
	// which channel carries its best APs on each stretch of road and
	// re-plans its single-channel schedule ahead of its position,
	// rotating channels only in unexplored territory.
	Predictive
)

func (p Preset) String() string {
	switch p {
	case SingleChannelMultiAP:
		return "single-channel/multi-AP"
	case SingleChannelSingleAP:
		return "single-channel/single-AP"
	case MultiChannelMultiAP:
		return "multi-channel/multi-AP"
	case MultiChannelSingleAP:
		return "multi-channel/single-AP"
	case Stock:
		return "stock"
	case Adaptive:
		return "adaptive"
	case Predictive:
		return "predictive"
	}
	return fmt.Sprintf("preset-%d", int(p))
}

// TimerProfile groups the join-related timeouts the paper sweeps.
type TimerProfile struct {
	// LLTimeout is the link-layer handshake retransmission timeout.
	LLTimeout sim.Time
	// DHCPRetry is the DHCP retransmission timeout (the model's c).
	DHCPRetry sim.Time
	// DHCPWindow bounds one DHCP acquisition.
	DHCPWindow sim.Time
	// UseLeaseCache enables the per-BSSID cached-lease fast path.
	UseLeaseCache bool
	// FailureBackoff is the per-AP retry embargo after a failed join.
	FailureBackoff sim.Time
}

// ReducedTimers returns Spider's tuned profile (100 ms link-layer, 200 ms
// DHCP retransmits, lease cache on).
func ReducedTimers() TimerProfile {
	return TimerProfile{
		LLTimeout:      100 * 1000 * 1000,
		DHCPRetry:      200 * 1000 * 1000,
		DHCPWindow:     3000 * 1000 * 1000,
		UseLeaseCache:  true,
		FailureBackoff: 5 * 1000 * 1000 * 1000,
	}
}

// DefaultTimers returns the stock stack's profile: 1 s link-layer timeout,
// 1 s DHCP retransmits in a 3 s window, 60 s idle after failure, no cache.
func DefaultTimers() TimerProfile {
	return TimerProfile{
		LLTimeout:      1000 * 1000 * 1000,
		DHCPRetry:      1000 * 1000 * 1000,
		DHCPWindow:     3000 * 1000 * 1000,
		UseLeaseCache:  false,
		FailureBackoff: 60 * 1000 * 1000 * 1000,
	}
}

// APOverrides tune every deployed AP uniformly.
type APOverrides struct {
	// DHCPRespMin/Max override the β response-delay distribution.
	DHCPRespMin sim.Time
	DHCPRespMax sim.Time
	// MgmtDelayMin/Max override management-plane processing delays.
	MgmtDelayMin sim.Time
	MgmtDelayMax sim.Time
	// BackhaulDelay overrides the one-way wired delay.
	BackhaulDelay sim.Time
	// BeaconInterval overrides the beacon period.
	BeaconInterval sim.Time
	// LeaseSecs overrides the advertised DHCP lease duration; short
	// leases force the LMM's mid-encounter renewal path.
	LeaseSecs uint32
}

// ScenarioConfig describes one run.
type ScenarioConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Duration is the simulated experiment length.
	Duration sim.Time
	// Preset picks the Spider configuration.
	Preset Preset
	// PrimaryChannel is the channel for single-channel presets
	// (default channel 1, as in Table 2).
	PrimaryChannel dot11.Channel
	// Channels are the rotation channels for multi-channel presets
	// (default 1, 6, 11).
	Channels []dot11.Channel
	// SlotDuration is the per-channel dwell for multi-channel presets
	// (default 200 ms, as in Table 4).
	SlotDuration sim.Time
	// CustomSchedule, when non-empty, overrides the preset's channel
	// schedule entirely (used for the fractional-schedule experiments of
	// Figures 5-8).
	CustomSchedule []driver.Slot
	// Timers selects the join timeout profile (default ReducedTimers,
	// except Stock which forces DefaultTimers unless explicitly set).
	Timers *TimerProfile
	// Mobility is the client motion model (required).
	Mobility mobility.Model
	// Sites are the deployed APs (required).
	Sites []mobility.APSite
	// Phy overrides the PHY parameters (zero fields default).
	Phy phy.Params
	// AP tunes all deployed APs.
	AP APOverrides
	// NumVIFs overrides the interface count (default 7).
	NumVIFs int
	// AdaptiveSpeedThreshold is the single-channel cutover speed for the
	// Adaptive preset (default 10 m/s, the paper's dividing speed).
	AdaptiveSpeedThreshold float64
	// FlowBytes bounds each per-link download; <=0 means unbounded bulk
	// (the paper's large-file HTTP downloads).
	FlowBytes int64
	// StripeObjectBytes, when positive, replaces bulk downloads with
	// back-to-back object fetches block-striped across all live links
	// (the data-striping extension).
	StripeObjectBytes int64
	// DisableTraffic turns off TCP flows (join-only experiments).
	DisableTraffic bool
	// Chaos, when non-nil, injects the fault plan into the scenario (see
	// internal/chaos). The plan's AP indices refer to Sites order.
	Chaos *chaos.Plan
	// PCAP, when non-nil, receives a pcap capture of every frame on the
	// air (see internal/capture).
	PCAP io.Writer
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Duration <= 0 {
		c.Duration = 30 * 60 * 1000 * 1000 * 1000 // 30 min
	}
	if c.PrimaryChannel == 0 {
		c.PrimaryChannel = dot11.Channel1
	}
	if len(c.Channels) == 0 {
		c.Channels = append([]dot11.Channel(nil), dot11.OrthogonalChannels...)
	}
	if c.SlotDuration <= 0 {
		c.SlotDuration = 200 * 1000 * 1000
	}
	if c.Timers == nil {
		var t TimerProfile
		if c.Preset == Stock {
			t = DefaultTimers()
		} else {
			t = ReducedTimers()
		}
		c.Timers = &t
	}
	if c.NumVIFs <= 0 {
		if c.Preset == Stock {
			c.NumVIFs = 1
		} else {
			c.NumVIFs = 7
		}
	}
	if c.AdaptiveSpeedThreshold <= 0 {
		c.AdaptiveSpeedThreshold = 10
	}
	if c.Mobility == nil {
		panic("core: ScenarioConfig.Mobility is required")
	}
	return c
}

// schedule builds the driver schedule for the preset.
func (c ScenarioConfig) schedule() []driver.Slot {
	if len(c.CustomSchedule) > 0 {
		return c.CustomSchedule
	}
	switch c.Preset {
	case SingleChannelMultiAP, SingleChannelSingleAP, Adaptive:
		return []driver.Slot{{Channel: c.PrimaryChannel}}
	case Predictive:
		// Start exploring: rotate until the history has opinions.
		slots := make([]driver.Slot, 0, len(c.Channels))
		for _, ch := range c.Channels {
			slots = append(slots, driver.Slot{Channel: ch, Duration: c.SlotDuration})
		}
		return slots
	default:
		slots := make([]driver.Slot, 0, len(c.Channels))
		for _, ch := range c.Channels {
			slots = append(slots, driver.Slot{Channel: ch, Duration: c.SlotDuration})
		}
		return slots
	}
}

// lmmConfig builds the link-manager configuration for the preset.
func (c ScenarioConfig) lmmConfig() lmm.Config {
	cfg := lmm.DefaultConfig()
	cfg.Schedule = c.schedule()
	cfg.DHCP = dhcp.ClientConfig{RetryTimeout: c.Timers.DHCPRetry, AcquireWindow: c.Timers.DHCPWindow}
	cfg.UseLeaseCache = c.Timers.UseLeaseCache
	cfg.FailureBackoff = c.Timers.FailureBackoff
	cfg.TestTarget = TestServerAddr
	switch c.Preset {
	case SingleChannelSingleAP, MultiChannelSingleAP:
		cfg.SingleAP = true
	case Stock:
		cfg.SingleAP = true
		cfg.ParkOnConnect = true
		// A stock stack is slow on both ends of a connection's life:
		// the supplicant takes a couple of seconds to scan and decide,
		// and loss of an AP is noticed only after many seconds without
		// progress (no aggressive 10 Hz liveness probing).
		cfg.ReselectInterval = 4 * 1000 * 1000 * 1000
		cfg.PingInterval = 1000 * 1000 * 1000
		cfg.PingFailLimit = 15
		cfg.GlobalDHCPBackoff = true
		cfg.SelectByRSSIOnly = true
	}
	return cfg
}

// Result reports everything a run measured.
type Result struct {
	Preset   Preset
	Seed     int64
	Duration sim.Time

	BytesReceived  int64
	ThroughputKBps float64 // average over the whole run
	Connectivity   float64 // fraction of seconds with data

	ConnectionDurations []float64 // seconds (Figure 11)
	DisruptionDurations []float64 // seconds (Figure 12)
	InstRatesKBps       []float64 // per-connected-second rates (Figure 13)

	Joins     []lmm.JoinRecord
	LinkUps   int
	LinkDowns int

	// Recoveries are outage lengths in seconds: the gap from losing the
	// last live link to the next established one. Chaos experiments
	// report these as fault recovery times.
	Recoveries []float64
	// PerSecondKBps is delivered goodput per one-second bucket over the
	// whole run, zero seconds included (pre/post-fault goodput windows).
	PerSecondKBps []float64
	// Chaos counts injected faults when a fault plan was active.
	Chaos chaos.Stats

	// Striped-traffic results (StripeObjectBytes > 0).
	StripeObjects    int
	StripeObjectSecs []float64

	// LinkSeconds[k] counts seconds spent with exactly k concurrent
	// links (Section 4.4's AP-density analysis).
	LinkSeconds map[int]int

	LMM    lmm.Stats
	Driver driver.Stats
	Medium phy.Stats

	// Energy attributes the client radio's draw over the run; see
	// internal/energy. EnergyPerBitMicroJ is joules-per-delivered-bit ×1e6.
	Energy             energy.Breakdown
	EnergyPerBitMicroJ float64
}

// TestServerAddr is the well-known wired host used for end-to-end
// connectivity tests (and answered by every non-captive AP's uplink).
const TestServerAddr ipnet.Addr = 0xC6120001 // 198.18.0.1

// flow is one per-link bulk TCP download.
type flow struct {
	serverIP ipnet.Addr
	access   *ap.AP
	link     *lmm.Link
	snd      *tcpsim.Sender
	rcv      *tcpsim.Receiver
}

// Run executes a scenario to completion and returns its measurements.
func Run(cfg ScenarioConfig) Result {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)

	medium := phy.NewMedium(eng, rng.Stream("phy"), cfg.Phy)
	if cfg.PCAP != nil {
		pw := capture.NewWriter(cfg.PCAP)
		medium.SetTap(func(_ dot11.Channel, wire []byte, at sim.Time) {
			// Capture failures only surface through the writer's error;
			// frames keep flowing either way.
			_ = pw.WritePacket(at, wire)
		})
	}
	pos := func() geo.Point { return cfg.Mobility.PositionAt(eng.Now()) }

	// Deploy APs. apList keeps Sites order for chaos targeting.
	aps := make(map[dot11.MACAddr]*ap.AP, len(cfg.Sites))
	apList := make([]*ap.AP, 0, len(cfg.Sites))
	flows := make(map[ipnet.Addr]*flow)
	// uplink handles packets that crossed an AP's backhaul: TCP ACKs back
	// to flow senders, and echo requests to the well-known test server
	// (Spider's end-to-end connectivity check).
	uplink := func(src *ap.AP, p ipnet.Packet) {
		switch p.Proto {
		case ipnet.ProtoICMP:
			if p.Dst != TestServerAddr {
				return
			}
			if echo, err := ipnet.DecodeEcho(p.Payload); err == nil && echo.Type == ipnet.ICMPEchoRequest {
				src.FromInternet(ipnet.EchoReplyPacket(p, echo))
			}
		case ipnet.ProtoTCP:
			f, ok := flows[p.Dst]
			if !ok {
				return
			}
			if seg, err := tcpsim.DecodeSegment(p.Payload); err == nil {
				f.snd.Deliver(seg)
			}
		}
	}
	for i, site := range cfg.Sites {
		gw := ipnet.AddrFrom4(10, byte(i>>8), byte(i), 1)
		apCfg := ap.DefaultConfig(site.SSID, site.Channel, gw)
		apCfg.Open = site.Open
		if site.BackhaulBps > 0 {
			apCfg.Backhaul.RateBps = site.BackhaulBps
		}
		if cfg.AP.DHCPRespMin > 0 {
			apCfg.DHCP.RespDelayMin = cfg.AP.DHCPRespMin
		}
		if cfg.AP.DHCPRespMax > 0 {
			apCfg.DHCP.RespDelayMax = cfg.AP.DHCPRespMax
		}
		if cfg.AP.MgmtDelayMin > 0 {
			apCfg.MgmtDelayMin = cfg.AP.MgmtDelayMin
		}
		if cfg.AP.MgmtDelayMax > 0 {
			apCfg.MgmtDelayMax = cfg.AP.MgmtDelayMax
		}
		if cfg.AP.BackhaulDelay > 0 {
			apCfg.Backhaul.Delay = cfg.AP.BackhaulDelay
		}
		if cfg.AP.BeaconInterval > 0 {
			apCfg.BeaconInterval = cfg.AP.BeaconInterval
		}
		if cfg.AP.LeaseSecs > 0 {
			apCfg.DHCP.LeaseSecs = cfg.AP.LeaseSecs
		}
		if site.DHCPDead {
			// The server exists but never answers inside any client's
			// acquisition window.
			apCfg.DHCP.RespDelayMin = 120 * 1000 * 1000 * 1000
			apCfg.DHCP.RespDelayMax = 240 * 1000 * 1000 * 1000
		}
		apCfg.BlockWAN = site.Captive
		mac := dot11.MAC(uint32(0x100000 + i))
		sitePos := site.Pos
		var self *ap.AP
		self = ap.New(eng, rng.Stream(site.SSID), medium, sitePos, mac, apCfg,
			func(p ipnet.Packet) { uplink(self, p) })
		aps[mac] = self
		apList = append(apList, self)
	}

	// Arm the fault plan. The injector draws from its own stream and
	// schedules everything up front, so a given (seed, plan) replays the
	// same fault sequence regardless of what else the scenario does.
	var inj *chaos.Injector
	if cfg.Chaos != nil && !cfg.Chaos.Empty() {
		targets := make([]chaos.Target, len(apList))
		for i, a := range apList {
			targets[i] = a
		}
		inj = chaos.New(eng, rng.Stream("chaos"), *cfg.Chaos, targets, medium)
	}

	// Client stack.
	drvCfg := driver.Config{
		NumVIFs:       cfg.NumVIFs,
		LLTimeout:     cfg.Timers.LLTimeout,
		ProbeInterval: 500 * 1000 * 1000,
	}
	drv := driver.New(eng, rng.Stream("driver"), medium, dot11.MAC(1), pos, drvCfg)
	manager := lmm.New(eng, rng.Stream("lmm"), drv, cfg.lmmConfig())

	series := stats.NewTimeSeries(1000 * 1000 * 1000) // 1 s buckets
	res := Result{Preset: cfg.Preset, Seed: cfg.Seed, Duration: cfg.Duration, LinkSeconds: map[int]int{}}

	// startFlow opens one TCP download of total bytes (negative for
	// unbounded) through the link; onDone (optional) fires when a finite
	// flow completes.
	var nextServer uint32
	startFlow := func(l *lmm.Link, total int64, onDone func()) *flow {
		access := aps[l.BSSID]
		if access == nil {
			return nil
		}
		nextServer++
		serverIP := ipnet.AddrFrom4(198, 19, byte(nextServer>>8), byte(nextServer))
		f := &flow{serverIP: serverIP, access: access, link: l}
		lease := l.Lease
		f.rcv = tcpsim.NewReceiver(eng,
			func(seg tcpsim.Segment) {
				l.Send(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: ipnet.DefaultTTL,
					Src: lease.IP, Dst: serverIP, Payload: seg.Bytes()})
			},
			func(n int, at sim.Time) {
				series.Add(at, float64(n))
				res.BytesReceived += int64(n)
			})
		f.snd = tcpsim.NewSender(eng, tcpsim.Config{},
			func(seg tcpsim.Segment) {
				access.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: ipnet.DefaultTTL,
					Src: serverIP, Dst: lease.IP, Payload: seg.Bytes()})
			}, func() {
				delete(flows, serverIP)
				if onDone != nil {
					onDone()
				}
			})
		l.OnPacket = func(p ipnet.Packet) {
			if p.Proto != ipnet.ProtoTCP || p.Src != serverIP {
				return
			}
			if seg, err := tcpsim.DecodeSegment(p.Payload); err == nil {
				f.rcv.Deliver(seg)
			}
		}
		flows[serverIP] = f
		f.snd.Start(total)
		return f
	}
	stopLinkFlows := func(l *lmm.Link) {
		// Stop in address order: Stop may touch the event queue, and the
		// teardown order must not depend on map iteration for determinism.
		var ips []ipnet.Addr
		for ip, f := range flows {
			if f.link == l {
				ips = append(ips, ip)
			}
		}
		sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
		for _, ip := range ips {
			flows[ip].snd.Stop()
			delete(flows, ip)
		}
	}

	switch {
	case cfg.DisableTraffic:
		manager.OnLinkUp = func(*lmm.Link) { res.LinkUps++ }
		manager.OnLinkDown = func(*lmm.Link) { res.LinkDowns++ }
	case cfg.StripeObjectBytes > 0:
		wireStriping(eng, cfg, &res, manager, startFlow, stopLinkFlows)
	default:
		manager.OnLinkUp = func(l *lmm.Link) {
			res.LinkUps++
			total := cfg.FlowBytes
			if total <= 0 {
				total = -1
			}
			startFlow(l, total, nil)
		}
		manager.OnLinkDown = func(l *lmm.Link) {
			res.LinkDowns++
			stopLinkFlows(l)
		}
	}

	// Outage accounting: an outage opens when the last live link drops
	// and closes at the next established link. The LMM resets the dying
	// conn before notifying, so ActiveLinks is already post-drop here.
	baseUp, baseDown := manager.OnLinkUp, manager.OnLinkDown
	outageStart := sim.Time(-1)
	manager.OnLinkUp = func(l *lmm.Link) {
		if outageStart >= 0 {
			res.Recoveries = append(res.Recoveries, (eng.Now() - outageStart).Seconds())
			outageStart = -1
		}
		if baseUp != nil {
			baseUp(l)
		}
	}
	manager.OnLinkDown = func(l *lmm.Link) {
		if baseDown != nil {
			baseDown(l)
		}
		if outageStart < 0 && len(manager.ActiveLinks()) == 0 {
			outageStart = eng.Now()
		}
	}

	// Adaptive controller (future-work extension): single channel at
	// speed, multi-channel rotation when slow.
	if cfg.Preset == Adaptive {
		multi := false
		eng.Ticker(1000*1000*1000, func() {
			fast := cfg.Mobility.Speed() >= cfg.AdaptiveSpeedThreshold
			if fast && multi {
				multi = false
				manager.SetSchedule([]driver.Slot{{Channel: c0(cfg)}})
			} else if !fast && !multi {
				multi = true
				var slots []driver.Slot
				for _, ch := range cfg.Channels {
					slots = append(slots, driver.Slot{Channel: ch, Duration: cfg.SlotDuration})
				}
				manager.SetSchedule(slots)
			}
		})
	}

	// Predictive controller (encounter-history extension): learn per-road
	// channel quality from join outcomes, then plan the schedule for the
	// position a few seconds ahead; rotate channels in unexplored areas.
	if cfg.Preset == Predictive {
		hist := predict.New(predict.Config{})
		manager.OnJoin = func(j lmm.JoinRecord) {
			score := 0.0
			switch j.Stage {
			case lmm.StageComplete:
				score = 1.0
			case lmm.StagePingFailed:
				score = -0.2 // joinable but useless (captive): steer away
			case lmm.StageDHCPFailed:
				score = 0.1
			case lmm.StageAssocFailed:
				score = -0.3
			}
			hist.Record(predict.Observation{
				Pos: pos(), Channel: j.Channel, BSSID: j.BSSID, Score: score,
			})
		}
		rotation := cfg.schedule()
		const lookahead = 5 * 1000 * 1000 * 1000
		planned := dot11.Channel(0) // 0 = rotating (exploring)
		eng.Ticker(2*1000*1000*1000, func() {
			ahead := cfg.Mobility.PositionAt(eng.Now() + lookahead)
			if ch, ok := hist.BestChannel(ahead); ok {
				if planned != ch {
					planned = ch
					manager.SetSchedule([]driver.Slot{{Channel: ch}})
				}
				return
			}
			if planned != 0 {
				planned = 0
				manager.SetSchedule(rotation)
			}
		})
	}

	// Sample concurrent-link counts once a second (Section 4.4).
	eng.Ticker(1000*1000*1000, func() {
		res.LinkSeconds[len(manager.ActiveLinks())]++
	})

	eng.Run(cfg.Duration)

	res.ThroughputKBps = float64(res.BytesReceived) / 1024 / cfg.Duration.Seconds()
	res.Connectivity = series.ConnectivityFraction(cfg.Duration)
	res.ConnectionDurations = series.ConnectionDurations(cfg.Duration)
	res.DisruptionDurations = series.DisruptionDurations(cfg.Duration)
	for _, r := range series.NonzeroRates(cfg.Duration) {
		res.InstRatesKBps = append(res.InstRatesKBps, r/1024)
	}
	for _, r := range series.Rates(cfg.Duration) {
		res.PerSecondKBps = append(res.PerSecondKBps, r/1024)
	}
	if inj != nil {
		res.Chaos = inj.Stats()
	}
	res.Joins = manager.Joins()
	res.LMM = manager.Stats()
	res.Driver = drv.Stats()
	res.Medium = medium.Stats()
	res.Energy = energy.Compute(energy.DefaultProfile(), drv.TxAirtime(), drv.SwitchTime(), cfg.Duration)
	res.EnergyPerBitMicroJ = res.Energy.PerBitMicroJ(res.BytesReceived)
	return res
}

func c0(cfg ScenarioConfig) dot11.Channel { return cfg.PrimaryChannel }
