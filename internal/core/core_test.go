package core

import (
	"bytes"
	"testing"
	"time"

	"spider/internal/capture"
	"spider/internal/chaos"
	"spider/internal/sim"

	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/lmm"
	"spider/internal/mobility"
)

// road builds a straight drive past APs on the given channels, one every
// 200 m starting at x=150, all directly on the road.
func road(channels ...dot11.Channel) ([]mobility.APSite, mobility.Model, time.Duration) {
	var sites []mobility.APSite
	for i, ch := range channels {
		sites = append(sites, mobility.APSite{
			Pos:         geo.Point{X: 150 + float64(i)*200, Y: 0},
			Channel:     ch,
			SSID:        "site-" + string(rune('a'+i)),
			Open:        true,
			BackhaulBps: 2e6,
		})
	}
	length := 300 + float64(len(channels))*200
	model := mobility.NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: length, Y: 0}}, 10, false)
	dur := time.Duration(length/10) * time.Second
	return sites, model, dur
}

func TestDriveBySingleAP(t *testing.T) {
	sites, model, dur := road(dot11.Channel1)
	res := Run(ScenarioConfig{
		Seed:     1,
		Duration: dur,
		Preset:   SingleChannelMultiAP,
		Mobility: model,
		Sites:    sites,
	})
	if res.BytesReceived == 0 {
		t.Fatal("no data received driving past an AP")
	}
	if res.Connectivity <= 0 || res.Connectivity >= 1 {
		t.Fatalf("connectivity = %v, want in (0,1)", res.Connectivity)
	}
	if res.LinkUps == 0 {
		t.Fatal("no link ever came up")
	}
	complete := 0
	for _, j := range res.Joins {
		if j.Stage == lmm.StageComplete {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("no complete join recorded")
	}
	if res.ThroughputKBps <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestDeterminism(t *testing.T) {
	sites, model, dur := road(dot11.Channel1, dot11.Channel1)
	run := func() Result {
		return Run(ScenarioConfig{Seed: 42, Duration: dur, Preset: SingleChannelMultiAP, Mobility: model, Sites: sites})
	}
	a, b := run(), run()
	if a.BytesReceived != b.BytesReceived || a.LinkUps != b.LinkUps || a.Connectivity != b.Connectivity {
		t.Fatalf("non-deterministic: %+v vs %+v", a.BytesReceived, b.BytesReceived)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	sites, model, dur := road(dot11.Channel1, dot11.Channel1)
	a := Run(ScenarioConfig{Seed: 1, Duration: dur, Preset: SingleChannelMultiAP, Mobility: model, Sites: sites})
	b := Run(ScenarioConfig{Seed: 2, Duration: dur, Preset: SingleChannelMultiAP, Mobility: model, Sites: sites})
	if a.BytesReceived == b.BytesReceived {
		t.Fatal("different seeds produced byte-identical results (suspicious)")
	}
}

func TestDisableTraffic(t *testing.T) {
	sites, model, dur := road(dot11.Channel1)
	res := Run(ScenarioConfig{
		Seed: 1, Duration: dur, Preset: SingleChannelMultiAP,
		Mobility: model, Sites: sites, DisableTraffic: true,
	})
	if res.BytesReceived != 0 {
		t.Fatal("traffic flowed despite DisableTraffic")
	}
	if len(res.Joins) == 0 {
		t.Fatal("no joins recorded in join-only mode")
	}
}

func TestMultiAPBeatsSingleAPOnSameChannel(t *testing.T) {
	// Two overlapping APs on channel 1: multi-AP aggregates both backhauls.
	var sites []mobility.APSite
	for i := 0; i < 2; i++ {
		sites = append(sites, mobility.APSite{
			Pos:     geo.Point{X: 300, Y: float64(10 * i)},
			Channel: dot11.Channel1, SSID: "twin-" + string(rune('a'+i)),
			Open: true, BackhaulBps: 1e6,
		})
	}
	model := mobility.NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 600, Y: 0}}, 5, false)
	dur := 2 * time.Minute
	multi := Run(ScenarioConfig{Seed: 3, Duration: dur, Preset: SingleChannelMultiAP, Mobility: model, Sites: sites})
	single := Run(ScenarioConfig{Seed: 3, Duration: dur, Preset: SingleChannelSingleAP, Mobility: model, Sites: sites})
	if multi.BytesReceived <= single.BytesReceived {
		t.Fatalf("multi-AP %d <= single-AP %d bytes", multi.BytesReceived, single.BytesReceived)
	}
}

func TestStockPresetRuns(t *testing.T) {
	sites, model, dur := road(dot11.Channel1, dot11.Channel6)
	res := Run(ScenarioConfig{Seed: 5, Duration: dur, Preset: Stock, Mobility: model, Sites: sites})
	// Stock must at least occasionally connect somewhere.
	if res.LinkUps == 0 {
		t.Fatal("stock driver never connected")
	}
}

func TestAdaptivePresetSwitchesModes(t *testing.T) {
	// Slow client (below the 10 m/s threshold): adaptive should move to the
	// multi-channel schedule and still work.
	sites, _, _ := road(dot11.Channel1, dot11.Channel6, dot11.Channel11)
	model := mobility.NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: 900, Y: 0}}, 3, false)
	res := Run(ScenarioConfig{
		Seed: 7, Duration: 2 * time.Minute, Preset: Adaptive,
		Mobility: model, Sites: sites,
	})
	if res.Driver.Switches == 0 {
		t.Fatal("adaptive mode never rotated channels for a slow client")
	}
	if res.LinkUps == 0 {
		t.Fatal("adaptive mode never connected")
	}
}

func TestFiniteFlows(t *testing.T) {
	sites, model, dur := road(dot11.Channel1)
	res := Run(ScenarioConfig{
		Seed: 9, Duration: dur, Preset: SingleChannelMultiAP,
		Mobility: model, Sites: sites, FlowBytes: 50_000,
	})
	if res.BytesReceived == 0 {
		t.Fatal("finite flow transferred nothing")
	}
	if res.BytesReceived > 50_000 {
		t.Fatalf("received %d > flow bound", res.BytesReceived)
	}
}

func TestLinkSecondsAccounting(t *testing.T) {
	sites, model, dur := road(dot11.Channel1, dot11.Channel1)
	res := Run(ScenarioConfig{Seed: 11, Duration: dur, Preset: SingleChannelMultiAP, Mobility: model, Sites: sites})
	total := 0
	for _, secs := range res.LinkSeconds {
		total += secs
	}
	want := int(dur / time.Second)
	if total != want {
		t.Fatalf("link-seconds total = %d, want %d", total, want)
	}
}

func TestMissingMobilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing mobility did not panic")
		}
	}()
	Run(ScenarioConfig{Seed: 1, Duration: time.Second})
}

func TestCaptiveSiteNeverBecomesALink(t *testing.T) {
	sites := []mobility.APSite{{
		Pos: geo.Point{X: 10, Y: 0}, Channel: dot11.Channel1,
		SSID: "portal", Open: true, BackhaulBps: 2e6, Captive: true,
	}}
	res := Run(ScenarioConfig{
		Seed: 1, Duration: 30 * time.Second, Preset: SingleChannelMultiAP,
		Mobility: mobility.Static(geo.Point{}), Sites: sites,
	})
	if res.LinkUps != 0 {
		t.Fatal("captive portal produced a usable link")
	}
	if res.LMM.PingFailures == 0 {
		t.Fatal("end-to-end test never failed against the portal")
	}
	if res.BytesReceived != 0 {
		t.Fatal("data flowed through a captive portal")
	}
}

func TestDHCPDeadSiteFailsAtDHCP(t *testing.T) {
	sites := []mobility.APSite{{
		Pos: geo.Point{X: 10, Y: 0}, Channel: dot11.Channel1,
		SSID: "deadhcp", Open: true, BackhaulBps: 2e6, DHCPDead: true,
	}}
	res := Run(ScenarioConfig{
		Seed: 1, Duration: 30 * time.Second, Preset: SingleChannelMultiAP,
		Mobility: mobility.Static(geo.Point{}), Sites: sites,
	})
	if res.LinkUps != 0 {
		t.Fatal("dead-DHCP AP produced a link")
	}
	if res.LMM.DHCPFailures == 0 {
		t.Fatal("no DHCP failures recorded against the dead server")
	}
	if res.LMM.AssocFailures != 0 {
		t.Fatal("association should succeed against a dead-DHCP AP")
	}
}

func TestPCAPCaptureDecodes(t *testing.T) {
	sites, model, _ := road(dot11.Channel1)
	var buf bytes.Buffer
	res := Run(ScenarioConfig{
		Seed: 1, Duration: 20 * time.Second, Preset: SingleChannelMultiAP,
		Mobility: model, Sites: sites, PCAP: &buf,
	})
	_ = res
	pkts, err := capture.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 100 {
		t.Fatalf("captured only %d frames in 20s", len(pkts))
	}
	types := map[dot11.FrameType]int{}
	prev := sim.Time(-1)
	for i, p := range pkts {
		f, err := dot11.Decode(p.Data)
		if err != nil {
			t.Fatalf("frame %d undecodable: %v", i, err)
		}
		types[f.Type]++
		if p.At < prev {
			t.Fatalf("capture timestamps not monotone at %d", i)
		}
		prev = p.At
	}
	if types[dot11.TypeBeacon] == 0 {
		t.Fatal("no beacons captured")
	}
}

// segregatedTown builds a loop where each side of the block has all its
// usable APs on ONE channel — the environment where learned per-segment
// channel planning shines.
func segregatedTown() (mobility.Model, []mobility.APSite) {
	loop := []geo.Point{{X: 0, Y: 0}, {X: 1200, Y: 0}, {X: 1200, Y: 600}, {X: 0, Y: 600}}
	chans := []dot11.Channel{dot11.Channel1, dot11.Channel6, dot11.Channel11, dot11.Channel1}
	var sites []mobility.APSite
	id := 0
	closed := append(append([]geo.Point(nil), loop...), loop[0])
	for seg := 0; seg < 4; seg++ {
		a, b := closed[seg], closed[seg+1]
		for f := 0.1; f < 1; f += 0.2 {
			p := geo.Lerp(a, b, f)
			sites = append(sites, mobility.APSite{
				Pos: geo.Point{X: p.X, Y: p.Y + 15}, Channel: chans[seg],
				SSID: "seg-" + string(rune('a'+id)), Open: true, BackhaulBps: 3e6,
			})
			id++
		}
	}
	return mobility.NewWaypoints(loop, 10, true), sites
}

func TestPredictiveLearnsSegmentChannels(t *testing.T) {
	mob, sites := segregatedTown()
	dur := 18 * time.Minute // ~3 laps
	pred := Run(ScenarioConfig{Seed: 5, Duration: dur, Preset: Predictive, Mobility: mob, Sites: sites})
	rot := Run(ScenarioConfig{Seed: 5, Duration: dur, Preset: MultiChannelMultiAP, Mobility: mob, Sites: sites})
	if pred.LinkUps == 0 {
		t.Fatal("predictive never connected")
	}
	if pred.BytesReceived <= rot.BytesReceived {
		t.Fatalf("predictive %d bytes <= static rotation %d bytes on a segregated town",
			pred.BytesReceived, rot.BytesReceived)
	}
}

func TestChaosCrashRecoveryAndGoodputRetention(t *testing.T) {
	// The ISSUE's acceptance scenario: a static client striping through one
	// AP, which crashes mid-run and reboots 10s later. The LMM must tear
	// the dead link down, rejoin after the reboot within a bounded time,
	// and goodput must return to >= 90% of the pre-fault level.
	sites := []mobility.APSite{{
		Pos: geo.Point{X: 10, Y: 0}, Channel: dot11.Channel1,
		SSID: "chaos-a", Open: true, BackhaulBps: 2e6,
	}}
	sec := sim.Time(time.Second)
	plan := chaos.Plan{Events: []chaos.Event{
		{At: 40 * sec, Kind: chaos.APCrash, AP: 0, Duration: 10 * sec},
	}}
	res := Run(ScenarioConfig{
		Seed: 1, Duration: 150 * time.Second, Preset: SingleChannelMultiAP,
		Mobility: mobility.Static(geo.Point{}), Sites: sites, Chaos: &plan,
	})
	if res.Chaos.Crashes != 1 || res.Chaos.Reboots != 1 {
		t.Fatalf("chaos stats = %+v, want 1 crash + 1 scheduled reboot", res.Chaos)
	}
	if res.LinkDowns == 0 {
		t.Fatal("the crash never tore the link down")
	}
	if res.LinkUps < 2 {
		t.Fatalf("LinkUps = %d, want the pre-fault join plus a post-reboot rejoin", res.LinkUps)
	}
	// Every outage must close, within a bounded recovery time. The reboot
	// lands at t=50s; teardown, backoff, rescan, and rejoin are each
	// bounded, so 30s covers the worst case with margin.
	if len(res.Recoveries) == 0 {
		t.Fatal("no recovery recorded: the outage never closed")
	}
	if len(res.Recoveries) < res.LinkDowns {
		t.Fatalf("recoveries = %d < link downs = %d: an outage is still open (wedged conn)",
			len(res.Recoveries), res.LinkDowns)
	}
	for _, r := range res.Recoveries {
		if r > 30 {
			t.Fatalf("recovery took %.1fs, want < 30s", r)
		}
	}
	// Goodput retention: compare steady windows before the fault and after
	// the worst-case recovery horizon.
	if len(res.PerSecondKBps) != 150 {
		t.Fatalf("PerSecondKBps has %d buckets, want 150", len(res.PerSecondKBps))
	}
	mean := func(lo, hi int) float64 {
		sum := 0.0
		for _, v := range res.PerSecondKBps[lo:hi] {
			sum += v
		}
		return sum / float64(hi-lo)
	}
	pre := mean(10, 40)
	post := mean(80, 150)
	if pre <= 0 {
		t.Fatal("no pre-fault goodput")
	}
	if post < 0.9*pre {
		t.Fatalf("post-recovery goodput %.1f KB/s < 90%% of pre-fault %.1f KB/s", post, pre)
	}
}

func TestChaosDeterminism(t *testing.T) {
	sites, model, dur := road(dot11.Channel1, dot11.Channel1)
	sec := sim.Time(time.Second)
	plan := chaos.Plan{
		Events: []chaos.Event{{At: 20 * sec, Kind: chaos.APCrash, AP: 0, Duration: 8 * sec}},
		Procs: []chaos.Process{
			{Kind: chaos.DHCPSilence, Mean: 30 * sec, Duration: 5 * sec, AP: chaos.RandomAP},
			{Kind: chaos.NoiseBurst, Mean: 40 * sec, Duration: 3 * sec, Channel: dot11.Channel1, Loss: 0.4},
		},
	}
	run := func() Result {
		p := plan
		return Run(ScenarioConfig{Seed: 42, Duration: dur, Preset: SingleChannelMultiAP,
			Mobility: model, Sites: sites, Chaos: &p})
	}
	a, b := run(), run()
	if a.BytesReceived != b.BytesReceived || a.LinkUps != b.LinkUps ||
		a.Chaos != b.Chaos || len(a.Recoveries) != len(b.Recoveries) {
		t.Fatalf("chaos runs diverged: %+v vs %+v", a.Chaos, b.Chaos)
	}
	for i := range a.Recoveries {
		if a.Recoveries[i] != b.Recoveries[i] {
			t.Fatalf("recovery %d differs: %v vs %v", i, a.Recoveries[i], b.Recoveries[i])
		}
	}
	if a.Chaos.Injected == 0 {
		t.Fatal("the plan injected nothing")
	}
}
