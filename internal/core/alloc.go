package core

import (
	"fmt"
	"sort"

	"spider/internal/alloc"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/ipnet"
	"spider/internal/obs"
	"spider/internal/opt"
)

// allocController drives the fairness allocator over a live scenario. One
// controller per scenario, ticking every Config.Epoch:
//
//   - Oracle: re-solves the proportional-fair association (opt.SolvePF)
//     with full knowledge of client positions, AP channels, backhauls, and
//     crash state; pins each client's LMM to its assigned AP and paces its
//     flows to the modeled equal-airtime share.
//
//   - Decentralized: association is already handled inside each client's
//     LMM by its alloc.Policy; the controller only re-paces each client's
//     flows to the policy's self-inferred share, exactly as a client-local
//     daemon would.
//
// Everything iterates clients in materialization order and flows in
// address order, so an epoch is a pure function of the world state.
type allocController struct {
	s   *Scenario
	cfg alloc.Config

	// Previous decision per client ID: assignment hysteresis for the PF
	// solver and change-detection for event emission and re-scheduling.
	lastAP   map[int]int
	lastPace map[int]float64
	lastCh   map[int]dot11.Channel

	// Scratch reused across epochs to keep the steady-state tick from
	// allocating.
	prob    opt.PFProblem
	active  []*Client
	ipOrder []ipnet.Addr
}

func newAllocController(s *Scenario) *allocController {
	return &allocController{
		s:        s,
		cfg:      s.cfg.Alloc.WithDefaults(),
		lastAP:   make(map[int]int),
		lastPace: make(map[int]float64),
		lastCh:   make(map[int]dot11.Channel),
	}
}

func (a *allocController) epoch() {
	switch a.cfg.Variant {
	case alloc.Oracle:
		a.oracleEpoch()
	case alloc.Decentralized:
		a.decentralizedEpoch()
	default:
		return
	}
	a.applyPacing()
}

// liveClients collects the clients whose stacks exist right now, in the
// scenario's deterministic materialization order.
func (a *allocController) liveClients() []*Client {
	cs := a.active[:0]
	for _, c := range a.s.clients {
		if c.manager != nil {
			cs = append(cs, c)
		}
	}
	a.active = cs
	return cs
}

// oracleEpoch re-solves the PF association and steers every live client.
func (a *allocController) oracleEpoch() {
	s := a.s
	clients := a.liveClients()
	if len(clients) == 0 {
		return
	}

	// Problem snapshot: one AP per site (Sites order matches apList), one
	// rate row per live client. An AP a client cannot use right now — out
	// of schedule, crashed, closed, or known-broken (the oracle has full
	// knowledge, including DHCP-dead and captive sites) — is marked
	// unreachable with a zero rate.
	aps := a.prob.APs[:0]
	for i, site := range s.cfg.Sites {
		aps = append(aps, opt.PFAP{
			Channel:     int(s.apList[i].Channel()),
			CapacityBps: site.BackhaulBps,
		})
	}
	a.prob.APs = aps
	if cap(a.prob.RateBps) < len(clients) {
		a.prob.RateBps = make([][]float64, len(clients))
	}
	a.prob.RateBps = a.prob.RateBps[:len(clients)]
	if cap(a.prob.Initial) < len(clients) {
		a.prob.Initial = make([]int, len(clients))
	}
	a.prob.Initial = a.prob.Initial[:len(clients)]

	params := s.medium.Params()
	for ci, c := range clients {
		row := a.prob.RateBps[ci]
		if cap(row) < len(aps) {
			row = make([]float64, len(aps))
		}
		row = row[:len(aps)]
		pos := c.pos()
		for i, site := range s.cfg.Sites {
			switch {
			case !site.Open, site.DHCPDead, site.Captive,
				s.apList[i].Crashed():
				row[i] = 0
			default:
				row[i] = params.ExpectedThroughput(pos.Distance(site.Pos))
			}
		}
		a.prob.RateBps[ci] = row
		if prev, ok := a.lastAP[c.id]; ok {
			a.prob.Initial[ci] = prev
		} else {
			a.prob.Initial[ci] = -1
		}
	}

	a.prob.SwitchMargin = a.cfg.SwitchMargin
	sol := opt.SolvePF(a.prob)

	// Per-AP and per-channel station counts under the solved assignment:
	// a client alone on both its AP and its channel has nobody to share
	// with and runs unpaced — pacing exists to hold a fair share, not to
	// tax an uncontended link.
	var chCount [16]int
	apCount := make([]int, len(aps))
	for _, apIdx := range sol.Assign {
		if apIdx >= 0 {
			apCount[apIdx]++
			if ch := aps[apIdx].Channel; ch >= 0 && ch < 16 {
				chCount[ch]++
			}
		}
	}

	now := s.eng.Now()
	moves := 0
	for ci, c := range clients {
		apIdx := sol.Assign[ci]
		var target dot11.MACAddr
		var ch dot11.Channel
		pace := 0.0
		if apIdx >= 0 {
			target = s.apList[apIdx].BSSID()
			ch = s.apList[apIdx].Channel()
			pace = a.cfg.Headroom * sol.ThroughputBps[ci]
			if apCount[apIdx] == 1 && int(ch) < 16 && chCount[ch] == 1 {
				pace = 0
			}
			// The oracle owns the client's airtime, schedule included:
			// camp the radio on the assigned AP's channel. A rotating
			// multi-channel schedule would leave the client off-channel
			// two slots out of three — airtime the allocation already
			// granted to someone on another channel.
			if prev, ok := a.lastCh[c.id]; !ok || prev != ch {
				c.manager.SetSchedule([]driver.Slot{{Channel: ch}})
				a.lastCh[c.id] = ch
			}
		}
		c.manager.SetAllocTarget(target)
		prevAP, seen := a.lastAP[c.id]
		changed := !seen || prevAP != apIdx || paceChanged(a.lastPace[c.id], pace)
		if seen && prevAP != apIdx {
			moves++
		}
		a.lastAP[c.id] = apIdx
		a.lastPace[c.id] = pace
		c.allocPace = pace
		if changed && c.events.Enabled() {
			c.events.Emit(obs.Event{
				At:      now,
				Kind:    obs.KindAllocAssign,
				BSSID:   target.String(),
				Channel: int(ch),
				Value:   int64(pace),
				Note:    "oracle",
			})
		}
	}
	// One world span tile per epoch summarizing how much the solution
	// moved — the frontier experiments read these to see steering churn.
	if sp := s.cfg.Obs.World().StartSpan(now-a.cfg.Epoch, "alloc"); sp != nil {
		sp.SetStatus(fmt.Sprintf("oracle n=%d moved=%d", len(clients), moves))
		sp.End(now)
	}
}

// decentralizedEpoch re-paces each client's flows from its own policy's
// inferred fair share. Association is the policy's job inside the LMM;
// only pacing needs the flow map, which lives up here.
func (a *allocController) decentralizedEpoch() {
	s := a.s
	now := s.eng.Now()
	for _, c := range a.liveClients() {
		if c.allocPol == nil {
			continue
		}
		links := c.manager.ActiveLinks()
		if len(links) == 0 {
			c.allocPace = 0
			continue
		}
		l := links[0]
		rssi, ok := scanRSSI(c.drv, l.BSSID)
		if !ok {
			continue // AP fell out of the scan table; keep the last pace
		}
		pace := c.allocPol.PaceBps(l.VIF.Channel(), rssi)
		if paceChanged(a.lastPace[c.id], pace) && c.events.Enabled() {
			c.events.Emit(obs.Event{
				At:      now,
				Kind:    obs.KindAllocAssign,
				BSSID:   l.BSSID.String(),
				Channel: int(l.VIF.Channel()),
				Value:   int64(pace),
				Note:    "decentralized",
			})
		}
		a.lastPace[c.id] = pace
		c.allocPace = pace
	}
}

// applyPacing pushes every client's current pace onto its live senders,
// walking flows in address order so the (rarely taken) wake-a-stalled-
// sender path fires in a deterministic sequence.
func (a *allocController) applyPacing() {
	s := a.s
	ips := a.ipOrder[:0]
	for ip := range s.flows {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	a.ipOrder = ips
	for _, ip := range ips {
		c := s.byID[serverIPOwner(ip)]
		if c == nil {
			continue
		}
		s.flows[ip].snd.SetPaceBps(c.allocPace)
	}
}

// paceChanged reports a materially different pacing target (>1% relative,
// or appearing/vanishing) — the event-dedup threshold.
func paceChanged(prev, next float64) bool {
	if prev == next {
		return false
	}
	if prev <= 0 || next <= 0 {
		return true
	}
	d := next - prev
	if d < 0 {
		d = -d
	}
	return d > prev/100
}

// scanRSSI finds the driver's current RSSI reading toward a BSSID.
func scanRSSI(d *driver.Driver, bssid dot11.MACAddr) (float64, bool) {
	for _, e := range d.ScanTable() {
		if e.BSSID == bssid {
			return e.RSSI, true
		}
	}
	return 0, false
}
