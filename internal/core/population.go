package core

import (
	"spider/internal/ipam"
	"spider/internal/phy"
	"spider/internal/stats"
)

// PopulationResult aggregates one N-client scenario: the per-client
// Results plus the population-scale numbers the scaling experiments
// report — aggregate and per-client goodput, Jain's fairness index, and
// the world's contention and DHCP-pool-pressure counters.
type PopulationResult struct {
	// Clients holds every client's Result in ID order.
	Clients []Result

	// AggregateKBps is the population's total delivered goodput.
	AggregateKBps float64
	// MeanKBps, P50KBps, P95KBps summarize the per-client goodput
	// distribution.
	MeanKBps float64
	P50KBps  float64
	P95KBps  float64
	// JainFairness is Jain's index over per-client goodput: 1 when the
	// medium is shared evenly, toward 1/n as it collapses onto one
	// client.
	JainFairness float64
	// MeanConnectivity averages per-client connected-second fractions.
	MeanConnectivity float64

	// DHCPPoolExhausted counts lease requests refused across all APs
	// because the address pool was full.
	DHCPPoolExhausted int
	// IPAM snapshots the address plane's counters: allocations, backup-pool
	// failovers, expiry-sweep reclaims, and the typed refusal split
	// (exhaustion vs conflict).
	IPAM ipam.Stats
	// Medium snapshots the shared medium (airtime contention shows up as
	// Collisions and retries here).
	Medium phy.Stats
}

// RunPopulation executes one scenario with the given clients and returns
// the per-client results plus population aggregates. Clients may be listed
// in any order; results come back in ID order.
func RunPopulation(world WorldConfig, clients []ClientConfig) PopulationResult {
	s := NewScenario(world)
	for _, cc := range clients {
		s.AddClient(cc)
	}
	results := s.Run()

	p := PopulationResult{
		Clients:           results,
		DHCPPoolExhausted: s.DHCPPoolExhausted(),
		IPAM:              s.IPAM().Stats(),
	}
	goodputs := make([]float64, len(results))
	for i, r := range results {
		goodputs[i] = r.ThroughputKBps
		p.AggregateKBps += r.ThroughputKBps
		p.MeanConnectivity += r.Connectivity
	}
	if len(results) > 0 {
		p.MeanKBps = p.AggregateKBps / float64(len(results))
		p.MeanConnectivity /= float64(len(results))
		p.Medium = results[0].Medium
	}
	p.P50KBps = stats.Percentile(goodputs, 0.50)
	p.P95KBps = stats.Percentile(goodputs, 0.95)
	p.JainFairness = stats.Jain(goodputs)
	return p
}
