package core

import (
	"fmt"
	"sort"

	"spider/internal/alloc"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/energy"
	"spider/internal/geo"
	"spider/internal/ipnet"
	"spider/internal/lmm"
	"spider/internal/mempool"
	"spider/internal/obs"
	"spider/internal/predict"
	"spider/internal/sim"
	"spider/internal/stats"
	"spider/internal/tcpsim"
)

// maxFlowsPerClient bounds the per-client server-IP namespace: a 16-bit
// counter inside the client's /24-pair of the flow-server range.
const maxFlowsPerClient = 0xFFFF

// Client is one mobile station of a Scenario: a radio position, a virtual
// driver, a link manager, and the TCP receivers of its downloads, all
// accounted into a per-client Result. Clients are built by Scenario.Run
// (at StartOffset, if any); everything here is deterministic given the
// client's Derive'd RNG.
type Client struct {
	s   *Scenario
	cfg ClientConfig
	id  int

	drv     *driver.Driver
	manager *lmm.LMM
	series  *stats.TimeSeries
	res     Result

	// nextServer namespaces flow server IPs per client (satellite of the
	// N-client refactor): client i allocates from 203.i.0.0/16, so two
	// clients can never collide and exhaustion fails loudly.
	nextServer uint32
	// outageStart tracks this client's open outage window (-1 = none);
	// per-client state so populations account outages independently.
	outageStart sim.Time
	// events is this client's structured timeline (nil no-op when the
	// world has no recorder); lastBSSID detects handoffs across link-ups.
	events    *obs.ClientLog
	lastBSSID dot11.MACAddr
	// outSpan is the open cause-attributed outage span; linkSpans the open
	// per-link spans (a multi-VIF client can hold several at once).
	outSpan   *obs.ActiveSpan
	linkSpans map[*lmm.Link]*obs.ActiveSpan
	// wire backs serialized TCP segments on this client's flows; the
	// driver and AP copy payloads onward, and arena bytes are never
	// reused, so aliasing is safe.
	wire mempool.ByteArena

	// allocPol is this client's decentralized fairness policy (nil unless
	// WorldConfig.Alloc selects the Decentralized variant); allocPace is
	// the pacing target the allocator last set for the client's flows,
	// applied to live senders each epoch and to new flows at start
	// (0 = unpaced).
	allocPol  *alloc.Policy
	allocPace float64
}

func newClient(s *Scenario, cfg ClientConfig) *Client {
	c := &Client{s: s, cfg: cfg, id: cfg.ID, outageStart: -1,
		linkSpans: make(map[*lmm.Link]*obs.ActiveSpan)}
	c.series = stats.NewTimeSeries(statsBucket)
	c.res = Result{ClientID: cfg.ID, Preset: cfg.Preset, Seed: s.cfg.Seed,
		Duration: s.cfg.Duration, LinkSeconds: map[int]int{}}
	return c
}

// MAC returns the client's stable radio address (derived from its ID; the
// AP address block starts at 0x100000, far above any client).
func (c *Client) MAC() dot11.MACAddr { return dot11.MAC(uint32(1 + c.id)) }

// modelTime maps engine time onto the mobility model's clock: a client
// entering the world at StartOffset starts at the beginning of its route.
func (c *Client) modelTime(now sim.Time) sim.Time {
	t := now - c.cfg.StartOffset
	if t < 0 {
		t = 0
	}
	return t
}

func (c *Client) pos() geo.Point {
	return c.cfg.Mobility.PositionAt(c.modelTime(c.s.eng.Now()))
}

// nextServerIP allocates this client's next flow server address from its
// private block, failing loudly on exhaustion rather than wrapping into a
// neighbour's. Clients 0..255 keep the original 203.<id>.0.0/16 carve;
// the rush-hour population IDs above that get a /24 each out of
// 204.0.0.0/8 — those scenarios run join-only traffic, so the smaller
// per-client flow namespace holds comfortably.
func (c *Client) nextServerIP() ipnet.Addr {
	c.nextServer++
	if c.id < 256 {
		if c.nextServer > maxFlowsPerClient {
			panic(fmt.Sprintf("core: client %d exhausted its flow server-IP space (%d flows)",
				c.id, maxFlowsPerClient))
		}
		return ipnet.AddrFrom4(203, byte(c.id), byte(c.nextServer>>8), byte(c.nextServer))
	}
	if c.nextServer > 0xFF {
		panic(fmt.Sprintf("core: client %d exhausted its flow server-IP space (%d flows)",
			c.id, 0xFF))
	}
	ext := uint32(c.id - 256)
	return ipnet.AddrFrom4(204, byte(ext>>8), byte(ext), byte(c.nextServer))
}

// ownsServerIP reports whether a flow server address was allocated from
// this client's private block (the inverse of nextServerIP's carve).
func (c *Client) ownsServerIP(ip ipnet.Addr) bool {
	if c.id < 256 {
		return byte(ip>>24) == 203 && byte(ip>>16) == byte(c.id)
	}
	ext := uint32(c.id - 256)
	return byte(ip>>24) == 204 && byte(ip>>16) == byte(ext>>8) && byte(ip>>8) == byte(ext)
}

// build materializes the client's stack. Called by Scenario.Run, either
// immediately or at StartOffset.
func (c *Client) build(rng *sim.RNG) {
	s, cfg, eng := c.s, c.cfg, c.s.eng

	c.events = s.cfg.Obs.Client(c.id)
	reg := s.cfg.Obs.Metrics()
	drvCfg := driver.Config{
		NumVIFs:       cfg.NumVIFs,
		LLTimeout:     cfg.Timers.LLTimeout,
		ProbeInterval: probeInterval,
		Events:        c.events,
		Obs:           reg,
	}
	c.drv = driver.New(eng, rng.Stream("driver"), s.medium, c.MAC(), c.pos, drvCfg)
	lcfg := cfg.lmmConfig()
	lcfg.Events = c.events
	lcfg.Obs = reg
	if w := s.cfg.Alloc; w != nil && w.Variant == alloc.Decentralized {
		c.allocPol = alloc.NewPolicy(*w, c.id, s.medium.Params())
		lcfg.Alloc = c.allocPol
	}
	c.manager = lmm.New(eng, rng.Stream("lmm"), c.drv, lcfg)
	manager := c.manager

	switch {
	case cfg.DisableTraffic:
		manager.OnLinkUp = func(*lmm.Link) { c.res.LinkUps++ }
		manager.OnLinkDown = func(*lmm.Link) { c.res.LinkDowns++ }
	case cfg.StripeObjectBytes > 0:
		wireStriping(eng, cfg.StripeObjectBytes, &c.res, manager, c.startFlow, c.stopLinkFlows)
	default:
		manager.OnLinkUp = func(l *lmm.Link) {
			c.res.LinkUps++
			total := cfg.FlowBytes
			if total <= 0 {
				total = -1
			}
			c.startFlow(l, total, nil)
		}
		manager.OnLinkDown = func(l *lmm.Link) {
			c.res.LinkDowns++
			c.stopLinkFlows(l)
		}
	}

	// Outage accounting: an outage opens when this client's last live
	// link drops and closes at its next established link — per-client
	// state, so one client's outage never bleeds into another's record.
	// The LMM resets the dying conn before notifying, so ActiveLinks is
	// already post-drop here.
	baseUp, baseDown := manager.OnLinkUp, manager.OnLinkDown
	manager.OnLinkUp = func(l *lmm.Link) {
		// Event payloads render BSSIDs; the Enabled guards keep the
		// disabled path from building those strings at all.
		if c.events.Enabled() {
			c.events.Emit(obs.Event{
				At:    eng.Now(),
				Kind:  obs.KindLinkUp,
				BSSID: l.BSSID.String(),
			})
			if ls := c.events.StartSpan(eng.Now(), "link"); ls != nil {
				ls.SetBSSID(l.BSSID.String())
				ls.SetChannel(int(l.VIF.Channel()))
				c.linkSpans[l] = ls
			}
			if c.lastBSSID != (dot11.MACAddr{}) && c.lastBSSID != l.BSSID {
				c.events.Emit(obs.Event{
					At:    eng.Now(),
					Kind:  obs.KindHandoff,
					BSSID: l.BSSID.String(),
					Note:  c.lastBSSID.String(),
				})
			}
		}
		c.lastBSSID = l.BSSID
		if c.outageStart >= 0 {
			outage := eng.Now() - c.outageStart
			c.res.Recoveries = append(c.res.Recoveries, outage.Seconds())
			c.outageStart = -1
			if c.events.Enabled() {
				c.events.Emit(obs.Event{
					At:    eng.Now(),
					Kind:  obs.KindOutageEnd,
					Value: int64(outage),
				})
			}
			c.outSpan.End(eng.Now())
			c.outSpan = nil
		}
		if baseUp != nil {
			baseUp(l)
		}
	}
	manager.OnLinkDown = func(l *lmm.Link) {
		if c.events.Enabled() {
			c.events.Emit(obs.Event{
				At:    eng.Now(),
				Kind:  obs.KindLinkDown,
				BSSID: l.BSSID.String(),
				Note:  l.DownCause,
			})
		}
		if ls := c.linkSpans[l]; ls != nil {
			ls.EndStatus(eng.Now(), l.DownCause)
			delete(c.linkSpans, l)
		}
		if baseDown != nil {
			baseDown(l)
		}
		if c.outageStart < 0 && len(manager.ActiveLinks()) == 0 {
			c.outageStart = eng.Now()
			cause := c.classifyOutage(l)
			if c.events.Enabled() {
				c.events.Emit(obs.Event{
					At:   eng.Now(),
					Kind: obs.KindOutageBegin,
					Note: cause,
				})
				c.outSpan = c.events.StartSpan(eng.Now(), "outage")
				c.outSpan.SetBSSID(l.BSSID.String())
				c.outSpan.SetStatus(cause)
			}
		}
	}

	// Adaptive controller (future-work extension): single channel at
	// speed, multi-channel rotation when slow.
	if cfg.Preset == Adaptive {
		multi := false
		eng.Ticker(adaptiveCheckInterval, func() {
			fast := cfg.Mobility.Speed() >= cfg.AdaptiveSpeedThreshold
			if fast && multi {
				multi = false
				manager.SetSchedule([]driver.Slot{{Channel: cfg.PrimaryChannel}})
			} else if !fast && !multi {
				multi = true
				var slots []driver.Slot
				for _, ch := range cfg.Channels {
					slots = append(slots, driver.Slot{Channel: ch, Duration: cfg.SlotDuration})
				}
				manager.SetSchedule(slots)
			}
		})
	}

	// Predictive controller (encounter-history extension): learn per-road
	// channel quality from join outcomes, then plan the schedule for the
	// position a few seconds ahead; rotate channels in unexplored areas.
	if cfg.Preset == Predictive {
		hist := predict.New(predict.Config{})
		manager.OnJoin = func(j lmm.JoinRecord) {
			score := 0.0
			switch j.Stage {
			case lmm.StageComplete:
				score = 1.0
			case lmm.StagePingFailed:
				score = -0.2 // joinable but useless (captive): steer away
			case lmm.StageDHCPFailed:
				score = 0.1
			case lmm.StageAssocFailed:
				score = -0.3
			}
			hist.Record(predict.Observation{
				Pos: c.pos(), Channel: j.Channel, BSSID: j.BSSID, Score: score,
			})
		}
		rotation := cfg.schedule()
		planned := dot11.Channel(0) // 0 = rotating (exploring)
		eng.Ticker(predictiveReplanInterval, func() {
			ahead := cfg.Mobility.PositionAt(c.modelTime(eng.Now()) + predictiveLookahead)
			if ch, ok := hist.BestChannel(ahead); ok {
				if planned != ch {
					planned = ch
					manager.SetSchedule([]driver.Slot{{Channel: ch}})
				}
				return
			}
			if planned != 0 {
				planned = 0
				manager.SetSchedule(rotation)
			}
		})
	}

	// Sample concurrent-link counts once a second (Section 4.4).
	eng.Ticker(statsBucket, func() {
		c.res.LinkSeconds[len(manager.ActiveLinks())]++
	})
}

// classifyOutage attributes a fresh outage to a cause, in precedence
// order: an injected fault active right now ("chaos-fault:<cause>"), a
// link demoted for an expiring lease ("lease-expiry"), no joinable AP in
// radio range ("out-of-range"), every visible open AP's address plane dry
// ("ipam-exhausted" — the radio is fine, the pools ran out), and otherwise
// "contention" — APs are visible and healthy but the join pipeline lost
// the race for them.
func (c *Client) classifyOutage(l *lmm.Link) string {
	if cause := c.s.activeFaultCause(); cause != "" {
		return "chaos-fault:" + cause
	}
	if l.DownCause == "lease-expiry" {
		return "lease-expiry"
	}
	open, starved := false, true
	for _, e := range c.drv.ScanTable() {
		if !e.Open {
			continue
		}
		open = true
		a := c.s.aps[e.BSSID]
		if a == nil || a.Crashed() || !a.DHCPServer().Exhausted() {
			starved = false
		}
	}
	switch {
	case !open:
		return "out-of-range"
	case starved:
		return "ipam-exhausted"
	default:
		return "contention"
	}
}

// startFlow opens one TCP download of total bytes (negative for unbounded)
// through the link; onDone (optional) fires when a finite flow completes.
func (c *Client) startFlow(l *lmm.Link, total int64, onDone func()) *flow {
	s, eng := c.s, c.s.eng
	access := s.aps[l.BSSID]
	if access == nil {
		return nil
	}
	serverIP := c.nextServerIP()
	f := &flow{serverIP: serverIP, access: access, link: l}
	lease := l.Lease
	f.rcv = tcpsim.NewReceiver(eng,
		func(seg tcpsim.Segment) {
			l.Send(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: ipnet.DefaultTTL,
				Src: lease.IP, Dst: serverIP, Payload: seg.AppendTo(c.wire.Take(seg.WireLen()))})
		},
		func(n int, at sim.Time) {
			c.series.Add(at, float64(n))
			c.res.BytesReceived += int64(n)
			s.cfg.Telemetry.AddGoodput(c.id, at, n)
		})
	f.snd = tcpsim.NewSender(eng, tcpsim.Config{},
		func(seg tcpsim.Segment) {
			access.FromInternet(ipnet.Packet{Proto: ipnet.ProtoTCP, TTL: ipnet.DefaultTTL,
				Src: serverIP, Dst: lease.IP, Payload: seg.AppendTo(c.wire.Take(seg.WireLen()))})
		}, func() {
			delete(s.flows, serverIP)
			if onDone != nil {
				onDone()
			}
		})
	l.OnPacket = func(p ipnet.Packet) {
		if p.Proto != ipnet.ProtoTCP || p.Src != serverIP {
			return
		}
		if seg, err := tcpsim.DecodeSegment(p.Payload); err == nil {
			f.rcv.Deliver(seg)
		}
	}
	if tel := s.cfg.Telemetry; tel != nil {
		f.snd.OnRTT = func(at, sample sim.Time) { tel.AddRTT(c.id, at, sample) }
	}
	if c.allocPace > 0 {
		f.snd.SetPaceBps(c.allocPace)
	}
	s.flows[serverIP] = f
	f.snd.Start(total)
	return f
}

// serverIPOwner inverts nextServerIP's carve: the client ID a flow server
// address belongs to, or -1 for an address outside the flow ranges.
func serverIPOwner(ip ipnet.Addr) int {
	switch byte(ip >> 24) {
	case 203:
		return int(byte(ip >> 16))
	case 204:
		return 256 + int(byte(ip>>16))<<8 + int(byte(ip>>8))
	}
	return -1
}

// stopLinkFlows stops every flow of this client riding the given link.
func (c *Client) stopLinkFlows(l *lmm.Link) {
	// Stop in address order: Stop may touch the event queue, and the
	// teardown order must not depend on map iteration for determinism.
	var ips []ipnet.Addr
	for ip, f := range c.s.flows {
		if f.link == l {
			ips = append(ips, ip)
		}
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		c.s.flows[ip].snd.Stop()
		delete(c.s.flows, ip)
	}
}

// StartFlows opens one bulk TCP download of total bytes (non-positive for
// unbounded) on each of the client's currently active links and returns
// how many flows started. Links are walked in the manager's deterministic
// order, so replaying a start-flow intent at the same virtual time
// reproduces the same transfers. Zero when the stack isn't built yet or
// no link is up — the serve API reports that back to the caller.
func (c *Client) StartFlows(total int64) int {
	if c.manager == nil {
		return 0
	}
	if total <= 0 {
		total = -1
	}
	n := 0
	for _, l := range c.manager.ActiveLinks() {
		if c.startFlow(l, total, nil) != nil {
			n++
		}
	}
	return n
}

// StopFlows stops every flow the client currently has in the air, across
// all links, and returns how many were stopped.
func (c *Client) StopFlows() int {
	if c.manager == nil {
		return 0
	}
	// A client's flows are identified by its private server-IP block
	// (nextServerIP); collect first since Stop mutates the shared map.
	var ips []ipnet.Addr
	for ip := range c.s.flows {
		if c.ownsServerIP(ip) {
			ips = append(ips, ip)
		}
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		c.s.flows[ip].snd.Stop()
		delete(c.s.flows, ip)
	}
	return len(ips)
}

// finalize computes the client's Result after the engine has run. Rates
// and averages normalize over the engine clock where the run actually
// stopped — identical to the configured duration for a batch Run, and the
// true horizon for a serve-mode world finalized mid-stream.
func (c *Client) finalize() Result {
	s := c.s
	res := c.res
	dur := s.eng.Now()
	res.Duration = dur
	res.ThroughputKBps = float64(res.BytesReceived) / 1024 / dur.Seconds()
	res.Connectivity = c.series.ConnectivityFraction(dur)
	res.ConnectionDurations = c.series.ConnectionDurations(dur)
	res.DisruptionDurations = c.series.DisruptionDurations(dur)
	for _, r := range c.series.NonzeroRates(dur) {
		res.InstRatesKBps = append(res.InstRatesKBps, r/1024)
	}
	for _, r := range c.series.Rates(dur) {
		res.PerSecondKBps = append(res.PerSecondKBps, r/1024)
	}
	if s.inj != nil {
		res.Chaos = s.inj.Stats()
	}
	for _, inj := range s.extraInj {
		res.Chaos.Add(inj.Stats())
	}
	res.Medium = s.medium.Stats()
	if c.manager == nil {
		// Stack never built (StartOffset beyond the run): an all-zero
		// result with only world-level counters.
		return res
	}
	res.Joins = c.manager.Joins()
	res.LMM = c.manager.Stats()
	res.Driver = c.drv.Stats()
	res.Energy = energy.Compute(energy.DefaultProfile(), c.drv.TxAirtime(), c.drv.SwitchTime(), dur)
	res.EnergyPerBitMicroJ = res.Energy.PerBitMicroJ(res.BytesReceived)
	return res
}
