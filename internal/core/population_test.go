package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"spider/internal/chaos"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipnet"
	"spider/internal/mobility"
	"spider/internal/sim"
)

// corridorWorld is a short two-AP shared road for population tests.
func corridorWorld(seed int64) (WorldConfig, mobility.Model) {
	sites, model, dur := road(dot11.Channel1, dot11.Channel1)
	return WorldConfig{Seed: seed, Duration: sim.Time(dur), Sites: sites}, model
}

func fingerprint(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%+v\n", r)
	}
	return b.String()
}

// TestPopulationDeterminismAndOrderInvariance is the refactor's core
// acceptance check: a 2-client run is bit-identical across repeats and
// across reversed AddClient order.
func TestPopulationDeterminismAndOrderInvariance(t *testing.T) {
	run := func(reversed bool) string {
		world, model := corridorWorld(42)
		ccs := []ClientConfig{
			{ID: 0, Preset: SingleChannelMultiAP, Mobility: model},
			{ID: 1, Preset: SingleChannelMultiAP, Mobility: model, StartOffset: 2 * time.Second},
		}
		if reversed {
			ccs[0], ccs[1] = ccs[1], ccs[0]
		}
		s := NewScenario(world)
		for _, cc := range ccs {
			s.AddClient(cc)
		}
		return fingerprint(s.Run())
	}
	base := run(false)
	if again := run(false); again != base {
		t.Fatal("same-seed 2-client runs differ between repeats")
	}
	if rev := run(true); rev != base {
		t.Fatal("reversed AddClient order changed the run")
	}
	if !strings.Contains(base, "ClientID:0") || !strings.Contains(base, "ClientID:1") {
		t.Fatal("results missing client IDs")
	}
}

// TestPopulationCapacitySharing: N clients sharing one corridor cannot
// beat N private copies of it — the shared medium serializes airtime and
// collides contenders, so aggregate goodput stays below single × N.
func TestPopulationCapacitySharing(t *testing.T) {
	world, model := corridorWorld(7)
	single := RunPopulation(world, []ClientConfig{
		{ID: 0, Preset: SingleChannelMultiAP, Mobility: model},
	})
	if single.AggregateKBps <= 0 {
		t.Fatal("single client moved no data; corridor misconfigured")
	}
	const n = 4
	var ccs []ClientConfig
	for i := 0; i < n; i++ {
		ccs = append(ccs, ClientConfig{
			ID: i, Preset: SingleChannelMultiAP, Mobility: model,
			StartOffset: sim.Time(i) * sim.Time(500*time.Millisecond),
		})
	}
	world, _ = corridorWorld(7)
	pop := RunPopulation(world, ccs)
	if pop.AggregateKBps >= single.AggregateKBps*float64(n) {
		t.Fatalf("aggregate %g KB/s >= %d × single %g KB/s: capacity not shared",
			pop.AggregateKBps, n, single.AggregateKBps)
	}
	if pop.MeanKBps >= single.AggregateKBps {
		t.Fatalf("per-client mean %g KB/s under contention >= uncontended single %g KB/s",
			pop.MeanKBps, single.AggregateKBps)
	}
	if pop.JainFairness <= 0 || pop.JainFairness > 1 {
		t.Fatalf("Jain index %g outside (0,1]", pop.JainFairness)
	}
	if pop.Medium.Collisions == 0 {
		t.Fatal("4 contending clients produced no collisions")
	}
}

// TestPerClientOutageIndependence (satellite): two clients camp on
// different APs; crashing one AP must open an outage window for its
// client only, and the windows must be accounted per client.
func TestPerClientOutageIndependence(t *testing.T) {
	sec := sim.Time(time.Second)
	sites := []mobility.APSite{
		{Pos: geo.Point{X: 0, Y: 10}, Channel: dot11.Channel1, SSID: "left", Open: true, BackhaulBps: 2e6},
		{Pos: geo.Point{X: 600, Y: 10}, Channel: dot11.Channel6, SSID: "right", Open: true, BackhaulBps: 2e6},
	}
	plan := chaos.Plan{Events: []chaos.Event{
		{At: 20 * sec, Kind: chaos.APCrash, AP: 0, Duration: 10 * sec},
	}}
	world := WorldConfig{Seed: 5, Duration: 60 * sec, Sites: sites, Chaos: &plan}
	results := func() []Result {
		s := NewScenario(world)
		s.AddClient(ClientConfig{ID: 0, Preset: SingleChannelMultiAP,
			PrimaryChannel: dot11.Channel1, Mobility: mobility.Static(geo.Point{X: 0, Y: 0})})
		s.AddClient(ClientConfig{ID: 1, Preset: SingleChannelMultiAP,
			PrimaryChannel: dot11.Channel6, Mobility: mobility.Static(geo.Point{X: 600, Y: 0})})
		return s.Run()
	}()
	left, right := results[0], results[1]
	if len(left.Recoveries) == 0 {
		t.Fatal("client on the crashed AP recorded no outage recovery")
	}
	if len(right.Recoveries) != 0 {
		t.Fatalf("client on the healthy AP recorded %d recoveries; outage state leaked across clients",
			len(right.Recoveries))
	}
	if right.LinkDowns != 0 {
		t.Fatalf("healthy client lost %d links during the other AP's crash", right.LinkDowns)
	}
	if left.LinkDowns == 0 {
		t.Fatal("crashed AP's client never lost its link")
	}
}

// TestPopulationDHCPPoolPressure: more clients than pool addresses on one
// AP — the surplus joiners must be refused, counted, and must not corrupt
// the leases of the clients that fit.
func TestPopulationDHCPPoolPressure(t *testing.T) {
	sites := []mobility.APSite{
		{Pos: geo.Point{X: 0, Y: 10}, Channel: dot11.Channel1, SSID: "only", Open: true, BackhaulBps: 2e6},
	}
	world := WorldConfig{
		Seed: 9, Duration: sim.Time(60 * time.Second), Sites: sites,
		AP: APOverrides{DHCPPoolSize: 2},
	}
	var ccs []ClientConfig
	for i := 0; i < 4; i++ {
		ccs = append(ccs, ClientConfig{
			ID: i, Preset: SingleChannelMultiAP, DisableTraffic: true,
			Mobility: mobility.Static(geo.Point{X: float64(i) * 3, Y: 0}),
		})
	}
	pop := RunPopulation(world, ccs)
	if pop.DHCPPoolExhausted == 0 {
		t.Fatal("4 clients on a 2-address pool produced no refusals")
	}
	joined := 0
	for _, r := range pop.Clients {
		if r.LMM.JoinsComplete > 0 {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("no client completed a join at all")
	}
	if joined > 2 {
		t.Fatalf("%d clients hold completed joins on a 2-address pool", joined)
	}
}

// TestFlowServerIPNamespacing (satellite): every client allocates flow
// server addresses from its own 203.<id>/16 block, and exhaustion panics
// instead of wrapping into a neighbour's block.
func TestFlowServerIPNamespacing(t *testing.T) {
	a := &Client{id: 0}
	b := &Client{id: 5}
	seen := map[ipnet.Addr]bool{}
	for i := 0; i < 100; i++ {
		for _, c := range []*Client{a, b} {
			ip := c.nextServerIP()
			if seen[ip] {
				t.Fatalf("duplicate server IP %v", ip)
			}
			seen[ip] = true
			if got := byte(ip >> 24); got != 203 {
				t.Fatalf("server IP %v outside the 203/8 flow range", ip)
			}
			if got := byte(ip >> 16); int(got) != c.id {
				t.Fatalf("server IP %v not in client %d's block", ip, c.id)
			}
		}
	}
	// Exhaustion fails loudly.
	ex := &Client{id: 1, nextServer: maxFlowsPerClient}
	defer func() {
		if recover() == nil {
			t.Fatal("server-IP exhaustion did not panic")
		}
	}()
	ex.nextServerIP()
}

// TestScenarioRejectsBadClientIDs: duplicate or out-of-range IDs are
// configuration bugs and must fail loudly before anything runs.
func TestScenarioRejectsBadClientIDs(t *testing.T) {
	world, model := corridorWorld(1)
	expectPanic := func(name string, ccs []ClientConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Run did not panic", name)
			}
		}()
		s := NewScenario(world)
		for _, cc := range ccs {
			s.AddClient(cc)
		}
		s.Run()
	}
	expectPanic("duplicate ID", []ClientConfig{
		{ID: 3, Preset: SingleChannelMultiAP, Mobility: model},
		{ID: 3, Preset: SingleChannelMultiAP, Mobility: model},
	})
	expectPanic("ID out of range", []ClientConfig{
		{ID: 65536, Preset: SingleChannelMultiAP, Mobility: model},
	})
	expectPanic("negative ID", []ClientConfig{
		{ID: -1, Preset: SingleChannelMultiAP, Mobility: model},
	})
}

// TestStartOffsetBeyondDuration: a client whose stack never starts yields
// an all-zero result instead of wedging the run.
func TestStartOffsetBeyondDuration(t *testing.T) {
	world, model := corridorWorld(1)
	s := NewScenario(world)
	s.AddClient(ClientConfig{ID: 0, Preset: SingleChannelMultiAP, Mobility: model})
	s.AddClient(ClientConfig{ID: 1, Preset: SingleChannelMultiAP, Mobility: model,
		StartOffset: world.Duration + sim.Time(time.Hour)})
	results := s.Run()
	if results[0].BytesReceived == 0 {
		t.Fatal("on-time client moved no data")
	}
	late := results[1]
	if late.BytesReceived != 0 || late.LinkUps != 0 || len(late.Joins) != 0 {
		t.Fatalf("never-started client has activity: %+v", late)
	}
}
