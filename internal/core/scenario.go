package core

import (
	"fmt"
	"sort"

	"spider/internal/ap"
	"spider/internal/capture"
	"spider/internal/chaos"
	"spider/internal/dot11"
	"spider/internal/ipam"
	"spider/internal/ipnet"
	"spider/internal/lmm"
	"spider/internal/obs"
	"spider/internal/phy"
	"spider/internal/sim"
	"spider/internal/tcpsim"
	"spider/internal/telemetry"
)

// flow is one per-link bulk TCP download.
type flow struct {
	serverIP ipnet.Addr
	access   *ap.AP
	link     *lmm.Link
	snd      *tcpsim.Sender
	rcv      *tcpsim.Receiver
}

// Scenario is the shared world of a run: one event engine, one radio
// medium, the deployed APs, and the fault injector, traversed by any number
// of clients. Clients are declared with AddClient and materialized by Run
// in client-ID order, so a run is a pure function of (WorldConfig, set of
// ClientConfigs) — never of AddClient call order.
type Scenario struct {
	cfg        WorldConfig
	clientCfgs []ClientConfig

	eng     *sim.Engine
	rng     *sim.RNG
	medium  *phy.Medium
	aps     map[dot11.MACAddr]*ap.AP
	apList  []*ap.AP
	ipam    *ipam.Manager
	inj     *chaos.Injector
	flows   map[ipnet.Addr]*flow
	clients []*Client
	// byID resolves clients for the allocator's flow-pacing pass (and any
	// other per-ID lookup) without a linear scan.
	byID map[int]*Client
	// allocCtl drives the fairness allocator when WorldConfig.Alloc is set.
	allocCtl *allocController

	// usedIDs guards client-ID uniqueness across Start and every later
	// AddClientNow; extraInj holds fault injectors armed mid-run through
	// InjectPlan (spider-serve intents), counted alongside the primary.
	usedIDs  map[int]bool
	extraInj []*chaos.Injector

	// faultCauses counts the currently-active injected faults per cause
	// label — maintained whenever an injector exists (recording or not),
	// so outage attribution always sees the live fault set.
	faultCauses map[string]int
	// faultSpans holds the open world-scoped fault spans per cause (a
	// stochastic process can overlap its own firings, hence the stack).
	faultSpans map[string][]*obs.ActiveSpan
}

// NewScenario prepares a scenario for the given world. Nothing is built
// until Run; AddClient may be called in any order before it.
func NewScenario(cfg WorldConfig) *Scenario {
	return &Scenario{cfg: cfg.withDefaults()}
}

// AddClient declares one client. It only records the config; the client's
// stack is materialized by Run, in ID order.
func (s *Scenario) AddClient(cfg ClientConfig) {
	s.clientCfgs = append(s.clientCfgs, cfg)
}

// Clients returns the materialized clients in ID order (valid after Run).
func (s *Scenario) Clients() []*Client { return s.clients }

// APs returns the deployed APs in Sites order (valid after Run).
func (s *Scenario) APs() []*ap.AP { return s.apList }

// IPAM returns the world's address manager (valid after Run). Every
// deployed DHCP server allocates through it, so its Stats and Status
// cover the whole population's address plane.
func (s *Scenario) IPAM() *ipam.Manager { return s.ipam }

// DHCPPoolExhausted sums refused-lease counts across every deployed AP
// (valid after Run): the population-scale pool-pressure signal.
func (s *Scenario) DHCPPoolExhausted() int {
	total := 0
	for _, a := range s.apList {
		total += a.DHCPServer().PoolExhausted
	}
	return total
}

// Run materializes the world and every declared client, executes the
// scenario to completion, and returns one Result per client in ID order.
// It is a thin compose of the incremental seam below: Start, one StepUntil
// to the configured duration, Finalize.
func (s *Scenario) Run() []Result {
	if len(s.clientCfgs) == 0 {
		panic("core: Scenario.Run with no clients")
	}
	s.Start()
	s.StepUntil(s.cfg.Duration)
	return s.Finalize()
}

// Start materializes the world and every declared client without running
// any virtual time. After Start the scenario is live: StepUntil advances
// it in bounded increments, and AddClientNow / InjectPlan feed it
// replayable external inputs between steps — the seam spider-serve's
// intent log drives. Start with zero declared clients is valid (a serve
// world populated purely through intents).
func (s *Scenario) Start() {
	if s.eng != nil {
		panic("core: Scenario.Start called twice")
	}
	// The telemetry plane aggregates the recorder's event stream; a run
	// that asked for telemetry without a recorder gets a streaming one —
	// every event is constructed and delivered to subscribers, nothing
	// retained — so city-scale runs keep O(windows) memory.
	if s.cfg.Telemetry != nil && s.cfg.Obs == nil {
		s.cfg.Obs = obs.NewStreamingRecorder()
	}

	// Pre-size per-client observability buffers before any log exists
	// (buildWorld creates the world log). Event and span volume scales
	// with run length (join pipeline stages, link transitions, outage
	// windows), not packet counts, so a small per-second rate covers
	// typical runs without overcommitting at city scale.
	if s.cfg.Obs != nil {
		secs := int(s.cfg.Duration / (1000 * 1000 * 1000))
		s.cfg.Obs.Reserve(32+4*secs, 8+secs)
	}
	// Bind telemetry before the world exists so no emission can precede
	// its subscriptions.
	s.cfg.Telemetry.Bind(s.cfg.Obs)

	s.buildWorld()
	s.usedIDs = make(map[int]bool, len(s.clientCfgs))
	s.byID = make(map[int]*Client, len(s.clientCfgs))

	// Materialize clients in ID order so AddClient order cannot matter.
	cfgs := make([]ClientConfig, len(s.clientCfgs))
	for i, cc := range s.clientCfgs {
		cfgs[i] = cc.withDefaults()
	}
	sort.SliceStable(cfgs, func(i, j int) bool { return cfgs[i].ID < cfgs[j].ID })
	for _, cc := range cfgs {
		if err := s.materialize(cc); err != nil {
			panic("core: " + err.Error())
		}
	}

	if s.cfg.Alloc != nil {
		s.allocCtl = newAllocController(s)
		s.eng.Ticker(s.allocCtl.cfg.Epoch, s.allocCtl.epoch)
	}

	// Drive the telemetry window clock and wire the cumulative-counter
	// probe. The Ticker fires at sim times that are a pure function of the
	// window width, so window closes land identically on every replay.
	if tel := s.cfg.Telemetry; tel != nil {
		tel.SetProbe(s.telemetryProbe)
		s.eng.Ticker(tel.Window(), func() { tel.Tick(s.eng.Now()) })
	}

	// Frame- and probe-path counts accumulate in plain stats and are
	// pushed into the registry's atomic counters on a coarse cadence
	// (plus once at Finalize, so exported values are exact). A scrape
	// between publishes reads values at most five sim-seconds stale —
	// fine for /v1/metrics — and the frame path never pays an atomic.
	if s.cfg.Obs != nil {
		s.eng.Ticker(5*1000*1000*1000, s.publishObs)
	}
}

// publishObs flushes stats deltas from the medium and every driver into
// the observability registry. Runs on the sim goroutine.
func (s *Scenario) publishObs() {
	s.medium.PublishObs()
	for _, c := range s.clients {
		// A client whose StartOffset has not arrived has no stack yet.
		if c.drv != nil {
			c.drv.PublishObs()
		}
	}
}

// telemetryProbe snapshots the world's cumulative counters for the
// aggregator's per-window deltas: per-channel airtime and contenders from
// the medium, total collisions, and DHCP pool-exhaustion refusals. Runs on
// the sim goroutine at window closes.
func (s *Scenario) telemetryProbe() telemetry.Probe {
	p := telemetry.Probe{
		Clients:          len(s.clients),
		CumCollisions:    int64(s.medium.Stats().Collisions),
		CumPoolExhausted: int64(s.DHCPPoolExhausted()),
	}
	chSet := make(map[int]struct{}, 4)
	for _, site := range s.cfg.Sites {
		chSet[int(site.Channel)] = struct{}{}
	}
	chs := make([]int, 0, len(chSet))
	for ch := range chSet {
		chs = append(chs, ch)
	}
	sort.Ints(chs)
	for _, ch := range chs {
		p.Channels = append(p.Channels, telemetry.ChannelProbe{
			Channel:      ch,
			CumAirtimeNS: int64(s.medium.ChannelAirtime(dot11.Channel(ch))),
			Contenders:   s.medium.ChannelContenders(dot11.Channel(ch)),
		})
	}
	return p
}

// materialize admits one defaulted client config into the live world:
// validates its ID, registers it, and builds its stack (now, or at
// StartOffset if that is still in the future).
func (s *Scenario) materialize(cc ClientConfig) error {
	if cc.ID < 0 || cc.ID > 65535 {
		return fmt.Errorf("client ID %d out of range [0,65535]", cc.ID)
	}
	if s.usedIDs[cc.ID] {
		return fmt.Errorf("duplicate client ID %d", cc.ID)
	}
	s.usedIDs[cc.ID] = true
	c := newClient(s, cc)
	s.clients = append(s.clients, c)
	s.byID[cc.ID] = c
	// Each client's RNG is a pure function of (seed, ID) — Derive
	// consumes no parent state — so neither AddClient order nor the
	// ID set of other clients perturbs a client's random sequence.
	crng := s.rng.Derive(fmt.Sprintf("client-%03d", cc.ID))
	if cc.StartOffset > s.eng.Now() {
		s.eng.ScheduleAt(cc.StartOffset, func() { c.build(crng) })
	} else {
		c.build(crng)
	}
	return nil
}

// StepUntil advances the live scenario to the given absolute virtual time
// and returns the engine clock (exactly t, unless a caller stopped the
// engine). Every event scheduled at or before t fires, so t is a
// quiescent barrier: external inputs applied after StepUntil(t) returns
// land deterministically between the event batch at t and everything
// later, which is what makes an intent log replayable.
func (s *Scenario) StepUntil(t sim.Time) sim.Time {
	s.eng.Run(t)
	return s.eng.Now()
}

// Finalize closes run-spanning intervals (open joins, links, outages,
// occupancy, persistent faults) so the span tree exports closed, and
// returns one Result per client in ID order. Metrics that average over
// the run use the clock where the scenario actually stopped, which for a
// batch Run is exactly the configured duration.
func (s *Scenario) Finalize() []Result {
	s.publishObs()
	s.cfg.Obs.CloseOpenSpans(s.eng.Now())
	s.cfg.Telemetry.Finish(s.eng.Now())
	// Mid-run-added clients (AddClientNow) sort into ID order with the
	// declared population.
	sort.SliceStable(s.clients, func(i, j int) bool { return s.clients[i].id < s.clients[j].id })
	// The event summary is world-level — identical in every Result — so
	// compute it once; per-client Summary calls were an O(clients × logs)
	// sweep that dominated dense-population finalization.
	evSum := s.cfg.Obs.Summary()
	results := make([]Result, len(s.clients))
	for i, c := range s.clients {
		results[i] = c.finalize()
		results[i].Events = evSum
	}
	return results
}

// Telemetry returns the scenario's streaming aggregation plane (nil when
// the world was configured without one).
func (s *Scenario) Telemetry() *telemetry.Aggregator { return s.cfg.Telemetry }

// Engine exposes the scenario's event engine (valid after Start). The
// serve loop reads Now/Len/PeekNext from it to pick step barriers and
// report queue depth; mutating the queue directly is the scenario's job.
func (s *Scenario) Engine() *sim.Engine { return s.eng }

// ClientByID returns the materialized client with the given ID, or nil.
func (s *Scenario) ClientByID(id int) *Client {
	for _, c := range s.clients {
		if c.id == id {
			return c
		}
	}
	return nil
}

// AddClientNow admits one client into the live, already-started world at
// the current virtual time: its mobility clock and stack start here (any
// configured StartOffset is overridden). The client's random streams
// remain a pure function of (seed, ID), so a run that replays the same
// add at the same virtual time reproduces the original bit-for-bit.
func (s *Scenario) AddClientNow(cfg ClientConfig) error {
	if s.eng == nil {
		return fmt.Errorf("core: AddClientNow before Start")
	}
	cfg.StartOffset = s.eng.Now()
	cc := cfg.withDefaults()
	return s.materialize(cc)
}

// InjectPlan arms a chaos plan against the live world at the current
// virtual time. The plan's event times are absolute virtual times (times
// already in the past clamp to now), and its injector draws from a
// stream derived purely from (seed, injection index), so replaying the
// same plans at the same virtual times reproduces the fault sequence
// exactly. Plans injected here stack with — and are counted alongside —
// the WorldConfig.Chaos plan.
func (s *Scenario) InjectPlan(plan chaos.Plan) error {
	if s.eng == nil {
		return fmt.Errorf("core: InjectPlan before Start")
	}
	if plan.Empty() {
		return fmt.Errorf("core: InjectPlan with empty plan")
	}
	rng := s.rng.Derive(fmt.Sprintf("chaos-inject-%03d", len(s.extraInj)))
	s.extraInj = append(s.extraInj, s.armInjector(plan, rng))
	return nil
}

// buildWorld constructs everything that exists independently of clients:
// medium (+ capture tap), APs, and the fault injector. World RNG streams
// are drawn in a fixed order — phy, one per site, chaos — so world
// randomness is independent of the client population.
func (s *Scenario) buildWorld() {
	cfg := s.cfg
	s.eng = sim.NewEngine()
	s.rng = sim.NewRNG(cfg.Seed)
	s.flows = make(map[ipnet.Addr]*flow)

	s.medium = phy.NewMedium(s.eng, s.rng.Stream("phy"), cfg.Phy)
	if cfg.Obs != nil {
		s.medium.SetObs(cfg.Obs.Metrics())
	}
	if cfg.PCAP != nil {
		pw := capture.NewWriter(cfg.PCAP)
		s.medium.SetTap(func(_ dot11.Channel, wire []byte, at sim.Time) {
			// Capture failures only surface through the writer's error;
			// frames keep flowing either way.
			_ = pw.WritePacket(at, wire)
		})
	}

	// uplink handles packets that crossed an AP's backhaul: TCP ACKs back
	// to flow senders, and echo requests to the well-known test server
	// (Spider's end-to-end connectivity check).
	uplink := func(src *ap.AP, p ipnet.Packet) {
		switch p.Proto {
		case ipnet.ProtoICMP:
			if p.Dst != TestServerAddr {
				return
			}
			if echo, err := ipnet.DecodeEcho(p.Payload); err == nil && echo.Type == ipnet.ICMPEchoRequest {
				src.FromInternet(ipnet.EchoReplyPacket(p, echo))
			}
		case ipnet.ProtoTCP:
			f, ok := s.flows[p.Dst]
			if !ok {
				return
			}
			if seg, err := tcpsim.DecodeSegment(p.Payload); err == nil {
				f.snd.Deliver(seg)
			}
		}
	}

	// Build the address plane. An explicit WorldConfig.IPAM declares
	// shared pool hierarchies keyed by site Segment; otherwise each AP
	// gets a private single-pool group covering the same gw+1..gw+N range
	// the legacy per-server carve handed out, so address assignment is
	// byte-identical to the pre-ipam stack. Bindings are created in Sites
	// order, which keeps reserved-range carves deterministic.
	groups := make([]string, len(cfg.Sites))
	if cfg.IPAM != nil {
		s.ipam = ipam.MustNew(*cfg.IPAM)
		for i, site := range cfg.Sites {
			groups[i] = site.Segment
		}
	} else {
		var ic ipam.Config
		size := 64
		if cfg.AP.DHCPPoolSize > 0 {
			size = cfg.AP.DHCPPoolSize
		}
		for i := range cfg.Sites {
			gw := siteGateway(i)
			name := fmt.Sprintf("ap%03d", i)
			addrs := make([]ipnet.Addr, size)
			for j := range addrs {
				addrs[j] = gw + ipnet.Addr(j+1)
			}
			ic.Pools = append(ic.Pools, ipam.PoolSpec{Name: name, Addrs: addrs})
			ic.Groups = append(ic.Groups, ipam.GroupSpec{Name: name, Pools: []string{name}})
			groups[i] = name
		}
		s.ipam = ipam.MustNew(ic)
	}
	s.ipam.SetObs(cfg.Obs.World(), cfg.Obs.Metrics())

	// Deploy APs. apList keeps Sites order for chaos targeting.
	s.aps = make(map[dot11.MACAddr]*ap.AP, len(cfg.Sites))
	for i, site := range cfg.Sites {
		gw := siteGateway(i)
		apCfg := ap.DefaultConfig(site.SSID, site.Channel, gw)
		apCfg.Open = site.Open
		if site.BackhaulBps > 0 {
			apCfg.Backhaul.RateBps = site.BackhaulBps
		}
		if cfg.AP.DHCPRespMin > 0 {
			apCfg.DHCP.RespDelayMin = cfg.AP.DHCPRespMin
		}
		if cfg.AP.DHCPRespMax > 0 {
			apCfg.DHCP.RespDelayMax = cfg.AP.DHCPRespMax
		}
		if cfg.AP.MgmtDelayMin > 0 {
			apCfg.MgmtDelayMin = cfg.AP.MgmtDelayMin
		}
		if cfg.AP.MgmtDelayMax > 0 {
			apCfg.MgmtDelayMax = cfg.AP.MgmtDelayMax
		}
		if cfg.AP.BackhaulDelay > 0 {
			apCfg.Backhaul.Delay = cfg.AP.BackhaulDelay
		}
		if cfg.AP.BeaconInterval > 0 {
			apCfg.BeaconInterval = cfg.AP.BeaconInterval
		}
		if cfg.AP.LeaseSecs > 0 {
			apCfg.DHCP.LeaseSecs = cfg.AP.LeaseSecs
		}
		if cfg.AP.DHCPPoolSize > 0 {
			apCfg.DHCP.PoolSize = cfg.AP.DHCPPoolSize
		}
		if site.DHCPDead {
			// The server exists but never answers inside any client's
			// acquisition window.
			apCfg.DHCP.RespDelayMin = deadDHCPRespMin
			apCfg.DHCP.RespDelayMax = deadDHCPRespMax
		}
		apCfg.BlockWAN = site.Captive
		mac := dot11.MAC(uint32(0x100000 + i))
		binding, err := s.ipam.Bind(mac.String(), groups[i])
		if err != nil {
			panic(fmt.Sprintf("core: site %d (%s): %v", i, site.SSID, err))
		}
		apCfg.IPAM = binding
		apCfg.DHCP.ExpireLeases = !cfg.AP.DisableLeaseExpiry
		apCfg.Backhaul.Segment = site.Segment
		sitePos := site.Pos
		var self *ap.AP
		self = ap.New(s.eng, s.rng.Stream(site.SSID), s.medium, sitePos, mac, apCfg,
			func(p ipnet.Packet) { uplink(self, p) })
		s.aps[mac] = self
		s.apList = append(s.apList, self)
	}

	// Fault bookkeeping exists whether or not a plan is armed up front:
	// InjectPlan can arm one mid-run, and outage attribution reads the
	// live fault set either way.
	s.faultCauses = make(map[string]int)
	s.faultSpans = make(map[string][]*obs.ActiveSpan)

	// Arm the fault plan. The injector draws from its own stream and
	// schedules everything up front, so a given (seed, plan) replays the
	// same fault sequence regardless of what else the scenario does.
	if cfg.Chaos != nil && !cfg.Chaos.Empty() {
		s.inj = s.armInjector(*cfg.Chaos, s.rng.Stream("chaos"))
	}
}

// armInjector builds one chaos injector over the deployed APs and wires
// its faults into the scenario's live fault set, outage spans, and event
// timeline. Shared by the up-front WorldConfig.Chaos plan and every
// mid-run InjectPlan.
func (s *Scenario) armInjector(plan chaos.Plan, rng *sim.RNG) *chaos.Injector {
	targets := make([]chaos.Target, len(s.apList))
	for i, a := range s.apList {
		targets[i] = a
	}
	inj := chaos.New(s.eng, rng, plan, targets, s.medium)
	world := s.cfg.Obs.World() // nil log (all no-ops) when recording is off
	inj.OnFault = func(e chaos.Event, aps []int, begin bool) {
		// Track the live fault set first — outage attribution reads it
		// whether or not recording is on. Persistent faults (no
		// revert) stay active for the rest of the run.
		if begin {
			s.faultCauses[e.Cause]++
			span := world.StartSpan(s.eng.Now(), "fault")
			span.SetChannel(int(e.Channel))
			span.SetStatus(e.Cause + ":" + e.Kind.String())
			if span != nil {
				s.faultSpans[e.Cause] = append(s.faultSpans[e.Cause], span)
			}
		} else {
			if s.faultCauses[e.Cause] > 0 {
				s.faultCauses[e.Cause]--
			}
			if stack := s.faultSpans[e.Cause]; len(stack) > 0 {
				stack[0].End(s.eng.Now())
				s.faultSpans[e.Cause] = stack[1:]
			}
		}
		kind := obs.KindFaultEnd
		if begin {
			kind = obs.KindFaultBegin
		}
		// One event per resolved AP keeps the timeline joinable
		// against per-client events by AP index; channel-scoped
		// faults (noise bursts) have no AP and report one event.
		if len(aps) == 0 {
			world.Emit(obs.Event{
				At:      s.eng.Now(),
				Kind:    kind,
				Channel: int(e.Channel),
				Value:   -1,
				Note:    e.Kind.String(),
			})
			return
		}
		for _, idx := range aps {
			world.Emit(obs.Event{
				At:      s.eng.Now(),
				Kind:    kind,
				Channel: int(e.Channel),
				Value:   int64(idx),
				Note:    e.Kind.String(),
			})
		}
	}
	return inj
}

// siteGateway returns site i's gateway address: 10.hi.lo.1 by Sites index,
// giving every AP a distinct /24 regardless of its pool plan.
func siteGateway(i int) ipnet.Addr {
	return ipnet.AddrFrom4(10, byte(i>>8), byte(i), 1)
}

// activeFaultCause returns the lexicographically first live fault cause,
// or "" when no injected fault is active right now.
func (s *Scenario) activeFaultCause() string {
	best := ""
	for cause, n := range s.faultCauses {
		if n > 0 && (best == "" || cause < best) {
			best = cause
		}
	}
	return best
}
