// Package experiments regenerates every table and figure in the paper's
// evaluation. Each experiment function is deterministic in its Options and
// returns typed series/tables that cmd/spider-bench renders as text or CSV.
//
// The experiment index lives in DESIGN.md; expected-vs-measured shapes are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"spider/internal/fleet"
	"spider/internal/obs"
	"spider/internal/sim"
	"spider/internal/telemetry"
)

// Options control experiment fidelity. The zero value means full fidelity
// with seed 1.
type Options struct {
	// Seed drives every random choice.
	Seed int64
	// Scale in (0,1] shrinks run durations and trial counts for smoke
	// tests and benchmarks; 0 means 1.0 (full fidelity).
	Scale float64
	// Fleet, when non-nil, executes the experiment's independent
	// simulation runs on a shared bounded worker pool and memoizes
	// expensive shared studies (the town study) in its result cache.
	// Nil runs everything inline on the calling goroutine. Results are
	// identical either way: every job derives its own seed, and merges
	// happen in canonical job order. Fleet never participates in cache
	// keys.
	Fleet *fleet.Group
	// Clock supplies the wall-clock reads behind timing columns some
	// tables report (AppendixA's µs columns). Nil means the real clock;
	// tests substitute obs.NewManual so rendered artifacts containing
	// wall times become byte-stable. Never part of cache keys.
	Clock obs.Clock
	// Events, when non-nil, collects every simulation run's structured
	// event stream under its job label ("chaos#0", …). Each stream is a
	// pure function of the run's (seed, config) and the collector exports
	// in sorted label order, so the merged JSONL is byte-identical at any
	// fleet worker count. Note the fleet result cache can satisfy a
	// memoized experiment without re-running its jobs; collect events
	// with a fresh pool when a complete stream matters.
	Events *obs.Collector
	// Rollups, when non-nil, attaches a telemetry aggregator (default
	// window, default SLOs) to every simulation run and files its closed
	// windows plus flight accounting under the run's job label. Same
	// determinism contract as Events: export is in sorted label order,
	// so the merged rollup JSONL is byte-identical at any worker count.
	Rollups *telemetry.Collector
}

// Key returns the canonical result-cache key for an experiment with these
// options. Seed and scale uniquely determine any experiment's output, so
// two Options with equal keys are interchangeable; the delimited encoding
// keeps differing Options from colliding.
func (o Options) Key(id string) string {
	return fmt.Sprintf("%s|seed=%d|scale=%g", id, o.seed(), o.scale())
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 1
	}
	return o.Scale
}

func (o Options) clock() obs.Clock {
	if o.Clock == nil {
		return obs.Wall()
	}
	return o.Clock
}

// recorder returns a fresh per-run event recorder when collection is on,
// nil (recording disabled end to end) otherwise.
func (o Options) recorder() *obs.Recorder {
	if o.Events == nil {
		return nil
	}
	return obs.NewRecorder()
}

// collect files one finished run's event and span streams under its job
// label and folds the per-kind summary into the fleet telemetry.
func (o Options) collect(label string, rec *obs.Recorder) {
	if rec == nil {
		return
	}
	o.Events.Add(label, rec.Events())
	o.Events.AddSpans(label, rec.Spans())
	if o.Fleet != nil {
		o.Fleet.AddEvents(rec.Summary())
	}
}

// rollup returns a fresh per-run telemetry aggregator when rollup
// collection is on. The aggregator seeds its flight sampling from the
// experiment seed, so the kept-client set is a pure function of Options.
func (o Options) rollup() *telemetry.Aggregator {
	if o.Rollups == nil {
		return nil
	}
	return telemetry.New(telemetry.Config{Seed: o.Seed, SLOs: telemetry.DefaultSLOs()})
}

// collectRollups files one finished run's closed windows and flight
// accounting under its job label. Nil-safe on both sides.
func (o Options) collectRollups(label string, tel *telemetry.Aggregator) {
	o.Rollups.Add(label, tel)
}

// dur scales a full-fidelity duration, with a floor to stay meaningful.
func (o Options) dur(full sim.Time, min sim.Time) sim.Time {
	d := sim.Time(float64(full) * o.scale())
	if d < min {
		return min
	}
	return d
}

// n scales a full-fidelity count with a floor.
func (o Options) n(full, min int) int {
	v := int(float64(full) * o.scale())
	if v < min {
		return min
	}
	return v
}

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series with axis labels.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table is a titled grid.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render prints a figure as aligned text columns: one x column and one y
// column per series.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s   y: %s\n", f.XLabel, f.YLabel)
	fmt.Fprintf(&b, "%-12s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-24s", s.Name)
	}
	b.WriteByte('\n')
	// Merge x values across series.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var sorted []float64
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range f.Series {
			found := false
			for i, sx := range s.X {
				if sx == x {
					fmt.Fprintf(&b, "%-24.5g", s.Y[i])
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, "%-24s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as series-name,x,y rows.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Render prints the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated rows.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}
