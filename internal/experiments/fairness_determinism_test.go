package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"spider/internal/alloc"
	"spider/internal/core"
	"spider/internal/fleet"
	"spider/internal/obs"
)

// fairnessJSONL runs both allocator variants over two population rungs on
// a fresh pool with the given worker count and returns the merged event
// and span JSONL streams. Fresh pool per call: the fleet result cache
// could otherwise satisfy a repeat run without executing its jobs.
func fairnessJSONL(t *testing.T, workers int) ([]byte, []byte) {
	t.Helper()
	pool := fleet.New(fleet.Config{Workers: workers})
	defer pool.Close()
	col := obs.NewCollector()
	o := Options{Seed: 1, Scale: 0.02, Fleet: pool.Group("fairness-det"), Events: col}

	var jobs []job[core.PopulationResult]
	for _, v := range []alloc.Variant{alloc.Decentralized, alloc.Oracle} {
		for _, n := range []int{4, 16} {
			v, n := v, n
			label := fmt.Sprintf("fairness-det#arm=%s,n=%d", v, n)
			jobs = append(jobs, job[core.PopulationResult]{id: label, fn: func() core.PopulationResult {
				world, clients := FairnessScenario(o, n, v)
				rec := o.recorder()
				world.Obs = rec
				r := core.RunPopulation(world, clients)
				o.collect(label, rec)
				return r
			}})
		}
	}
	mapJobs(o, jobs)

	var evs, spans bytes.Buffer
	if err := col.WriteJSONL(&evs); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := col.WriteSpansJSONL(&spans); err != nil {
		t.Fatalf("WriteSpansJSONL: %v", err)
	}
	if evs.Len() == 0 || spans.Len() == 0 {
		t.Fatalf("empty streams: events=%d spans=%d bytes", evs.Len(), spans.Len())
	}
	return evs.Bytes(), spans.Bytes()
}

// TestAllocatorStreamWorkerInvariance extends the byte-determinism
// contract to the allocator paths: with either variant steering clients —
// oracle epochs re-solving and re-pacing, decentralized policies sensing
// and re-pacing — the merged event and span JSONL must be byte-identical
// at 1, 4, and 16 workers. The allocator emits alloc.assign events and
// per-epoch world spans; any map iteration or scheduling leak in its
// epoch loop would surface here.
func TestAllocatorStreamWorkerInvariance(t *testing.T) {
	baseEvs, baseSpans := fairnessJSONL(t, 1)
	if !bytes.Contains(baseEvs, []byte("alloc.assign")) {
		t.Fatal("allocator emitted no alloc.assign events")
	}
	if !bytes.Contains(baseSpans, []byte("alloc")) {
		t.Fatal("oracle emitted no alloc epoch spans")
	}
	for _, w := range []int{4, 16} {
		evs, spans := fairnessJSONL(t, w)
		if !bytes.Equal(evs, baseEvs) {
			t.Errorf("event JSONL at workers=%d differs from workers=1", w)
		}
		if !bytes.Equal(spans, baseSpans) {
			t.Errorf("span JSONL at workers=%d differs from workers=1", w)
		}
	}
}

// TestAllocatorMonotoneBenefit pins the fairness frontier's ordering at
// the issue's collapse point: at 64 clients the oracle must be at least
// as fair as the decentralized policy, the decentralized policy strictly
// fairer than the selfish heuristic, and neither allocator may buy its
// fairness with aggregate goodput below the heuristic's.
func TestAllocatorMonotoneBenefit(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.05}
	run := func(v alloc.Variant) core.PopulationResult {
		world, clients := FairnessScenario(o, 64, v)
		return core.RunPopulation(world, clients)
	}
	heur := run(0)
	dec := run(alloc.Decentralized)
	ora := run(alloc.Oracle)

	if !(ora.JainFairness >= dec.JainFairness && dec.JainFairness > heur.JainFairness) {
		t.Errorf("fairness not monotone: oracle %.3f, decentralized %.3f, heuristic %.3f",
			ora.JainFairness, dec.JainFairness, heur.JainFairness)
	}
	if ora.JainFairness < 0.90 {
		t.Errorf("oracle Jain %.3f below the 0.90 acceptance bar", ora.JainFairness)
	}
	if dec.AggregateKBps <= heur.AggregateKBps {
		t.Errorf("decentralized aggregate %.1f not above heuristic %.1f",
			dec.AggregateKBps, heur.AggregateKBps)
	}
	if ora.AggregateKBps <= heur.AggregateKBps {
		t.Errorf("oracle aggregate %.1f not above heuristic %.1f",
			ora.AggregateKBps, heur.AggregateKBps)
	}
}
