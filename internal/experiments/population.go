package experiments

import (
	"fmt"
	"time"

	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipam"
	"spider/internal/ipnet"
	"spider/internal/mobility"
	"spider/internal/sim"
)

// The population study answers the deployment-scale question the
// single-client reproduction cannot: what happens when N vehicles share
// one corridor's APs and airtime? Every client runs the paper's best
// configuration (single-channel/multi-AP) on the same road; the sweep
// grows the population and reports aggregate goodput, the per-client
// distribution, Jain's fairness index, medium contention, and DHCP
// address-pool pressure.

// populationSizes is the swept population ladder. The 1-client rung
// anchors the capacity-sharing check (aggregate at N must stay under
// N × single-client goodput); 64 is the pool-pressure stressor.
var populationSizes = []int{1, 2, 4, 8, 16, 32, 64}

const (
	// populationPoolSize caps each AP's DHCP pool below the largest
	// population, so the 64-client rung genuinely exhausts leases.
	populationPoolSize = 24
	// populationStagger spaces client departures along the corridor.
	populationStagger = sim.Time(1500 * time.Millisecond)
)

// PopulationResults holds the sweep for rendering.
type PopulationResults struct {
	Sizes    []int
	Duration sim.Time
	Results  []core.PopulationResult
}

// populationWorld builds the shared corridor: a straight road with
// channel-1 APs every 180 m, all open, modest backhaul — enough APs that
// every client is in range of one, few enough that populations contend.
func populationWorld(seed int64, d sim.Time) (core.WorldConfig, mobility.Model) {
	const speed = 10.0 // m/s
	length := speed*d.Seconds() + 100
	var sites []mobility.APSite
	for i := 0; float64(i)*180 < length; i++ {
		sites = append(sites, mobility.APSite{
			Pos:     geo.Point{X: float64(i) * 180, Y: 20},
			Channel: dot11.Channel1,
			SSID:    fmt.Sprintf("corridor-%03d", i),
			Open:    true, BackhaulBps: 4e6,
		})
	}
	world := core.WorldConfig{
		Seed:     seed,
		Duration: d,
		Sites:    sites,
		AP:       core.APOverrides{DHCPPoolSize: populationPoolSize},
	}
	route := mobility.NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: length, Y: 0}}, speed, false)
	return world, route
}

// populationClients builds n staggered clients driving the corridor.
func populationClients(n int, route mobility.Model) []core.ClientConfig {
	clients := make([]core.ClientConfig, n)
	for i := range clients {
		clients[i] = core.ClientConfig{
			ID:             i,
			Preset:         core.SingleChannelMultiAP,
			PrimaryChannel: dot11.Channel1,
			Mobility:       route,
			StartOffset:    sim.Time(i) * populationStagger,
		}
	}
	return clients
}

// PopulationScenario returns one rung of the population study — the world
// and N staggered clients at the options' duration — for callers that
// need to execute a rung directly (the spider-bench -popjson harness and
// the benchmark suite). Running it through core.RunPopulation reproduces
// the study's numbers for that rung exactly.
func PopulationScenario(o Options, n int) (core.WorldConfig, []core.ClientConfig) {
	d := o.dur(sim.Time(5*time.Minute), sim.Time(60*time.Second))
	world, route := populationWorld(o.seed(), d)
	return world, populationClients(n, route)
}

// PopulationDenseScenario is a city-scale rung of the population study:
// the same corridor and per-client configuration as PopulationScenario,
// but with departures compressed into the first quarter of the run. The
// classic 1.5 s stagger would push most of a 256/1024/4096-client
// population past the end of a benchmark-scale run; compressing the
// window keeps the whole population airborne so the rung measures true
// city-scale contention. The 1/8/32/64 rungs keep the classic stagger,
// so their workloads stay comparable with historical baselines.
func PopulationDenseScenario(o Options, n int) (core.WorldConfig, []core.ClientConfig) {
	d := o.dur(sim.Time(5*time.Minute), sim.Time(60*time.Second))
	world, route := populationWorld(o.seed(), d)
	clients := populationClients(n, route)
	window := d / 4
	for i := range clients {
		clients[i].StartOffset = sim.Time(i) * window / sim.Time(n)
	}
	return world, clients
}

// PopulationIPAMScenario is a population rung with the production address
// plan swapped in for the legacy per-AP pools: every corridor AP joins
// one "corridor" group — a primary pool carved from a /26 CIDR with an
// ordered backup and a one-address per-AP reserve — and leases expire at
// sim time. The radio workload is identical to PopulationScenario, so a
// benchgate rung built on this isolates the cost of the full ipam data
// path (hierarchy lookup, failover, reserve carving, expiry sweeps).
func PopulationIPAMScenario(o Options, n int) (core.WorldConfig, []core.ClientConfig) {
	world, clients := PopulationScenario(o, n)
	for i := range world.Sites {
		world.Sites[i].Segment = "corridor"
	}
	world.AP.DHCPPoolSize = 0
	world.IPAM = &ipam.Config{
		Pools: []ipam.PoolSpec{
			{Name: "corridor-primary", CIDR: ipnet.MustParsePrefix("172.20.0.0/26")},
			{Name: "corridor-backup", CIDR: ipnet.MustParsePrefix("172.21.0.0/26")},
		},
		Groups: []ipam.GroupSpec{
			{Name: "corridor", Pools: []string{"corridor-primary", "corridor-backup"}},
		},
		ReservePerAP: 1,
	}
	return world, clients
}

// PopulationStudy sweeps the population ladder, one fleet job per rung (a
// rung is one N-client scenario and cannot shard further — its clients
// share an engine). Memoized under the experiment's canonical key.
func PopulationStudy(o Options) *PopulationResults {
	return memo(o, "population", func() *PopulationResults {
		d := o.dur(sim.Time(5*time.Minute), sim.Time(60*time.Second))
		jobs := make([]job[core.PopulationResult], len(populationSizes))
		for i, n := range populationSizes {
			n := n
			label := fmt.Sprintf("population#n=%d", n)
			jobs[i] = job[core.PopulationResult]{
				id: label,
				fn: func() core.PopulationResult {
					world, route := populationWorld(o.seed(), d)
					rec := o.recorder()
					world.Obs = rec
					r := core.RunPopulation(world, populationClients(n, route))
					o.collect(label, rec)
					return r
				},
			}
		}
		return &PopulationResults{
			Sizes:    populationSizes,
			Duration: d,
			Results:  mapJobs(o, jobs),
		}
	})
}

// PopulationTable renders the sweep: scale-out goodput, the fairness of
// its division, and the contention/pool-pressure counters behind it.
func PopulationTable(r *PopulationResults) Table {
	t := Table{
		ID:    "population",
		Title: fmt.Sprintf("population scaling on a shared corridor (%v per run)", time.Duration(r.Duration)),
		Columns: []string{"clients", "aggregate KB/s", "mean KB/s", "p50 KB/s", "p95 KB/s",
			"jain", "connectivity", "pool refusals", "collisions"},
	}
	for i, n := range r.Sizes {
		p := r.Results[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", p.AggregateKBps),
			fmt.Sprintf("%.1f", p.MeanKBps),
			fmt.Sprintf("%.1f", p.P50KBps),
			fmt.Sprintf("%.1f", p.P95KBps),
			fmt.Sprintf("%.3f", p.JainFairness),
			fmt.Sprintf("%.3f", p.MeanConnectivity),
			fmt.Sprintf("%d", p.DHCPPoolExhausted),
			fmt.Sprintf("%d", p.Medium.Collisions),
		})
	}
	return t
}

// PopulationFigure plots aggregate and per-client goodput against
// population size: the aggregate curve flattens as the corridor saturates
// while the per-client curve decays — capacity sharing made visible.
func PopulationFigure(r *PopulationResults) Figure {
	agg := Series{Name: "aggregate"}
	per := Series{Name: "per-client mean"}
	for i, n := range r.Sizes {
		x := float64(n)
		agg.X = append(agg.X, x)
		agg.Y = append(agg.Y, r.Results[i].AggregateKBps)
		per.X = append(per.X, x)
		per.Y = append(per.Y, r.Results[i].MeanKBps)
	}
	return Figure{
		ID:     "population-goodput",
		Title:  "goodput vs population size",
		XLabel: "clients on the corridor",
		YLabel: "goodput (KB/s)",
		Series: []Series{agg, per},
	}
}
