package experiments

import (
	"fmt"
	"time"

	"spider/internal/opt"
	"spider/internal/sim"
)

// AppendixA backs the paper's NP-hardness argument with an ablation of the
// multi-AP selection algorithms: exhaustive search (exponential), the
// knapsack dynamic program (pseudo-polynomial, still too slow online), the
// value-density greedy (needs unobservable values), and Spider's deployed
// utility heuristic. It reports solution quality relative to optimal and
// wall-clock runtime per decision.
func AppendixA(o Options) Table {
	t := Table{
		ID:    "appendix-a",
		Title: "Multi-AP selection: solution quality and decision latency",
		Columns: []string{
			"APs", "brute quality", "dp quality", "greedy quality", "utility quality",
			"brute µs", "dp µs", "greedy µs", "utility µs",
		},
	}
	rng := sim.NewRNG(o.seed())
	trials := o.n(40, 5)
	// All wall-clock reads go through the Options clock so tests can make
	// the µs columns deterministic; solver outputs never depend on it.
	clk := o.clock()
	for _, n := range []int{8, 12, 16, 20} {
		var qBrute, qDP, qGreedy, qUtil float64
		var tBrute, tDP, tGreedy, tUtil time.Duration
		for trial := 0; trial < trials; trial++ {
			items := opt.RandomInstance(rng, n, 0.3)
			budget := 60.0
			start := clk.Now()
			brute := opt.SolveBruteForce(items, budget)
			tBrute += clk.Since(start)
			start = clk.Now()
			dp := opt.SolveExact(items, budget, 2000)
			tDP += clk.Since(start)
			start = clk.Now()
			greedy := opt.SolveGreedy(items, budget)
			tGreedy += clk.Since(start)
			start = clk.Now()
			util := opt.SolveByUtility(items, budget)
			tUtil += clk.Since(start)
			optimum := brute.Value
			if optimum <= 0 {
				continue
			}
			qBrute += brute.Value / optimum
			qDP += dp.Value / optimum
			qGreedy += greedy.Value / optimum
			qUtil += util.Value / optimum
		}
		f := float64(trials)
		us := func(d time.Duration) string {
			return fmt.Sprintf("%.1f", float64(d.Microseconds())/f)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", qBrute/f),
			fmt.Sprintf("%.3f", qDP/f),
			fmt.Sprintf("%.3f", qGreedy/f),
			fmt.Sprintf("%.3f", qUtil/f),
			us(tBrute), us(tDP), us(tGreedy), us(tUtil),
		})
	}
	return t
}
