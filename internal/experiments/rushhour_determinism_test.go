package experiments

import (
	"strings"
	"testing"

	"spider/internal/fleet"
)

// rushHourOutput renders the full rush-hour sweep (table and figure)
// through a pool with the given worker count; 0 means inline.
func rushHourOutput(workers int) string {
	o := Options{Seed: 1, Scale: 0.02}
	if workers > 0 {
		pool := fleet.New(fleet.Config{Workers: workers})
		defer pool.Close()
		o.Fleet = pool.Group("rushhour")
	}
	r := RushHourStudy(o)
	tab := RushHourTable(r)
	return tab.Render() + "\n" + tab.CSV() + "\n" + RushHourFigure(r).Render()
}

// TestRushHourWorkerCountInvariance: the rush-hour sweep must render
// byte-identically inline and at 1, 4, and 16 workers. Address
// assignment rides on ipam's determinism contract — lowest-free-first,
// LIFO reuse, declared failover order, ascending-address sweeps — so any
// worker-count leak here is an ipam ordering bug, not scheduler noise.
func TestRushHourWorkerCountInvariance(t *testing.T) {
	inline := rushHourOutput(0)
	if !strings.Contains(inline, "dhcp-failed") {
		t.Fatalf("rush-hour table missing attribution column:\n%s", inline)
	}
	for _, workers := range []int{1, 4, 16} {
		if got := rushHourOutput(workers); got != inline {
			t.Errorf("workers=%d differs from inline run:\n--- inline ---\n%s\n--- workers=%d ---\n%s",
				workers, inline, workers, got)
		}
	}
}

// TestRushHourFailoverAndGCReduceFailures: under identical radio
// conditions, each address-plane upgrade must strictly help — more
// vehicles served and fewer IPAM-attributed join failures — which is the
// experiment's headline claim.
func TestRushHourFailoverAndGCReduceFailures(t *testing.T) {
	r := RushHourStudy(Options{Seed: 1, Scale: 0.1})
	if len(r.Arms) != 3 {
		t.Fatalf("arms = %d, want 3", len(r.Arms))
	}
	single, failover, gc := r.Arms[0], r.Arms[1], r.Arms[2]
	if !(single.Served < failover.Served && failover.Served < gc.Served) {
		t.Errorf("served vehicles not monotone: %d, %d, %d",
			single.Served, failover.Served, gc.Served)
	}
	if !(single.FailedDHCP > failover.FailedDHCP && failover.FailedDHCP > gc.FailedDHCP) {
		t.Errorf("IPAM-attributed failures not monotone: %d, %d, %d",
			single.FailedDHCP, failover.FailedDHCP, gc.FailedDHCP)
	}
	if failover.IPAM.Failovers == 0 {
		t.Error("failover arm never used its backup pool")
	}
	if gc.IPAM.Reclaimed == 0 {
		t.Error("gc arm never reclaimed a lease")
	}
	if single.IPAM.Reclaimed != 0 || single.IPAM.Failovers != 0 {
		t.Errorf("single-pool arm recorded failovers=%d reclaims=%d, want none",
			single.IPAM.Failovers, single.IPAM.Reclaimed)
	}
}
