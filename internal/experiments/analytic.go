package experiments

import (
	"fmt"
	"time"

	"spider/internal/model"
	"spider/internal/opt"
	"spider/internal/sim"
)

// Figure2 reproduces the model-validation figure: join success probability
// versus the fraction of time spent on the AP's channel, for the closed
// form and a Monte-Carlo simulation, at βmax = 5 s and 10 s.
func Figure2(o Options) Figure {
	rng := sim.NewRNG(o.seed())
	trials := o.n(10000, 500) // paper: 100 runs × 100 trials
	fig := Figure{
		ID:     "fig2",
		Title:  "Join success probability vs fraction of time on channel",
		XLabel: "fraction of time on channel",
		YLabel: "probability of join success",
	}
	t := 4 * time.Second
	for _, betaMax := range []time.Duration{5 * time.Second, 10 * time.Second} {
		p := model.PaperParams(betaMax)
		mdl := Series{Name: fmt.Sprintf("model(βmax=%ds)", betaMax/time.Second)}
		mc := Series{Name: fmt.Sprintf("sim(βmax=%ds)", betaMax/time.Second)}
		for fi := 0.05; fi <= 1.0001; fi += 0.05 {
			mdl.X = append(mdl.X, fi)
			mdl.Y = append(mdl.Y, p.JoinProbability(fi, t))
			mc.X = append(mc.X, fi)
			mc.Y = append(mc.Y, p.SimulateJoinProbability(rng, fi, t, trials))
		}
		fig.Series = append(fig.Series, mdl, mc)
	}
	return fig
}

// Figure3 reproduces the βmax sensitivity figure: join probability versus
// the maximum AP response time for four channel fractions.
func Figure3(o Options) Figure {
	fig := Figure{
		ID:     "fig3",
		Title:  "Join success probability vs maximum AP response time",
		XLabel: "βmax (s)",
		YLabel: "probability of join success",
	}
	t := 4 * time.Second
	for _, fi := range []float64{0.10, 0.25, 0.40, 0.50} {
		s := Series{Name: fmt.Sprintf("fi=%.2f", fi)}
		for bmax := 1; bmax <= 10; bmax++ {
			p := model.PaperParams(time.Duration(bmax) * time.Second)
			s.X = append(s.X, float64(bmax))
			s.Y = append(s.Y, p.JoinProbability(fi, t))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// fig4Speeds are the node speeds the paper evaluates (m/s).
var fig4Speeds = []float64{2.5, 3.3, 5, 6.6, 10, 20}

// Figure4 reproduces the optimal-schedule figure: maximum aggregated
// bandwidth per channel versus node speed for three offered-bandwidth
// splits between a joined channel (ch1) and an unjoined channel (ch2).
func Figure4(o Options) []Figure {
	const bw = 11e6
	splits := []struct {
		name   string
		joined float64
		avail  float64
	}{
		{"25/75", 0.25, 0.75},
		{"50/50", 0.50, 0.50},
		{"75/25", 0.75, 0.25},
	}
	m := model.PaperParams(10 * time.Second)
	step := 0.02
	if o.scale() < 1 {
		step = 0.05
	}
	var figs []Figure
	for _, sp := range splits {
		fig := Figure{
			ID:     "fig4-" + sp.name,
			Title:  fmt.Sprintf("Optimal per-channel bandwidth vs speed (offered %s)", sp.name),
			XLabel: "speed (m/s)",
			YLabel: "bandwidth (kbps)",
		}
		ch1 := Series{Name: "ch1 bw"}
		ch2 := Series{Name: "ch2 bw"}
		for _, v := range fig4Speeds {
			T := sim.Time(2 * 100 / v * 1e9) // 100 m Wi-Fi range
			sol := opt.Problem{
				Model: m,
				Bw:    bw,
				T:     T,
				Channels: []opt.ChannelInput{
					{Joined: sp.joined * bw},
					{Available: sp.avail * bw},
				},
			}.Solve(step)
			ch1.X = append(ch1.X, v)
			ch1.Y = append(ch1.Y, sol.PerChannelBps[0]/1000)
			ch2.X = append(ch2.X, v)
			ch2.Y = append(ch2.Y, sol.PerChannelBps[1]/1000)
		}
		fig.Series = append(fig.Series, ch1, ch2)
		figs = append(figs, fig)
	}
	return figs
}

// DividingSpeeds summarizes Figure 4's headline: the speed above which the
// optimizer stops using the second channel, per split.
func DividingSpeeds(o Options) Table {
	const bw = 11e6
	m := model.PaperParams(10 * time.Second)
	t := Table{
		ID:      "fig4-dividing",
		Title:   "Dividing speed per offered-bandwidth split",
		Columns: []string{"split (joined/available)", "dividing speed (m/s)"},
	}
	for _, sp := range []struct {
		name          string
		joined, avail float64
	}{{"25/75", 0.25, 0.75}, {"50/50", 0.5, 0.5}, {"75/25", 0.75, 0.25}} {
		div := opt.DividingSpeed(m, bw,
			[]opt.ChannelInput{{Joined: sp.joined * bw}, {Available: sp.avail * bw}},
			100, 2.5, 25, 1.25, 0.02)
		t.Rows = append(t.Rows, []string{sp.name, fmt.Sprintf("%.2f", div)})
	}
	return t
}
