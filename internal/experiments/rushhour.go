package experiments

import (
	"fmt"
	"time"

	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/ipam"
	"spider/internal/ipnet"
	"spider/internal/lmm"
	"spider/internal/mobility"
	"spider/internal/sim"
)

// The rush-hour study stresses the address plane instead of the radio: a
// plaza of APs on one backhaul segment, sharing one IPAM pool hierarchy,
// with a stream of short-lived vehicles churning leases through it. Each
// vehicle crosses the plaza in under a minute and then parks out of radio
// range without ever releasing its lease — exactly the vanished-vehicle
// churn a roadside deployment sees at commute time. The sweep compares
// three address-plane policies under byte-identical radio conditions
// (same seed, sites, routes, and renewal cadence):
//
//	single-pool    one shared pool, leases never reclaimed
//	+failover      adds an ordered backup pool and per-AP reserves
//	+failover+gc   adds the sim-time expiry sweep that reclaims
//	               vanished vehicles' addresses
//
// and attributes every failed join to the address plane (DHCP refused or
// timed out on an exhausted pool) or to the radio (association lost the
// race), so the table shows how much of the join-failure rate is IPAM's
// fault under each policy.

const (
	// rushHourAPs is the plaza AP count; every AP shares the segment.
	rushHourAPs = 4
	// rushHourSpacing is the AP spacing along the plaza in metres.
	rushHourSpacing = 120.0
	// rushHourSpeed is the vehicle speed (m/s) — commute crawl it is not:
	// vehicles clear the plaza quickly, maximizing lease churn.
	rushHourSpeed = 15.0
	// rushHourLeaseSecs is the advertised lease. Short on purpose: renewal
	// traffic is identical in every arm, and the GC arm reclaims a
	// vanished vehicle one lease after its last renewal.
	rushHourLeaseSecs = 30
	// rushHourReserve is the per-AP reserved-range size in the failover
	// arms: a burst at one AP cannot take a neighbour's last addresses.
	rushHourReserve = 2
)

// RushHourArm is one address-plane policy's measured outcome.
type RushHourArm struct {
	Name    string
	Clients int
	// Served counts vehicles that completed at least one join.
	Served int
	// Attempts/Completed count individual join attempts.
	Attempts  int
	Completed int
	// FailedDHCP are attempts that died in address acquisition (the
	// IPAM-attributed failures); FailedRadio died at association; FailedPing
	// reached an address but no connectivity.
	FailedDHCP  int
	FailedRadio int
	FailedPing  int
	// IPAM snapshots the address plane's own counters for the arm.
	IPAM ipam.Stats
	// PoolRefusals is the servers' refused-request total (exhaustion only).
	PoolRefusals int
}

// RushHourResults holds the sweep for rendering.
type RushHourResults struct {
	N        int
	Duration sim.Time
	Arms     []RushHourArm
}

// rushHourPrefix picks the smallest CIDR block at base with at least
// minHosts usable host addresses — how the study sizes its pools to the
// vehicle count while still exercising real subnet carving.
func rushHourPrefix(base ipnet.Addr, minHosts int) ipnet.Prefix {
	for bits := 30; bits >= 16; bits-- {
		if p := ipnet.PrefixFrom(base, bits); p.NumHosts() >= uint64(minHosts) {
			return p
		}
	}
	return ipnet.PrefixFrom(base, 16)
}

// rushHourIPAM builds one arm's address plan. Pools are sized to about a
// sixth of the vehicle count: far below the rush's cumulative demand (so
// a never-reclaiming plan must exhaust) yet above its steady-state
// concurrent demand (so reclaim keeps up).
func rushHourIPAM(n int, failover bool) *ipam.Config {
	minHosts := n / 6
	if minHosts < 8 {
		minHosts = 8
	}
	primary := ipam.PoolSpec{Name: "primary", CIDR: rushHourPrefix(ipnet.AddrFrom4(172, 16, 0, 0), minHosts)}
	if !failover {
		return &ipam.Config{
			Pools:  []ipam.PoolSpec{primary},
			Groups: []ipam.GroupSpec{{Name: "plaza", Pools: []string{"primary"}}},
		}
	}
	backup := ipam.PoolSpec{Name: "backup", CIDR: rushHourPrefix(ipnet.AddrFrom4(172, 17, 0, 0), minHosts)}
	return &ipam.Config{
		Pools:        []ipam.PoolSpec{primary, backup},
		Groups:       []ipam.GroupSpec{{Name: "plaza", Pools: []string{"primary", "backup"}}},
		ReservePerAP: rushHourReserve,
	}
}

// rushHourWorld builds the plaza world for one arm. Radio-side parameters
// are identical across arms; only the address plan and the expiry sweep
// differ.
func rushHourWorld(seed int64, d sim.Time, plan *ipam.Config, gc bool) core.WorldConfig {
	sites := make([]mobility.APSite, rushHourAPs)
	for i := range sites {
		sites[i] = mobility.APSite{
			Pos:     geo.Point{X: float64(i) * rushHourSpacing, Y: 15},
			Channel: dot11.Channel1,
			SSID:    fmt.Sprintf("plaza-%d", i),
			Open:    true, BackhaulBps: 4e6,
			Segment: "plaza",
		}
	}
	return core.WorldConfig{
		Seed:     seed,
		Duration: d,
		Sites:    sites,
		IPAM:     plan,
		AP: core.APOverrides{
			LeaseSecs:          rushHourLeaseSecs,
			DisableLeaseExpiry: !gc,
		},
	}
}

// rushHourRoute is the vehicle path: approach, cross the plaza, and park
// well past the last AP's radio range — the lease holder vanishes.
func rushHourRoute() (mobility.Model, sim.Time) {
	start, end := geo.Point{X: -60, Y: 0}, geo.Point{X: float64(rushHourAPs-1)*rushHourSpacing + 220, Y: 0}
	cross := sim.Time(float64(time.Second) * (end.X - start.X) / rushHourSpeed)
	return mobility.NewWaypoints([]geo.Point{start, end}, rushHourSpeed, false), cross
}

// rushHourClients builds n join-only vehicles whose departures spread the
// rush across the run: vehicle i leaves at i·stagger, crosses, parks.
func rushHourClients(n int, d sim.Time) []core.ClientConfig {
	route, cross := rushHourRoute()
	stagger := sim.Time(250 * time.Millisecond)
	if d > cross {
		stagger = (d - cross) / sim.Time(n)
	}
	clients := make([]core.ClientConfig, n)
	for i := range clients {
		clients[i] = core.ClientConfig{
			ID:             i,
			Preset:         core.SingleChannelMultiAP,
			PrimaryChannel: dot11.Channel1,
			Mobility:       route,
			StartOffset:    sim.Time(i) * stagger,
			DisableTraffic: true,
		}
	}
	return clients
}

// rushHourArms declares the swept policies in presentation order.
func rushHourArms(n int) []struct {
	name string
	plan *ipam.Config
	gc   bool
} {
	return []struct {
		name string
		plan *ipam.Config
		gc   bool
	}{
		{"single-pool", rushHourIPAM(n, false), false},
		{"+failover", rushHourIPAM(n, true), false},
		{"+failover+gc", rushHourIPAM(n, true), true},
	}
}

// measureRushHourArm folds one arm's population result into its row.
func measureRushHourArm(name string, p core.PopulationResult) RushHourArm {
	arm := RushHourArm{Name: name, Clients: len(p.Clients),
		IPAM: p.IPAM, PoolRefusals: p.DHCPPoolExhausted}
	for _, r := range p.Clients {
		served := false
		for _, j := range r.Joins {
			arm.Attempts++
			switch j.Stage {
			case lmm.StageComplete:
				arm.Completed++
				served = true
			case lmm.StageDHCPFailed:
				arm.FailedDHCP++
			case lmm.StagePingFailed:
				arm.FailedPing++
			default:
				arm.FailedRadio++
			}
		}
		if served {
			arm.Served++
		}
	}
	return arm
}

// RushHourScenario returns one arm of the rush-hour study by index — the
// world and its staggered vehicles — for callers that need to execute an
// arm directly (the spider-bench benchmark rung). Running it through
// core.RunPopulation reproduces the study's numbers for that arm exactly.
func RushHourScenario(o Options, arm int) (core.WorldConfig, []core.ClientConfig) {
	d := o.dur(sim.Time(10*time.Minute), sim.Time(90*time.Second))
	n := o.n(300, 24)
	a := rushHourArms(n)[arm]
	return rushHourWorld(o.seed(), d, a.plan, a.gc), rushHourClients(n, d)
}

// RushHourStudy sweeps the three address-plane policies, one fleet job
// per arm (an arm is one N-client scenario and cannot shard further).
// Memoized under the experiment's canonical key.
func RushHourStudy(o Options) *RushHourResults {
	return memo(o, "rushhour", func() *RushHourResults {
		d := o.dur(sim.Time(10*time.Minute), sim.Time(90*time.Second))
		n := o.n(300, 24)
		arms := rushHourArms(n)
		jobs := make([]job[RushHourArm], len(arms))
		for i, a := range arms {
			a := a
			label := fmt.Sprintf("rushhour#%s", a.name)
			jobs[i] = job[RushHourArm]{
				id: label,
				fn: func() RushHourArm {
					world := rushHourWorld(o.seed(), d, a.plan, a.gc)
					rec := o.recorder()
					world.Obs = rec
					p := core.RunPopulation(world, rushHourClients(n, d))
					o.collect(label, rec)
					return measureRushHourArm(a.name, p)
				},
			}
		}
		return &RushHourResults{N: n, Duration: d, Arms: mapJobs(o, jobs)}
	})
}

// RushHourTable renders the sweep: who got an address, who was refused,
// and what the address plane did about it.
func RushHourTable(r *RushHourResults) Table {
	t := Table{
		ID: "rushhour",
		Title: fmt.Sprintf("rush-hour lease churn: %d vehicles through a shared plaza (%v per run)",
			r.N, time.Duration(r.Duration)),
		Columns: []string{"plan", "served", "attempts", "completed", "dhcp-failed",
			"radio-failed", "allocs", "failovers", "reclaimed", "refusals"},
	}
	for _, a := range r.Arms {
		t.Rows = append(t.Rows, []string{
			a.Name,
			fmt.Sprintf("%d/%d", a.Served, a.Clients),
			fmt.Sprintf("%d", a.Attempts),
			fmt.Sprintf("%d", a.Completed),
			fmt.Sprintf("%d", a.FailedDHCP),
			fmt.Sprintf("%d", a.FailedRadio+a.FailedPing),
			fmt.Sprintf("%d", a.IPAM.Allocs),
			fmt.Sprintf("%d", a.IPAM.Failovers),
			fmt.Sprintf("%d", a.IPAM.Reclaimed),
			fmt.Sprintf("%d", a.PoolRefusals),
		})
	}
	return t
}

// RushHourFigure plots the IPAM-attributed join-failure rate and the
// served-vehicle fraction across the three policies: the failure curve
// falls and the served curve rises as failover and GC come in.
func RushHourFigure(r *RushHourResults) Figure {
	fail := Series{Name: "ipam-attributed join-failure rate"}
	served := Series{Name: "served-vehicle fraction"}
	for i, a := range r.Arms {
		x := float64(i)
		fRate := 0.0
		if a.Attempts > 0 {
			fRate = float64(a.FailedDHCP) / float64(a.Attempts)
		}
		sFrac := 0.0
		if a.Clients > 0 {
			sFrac = float64(a.Served) / float64(a.Clients)
		}
		fail.X = append(fail.X, x)
		fail.Y = append(fail.Y, fRate)
		served.X = append(served.X, x)
		served.Y = append(served.Y, sFrac)
	}
	return Figure{
		ID:     "rushhour-failures",
		Title:  "address-plane policy vs join failures (0=single-pool 1=+failover 2=+failover+gc)",
		XLabel: "policy arm",
		YLabel: "fraction",
		Series: []Series{fail, served},
	}
}
