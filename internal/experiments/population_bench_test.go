package experiments

import (
	"fmt"
	"testing"

	"spider/internal/core"
)

// Population benchmarks: the classic 64-client rung plus the
// dense-stagger city-scale rungs. CI runs the dense rungs under
// -benchmem and captures a heap profile from the 1024-client rung
// (-memprofile); allocs/op here is the same number the benchgate ladder
// publishes in BENCH_population.json, so a local -bench run reproduces
// the gate's cost metric directly.
func BenchmarkPopulation(b *testing.B) {
	o := Options{Seed: 1, Scale: 0.05}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		world, clients := PopulationScenario(o, 64)
		core.RunPopulation(world, clients)
	}
}

func BenchmarkPopulationDense(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			o := Options{Seed: 1, Scale: 0.05}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				world, clients := PopulationDenseScenario(o, n)
				core.RunPopulation(world, clients)
			}
		})
	}
}
