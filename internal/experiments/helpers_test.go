package experiments

import (
	"fmt"
	"strings"

	"spider/internal/core"
)

// sscanF parses the first float out of a rendered cell like "23.0% ±6.4%".
func sscanF(cell string, dst *float64) (int, error) {
	cell = strings.TrimSpace(cell)
	return fmt.Sscanf(cell, "%g", dst)
}

// ReducedTimersForTest exposes the tuned profile to tests without
// re-deriving it.
func ReducedTimersForTest() core.TimerProfile { return core.ReducedTimers() }
