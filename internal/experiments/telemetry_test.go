package experiments

import (
	"bytes"
	"strings"
	"testing"

	"spider/internal/core"
	"spider/internal/fleet"
	"spider/internal/obs"
	"spider/internal/telemetry"
)

// chaosRollupJSONL runs the chaos study on a fresh pool with the given
// worker count and returns the merged rollup JSONL. Fresh pool per call
// for the same reason as chaosEventJSONL: the result cache could satisfy
// the memoized study without re-running jobs, leaving the collector empty.
func chaosRollupJSONL(t *testing.T, workers int) []byte {
	t.Helper()
	pool := fleet.New(fleet.Config{Workers: workers})
	defer pool.Close()
	col := telemetry.NewCollector()
	o := Options{Seed: 1, Scale: 0.05, Fleet: pool.Group("chaos"), Rollups: col}
	ChaosStudy(o)
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if col.WindowCount() == 0 {
		t.Fatal("no rollup windows collected")
	}
	return buf.Bytes()
}

// TestRollupStreamWorkerInvariance is the rollup arm of the determinism
// contract: the merged rollup JSONL for the same (seed, scenario) must be
// byte-identical at 1, 4, and 16 workers. Windows aggregate sim-time-only
// quantities and the collector exports in sorted label order, so fleet
// scheduling cannot leak into the artifact.
func TestRollupStreamWorkerInvariance(t *testing.T) {
	base := chaosRollupJSONL(t, 1)
	for _, w := range []int{4, 16} {
		if got := chaosRollupJSONL(t, w); !bytes.Equal(got, base) {
			t.Errorf("rollup JSONL at workers=%d differs from workers=1", w)
		}
	}
}

// TestChaosSLOFires pins the health evaluator end to end on a fault
// workload: an outage SLO must transition to violating in some window,
// annotate that window, and emit a health event that the flight recorder
// keeps (health transitions are an always-keep class).
func TestChaosSLOFires(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.05}
	cfg := ChaosScenario(o)
	tel := telemetry.New(telemetry.Config{
		Seed: 1,
		SLOs: []telemetry.SLORule{
			// Zero tolerance: any outage time in a window violates, so the
			// chaos plan's AP crashes are guaranteed to trip it.
			{Name: "outage-any", Signal: "outage_rate", Op: "max", Limit: 0},
		},
	})
	cfg.Telemetry = tel
	core.Run(cfg)

	violated := false
	for _, w := range tel.Windows() {
		for _, v := range w.Violations {
			if v == "outage-any" {
				violated = true
			}
		}
	}
	if !violated {
		t.Fatal("no window annotated with the outage-any violation")
	}
	found := false
	for _, ev := range tel.FlightEvents() {
		if ev.Kind == obs.KindHealthViolation {
			found = true
			if !strings.Contains(ev.Note, "outage-any outage_rate=") {
				t.Fatalf("health note %q missing rule/signal detail", ev.Note)
			}
			if ev.Value <= 0 {
				t.Fatalf("health event carries value %d, want the scaled signal", ev.Value)
			}
		}
	}
	if !found {
		t.Fatal("flight recorder kept no health.violation event")
	}
}

// TestTelemetryBoundedAtDense pins the bounded-memory contract on a dense
// city-scale rung shrunk to test size: with tight caps the aggregator
// must retain at most MaxWindows windows and at most the configured
// flight entries, count everything it sheds, and still finish the run.
func TestTelemetryBoundedAtDense(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.05}
	world, clients := PopulationDenseScenario(o, 32)
	tel := telemetry.New(telemetry.Config{
		Seed:         1,
		MaxWindows:   4,
		FlightEvents: 64,
		FlightSpans:  64,
		KeepClients:  1,
		SLOs:         telemetry.DefaultSLOs(),
	})
	world.Telemetry = tel
	core.RunPopulation(world, clients)

	if n := len(tel.Windows()); n > 4 {
		t.Fatalf("retained %d windows, cap is 4", n)
	}
	if tel.DroppedWindows() == 0 {
		t.Fatal("60s run closed no windows past the cap of 4")
	}
	fc := tel.FlightCounters()
	if fc.EventsKept > 64 || fc.SpansKept > 64 {
		t.Fatalf("flight rings exceeded caps: %+v", fc)
	}
	if fc.EventsEvicted == 0 {
		t.Fatal("dense run evicted nothing from a 64-event ring")
	}
	if len(tel.FlightEvents()) != fc.EventsKept {
		t.Fatalf("FlightEvents length %d != kept %d", len(tel.FlightEvents()), fc.EventsKept)
	}
}
