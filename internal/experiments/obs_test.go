package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"spider/internal/core"
	"spider/internal/fleet"
	"spider/internal/obs"
)

// chaosEventJSONL runs the chaos study on a fresh pool with the given
// worker count and returns the merged event JSONL. A fresh pool per call
// matters: the fleet result cache could otherwise satisfy the memoized
// study without re-running its jobs, leaving the collector empty.
func chaosEventJSONL(t *testing.T, workers int) []byte {
	t.Helper()
	pool := fleet.New(fleet.Config{Workers: workers})
	defer pool.Close()
	col := obs.NewCollector()
	o := Options{Seed: 1, Scale: 0.05, Fleet: pool.Group("chaos"), Events: col}
	ChaosStudy(o)
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no events collected")
	}
	return buf.Bytes()
}

// TestEventStreamWorkerInvariance is the tentpole determinism check: the
// merged event JSONL for the same (seed, scenario) must be byte-identical
// at 1, 4, and 16 workers. Every run's stream is a pure function of its
// (seed, config), events order by (sim-time, client, seq), and the
// collector exports in sorted label order, so scheduling cannot leak in.
func TestEventStreamWorkerInvariance(t *testing.T) {
	base := chaosEventJSONL(t, 1)
	for _, w := range []int{4, 16} {
		if got := chaosEventJSONL(t, w); !bytes.Equal(got, base) {
			t.Errorf("event JSONL at workers=%d differs from workers=1", w)
		}
	}
}

// TestRecordingDisabledIdentity checks the zero-cost-when-off contract:
// running the chaos scenario with a recorder attached must produce the
// same simulation outcome as running it with recording disabled — the
// observability layer observes, it never steers.
func TestRecordingDisabledIdentity(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.05}
	cfg := ChaosScenario(o)

	cfg.Obs = nil
	plain := core.Run(cfg)

	cfg.Obs = obs.NewRecorder()
	recorded := core.Run(cfg)
	if recorded.Events.Empty() {
		t.Fatal("recorded run reported no events")
	}
	recorded.Events = obs.Summary{} // the only field recording may differ in
	if !reflect.DeepEqual(plain, recorded) {
		t.Errorf("recording changed the simulation result:\nplain:    %+v\nrecorded: %+v", plain, recorded)
	}
}

// TestAppendixAManualClockStable pins the Clock seam: with a manual clock
// every wall-time read is deterministic, so the rendered table — timing
// columns included — must be byte-identical across runs.
func TestAppendixAManualClockStable(t *testing.T) {
	render := func() string {
		o := Options{Seed: 1, Scale: 0.05, Clock: obs.NewManual(25 * time.Microsecond)}
		return AppendixA(o).Render()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("AppendixA output not byte-stable under manual clock:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
