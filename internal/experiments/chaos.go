package experiments

import (
	"fmt"
	"strings"
	"time"

	"spider/internal/chaos"
	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/sim"
	"spider/internal/stats"
)

// ChaosResults bundles the fault-intensity sweep: the same town drive run
// under increasingly hostile conditions. Intensity 0 is the fault-free
// baseline the goodput-retention column normalizes against.
type ChaosResults struct {
	Duration sim.Time
	// Intensities are AP crashes per simulated minute; the companion
	// DHCP, backhaul, and noise processes scale with the same knob.
	Intensities []float64
	Results     []core.Result
	Hashes      []string // plan hash per intensity ("" for the baseline)
}

// chaosPlan builds the fault mix for one intensity: random-AP crashes
// with reboot, DHCP silence windows, backhaul blackholes, and noise
// bursts on the operating channel, all as seeded Poisson processes. The
// per-AP faults model flaky individual APs; the low-rate global
// blackhole models a neighborhood upstream outage, which is the fault
// every client link actually sees regardless of which AP serves it.
func chaosPlan(crashesPerMin float64) chaos.Plan {
	if crashesPerMin <= 0 {
		return chaos.Plan{}
	}
	mean := sim.Time(float64(time.Minute) / crashesPerMin)
	return chaos.Plan{Procs: []chaos.Process{
		{Kind: chaos.APCrash, Mean: mean, Duration: 8 * time.Second, AP: chaos.RandomAP},
		{Kind: chaos.DHCPSilence, Mean: 2 * mean, Duration: 10 * time.Second, AP: chaos.RandomAP},
		{Kind: chaos.BackhaulBlackhole, Mean: 3 * mean, Duration: 5 * time.Second, AP: chaos.RandomAP},
		{Kind: chaos.BackhaulBlackhole, Mean: 8 * mean, Duration: 6 * time.Second, AP: chaos.AllAPs},
		// Near-total loss long enough to starve the liveness pinger
		// (30 probes at 10 Hz): the one fault the client feels no
		// matter which AP currently serves it.
		{Kind: chaos.NoiseBurst, Mean: 2 * mean, Duration: 5 * time.Second, Channel: dot11.Channel1, Loss: 0.9},
	}}
}

// ChaosScenario returns the 2-crashes/min point of the chaos sweep as a
// standalone scenario config — the representative faulted run that
// spider-bench's -events export and the obs-overhead benchmark execute
// directly, bypassing the fleet result cache so events are always
// generated fresh.
func ChaosScenario(o Options) core.ScenarioConfig {
	plan := chaosPlan(2)
	mob, sites := townLoop(o.seed(), 10, 0.4)
	return core.ScenarioConfig{
		Seed:           o.seed(),
		Duration:       o.dur(10*time.Minute, 2*time.Minute),
		Preset:         core.SingleChannelMultiAP,
		PrimaryChannel: dot11.Channel1,
		Mobility:       mob,
		Sites:          sites,
		AP:             core.APOverrides{LeaseSecs: 15},
		Chaos:          &plan,
	}
}

// ChaosStudy sweeps fault intensity over the town drive in the paper's
// winning configuration (channel 1, multi-AP). The bundle is memoized
// under the canonical key plus every plan hash, so editing the fault mix
// invalidates cached results even at identical (seed, scale).
func ChaosStudy(o Options) *ChaosResults {
	intensities := []float64{0, 0.5, 1, 2, 4}
	plans := make([]chaos.Plan, len(intensities))
	hashes := make([]string, len(intensities))
	for i, inten := range intensities {
		plans[i] = chaosPlan(inten)
		if !plans[i].Empty() {
			hashes[i] = plans[i].Hash()
		}
	}
	key := o.Key("chaos") + "|plans=" + strings.Join(hashes, ",")
	return memoKey(o, key, func() *ChaosResults {
		dur := o.dur(10*time.Minute, 2*time.Minute)
		mob, sites := townLoop(o.seed(), 10, 0.4)
		cfgs := make([]core.ScenarioConfig, len(intensities))
		for i := range intensities {
			plan := plans[i]
			cfgs[i] = core.ScenarioConfig{
				Seed:           o.seed(),
				Duration:       dur,
				Preset:         core.SingleChannelMultiAP,
				PrimaryChannel: dot11.Channel1,
				Mobility:       mob,
				Sites:          sites,
				// Short leases (renew at ~7.5 s, within a typical town
				// encounter) so the sweep exercises mid-encounter renewal.
				AP: core.APOverrides{LeaseSecs: 15},
			}
			if !plan.Empty() {
				cfgs[i].Chaos = &plan
			}
		}
		return &ChaosResults{
			Duration:    dur,
			Intensities: intensities,
			Results:     runConfigsHealth(o, "chaos", cfgs),
			Hashes:      hashes,
		}
	})
}

// ChaosTable reports recovery and goodput-retention metrics per fault
// intensity.
func ChaosTable(cr *ChaosResults) Table {
	t := Table{
		ID:    "chaos",
		Title: "Fault-intensity sweep: recovery time and goodput retention",
		Columns: []string{
			"crashes/min", "faults", "recoveries", "mean rec (s)", "p95 rec (s)",
			"link drops", "renewals", "throughput", "retention",
		},
	}
	baseline := cr.Results[0].ThroughputKBps
	for i, r := range cr.Results {
		rec := stats.Summarize(r.Recoveries)
		p95 := "-"
		mean := "-"
		if rec.N > 0 {
			mean = fmt.Sprintf("%.1f", rec.Mean)
			p95 = fmt.Sprintf("%.1f", stats.NewCDF(r.Recoveries).Quantile(0.95))
		}
		retention := "-"
		if baseline > 0 {
			retention = fmt.Sprintf("%.1f%%", r.ThroughputKBps/baseline*100)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", cr.Intensities[i]),
			fmt.Sprintf("%d", r.Chaos.Injected),
			fmt.Sprintf("%d", len(r.Recoveries)),
			mean, p95,
			fmt.Sprintf("%d", r.LinkDowns),
			fmt.Sprintf("%d", r.LMM.LeaseRenewals),
			fmt.Sprintf("%.1f KB/s", r.ThroughputKBps),
			retention,
		})
	}
	return t
}

// ChaosRecoveryFigure reports the CDF of outage recovery times at each
// non-zero fault intensity.
func ChaosRecoveryFigure(cr *ChaosResults) Figure {
	fig := Figure{
		ID:     "chaos-recovery",
		Title:  "CDF of outage recovery times by fault intensity",
		XLabel: "recovery time (s)",
		YLabel: "frequency",
	}
	for i, r := range cr.Results {
		if cr.Intensities[i] == 0 || len(r.Recoveries) == 0 {
			continue
		}
		fig.Series = append(fig.Series,
			cdfSeries(fmt.Sprintf("%g crashes/min", cr.Intensities[i]), r.Recoveries, 60, 30))
	}
	return fig
}
