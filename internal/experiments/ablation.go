package experiments

import (
	"fmt"
	"time"

	"spider/internal/core"
	"spider/internal/stats"
)

// ablationCfg builds a ch1 multi-AP town run with a mutated config.
func ablationCfg(o Options, seed int64, mut func(*core.ScenarioConfig)) core.ScenarioConfig {
	mob, sites := townLoop(seed, 10, 0.45)
	cfg := core.ScenarioConfig{
		Seed:     seed,
		Duration: o.dur(20*time.Minute, 2*time.Minute),
		Preset:   core.SingleChannelMultiAP,
		Mobility: mob,
		Sites:    sites,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// meanOver runs an ablation config over several seeds as one sweep and
// averages throughput, connectivity, and completed joins.
func meanOver(o Options, base int64, mut func(*core.ScenarioConfig)) (tput, conn float64, joins float64) {
	seeds := o.n(3, 2)
	cfgs := make([]core.ScenarioConfig, seeds)
	for s := 0; s < seeds; s++ {
		cfgs[s] = ablationCfg(o, base+int64(s)*331, mut)
	}
	var tputs, conns, joinCounts []float64
	for _, res := range runConfigs(o, "ablation", cfgs) {
		tputs = append(tputs, res.ThroughputKBps)
		conns = append(conns, res.Connectivity*100)
		joinCounts = append(joinCounts, float64(res.LMM.JoinsComplete))
	}
	return stats.Summarize(tputs).Mean, stats.Summarize(conns).Mean, stats.Summarize(joinCounts).Mean
}

// AblationLeaseCache isolates design element "per-BSSID DHCP lease
// caching": identical runs with the cache on and off.
func AblationLeaseCache(o Options) Table {
	t := Table{
		ID:      "ablation-leasecache",
		Title:   "Ablation: per-BSSID DHCP lease cache",
		Columns: []string{"configuration", "throughput", "connectivity", "joins completed"},
	}
	for _, cache := range []bool{true, false} {
		cache := cache
		tput, conn, joins := meanOver(o, o.seed(), func(c *core.ScenarioConfig) {
			timers := core.ReducedTimers()
			timers.UseLeaseCache = cache
			c.Timers = &timers
		})
		name := "lease cache on (Spider)"
		if !cache {
			name = "lease cache off"
		}
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.1f KB/s", tput), fmt.Sprintf("%.1f%%", conn), fmt.Sprintf("%.1f", joins)})
	}
	return t
}

// AblationTimers isolates design element "reduced join timeouts".
func AblationTimers(o Options) Table {
	t := Table{
		ID:      "ablation-timers",
		Title:   "Ablation: reduced vs default join timers",
		Columns: []string{"configuration", "throughput", "connectivity", "joins completed"},
	}
	profiles := []struct {
		name   string
		timers core.TimerProfile
	}{
		{"reduced timers (Spider)", core.ReducedTimers()},
		{"default timers", func() core.TimerProfile {
			p := core.DefaultTimers()
			p.FailureBackoff = 5 * time.Second // isolate the timer effect
			p.UseLeaseCache = true
			return p
		}()},
	}
	for _, pr := range profiles {
		timers := pr.timers
		tput, conn, joins := meanOver(o, o.seed(), func(c *core.ScenarioConfig) { c.Timers = &timers })
		t.Rows = append(t.Rows, []string{pr.name,
			fmt.Sprintf("%.1f KB/s", tput), fmt.Sprintf("%.1f%%", conn), fmt.Sprintf("%.1f", joins)})
	}
	return t
}

// AblationInterfaces sweeps the virtual-interface count (design choice 3's
// "one interface per AP" needs enough interfaces to matter).
func AblationInterfaces(o Options) Table {
	t := Table{
		ID:      "ablation-vifs",
		Title:   "Ablation: number of virtual interfaces",
		Columns: []string{"interfaces", "throughput", "connectivity", "joins completed"},
	}
	for _, n := range []int{1, 2, 4, 7} {
		n := n
		tput, conn, joins := meanOver(o, o.seed(), func(c *core.ScenarioConfig) { c.NumVIFs = n })
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f KB/s", tput), fmt.Sprintf("%.1f%%", conn), fmt.Sprintf("%.1f", joins)})
	}
	return t
}

// AblationStriping compares bulk per-link downloads against the
// data-striping extension fetching 2 MiB objects across live links.
func AblationStriping(o Options) Table {
	t := Table{
		ID:      "ablation-striping",
		Title:   "Ablation: data striping across concurrent links (2 MiB objects)",
		Columns: []string{"configuration", "objects fetched", "median object time", "throughput"},
	}
	const object = 2 << 20
	for _, cs := range []struct {
		name string
		mut  func(*core.ScenarioConfig)
	}{
		{"striped, multi-AP", func(c *core.ScenarioConfig) { c.StripeObjectBytes = object }},
		{"striped, single-AP", func(c *core.ScenarioConfig) {
			c.StripeObjectBytes = object
			c.Preset = core.SingleChannelSingleAP
		}},
	} {
		seeds := o.n(3, 2)
		cfgs := make([]core.ScenarioConfig, seeds)
		for s := 0; s < seeds; s++ {
			cfgs[s] = ablationCfg(o, o.seed()+int64(s)*331, cs.mut)
		}
		objects := 0
		var times []float64
		var tput float64
		for _, res := range runConfigs(o, "ablation-striping", cfgs) {
			objects += res.StripeObjects
			times = append(times, res.StripeObjectSecs...)
			tput += res.ThroughputKBps
		}
		med := stats.Summarize(times).Median
		t.Rows = append(t.Rows, []string{cs.name,
			fmt.Sprintf("%.1f", float64(objects)/float64(seeds)),
			fmt.Sprintf("%.1f s", med),
			fmt.Sprintf("%.1f KB/s", tput/float64(seeds))})
	}
	return t
}

// AblationAdaptive compares the future-work adaptive scheduler against
// both static modes at a slow and a fast speed.
func AblationAdaptive(o Options) Table {
	t := Table{
		ID:      "ablation-adaptive",
		Title:   "Ablation: adaptive scheduling vs static modes",
		Columns: []string{"speed", "mode", "throughput", "connectivity"},
	}
	modes := []struct {
		name   string
		preset core.Preset
	}{
		{"single-channel", core.SingleChannelMultiAP},
		{"multi-channel", core.MultiChannelMultiAP},
		{"adaptive", core.Adaptive},
	}
	speeds := []float64{3, 15}
	cfgs := make([]core.ScenarioConfig, 0, len(speeds)*len(modes))
	for _, speed := range speeds {
		for _, cs := range modes {
			mob, sites := townLoop(o.seed(), speed, 0.45)
			cfgs = append(cfgs, core.ScenarioConfig{
				Seed:     o.seed(),
				Duration: o.dur(15*time.Minute, 2*time.Minute),
				Preset:   cs.preset,
				Mobility: mob,
				Sites:    sites,
			})
		}
	}
	results := runConfigs(o, "ablation-adaptive", cfgs)
	i := 0
	for _, speed := range speeds {
		for _, cs := range modes {
			res := results[i]
			i++
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f m/s", speed), cs.name,
				fmt.Sprintf("%.1f KB/s", res.ThroughputKBps),
				fmt.Sprintf("%.1f%%", res.Connectivity*100)})
		}
	}
	return t
}

// AblationPredictive evaluates the encounter-history extension: on a town
// whose channels differ by road segment, the predictive planner should
// converge past the static schedules as laps accumulate.
func AblationPredictive(o Options) Table {
	t := Table{
		ID:      "ablation-predictive",
		Title:   "Ablation: encounter-history channel planning",
		Columns: []string{"mode", "throughput", "connectivity", "joins completed"},
	}
	mob, sites := townLoop(o.seed(), 10, 0.45)
	modes := []struct {
		name   string
		preset core.Preset
	}{
		{"static single-channel (ch1)", core.SingleChannelMultiAP},
		{"static rotation (3 channels)", core.MultiChannelMultiAP},
		{"predictive planner", core.Predictive},
	}
	cfgs := make([]core.ScenarioConfig, len(modes))
	for i, cs := range modes {
		cfgs[i] = core.ScenarioConfig{
			Seed:     o.seed(),
			Duration: o.dur(20*time.Minute, 3*time.Minute),
			Preset:   cs.preset,
			Mobility: mob,
			Sites:    sites,
		}
	}
	for i, res := range runConfigs(o, "ablation-predictive", cfgs) {
		t.Rows = append(t.Rows, []string{modes[i].name,
			fmt.Sprintf("%.1f KB/s", res.ThroughputKBps),
			fmt.Sprintf("%.1f%%", res.Connectivity*100),
			fmt.Sprintf("%d", res.LMM.JoinsComplete)})
	}
	return t
}

// AblationEnergy compares configurations by radio energy per delivered
// bit, the offload-efficiency motivation from the paper's introduction.
func AblationEnergy(o Options) Table {
	t := Table{
		ID:      "ablation-energy",
		Title:   "Energy efficiency by configuration",
		Columns: []string{"configuration", "throughput", "total energy", "per-bit"},
	}
	mob, sites := townLoop(o.seed(), 10, 0.45)
	modes := []struct {
		name   string
		preset core.Preset
	}{
		{"single-channel, multi-AP", core.SingleChannelMultiAP},
		{"multi-channel, multi-AP", core.MultiChannelMultiAP},
		{"stock", core.Stock},
	}
	cfgs := make([]core.ScenarioConfig, len(modes))
	for i, cs := range modes {
		cfgs[i] = core.ScenarioConfig{
			Seed:     o.seed(),
			Duration: o.dur(15*time.Minute, 2*time.Minute),
			Preset:   cs.preset,
			Mobility: mob,
			Sites:    sites,
		}
	}
	for i, res := range runConfigs(o, "ablation-energy", cfgs) {
		t.Rows = append(t.Rows, []string{modes[i].name,
			fmt.Sprintf("%.1f KB/s", res.ThroughputKBps),
			fmt.Sprintf("%.0f J", res.Energy.TotalJ()),
			fmt.Sprintf("%.2f µJ/bit", res.EnergyPerBitMicroJ)})
	}
	return t
}
