package experiments

import (
	"strings"
	"testing"

	"spider/internal/core"
	"spider/internal/fleet"
)

// populationOutput renders the full population sweep (table, CSV, and
// figure) through a pool with the given worker count; 0 means inline.
func populationOutput(workers int) string {
	o := Options{Seed: 1, Scale: 0.02}
	if workers > 0 {
		pool := fleet.New(fleet.Config{Workers: workers})
		defer pool.Close()
		o.Fleet = pool.Group("population")
	}
	r := PopulationStudy(o)
	tab := PopulationTable(r)
	return tab.Render() + "\n" + tab.CSV() + "\n" + PopulationFigure(r).Render()
}

// TestPopulationWorkerCountInvariance extends the determinism regression
// to N-client runs: the population sweep must render byte-identically
// inline, at one worker, and at eight workers. Each rung is a single
// N-client scenario whose clients share one engine, so only rung order —
// fixed by job order — could ever leak.
func TestPopulationWorkerCountInvariance(t *testing.T) {
	inline := populationOutput(0)
	if !strings.Contains(inline, "jain") {
		t.Fatalf("population table missing fairness column:\n%s", inline)
	}
	if w1 := populationOutput(1); w1 != inline {
		t.Errorf("workers=1 differs from inline run:\n--- inline ---\n%s\n--- workers=1 ---\n%s", inline, w1)
	}
	if w8 := populationOutput(8); w8 != inline {
		t.Errorf("workers=8 differs from inline run:\n--- inline ---\n%s\n--- workers=8 ---\n%s", inline, w8)
	}
}

// TestPopulationScenarioMatchesStudy: executing one rung directly (the
// -popjson benchmark path) reproduces the study's numbers for that rung.
func TestPopulationScenarioMatchesStudy(t *testing.T) {
	o := Options{Seed: 1, Scale: 0.02}
	study := PopulationStudy(o)
	world, clients := PopulationScenario(o, study.Sizes[1])
	direct := core.RunPopulation(world, clients)
	if got, want := direct.AggregateKBps, study.Results[1].AggregateKBps; got != want {
		t.Fatalf("direct rung aggregate %g != study aggregate %g", got, want)
	}
	if got, want := direct.JainFairness, study.Results[1].JainFairness; got != want {
		t.Fatalf("direct rung fairness %g != study fairness %g", got, want)
	}
}
