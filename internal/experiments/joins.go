package experiments

import (
	"fmt"
	"time"

	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/geo"
	"spider/internal/lmm"
	"spider/internal/mobility"
	"spider/internal/sim"
	"spider/internal/stats"
)

// townLoop returns the standard evaluation town: a 1.2 km × 0.6 km block
// loop with Poisson roadside APs in the measured channel mix.
func townLoop(seed int64, speed float64, openFraction float64) (mobility.Model, []mobility.APSite) {
	loop := []geo.Point{
		{X: 0, Y: 0}, {X: 1200, Y: 0}, {X: 1200, Y: 600}, {X: 0, Y: 600},
	}
	m := mobility.NewWaypoints(loop, speed, true)
	dc := mobility.DefaultDeployConfig()
	dc.APsPerKm = 25
	dc.OpenFraction = openFraction
	// Deploy along the closed loop.
	route := append(append([]geo.Point(nil), loop...), loop[0])
	sites := mobility.DeployAlongRoute(sim.NewRNG(seed).Stream("deploy"), route, dc)
	return m, sites
}

// fractionSchedule builds the paper's f6 schedule: fraction x of period D
// on channel 6, the remainder split between channels 1 and 11.
func fractionSchedule(x float64, d sim.Time) []driver.Slot {
	if x >= 1 {
		return []driver.Slot{{Channel: dot11.Channel6}}
	}
	on := sim.Time(float64(d) * x)
	off := (d - on) / 2
	return []driver.Slot{
		{Channel: dot11.Channel6, Duration: on},
		{Channel: dot11.Channel1, Duration: off},
		{Channel: dot11.Channel11, Duration: off},
	}
}

// joinCfg builds the traffic-free vehicular run every join experiment
// uses. Each config owns its timers copy so sharded runs never alias.
func joinCfg(o Options, seed int64, schedule []driver.Slot, timers core.TimerProfile, numVIFs int) core.ScenarioConfig {
	mob, sites := townLoop(seed, 10, 0.5)
	return core.ScenarioConfig{
		Seed:           seed,
		Duration:       o.dur(20*time.Minute, time.Minute),
		Preset:         core.SingleChannelMultiAP,
		CustomSchedule: schedule,
		Timers:         &timers,
		Mobility:       mob,
		Sites:          sites,
		NumVIFs:        numVIFs,
		DisableTraffic: true,
	}
}

// joinRun executes a traffic-free vehicular run and returns its join
// records.
func joinRun(o Options, seed int64, schedule []driver.Slot, timers core.TimerProfile, numVIFs int) []lmm.JoinRecord {
	return core.Run(joinCfg(o, seed, schedule, timers, numVIFs)).Joins
}

// joinSweep executes a batch of join configs as one fleet sweep and
// returns each run's join records in config order.
func joinSweep(o Options, id string, cfgs []core.ScenarioConfig) [][]lmm.JoinRecord {
	results := runConfigs(o, id, cfgs)
	joins := make([][]lmm.JoinRecord, len(results))
	for i, r := range results {
		joins[i] = r.Joins
	}
	return joins
}

// successCDF builds a Series whose Y at time x is the fraction of attempts
// (denominator) whose duration sample is ≤ x seconds.
func successCDF(name string, durations []float64, attempts int, maxX float64, points int) Series {
	c := stats.NewCDF(durations)
	s := Series{Name: name}
	scale := 0.0
	if attempts > 0 {
		scale = float64(len(durations)) / float64(attempts)
	}
	for i := 0; i <= points; i++ {
		x := maxX * float64(i) / float64(points)
		s.X = append(s.X, x)
		s.Y = append(s.Y, c.P(x)*scale)
	}
	return s
}

// Figure5 reproduces the association-time experiment: the rate of
// successful link-layer associations on channel 6 as a function of the
// fraction of the 400 ms period spent there.
func Figure5(o Options) Figure {
	fig := Figure{
		ID:     "fig5",
		Title:  "Successful associations vs time, by channel-6 schedule fraction",
		XLabel: "time to associate (s)",
		YLabel: "fraction of successful associations",
	}
	timers := core.ReducedTimers()
	fracs := []float64{0.25, 0.50, 0.75, 1.00}
	seeds := int64(o.n(3, 1))
	var cfgs []core.ScenarioConfig
	for i, frac := range fracs {
		sched := fractionSchedule(frac, 400*time.Millisecond)
		for s := int64(0); s < seeds; s++ {
			cfgs = append(cfgs, joinCfg(o, o.seed()+s*1000+int64(i), sched, timers, 7))
		}
	}
	joins := joinSweep(o, "fig5", cfgs)
	for i, frac := range fracs {
		var durations []float64
		attempts := 0
		for s := int64(0); s < seeds; s++ {
			for _, j := range joins[int64(i)*seeds+s] {
				if j.Channel != dot11.Channel6 {
					continue
				}
				attempts++
				if j.Stage != lmm.StageAssocFailed {
					durations = append(durations, j.AssocDur.Seconds())
				}
			}
		}
		fig.Series = append(fig.Series,
			successCDF(fmt.Sprintf("%.0f%%", frac*100), durations, attempts, 1.0, 20))
	}
	return fig
}

// Figure6 reproduces the DHCP experiment: the rate of successful leases on
// channel 6 versus time, by schedule fraction and DHCP timeout.
func Figure6(o Options) Figure {
	fig := Figure{
		ID:     "fig6",
		Title:  "Successful DHCP leases vs time, by schedule fraction and timeout",
		XLabel: "time to obtain dhcp lease (s)",
		YLabel: "fraction of successful leases",
	}
	type cfg struct {
		name  string
		frac  float64
		retry sim.Time
		deflt bool
	}
	cases := []cfg{
		{"25% - 100ms", 0.25, 100 * time.Millisecond, false},
		{"50% - 100ms", 0.50, 100 * time.Millisecond, false},
		{"100% - 100ms", 1.0, 100 * time.Millisecond, false},
		{"100% - default", 1.0, 0, true},
	}
	seeds := int64(o.n(3, 1))
	var cfgs []core.ScenarioConfig
	for i, cs := range cases {
		timers := core.ReducedTimers()
		if cs.deflt {
			timers = core.DefaultTimers()
			timers.FailureBackoff = 5 * time.Second // keep attempts coming
		} else {
			timers.DHCPRetry = cs.retry
		}
		sched := fractionSchedule(cs.frac, 400*time.Millisecond)
		for s := int64(0); s < seeds; s++ {
			cfgs = append(cfgs, joinCfg(o, o.seed()+s*1000+int64(i)*37, sched, timers, 7))
		}
	}
	joins := joinSweep(o, "fig6", cfgs)
	for i, cs := range cases {
		var durations []float64
		attempts := 0
		for s := int64(0); s < seeds; s++ {
			for _, j := range joins[int64(i)*seeds+s] {
				if j.Channel != dot11.Channel6 || j.Stage == lmm.StageAssocFailed {
					continue
				}
				attempts++ // reached DHCP
				if j.Stage == lmm.StagePingFailed || j.Stage == lmm.StageComplete {
					durations = append(durations, j.DHCPDur.Seconds())
				}
			}
		}
		fig.Series = append(fig.Series, successCDF(cs.name, durations, attempts, 15, 30))
	}
	return fig
}

// Table3 reproduces the DHCP failure-probability table across timeout and
// schedule configurations: mean ± stddev over seeds.
func Table3(o Options) Table {
	t := Table{
		ID:      "table3",
		Title:   "DHCP failure probabilities by timeout configuration",
		Columns: []string{"parameters", "failed dhcp"},
	}
	single := []driver.Slot{{Channel: dot11.Channel1}}
	third := []driver.Slot{
		{Channel: dot11.Channel1, Duration: 200 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 200 * time.Millisecond},
		{Channel: dot11.Channel11, Duration: 200 * time.Millisecond},
	}
	type cfg struct {
		name  string
		sched []driver.Slot
		retry sim.Time
		deflt bool
	}
	cases := []cfg{
		{"chan 1, linklayer: 100ms, dhcp: 600ms, 7 interfaces", single, 600 * time.Millisecond, false},
		{"chan 1, linklayer: 100ms, dhcp: 400ms, 7 interfaces", single, 400 * time.Millisecond, false},
		{"chan 1, linklayer: 100ms, dhcp: 200ms, 7 interfaces", single, 200 * time.Millisecond, false},
		{"3 chans, static 1/3 schedule, linklayer: 100ms, dhcp: 200ms, 7 interfaces", third, 200 * time.Millisecond, false},
		{"chan 1, default timer, 7 interfaces", single, 0, true},
		{"3 chans, static 1/3 schedule, default timer, 7 interfaces", third, 0, true},
	}
	seeds := o.n(5, 2)
	var cfgs []core.ScenarioConfig
	for ci, cs := range cases {
		timers := core.ReducedTimers()
		if cs.deflt {
			timers = core.DefaultTimers()
			timers.FailureBackoff = 5 * time.Second
		} else {
			timers.DHCPRetry = cs.retry
		}
		for s := 0; s < seeds; s++ {
			cfgs = append(cfgs, joinCfg(o, o.seed()+int64(s)*211+int64(ci)*7919, cs.sched, timers, 7))
		}
	}
	joins := joinSweep(o, "table3", cfgs)
	for ci, cs := range cases {
		var rates []float64
		for s := 0; s < seeds; s++ {
			att, fail := 0, 0
			for _, j := range joins[ci*seeds+s] {
				if j.Stage == lmm.StageAssocFailed {
					continue
				}
				att++
				if j.Stage == lmm.StageDHCPFailed {
					fail++
				}
			}
			if att > 0 {
				rates = append(rates, float64(fail)/float64(att)*100)
			}
		}
		sum := stats.Summarize(rates)
		t.Rows = append(t.Rows, []string{cs.name, fmt.Sprintf("%.1f%% ±%.1f%%", sum.Mean, sum.Std)})
	}
	return t
}

// joinTimeSeriesCase is a shared config row for Figures 14 and 15.
type joinTimeSeriesCase struct {
	name    string
	sched   []driver.Slot
	timers  core.TimerProfile
	numVIFs int
}

// joinTimeFigure runs a set of cases and reports the CDF of the total join
// time (association + DHCP) for completed leases, normalized by attempts
// that began associating.
func joinTimeFigure(o Options, id, title string, cases []joinTimeSeriesCase) Figure {
	fig := Figure{
		ID:     id,
		Title:  title,
		XLabel: "time to join (association+dhcp) (s)",
		YLabel: "fraction of connections",
	}
	seeds := int64(o.n(3, 1))
	var cfgs []core.ScenarioConfig
	for ci, cs := range cases {
		for s := int64(0); s < seeds; s++ {
			cfgs = append(cfgs, joinCfg(o, o.seed()+s*503+int64(ci)*101, cs.sched, cs.timers, cs.numVIFs))
		}
	}
	joins := joinSweep(o, id, cfgs)
	for ci, cs := range cases {
		var durations []float64
		attempts := 0
		for s := int64(0); s < seeds; s++ {
			for _, j := range joins[int64(ci)*seeds+s] {
				attempts++
				if j.Stage == lmm.StagePingFailed || j.Stage == lmm.StageComplete {
					durations = append(durations, (j.AssocDur + j.DHCPDur).Seconds())
				}
			}
		}
		fig.Series = append(fig.Series, successCDF(cs.name, durations, attempts, 15, 30))
	}
	return fig
}

// Figure14 reproduces the DHCP-timeout sweep: join-time CDFs for reduced
// timeouts on channel 1 and on a three-channel schedule.
func Figure14(o Options) Figure {
	single := []driver.Slot{{Channel: dot11.Channel1}}
	third := fractionSchedule(1.0/3, 600*time.Millisecond)
	mk := func(retry sim.Time, deflt bool) core.TimerProfile {
		t := core.ReducedTimers()
		if deflt {
			t = core.DefaultTimers()
			t.FailureBackoff = 5 * time.Second
		} else {
			t.DHCPRetry = retry
		}
		return t
	}
	return joinTimeFigure(o, "fig14", "Join time vs DHCP timeout", []joinTimeSeriesCase{
		{"200ms, channel 1", single, mk(200*time.Millisecond, false), 7},
		{"400ms, channel 1", single, mk(400*time.Millisecond, false), 7},
		{"600ms, channel 1", single, mk(600*time.Millisecond, false), 7},
		{"default, channel 1", single, mk(0, true), 7},
		{"default, 3 channels", third, mk(0, true), 7},
		{"200ms, 3 channels", third, mk(200*time.Millisecond, false), 7},
	})
}

// Figure15 reproduces the scheduling-policy sweep: join-time CDFs by
// interface count, schedule, and timeout profile.
func Figure15(o Options) Figure {
	single := []driver.Slot{{Channel: dot11.Channel1}}
	half := []driver.Slot{
		{Channel: dot11.Channel1, Duration: 200 * time.Millisecond},
		{Channel: dot11.Channel6, Duration: 200 * time.Millisecond},
	}
	third := fractionSchedule(1.0/3, 600*time.Millisecond)
	deflt := core.DefaultTimers()
	deflt.FailureBackoff = 5 * time.Second
	reduced := core.ReducedTimers()
	reduced.DHCPRetry = 200 * time.Millisecond
	return joinTimeFigure(o, "fig15", "Join time vs scheduling policy", []joinTimeSeriesCase{
		{"1 iface, ch1(100%), def. TO", single, deflt, 1},
		{"7 ifaces, ch1(100%), def. TO", single, deflt, 7},
		{"7 ifaces, ch1(100%), dhcp=200ms ll=100ms", single, reduced, 7},
		{"7 ifaces, ch1(50%) ch6(50%), def. TO", half, deflt, 7},
		{"7 ifaces, 3 chans eq., def. TO", third, deflt, 7},
		{"7 ifaces, 3 chans eq., dhcp=200ms ll=100ms", third, reduced, 7},
	})
}
