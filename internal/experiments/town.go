package experiments

import (
	"fmt"
	"time"

	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/driver"
	"spider/internal/sim"
	"spider/internal/stats"
	"spider/internal/trace"
)

// TownResults bundles the full set of downtown driving runs that Table 2,
// Table 4, and Figures 11-13 and 16-17 share.
type TownResults struct {
	Duration sim.Time
	// Runs holds one result per configuration, keyed by the names below.
	Runs map[string]core.Result
}

// Town run keys.
const (
	RunCh1Multi    = "ch1-multi"
	RunCh1Single   = "ch1-single"
	RunMultiMulti  = "multi-multi"
	RunMultiSingle = "multi-single"
	RunCh6Single   = "ch6-single"
	RunStock       = "stock"
	RunTwoChMulti  = "2ch-multi"
)

// TownStudy drives the evaluation loop through every configuration the
// paper compares. All runs share the same town, route, and seed. The
// seven configurations are independent simulations, so they execute as
// one fleet sweep; the bundle is memoized under the canonical options key
// so every town-derived experiment (Tables 2/4, Figures 11-13 and 16-17,
// the AP-density summary) shares a single computation per invocation.
func TownStudy(o Options) *TownResults {
	return memo(o, "townstudy", func() *TownResults { return townStudy(o) })
}

func townStudy(o Options) *TownResults {
	dur := o.dur(30*time.Minute, 2*time.Minute)
	mob, sites := townLoop(o.seed(), 10, 0.4)
	base := core.ScenarioConfig{
		Seed:     o.seed(),
		Duration: dur,
		Mobility: mob,
		Sites:    sites,
	}
	// Multi-channel static schedule: D = 600 ms split equally (paper's
	// Table 2 note).
	plan := []struct {
		key string
		mut func(*core.ScenarioConfig)
	}{
		{RunCh1Multi, func(c *core.ScenarioConfig) {
			c.Preset = core.SingleChannelMultiAP
			c.PrimaryChannel = dot11.Channel1
		}},
		{RunCh1Single, func(c *core.ScenarioConfig) {
			c.Preset = core.SingleChannelSingleAP
			c.PrimaryChannel = dot11.Channel1
		}},
		{RunMultiMulti, func(c *core.ScenarioConfig) {
			c.Preset = core.MultiChannelMultiAP
			c.SlotDuration = 200 * time.Millisecond
		}},
		{RunMultiSingle, func(c *core.ScenarioConfig) {
			c.Preset = core.MultiChannelSingleAP
			c.SlotDuration = 200 * time.Millisecond
		}},
		{RunCh6Single, func(c *core.ScenarioConfig) {
			c.Preset = core.SingleChannelSingleAP
			c.PrimaryChannel = dot11.Channel6
		}},
		{RunStock, func(c *core.ScenarioConfig) {
			c.Preset = core.Stock
		}},
		{RunTwoChMulti, func(c *core.ScenarioConfig) {
			c.Preset = core.MultiChannelMultiAP
			c.CustomSchedule = []driver.Slot{
				{Channel: dot11.Channel1, Duration: 200 * time.Millisecond},
				{Channel: dot11.Channel6, Duration: 200 * time.Millisecond},
			}
		}},
	}
	cfgs := make([]core.ScenarioConfig, len(plan))
	for i, p := range plan {
		cfg := base
		p.mut(&cfg)
		cfgs[i] = cfg
	}
	results := runConfigs(o, "townstudy", cfgs)
	tr := &TownResults{Duration: dur, Runs: make(map[string]core.Result, len(plan))}
	for i, p := range plan {
		tr.Runs[p.key] = results[i]
	}
	return tr
}

func throughputRow(r core.Result) (string, string) {
	return fmt.Sprintf("%.1f KB/s", r.ThroughputKBps),
		fmt.Sprintf("%.1f%%", r.Connectivity*100)
}

// Table2 reports average throughput and connectivity for the paper's six
// configurations.
func Table2(tr *TownResults) Table {
	t := Table{
		ID:      "table2",
		Title:   "Avg. throughput and connectivity for Spider configurations",
		Columns: []string{"(config) parameters", "throughput", "connectivity"},
	}
	rows := []struct{ label, key string }{
		{"(1) Channel 1, Multi-AP", RunCh1Multi},
		{"(2) Channel 1, Single-AP", RunCh1Single},
		{"(3) Multi-channel, Multi-AP", RunMultiMulti},
		{"(4) Multi-channel, Single-AP", RunMultiSingle},
		{"(2) Channel 6, Single-AP", RunCh6Single},
		{"MadWiFi driver (stock)", RunStock},
	}
	for _, row := range rows {
		r := tr.Runs[row.key]
		tput, conn := throughputRow(r)
		t.Rows = append(t.Rows, []string{row.label, tput, conn})
	}
	return t
}

// Table4 reports the channel-count sweep: three channels, two channels,
// and a single channel.
func Table4(tr *TownResults) Table {
	t := Table{
		ID:      "table4",
		Title:   "Throughput and connectivity by number of scheduled channels",
		Columns: []string{"parameters", "throughput", "connectivity"},
	}
	rows := []struct{ label, key string }{
		{"3-channel (equal schedule)", RunMultiMulti},
		{"2-channel (equal schedule)", RunTwoChMulti},
		{"Single-channel", RunCh1Multi},
	}
	for _, row := range rows {
		r := tr.Runs[row.key]
		tput, conn := throughputRow(r)
		t.Rows = append(t.Rows, []string{row.label, tput, conn})
	}
	return t
}

// cdfSeries renders a sample set as a CDF series capped at maxX.
func cdfSeries(name string, samples []float64, maxX float64, points int) Series {
	c := stats.NewCDF(samples)
	s := Series{Name: name}
	for i := 0; i <= points; i++ {
		x := maxX * float64(i) / float64(points)
		s.X = append(s.X, x)
		s.Y = append(s.Y, c.P(x))
	}
	return s
}

// fourConfigs maps town runs to the figure legend used by Figs 11-13.
var fourConfigs = []struct{ label, key string }{
	{"single AP (ch1)", RunCh1Single},
	{"multiple APs (ch1)", RunCh1Multi},
	{"single AP (multi-channel)", RunMultiSingle},
	{"multiple APs (multi-channel)", RunMultiMulti},
}

// Figure11 reports the CDF of Internet connectivity durations.
func Figure11(tr *TownResults) Figure {
	fig := Figure{
		ID:     "fig11",
		Title:  "CDF of connection durations",
		XLabel: "connection duration (s)",
		YLabel: "frequency",
	}
	for _, cfgRow := range fourConfigs {
		fig.Series = append(fig.Series,
			cdfSeries(cfgRow.label, tr.Runs[cfgRow.key].ConnectionDurations, 250, 25))
	}
	return fig
}

// Figure12 reports the CDF of disruption lengths.
func Figure12(tr *TownResults) Figure {
	fig := Figure{
		ID:     "fig12",
		Title:  "CDF of disruption lengths",
		XLabel: "disruption length (s)",
		YLabel: "frequency",
	}
	for _, cfgRow := range fourConfigs {
		fig.Series = append(fig.Series,
			cdfSeries(cfgRow.label, tr.Runs[cfgRow.key].DisruptionDurations, 300, 30))
	}
	return fig
}

// Figure13 reports the CDF of instantaneous bandwidth while connected.
func Figure13(tr *TownResults) Figure {
	fig := Figure{
		ID:     "fig13",
		Title:  "CDF of instantaneous bandwidth during connectivity",
		XLabel: "bandwidth (KBps)",
		YLabel: "frequency",
	}
	for _, cfgRow := range fourConfigs {
		fig.Series = append(fig.Series,
			cdfSeries(cfgRow.label, tr.Runs[cfgRow.key].InstRatesKBps, 1200, 40))
	}
	return fig
}

// Figure16 compares mesh users' TCP flow durations with Spider's connection
// durations in its single-channel and multi-channel multi-AP modes.
func Figure16(o Options, tr *TownResults) Figure {
	fig := Figure{
		ID:     "fig16",
		Title:  "Connection lengths: wireless users vs Spider",
		XLabel: "connection duration (s)",
		YLabel: "frequency",
	}
	cfg := trace.DefaultMeshConfig()
	cfg.Flows = o.n(cfg.Flows, 2000)
	mesh := trace.Synthesize(sim.NewRNG(o.seed()).Stream("mesh"), cfg)
	fig.Series = append(fig.Series,
		cdfSeries("multiple APs (ch1)", tr.Runs[RunCh1Multi].ConnectionDurations, 100, 25),
		cdfSeries("users connection duration", mesh.FlowDurations, 100, 25),
		cdfSeries("multiple APs (multi-channel)", tr.Runs[RunMultiMulti].ConnectionDurations, 100, 25),
	)
	return fig
}

// Figure17 compares mesh users' inter-connection gaps with Spider's
// disruption lengths.
func Figure17(o Options, tr *TownResults) Figure {
	fig := Figure{
		ID:     "fig17",
		Title:  "Disruption lengths: wireless users vs Spider",
		XLabel: "disruption length (s)",
		YLabel: "frequency",
	}
	cfg := trace.DefaultMeshConfig()
	cfg.Flows = o.n(cfg.Flows, 2000)
	mesh := trace.Synthesize(sim.NewRNG(o.seed()).Stream("mesh"), cfg)
	fig.Series = append(fig.Series,
		cdfSeries("multiple APs (ch1)", tr.Runs[RunCh1Multi].DisruptionDurations, 300, 30),
		cdfSeries("user inter-connection", mesh.InterConnectionGaps, 300, 30),
		cdfSeries("multiple APs (multi-channel)", tr.Runs[RunMultiMulti].DisruptionDurations, 300, 30),
	)
	return fig
}

// APDensity reports how many concurrent APs Spider held in the ch1
// multi-AP run (Section 4.4's observation: mostly 1, sometimes 2-3).
func APDensity(tr *TownResults) Table {
	t := Table{
		ID:      "ap-density",
		Title:   "Fraction of time associated with k concurrent APs (ch1 multi-AP)",
		Columns: []string{"concurrent APs", "fraction of time"},
	}
	r := tr.Runs[RunCh1Multi]
	total := 0
	maxK := 0
	for k, secs := range r.LinkSeconds {
		total += secs
		if k > maxK {
			maxK = k
		}
	}
	for k := 0; k <= maxK; k++ {
		if total == 0 {
			break
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f%%", float64(r.LinkSeconds[k])/float64(total)*100),
		})
	}
	return t
}
