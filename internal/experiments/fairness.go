package experiments

import (
	"fmt"
	"time"

	"spider/internal/alloc"
	"spider/internal/core"
	"spider/internal/dot11"
	"spider/internal/geo"
	"spider/internal/mobility"
	"spider/internal/sim"
)

// The fairness frontier answers the collapse question the population sweep
// exposed: at 64 clients the selfish utility heuristic piles the herd onto
// the same APs, Jain fairness craters, and aggregate goodput drops below
// the 8-client figure. This study sweeps the population ladder under three
// association/airtime policies — the legacy heuristic, the decentralized
// contention-inference allocator, and the centralized proportional-fair
// oracle — and plots the Jain and aggregate-goodput frontiers each traces.

// fairnessSizes is the swept ladder, 1 → 1024. The 64-client rung is the
// collapse point the issue names; 256/1024 probe city scale.
var fairnessSizes = []int{1, 4, 16, 64, 256, 1024}

// fairnessArms are the compared policies in frontier order. Variant 0 is
// the legacy selfish heuristic (WorldConfig.Alloc nil).
var fairnessArms = []alloc.Variant{0, alloc.Decentralized, alloc.Oracle}

func armName(v alloc.Variant) string {
	if v == 0 {
		return "heuristic"
	}
	return v.String()
}

// FairnessResults holds the sweep for rendering: Results[arm][rung].
type FairnessResults struct {
	Sizes    []int
	Arms     []alloc.Variant
	Duration sim.Time
	Results  [][]core.PopulationResult
}

// fairnessWorld builds the frontier's corridor. It differs from the
// population corridor in two deliberate ways:
//
//   - APs every 60 m striped across channels 1/6/11, so a client is
//     always in range of ~3 APs on distinct channels. The population
//     corridor's all-channel-1 layout makes every policy share one
//     corridor-wide collision domain — with no channel to back off to,
//     "association policy" degenerates to a lottery. Real deployments
//     stripe channels precisely so neighbours don't contend.
//
//   - DHCP pools opened to the per-gateway carve's maximum (the
//     population study deliberately starves pools at 24 leases/AP to
//     measure address pressure; here a client that cannot lease an
//     address scores a structural zero no association policy can fix).
func fairnessWorld(seed int64, d sim.Time) (core.WorldConfig, mobility.Model) {
	const speed = 10.0 // m/s
	length := speed*d.Seconds() + 100
	stripe := []dot11.Channel{dot11.Channel1, dot11.Channel6, dot11.Channel11}
	var sites []mobility.APSite
	for i := 0; float64(i)*60 < length; i++ {
		sites = append(sites, mobility.APSite{
			Pos:     geo.Point{X: float64(i) * 60, Y: 20},
			Channel: stripe[i%len(stripe)],
			SSID:    fmt.Sprintf("fair-%03d", i),
			Open:    true, BackhaulBps: 4e6,
		})
	}
	world := core.WorldConfig{
		Seed:     seed,
		Duration: d,
		Sites:    sites,
		AP:       core.APOverrides{DHCPPoolSize: 254},
	}
	route := mobility.NewWaypoints([]geo.Point{{X: 0, Y: 0}, {X: length, Y: 0}}, speed, false)
	return world, route
}

// FairnessScenario builds one (policy, population) cell of the frontier:
// the striped corridor with n clients and the chosen allocator armed
// (variant 0 = the legacy heuristic). Clients run the multi-channel
// multi-AP preset — the heuristic arm is then genuinely selfish, every
// client free to grab links on all three channels at once, which is the
// collapse the frontier measures. Departures always use the dense
// window: the classic 1.5 s stagger at 64+ clients pushes most of the
// population past the end of a benchmark-scale run, and a client that
// never starts scores a structural zero no allocator can fix — the
// frontier must measure allocation policy, not departure-schedule
// truncation, so every arm and every rung share the dense schedule.
func FairnessScenario(o Options, n int, v alloc.Variant) (core.WorldConfig, []core.ClientConfig) {
	d := o.dur(sim.Time(5*time.Minute), sim.Time(60*time.Second))
	world, route := fairnessWorld(o.seed(), d)
	window := d / 4
	clients := make([]core.ClientConfig, n)
	for i := range clients {
		clients[i] = core.ClientConfig{
			ID:          i,
			Preset:      core.MultiChannelMultiAP,
			Mobility:    route,
			StartOffset: sim.Time(i) * window / sim.Time(n),
		}
	}
	if v != 0 {
		world.Alloc = &alloc.Config{Variant: v}
	}
	return world, clients
}

// FairnessStudy sweeps arms × populations, one fleet job per cell (a cell
// is one N-client scenario and cannot shard further). Memoized under the
// experiment's canonical key.
func FairnessStudy(o Options) *FairnessResults {
	return memo(o, "fairness", func() *FairnessResults {
		d := o.dur(sim.Time(5*time.Minute), sim.Time(60*time.Second))
		jobs := make([]job[core.PopulationResult], 0, len(fairnessArms)*len(fairnessSizes))
		for _, v := range fairnessArms {
			for _, n := range fairnessSizes {
				v, n := v, n
				label := fmt.Sprintf("fairness#arm=%s,n=%d", armName(v), n)
				jobs = append(jobs, job[core.PopulationResult]{
					id: label,
					fn: func() core.PopulationResult {
						world, clients := FairnessScenario(o, n, v)
						rec := o.recorder()
						world.Obs = rec
						r := core.RunPopulation(world, clients)
						o.collect(label, rec)
						return r
					},
				})
			}
		}
		flat := mapJobs(o, jobs)
		res := &FairnessResults{Sizes: fairnessSizes, Arms: fairnessArms, Duration: d}
		for i := range fairnessArms {
			res.Results = append(res.Results, flat[i*len(fairnessSizes):(i+1)*len(fairnessSizes)])
		}
		return res
	})
}

// FairnessTable renders the frontier: per (policy, population) fairness
// and goodput, with the contention counters behind them.
func FairnessTable(r *FairnessResults) Table {
	t := Table{
		ID: "fairness",
		Title: fmt.Sprintf("fairness frontier: association policy vs population (%v per run)",
			time.Duration(r.Duration)),
		Columns: []string{"policy", "clients", "jain", "aggregate KB/s", "mean KB/s",
			"p50 KB/s", "connectivity", "collisions"},
	}
	for ai, v := range r.Arms {
		for si, n := range r.Sizes {
			p := r.Results[ai][si]
			t.Rows = append(t.Rows, []string{
				armName(v),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.3f", p.JainFairness),
				fmt.Sprintf("%.1f", p.AggregateKBps),
				fmt.Sprintf("%.1f", p.MeanKBps),
				fmt.Sprintf("%.1f", p.P50KBps),
				fmt.Sprintf("%.3f", p.MeanConnectivity),
				fmt.Sprintf("%d", p.Medium.Collisions),
			})
		}
	}
	return t
}

// FairnessJainFigure plots each policy's Jain index against population
// size: the heuristic's collapse and how far each allocator lifts it.
func FairnessJainFigure(r *FairnessResults) Figure {
	f := Figure{
		ID:     "fairness-jain",
		Title:  "Jain fairness vs population size by association policy",
		XLabel: "clients on the corridor",
		YLabel: "Jain index",
	}
	for ai, v := range r.Arms {
		s := Series{Name: armName(v)}
		for si, n := range r.Sizes {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Results[ai][si].JainFairness)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// FairnessGoodputFigure plots each policy's aggregate goodput frontier —
// fairness must not be bought by throwing capacity away.
func FairnessGoodputFigure(r *FairnessResults) Figure {
	f := Figure{
		ID:     "fairness-goodput",
		Title:  "aggregate goodput vs population size by association policy",
		XLabel: "clients on the corridor",
		YLabel: "aggregate goodput (KB/s)",
	}
	for ai, v := range r.Arms {
		s := Series{Name: armName(v)}
		for si, n := range r.Sizes {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Results[ai][si].AggregateKBps)
		}
		f.Series = append(f.Series, s)
	}
	return f
}
