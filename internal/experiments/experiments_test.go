package experiments

import (
	"strings"
	"testing"

	"spider/internal/lmm"
)

// quick returns low-fidelity options for smoke tests.
func quick() Options { return Options{Seed: 1, Scale: 0.05} }

func TestRenderHelpers(t *testing.T) {
	f := Figure{
		ID: "x", Title: "t", XLabel: "a", YLabel: "b",
		Series: []Series{{Name: "s1", X: []float64{1, 2}, Y: []float64{0.5, 1}}},
	}
	txt := f.Render()
	if !strings.Contains(txt, "s1") || !strings.Contains(txt, "0.5") {
		t.Fatalf("render missing data:\n%s", txt)
	}
	csv := f.CSV()
	if !strings.Contains(csv, "s1,1,0.5") {
		t.Fatalf("csv missing row:\n%s", csv)
	}
	tbl := Table{ID: "y", Title: "u", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if !strings.Contains(tbl.Render(), "1") || !strings.Contains(tbl.CSV(), "a,b") {
		t.Fatal("table render broken")
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.1}
	if o.n(100, 5) != 10 {
		t.Fatalf("n = %d", o.n(100, 5))
	}
	if o.n(10, 5) != 5 {
		t.Fatal("floor not applied")
	}
	if (Options{}).n(100, 5) != 100 {
		t.Fatal("zero scale should mean full fidelity")
	}
	if (Options{}).seed() != 1 {
		t.Fatal("default seed should be 1")
	}
}

func TestFigure2ModelVsSim(t *testing.T) {
	fig := Figure2(Options{Seed: 1, Scale: 0.2})
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Model and simulation must agree pointwise within MC noise.
	for i := 0; i < 2; i++ {
		mdl, mc := fig.Series[2*i], fig.Series[2*i+1]
		for j := range mdl.X {
			if d := mdl.Y[j] - mc.Y[j]; d > 0.12 || d < -0.12 {
				t.Fatalf("series %s point %d: model %.3f vs sim %.3f", mdl.Name, j, mdl.Y[j], mc.Y[j])
			}
		}
	}
}

func TestFigure3Monotonicity(t *testing.T) {
	fig := Figure3(quick())
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-9 {
				t.Fatalf("series %s: p increases with βmax", s.Name)
			}
		}
	}
}

func TestFigure4DividingSpeed(t *testing.T) {
	figs := Figure4(quick())
	if len(figs) != 3 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, fig := range figs {
		ch2 := fig.Series[1]
		// The second channel's optimal share declines monotonically with
		// speed in every split.
		for i := 1; i < len(ch2.Y); i++ {
			if ch2.Y[i] > ch2.Y[i-1]+1 {
				t.Fatalf("%s: ch2 share grew with speed: %v", fig.ID, ch2.Y)
			}
		}
		// And at 20 m/s it is well below its 2.5 m/s value.
		if ch2.Y[len(ch2.Y)-1] > 0.6*ch2.Y[0] {
			t.Fatalf("%s: ch2 at 20 m/s (%v) not far below 2.5 m/s (%v)",
				fig.ID, ch2.Y[len(ch2.Y)-1], ch2.Y[0])
		}
	}
	rich := figs[0].Series[1] // 25/75 split, ch2 holds 75%
	if rich.Y[0] <= 0 {
		t.Fatalf("25/75: ch2 unused even at 2.5 m/s")
	}
	// The paper's headline: for the joined-rich split the divide sits
	// below ≈10 m/s.
	for _, row := range DividingSpeeds(quick()).Rows {
		if row[0] == "75/25" {
			var v float64
			if _, err := sscanF(row[1], &v); err != nil {
				t.Fatal(err)
			}
			if v > 12 {
				t.Fatalf("75/25 dividing speed = %v m/s, want ≲10", v)
			}
		}
	}
}

func TestTable1SwitchLatencyGrowsWithInterfaces(t *testing.T) {
	tbl := Table1(quick())
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var first, last float64
	if _, err := sscanF(tbl.Rows[0][1], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanF(tbl.Rows[4][1], &last); err != nil {
		t.Fatal(err)
	}
	if first < 4.5 || first > 6 {
		t.Fatalf("0-interface latency = %v ms, want ≈5 (hardware reset)", first)
	}
	if last <= first {
		t.Fatalf("latency did not grow with interfaces: %v -> %v", first, last)
	}
}

func TestFigure5MoreChannelTimeFasterAssoc(t *testing.T) {
	fig := Figure5(Options{Seed: 1, Scale: 0.15})
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// The 100% schedule must reach a higher success fraction at 400 ms
	// than the 25% schedule.
	at := func(s Series, x float64) float64 {
		for i := range s.X {
			if s.X[i] >= x {
				return s.Y[i]
			}
		}
		return s.Y[len(s.Y)-1]
	}
	if full, quarter := at(fig.Series[3], 0.4), at(fig.Series[0], 0.4); full <= quarter {
		t.Fatalf("assoc success at 400ms: 100%% %.3f <= 25%% %.3f", full, quarter)
	}
}

func TestTable3ShapesHold(t *testing.T) {
	tbl := Table3(quick())
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if !strings.Contains(r[1], "%") {
			t.Fatalf("row %v missing percentage", r)
		}
	}
}

func TestTownStudyHeadlineResults(t *testing.T) {
	// Short runs are noisy; a third of the full duration is the shortest
	// scale at which the connectivity ordering is stable.
	o := Options{Seed: 1, Scale: 0.34}
	tr := TownStudy(o)
	if len(tr.Runs) != 7 {
		t.Fatalf("runs = %d", len(tr.Runs))
	}
	ch1Multi := tr.Runs[RunCh1Multi]
	ch1Single := tr.Runs[RunCh1Single]
	multiMulti := tr.Runs[RunMultiMulti]
	// Headline 1: single-channel multi-AP beats single-channel single-AP
	// and multi-channel multi-AP on throughput.
	if ch1Multi.ThroughputKBps <= ch1Single.ThroughputKBps {
		t.Errorf("throughput: ch1 multi %.1f <= ch1 single %.1f KB/s",
			ch1Multi.ThroughputKBps, ch1Single.ThroughputKBps)
	}
	if ch1Multi.ThroughputKBps <= multiMulti.ThroughputKBps {
		t.Errorf("throughput: ch1 multi %.1f <= multi-channel multi %.1f KB/s",
			ch1Multi.ThroughputKBps, multiMulti.ThroughputKBps)
	}
	// Headline 2: multi-channel multi-AP has the best connectivity.
	if multiMulti.Connectivity <= ch1Multi.Connectivity {
		t.Errorf("connectivity: multi-channel %.2f <= single-channel %.2f",
			multiMulti.Connectivity, ch1Multi.Connectivity)
	}
	// Everything non-trivial actually happened.
	for key, r := range tr.Runs {
		if r.LinkUps == 0 {
			t.Errorf("%s: no links ever", key)
		}
	}
	// Derived tables/figures render.
	for _, s := range []string{Table2(tr).Render(), Table4(tr).Render(), Figure11(tr).Render(), Figure12(tr).Render(), Figure13(tr).Render(), APDensity(tr).Render()} {
		if len(s) == 0 {
			t.Fatal("empty render")
		}
	}
	f16 := Figure16(o, tr)
	f17 := Figure17(o, tr)
	if len(f16.Series) != 3 || len(f17.Series) != 3 {
		t.Fatal("figure 16/17 series missing")
	}
}

func TestAppendixAQuality(t *testing.T) {
	tbl := AppendixA(Options{Seed: 1, Scale: 0.2})
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		var brute, dp, greedy, util float64
		for i, dst := range []*float64{&brute, &dp, &greedy, &util} {
			if _, err := sscanF(r[1+i], dst); err != nil {
				t.Fatalf("row %v col %d: %v", r, 1+i, err)
			}
		}
		if brute != 1.0 {
			t.Fatalf("brute force not optimal: %v", brute)
		}
		if dp < 0.99 {
			t.Fatalf("dp quality %v, want ≈1", dp)
		}
		if greedy < 0.7 || util < 0.5 {
			t.Fatalf("heuristic qualities too low: greedy=%v utility=%v", greedy, util)
		}
	}
}

// joinStageDistribution sanity-checks the vehicular join harness directly.
func TestJoinRunProducesRecords(t *testing.T) {
	o := quick()
	joins := joinRun(o, 1, fractionSchedule(1.0, 0), ReducedTimersForTest(), 7)
	if len(joins) == 0 {
		t.Fatal("no join records")
	}
	complete := 0
	for _, j := range joins {
		if j.Stage == lmm.StageComplete {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("no completed joins on a dedicated channel")
	}
}
